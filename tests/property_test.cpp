// Property-based sweeps over the core engine's structural invariants:
// canonicity (no duplicate (var, low, high) anywhere), reducedness
// (low != high for every node), variable ordering (a node's children sit at
// strictly lower-precedence variables), unique-table chain integrity, and
// conservation properties of the statistics, across a grid of seeds,
// worker counts, and thresholds.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "circuit/builder.hpp"
#include "circuit/generators.hpp"
#include "circuit/ordering.hpp"
#include "core/bdd_manager.hpp"
#include "oracle.hpp"

namespace pbdd {
namespace {

using core::Bdd;
using core::BddManager;
using core::Config;
using core::NodeRef;
using test::ExprProgram;

/// Walk every allocated node of every worker arena and check the structural
/// invariants of a reduced ordered BDD store.
void check_store_invariants(BddManager& mgr) {
  std::set<std::tuple<unsigned, NodeRef, NodeRef>> seen;
  for (unsigned w = 0; w < mgr.workers(); ++w) {
    for (unsigned v = 0; v < mgr.num_vars(); ++v) {
      const core::NodeArena& arena = mgr.worker(w).node_arena(v);
      for (std::uint32_t slot = 0; slot < arena.size(); ++slot) {
        const core::BddNode& n = arena.at(slot);
        // Skip tombstones: speculative slots a lock-free insert lost and
        // returned to the arena's free list (dead by construction).
        if (n.low == core::kInvalid && n.high == core::kInvalid) continue;
        // Reducedness.
        ASSERT_NE(n.low, n.high)
            << "unreduced node at w" << w << " v" << v << " s" << slot;
        // Ordering: children strictly below.
        ASSERT_GT(core::level_of(n.low), v);
        ASSERT_GT(core::level_of(n.high), v);
        // Children references point at allocated slots.
        for (const NodeRef child : {n.low, n.high}) {
          if (!core::is_terminal(child)) {
            ASSERT_LT(core::slot_of(child),
                      mgr.worker(core::worker_of(child))
                          .node_arena(core::var_of(child))
                          .size());
          }
        }
        // Canonicity across ALL workers' arenas.
        ASSERT_TRUE(seen.insert({v, n.low, n.high}).second)
            << "duplicate (var,low,high) at w" << w << " v" << v;
      }
    }
  }
}

struct GridParam {
  std::uint64_t seed;
  unsigned workers;
  std::uint64_t threshold;
  unsigned shards = 1;
  core::TableDiscipline discipline = core::TableDiscipline::kPassLock;
};

class InvariantGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(InvariantGrid, RandomProgramsKeepStoreInvariants) {
  const GridParam p = GetParam();
  Config config;
  config.workers = p.workers;
  config.eval_threshold = p.threshold;
  config.group_size = 8;
  config.gc_min_nodes = 1u << 30;
  config.table_shards = p.shards;
  config.table_discipline = p.discipline;
  BddManager mgr(8, config);
  const ExprProgram program = ExprProgram::random(8, 120, p.seed);
  auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
  check_store_invariants(mgr);

  // Canonicity also means: rebuilding any function is a no-op.
  const std::size_t nodes_before = mgr.live_nodes();
  auto again = program.eval_engine<BddManager, Bdd>(mgr);
  EXPECT_EQ(mgr.live_nodes(), nodes_before);
  for (std::size_t k = 0; k < bdds.size(); ++k) {
    EXPECT_EQ(bdds[k].ref(), again[k].ref());
  }
}

TEST_P(InvariantGrid, InvariantsHoldAfterGc) {
  const GridParam p = GetParam();
  Config config;
  config.workers = p.workers;
  config.eval_threshold = p.threshold;
  config.group_size = 8;
  config.gc_min_nodes = 1u << 30;
  config.table_shards = p.shards;
  config.table_discipline = p.discipline;
  BddManager mgr(8, config);
  const ExprProgram program = ExprProgram::random(8, 120, p.seed + 1000);
  auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
  bdds.resize(bdds.size() / 2);  // kill half the roots
  mgr.gc();
  check_store_invariants(mgr);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, InvariantGrid,
    ::testing::Values(
        GridParam{1, 1, Config::kUnbounded}, GridParam{2, 1, 16},
        GridParam{3, 2, 64}, GridParam{4, 2, 4}, GridParam{5, 4, 32},
        GridParam{6, 4, Config::kUnbounded},
        // Lock-free discipline: same invariants must hold, including after a
        // collection compacts away any tombstoned speculative slots.
        GridParam{7, 2, 16, 1, core::TableDiscipline::kLockFree},
        GridParam{8, 4, 32, 1, core::TableDiscipline::kLockFree},
        GridParam{9, 4, Config::kUnbounded, 1,
                  core::TableDiscipline::kLockFree}),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      const char* d =
          info.param.discipline == core::TableDiscipline::kLockFree
              ? "_lockfree"
              : "";
      return "seed" + std::to_string(info.param.seed) + "_w" +
             std::to_string(info.param.workers) + "_t" +
             (info.param.threshold == Config::kUnbounded
                  ? std::string("inf")
                  : std::to_string(info.param.threshold)) +
             "_s" + std::to_string(info.param.shards) + d;
    });

TEST(Properties, NodeCountsAreOrderInsensitiveForCommutativeOps) {
  BddManager mgr(8);
  const ExprProgram program = ExprProgram::random(8, 60, 5);
  const auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
  for (const Op op : {Op::And, Op::Or, Op::Xor, Op::Nand, Op::Nor, Op::Xnor}) {
    const Bdd ab = mgr.apply(op, bdds[10], bdds[20]);
    const Bdd ba = mgr.apply(op, bdds[20], bdds[10]);
    EXPECT_EQ(ab.ref(), ba.ref()) << op_name(op);
  }
}

TEST(Properties, DeMorganAndFriends) {
  BddManager mgr(8);
  const ExprProgram program = ExprProgram::random(8, 40, 13);
  const auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
  const Bdd& f = bdds[30];
  const Bdd& g = bdds[35];
  // NOT(f AND g) == NAND(f, g) == (NOT f) OR (NOT g)
  EXPECT_EQ(mgr.not_(mgr.apply(Op::And, f, g)), mgr.apply(Op::Nand, f, g));
  EXPECT_EQ(mgr.apply(Op::Nand, f, g),
            mgr.apply(Op::Or, mgr.not_(f), mgr.not_(g)));
  // f XOR g == (f OR g) AND NOT(f AND g)
  EXPECT_EQ(mgr.apply(Op::Xor, f, g),
            mgr.apply(Op::Diff, mgr.apply(Op::Or, f, g),
                      mgr.apply(Op::And, f, g)));
  // Implication: f -> g == NOT f OR g
  EXPECT_EQ(mgr.apply(Op::Implies, f, g),
            mgr.apply(Op::Or, mgr.not_(f), g));
  // Double negation.
  EXPECT_EQ(mgr.not_(mgr.not_(f)), f);
}

TEST(Properties, ShannonExpansionIdentity) {
  // f == ITE(x, f|x=1, f|x=0) for every variable.
  BddManager mgr(6);
  const ExprProgram program = ExprProgram::random(6, 50, 17);
  const Bdd f = program.eval_engine<BddManager, Bdd>(mgr).back();
  for (unsigned v = 0; v < 6; ++v) {
    const Bdd rebuilt = mgr.ite(mgr.var(v), mgr.restrict_(f, v, true),
                                mgr.restrict_(f, v, false));
    EXPECT_EQ(rebuilt.ref(), f.ref()) << "variable " << v;
  }
}

TEST(Properties, QuantifierDuality) {
  // forall x. f == NOT exists x. NOT f
  BddManager mgr(6);
  const ExprProgram program = ExprProgram::random(6, 50, 23);
  const Bdd f = program.eval_engine<BddManager, Bdd>(mgr).back();
  const std::vector<unsigned> vars{1, 4};
  const Bdd lhs = mgr.forall(f, vars);
  const Bdd rhs = mgr.not_(mgr.exists(mgr.not_(f), vars));
  EXPECT_EQ(lhs.ref(), rhs.ref());
}

TEST(Properties, SatCountConsistentWithQuantification) {
  // satcount(f) = satcount(f|x=0) + satcount(f|x=1) for any x, halved per
  // the shared variable space.
  BddManager mgr(6);
  const ExprProgram program = ExprProgram::random(6, 50, 29);
  const Bdd f = program.eval_engine<BddManager, Bdd>(mgr).back();
  const double total = mgr.sat_count(f);
  for (unsigned v = 0; v < 6; ++v) {
    const double c0 = mgr.sat_count(mgr.restrict_(f, v, false));
    const double c1 = mgr.sat_count(mgr.restrict_(f, v, true));
    EXPECT_DOUBLE_EQ(total, (c0 + c1) / 2.0) << "variable " << v;
  }
}

TEST(Properties, CircuitChecksumStableAcrossConfigurations) {
  // The benchmark harness relies on this: same circuit, any engine
  // configuration, identical per-output node counts.
  const auto bin = circuit::c3540_like().binarized();
  const auto order = circuit::order_dfs(bin);
  std::vector<std::size_t> reference;
  for (const GridParam p :
       {GridParam{0, 1, Config::kUnbounded}, GridParam{0, 2, 1u << 10},
        GridParam{0, 4, 1u << 8}}) {
    Config config;
    config.workers = p.workers;
    config.eval_threshold = p.threshold;
    BddManager mgr(static_cast<unsigned>(bin.inputs().size()), config);
    const auto outputs = circuit::build_parallel(mgr, bin, order);
    std::vector<std::size_t> counts;
    for (const Bdd& o : outputs) counts.push_back(mgr.node_count(o));
    if (reference.empty()) {
      reference = counts;
    } else {
      EXPECT_EQ(counts, reference);
    }
  }
}

}  // namespace
}  // namespace pbdd
