// Replication tier tests (src/net/, src/replica/, docs/REPLICATION.md).
//
// Covers the framed wire protocol, the message codecs, delta planning and
// reassembly, the consistent-hash ring, and the end-to-end loop: one writer
// shipping export-snapshot epochs to an in-process ReplicaServer, a
// SessionRouter serving reads from it, delta ships beating full ships on
// bytes when few levels are dirty, divergence recovering through Nak +
// full-ship retry, and a killed replica failing reads over to the writer
// without a request error.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/bdd_manager.hpp"
#include "net/frame.hpp"
#include "net/http.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "replica/delta.hpp"
#include "replica/replica_server.hpp"
#include "replica/router.hpp"
#include "replica/wire.hpp"
#include "replica/writer.hpp"
#include "snapshot/snapshot.hpp"
#include "util/crc32.hpp"

namespace {

using namespace pbdd;
using core::TableDiscipline;

std::string tmp_dir(const std::string& tag) {
  const std::string d = testing::TempDir() + "pbdd_repl_" + tag;
  ::mkdir(d.c_str(), 0755);
  return d;
}

core::Config cfg(unsigned workers, TableDiscipline d, unsigned shards = 1) {
  core::Config c;
  c.workers = workers;
  c.table_discipline = d;
  c.table_shards = shards;
  return c;
}

snapshot::SaveOptions export_opts() {
  snapshot::SaveOptions o;
  o.mode = snapshot::SaveMode::kExportRoots;
  return o;
}

/// A spread of functions touching every level of a 10-var manager.
std::vector<snapshot::NamedRoot> build_roots(core::BddManager& mgr) {
  std::vector<snapshot::NamedRoot> roots;
  core::Bdd acc = mgr.one();
  for (unsigned v = 0; v + 1 < mgr.num_vars(); ++v) {
    acc = mgr.apply(Op::And, acc,
                    mgr.apply(Op::Xor, mgr.var(v), mgr.var(v + 1)));
    roots.push_back({"f" + std::to_string(v), acc});
  }
  return roots;
}

/// Connected loopback socket pair via an ephemeral listener.
struct SocketPair {
  net::Listener listener;
  net::Socket client;
  net::Socket server;
  SocketPair() : listener(0) {
    client = net::connect_to("127.0.0.1", listener.port());
    server = listener.accept_client();
  }
};

// ---- Framing ----------------------------------------------------------------

TEST(ReplFrame, RoundTripAndCleanEof) {
  SocketPair p;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 0, 42};
  net::send_frame(p.client, 7, payload, 0x11);
  net::send_frame(p.client, 9, std::vector<std::uint8_t>{});
  std::optional<net::Frame> f = net::recv_frame(p.server);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, 7u);
  EXPECT_EQ(f->flags, 0x11u);
  EXPECT_EQ(f->payload, payload);
  f = net::recv_frame(p.server);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, 9u);
  EXPECT_TRUE(f->payload.empty());
  p.client.close();
  EXPECT_FALSE(net::recv_frame(p.server).has_value());  // clean EOF
}

TEST(ReplFrame, ChecksumMismatchThrows) {
  SocketPair p;
  // Handcraft a frame whose payload byte disagrees with its CRC.
  std::uint8_t payload = 0xAB;
  std::uint8_t buf[4 + 2 + 2 + 4 + 1 + 4];
  const std::uint32_t magic = net::kFrameMagic;
  std::memcpy(buf, &magic, 4);
  const std::uint16_t type = 3, flags = 0;
  std::memcpy(buf + 4, &type, 2);
  std::memcpy(buf + 6, &flags, 2);
  const std::uint32_t len = 1;
  std::memcpy(buf + 8, &len, 4);
  buf[12] = payload;
  util::Crc32 crc;
  crc.update(buf + 4, 8);
  crc.update(&payload, 1);
  const std::uint32_t good = crc.value();
  std::memcpy(buf + 13, &good, 4);
  buf[12] ^= 0x40;  // corrupt the payload after sealing the CRC
  p.client.send_all(buf, sizeof(buf));
  EXPECT_THROW((void)net::recv_frame(p.server), std::runtime_error);
}

TEST(ReplFrame, MidFrameEofThrows) {
  SocketPair p;
  const std::uint32_t magic = net::kFrameMagic;
  std::uint8_t head[12] = {};
  std::memcpy(head, &magic, 4);
  const std::uint32_t len = 100;  // promise 100 payload bytes, send none
  std::memcpy(head + 8, &len, 4);
  p.client.send_all(head, sizeof(head));
  p.client.close();
  EXPECT_THROW((void)net::recv_frame(p.server), std::runtime_error);
}

TEST(ReplFrame, PayloadCapEnforced) {
  SocketPair p;
  net::send_frame(p.client, 1, std::vector<std::uint8_t>(64, 0xCC));
  EXPECT_THROW((void)net::recv_frame(p.server, 16), std::runtime_error);
}

// ---- Codecs -----------------------------------------------------------------

TEST(ReplWire, RoundTrips) {
  {
    repl::Hello m;
    m.process_name = "writer";
    m.t_steady_ns = 0x1122334455667788ull;
    const repl::Hello d = repl::decode_hello(repl::encode(m));
    EXPECT_EQ(d.version, repl::kProtocolVersion);
    EXPECT_EQ(d.process_name, m.process_name);
    EXPECT_EQ(d.t_steady_ns, m.t_steady_ns);
  }
  {
    repl::HelloAck m;
    m.applied_epoch = 42;
    m.num_vars = 10;
    m.crc_row = {1, 2, 3, 0xFFFFFFFFu};
    m.process_name = "r0";
    m.t_steady_ns = 987654321;
    const repl::HelloAck d = repl::decode_hello_ack(repl::encode(m));
    EXPECT_EQ(d.applied_epoch, m.applied_epoch);
    EXPECT_EQ(d.num_vars, m.num_vars);
    EXPECT_EQ(d.crc_row, m.crc_row);
    EXPECT_EQ(d.process_name, m.process_name);
    EXPECT_EQ(d.t_steady_ns, m.t_steady_ns);
  }
  {
    repl::ShipBegin m;
    m.epoch = 7;
    m.mode = repl::ShipMode::kDelta;
    m.file_bytes = 123456;
    m.meta = {9, 8, 7};
    m.roots = {1, 2};
    m.dirty = {0, 3, 9};
    m.trace_id = 0xCAFEBABEDEADBEEFull;
    const repl::ShipBegin d = repl::decode_ship_begin(repl::encode(m));
    EXPECT_EQ(d.epoch, m.epoch);
    EXPECT_EQ(d.mode, m.mode);
    EXPECT_EQ(d.file_bytes, m.file_bytes);
    EXPECT_EQ(d.meta, m.meta);
    EXPECT_EQ(d.roots, m.roots);
    EXPECT_EQ(d.dirty, m.dirty);
    EXPECT_EQ(d.trace_id, m.trace_id);
  }
  {
    repl::ShipLevel m;
    m.epoch = 7;
    m.var = 4;
    m.section = std::vector<std::uint8_t>(300, 0x5A);
    const repl::ShipLevel d = repl::decode_ship_level(repl::encode(m));
    EXPECT_EQ(d.epoch, m.epoch);
    EXPECT_EQ(d.var, m.var);
    EXPECT_EQ(d.section, m.section);
  }
  {
    repl::ShipNak m;
    m.epoch = 9;
    m.reason = "splice precondition failed";
    const repl::ShipNak d = repl::decode_ship_nak(repl::encode(m));
    EXPECT_EQ(d.epoch, m.epoch);
    EXPECT_EQ(d.reason, m.reason);
  }
  {
    repl::ReadReq m;
    m.req_id = 11;
    m.op = repl::ReadOp::kEval;
    m.root = "s3/r7";
    m.assignment = {true, false, false, true, true, false, true, false, true};
    m.trace_id = 0x0123456789ABCDEFull;
    const repl::ReadReq d = repl::decode_read_req(repl::encode(m));
    EXPECT_EQ(d.req_id, m.req_id);
    EXPECT_EQ(d.op, m.op);
    EXPECT_EQ(d.root, m.root);
    EXPECT_EQ(d.assignment, m.assignment);
    EXPECT_EQ(d.trace_id, m.trace_id);
  }
  {
    repl::ReadResp m;
    m.req_id = 11;
    m.status = repl::ReadStatus::kOk;
    m.epoch = 3;
    m.value = 1;
    m.sat = 1234.5;
    const repl::ReadResp d = repl::decode_read_resp(repl::encode(m));
    EXPECT_EQ(d.req_id, m.req_id);
    EXPECT_EQ(d.status, m.status);
    EXPECT_EQ(d.epoch, m.epoch);
    EXPECT_EQ(d.value, m.value);
    EXPECT_EQ(d.sat, m.sat);
  }
  {
    repl::Ping m;
    m.nonce = 76;
    m.t_send_ns = 111222333;
    const repl::Ping d = repl::decode_ping(repl::encode(m));
    EXPECT_EQ(d.nonce, m.nonce);
    EXPECT_EQ(d.t_send_ns, m.t_send_ns);
  }
  {
    repl::Pong m;
    m.nonce = 77;
    m.epoch = 5;
    m.t_steady_ns = 444555666;
    const repl::Pong d = repl::decode_pong(repl::encode(m));
    EXPECT_EQ(d.nonce, m.nonce);
    EXPECT_EQ(d.epoch, m.epoch);
    EXPECT_EQ(d.t_steady_ns, m.t_steady_ns);
  }
}

TEST(ReplWire, MalformedPayloadThrows) {
  repl::HelloAck m;
  m.crc_row = {1, 2, 3};
  m.process_name = "r1";
  m.t_steady_ns = 42;
  std::vector<std::uint8_t> good = repl::encode(m);
  // Truncation anywhere must throw, not read garbage.
  for (std::size_t keep = 0; keep < good.size(); ++keep) {
    const std::vector<std::uint8_t> bad(good.begin(),
                                        good.begin() +
                                            static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)repl::decode_hello_ack(bad), std::runtime_error)
        << "truncated to " << keep;
  }
  // Trailing garbage is rejected too.
  good.push_back(0);
  EXPECT_THROW((void)repl::decode_hello_ack(good), std::runtime_error);
}

// ---- Delta planning ---------------------------------------------------------

TEST(ReplDelta, PlanDelta) {
  snapshot::LevelDirectory dir;
  dir.info.num_vars = 4;
  dir.levels = {{0, 0, 0, 10}, {0, 0, 0, 20}, {0, 0, 0, 30}, {0, 0, 0, 40}};
  const std::vector<std::uint32_t> row = repl::crc_row_of(dir);
  EXPECT_EQ(row, (std::vector<std::uint32_t>{10, 20, 30, 40}));

  // No epoch applied yet: must ship full.
  EXPECT_FALSE(repl::plan_delta(dir, 0, 4, row).has_value());
  // Variable-count mismatch: row unusable.
  EXPECT_FALSE(repl::plan_delta(dir, 1, 5, row).has_value());
  EXPECT_FALSE(
      repl::plan_delta(dir, 1, 4, {10, 20, 30}).has_value());
  // Identical row: nothing to ship.
  const auto clean = repl::plan_delta(dir, 1, 4, row);
  ASSERT_TRUE(clean.has_value());
  EXPECT_TRUE(clean->empty());
  // Two changed levels travel, the rest splice.
  const auto dirty = repl::plan_delta(dir, 1, 4, {10, 99, 30, 77});
  ASSERT_TRUE(dirty.has_value());
  EXPECT_EQ(*dirty, (std::vector<std::uint32_t>{1, 3}));
}

TEST(ReplDelta, AssemblerRejectsDivergedSplice) {
  // Two unrelated snapshots with the same shape: shipping B as a delta of
  // "nothing dirty" against applied A must fail the splice re-check, not
  // produce a franken-file.
  const std::string dir = tmp_dir("diverge");
  const std::string a_path = dir + "/a.snap";
  const std::string b_path = dir + "/b.snap";
  core::BddManager mgr_a(6, cfg(1, TableDiscipline::kPassLock));
  core::BddManager mgr_b(6, cfg(1, TableDiscipline::kPassLock));
  std::vector<snapshot::NamedRoot> ra = build_roots(mgr_a);
  std::vector<snapshot::NamedRoot> rb = build_roots(mgr_b);
  // Different functions in B so the sections genuinely differ.
  rb[0].bdd = mgr_b.apply(Op::Or, rb[0].bdd, mgr_b.var(5));
  snapshot::save(mgr_a, a_path, ra, export_opts());
  snapshot::save(mgr_b, b_path, rb, export_opts());

  const snapshot::LevelDirectory bdir = snapshot::inspect_levels(b_path);
  std::ifstream in(b_path, std::ios::binary);
  repl::ShipBegin begin;
  begin.epoch = 2;
  begin.mode = repl::ShipMode::kDelta;
  begin.file_bytes = bdir.info.file_bytes;
  begin.meta.resize(bdir.meta_bytes());
  in.read(reinterpret_cast<char*>(begin.meta.data()),
          static_cast<std::streamsize>(begin.meta.size()));
  begin.roots.resize(bdir.root_table_bytes);
  in.seekg(static_cast<std::streamoff>(bdir.root_table_offset));
  in.read(reinterpret_cast<char*>(begin.roots.data()),
          static_cast<std::streamsize>(begin.roots.size()));
  ASSERT_TRUE(in.good());

  repl::Assembler assembler(begin, dir + "/incoming.snap", a_path);
  EXPECT_THROW(assembler.finish(0), std::runtime_error);
  // The unfinished temp file is cleaned up by the destructor; the applied
  // file is untouched.
  EXPECT_NO_THROW(snapshot::inspect_levels(a_path));
}

// ---- Consistent-hash ring ---------------------------------------------------

TEST(ReplRing, DeterministicAndStableUnderGrowth) {
  const repl::SessionRouter::LocalRead local = [](const repl::ReadReq& rq) {
    repl::ReadResp r;
    r.req_id = rq.req_id;
    return r;
  };
  repl::RouterOptions three;
  three.endpoints = {"10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"};
  repl::SessionRouter r1(three, local);
  repl::SessionRouter r2(three, local);
  repl::RouterOptions four = three;
  four.endpoints.push_back("10.0.0.4:7000");
  repl::SessionRouter r3(four, local);

  std::size_t moved = 0, to_new = 0;
  for (std::uint64_t key = 0; key < 4096; ++key) {
    const std::size_t e1 = r1.endpoint_of(key);
    ASSERT_LT(e1, three.endpoints.size());
    // The ring layout is a pure function of the endpoint list.
    EXPECT_EQ(e1, r2.endpoint_of(key));
    const std::size_t e3 = r3.endpoint_of(key);
    if (e3 != e1) {
      ++moved;
      if (e3 == 3) ++to_new;
    }
  }
  // Consistent hashing: adding one endpoint moves roughly 1/4 of the keys,
  // and everything that moves lands on the new endpoint.
  EXPECT_EQ(moved, to_new);
  EXPECT_GT(moved, 4096u / 16);
  EXPECT_LT(moved, 4096u / 2);
}

// ---- End-to-end: ship, serve, delta, diverge, recover -----------------------

TEST(ReplEndToEnd, ShipServeDeltaAndNakRecovery) {
  const std::string dir = tmp_dir("e2e");
  const std::string replica_dir = dir + "/replica";
  ::mkdir(replica_dir.c_str(), 0755);
  const std::string ship_path = dir + "/ship.snap";

  // Writer and replica deliberately disagree on discipline and workers:
  // the ship/apply path must restore across table disciplines.
  core::BddManager mgr(10, cfg(2, TableDiscipline::kLockFree));
  std::vector<snapshot::NamedRoot> roots = build_roots(mgr);

  repl::ReplicaOptions ro;
  ro.port = 0;
  ro.dir = replica_dir;
  ro.config = cfg(1, TableDiscipline::kSharded, 2);
  repl::ReplicaServer replica(ro);
  replica.start();
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(replica.port());

  repl::WriterOptions wo;
  wo.endpoints = {endpoint};
  repl::ReplicationWriter writer(wo);
  EXPECT_EQ(writer.connect(), 1u);

  // Epoch 1 must ship full (the replica acked nothing).
  snapshot::save(mgr, ship_path, roots, export_opts());
  const repl::ShipReport rep1 = writer.ship_file(ship_path);
  ASSERT_EQ(rep1.replicas.size(), 1u);
  ASSERT_TRUE(rep1.replicas[0].ok) << rep1.replicas[0].error;
  EXPECT_EQ(rep1.replicas[0].mode, repl::ShipMode::kFull);
  EXPECT_EQ(replica.applied_epoch(), 1u);

  // Reads: every answer must match the writer's manager, at epoch 1, and
  // be served by the replica (the local fallback fails the test).
  repl::RouterOptions rto;
  rto.endpoints = {endpoint};
  repl::SessionRouter router(rto, [](const repl::ReadReq& rq) {
    ADD_FAILURE() << "unexpected local fallback for " << rq.root;
    repl::ReadResp r;
    r.req_id = rq.req_id;
    return r;
  });
  std::uint64_t req_id = 0;
  std::vector<bool> assignment(mgr.num_vars());
  for (unsigned v = 0; v < mgr.num_vars(); ++v) assignment[v] = (v % 3) == 0;
  for (const snapshot::NamedRoot& r : roots) {
    repl::ReadReq rq;
    rq.req_id = ++req_id;
    rq.op = repl::ReadOp::kSatCount;
    rq.root = r.name;
    repl::ReadResp resp = router.read(1, rq);
    ASSERT_EQ(resp.status, repl::ReadStatus::kOk) << resp.error;
    EXPECT_EQ(resp.epoch, 1u);
    EXPECT_EQ(resp.sat, mgr.sat_count(r.bdd)) << r.name;

    rq.req_id = ++req_id;
    rq.op = repl::ReadOp::kEval;
    rq.assignment = assignment;
    resp = router.read(1, rq);
    ASSERT_EQ(resp.status, repl::ReadStatus::kOk) << resp.error;
    EXPECT_EQ(resp.value, mgr.eval(r.bdd, assignment) ? 1u : 0u) << r.name;

    rq.req_id = ++req_id;
    rq.op = repl::ReadOp::kRootInfo;
    rq.assignment.clear();
    resp = router.read(1, rq);
    ASSERT_EQ(resp.status, repl::ReadStatus::kOk) << resp.error;
    EXPECT_EQ(resp.value, mgr.node_count(r.bdd)) << r.name;
  }
  EXPECT_EQ(router.counters().replica_reads, req_id);
  EXPECT_EQ(router.counters().failovers, 0u);

  // Unknown root is a typed status, not an error or a failover.
  {
    repl::ReadReq rq;
    rq.req_id = ++req_id;
    rq.op = repl::ReadOp::kSatCount;
    rq.root = "no-such-root";
    const repl::ReadResp resp = router.read(1, rq);
    EXPECT_EQ(resp.status, repl::ReadStatus::kUnknownRoot);
  }

  // Epoch 2: one extra root over the top two variables dirties at most a
  // couple of levels, so the delta must ship far fewer bytes than the full.
  roots.push_back(
      {"extra", mgr.apply(Op::And, mgr.var(0), !mgr.var(1))});
  snapshot::save(mgr, ship_path, roots, export_opts());
  const repl::ShipReport rep2 = writer.ship_file(ship_path);
  ASSERT_TRUE(rep2.replicas[0].ok) << rep2.replicas[0].error;
  EXPECT_EQ(rep2.replicas[0].mode, repl::ShipMode::kDelta);
  EXPECT_FALSE(rep2.replicas[0].retried_full);
  EXPECT_LE(rep2.replicas[0].levels_shipped, mgr.num_vars() / 2);
  EXPECT_LT(rep2.replicas[0].bytes_sent, rep1.replicas[0].bytes_sent);
  EXPECT_EQ(replica.applied_epoch(), 2u);
  {
    repl::ReadReq rq;
    rq.req_id = ++req_id;
    rq.op = repl::ReadOp::kSatCount;
    rq.root = "extra";
    const repl::ReadResp resp = router.read(1, rq);
    ASSERT_EQ(resp.status, repl::ReadStatus::kOk) << resp.error;
    EXPECT_EQ(resp.epoch, 2u);
    EXPECT_EQ(resp.sat, mgr.sat_count(roots.back().bdd));
  }

  // Diverge the replica: corrupt a byte inside a level section of its
  // applied file that the next delta will try to splice. The splice
  // re-check must Nak, and the writer must recover with a full retry in
  // the same ship call.
  {
    const std::string applied = replica_dir + "/applied.snap";
    const snapshot::LevelDirectory adir = snapshot::inspect_levels(applied);
    std::uint64_t off = 0;
    for (std::size_t v = adir.levels.size(); v-- > 0;) {
      if (adir.levels[v].byte_size > 0) {
        off = adir.levels[v].offset;
        break;
      }
    }
    ASSERT_GT(off, 0u);
    std::fstream f(applied,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(off));
    char byte = 0;
    f.read(&byte, 1);
    byte ^= 0x40;
    f.seekp(static_cast<std::streamoff>(off));
    f.write(&byte, 1);
    f.close();
  }
  roots.push_back({"extra2", mgr.apply(Op::Or, mgr.var(0), mgr.var(1))});
  snapshot::save(mgr, ship_path, roots, export_opts());
  const repl::ShipReport rep3 = writer.ship_file(ship_path);
  ASSERT_TRUE(rep3.replicas[0].ok) << rep3.replicas[0].error;
  EXPECT_TRUE(rep3.replicas[0].retried_full);
  EXPECT_GE(replica.counters().ship_naks, 1u);
  EXPECT_EQ(replica.applied_epoch(), 3u);
  {
    repl::ReadReq rq;
    rq.req_id = ++req_id;
    rq.op = repl::ReadOp::kSatCount;
    rq.root = "extra2";
    const repl::ReadResp resp = router.read(1, rq);
    ASSERT_EQ(resp.status, repl::ReadStatus::kOk) << resp.error;
    EXPECT_EQ(resp.epoch, 3u);
    EXPECT_EQ(resp.sat, mgr.sat_count(roots.back().bdd));
  }

  // Heartbeat reports the applied epoch.
  const std::vector<std::optional<std::uint64_t>> beats = writer.heartbeat();
  ASSERT_EQ(beats.size(), 1u);
  ASSERT_TRUE(beats[0].has_value());
  EXPECT_EQ(*beats[0], 3u);

  replica.stop();
}

// ---- Failover ---------------------------------------------------------------

TEST(ReplFailover, NotReadyFallsBackLocally) {
  const std::string dir = tmp_dir("notready");
  repl::ReplicaOptions ro;
  ro.dir = dir;
  repl::ReplicaServer replica(ro);
  replica.start();

  repl::RouterOptions rto;
  rto.endpoints = {"127.0.0.1:" + std::to_string(replica.port())};
  repl::SessionRouter router(rto, [](const repl::ReadReq& rq) {
    repl::ReadResp r;
    r.req_id = rq.req_id;
    r.status = repl::ReadStatus::kOk;
    r.value = 123;
    return r;
  });
  repl::ReadReq rq;
  rq.req_id = 1;
  rq.op = repl::ReadOp::kRootInfo;
  rq.root = "anything";
  const repl::ReadResp resp = router.read(5, rq);
  EXPECT_EQ(resp.status, repl::ReadStatus::kOk);
  EXPECT_EQ(resp.value, 123u);  // the local answer
  EXPECT_EQ(router.counters().stale_fallbacks, 1u);
  EXPECT_EQ(router.counters().replica_reads, 0u);
  replica.stop();
}

TEST(ReplFailover, KilledReplicaFailsOverWithoutError) {
  const std::string dir = tmp_dir("kill");
  const std::string replica_dir = dir + "/replica";
  ::mkdir(replica_dir.c_str(), 0755);
  const std::string ship_path = dir + "/ship.snap";

  core::BddManager mgr(8, cfg(1, TableDiscipline::kPassLock));
  const std::vector<snapshot::NamedRoot> roots = build_roots(mgr);

  repl::ReplicaOptions ro;
  ro.dir = replica_dir;
  repl::ReplicaServer replica(ro);
  replica.start();
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(replica.port());

  repl::WriterOptions wo;
  wo.endpoints = {endpoint};
  repl::ReplicationWriter writer(wo);
  ASSERT_EQ(writer.connect(), 1u);
  snapshot::save(mgr, ship_path, roots, export_opts());
  ASSERT_EQ(writer.ship_file(ship_path).ok_count(), 1u);

  repl::RouterOptions rto;
  rto.endpoints = {endpoint};
  repl::SessionRouter router(rto, [&](const repl::ReadReq& rq) {
    // The writer-side fallback: answer from the live manager.
    repl::ReadResp r;
    r.req_id = rq.req_id;
    r.status = repl::ReadStatus::kOk;
    r.sat = mgr.sat_count(roots[0].bdd);
    return r;
  });

  repl::ReadReq rq;
  rq.req_id = 1;
  rq.op = repl::ReadOp::kSatCount;
  rq.root = roots[0].name;
  repl::ReadResp resp = router.read(9, rq);
  ASSERT_EQ(resp.status, repl::ReadStatus::kOk);
  const double expected = mgr.sat_count(roots[0].bdd);
  EXPECT_EQ(resp.sat, expected);
  EXPECT_EQ(router.counters().replica_reads, 1u);

  // Kill the replica mid-run: the very next read must still succeed (via
  // the writer) — no request error escapes the router.
  replica.stop();
  for (int i = 0; i < 3; ++i) {
    rq.req_id = 2 + static_cast<std::uint64_t>(i);
    resp = router.read(9, rq);
    ASSERT_EQ(resp.status, repl::ReadStatus::kOk);
    EXPECT_EQ(resp.sat, expected);
  }
  EXPECT_GE(router.counters().failovers, 3u);
}

// ---- HTTP telemetry endpoints -----------------------------------------------

/// Raw request/response over one connection; the server closes after each
/// response (Connection: close), so read-until-EOF captures the whole reply.
std::string http_roundtrip(std::uint16_t port, const std::string& request) {
  net::Socket s = net::connect_to("127.0.0.1", port);
  s.send_all(request.data(), request.size());
  std::string out;
  char buf[2048];
  for (;;) {
    const ssize_t n = ::recv(s.fd(), buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

TEST(ReplHttp, EndpointsServeMetricsAndRejectUnknown) {
  net::HttpServer http;
  http.handle("/metrics", [] {
    net::HttpResponse r;
    r.content_type = net::kPrometheusContentType;
    obs::Registry reg;
    reg.gauge("pbdd_http_test_up", "test gauge").set(1.0);
    r.body = reg.prometheus_text();
    return r;
  });
  http.handle("/healthz", [] {
    net::HttpResponse r;
    r.content_type = "application/json";
    r.body = "{\"status\": \"ok\"}\n";
    return r;
  });
  http.handle("/boom", []() -> net::HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  http.start(0);  // ephemeral
  ASSERT_GT(http.port(), 0);

  const std::string ok = http_roundtrip(
      http.port(), "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos) << ok;
  EXPECT_NE(ok.find("version=0.0.4"), std::string::npos) << ok;
  EXPECT_NE(ok.find("pbdd_http_test_up 1"), std::string::npos) << ok;

  // Query strings resolve to the bare path.
  const std::string q = http_roundtrip(
      http.port(), "GET /healthz?verbose=1 HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(q.find("HTTP/1.1 200 OK"), std::string::npos) << q;
  EXPECT_NE(q.find("\"status\": \"ok\""), std::string::npos) << q;

  const std::string missing = http_roundtrip(
      http.port(), "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos) << missing;

  const std::string post = http_roundtrip(
      http.port(), "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos) << post;

  const std::string boom = http_roundtrip(
      http.port(), "GET /boom HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(boom.find("HTTP/1.1 500"), std::string::npos) << boom;

  http.stop();
  // Stopped server refuses connections.
  EXPECT_THROW((void)net::connect_to("127.0.0.1", http.port()),
               std::runtime_error);
}

// ---- Clock-offset handshake -------------------------------------------------

TEST(ReplClock, HandshakeRecordsPeerOffset) {
  // Writer and replica share this process's Tracer, so the replica's
  // HelloAck identity is the process name we set here and the measured
  // steady-clock offset must be ~0 (same clock, loopback RTT).
  obs::Tracer::instance().set_process_name("fleet-node");
  const std::string dir = tmp_dir("clock");
  repl::ReplicaOptions ro;
  ro.port = 0;
  ro.dir = dir;
  ro.config = cfg(1, TableDiscipline::kSharded);
  repl::ReplicaServer server(ro);
  server.start();

  repl::WriterOptions wo;
  wo.endpoints = {"127.0.0.1:" + std::to_string(server.port())};
  repl::ReplicationWriter writer(wo);
  ASSERT_EQ(writer.connect(), 1u);

  const std::map<std::string, std::int64_t> offsets =
      obs::Tracer::instance().clock_offsets();
  const auto it = offsets.find("fleet-node");
  ASSERT_NE(it, offsets.end());
  // Same physical clock: anything beyond scheduling noise means the
  // midpoint math is wrong.
  EXPECT_LT(std::llabs(it->second), 100'000'000ll) << it->second;
  server.stop();
}

}  // namespace
