// Checkpoint/restore subsystem tests (src/snapshot/, docs/FORMAT.md).
//
// The identity oracle is core::dump_function: a canonical textual dump of a
// function's cofactor structure, independent of NodeRefs and worker
// placement, so a restored root is "the same function" iff its dump is
// byte-identical to the saved root's.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "circuit/builder.hpp"
#include "circuit/generators.hpp"
#include "circuit/ordering.hpp"
#include "core/bdd_manager.hpp"
#include "core/export.hpp"
#include "service/bdd_service.hpp"
#include "snapshot/format.hpp"
#include "snapshot/snapshot.hpp"

namespace {

using namespace pbdd;
using core::TableDiscipline;

std::string tmp_path(const std::string& tag) {
  return testing::TempDir() + "pbdd_snap_" + tag + ".snap";
}

/// Build a multiplier's outputs in `mgr` and return them as named roots.
std::vector<snapshot::NamedRoot> build_roots(core::BddManager& mgr,
                                             unsigned bits = 5) {
  const circuit::Circuit circ = circuit::multiplier(bits).binarized();
  const std::vector<unsigned> order = circuit::order_dfs(circ);
  const std::vector<core::Bdd> outs = circuit::build_parallel(mgr, circ, order);
  std::vector<snapshot::NamedRoot> named;
  for (std::size_t o = 0; o < outs.size(); ++o) {
    named.push_back({"p" + std::to_string(o), outs[o]});
  }
  return named;
}

std::vector<std::string> dumps_of(core::BddManager& mgr,
                                  const std::vector<snapshot::NamedRoot>& rs) {
  std::vector<std::string> d;
  d.reserve(rs.size());
  for (const snapshot::NamedRoot& r : rs) {
    d.push_back(core::dump_function(mgr, r.bdd));
  }
  return d;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

core::Config cfg(unsigned workers, TableDiscipline d,
                 unsigned shards = 1) {
  core::Config c;
  c.workers = workers;
  c.table_discipline = d;
  c.table_shards = shards;
  return c;
}

class SnapshotRoundTrip
    : public testing::TestWithParam<std::tuple<TableDiscipline, bool>> {};

// Round-trip identity: every root's dump_function is byte-identical after
// save + restore under the same configuration, in both save modes and under
// all three table disciplines. Full-mode same-config restores must also
// take the chain-adoption fast path on every level.
TEST_P(SnapshotRoundTrip, IdentityUnderSameConfig) {
  const auto [disc, export_mode] = GetParam();
  const core::Config config = cfg(4, disc, disc == TableDiscipline::kSharded ? 4 : 1);
  core::BddManager mgr(10, config);
  const std::vector<snapshot::NamedRoot> roots = build_roots(mgr);
  const std::vector<std::string> before = dumps_of(mgr, roots);

  const std::string path = tmp_path(
      "rt_" + std::to_string(static_cast<int>(disc)) +
      (export_mode ? "_x" : "_f"));
  snapshot::SaveOptions opts;
  opts.mode = export_mode ? snapshot::SaveMode::kExportRoots
                          : snapshot::SaveMode::kFullStore;
  const snapshot::SaveStats s = snapshot::save(mgr, path, roots, opts);
  EXPECT_GT(s.bytes, 0u);
  EXPECT_EQ(s.roots, roots.size());

  snapshot::RestoreResult res = snapshot::restore(path, config);
  EXPECT_TRUE(res.stats.ref_preserving);
  if (!export_mode) {
    EXPECT_EQ(res.stats.levels_adopted, res.stats.levels)
        << "same-config full restore must adopt every chain";
  } else {
    EXPECT_EQ(res.stats.levels_adopted, 0u);
  }
  ASSERT_EQ(res.roots.size(), roots.size());
  for (std::size_t i = 0; i < roots.size(); ++i) {
    EXPECT_EQ(res.roots[i].name, roots[i].name);
    EXPECT_EQ(core::dump_function(*res.manager, res.roots[i].bdd), before[i])
        << "root " << roots[i].name;
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllDisciplines, SnapshotRoundTrip,
    testing::Combine(testing::Values(TableDiscipline::kPassLock,
                                     TableDiscipline::kSharded,
                                     TableDiscipline::kLockFree),
                     testing::Bool()));

// Cross-config restore: a snapshot saved at one worker count / discipline
// restores under a different one through the rehash fallback, preserving
// every function.
TEST(Snapshot, CrossConfigRestore) {
  core::BddManager mgr(10, cfg(4, TableDiscipline::kSharded, 4));
  const std::vector<snapshot::NamedRoot> roots = build_roots(mgr);
  const std::vector<std::string> before = dumps_of(mgr, roots);
  const std::string path = tmp_path("xcfg");
  snapshot::save(mgr, path, roots);

  for (const core::Config& target :
       {cfg(1, TableDiscipline::kPassLock), cfg(2, TableDiscipline::kLockFree),
        cfg(3, TableDiscipline::kSharded, 8)}) {
    snapshot::RestoreResult res = snapshot::restore(path, target);
    EXPECT_FALSE(res.stats.ref_preserving);
    EXPECT_EQ(res.stats.levels_adopted, 0u);
    ASSERT_EQ(res.roots.size(), roots.size());
    for (std::size_t i = 0; i < roots.size(); ++i) {
      EXPECT_EQ(core::dump_function(*res.manager, res.roots[i].bdd),
                before[i]);
    }
  }
  std::remove(path.c_str());
}

// Export-roots snapshots cross table disciplines in both directions — the
// replication tier's exact traffic pattern: a kLockFree writer ships to a
// kSharded replica, and a snapshot the replica re-exports restores back
// under the writer's discipline. Both restore (fresh manager) and
// import_into (merge into a live manager) must preserve every function.
TEST(Snapshot, ExportCrossesDisciplinesBothWays) {
  const std::pair<core::Config, core::Config> pairings[] = {
      {cfg(4, TableDiscipline::kLockFree), cfg(2, TableDiscipline::kSharded, 4)},
      {cfg(2, TableDiscipline::kSharded, 4), cfg(4, TableDiscipline::kLockFree)},
      {cfg(1, TableDiscipline::kPassLock), cfg(3, TableDiscipline::kLockFree)},
  };
  snapshot::SaveOptions opts;
  opts.mode = snapshot::SaveMode::kExportRoots;
  for (const auto& [writer_cfg, replica_cfg] : pairings) {
    core::BddManager writer(10, writer_cfg);
    const std::vector<snapshot::NamedRoot> roots = build_roots(writer);
    const std::vector<std::string> before = dumps_of(writer, roots);
    const std::string fwd = tmp_path("xdisc_fwd");
    const std::string back = tmp_path("xdisc_back");
    snapshot::save(writer, fwd, roots, opts);

    // Writer discipline -> replica discipline.
    snapshot::RestoreResult res = snapshot::restore(fwd, replica_cfg);
    ASSERT_EQ(res.roots.size(), roots.size());
    for (std::size_t i = 0; i < roots.size(); ++i) {
      EXPECT_EQ(core::dump_function(*res.manager, res.roots[i].bdd),
                before[i]);
    }

    // Replica's re-export restores back under the writer's discipline.
    snapshot::save(*res.manager, back, res.roots, opts);
    snapshot::RestoreResult round = snapshot::restore(back, writer_cfg);
    ASSERT_EQ(round.roots.size(), roots.size());
    for (std::size_t i = 0; i < roots.size(); ++i) {
      EXPECT_EQ(core::dump_function(*round.manager, round.roots[i].bdd),
                before[i]);
    }

    // And the merge path: import the replica-made snapshot into a live
    // manager of the writer's discipline holding the same functions.
    snapshot::RestoreStats rs;
    const std::vector<snapshot::NamedRoot> imported =
        snapshot::import_into(writer, back, &rs);
    ASSERT_EQ(imported.size(), roots.size());
    for (std::size_t i = 0; i < roots.size(); ++i) {
      EXPECT_TRUE(imported[i].bdd == roots[i].bdd)
          << "cross-discipline import must dedupe to the canonical handle";
    }
    std::remove(fwd.c_str());
    std::remove(back.c_str());
  }
}

// CRC guard: truncation anywhere and a bit flip anywhere must be rejected
// (every byte of the file is covered by the header, directory, section, or
// root-table checksum).
TEST(Snapshot, CorruptionRejected) {
  core::BddManager mgr(10, cfg(2, TableDiscipline::kPassLock));
  const std::vector<snapshot::NamedRoot> roots = build_roots(mgr, 4);
  const std::string path = tmp_path("corrupt");
  snapshot::save(mgr, path, roots);
  const std::vector<std::uint8_t> good = slurp(path);
  ASSERT_GT(good.size(), snapshot::kHeaderBytes);

  // Sanity: the pristine file restores.
  EXPECT_NO_THROW(snapshot::restore(path, cfg(2, TableDiscipline::kPassLock)));

  // Truncations: mid-header, mid-directory, mid-section, one byte short.
  for (const std::size_t keep :
       {std::size_t{10}, snapshot::kHeaderBytes + 3, good.size() / 2,
        good.size() - 1}) {
    std::vector<std::uint8_t> bad(good.begin(),
                                  good.begin() + static_cast<std::ptrdiff_t>(keep));
    spit(path, bad);
    EXPECT_THROW(snapshot::restore(path, {}), std::runtime_error)
        << "truncated to " << keep;
    EXPECT_THROW(snapshot::import_into(mgr, path), std::runtime_error);
  }

  // Bit flips sampled across the whole file.
  for (const std::size_t pos :
       {std::size_t{0}, std::size_t{12}, snapshot::kHeaderBytes + 1,
        good.size() / 3, good.size() / 2, good.size() - 2}) {
    std::vector<std::uint8_t> bad = good;
    bad[pos] ^= 0x40;
    spit(path, bad);
    EXPECT_THROW(snapshot::restore(path, {}), std::runtime_error)
        << "bit flip at " << pos;
  }
  std::remove(path.c_str());
}

// Snapshot-of-snapshot: save, restore under the same config, save again —
// the two files must be byte-identical (the format has no timestamps and
// restore preserves slot numbering and chain order).
TEST(Snapshot, SnapshotOfSnapshotIsByteIdentical) {
  for (const bool export_mode : {false, true}) {
    core::BddManager mgr(10, cfg(4, TableDiscipline::kLockFree));
    const std::vector<snapshot::NamedRoot> roots = build_roots(mgr);
    const std::string p1 = tmp_path(export_mode ? "ss1x" : "ss1");
    const std::string p2 = tmp_path(export_mode ? "ss2x" : "ss2");
    snapshot::SaveOptions opts;
    opts.mode = export_mode ? snapshot::SaveMode::kExportRoots
                            : snapshot::SaveMode::kFullStore;
    snapshot::save(mgr, p1, roots, opts);
    snapshot::RestoreResult res =
        snapshot::restore(p1, cfg(4, TableDiscipline::kLockFree));
    snapshot::save(*res.manager, p2, res.roots, opts);
    EXPECT_EQ(slurp(p1), slurp(p2)) << (export_mode ? "export" : "full");
    std::remove(p1.c_str());
    std::remove(p2.c_str());
  }
}

// Export mode piggybacks on the GC mark phase: nodes unreachable from the
// requested roots are not written.
TEST(Snapshot, ExportExcludesDeadNodes) {
  core::BddManager mgr(12, cfg(2, TableDiscipline::kPassLock));
  std::vector<snapshot::NamedRoot> roots = build_roots(mgr);
  // Persist only the middle product bit; everything reachable solely from
  // the other outputs is dead weight the export must not carry.
  const std::vector<snapshot::NamedRoot> subset = {roots[roots.size() / 2]};
  const std::string dump =
      core::dump_function(mgr, subset[0].bdd);
  const std::string full_path = tmp_path("xd_full");
  const std::string export_path = tmp_path("xd_exp");
  snapshot::save(mgr, full_path, roots);
  snapshot::SaveOptions opts;
  opts.mode = snapshot::SaveMode::kExportRoots;
  const snapshot::SaveStats s = snapshot::save(mgr, export_path, subset, opts);
  EXPECT_EQ(s.nodes, mgr.node_count(subset[0].bdd))
      << "export must write exactly the root's internal nodes";
  EXPECT_LT(s.nodes, snapshot::inspect(full_path).total_nodes);

  snapshot::RestoreResult res = snapshot::restore(export_path, {});
  ASSERT_EQ(res.roots.size(), 1u);
  EXPECT_EQ(core::dump_function(*res.manager, res.roots[0].bdd), dump);
  // Saving after the export must leave the source manager fully usable
  // (marks cleared): a full GC keeps every registered root intact.
  mgr.gc();
  EXPECT_EQ(core::dump_function(mgr, subset[0].bdd), dump);
  std::remove(full_path.c_str());
  std::remove(export_path.c_str());
}

// import_into deduplicates against the live store: importing a snapshot of
// functions the manager already holds creates no lasting growth and yields
// handles equal to the existing ones.
TEST(Snapshot, ImportDeduplicates) {
  core::BddManager mgr(10, cfg(2, TableDiscipline::kSharded, 2));
  const std::vector<snapshot::NamedRoot> roots = build_roots(mgr);
  const std::string path = tmp_path("dedupe");
  snapshot::SaveOptions opts;
  opts.mode = snapshot::SaveMode::kExportRoots;
  snapshot::save(mgr, path, roots, opts);

  mgr.gc();
  const std::size_t live_before = mgr.live_nodes();
  snapshot::RestoreStats rs;
  const std::vector<snapshot::NamedRoot> imported =
      snapshot::import_into(mgr, path, &rs);
  ASSERT_EQ(imported.size(), roots.size());
  for (std::size_t i = 0; i < roots.size(); ++i) {
    EXPECT_TRUE(imported[i].bdd == roots[i].bdd)
        << "import of an existing function must return the canonical handle";
  }
  mgr.gc();
  EXPECT_EQ(mgr.live_nodes(), live_before);
  std::remove(path.c_str());
}

// import_into also works into a *different* build, merging stores.
TEST(Snapshot, ImportIntoForeignManager) {
  core::BddManager a(10, cfg(2, TableDiscipline::kPassLock));
  const std::vector<snapshot::NamedRoot> ra = build_roots(a, 5);
  const std::vector<std::string> da = dumps_of(a, ra);
  const std::string path = tmp_path("foreign");
  snapshot::save(a, path, ra);

  core::BddManager b(16, cfg(3, TableDiscipline::kLockFree));
  const std::vector<snapshot::NamedRoot> rb = build_roots(b, 4);
  const std::vector<std::string> db = dumps_of(b, rb);
  const std::vector<snapshot::NamedRoot> imported =
      snapshot::import_into(b, path);
  ASSERT_EQ(imported.size(), ra.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(core::dump_function(b, imported[i].bdd), da[i]);
  }
  // The import must not have disturbed b's own functions.
  for (std::size_t i = 0; i < rb.size(); ++i) {
    EXPECT_EQ(core::dump_function(b, rb[i].bdd), db[i]);
  }
  std::remove(path.c_str());
}

TEST(Snapshot, InspectReportsHeader) {
  core::BddManager mgr(10, cfg(4, TableDiscipline::kSharded, 4));
  const std::vector<snapshot::NamedRoot> roots = build_roots(mgr);
  const std::string path = tmp_path("inspect");
  snapshot::save(mgr, path, roots);
  const snapshot::SnapshotInfo info = snapshot::inspect(path);
  EXPECT_EQ(info.version, snapshot::kFormatVersion);
  EXPECT_EQ(info.num_vars, 10u);
  EXPECT_EQ(info.workers, 4u);
  EXPECT_EQ(info.discipline, TableDiscipline::kSharded);
  EXPECT_EQ(info.root_count, roots.size());
  EXPECT_TRUE(info.has_chains());
  EXPECT_FALSE(info.export_mode());
  std::remove(path.c_str());
}

TEST(Snapshot, RejectsForeignRootsAndMissingFiles) {
  core::BddManager a(8, cfg(1, TableDiscipline::kPassLock));
  core::BddManager b(8, cfg(1, TableDiscipline::kPassLock));
  const std::vector<snapshot::NamedRoot> foreign = {{"x", b.var(0)}};
  EXPECT_THROW(snapshot::save(a, tmp_path("rf"), foreign), std::runtime_error);
  EXPECT_THROW(snapshot::restore(tmp_path("does_not_exist"), {}),
               std::runtime_error);
  EXPECT_THROW(snapshot::inspect(tmp_path("does_not_exist")),
               std::runtime_error);
}

// ---- Service integration ----------------------------------------------------

namespace svc_helpers {

/// One conjunction batch over the service vars; registers its root.
service::RequestResult build_root(service::BddService& svc,
                                  service::SessionId sid, unsigned seed) {
  std::vector<core::BatchOp> ops;
  ops.push_back(core::BatchOp{Op::And, svc.var(seed % svc.config().num_vars),
                              svc.var((seed + 3) % svc.config().num_vars)});
  ops.push_back(core::BatchOp{Op::Xor, svc.var((seed + 1) % svc.config().num_vars),
                              svc.nvar((seed + 5) % svc.config().num_vars)});
  return svc.execute(sid, std::move(ops), {});
}

}  // namespace svc_helpers

TEST(SnapshotService, SaveAndRestoreSession) {
  const std::string path = tmp_path("svc");
  std::vector<std::string> dumps;
  {
    service::ServiceConfig cfg;
    cfg.num_vars = 12;
    cfg.engine.workers = 2;
    service::BddService svc(cfg);
    const service::SessionId sid = svc.open_session();
    ASSERT_NE(sid, service::kInvalidSession);
    for (unsigned k = 0; k < 4; ++k) {
      const service::RequestResult r = svc_helpers::build_root(svc, sid, k);
      ASSERT_EQ(r.status, service::RequestStatus::kOk);
      for (const core::Bdd& b : r.roots) {
        svc.quiesce_and([&](core::BddManager& m) {
          dumps.push_back(core::dump_function(m, b));
        });
      }
    }
    const service::RequestResult saved =
        svc.save_session(sid, path).get();
    ASSERT_EQ(saved.status, service::RequestStatus::kOk) << saved.error;
    EXPECT_GT(svc.metrics().snapshots_saved, 0u);
    EXPECT_GT(svc.metrics().snapshot_bytes_written, 0u);
  }

  // A fresh service resurrects the session's roots from the file.
  service::ServiceConfig cfg2;
  cfg2.num_vars = 12;
  cfg2.engine.workers = 4;  // different engine shape on purpose
  cfg2.engine.table_discipline = TableDiscipline::kLockFree;
  service::BddService svc2(cfg2);
  const service::SessionId sid2 = svc2.open_session();
  const service::RequestResult restored =
      svc2.restore_session(sid2, path).get();
  ASSERT_EQ(restored.status, service::RequestStatus::kOk) << restored.error;
  ASSERT_EQ(restored.roots.size(), dumps.size());
  for (std::size_t i = 0; i < dumps.size(); ++i) {
    svc2.quiesce_and([&](core::BddManager& m) {
      EXPECT_EQ(core::dump_function(m, restored.roots[i]), dumps[i]);
    });
  }
  EXPECT_EQ(svc2.metrics().snapshots_restored, 1u);
  EXPECT_GT(svc2.metrics().snapshot_nodes_restored, 0u);
  EXPECT_GT(svc2.session_accounted_nodes(sid2), 0u)
      << "restored roots must be accounted against the session quota";
  std::remove(path.c_str());
}

TEST(SnapshotService, SaveFailsCleanlyOnBadPath) {
  service::ServiceConfig cfg;
  cfg.num_vars = 8;
  service::BddService svc(cfg);
  const service::SessionId sid = svc.open_session();
  const service::RequestResult r =
      svc.save_session(sid, "/nonexistent_dir_zz/x.snap").get();
  EXPECT_EQ(r.status, service::RequestStatus::kFailed);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(svc.metrics().snapshot_failures, 1u);
  // The service stays healthy afterwards.
  EXPECT_EQ(svc_helpers::build_root(svc, sid, 1).status,
            service::RequestStatus::kOk);
}

TEST(SnapshotService, PeriodicCheckpointFires) {
  const std::string path = tmp_path("ckpt");
  std::remove(path.c_str());
  service::ServiceConfig cfg;
  cfg.num_vars = 12;
  cfg.engine.workers = 2;
  cfg.checkpoint_every_batches = 2;
  cfg.checkpoint_path = path;
  service::BddService svc(cfg);
  const service::SessionId sid = svc.open_session();
  for (unsigned k = 0; k < 8; ++k) {
    ASSERT_EQ(svc_helpers::build_root(svc, sid, k).status,
              service::RequestStatus::kOk);
  }
  // Checkpoints ride the queue behind the batches; wait for at least one.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (svc.metrics().snapshots_saved == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const service::ServiceMetrics m = svc.metrics();
  ASSERT_GT(m.snapshots_saved, 0u);
  EXPECT_EQ(m.snapshot_failures, 0u);
  EXPECT_GT(m.snapshot_pause_ns_max, 0u);
  EXPECT_GT(m.snapshot_pause_ns_p95, 0u);
  EXPECT_NE(svc.metrics_json().find("\"snapshot_pause_ns_p95\""),
            std::string::npos);

  // The checkpoint file is a valid snapshot of the session's roots.
  const snapshot::SnapshotInfo info = snapshot::inspect(path);
  EXPECT_TRUE(info.export_mode());
  std::remove(path.c_str());
}

}  // namespace
