// Shared completed-results cache: key semantics, lossy publication, the
// seqlock torn-read guarantee under concurrent hammering, GC partition
// flushes, and the manager-level oversubscription guard that decides
// whether the cache is engaged at all.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/bdd_manager.hpp"
#include "core/shared_cache.hpp"

namespace pbdd {
namespace {

using namespace pbdd::core;

NodeRef nref(unsigned worker, unsigned var, std::uint32_t slot) {
  return make_node_ref(worker, var, slot);
}

TEST(SharedComputeCache, DisabledUntilInit) {
  SharedComputeCache cache;
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.entry_count(), 0u);
  cache.init(6);
  EXPECT_TRUE(cache.enabled());
  EXPECT_EQ(cache.entry_count(), 64u);
  EXPECT_EQ(cache.bytes(), 64u * 32u);
}

TEST(SharedComputeCache, MissThenHitRoundTrip) {
  SharedComputeCache cache;
  cache.init(8);
  const NodeRef f = nref(0, 3, 7);
  const NodeRef g = nref(1, 5, 9);
  EXPECT_EQ(cache.lookup(Op::And, f, g), kInvalid);
  const NodeRef result = nref(0, 2, 11);
  cache.insert(Op::And, f, g, result);
  EXPECT_EQ(cache.lookup(Op::And, f, g), result);
}

TEST(SharedComputeCache, KeyIncludesOperatorAndOperandOrder) {
  SharedComputeCache cache;
  cache.init(8);
  const NodeRef f = nref(0, 3, 7);
  const NodeRef g = nref(1, 5, 9);
  cache.insert(Op::And, f, g, kOne);
  EXPECT_EQ(cache.lookup(Op::Or, f, g), kInvalid);
  EXPECT_EQ(cache.lookup(Op::Xor, f, g), kInvalid);
  // A different-slot key misses outright; a same-slot different key is
  // rejected by the stored f/g comparison even when the op tag matches.
  EXPECT_EQ(cache.lookup(Op::And, g, f), kInvalid);
}

TEST(SharedComputeCache, RepublishOverwritesLossily) {
  SharedComputeCache cache;
  cache.init(4);
  const NodeRef f = nref(0, 1, 1);
  const NodeRef g = nref(0, 1, 2);
  cache.insert(Op::And, f, g, kOne);
  // Same key again: a fresh claim bumps the sequence and overwrites.
  cache.insert(Op::And, f, g, kZero);
  EXPECT_EQ(cache.lookup(Op::And, f, g), kZero);
}

TEST(SharedComputeCache, FlushPartitionInvalidatesExactlyItsRange) {
  SharedComputeCache cache;
  cache.init(10);
  std::vector<std::uint64_t> keys;
  for (std::uint32_t i = 0; i < 512; ++i) {
    cache.insert(Op::Or, nref(0, 1, i), nref(0, 2, i), nref(0, 0, i));
  }
  std::size_t before = 0;
  for (std::uint32_t i = 0; i < 512; ++i) {
    if (cache.lookup(Op::Or, nref(0, 1, i), nref(0, 2, i)) != kInvalid) {
      ++before;
    }
  }
  ASSERT_GT(before, 0u);
  for (unsigned part = 0; part < 4; ++part) cache.flush_partition(part, 4);
  for (std::uint32_t i = 0; i < 512; ++i) {
    EXPECT_EQ(cache.lookup(Op::Or, nref(0, 1, i), nref(0, 2, i)), kInvalid);
  }
}

// The anti-tearing property the seqlock protocol must provide: every hit
// returns the result that was published *with* the matching key, never a
// mix of two publications that raced on the same slot. Each (f, g, op) key
// deterministically encodes its own correct result, so any torn read is
// detected immediately.
TEST(SharedComputeCache, ConcurrentHammerNeverTearsAnEntry) {
  SharedComputeCache cache;
  cache.init(6);  // tiny: 64 entries maximizes same-slot collisions
  constexpr unsigned kThreads = 4;
  constexpr std::uint32_t kKeys = 512;
  constexpr int kRounds = 2000;
  auto key_f = [](std::uint32_t k) { return nref(0, k % 37, k); };
  auto key_g = [](std::uint32_t k) { return nref(1, k % 41, k * 3 + 1); };
  auto key_result = [](std::uint32_t k) { return nref(2, k % 29, k ^ 0x5a5a); };

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint32_t rng = 0x9e3779b9u * (t + 1);
      for (int round = 0; round < kRounds && !failed.load(); ++round) {
        rng = rng * 1664525u + 1013904223u;
        const std::uint32_t k = rng % kKeys;
        if ((rng >> 16) & 1) {
          cache.insert(Op::Xor, key_f(k), key_g(k), key_result(k));
        } else {
          const NodeRef hit = cache.lookup(Op::Xor, key_f(k), key_g(k));
          if (hit != kInvalid && hit != key_result(k)) failed.store(true);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load()) << "lookup returned a torn or foreign result";
}

// Manager level: the oversubscription guard. With max_active_workers = 1 a
// four-worker manager must compute bit-identical functions while only
// worker 0 ever claims a top-level operation.
TEST(SharedComputeCache, MaxActiveWorkersCapsParticipationNotResults) {
  auto build = [](unsigned workers, unsigned cap) {
    Config config;
    config.workers = workers;
    config.max_active_workers = cap;
    config.gc_min_nodes = 1u << 10;
    BddManager mgr(8, config);
    std::vector<Bdd> vars;
    for (unsigned v = 0; v < 8; ++v) vars.push_back(mgr.var(v));
    Bdd acc = mgr.one();
    for (unsigned v = 0; v + 1 < 8; ++v) {
      acc = mgr.apply(Op::And, acc, mgr.apply(Op::Xor, vars[v], vars[v + 1]));
    }
    const double count = mgr.sat_count(acc);
    const ManagerStats stats = mgr.stats();
    std::uint64_t passive_top_ops = 0;
    const unsigned active = cap == 0 ? workers : cap;
    for (unsigned id = active; id < workers; ++id) {
      passive_top_ops += stats.per_worker[id].top_ops;
    }
    return std::pair<double, std::uint64_t>(count, passive_top_ops);
  };
  const auto [uncapped_count, dummy] = build(4, 0);
  const auto [capped_count, passive_ops] = build(4, 1);
  EXPECT_EQ(uncapped_count, capped_count);
  EXPECT_EQ(passive_ops, 0u) << "a passive worker claimed a batch item";
}

// With a single active worker the shared cache must stay disengaged (the
// private cache alone is strictly cheaper), and with several active workers
// an oversubscribed build must still agree with the 1-worker oracle.
TEST(SharedComputeCache, SharedHitsOnlyWhenMultipleWorkersActive) {
  auto run = [](unsigned workers, unsigned cap) {
    Config config;
    config.workers = workers;
    config.max_active_workers = cap;
    config.shared_cache_log2 = 12;
    config.shared_cache_levels = 0;  // every level: maximize traffic
    config.eval_threshold = 1u << 6;
    BddManager mgr(12, config);
    std::vector<Bdd> vars;
    for (unsigned v = 0; v < 12; ++v) vars.push_back(mgr.var(v));
    std::vector<BatchOp> batch;
    for (unsigned v = 0; v < 12; ++v) {
      batch.push_back({Op::Xor, vars[v], vars[(v * 5 + 3) % 12]});
    }
    std::vector<Bdd> firsts = mgr.apply_batch(batch);
    Bdd acc = mgr.zero();
    for (Bdd& b : firsts) acc = mgr.apply(Op::Or, acc, b);
    const double count = mgr.sat_count(acc);
    return std::pair<double, std::uint64_t>(
        count, mgr.stats().total.cache_shared_hits);
  };
  const auto [capped_count, capped_hits] = run(4, 1);
  EXPECT_EQ(capped_hits, 0u)
      << "shared cache engaged with a single active worker";
  const auto [full_count, full_hits] = run(4, 0);
  EXPECT_EQ(full_count, capped_count);
  (void)full_hits;  // hit count is timing-dependent; correctness is not
}

}  // namespace
}  // namespace pbdd
