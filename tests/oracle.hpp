// Shared test oracles: brute-force truth tables over a small number of
// variables, plus a deterministic random-expression generator used to
// cross-check every construction engine against ground truth and against
// each other.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "circuit/netlist.hpp"
#include "common/op.hpp"
#include "util/prng.hpp"

namespace pbdd::test {

/// A Boolean function of up to 6 variables as a 64-bit truth table
/// (bit i = value under the assignment encoded by i, variable v = bit v of
/// i). Enough for exhaustive small-function checks.
class TruthTable64 {
 public:
  static TruthTable64 input(unsigned v, unsigned num_vars) {
    TruthTable64 t(num_vars);
    for (unsigned i = 0; i < (1u << num_vars); ++i) {
      if (i & (1u << v)) t.bits_ |= std::uint64_t{1} << i;
    }
    return t;
  }

  static TruthTable64 constant(bool value, unsigned num_vars) {
    TruthTable64 t(num_vars);
    t.bits_ = value ? t.mask() : 0;
    return t;
  }

  TruthTable64 apply(Op op, const TruthTable64& other) const {
    TruthTable64 t(num_vars_);
    for (unsigned i = 0; i < (1u << num_vars_); ++i) {
      const bool a = (bits_ >> i) & 1;
      const bool b = (other.bits_ >> i) & 1;
      if (apply_bits(op, a, b)) t.bits_ |= std::uint64_t{1} << i;
    }
    return t;
  }

  [[nodiscard]] bool eval(unsigned assignment_index) const {
    return (bits_ >> assignment_index) & 1;
  }

  [[nodiscard]] unsigned num_vars() const { return num_vars_; }
  [[nodiscard]] std::uint64_t bits() const { return bits_; }

  friend bool operator==(const TruthTable64& a,
                         const TruthTable64& b) = default;

 private:
  explicit TruthTable64(unsigned num_vars) : num_vars_(num_vars) {}

  [[nodiscard]] std::uint64_t mask() const {
    const unsigned n = 1u << num_vars_;
    return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
  }

  unsigned num_vars_;
  std::uint64_t bits_ = 0;
};

/// A random Boolean expression as a flat program: each step combines two
/// previous results (or leaf variables) with a random operator. Every engine
/// under test interprets the same program, so results are comparable.
struct ExprProgram {
  struct Step {
    Op op;
    // Operand encoding: 0..num_vars-1 = variable, then num_vars+k = result
    // of step k.
    unsigned lhs;
    unsigned rhs;
  };
  unsigned num_vars;
  std::vector<Step> steps;

  static ExprProgram random(unsigned num_vars, unsigned num_steps,
                            std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    ExprProgram p;
    p.num_vars = num_vars;
    p.steps.reserve(num_steps);
    for (unsigned k = 0; k < num_steps; ++k) {
      const unsigned universe = num_vars + k;
      p.steps.push_back(Step{
          static_cast<Op>(rng.below(kNumOps)),
          static_cast<unsigned>(rng.below(universe)),
          static_cast<unsigned>(rng.below(universe)),
      });
    }
    return p;
  }

  /// Evaluate the whole program on truth tables; returns the per-step
  /// results (the final step is the program's "output").
  [[nodiscard]] std::vector<TruthTable64> eval_truth() const {
    std::vector<TruthTable64> env;
    env.reserve(num_vars + steps.size());
    for (unsigned v = 0; v < num_vars; ++v) {
      env.push_back(TruthTable64::input(v, num_vars));
    }
    for (const Step& s : steps) {
      env.push_back(env[s.lhs].apply(s.op, env[s.rhs]));
    }
    return {env.begin() + num_vars, env.end()};
  }

  /// Evaluate through any BDD-like engine. `Engine` must provide types and
  /// methods: Handle var(unsigned), Handle apply(Op, Handle, Handle).
  template <typename Engine, typename Handle>
  std::vector<Handle> eval_engine(Engine& engine) const {
    std::vector<Handle> env;
    env.reserve(num_vars + steps.size());
    for (unsigned v = 0; v < num_vars; ++v) env.push_back(engine.var(v));
    for (const Step& s : steps) {
      env.push_back(engine.apply(s.op, env[s.lhs], env[s.rhs]));
    }
    return {env.begin() + num_vars, env.end()};
  }
};

/// Gate-level simulation with one gate forced to a constant — the faulty
/// half of the stuck-at oracle. Identical to Circuit::simulate except that
/// `gate`'s computed (or input) value is replaced by `stuck_value` before
/// any fanout consumes it.
inline std::vector<bool> simulate_stuck_at(const circuit::Circuit& c,
                                           const std::vector<bool>& inputs,
                                           std::uint32_t gate,
                                           bool stuck_value) {
  if (gate >= c.num_gates()) {
    throw std::invalid_argument("simulate_stuck_at: gate out of range");
  }
  std::vector<bool> value(c.num_gates(), false);
  for (std::size_t i = 0; i < c.inputs().size(); ++i) {
    value[c.inputs()[i]] = inputs[i];
  }
  std::vector<bool> fanin_values;
  for (std::uint32_t id = 0; id < c.num_gates(); ++id) {
    const circuit::Gate& g = c.gate(id);
    if (g.type != circuit::GateType::Input) {
      fanin_values.clear();
      for (const std::uint32_t f : g.fanins) {
        fanin_values.push_back(value[f]);
      }
      value[id] = circuit::eval_gate(g.type, fanin_values);
    }
    if (id == gate) value[id] = stuck_value;
  }
  std::vector<bool> out;
  out.reserve(c.outputs().size());
  for (const std::uint32_t o : c.outputs()) out.push_back(value[o]);
  return out;
}

/// Exhaustive stuck-at observability oracle: ground truth for src/fault/.
/// A fault is *detectable* iff some input assignment drives at least one
/// primary output to a value different from the fault-free circuit.
/// Exponential in the input count — keep oracle circuits small (the fault
/// tests stay at or below 8 inputs).
inline bool fault_detectable(const circuit::Circuit& c, std::uint32_t gate,
                             bool stuck_value) {
  const unsigned n = static_cast<unsigned>(c.inputs().size());
  if (n > 20) {
    throw std::invalid_argument("fault_detectable: too many inputs");
  }
  std::vector<bool> inputs(n, false);
  for (std::uint64_t a = 0; a < (std::uint64_t{1} << n); ++a) {
    for (unsigned v = 0; v < n; ++v) inputs[v] = (a >> v) & 1;
    if (c.simulate(inputs) != simulate_stuck_at(c, inputs, gate, stuck_value)) {
      return true;
    }
  }
  return false;
}

}  // namespace pbdd::test
