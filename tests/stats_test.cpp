// Statistics plumbing: totals must equal per-worker sums, lock-wait totals
// must equal per-variable sums (regression: the Fig. 17 harness once read a
// counter that was never aggregated), reset_stats must clear what it says
// it clears, and the memory accounting must cover its parts.
#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "circuit/generators.hpp"
#include "circuit/ordering.hpp"
#include <algorithm>
#include <memory>
#include <string>

#include "core/bdd_manager.hpp"

namespace pbdd {
namespace {

using core::BddManager;
using core::Config;

class StatsTest : public ::testing::Test {
 protected:
  // The manager must outlive every handle (member order matters: outputs_
  // is declared after mgr_ and therefore destroyed first).
  BddManager& make_manager(Config config = {}) {
    mgr_ = std::make_unique<BddManager>(12, config);
    return *mgr_;
  }
  void build_something(BddManager& mgr) {
    const auto bin = circuit::multiplier(6).binarized();
    const auto order = circuit::order_dfs(bin);
    outputs_ = circuit::build_parallel(mgr, bin, order);
  }
  std::unique_ptr<BddManager> mgr_;
  std::vector<core::Bdd> outputs_;
};

TEST_F(StatsTest, TotalsEqualPerWorkerSums) {
  Config config;
  config.workers = 3;
  config.eval_threshold = 256;
  BddManager& mgr = make_manager(config);
  build_something(mgr);
  const core::ManagerStats s = mgr.stats();
  ASSERT_EQ(s.per_worker.size(), 3u);
  core::WorkerStats sum;
  for (const auto& w : s.per_worker) sum += w;
  EXPECT_EQ(s.total.ops_performed, sum.ops_performed);
  EXPECT_EQ(s.total.nodes_created, sum.nodes_created);
  EXPECT_EQ(s.total.cache_lookups, sum.cache_lookups);
  EXPECT_EQ(s.total.cache_hits, sum.cache_hits);
  EXPECT_EQ(s.total.top_ops, sum.top_ops);
  EXPECT_EQ(s.total.lock_wait_ns, sum.lock_wait_ns);
}

TEST_F(StatsTest, LockWaitTotalsMatchPerVariableTable) {
  Config config;
  config.workers = 4;
  config.eval_threshold = 64;
  config.group_size = 8;
  BddManager& mgr = make_manager(config);
  build_something(mgr);
  const core::ManagerStats s = mgr.stats();
  std::uint64_t per_var = 0;
  for (const std::uint64_t w : s.lock_wait_per_var_ns) per_var += w;
  EXPECT_EQ(s.total.lock_wait_ns, per_var);
}

TEST_F(StatsTest, NodesCreatedMatchesLiveNodesWithoutGc) {
  Config config;
  config.workers = 2;
  config.gc_min_nodes = 1u << 30;
  BddManager& mgr = make_manager(config);
  build_something(mgr);
  const core::ManagerStats s = mgr.stats();
  // No collection ran, so every created node is still allocated.
  EXPECT_EQ(s.total.nodes_created, mgr.live_nodes());
  EXPECT_EQ(s.gc_runs, 0u);
}

TEST_F(StatsTest, ResetClearsCountersButNotTheStore) {
  Config config;
  config.workers = 2;
  BddManager& mgr = make_manager(config);
  build_something(mgr);
  const std::size_t live = mgr.live_nodes();
  ASSERT_GT(mgr.stats().total.ops_performed, 0u);
  mgr.reset_stats();
  const core::ManagerStats s = mgr.stats();
  EXPECT_EQ(s.total.ops_performed, 0u);
  EXPECT_EQ(s.total.lock_wait_ns, 0u);
  EXPECT_EQ(s.total.expansion_ns, 0u);
  EXPECT_EQ(mgr.live_nodes(), live) << "reset_stats must not touch nodes";
  // Outputs still evaluate.
  EXPECT_GT(mgr.node_count(outputs_[8]), 0u);
}

TEST_F(StatsTest, MaxNodesPerVarDominatesFinalCounts) {
  BddManager& mgr = make_manager();
  build_something(mgr);
  const auto maxima = mgr.max_nodes_per_var();
  ASSERT_EQ(maxima.size(), 12u);
  // The high-water mark of each variable is at least its current count.
  std::size_t total_max = 0;
  for (const std::size_t m : maxima) total_max += m;
  EXPECT_GE(total_max, mgr.live_nodes());
}

TEST_F(StatsTest, BytesCoverCachesArenasAndTables) {
  Config config;
  config.workers = 2;
  config.cache_log2 = 14;
  BddManager& mgr = make_manager(config);
  const std::size_t empty_bytes = mgr.bytes();
  // Two caches of 2^14 entries are part of the footprint from the start.
  EXPECT_GE(empty_bytes, 2u * (1u << 14) * 32u);
  build_something(mgr);
  EXPECT_GT(mgr.bytes(), empty_bytes);
  EXPECT_GE(mgr.peak_bytes(), mgr.bytes());
}

TEST_F(StatsTest, PhaseTimersPopulateDuringBuilds) {
  Config config;
  config.workers = 2;
  BddManager& mgr = make_manager(config);
  build_something(mgr);
  const core::ManagerStats s = mgr.stats();
  EXPECT_GT(s.total.expansion_ns, 0u);
  EXPECT_GT(s.total.reduction_ns, 0u);
}

TEST_F(StatsTest, ToJsonCarriesTheCountersItClaims) {
  Config config;
  config.workers = 2;
  BddManager& mgr = make_manager(config);
  build_something(mgr);
  const core::ManagerStats s = mgr.stats();
  const std::string json = s.to_json();

  // Structural sanity: balanced braces/brackets, one per-worker record each.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  // Spot-check values round-trip: the serialized total must contain the
  // exact counter values, not a stale or re-sampled copy.
  const auto contains = [&](const std::string& needle) {
    return json.find(needle) != std::string::npos;
  };
  EXPECT_TRUE(contains("\"ops_performed\": " +
                       std::to_string(s.total.ops_performed)));
  EXPECT_TRUE(contains("\"nodes_created\": " +
                       std::to_string(s.total.nodes_created)));
  EXPECT_TRUE(contains("\"allocated_nodes\": " +
                       std::to_string(s.allocated_nodes)));
  EXPECT_TRUE(contains("\"gc_runs\": " + std::to_string(s.gc_runs)));
  EXPECT_TRUE(contains("\"per_worker\""));
  EXPECT_TRUE(contains("\"max_nodes_per_var\""));
  EXPECT_TRUE(contains("\"lock_wait_per_var_ns\""));
  // Two workers -> exactly two per-worker objects, so "ops_performed"
  // appears three times (total + each worker).
  std::size_t occurrences = 0;
  for (std::size_t pos = json.find("\"ops_performed\"");
       pos != std::string::npos;
       pos = json.find("\"ops_performed\"", pos + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 3u);
}

}  // namespace
}  // namespace pbdd
