// Shared node-store invariant checker, usable from gtest suites and from the
// non-gtest torture_replay binary alike: returns an empty string when the
// store is sound, otherwise a description of the first violation.
#pragma once

#include <set>
#include <sstream>
#include <string>
#include <tuple>

#include "core/bdd_manager.hpp"

namespace pbdd::test {

/// Audit every allocated node across all (worker, variable) arenas:
/// no redundant nodes (low == high), ordered children (child level strictly
/// below this variable), and cross-arena canonicity (no two live nodes with
/// the same (var, low, high)).
inline std::string check_store_invariants(core::BddManager& mgr) {
  std::set<std::tuple<unsigned, core::NodeRef, core::NodeRef>> seen;
  for (unsigned w = 0; w < mgr.workers(); ++w) {
    for (unsigned v = 0; v < mgr.num_vars(); ++v) {
      const core::NodeArena& arena = mgr.worker(w).node_arena(v);
      for (std::uint32_t slot = 0; slot < arena.size(); ++slot) {
        const core::BddNode& n = arena.at(slot);
        // Tombstone: a speculative slot a lock-free insert lost and returned
        // to its arena's free list. Dead by construction; skipped.
        if (n.low == core::kInvalid && n.high == core::kInvalid) continue;
        std::ostringstream where;
        where << "worker " << w << " var " << v << " slot " << slot << ": ";
        if (n.low == n.high) {
          return where.str() + "redundant node (low == high)";
        }
        if (core::level_of(n.low) <= v) {
          return where.str() + "low child level not below the node's var";
        }
        if (core::level_of(n.high) <= v) {
          return where.str() + "high child level not below the node's var";
        }
        if (!seen.insert({v, n.low, n.high}).second) {
          return where.str() + "duplicate of another live (var, low, high)";
        }
      }
    }
  }
  return {};
}

}  // namespace pbdd::test
