// Observability suite: the tracer's ring/overflow discipline, the metrics
// registry's sharded-fold conservation, the Chrome-trace exporter validated
// against the offline parser (schema + per-worker content), serialize-mode
// trace determinism, and the service's Prometheus exposition.
//
// The suite is meaningful in every build mode: the Tracer and Registry are
// compiled unconditionally, so their unit tests always run; tests that need
// the engine's instrumentation points (PBDD_TRACE=ON) or the torture
// scheduler (PBDD_TORTURE=ON) skip themselves when the build lacks them.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "circuit/builder.hpp"
#include "circuit/generators.hpp"
#include "circuit/ordering.hpp"
#include "core/bdd_manager.hpp"
#include "obs/metrics.hpp"
#include "obs/prom_parse.hpp"
#include "obs/trace.hpp"
#include "obs/trace_analysis.hpp"
#include "runtime/torture.hpp"
#include "service_driver.hpp"
#include "torture_driver.hpp"

namespace pbdd {
namespace {

using obs::EventKind;
using obs::Tracer;

// ---------------------------------------------------------------------------
// Tracer ring discipline
// ---------------------------------------------------------------------------

TEST(ObsTracerRing, OverflowDropsNewestAndCounts) {
  Tracer& tracer = Tracer::instance();
  obs::TraceConfig config;
  config.buffer_capacity = 16;  // the tracer's minimum per-thread capacity
  tracer.start(config);
  for (std::uint64_t i = 0; i < 40; ++i) {
    tracer.emit(EventKind::kGroupTake, tracer.now_ns(), 0, i, 0);
  }
  tracer.stop();
  const Tracer::Snapshot snap = tracer.collect();
  ASSERT_EQ(snap.records.size(), 16u);
  EXPECT_EQ(snap.dropped, 24u);
  EXPECT_EQ(snap.threads, 1u);
  // Drop-newest: the first capacity records survive, in emission order.
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(snap.records[i].arg0, i);
  }
}

TEST(ObsTracerRing, StartDropsThePreviousSession) {
  Tracer& tracer = Tracer::instance();
  tracer.start();
  for (int i = 0; i < 3; ++i) {
    tracer.emit(EventKind::kGroupTake, tracer.now_ns(), 0, 0, 0);
  }
  tracer.stop();
  ASSERT_EQ(tracer.collect().records.size(), 3u);

  tracer.start();  // new epoch: old buffers must not leak into this session
  tracer.emit(EventKind::kContextPop, tracer.now_ns(), 0, 42, 0);
  tracer.stop();
  const Tracer::Snapshot snap = tracer.collect();
  ASSERT_EQ(snap.records.size(), 1u);
  EXPECT_EQ(snap.records[0].arg0, 42u);
  EXPECT_EQ(snap.dropped, 0u);
}

TEST(ObsTracerRing, DisabledEmitIsIgnored) {
  Tracer& tracer = Tracer::instance();
  tracer.start();
  tracer.stop();
  tracer.emit(EventKind::kGroupTake, 1, 0, 0, 0);  // after stop: dropped
  EXPECT_EQ(tracer.collect().records.size(), 0u);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(ObsMetrics, CounterFoldConservesConcurrentIncrements) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("test_total", "conservation counter");
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(reg.counter_value("test_total"), kThreads * kPerThread);
}

TEST(ObsMetrics, HistogramFoldConservesCountAndSum) {
  obs::Registry reg;
  obs::Histogram& h =
      reg.histogram("test_ns", "conservation histogram", {10, 100, 1000});
  constexpr unsigned kThreads = 4;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (std::uint64_t v = 0; v < 2000; ++v) h.observe(v);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * 2000u);
  EXPECT_EQ(h.sum(), kThreads * (2000u * 1999u / 2));
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // three bounds + the +Inf bucket
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  EXPECT_EQ(total, h.count());
  EXPECT_EQ(buckets[0], kThreads * 11u);  // inclusive upper bound: 0..10
}

TEST(ObsMetrics, PrometheusExposition) {
  obs::Registry reg;
  reg.counter("pbdd_widgets_total", "Widgets made", {{"kind", "round"}})
      .add(3);
  reg.gauge("pbdd_depth", "Queue depth").set(7.5);
  reg.histogram("pbdd_wait_ns", "Wait time", {100, 1000}).observe(150);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE pbdd_widgets_total counter"), std::string::npos);
  EXPECT_NE(text.find("pbdd_widgets_total{kind=\"round\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pbdd_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pbdd_wait_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("pbdd_wait_ns_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("pbdd_wait_ns_count 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Exporter ↔ parser round trip over a real parallel build
// ---------------------------------------------------------------------------

struct TracedBuild {
  obs::ParsedTrace trace;
  std::uint64_t checksum = 0;
  std::uint64_t stall_breaks = 0;
  Tracer::Snapshot snapshot;
};

TracedBuild traced_build_once(unsigned workers, unsigned mult_width) {
  const circuit::Circuit bin = circuit::multiplier(mult_width).binarized();
  const std::vector<unsigned> order = circuit::order_dfs(bin);
  core::Config config;
  config.workers = workers;
  Tracer& tracer = Tracer::instance();
  tracer.start();
  TracedBuild out;
  {
    core::BddManager mgr(static_cast<unsigned>(bin.inputs().size()), config);
    const std::vector<core::Bdd> outputs =
        circuit::build_parallel(mgr, bin, order);
    std::uint64_t checksum = 0xcbf29ce484222325ULL;
    for (const core::Bdd& o : outputs) {
      checksum = (checksum ^ mgr.node_count(o)) * 0x100000001b3ULL;
    }
    out.checksum = checksum;
  }
  tracer.stop();
  out.snapshot = tracer.collect();
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  out.trace = obs::parse_chrome_trace(os.str());
  return out;
}

// On a preempted machine a fast worker can legitimately steal the whole
// build before a slow sibling is ever scheduled, leaving that sibling's
// track empty. The export tests assert per-worker track contents, not
// scheduling fairness, so retry until every worker recorded an expansion
// (practically always the first attempt on an idle machine).
TracedBuild traced_build(unsigned workers, unsigned mult_width) {
  TracedBuild out;
  for (int attempt = 0; attempt < 8; ++attempt) {
    out = traced_build_once(workers, mult_width);
    std::set<std::uint64_t> expanding_tids;
    for (const obs::TraceEvent& e : out.trace.events) {
      if (e.name == "expansion") expanding_tids.insert(e.tid);
    }
    if (expanding_tids.size() >= workers) break;
  }
  return out;
}

TEST(ObsTraceExport, PerfettoSchemaRoundTrip) {
  if (!obs::trace_compiled()) {
    GTEST_SKIP() << "build has PBDD_TRACE=OFF";
  }
  const TracedBuild run = traced_build(/*workers=*/2, /*mult_width=*/6);
  EXPECT_EQ(run.trace.dropped_records, 0u);
  ASSERT_FALSE(run.trace.events.empty());

  // One named track per worker, carrying expansion and reduction spans.
  std::map<std::string, std::map<std::string, unsigned>> kinds_by_track;
  for (const obs::TraceEvent& e : run.trace.events) {
    const auto track = run.trace.tracks.find(e.tid);
    ASSERT_NE(track, run.trace.tracks.end())
        << "event on unnamed tid " << e.tid;
    kinds_by_track[track->second][e.name]++;
  }
  for (const char* worker : {"worker 0", "worker 1"}) {
    ASSERT_TRUE(kinds_by_track.count(worker)) << worker << " track missing";
    EXPECT_GT(kinds_by_track[worker]["expansion"], 0u) << worker;
    EXPECT_GT(kinds_by_track[worker]["reduction"], 0u) << worker;
  }
  // The driver thread brackets every top-level batch.
  ASSERT_TRUE(kinds_by_track.count("driver"));
  EXPECT_GT(kinds_by_track["driver"]["batch_start"], 0u);

  // The analysis layer agrees: the phase view sees both worker rows with
  // nonzero expansion time.
  const obs::PhaseBreakdown phases = obs::phase_breakdown(run.trace);
  unsigned workers_seen = 0;
  for (const auto& row : phases.rows) {
    if (row.track.rfind("worker", 0) == 0) {
      ++workers_seen;
      EXPECT_GT(row.expansion_s, 0.0) << row.track;
    }
  }
  EXPECT_EQ(workers_seen, 2u);
}

TEST(ObsTraceExport, ParserRejectsMalformedDocuments) {
  EXPECT_THROW(obs::parse_chrome_trace("not json"), std::runtime_error);
  EXPECT_THROW(obs::parse_chrome_trace("{}"), std::runtime_error);
  EXPECT_THROW(
      obs::parse_chrome_trace(
          R"({"traceEvents":[{"name":"x","ph":"X","ts":0,"pid":1,"tid":1}]})"),
      std::runtime_error)
      << "an X event without dur must fail schema validation";
}

// ---------------------------------------------------------------------------
// Serialize-mode determinism: same seed → same per-track event sequence
// ---------------------------------------------------------------------------

TEST(ObsTraceTorture, SerializeScheduleYieldsIdenticalKindSequences) {
  if (!obs::trace_compiled()) {
    GTEST_SKIP() << "build has PBDD_TRACE=OFF";
  }
  if (!rt::torture_compiled()) {
    GTEST_SKIP() << "build has PBDD_TORTURE=OFF";
  }
  auto once = [] {
    rt::TortureConfig tc;
    tc.seed = 11;
    tc.mode = rt::TortureMode::kSerialize;
    test::TortureGuard guard(tc);
    TracedBuild run = traced_build(/*workers=*/2, /*mult_width=*/5);
    run.stall_breaks = rt::TortureScheduler::instance().stall_breaks();
    return run;
  };
  const TracedBuild first = once();
  const TracedBuild second = once();
  ASSERT_EQ(first.stall_breaks, 0u) << "watchdog voided determinism";
  ASSERT_EQ(second.stall_breaks, 0u) << "watchdog voided determinism";
  ASSERT_EQ(first.checksum, second.checksum);

  // Timestamps differ across runs; the *sequence of kinds per track* must
  // not (that is the replay guarantee the torture scheduler provides).
  auto sequences = [](const Tracer::Snapshot& snap) {
    std::map<std::uint16_t, std::vector<std::uint8_t>> seq;
    for (const obs::TraceRecord& r : snap.records) {
      seq[r.track].push_back(r.kind);
    }
    return seq;
  };
  EXPECT_EQ(sequences(first.snapshot), sequences(second.snapshot));
}

// ---------------------------------------------------------------------------
// Service exposition
// ---------------------------------------------------------------------------

TEST(ObsService, MetricsTextCoversServiceAndEngineFamilies) {
  service::ServiceConfig cfg;
  cfg.engine.workers = 2;
  service::BddService svc(cfg);
  test::ServiceWorkload wl;
  wl.sessions = 2;
  wl.requests_per_session = 4;
  const test::ServiceRunResult run = test::run_service_workload(svc, wl);
  ASSERT_TRUE(run.error.empty()) << run.error;

  const std::string text = svc.metrics_text();
  // Admission, governor, checkpoint-pause, and engine counter families.
  for (const char* needle :
       {"# TYPE pbdd_service_requests_total counter",
        "pbdd_service_requests_total{event=\"admitted\"}",
        "pbdd_service_rejected_total{reason=\"quota\"}",
        "pbdd_service_governor_gc_total",
        "pbdd_service_checkpoint_pause_ns{stat=\"p95\"}",
        "pbdd_service_queue_depth",
        "# TYPE pbdd_engine_ops_total counter",
        "pbdd_engine_phase_ns_total{phase=\"expansion\"}",
        "pbdd_engine_live_nodes"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << "missing: " << needle;
  }
  // Real traffic ran, so the big counters are nonzero in the rendered text.
  EXPECT_EQ(text.find("pbdd_service_requests_total{event=\"admitted\"} 0\n"),
            std::string::npos);
  EXPECT_EQ(text.find("pbdd_engine_ops_total 0\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Exposition ↔ Prometheus parser round trip
// ---------------------------------------------------------------------------

TEST(ObsMetrics, ExpositionParserRoundTripOnHistograms) {
  obs::Registry reg;
  // Label values and help strings exercising every escape the exposition
  // format defines: backslash and newline in HELP; backslash, quote, and
  // newline in label values.
  reg.counter("pbdd_widgets_total", "Made \\ sold\nacross lines",
              {{"kind", "ro\"und\\slash\nnl"}})
      .add(5);
  reg.gauge("pbdd_depth", "Queue depth").set(7.5);
  obs::Histogram& h =
      reg.histogram("pbdd_wait_ns", "Wait time", {100, 1000});
  h.observe(50);
  h.observe(150);
  h.observe(5000);
  const std::string text = reg.prometheus_text();

  obs::PromDocument doc;
  ASSERT_NO_THROW(doc = obs::parse_prometheus_text(text)) << text;

  ASSERT_TRUE(doc.has_family("pbdd_widgets_total"));
  const obs::PromFamily& ctr = doc.families.at("pbdd_widgets_total");
  EXPECT_EQ(ctr.type, "counter");
  EXPECT_EQ(ctr.help, "Made \\ sold\nacross lines");
  ASSERT_EQ(ctr.samples.size(), 1u);
  EXPECT_EQ(ctr.samples[0].label("kind"), "ro\"und\\slash\nnl");
  EXPECT_EQ(ctr.samples[0].value, 5.0);

  // Histogram series fold back into one typed family: 3 buckets (two
  // finite + +Inf), sum, count.
  ASSERT_TRUE(doc.has_family("pbdd_wait_ns"));
  const obs::PromFamily& hist = doc.families.at("pbdd_wait_ns");
  EXPECT_EQ(hist.type, "histogram");
  double le100 = -1, le1000 = -1, leinf = -1, sum = -1, count = -1;
  for (const obs::PromSample& s : hist.samples) {
    if (s.name == "pbdd_wait_ns_bucket") {
      if (s.label("le") == "100") le100 = s.value;
      if (s.label("le") == "1000") le1000 = s.value;
      if (s.label("le") == "+Inf") leinf = s.value;
    }
    if (s.name == "pbdd_wait_ns_sum") sum = s.value;
    if (s.name == "pbdd_wait_ns_count") count = s.value;
  }
  EXPECT_EQ(le100, 1.0);
  EXPECT_EQ(le1000, 2.0);
  EXPECT_EQ(leinf, 3.0);
  EXPECT_EQ(sum, 5200.0);
  EXPECT_EQ(count, 3.0);

  EXPECT_EQ(doc.value("pbdd_depth"), 7.5);
}

TEST(ObsMetrics, ParserRejectsMalformedExposition) {
  EXPECT_THROW((void)obs::parse_prometheus_text("pbdd_x{le=\"1\" 3\n"),
               std::runtime_error);  // unterminated label block
  EXPECT_THROW((void)obs::parse_prometheus_text("pbdd_x not_a_number\n"),
               std::runtime_error);
  EXPECT_THROW((void)obs::parse_prometheus_text(
                   "# TYPE pbdd_x counter\n# TYPE pbdd_x gauge\n"),
               std::runtime_error);  // re-typed family
}

TEST(ObsMetrics, JsonEscapesControlCharacters) {
  obs::Registry reg;
  reg.counter("pbdd_odd_total", "h", {{"k", "a\"b\\c\nd\te"}}).add(1);
  const std::string js = reg.json();
  EXPECT_NE(js.find("a\\\"b\\\\c\\nd\\te"), std::string::npos) << js;
}

// ---------------------------------------------------------------------------
// Per-track drop attribution
// ---------------------------------------------------------------------------

TEST(ObsTracerRing, DropsAreAttributedPerTrack) {
  Tracer& tracer = Tracer::instance();
  obs::TraceConfig config;
  config.buffer_capacity = 16;
  tracer.start(config);
  // Fill the buffer on the service track, then overflow from two tracks:
  // the attribution must split by the track bound at drop time.
  Tracer::set_thread_track(obs::kTrackService);
  for (std::uint64_t i = 0; i < 26; ++i) {
    tracer.emit(EventKind::kGroupTake, tracer.now_ns(), 0, i, 0);
  }
  Tracer::set_thread_track(obs::kTrackExternal);
  for (std::uint64_t i = 0; i < 4; ++i) {
    tracer.emit(EventKind::kGroupTake, tracer.now_ns(), 0, i, 0);
  }
  tracer.stop();
  const Tracer::Snapshot snap = tracer.collect();
  EXPECT_EQ(snap.dropped, 14u);
  ASSERT_TRUE(snap.dropped_by_track.count(obs::kTrackService));
  ASSERT_TRUE(snap.dropped_by_track.count(obs::kTrackExternal));
  EXPECT_EQ(snap.dropped_by_track.at(obs::kTrackService), 10u);
  EXPECT_EQ(snap.dropped_by_track.at(obs::kTrackExternal), 4u);

  // The export carries the split in otherData, keyed by track name, and the
  // schema parser reads it back.
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const obs::ParsedTrace parsed = obs::parse_chrome_trace(os.str());
  EXPECT_EQ(parsed.dropped_records, 14u);
  ASSERT_TRUE(parsed.dropped_by_track.count("service"));
  ASSERT_TRUE(parsed.dropped_by_track.count("driver"));
  EXPECT_EQ(parsed.dropped_by_track.at("service"), 10u);
  EXPECT_EQ(parsed.dropped_by_track.at("driver"), 4u);
  Tracer::set_thread_track(0);
}

// ---------------------------------------------------------------------------
// Fleet merge: clock alignment, flow synthesis, schema validation
// ---------------------------------------------------------------------------

namespace {

/// Hand-built per-process export in the exact shape write_chrome_trace
/// emits; epoch/offset/wall values pick a deterministic clock geometry.
std::string fleet_input(const std::string& proc, std::uint64_t epoch_ns,
                        const std::string& offsets,
                        const std::string& events) {
  std::string s = "{\n\"traceEvents\": [\n";
  s += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
       "\"args\": {\"name\": \"" + proc + "\"}},\n";
  s += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 1, "
       "\"args\": {\"name\": \"worker 0\"}},\n";
  s += events;
  s += "\n],\n\"otherData\": {\"dropped_records\": 0, ";
  s += "\"process\": {\"name\": \"" + proc + "\", \"pid\": 1}, ";
  s += "\"clock\": {\"steady_epoch_ns\": " + std::to_string(epoch_ns) +
       ", \"export_steady_ns\": 99000000, \"export_wall_us\": 500000}";
  if (!offsets.empty()) s += ", \"clock_offsets\": {" + offsets + "}";
  s += "}\n}\n";
  return s;
}

}  // namespace

TEST(ObsTraceMerge, StitchesFleetWithFlowsAndPassesSchema) {
  // Writer at steady epoch 1ms holding handshake offsets for both replicas;
  // replica clocks are ahead by exactly their offset, so the merged shift
  // realigns their events onto the writer's axis.
  const std::string writer = fleet_input(
      "writer", 1000000, "\"r0\": 5000000, \"r1\": -2000000",
      "{\"name\": \"repl_ship\", \"ph\": \"i\", \"pid\": 1, \"tid\": 1, "
      "\"ts\": 100.0, \"s\": \"t\", \"args\": {\"trace\": \"0xa1\"}},\n"
      "{\"name\": \"repl_ship\", \"ph\": \"i\", \"pid\": 1, \"tid\": 1, "
      "\"ts\": 110.0, \"s\": \"t\", \"args\": {\"trace\": \"0xa2\"}},\n"
      "{\"name\": \"repl_route_read\", \"ph\": \"i\", \"pid\": 1, "
      "\"tid\": 1, \"ts\": 200.0, \"s\": \"t\", "
      "\"args\": {\"trace\": \"0xb1\"}}");
  const std::string r0 = fleet_input(
      "r0", 6000000, "",
      "{\"name\": \"repl_apply\", \"ph\": \"i\", \"pid\": 1, \"tid\": 1, "
      "\"ts\": 400.0, \"s\": \"t\", \"args\": {\"trace\": \"0xa1\"}},\n"
      "{\"name\": \"repl_serve_read\", \"ph\": \"i\", \"pid\": 1, "
      "\"tid\": 1, \"ts\": 450.0, \"s\": \"t\", "
      "\"args\": {\"trace\": \"0xb1\"}}");
  // r1 exports no steady epoch, forcing the wall-anchor fallback path.
  const std::string r1 = fleet_input(
      "r1", 0, "",
      "{\"name\": \"repl_apply\", \"ph\": \"i\", \"pid\": 1, \"tid\": 1, "
      "\"ts\": 500.0, \"s\": \"t\", \"args\": {\"trace\": \"0xa2\"}}");

  obs::MergeResult merged;
  ASSERT_NO_THROW(merged = obs::merge_traces({writer, r0, r1}));

  // Every ship found its apply and the routed read its serve.
  EXPECT_EQ(merged.ship_apply_flows, 2u);
  EXPECT_EQ(merged.route_serve_flows, 1u);

  // The merged document passes the schema-validating parser: three
  // processes, flow-event pairs present, ids preserved.
  obs::ParsedTrace reparsed;
  ASSERT_NO_THROW(reparsed = obs::parse_chrome_trace(merged.json))
      << merged.json;
  EXPECT_EQ(reparsed.processes.size(), 3u);
  std::size_t flow_starts = 0, flow_ends = 0;
  for (const obs::TraceEvent& ev : reparsed.events) {
    if (ev.ph == 's') ++flow_starts;
    if (ev.ph == 'f') ++flow_ends;
    if (ev.ph == 's' || ev.ph == 'f') EXPECT_FALSE(ev.flow_id.empty());
  }
  EXPECT_EQ(flow_starts, 3u);
  EXPECT_EQ(flow_ends, 3u);

  // Handshake alignment: r0's epoch (6ms) minus its offset (5ms) lands 0ms
  // from the writer's epoch (1ms), so its apply keeps its relative distance
  // on the writer's axis rather than its raw ts.
  EXPECT_NE(merged.report.find("Apply lag per replica"), std::string::npos);
  EXPECT_NE(merged.report.find("r0"), std::string::npos);

  // The cross-process report counts routed vs served reads.
  EXPECT_NE(merged.report.find("Routed-read fan-out"), std::string::npos);
  EXPECT_NE(merged.report.find("routed=1 served=1 matched_flows=1"),
            std::string::npos)
      << merged.report;
}

TEST(ObsTraceMerge, RejectsUnparsableInput) {
  EXPECT_THROW((void)obs::merge_traces({"{not json"}), std::runtime_error);
}

TEST(ObsTraceStatus, StatusJsonIsSelfConsistent) {
  Tracer& tracer = Tracer::instance();
  tracer.stop();
  const std::string js = tracer.status_json();
  EXPECT_NE(js.find("\"process\": "), std::string::npos);
  EXPECT_NE(js.find("\"enabled\": false"), std::string::npos);
  EXPECT_NE(js.find("\"records\": "), std::string::npos);
}

}  // namespace
}  // namespace pbdd
