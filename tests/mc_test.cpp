// Symbolic reachability engine: images against explicit-state breadth-first
// search on small transition systems, fixpoint detection, property checking,
// and counterexample trace validity.
#include <gtest/gtest.h>

#include <queue>
#include <set>

#include "core/bdd_manager.hpp"
#include "circuit/bench_io.hpp"
#include "core/fold.hpp"
#include "mc/circuit_system.hpp"
#include "mc/reachability.hpp"
#include "util/prng.hpp"

namespace pbdd {
namespace {

using core::Bdd;
using core::BddManager;
using mc::Reachability;
using mc::VarLayout;

/// Explicit-state oracle: enumerate successor states by brute force over
/// inputs using the same delta functions (evaluated through the BDDs).
std::set<unsigned> explicit_reach(BddManager& mgr, const VarLayout& l,
                                  const std::vector<Bdd>& deltas,
                                  unsigned init_state) {
  std::set<unsigned> reached{init_state};
  std::queue<unsigned> frontier;
  frontier.push(init_state);
  while (!frontier.empty()) {
    const unsigned s = frontier.front();
    frontier.pop();
    for (unsigned x = 0; x < (1u << l.input_bits); ++x) {
      std::vector<bool> assignment(mgr.num_vars(), false);
      for (unsigned i = 0; i < l.state_bits; ++i) {
        assignment[l.current(i)] = (s >> i) & 1;
      }
      for (unsigned j = 0; j < l.input_bits; ++j) {
        assignment[l.input(j)] = (x >> j) & 1;
      }
      unsigned succ = 0;
      for (unsigned i = 0; i < l.state_bits; ++i) {
        if (mgr.eval(deltas[i], assignment)) succ |= 1u << i;
      }
      if (reached.insert(succ).second) frontier.push(succ);
    }
  }
  return reached;
}

/// Decode the symbolic reachable set into explicit states.
std::set<unsigned> decode(BddManager& mgr, const VarLayout& l,
                          const Bdd& set) {
  std::set<unsigned> states;
  for (unsigned s = 0; s < (1u << l.state_bits); ++s) {
    std::vector<bool> assignment(mgr.num_vars(), false);
    for (unsigned i = 0; i < l.state_bits; ++i) {
      assignment[l.current(i)] = (s >> i) & 1;
    }
    if (mgr.eval(set, assignment)) states.insert(s);
  }
  return states;
}

Bdd state_bdd(BddManager& mgr, const VarLayout& l, unsigned s) {
  std::vector<Bdd> literals;
  for (unsigned i = 0; i < l.state_bits; ++i) {
    literals.push_back((s >> i) & 1 ? mgr.var(l.current(i))
                                    : mgr.nvar(l.current(i)));
  }
  return core::and_all(mgr, literals);
}

/// Counter with enable input: s' = s + 1 when enable else s.
std::vector<Bdd> counter_deltas(BddManager& mgr, const VarLayout& l) {
  std::vector<Bdd> deltas;
  Bdd carry = mgr.var(l.input(0));  // enable acts as the initial carry
  for (unsigned i = 0; i < l.state_bits; ++i) {
    const Bdd bit = mgr.var(l.current(i));
    deltas.push_back(mgr.apply(Op::Xor, bit, carry));
    carry = mgr.apply(Op::And, bit, carry);
  }
  return deltas;
}

TEST(Reachability, CounterReachesAllStates) {
  VarLayout l{/*state_bits=*/4, /*input_bits=*/1};
  BddManager mgr(l.total_vars());
  Reachability analyzer(mgr, l, counter_deltas(mgr, l));
  const auto result = analyzer.analyze(state_bdd(mgr, l, 3));
  EXPECT_TRUE(result.fixpoint);
  EXPECT_TRUE(result.property_holds);
  // A wrap-around counter reaches all 16 states from anywhere.
  EXPECT_EQ(decode(mgr, l, result.reachable).size(), 16u);
  // Diameter: 15 increments plus the step discovering nothing new.
  EXPECT_EQ(result.iterations, 15u);
}

TEST(Reachability, ImageMatchesExplicitSuccessors) {
  VarLayout l{3, 2};
  BddManager mgr(l.total_vars());
  // Random deltas over (state, input).
  util::Xoshiro256 rng(77);
  std::vector<Bdd> deltas;
  for (unsigned i = 0; i < l.state_bits; ++i) {
    // delta_i = (s_a AND x_b) XOR s_c
    const Bdd a = mgr.var(l.current(rng.below(l.state_bits)));
    const Bdd b = mgr.var(l.input(rng.below(l.input_bits)));
    const Bdd c = mgr.var(l.current(rng.below(l.state_bits)));
    deltas.push_back(mgr.apply(Op::Xor, mgr.apply(Op::And, a, b), c));
  }
  Reachability analyzer(mgr, l, deltas);
  for (unsigned s = 0; s < 8; ++s) {
    const Bdd img = analyzer.image(state_bdd(mgr, l, s));
    // Explicit successors of s over all 4 inputs.
    std::set<unsigned> expect;
    for (unsigned x = 0; x < 4; ++x) {
      std::vector<bool> assignment(mgr.num_vars(), false);
      for (unsigned i = 0; i < l.state_bits; ++i) {
        assignment[l.current(i)] = (s >> i) & 1;
      }
      for (unsigned j = 0; j < l.input_bits; ++j) {
        assignment[l.input(j)] = (x >> j) & 1;
      }
      unsigned succ = 0;
      for (unsigned i = 0; i < l.state_bits; ++i) {
        if (mgr.eval(deltas[i], assignment)) succ |= 1u << i;
      }
      expect.insert(succ);
    }
    EXPECT_EQ(decode(mgr, l, img), expect) << "state " << s;
  }
}

TEST(Reachability, PreImageInvertsImage) {
  VarLayout l{3, 1};
  BddManager mgr(l.total_vars());
  Reachability analyzer(mgr, l, counter_deltas(mgr, l));
  // t in image(s) iff s in pre_image(t), checked exhaustively.
  for (unsigned s = 0; s < 8; ++s) {
    const auto succs = decode(mgr, l, analyzer.image(state_bdd(mgr, l, s)));
    for (unsigned t = 0; t < 8; ++t) {
      const auto preds =
          decode(mgr, l, analyzer.pre_image(state_bdd(mgr, l, t)));
      EXPECT_EQ(succs.count(t) != 0, preds.count(s) != 0)
          << "s=" << s << " t=" << t;
    }
  }
}

TEST(Reachability, RandomSystemsMatchExplicitSearch) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    VarLayout l{4, 2};
    BddManager mgr(l.total_vars());
    util::Xoshiro256 rng(seed);
    std::vector<Bdd> deltas;
    for (unsigned i = 0; i < l.state_bits; ++i) {
      const Bdd a = mgr.var(l.current(rng.below(l.state_bits)));
      const Bdd b = mgr.var(l.current(rng.below(l.state_bits)));
      const Bdd x = mgr.var(l.input(rng.below(l.input_bits)));
      const Op op1 = static_cast<Op>(rng.below(kNumOps));
      const Op op2 = static_cast<Op>(rng.below(kNumOps));
      deltas.push_back(mgr.apply(op2, mgr.apply(op1, a, x), b));
    }
    Reachability analyzer(mgr, l, deltas);
    const unsigned init = static_cast<unsigned>(rng.below(16));
    const auto result = analyzer.analyze(state_bdd(mgr, l, init));
    EXPECT_TRUE(result.fixpoint);
    EXPECT_EQ(decode(mgr, l, result.reachable),
              explicit_reach(mgr, l, deltas, init))
        << "seed " << seed;
  }
}

TEST(Reachability, CounterexampleTraceIsAValidRun) {
  // Counter starting at 0; "bad" = value 5. The analyzer must return the
  // run 0,1,2,3,4,5 (each step is a legal transition; final state is bad).
  VarLayout l{3, 1};
  BddManager mgr(l.total_vars());
  const auto deltas = counter_deltas(mgr, l);
  Reachability analyzer(mgr, l, deltas);
  const auto result =
      analyzer.analyze(state_bdd(mgr, l, 0), state_bdd(mgr, l, 5));
  ASSERT_FALSE(result.property_holds);
  const auto& trace = result.counterexample;
  ASSERT_EQ(trace.size(), 6u);
  // Validate every step is a real transition for some input.
  for (std::size_t step = 0; step + 1 < trace.size(); ++step) {
    bool legal = false;
    for (unsigned x = 0; x < 2 && !legal; ++x) {
      std::vector<bool> assignment(mgr.num_vars(), false);
      for (unsigned i = 0; i < l.state_bits; ++i) {
        assignment[l.current(i)] = trace[step][i];
      }
      assignment[l.input(0)] = x;
      bool matches = true;
      for (unsigned i = 0; i < l.state_bits; ++i) {
        if (mgr.eval(deltas[i], assignment) != trace[step + 1][i]) {
          matches = false;
          break;
        }
      }
      legal = matches;
    }
    EXPECT_TRUE(legal) << "illegal transition at step " << step;
  }
  // Final state is the bad one (value 5 = 101).
  EXPECT_EQ(trace.back(), (std::vector<bool>{true, false, true}));
}

TEST(Reachability, BadInitialStateGivesLengthOneTrace) {
  VarLayout l{3, 1};
  BddManager mgr(l.total_vars());
  Reachability analyzer(mgr, l, counter_deltas(mgr, l));
  const auto result =
      analyzer.analyze(state_bdd(mgr, l, 2), state_bdd(mgr, l, 2));
  ASSERT_FALSE(result.property_holds);
  ASSERT_EQ(result.counterexample.size(), 1u);
  EXPECT_EQ(result.counterexample[0],
            (std::vector<bool>{false, true, false}));
}

TEST(Reachability, MaxIterationBoundStopsEarly) {
  VarLayout l{4, 1};
  BddManager mgr(l.total_vars());
  Reachability analyzer(mgr, l, counter_deltas(mgr, l));
  const auto result =
      analyzer.analyze(state_bdd(mgr, l, 0), std::nullopt, 3);
  EXPECT_FALSE(result.fixpoint);
  EXPECT_EQ(result.iterations, 3u);
  EXPECT_EQ(decode(mgr, l, result.reachable).size(), 4u);  // 0..3
}

TEST(Reachability, ParallelManagerProducesSameReachableSet) {
  VarLayout l{4, 2};
  core::Config par;
  par.workers = 3;
  par.eval_threshold = 64;
  BddManager seq_mgr(l.total_vars());
  BddManager par_mgr(l.total_vars(), par);
  std::set<unsigned> sets[2];
  int k = 0;
  for (BddManager* mgr : {&seq_mgr, &par_mgr}) {
    Reachability analyzer(*mgr, l, counter_deltas(*mgr, l));
    const auto result = analyzer.analyze(state_bdd(*mgr, l, 7));
    sets[k++] = decode(*mgr, l, result.reachable);
  }
  EXPECT_EQ(sets[0], sets[1]);
}

TEST(CircuitSystem, LfsrReachabilityMatchesExplicitCycle) {
  // Galois LFSR over x^3 + x + 1, seeded by forcing state 001 reachable:
  // q0' = q2; q1' = q0 XOR q2; q2' = q1. From 001 the cycle visits all 7
  // nonzero states; 000 is absorbing and unreachable from 001.
  const char* text = R"(
INPUT(seed)
OUTPUT(tap)
q0 = DFF(n0)
q1 = DFF(n1)
q2 = DFF(n2)
n0 = OR(q2, seed)
n1 = XOR(q0, q2)
n2 = BUFF(q1)
tap = BUFF(q2)
)";
  const circuit::Circuit lfsr = circuit::parse_bench_string(text, "lfsr3");
  const VarLayout layout = mc::CircuitSystem::layout_for(lfsr);
  BddManager mgr(layout.total_vars());
  const auto system = mc::CircuitSystem::build(mgr, lfsr);
  ASSERT_EQ(system.next_state.size(), 3u);
  ASSERT_EQ(system.outputs.size(), 1u);

  // Cross-check every delta against gate-level simulate_step.
  for (unsigned s = 0; s < 8; ++s) {
    for (unsigned x = 0; x < 2; ++x) {
      std::vector<bool> state{(s & 1) != 0, (s & 2) != 0, (s & 4) != 0};
      const auto [outs, next] = lfsr.simulate_step(state, {x != 0});
      std::vector<bool> assignment(mgr.num_vars(), false);
      for (unsigned i = 0; i < 3; ++i) {
        assignment[layout.current(i)] = state[i];
      }
      assignment[layout.input(0)] = x != 0;
      for (unsigned i = 0; i < 3; ++i) {
        EXPECT_EQ(mgr.eval(system.next_state[i], assignment), next[i])
            << "s=" << s << " x=" << x << " bit " << i;
      }
      EXPECT_EQ(mgr.eval(system.outputs[0], assignment), outs[0]);
    }
  }

  // Symbolic reachability from all-zero: seed=1 can kick q0, after which
  // the LFSR cycles; compare against explicit search via simulate_step.
  Reachability analyzer(mgr, layout, system.next_state);
  const auto result = analyzer.analyze(system.initial);
  EXPECT_TRUE(result.fixpoint);
  std::set<unsigned> expect;
  {
    std::queue<unsigned> frontier;
    frontier.push(0);
    expect.insert(0);
    while (!frontier.empty()) {
      const unsigned s = frontier.front();
      frontier.pop();
      for (unsigned x = 0; x < 2; ++x) {
        std::vector<bool> state{(s & 1) != 0, (s & 2) != 0, (s & 4) != 0};
        const auto [outs, next] = lfsr.simulate_step(state, {x != 0});
        unsigned t = 0;
        for (unsigned i = 0; i < 3; ++i) t |= next[i] ? 1u << i : 0u;
        if (expect.insert(t).second) frontier.push(t);
      }
    }
  }
  EXPECT_EQ(decode(mgr, layout, result.reachable), expect);
}

TEST(CircuitSystem, RejectsCombinationalCircuit) {
  const circuit::Circuit comb = circuit::parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
  BddManager mgr(4);
  EXPECT_THROW((void)mc::CircuitSystem::build(mgr, comb),
               std::invalid_argument);
}

}  // namespace
}  // namespace pbdd
