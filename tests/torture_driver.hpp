// Shared torture-run driver: one seeded workload, executed under an enabled
// TortureScheduler and validated exhaustively against 64-bit truth tables
// plus the store invariants. Used by the gtest sweep (torture_test.cpp) and
// the non-gtest replay binary (torture_replay.cpp), so results come back as
// data rather than assertions.
#pragma once

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/generators.hpp"
#include "circuit/ordering.hpp"
#include "core/bdd_manager.hpp"
#include "fault/fault.hpp"
#include "ooc/level_pager.hpp"
#include "oracle.hpp"
#include "runtime/torture.hpp"
#include "snapshot/snapshot.hpp"
#include "store_invariants.hpp"
#include "util/prng.hpp"

namespace pbdd::test {

/// RAII enable/disable around a torture run. The scheduler's log survives
/// disable(), so dump_log() stays valid after the guard is gone.
class TortureGuard {
 public:
  explicit TortureGuard(const rt::TortureConfig& config) {
    rt::TortureScheduler::instance().enable(config);
  }
  ~TortureGuard() { rt::TortureScheduler::instance().disable(); }
  TortureGuard(const TortureGuard&) = delete;
  TortureGuard& operator=(const TortureGuard&) = delete;
};

struct TortureRunResult {
  std::string error;  ///< empty on success, first mismatch otherwise
  std::vector<std::size_t> node_counts;  ///< per surviving function, at end
  std::string event_log;
  std::uint64_t groups_stolen = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t stall_breaks = 0;
  std::uint64_t events = 0;
  std::uint64_t snapshot_cycles = 0;  ///< save+restore+swap rounds completed
  std::uint64_t ooc_demotions = 0;    ///< levels spilled to disk (ooc_budget)
  std::uint64_t ooc_faults = 0;       ///< levels faulted back in (ooc_budget)
};

namespace detail {

inline std::string validate_env(core::BddManager& mgr,
                                const std::vector<core::Bdd>& env,
                                const std::vector<TruthTable64>& tts,
                                unsigned num_vars, int step) {
  std::vector<bool> assignment(num_vars);
  for (std::size_t k = 0; k < env.size(); ++k) {
    for (unsigned i = 0; i < (1u << num_vars); ++i) {
      for (unsigned v = 0; v < num_vars; ++v) {
        assignment[v] = (i >> v) & 1;
      }
      if (mgr.eval(env[k], assignment) != tts[k].eval(i)) {
        std::ostringstream msg;
        msg << "step " << step << " fn " << k << " assignment " << i
            << ": engine disagrees with the truth table";
        return msg.str();
      }
    }
  }
  return {};
}

}  // namespace detail

/// Run `steps` seeded workload steps (applies, independent batches, handle
/// churn, explicit collections) on a fresh manager, validating the whole
/// environment exhaustively every 16 steps and once more after a final
/// collection. The caller is expected to hold a TortureGuard; this function
/// reads the scheduler's log and counters after the manager is destroyed.
///
/// dag_permille > 0 turns that fraction (out of 1000) of the batch steps
/// into dependency-carrying batches: items reference earlier items of the
/// same batch through BatchOp::f_dep/g_dep, so the workers' in-batch dep
/// resolution races the steal and GC machinery under the active schedule.
/// The extra dice are drawn only when the knob is nonzero, so every
/// existing seed's random stream — and therefore its replay — is unchanged.
///
/// snapshot_every > 0 adds checkpoint/restore churn: every N steps the whole
/// environment is export-saved (src/snapshot/), restored into a *fresh*
/// manager under the same config, and the run continues in the restored
/// manager — so the kSnapshotWrite/kSnapshotRestore points interleave with
/// the steal/GC machinery, and any restore corruption is caught by the same
/// exhaustive truth-table validation as everything else.
///
/// ooc_budget > 0 attaches an out-of-core LevelPager (src/ooc/) with that
/// resident-node budget: every batch barrier demotes cold levels to disk and
/// every touch of a spilled level faults it back, so the kOocSpill/kOocFault
/// points race the steal, GC and checkpoint machinery, and any paging
/// corruption is caught by the exhaustive validation. A tiny budget (1)
/// thrashes maximally: every level spills at every barrier.
inline TortureRunResult run_torture_workload(const core::Config& config,
                                             unsigned num_vars, int steps,
                                             std::uint64_t program_seed,
                                             int snapshot_every = 0,
                                             int dag_permille = 0,
                                             std::size_t ooc_budget = 0) {
  TortureRunResult out;
  util::Xoshiro256 rng(program_seed);
  std::uint64_t groups_stolen = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t snapshot_cycles = 0;
  const std::string snap_path =
      "/tmp/pbdd_torture_" + std::to_string(::getpid()) + "_" +
      std::to_string(program_seed) + ".snap";
  const std::string spill_dir =
      "/tmp/pbdd_ooc_torture_" + std::to_string(::getpid()) + "_" +
      std::to_string(program_seed);
  if (ooc_budget > 0) ::mkdir(spill_dir.c_str(), 0755);
  {
    auto mgr_owner = std::make_unique<core::BddManager>(num_vars, config);
    core::BddManager* mgr = mgr_owner.get();
    // Destroyed before the manager it is attached to (declared after it);
    // recreated for the restored manager on every snapshot swap.
    std::unique_ptr<ooc::LevelPager> pager;
    auto attach_pager = [&] {
      if (ooc_budget == 0) return;
      ooc::PagerConfig pc;
      pc.spill_dir = spill_dir;
      pc.node_budget = ooc_budget;
      pager = std::make_unique<ooc::LevelPager>(*mgr, pc);
    };
    auto fold_pager = [&] {
      if (!pager) return;
      const ooc::PagerStats ps = pager->stats();
      out.ooc_demotions += ps.demotions;
      out.ooc_faults += ps.faults;
      pager.reset();
    };
    attach_pager();
    std::vector<core::Bdd> env;
    std::vector<TruthTable64> tts;
    for (unsigned v = 0; v < num_vars; ++v) {
      env.push_back(mgr->var(v));
      tts.push_back(TruthTable64::input(v, num_vars));
    }
    auto pick = [&] { return rng.below(env.size()); };

    for (int step = 0; step < steps && out.error.empty(); ++step) {
      const std::uint64_t dice = rng.below(100);
      if (dice < 55) {  // single top-level apply
        const Op op = static_cast<Op>(rng.below(kNumOps));
        const std::size_t a = pick(), b = pick();
        env.push_back(mgr->apply(op, env[a], env[b]));
        tts.push_back(tts[a].apply(op, tts[b]));
      } else if (dice < 80) {  // batch of independent or dep-carrying ops
        const bool dag =
            dag_permille > 0 &&
            rng.below(1000) < static_cast<std::uint64_t>(dag_permille);
        std::vector<core::BatchOp> batch;
        std::vector<TruthTable64> expected;
        const unsigned count = 2 + static_cast<unsigned>(rng.below(5));
        for (unsigned i = 0; i < count; ++i) {
          const Op op = static_cast<Op>(rng.below(kNumOps));
          core::BatchOp item{op, core::Bdd{}, core::Bdd{}, -1, -1};
          auto operand = [&](std::int32_t& dep,
                             core::Bdd& h) -> TruthTable64 {
            if (dag && i > 0 && rng.below(2) == 0) {
              dep = static_cast<std::int32_t>(rng.below(i));
              return expected[static_cast<std::size_t>(dep)];
            }
            const std::size_t a = pick();
            h = env[a];
            return tts[a];
          };
          const TruthTable64 ta = operand(item.f_dep, item.f);
          const TruthTable64 tb = operand(item.g_dep, item.g);
          batch.push_back(std::move(item));
          expected.push_back(ta.apply(op, tb));
        }
        auto results = mgr->apply_batch(batch);
        for (unsigned i = 0; i < count; ++i) {
          env.push_back(std::move(results[i]));
          tts.push_back(expected[i]);
        }
      } else if (dice < 90) {  // handle churn: drop a suffix, copy survivors
        if (env.size() > 2 * num_vars) {
          const std::size_t keep =
              num_vars + rng.below(env.size() - num_vars);
          env.erase(env.begin() + static_cast<std::ptrdiff_t>(keep),
                    env.end());
          tts.erase(tts.begin() + static_cast<std::ptrdiff_t>(keep),
                    tts.end());
        }
        const std::size_t a = pick();
        env.push_back(env[a]);
        tts.push_back(tts[a]);
      } else if (dice < 96) {  // explicit stop-the-world collection
        mgr->gc();
      } else {  // ITE exercises the two-round batch path
        const std::size_t a = pick(), b = pick(), c = pick();
        env.push_back(mgr->ite(env[a], env[b], env[c]));
        tts.push_back(tts[a]
                          .apply(Op::And, tts[b])
                          .apply(Op::Or, tts[c].apply(Op::Diff, tts[a])));
      }

      // Checkpoint/restore churn: swap the whole world for its snapshot.
      if (snapshot_every > 0 && out.error.empty() &&
          step % snapshot_every == snapshot_every - 1) {
        std::vector<snapshot::NamedRoot> named;
        named.reserve(env.size());
        for (std::size_t k = 0; k < env.size(); ++k) {
          named.push_back({std::to_string(k), env[k]});
        }
        snapshot::SaveOptions sopts;
        sopts.mode = snapshot::SaveMode::kExportRoots;
        snapshot::save(*mgr, snap_path, named, sopts);
        named.clear();  // old-manager handles must die before the manager
        snapshot::RestoreResult res = snapshot::restore(snap_path, config);
        std::remove(snap_path.c_str());
        if (res.roots.size() != env.size()) {
          std::ostringstream msg;
          msg << "step " << step << ": snapshot round trip returned "
              << res.roots.size() << " roots, expected " << env.size();
          out.error = msg.str();
          break;
        }
        std::vector<core::Bdd> restored;
        restored.reserve(env.size());
        for (snapshot::NamedRoot& nr : res.roots) {
          restored.push_back(std::move(nr.bdd));
        }
        env = std::move(restored);
        res.roots.clear();
        // Fold the doomed manager's counters in before it goes. The pager
        // must detach from the old manager before it dies and re-attach to
        // the restored one.
        fold_pager();
        const core::ManagerStats old_stats = mgr->stats();
        groups_stolen += old_stats.total.groups_stolen;
        gc_runs += old_stats.gc_runs;
        mgr_owner = std::move(res.manager);  // destroys the old manager
        mgr = mgr_owner.get();
        attach_pager();
        ++snapshot_cycles;
        out.error = detail::validate_env(*mgr, env, tts, num_vars, step);
        if (out.error.empty()) out.error = check_store_invariants(*mgr);
      }

      if (step % 16 == 15 && out.error.empty()) {
        out.error = detail::validate_env(*mgr, env, tts, num_vars, step);
        if (out.error.empty()) out.error = check_store_invariants(*mgr);
      }
    }

    if (out.error.empty()) {
      mgr->gc();
      out.error = detail::validate_env(*mgr, env, tts, num_vars, steps);
      if (out.error.empty()) out.error = check_store_invariants(*mgr);
      for (const core::Bdd& f : env) {
        out.node_counts.push_back(mgr->node_count(f));
      }
    }
    fold_pager();
    const core::ManagerStats stats = mgr->stats();
    groups_stolen += stats.total.groups_stolen;
    gc_runs += stats.gc_runs;
  }
  if (ooc_budget > 0) ::rmdir(spill_dir.c_str());
  out.groups_stolen = groups_stolen;
  out.gc_runs = gc_runs;
  out.snapshot_cycles = snapshot_cycles;
  auto& sched = rt::TortureScheduler::instance();
  out.event_log = sched.dump_log();
  out.stall_breaks = sched.stall_breaks();
  out.events = sched.event_count();
  return out;
}

struct FaultTortureResult {
  std::string error;  ///< empty on success
  std::uint64_t waves = 0;
  std::uint64_t faults = 0;
  std::uint64_t gc_interleaves = 0;        ///< collections forced mid-campaign
  std::uint64_t snapshot_interleaves = 0;  ///< checkpoint writes mid-campaign
};

/// Fault-campaign torture run: a full stuck-at campaign over a seeded
/// 6-input random circuit, with stop-the-world collections and snapshot
/// writes injected *between waves* via the campaign's wave callback — so
/// the shared golden BDDs, the wave batching, and the GC/checkpoint
/// machinery race under the active torture schedule. Every verdict is then
/// checked against the exhaustive simulate-all-assignments oracle. The
/// caller holds the TortureGuard.
inline FaultTortureResult run_fault_torture(const core::Config& config,
                                            std::uint64_t program_seed,
                                            std::size_t batch_faults,
                                            int gc_every,
                                            int snapshot_every) {
  FaultTortureResult out;
  const circuit::Circuit bin =
      circuit::random_circuit(6, 48, program_seed).binarized();
  const std::vector<unsigned> order = circuit::order_dfs(bin);
  const std::string snap_path =
      "/tmp/pbdd_fault_torture_" + std::to_string(::getpid()) + "_" +
      std::to_string(program_seed) + ".snap";

  core::BddManager mgr(static_cast<unsigned>(bin.inputs().size()), config);
  {
    fault::FaultCampaign campaign(mgr, bin, order);
    fault::FaultSimOptions fopts;
    fopts.batch_faults = batch_faults;
    fopts.wave_callback = [&](std::size_t wave) {
      if (gc_every > 0 && (wave + 1) % static_cast<std::size_t>(gc_every) == 0) {
        mgr.gc();  // collection races the campaign's retained goldens
        ++out.gc_interleaves;
      }
      if (snapshot_every > 0 &&
          (wave + 1) % static_cast<std::size_t>(snapshot_every) == 0) {
        // Checkpoint write mid-campaign: export the golden outputs while
        // fault waves are in flight, as the service's periodic checkpoints
        // do around a live campaign.
        std::vector<snapshot::NamedRoot> named;
        const std::vector<core::Bdd> outs = campaign.golden_outputs();
        for (std::size_t k = 0; k < outs.size(); ++k) {
          named.push_back({std::to_string(k), outs[k]});
        }
        snapshot::SaveOptions sopts;
        sopts.mode = snapshot::SaveMode::kExportRoots;
        snapshot::save(mgr, snap_path, named, sopts);
        std::remove(snap_path.c_str());
        ++out.snapshot_interleaves;
      }
    };

    const std::vector<fault::NetFaultResult> results = campaign.run(fopts);
    out.waves = campaign.stats().waves;
    out.faults = campaign.stats().faults_evaluated;

    const std::size_t expected = fault::enumerate_fault_sites(bin).size();
    if (results.size() != expected) {
      std::ostringstream msg;
      msg << "campaign resolved " << results.size() << " nets, expected "
          << expected;
      out.error = msg.str();
      return out;
    }
    for (const fault::NetFaultResult& r : results) {
      const bool want_sa0 = !fault_detectable(bin, r.gate, false);
      const bool want_sa1 = !fault_detectable(bin, r.gate, true);
      if (r.sa0_equivalent != want_sa0 || r.sa1_equivalent != want_sa1) {
        out.error = "net " + r.net + ": verdict disagrees with the oracle";
        return out;
      }
    }
  }
  out.error = check_store_invariants(mgr);
  return out;
}

}  // namespace pbdd::test
