// Per-variable unique table: canonicity, chain integrity across worker
// arenas, resizing, lock-wait accounting, and GC rehash support.
#include <gtest/gtest.h>

#include <thread>

#include "core/node_arena.hpp"
#include "core/unique_table.hpp"
#include "util/prng.hpp"

namespace pbdd {
namespace {

using namespace pbdd::core;

class UniqueTableTest : public ::testing::Test {
 protected:
  static constexpr unsigned kVar = 3;
  static constexpr unsigned kWorkers = 2;

  void SetUp() override {
    std::vector<NodeArena*> ptrs;
    for (auto& a : arenas_) ptrs.push_back(&a);
    table_.init(kVar, ptrs, 16);
  }

  NodeArena arenas_[kWorkers];
  VarUniqueTable table_;
};

TEST_F(UniqueTableTest, InsertThenFindReturnsSameRef) {
  bool created = false;
  const NodeRef a = table_.find_or_insert(0, kZero, kOne, created);
  EXPECT_TRUE(created);
  EXPECT_EQ(worker_of(a), 0u);
  EXPECT_EQ(var_of(a), kVar);
  const NodeRef b = table_.find_or_insert(0, kZero, kOne, created);
  EXPECT_FALSE(created);
  EXPECT_EQ(a, b);
  EXPECT_EQ(table_.count(), 1u);
}

TEST_F(UniqueTableTest, DuplicateFromOtherWorkerIsFound) {
  bool created = false;
  const NodeRef a = table_.find_or_insert(0, kZero, kOne, created);
  // Worker 1 asking for the same (low, high) must find worker 0's node,
  // not allocate its own copy — canonicity across worker arenas.
  const NodeRef b = table_.find_or_insert(1, kZero, kOne, created);
  EXPECT_FALSE(created);
  EXPECT_EQ(a, b);
  EXPECT_EQ(arenas_[1].size(), 0u);
}

TEST_F(UniqueTableTest, ManyInsertsForceResizeAndStayCanonical) {
  util::Xoshiro256 rng(3);
  std::vector<std::pair<NodeRef, NodeRef>> keys;
  std::vector<NodeRef> refs;
  bool created = false;
  // Unique (low, high) pairs built over synthetic child refs.
  for (unsigned i = 0; i < 2000; ++i) {
    const NodeRef low = make_node_ref(0, kVar + 1, i);
    const NodeRef high = make_node_ref(0, kVar + 2, i * 7 + 1);
    keys.emplace_back(low, high);
    refs.push_back(
        table_.find_or_insert(i % kWorkers, low, high, created));
    EXPECT_TRUE(created);
  }
  EXPECT_EQ(table_.count(), 2000u);
  EXPECT_GT(table_.buckets(), 16u) << "table should have grown";
  EXPECT_EQ(table_.max_count(), 2000u);
  // Every key still finds its original node after growth rehashing.
  for (unsigned i = 0; i < 2000; ++i) {
    const NodeRef r =
        table_.find_or_insert(0, keys[i].first, keys[i].second, created);
    EXPECT_FALSE(created);
    EXPECT_EQ(r, refs[i]);
  }
}

TEST_F(UniqueTableTest, ResetChainsAndReinsertRebuildTheTable) {
  bool created = false;
  std::vector<NodeRef> refs;
  for (unsigned i = 0; i < 100; ++i) {
    refs.push_back(table_.find_or_insert(
        0, make_node_ref(0, kVar + 1, i), make_node_ref(0, kVar + 2, i),
        created));
  }
  table_.reset_chains(100);
  EXPECT_EQ(table_.count(), 0u);
  for (unsigned i = 0; i < 100; ++i) {
    const BddNode& n = arenas_[0].at(slot_of(refs[i]));
    table_.reinsert(0, refs[i], n.low, n.high);
  }
  EXPECT_EQ(table_.count(), 100u);
  for (unsigned i = 0; i < 100; ++i) {
    const NodeRef r = table_.find_or_insert(
        0, make_node_ref(0, kVar + 1, i), make_node_ref(0, kVar + 2, i),
        created);
    EXPECT_FALSE(created);
    EXPECT_EQ(r, refs[i]);
  }
  // max_count survives the rebuild (Fig. 15 uses the high-water mark).
  EXPECT_EQ(table_.max_count(), 100u);
}

TEST_F(UniqueTableTest, LockWaitIsChargedToTheWaitingWorker) {
  table_.acquire(0);
  std::thread contender([&] {
    table_.acquire(1);  // must wait until the main thread releases
    table_.release();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  table_.release();
  contender.join();
  EXPECT_GT(table_.lock_wait_ns(1), 10u * 1000 * 1000)
      << "contender should have waited >=10ms";
  EXPECT_EQ(table_.lock_wait_ns(0), 0u);
  EXPECT_EQ(table_.lock_wait_ns_total(), table_.lock_wait_ns(1));
  table_.reset_lock_waits();
  EXPECT_EQ(table_.lock_wait_ns_total(), 0u);
}

TEST_F(UniqueTableTest, TryAcquire) {
  EXPECT_TRUE(table_.try_acquire());
  std::thread other([&] { EXPECT_FALSE(table_.try_acquire()); });
  other.join();
  table_.release();
}

TEST(UniqueTableSharded, CanonicalAcrossSegmentsAndWorkers) {
  NodeArena arenas[2];
  VarUniqueTable table;
  table.init(3, {&arenas[0], &arenas[1]}, 64, /*shards=*/8);
  EXPECT_TRUE(table.sharded());
  EXPECT_EQ(table.shards(), 8u);
  bool created = false;
  std::vector<NodeRef> refs;
  // Sharded mode: find_or_insert locks internally, no acquire() needed.
  for (unsigned i = 0; i < 3000; ++i) {
    refs.push_back(table.find_or_insert(
        i % 2, make_node_ref(0, 4, i), make_node_ref(0, 5, i), created));
    EXPECT_TRUE(created);
  }
  EXPECT_EQ(table.count(), 3000u);
  for (unsigned i = 0; i < 3000; ++i) {
    const NodeRef r = table.find_or_insert(
        (i + 1) % 2, make_node_ref(0, 4, i), make_node_ref(0, 5, i),
        created);
    EXPECT_FALSE(created) << i;
    EXPECT_EQ(r, refs[i]);
  }
}

TEST(UniqueTableSharded, ConcurrentInsertersStayCanonical) {
  // Two threads hammer the same key set through a sharded table; every
  // key must end up with exactly one node.
  NodeArena arenas[2];
  VarUniqueTable table;
  table.init(1, {&arenas[0], &arenas[1]}, 64, /*shards=*/16);
  constexpr unsigned kKeys = 20000;
  std::vector<NodeRef> results[2];
  std::thread threads[2];
  for (unsigned t = 0; t < 2; ++t) {
    threads[t] = std::thread([&, t] {
      results[t].resize(kKeys);
      bool created = false;
      for (unsigned i = 0; i < kKeys; ++i) {
        results[t][i] = table.find_or_insert(
            t, make_node_ref(0, 2, i), make_node_ref(0, 3, i), created);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(table.count(), kKeys);
  for (unsigned i = 0; i < kKeys; ++i) {
    EXPECT_EQ(results[0][i], results[1][i]) << "key " << i;
  }
}

TEST(UniqueTableSharded, ConcurrentInsertDuringRehash) {
  // All workers hammer one variable's table across forced growth: the
  // initial bucket arrays are as small as init() allows, so every segment
  // rehashes several times while the other threads are mid-insert on the
  // same key universe. Every key must still resolve to exactly one node.
  constexpr unsigned kWorkers = 4;
  NodeArena arenas[kWorkers];
  VarUniqueTable table;
  table.init(1, {&arenas[0], &arenas[1], &arenas[2], &arenas[3]}, 16,
             /*shards=*/4);
  constexpr unsigned kKeys = 1u << 15;
  std::vector<NodeRef> results[kWorkers];
  std::thread threads[kWorkers];
  for (unsigned t = 0; t < kWorkers; ++t) {
    threads[t] = std::thread([&, t] {
      results[t].resize(kKeys);
      bool created = false;
      for (unsigned i = 0; i < kKeys; ++i) {
        // Each worker walks the shared key set in a different order (odd
        // strides permute the power-of-two universe), so chain rebuilds
        // interleave with hits and misses from every side.
        const unsigned key = (i * (2 * t + 1) + t * 7919) % kKeys;
        results[t][key] = table.find_or_insert(
            t, make_node_ref(0, 2, key), make_node_ref(0, 3, key), created);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(table.count(), kKeys);
  EXPECT_GT(table.buckets(), 64u) << "growth should have been forced";
  for (unsigned i = 0; i < kKeys; ++i) {
    for (unsigned t = 1; t < kWorkers; ++t) {
      ASSERT_EQ(results[0][i], results[t][i]) << "key " << i;
    }
  }
}

// ---- Lock-free discipline --------------------------------------------------

TEST(UniqueTableLockFree, BasicCanonicityAndIntrospection) {
  NodeArena arenas[2];
  VarUniqueTable table;
  table.init(3, {&arenas[0], &arenas[1]}, 16, /*shards=*/1,
             TableDiscipline::kLockFree);
  EXPECT_TRUE(table.lockfree());
  EXPECT_FALSE(table.sharded());
  EXPECT_FALSE(table.pass_locked());
  bool created = false;
  const NodeRef a = table.find_or_insert(0, kZero, kOne, created);
  EXPECT_TRUE(created);
  const NodeRef b = table.find_or_insert(1, kZero, kOne, created);
  EXPECT_FALSE(created);
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.count(), 1u);
  EXPECT_EQ(arenas[0].size() + arenas[1].size(), 1u);
}

TEST(UniqueTableLockFree, GrowthKeepsEveryKeyReachable) {
  NodeArena arena;
  VarUniqueTable table;
  table.init(3, {&arena}, 16, /*shards=*/1, TableDiscipline::kLockFree);
  bool created = false;
  std::vector<NodeRef> refs;
  for (unsigned i = 0; i < 2000; ++i) {
    refs.push_back(table.find_or_insert(0, make_node_ref(0, 4, i),
                                        make_node_ref(0, 5, i), created));
    EXPECT_TRUE(created);
  }
  EXPECT_EQ(table.count(), 2000u);
  EXPECT_GT(table.buckets(), 16u) << "table should have grown";
  EXPECT_EQ(table.max_count(), 2000u);
  for (unsigned i = 0; i < 2000; ++i) {
    const NodeRef r = table.find_or_insert(0, make_node_ref(0, 4, i),
                                           make_node_ref(0, 5, i), created);
    EXPECT_FALSE(created);
    EXPECT_EQ(r, refs[i]);
  }
}

TEST(UniqueTableLockFree, ConcurrentInsertersStayCanonical) {
  // Two threads hammer the same key set with no mutex anywhere; each key
  // must end with exactly one canonical node, and any slot a losing racer
  // allocated speculatively must be tombstoned and recycled, never leaked
  // as a duplicate.
  NodeArena arenas[2];
  VarUniqueTable table;
  table.init(1, {&arenas[0], &arenas[1]}, 64, /*shards=*/1,
             TableDiscipline::kLockFree);
  constexpr unsigned kKeys = 20000;
  std::vector<NodeRef> results[2];
  std::thread threads[2];
  for (unsigned t = 0; t < 2; ++t) {
    threads[t] = std::thread([&, t] {
      results[t].resize(kKeys);
      bool created = false;
      for (unsigned i = 0; i < kKeys; ++i) {
        results[t][i] = table.find_or_insert(
            t, make_node_ref(0, 2, i), make_node_ref(0, 3, i), created);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(table.count(), kKeys);
  for (unsigned i = 0; i < kKeys; ++i) {
    ASSERT_EQ(results[0][i], results[1][i]) << "key " << i;
  }
  // Duplicate-race audit: every allocated slot is either a published
  // canonical node or a tombstone awaiting recycling.
  unsigned live = 0;
  for (const NodeArena& arena : arenas) {
    for (std::uint32_t slot = 0; slot < arena.size(); ++slot) {
      const BddNode& n = arena.at(slot);
      if (n.low == kInvalid && n.high == kInvalid) continue;  // tombstone
      ++live;
    }
  }
  EXPECT_EQ(live, kKeys) << "losing racers must tombstone their slots";
}

TEST(UniqueTableLockFree, ConcurrentInsertDuringGrow) {
  // The lock-free analogue of ConcurrentInsertDuringRehash: a tiny initial
  // array forces repeated epoch-claimed growth while all four threads are
  // mid-insert, so walkers cross kMovedHead buckets and chains that are
  // being redirected into the fresh array.
  constexpr unsigned kWorkers = 4;
  NodeArena arenas[kWorkers];
  VarUniqueTable table;
  table.init(1, {&arenas[0], &arenas[1], &arenas[2], &arenas[3]}, 16,
             /*shards=*/1, TableDiscipline::kLockFree);
  constexpr unsigned kKeys = 1u << 15;
  std::vector<NodeRef> results[kWorkers];
  std::thread threads[kWorkers];
  for (unsigned t = 0; t < kWorkers; ++t) {
    threads[t] = std::thread([&, t] {
      results[t].resize(kKeys);
      bool created = false;
      for (unsigned i = 0; i < kKeys; ++i) {
        const unsigned key = (i * (2 * t + 1) + t * 7919) % kKeys;
        results[t][key] = table.find_or_insert(
            t, make_node_ref(0, 2, key), make_node_ref(0, 3, key), created);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(table.count(), kKeys);
  EXPECT_GT(table.buckets(), 64u) << "growth should have been forced";
  for (unsigned i = 0; i < kKeys; ++i) {
    for (unsigned t = 1; t < kWorkers; ++t) {
      ASSERT_EQ(results[0][i], results[t][i]) << "key " << i;
    }
  }
}

TEST(UniqueTableLockFree, SpeculativeSlotIsRecycledOnHit) {
  // Single-threaded determinism check of the recycling path: a hit never
  // consumes an arena slot, and a slot freed by free_slot() is reused by
  // the next miss.
  NodeArena arena;
  VarUniqueTable table;
  table.init(3, {&arena}, 16, /*shards=*/1, TableDiscipline::kLockFree);
  bool created = false;
  const NodeRef a =
      table.find_or_insert(0, make_node_ref(0, 4, 0), kOne, created);
  EXPECT_EQ(arena.size(), 1u);
  table.find_or_insert(0, make_node_ref(0, 4, 0), kOne, created);
  EXPECT_FALSE(created);
  EXPECT_EQ(arena.size(), 1u) << "a hit must not consume arena slots";
  arena.free_slot(arena.alloc());
  const NodeRef b =
      table.find_or_insert(0, make_node_ref(0, 4, 1), kOne, created);
  EXPECT_TRUE(created);
  EXPECT_EQ(slot_of(b), 1u) << "freed slot should be reused";
  EXPECT_EQ(arena.size(), 2u);
  EXPECT_NE(a, b);
}

TEST(UniqueTableLockFree, ResetChainsAndConcurrentReinsert) {
  // GC rehash contract: after reset_chains, several workers reinsert
  // concurrently (the rehash phase stripes variables over workers but a
  // lock-free table takes all comers), and max_count survives as the
  // Fig. 15 high-water mark.
  constexpr unsigned kWorkers = 2;
  NodeArena arenas[kWorkers];
  VarUniqueTable table;
  table.init(1, {&arenas[0], &arenas[1]}, 16, /*shards=*/1,
             TableDiscipline::kLockFree);
  constexpr unsigned kKeys = 4000;
  bool created = false;
  std::vector<NodeRef> refs;
  for (unsigned i = 0; i < kKeys; ++i) {
    refs.push_back(table.find_or_insert(i % kWorkers, make_node_ref(0, 2, i),
                                        make_node_ref(0, 3, i), created));
  }
  table.reset_chains(kKeys);
  EXPECT_EQ(table.count(), 0u);
  std::thread threads[kWorkers];
  for (unsigned t = 0; t < kWorkers; ++t) {
    threads[t] = std::thread([&, t] {
      for (unsigned i = 0; i < kKeys; ++i) {
        if (worker_of(refs[i]) != t) continue;
        const BddNode& n = arenas[t].at(slot_of(refs[i]));
        table.reinsert(t, refs[i], n.low, n.high);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(table.count(), kKeys);
  EXPECT_EQ(table.max_count(), kKeys);
  for (unsigned i = 0; i < kKeys; ++i) {
    const NodeRef r = table.find_or_insert(0, make_node_ref(0, 2, i),
                                           make_node_ref(0, 3, i), created);
    EXPECT_FALSE(created);
    EXPECT_EQ(r, refs[i]);
  }
}

TEST(NodeArenaTest, ConcurrentReadsDuringGrowth) {
  // One writer bump-allocates thousands of nodes (forcing directory
  // growth) while readers resolve already-published slots.
  NodeArena arena;
  std::atomic<std::uint32_t> published{0};
  std::atomic<bool> failed{false};
  std::thread writer([&] {
    for (std::uint32_t i = 0; i < 200000; ++i) {
      const std::uint32_t slot = arena.alloc();
      BddNode& n = arena.at_own(slot);
      n.low = i;
      n.high = i + 1;
      published.store(slot + 1, std::memory_order_release);
    }
  });
  std::thread reader([&] {
    util::Xoshiro256 rng(1);
    while (published.load(std::memory_order_acquire) < 200000) {
      const std::uint32_t limit = published.load(std::memory_order_acquire);
      if (limit == 0) continue;
      const std::uint32_t slot =
          static_cast<std::uint32_t>(rng.below(limit));
      const BddNode& n = arena.at(slot);
      if (n.low != slot || n.high != slot + 1) failed = true;
    }
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(arena.size(), 200000u);
}

}  // namespace
}  // namespace pbdd
