// Cofactor, quantification, composition, and the query operations of both
// packages, checked against brute force on small functions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bdd_manager.hpp"
#include "df/df_manager.hpp"
#include "oracle.hpp"

namespace pbdd {
namespace {

using core::Bdd;
using core::BddManager;
using df::DfBdd;
using df::DfManager;
using test::ExprProgram;
using test::TruthTable64;

constexpr unsigned kVars = 5;

std::vector<bool> assignment_from_index(unsigned i, unsigned total_vars) {
  std::vector<bool> a(total_vars, false);
  for (unsigned v = 0; v < total_vars; ++v) a[v] = (i >> v) & 1;
  return a;
}

class QuantifyBoth : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantifyBoth, RestrictAgainstBruteForce) {
  const std::uint64_t seed = GetParam();
  const ExprProgram program = ExprProgram::random(kVars, 30, seed);
  const auto truths = program.eval_truth();
  const TruthTable64& truth = truths.back();

  BddManager core_mgr(kVars);
  DfManager df_mgr(kVars);
  const Bdd cf = program.eval_engine<BddManager, Bdd>(core_mgr).back();
  const DfBdd df = program.eval_engine<DfManager, DfBdd>(df_mgr).back();

  for (unsigned v = 0; v < kVars; ++v) {
    for (const bool value : {false, true}) {
      const Bdd core_r = core_mgr.restrict_(cf, v, value);
      const DfBdd df_r = df_mgr.restrict_(df, v, value);
      for (unsigned i = 0; i < (1u << kVars); ++i) {
        auto a = assignment_from_index(i, kVars);
        auto forced = a;
        forced[v] = value;
        unsigned fi = 0;
        for (unsigned k = 0; k < kVars; ++k) fi |= (forced[k] ? 1u : 0u) << k;
        EXPECT_EQ(core_mgr.eval(core_r, a), truth.eval(fi));
        EXPECT_EQ(df_mgr.eval(df_r, a), truth.eval(fi));
      }
    }
  }
}

TEST_P(QuantifyBoth, ExistsForallAgainstBruteForce) {
  const std::uint64_t seed = GetParam();
  const ExprProgram program = ExprProgram::random(kVars, 30, seed + 100);
  const auto truth = program.eval_truth().back();

  BddManager core_mgr(kVars);
  DfManager df_mgr(kVars);
  const Bdd cf = program.eval_engine<BddManager, Bdd>(core_mgr).back();
  const DfBdd df = program.eval_engine<DfManager, DfBdd>(df_mgr).back();

  const std::vector<std::vector<unsigned>> var_sets{
      {0}, {2, 4}, {0, 1, 3}, {0, 1, 2, 3, 4}};
  for (const auto& vars : var_sets) {
    const Bdd ce = core_mgr.exists(cf, vars);
    const Bdd ca = core_mgr.forall(cf, vars);
    const DfBdd de = df_mgr.exists(df, vars);
    const DfBdd da = df_mgr.forall(df, vars);
    for (unsigned i = 0; i < (1u << kVars); ++i) {
      const auto a = assignment_from_index(i, kVars);
      // Brute force over the quantified variables.
      bool any = false, all = true;
      const unsigned count = 1u << vars.size();
      for (unsigned m = 0; m < count; ++m) {
        unsigned fi = i;
        for (std::size_t k = 0; k < vars.size(); ++k) {
          const unsigned bit = 1u << vars[k];
          fi = (m >> k) & 1 ? (fi | bit) : (fi & ~bit);
        }
        const bool value = truth.eval(fi);
        any = any || value;
        all = all && value;
      }
      EXPECT_EQ(core_mgr.eval(ce, a), any);
      EXPECT_EQ(core_mgr.eval(ca, a), all);
      EXPECT_EQ(df_mgr.eval(de, a), any);
      EXPECT_EQ(df_mgr.eval(da, a), all);
    }
  }
}

TEST_P(QuantifyBoth, ComposeAgainstBruteForce) {
  const std::uint64_t seed = GetParam();
  const ExprProgram pf = ExprProgram::random(kVars, 25, seed + 200);
  const ExprProgram pg = ExprProgram::random(kVars, 25, seed + 300);
  const auto tf = pf.eval_truth().back();
  const auto tg = pg.eval_truth().back();

  BddManager core_mgr(kVars);
  DfManager df_mgr(kVars);
  const Bdd cf = pf.eval_engine<BddManager, Bdd>(core_mgr).back();
  const Bdd cg = pg.eval_engine<BddManager, Bdd>(core_mgr).back();
  const DfBdd df = pf.eval_engine<DfManager, DfBdd>(df_mgr).back();
  const DfBdd dg = pg.eval_engine<DfManager, DfBdd>(df_mgr).back();

  for (unsigned v = 0; v < kVars; ++v) {
    const Bdd cc = core_mgr.compose(cf, v, cg);
    const DfBdd dc = df_mgr.compose(df, v, dg);
    for (unsigned i = 0; i < (1u << kVars); ++i) {
      const auto a = assignment_from_index(i, kVars);
      const bool gv = tg.eval(i);
      unsigned fi = i;
      const unsigned bit = 1u << v;
      fi = gv ? (fi | bit) : (fi & ~bit);
      const bool expect = tf.eval(fi);
      EXPECT_EQ(core_mgr.eval(cc, a), expect) << "core v=" << v << " i=" << i;
      EXPECT_EQ(df_mgr.eval(dc, a), expect) << "df v=" << v << " i=" << i;
    }
  }
}

TEST_P(QuantifyBoth, SatCountAndSupportAgree) {
  const std::uint64_t seed = GetParam();
  const ExprProgram program = ExprProgram::random(kVars, 35, seed + 400);
  const auto truths = program.eval_truth();

  BddManager core_mgr(kVars);
  DfManager df_mgr(kVars);
  const auto cs = program.eval_engine<BddManager, Bdd>(core_mgr);
  const auto ds = program.eval_engine<DfManager, DfBdd>(df_mgr);
  for (std::size_t k = 0; k < cs.size(); ++k) {
    unsigned expect = 0;
    for (unsigned i = 0; i < (1u << kVars); ++i) expect += truths[k].eval(i);
    EXPECT_DOUBLE_EQ(core_mgr.sat_count(cs[k]), static_cast<double>(expect));
    EXPECT_DOUBLE_EQ(df_mgr.sat_count(ds[k]), static_cast<double>(expect));
    EXPECT_EQ(core_mgr.support(cs[k]), df_mgr.support(ds[k]));
    EXPECT_EQ(core_mgr.node_count(cs[k]), df_mgr.node_count(ds[k]));
  }
}

TEST_P(QuantifyBoth, SatOneOnCoreEngine) {
  const std::uint64_t seed = GetParam();
  const ExprProgram program = ExprProgram::random(kVars, 35, seed + 500);
  BddManager mgr(kVars);
  const auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
  for (const Bdd& f : bdds) {
    const auto assignment = mgr.sat_one(f);
    if (f.is_zero()) {
      EXPECT_FALSE(assignment.has_value());
      continue;
    }
    ASSERT_TRUE(assignment.has_value());
    std::vector<bool> concrete(kVars, false);
    for (unsigned v = 0; v < kVars; ++v) concrete[v] = (*assignment)[v] == 1;
    EXPECT_TRUE(mgr.eval(f, concrete));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantifyBoth, ::testing::Values(1, 2, 3));

TEST(Ite, CoreEngineMatchesBruteForce) {
  BddManager mgr(kVars);
  const ExprProgram program = ExprProgram::random(kVars, 24, 9);
  const auto truths = program.eval_truth();
  const auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
  const Bdd ite = mgr.ite(bdds[21], bdds[22], bdds[23]);
  for (unsigned i = 0; i < (1u << kVars); ++i) {
    const auto a = assignment_from_index(i, kVars);
    const bool expect =
        truths[21].eval(i) ? truths[22].eval(i) : truths[23].eval(i);
    EXPECT_EQ(mgr.eval(ite, a), expect);
  }
}

}  // namespace
}  // namespace pbdd
