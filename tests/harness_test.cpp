// Benchmark harness plumbing: CLI parsing, workload resolution, and the
// run_build measurement contract (every figure harness builds on these).
#include <gtest/gtest.h>

#include "harness.hpp"

namespace pbdd {
namespace {

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return argv;
}

TEST(HarnessCli, DefaultsApply) {
  std::vector<std::string> args{"prog"};
  auto argv = argv_of(args);
  const bench::Cli cli =
      bench::parse_cli(static_cast<int>(argv.size()), argv.data(),
                       {"mult-8"});
  EXPECT_EQ(cli.circuit_specs, std::vector<std::string>{"mult-8"});
  EXPECT_EQ(cli.thread_counts, (std::vector<unsigned>{1, 2, 4, 8}));
  EXPECT_TRUE(cli.include_seq);
  EXPECT_FALSE(cli.csv);
}

TEST(HarnessCli, ParsesEveryFlag) {
  std::vector<std::string> args{
      "prog",        "--circuits", "mult-6,c17", "--threads", "2,3",
      "--no-seq",    "--threshold", "1234",      "--group",   "77",
      "--cache-log2", "12",         "--gc-min",  "4096",      "--csv"};
  auto argv = argv_of(args);
  const bench::Cli cli =
      bench::parse_cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(cli.circuit_specs, (std::vector<std::string>{"mult-6", "c17"}));
  EXPECT_EQ(cli.thread_counts, (std::vector<unsigned>{2, 3}));
  EXPECT_FALSE(cli.include_seq);
  EXPECT_EQ(cli.eval_threshold, 1234u);
  EXPECT_EQ(cli.group_size, 77u);
  EXPECT_EQ(cli.cache_log2, 12u);
  EXPECT_EQ(cli.gc_min_nodes, 4096u);
  EXPECT_TRUE(cli.csv);
}

TEST(HarnessWorkload, ResolvesGeneratorSpecs) {
  for (const char* spec :
       {"c2670s", "c3540s", "c17", "mult-6", "alu-4", "cmp-8", "add-8",
        "par-8", "rand-3"}) {
    const bench::Workload w = bench::make_workload(spec);
    EXPECT_GT(w.num_vars, 0u) << spec;
    EXPECT_EQ(w.order.size(), w.num_vars) << spec;
    // Binarized for the builder.
    for (std::uint32_t id = 0; id < w.binarized.num_gates(); ++id) {
      ASSERT_LE(w.binarized.gate(id).fanins.size(), 2u) << spec;
    }
  }
  EXPECT_THROW((void)bench::make_workload("nonsense"), std::runtime_error);
}

TEST(HarnessRun, MeasurementContract) {
  const bench::Workload w = bench::make_workload("mult-6");
  core::Config config;
  config.workers = 2;
  const bench::RunResult a = bench::run_build(w, config);
  EXPECT_GT(a.elapsed_s, 0.0);
  EXPECT_GT(a.peak_mb, 0.0);
  EXPECT_GT(a.total_ops, 0u);
  EXPECT_GT(a.final_live_nodes, 0u);
  // The checksum is a pure function of the workload (canonicity), so a
  // sequential rebuild must reproduce it.
  core::Config seq;
  seq.workers = 1;
  seq.sequential_mode = true;
  const bench::RunResult b = bench::run_build(w, seq);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.final_live_nodes, b.final_live_nodes);
}

TEST(HarnessConfig, SequentialAndParallelLabels) {
  std::vector<std::string> args{"prog"};
  auto argv = argv_of(args);
  const bench::Cli cli =
      bench::parse_cli(static_cast<int>(argv.size()), argv.data());
  const core::Config seq = bench::config_for(cli, 1, true);
  EXPECT_TRUE(seq.sequential_mode);
  EXPECT_EQ(bench::config_label(seq), "Seq");
  const core::Config par = bench::config_for(cli, 4, false);
  EXPECT_FALSE(par.sequential_mode);
  EXPECT_EQ(par.workers, 4u);
  EXPECT_EQ(bench::config_label(par), "4");
}

}  // namespace
}  // namespace pbdd
