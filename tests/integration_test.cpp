// End-to-end integration: formal equivalence checking through the public
// API — the paper's motivating use case. Builds specification and
// implementation circuits into one manager, compares outputs by canonicity,
// and extracts counterexamples for buggy implementations via XOR (exactly
// the technique Section 1 describes).
#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "circuit/generators.hpp"
#include "circuit/netlist.hpp"
#include "circuit/ordering.hpp"
#include "core/bdd_manager.hpp"
#include <cmath>

#include "util/prng.hpp"

namespace pbdd {
namespace {

using circuit::Circuit;
using circuit::GateType;
using core::Bdd;
using core::BddManager;
using core::Config;

/// A "synthesized" n-bit adder: same function as ripple_adder but a
/// different gate structure (NAND-based full adders), playing the role of
/// the implementation under verification.
Circuit nand_adder(unsigned n) {
  Circuit c("nand-adder-" + std::to_string(n));
  std::vector<std::uint32_t> a, b;
  for (unsigned i = 0; i < n; ++i) a.push_back(c.add_input("a" + std::to_string(i)));
  for (unsigned i = 0; i < n; ++i) b.push_back(c.add_input("b" + std::to_string(i)));
  std::uint32_t carry = c.add_input("cin");
  for (unsigned i = 0; i < n; ++i) {
    // XOR via four NANDs; majority carry via NANDs.
    auto nand = [&](std::uint32_t x, std::uint32_t y) {
      return c.add_gate(GateType::Nand, {x, y});
    };
    const auto t1 = nand(a[i], b[i]);
    const auto x_ab =
        nand(nand(a[i], t1), nand(b[i], t1));  // a XOR b
    const auto t2 = nand(x_ab, carry);
    const auto sum = nand(nand(x_ab, t2), nand(carry, t2));
    const auto new_carry = nand(t1, t2);  // majority(a,b,cin)
    c.mark_output(sum, "s" + std::to_string(i));
    carry = new_carry;
  }
  c.mark_output(carry, "cout");
  c.validate();
  return c;
}

/// Merge two circuits over shared primary inputs into one manager and
/// return (spec outputs, impl outputs).
std::pair<std::vector<Bdd>, std::vector<Bdd>> build_pair(
    BddManager& mgr, const Circuit& spec, const Circuit& impl,
    const std::vector<unsigned>& order) {
  const auto spec_out = circuit::build_parallel(mgr, spec.binarized(), order);
  const auto impl_out = circuit::build_parallel(mgr, impl.binarized(), order);
  return {spec_out, impl_out};
}

TEST(Integration, NandAdderEquivalentToRippleAdder) {
  const unsigned n = 8;
  const Circuit spec = circuit::ripple_adder(n);
  const Circuit impl = nand_adder(n);
  ASSERT_EQ(spec.inputs().size(), impl.inputs().size());

  Config config;
  config.workers = 2;
  BddManager mgr(static_cast<unsigned>(spec.inputs().size()), config);
  const auto order = circuit::order_dfs(spec.binarized());
  const auto [spec_out, impl_out] = build_pair(mgr, spec, impl, order);
  ASSERT_EQ(spec_out.size(), impl_out.size());
  for (std::size_t o = 0; o < spec_out.size(); ++o) {
    // Canonicity: equivalence is a handle comparison.
    EXPECT_EQ(spec_out[o].ref(), impl_out[o].ref()) << "output " << o;
  }
}

TEST(Integration, BuggyAdderYieldsCounterexample) {
  const unsigned n = 6;
  const Circuit spec = circuit::ripple_adder(n);
  // Sabotage the implementation: swap a sum gate's XOR for OR (a classic
  // wrong-gate fault).
  Circuit buggy("buggy-adder");
  {
    const Circuit good = nand_adder(n);
    for (std::uint32_t id = 0; id < good.num_gates(); ++id) {
      const auto& g = good.gate(id);
      if (g.type == GateType::Input) {
        buggy.add_input(g.name);
      } else {
        // Flip gate 40 (an internal NAND) into an AND: single stuck fault.
        const GateType t =
            (id == 40) ? GateType::And : g.type;
        buggy.add_gate(t, g.fanins, g.name);
      }
    }
    for (std::size_t i = 0; i < good.outputs().size(); ++i) {
      buggy.mark_output(good.outputs()[i], good.output_names()[i]);
    }
  }

  BddManager mgr(static_cast<unsigned>(spec.inputs().size()));
  const auto order = circuit::order_dfs(spec.binarized());
  const auto [spec_out, impl_out] = build_pair(mgr, spec, buggy, order);

  // The miter: OR over XORs of corresponding outputs. Any satisfying
  // assignment is a counterexample (Section 1 of the paper).
  Bdd miter = mgr.zero();
  for (std::size_t o = 0; o < spec_out.size(); ++o) {
    miter = mgr.apply(Op::Or, miter,
                      mgr.apply(Op::Xor, spec_out[o], impl_out[o]));
  }
  ASSERT_FALSE(miter.is_zero()) << "fault must be observable";
  const auto counterexample = mgr.sat_one(miter);
  ASSERT_TRUE(counterexample.has_value());

  // Replay the counterexample through gate-level simulation of both
  // circuits: they must genuinely disagree.
  std::vector<bool> inputs(spec.inputs().size(), false);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto v = (*counterexample)[order[i]];
    inputs[i] = v == 1;
  }
  EXPECT_NE(spec.simulate(inputs), buggy.simulate(inputs));
}

TEST(Integration, MultiplierCommutesViaCanonicity) {
  // a*b == b*a: build the multiplier once with operands swapped at the
  // variable level and compare output handles.
  const unsigned n = 5;
  const Circuit mult = circuit::multiplier(n);
  const auto bin = mult.binarized();
  BddManager mgr(2 * n);
  const auto order = circuit::order_dfs(bin);
  const auto p1 = circuit::build_parallel(mgr, bin, order);
  // Swapped operand order: input i (an a-bit) takes b-bit's variable.
  std::vector<unsigned> swapped(order.size());
  for (unsigned i = 0; i < n; ++i) {
    swapped[i] = order[i + n];
    swapped[i + n] = order[i];
  }
  const auto p2 = circuit::build_parallel(mgr, bin, swapped);
  for (std::size_t o = 0; o < p1.size(); ++o) {
    EXPECT_EQ(p1[o].ref(), p2[o].ref()) << "product bit " << o;
  }
}

TEST(Integration, AdderSatCountsAreExact) {
  // Each sum bit of an n-bit adder (with carry-in) is balanced: exactly
  // half of the 2^(2n+1) assignments set it.
  const unsigned n = 5;
  const Circuit add = circuit::ripple_adder(n);
  const auto bin = add.binarized();
  BddManager mgr(static_cast<unsigned>(bin.inputs().size()));
  const auto order = circuit::order_dfs(bin);
  const auto outputs = circuit::build_parallel(mgr, bin, order);
  const double total = std::exp2(static_cast<double>(mgr.num_vars()));
  for (unsigned i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(mgr.sat_count(outputs[i]), total / 2.0) << "s" << i;
  }
}

TEST(Integration, TautologyAndContradictionDetection) {
  BddManager mgr(4);
  const Bdd x = mgr.var(0), y = mgr.var(1);
  // (x -> y) OR (y -> x) is a tautology.
  const Bdd t = mgr.apply(Op::Or, mgr.apply(Op::Implies, x, y),
                          mgr.apply(Op::Implies, y, x));
  EXPECT_TRUE(t.is_one());
  // x AND NOT x is a contradiction.
  EXPECT_TRUE(mgr.apply(Op::Diff, x, x).is_zero());
}

TEST(Integration, C17AgainstKnownFunction) {
  // c17's outputs have known expressions over inputs (1,2,3,6,7):
  //   22 = NAND(10,16), 23 = NAND(16,19); check against simulation for all
  //   32 assignments through the BDD.
  const Circuit c = circuit::c17();
  const auto bin = c.binarized();
  BddManager mgr(5);
  const auto order = circuit::order_dfs(bin);
  const auto outputs = circuit::build_parallel(mgr, bin, order);
  for (unsigned m = 0; m < 32; ++m) {
    std::vector<bool> in(5);
    for (unsigned i = 0; i < 5; ++i) in[i] = (m >> i) & 1;
    const auto expect = c.simulate(in);
    std::vector<bool> assignment(5, false);
    for (unsigned i = 0; i < 5; ++i) assignment[order[i]] = in[i];
    for (std::size_t o = 0; o < outputs.size(); ++o) {
      EXPECT_EQ(mgr.eval(outputs[o], assignment), expect[o]);
    }
  }
}

}  // namespace
}  // namespace pbdd
