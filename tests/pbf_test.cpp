// Partial breadth-first engine: correctness against the truth-table oracle
// and the depth-first baseline, across construction modes (sequential,
// single worker with locking, multi-worker) and threshold settings
// (including degenerate thresholds that force deep context-stack nesting).
#include <gtest/gtest.h>

#include "core/bdd_manager.hpp"
#include "df/df_manager.hpp"
#include "oracle.hpp"

namespace pbdd {
namespace {

using core::Bdd;
using core::BddManager;
using core::Config;
using test::ExprProgram;
using test::TruthTable64;

/// Evaluate a Bdd on every assignment of `num_vars` inputs and compare with
/// the truth table.
void expect_matches_truth(BddManager& mgr, const Bdd& f,
                          const TruthTable64& truth) {
  const unsigned n = truth.num_vars();
  for (unsigned i = 0; i < (1u << n); ++i) {
    std::vector<bool> assignment(mgr.num_vars(), false);
    for (unsigned v = 0; v < n; ++v) assignment[v] = (i >> v) & 1;
    ASSERT_EQ(mgr.eval(f, assignment), truth.eval(i))
        << "assignment index " << i;
  }
}

TEST(PbfBasic, ConstantsAndVariables) {
  BddManager mgr(4);
  EXPECT_TRUE(mgr.zero().is_zero());
  EXPECT_TRUE(mgr.one().is_one());
  const Bdd x0 = mgr.var(0);
  const Bdd x1 = mgr.var(1);
  EXPECT_NE(x0.ref(), x1.ref());
  EXPECT_EQ(mgr.var(0).ref(), x0.ref()) << "variables must be canonical";
  const Bdd nx0 = mgr.nvar(0);
  EXPECT_EQ(mgr.not_(x0), nx0);
}

TEST(PbfBasic, SimpleConjunction) {
  BddManager mgr(3);
  const Bdd x0 = mgr.var(0);
  const Bdd x1 = mgr.var(1);
  const Bdd f = mgr.apply(Op::And, x0, x1);
  EXPECT_TRUE(mgr.eval(f, {true, true, false}));
  EXPECT_FALSE(mgr.eval(f, {true, false, false}));
  EXPECT_FALSE(mgr.eval(f, {false, true, false}));
  // Canonicity: rebuilding the same function yields the same node.
  EXPECT_EQ(mgr.apply(Op::And, x1, x0), f);
}

TEST(PbfBasic, PaperFigure1Function) {
  // f = (!b AND !c) OR (a AND b AND c)  -- wait, Figure 1 uses
  // f = (b AND c) OR (a AND !b AND !c); just check a 3-variable function
  // against its truth table directly.
  BddManager mgr(3);
  const Bdd a = mgr.var(0), b = mgr.var(1), c = mgr.var(2);
  const Bdd f =
      mgr.apply(Op::Or, mgr.apply(Op::And, b, c),
                mgr.apply(Op::And, a, mgr.apply(Op::Nor, b, c)));
  // Truth table: f = bc + a(!b)(!c)
  for (unsigned i = 0; i < 8; ++i) {
    const bool av = i & 1, bv = (i >> 1) & 1, cv = (i >> 2) & 1;
    const bool expect = (bv && cv) || (av && !bv && !cv);
    EXPECT_EQ(mgr.eval(f, {av, bv, cv}), expect) << i;
  }
}

struct ModeParam {
  const char* name;
  Config config;
};

class PbfModes : public ::testing::TestWithParam<ModeParam> {};

TEST_P(PbfModes, RandomProgramsMatchTruthTables) {
  const Config config = GetParam().config;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const ExprProgram program = ExprProgram::random(5, 40, seed);
    const auto truths = program.eval_truth();
    BddManager mgr(5, config);
    const auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
    ASSERT_EQ(bdds.size(), truths.size());
    for (std::size_t k = 0; k < bdds.size(); ++k) {
      expect_matches_truth(mgr, bdds[k], truths[k]);
    }
  }
}

TEST_P(PbfModes, AgreesWithDepthFirstNodeForNode) {
  const Config config = GetParam().config;
  for (std::uint64_t seed = 10; seed <= 13; ++seed) {
    const ExprProgram program = ExprProgram::random(6, 60, seed);
    BddManager mgr(6, config);
    df::DfManager oracle(6);
    const auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
    const auto dfs = program.eval_engine<df::DfManager, df::DfBdd>(oracle);
    ASSERT_EQ(bdds.size(), dfs.size());
    for (std::size_t k = 0; k < bdds.size(); ++k) {
      // Reduced ordered BDDs are canonical: node counts must agree exactly.
      EXPECT_EQ(mgr.node_count(bdds[k]), oracle.node_count(dfs[k]))
          << "seed " << seed << " step " << k;
    }
  }
}

Config make_config(unsigned workers, bool seq, std::uint64_t threshold,
                   std::uint32_t group,
                   core::OverflowPolicy overflow =
                       core::OverflowPolicy::kContextStack) {
  Config c;
  c.workers = workers;
  c.sequential_mode = seq;
  c.eval_threshold = threshold;
  c.group_size = group;
  c.overflow = overflow;
  c.gc_min_nodes = 1u << 30;  // keep auto-GC out of these tests
  return c;
}

INSTANTIATE_TEST_SUITE_P(
    Modes, PbfModes,
    ::testing::Values(
        ModeParam{"seq", make_config(1, true, Config::kUnbounded, 512)},
        ModeParam{"seq_tiny_threshold", make_config(1, true, 4, 2)},
        ModeParam{"one_worker", make_config(1, false, 1u << 15, 512)},
        ModeParam{"one_worker_threshold1", make_config(1, false, 1, 1)},
        ModeParam{"two_workers", make_config(2, false, 64, 8)},
        ModeParam{"four_workers_tiny", make_config(4, false, 8, 2)},
        ModeParam{"hybrid_df_overflow",
                  make_config(1, true, 16, 8,
                              core::OverflowPolicy::kDepthFirst)},
        ModeParam{"hybrid_df_parallel",
                  make_config(2, false, 16, 8,
                              core::OverflowPolicy::kDepthFirst)},
        ModeParam{"sharded_tables", [] {
                    Config c = make_config(4, false, 32, 4);
                    c.table_shards = 8;
                    return c;
                  }()},
        ModeParam{"sharded_one_worker", [] {
                    Config c = make_config(1, false, 1u << 15, 512);
                    c.table_shards = 4;
                    return c;
                  }()}),
    [](const ::testing::TestParamInfo<ModeParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace pbdd
