// Chaos test: long randomized interleavings of everything the engine can do
// — parallel batches with pathological thresholds, explicit and automatic
// collections, handle churn, quantifications, sequential utility operations
// — continuously validated against the depth-first oracle and the store
// invariants. This is the test that catches interactions no targeted test
// provokes.
#include <gtest/gtest.h>

#include "core/bdd_manager.hpp"
#include "df/df_manager.hpp"
#include "oracle.hpp"
#include "store_invariants.hpp"
#include "util/prng.hpp"

namespace pbdd {
namespace {

using core::Bdd;
using core::BddManager;
using core::Config;

void check_invariants(BddManager& mgr) {
  ASSERT_EQ(test::check_store_invariants(mgr), "");
}

class ChaosParam
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t>> {
};

TEST_P(ChaosParam, LongRandomInterleaving) {
  const auto [workers, seed] = GetParam();
  constexpr unsigned kVars = 7;

  Config config;
  config.workers = workers;
  config.eval_threshold = 24;
  config.group_size = 4;
  config.share_poll_interval = 8;
  config.gc_min_nodes = 4096;
  config.gc_growth_factor = 1.4;
  BddManager mgr(kVars, config);
  df::DfManager oracle(kVars);

  util::Xoshiro256 rng(seed);
  // Parallel environments: matching (core, oracle) function pairs.
  std::vector<Bdd> env;
  std::vector<df::DfBdd> df_env;
  for (unsigned v = 0; v < kVars; ++v) {
    env.push_back(mgr.var(v));
    df_env.push_back(oracle.var(v));
  }

  auto pick = [&] { return rng.below(env.size()); };

  for (int step = 0; step < 400; ++step) {
    switch (rng.below(10)) {
      case 0: case 1: case 2: case 3: case 4: {  // random binary op
        const Op op = static_cast<Op>(rng.below(kNumOps));
        const std::size_t a = pick(), b = pick();
        env.push_back(mgr.apply(op, env[a], env[b]));
        df_env.push_back(oracle.apply(op, df_env[a], df_env[b]));
        break;
      }
      case 5: {  // batch of independent ops
        std::vector<core::BatchOp> batch;
        std::vector<std::pair<Op, std::pair<std::size_t, std::size_t>>>
            items;
        const unsigned count = 2 + static_cast<unsigned>(rng.below(6));
        for (unsigned i = 0; i < count; ++i) {
          const Op op = static_cast<Op>(rng.below(kNumOps));
          const std::size_t a = pick(), b = pick();
          batch.push_back(core::BatchOp{op, env[a], env[b]});
          items.push_back({op, {a, b}});
        }
        auto results = mgr.apply_batch(batch);
        for (unsigned i = 0; i < count; ++i) {
          env.push_back(std::move(results[i]));
          df_env.push_back(oracle.apply(items[i].first,
                                        df_env[items[i].second.first],
                                        df_env[items[i].second.second]));
        }
        break;
      }
      case 6: {  // restrict
        const std::size_t a = pick();
        const unsigned v = static_cast<unsigned>(rng.below(kVars));
        const bool value = rng.coin();
        env.push_back(mgr.restrict_(env[a], v, value));
        df_env.push_back(oracle.restrict_(df_env[a], v, value));
        break;
      }
      case 7: {  // quantify one variable
        const std::size_t a = pick();
        const unsigned v = static_cast<unsigned>(rng.below(kVars));
        env.push_back(mgr.exists(env[a], {v}));
        df_env.push_back(oracle.exists(df_env[a], {v}));
        break;
      }
      case 8: {  // drop a prefix of handles, then maybe collect
        if (env.size() > 2 * kVars) {
          const std::size_t keep = kVars + rng.below(env.size() - kVars);
          env.erase(env.begin() + static_cast<std::ptrdiff_t>(keep),
                    env.end());
          df_env.erase(df_env.begin() + static_cast<std::ptrdiff_t>(keep),
                       df_env.end());
        }
        if (rng.coin()) mgr.gc();
        break;
      }
      case 9: {  // handle churn: copies and moves
        const std::size_t a = pick();
        Bdd copy = env[a];
        Bdd moved = std::move(copy);
        env.push_back(moved);
        df_env.push_back(df_env[a]);
        break;
      }
    }
    // Continuous validation on a sample (full check each step is too slow).
    if (step % 50 == 49) {
      check_invariants(mgr);
      for (std::size_t k = 0; k < env.size(); k += 7) {
        ASSERT_EQ(mgr.node_count(env[k]), oracle.node_count(df_env[k]))
            << "step " << step << " fn " << k;
        ASSERT_DOUBLE_EQ(mgr.sat_count(env[k]), oracle.sat_count(df_env[k]))
            << "step " << step << " fn " << k;
      }
    }
  }
  // Final full audit.
  mgr.gc();
  check_invariants(mgr);
  for (std::size_t k = 0; k < env.size(); ++k) {
    ASSERT_EQ(mgr.node_count(env[k]), oracle.node_count(df_env[k]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChaosParam,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1u, 2u)),
    [](const ::testing::TestParamInfo<std::tuple<unsigned, std::uint64_t>>&
           info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace pbdd
