// Garbage collection: the three-phase parallel mark-compact collector of
// Section 3.4. Collections must preserve the semantics of every live BDD,
// preserve canonicity (the unique tables stay duplicate-free and rebuilding
// a live function finds the existing nodes), reclaim dead nodes, and keep
// handles valid across node relocation.
#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "circuit/generators.hpp"
#include "circuit/ordering.hpp"
#include "core/bdd_manager.hpp"
#include "oracle.hpp"
#include "util/prng.hpp"

namespace pbdd {
namespace {

using core::Bdd;
using core::BddManager;
using core::Config;
using test::ExprProgram;

Config no_auto_gc(unsigned workers, bool seq = false) {
  Config c;
  c.workers = workers;
  c.sequential_mode = seq;
  c.gc_min_nodes = 1u << 30;  // explicit gc() only
  c.eval_threshold = 1u << 12;
  return c;
}

/// Record a function's truth table before GC via eval, compare after.
std::vector<bool> truth_vector(BddManager& mgr, const Bdd& f, unsigned vars) {
  std::vector<bool> table;
  for (unsigned i = 0; i < (1u << vars); ++i) {
    std::vector<bool> assignment(mgr.num_vars(), false);
    for (unsigned v = 0; v < vars; ++v) assignment[v] = (i >> v) & 1;
    table.push_back(mgr.eval(f, assignment));
  }
  return table;
}

TEST(Gc, PreservesLiveFunctions) {
  for (const unsigned workers : {1u, 3u}) {
    BddManager mgr(6, no_auto_gc(workers));
    const ExprProgram program = ExprProgram::random(6, 80, 21);
    auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
    std::vector<std::vector<bool>> before;
    for (const Bdd& f : bdds) before.push_back(truth_vector(mgr, f, 6));
    std::vector<std::size_t> counts_before;
    for (const Bdd& f : bdds) counts_before.push_back(mgr.node_count(f));

    mgr.gc();

    for (std::size_t k = 0; k < bdds.size(); ++k) {
      EXPECT_EQ(truth_vector(mgr, bdds[k], 6), before[k]) << "fn " << k;
      EXPECT_EQ(mgr.node_count(bdds[k]), counts_before[k]) << "fn " << k;
    }
  }
}

TEST(Gc, ReclaimsDeadNodes) {
  BddManager mgr(10, no_auto_gc(2));
  const ExprProgram program = ExprProgram::random(10, 150, 5);
  std::size_t with_garbage;
  Bdd keeper;
  {
    auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
    keeper = bdds[3];
    with_garbage = mgr.live_nodes();
    // all other handles die here
  }
  mgr.gc();
  const std::size_t after = mgr.live_nodes();
  EXPECT_LT(after, with_garbage);
  // Everything reachable from the keeper (plus any other still-rooted
  // variable nodes) survives; the keeper's own graph is a lower bound.
  EXPECT_GE(after, mgr.node_count(keeper));
}

TEST(Gc, DropAllRootsCollectsEverything) {
  BddManager mgr(8, no_auto_gc(1));
  {
    const ExprProgram program = ExprProgram::random(8, 100, 9);
    auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
    EXPECT_GT(mgr.live_nodes(), 0u);
  }
  mgr.gc();
  EXPECT_EQ(mgr.live_nodes(), 0u);
}

TEST(Gc, CanonicityAfterCompaction) {
  // After GC, rebuilding an identical function must not create new nodes:
  // the rehashed unique tables must find every surviving node.
  BddManager mgr(6, no_auto_gc(2));
  const ExprProgram program = ExprProgram::random(6, 60, 33);
  auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
  mgr.gc();
  const std::size_t live = mgr.live_nodes();
  auto again = program.eval_engine<BddManager, Bdd>(mgr);
  for (std::size_t k = 0; k < bdds.size(); ++k) {
    EXPECT_EQ(bdds[k].ref(), again[k].ref()) << "fn " << k;
  }
  EXPECT_EQ(mgr.live_nodes(), live);
}

TEST(Gc, HandleCopiesSurviveRelocation) {
  BddManager mgr(6, no_auto_gc(1));
  const Bdd x = mgr.var(0);
  Bdd f = mgr.apply(Op::And, mgr.var(1), mgr.var(2));
  const Bdd copy = f;       // same root entry
  Bdd moved = std::move(f);  // transfers the root entry
  mgr.gc();
  EXPECT_EQ(copy.ref(), moved.ref());
  EXPECT_TRUE(mgr.eval(copy, {false, true, true, false, false, false}));
  EXPECT_FALSE(mgr.eval(copy, {false, true, false, false, false, false}));
  (void)x;
}

TEST(Gc, RepeatedCollectionsAreIdempotent) {
  BddManager mgr(8, no_auto_gc(2));
  const ExprProgram program = ExprProgram::random(8, 120, 77);
  auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
  mgr.gc();
  const std::size_t live1 = mgr.live_nodes();
  const auto truth = truth_vector(mgr, bdds.back(), 8);
  mgr.gc();
  mgr.gc();
  EXPECT_EQ(mgr.live_nodes(), live1);
  EXPECT_EQ(truth_vector(mgr, bdds.back(), 8), truth);
}

TEST(Gc, ConstructionContinuesCorrectlyAfterGc) {
  // Interleave construction and collection; results must match a manager
  // that never collects.
  const ExprProgram program = ExprProgram::random(7, 90, 55);
  BddManager clean(7, no_auto_gc(1));
  const auto expect = program.eval_engine<BddManager, Bdd>(clean);

  BddManager mgr(7, no_auto_gc(2));
  std::vector<Bdd> env;
  for (unsigned v = 0; v < 7; ++v) env.push_back(mgr.var(v));
  std::size_t step = 0;
  for (const auto& s : program.steps) {
    env.push_back(mgr.apply(s.op, env[s.lhs], env[s.rhs]));
    if (++step % 17 == 0) mgr.gc();
  }
  for (std::size_t k = 0; k < program.steps.size(); ++k) {
    EXPECT_EQ(mgr.node_count(env[7 + k]), clean.node_count(expect[k]))
        << "step " << k;
  }
}

TEST(Gc, AutoGcTriggersUnderGrowth) {
  Config config;
  config.workers = 1;
  config.gc_min_nodes = 1024;  // tiny, so growth triggers collections
  config.gc_growth_factor = 1.5;
  BddManager mgr(12, config);
  util::Xoshiro256 rng(4);
  // Churn: build medium-size functions and drop them immediately.
  for (int round = 0; round < 40; ++round) {
    const ExprProgram program = ExprProgram::random(12, 30, rng.next());
    auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
  }
  EXPECT_GT(mgr.gc_runs(), 0u);
}

TEST(Gc, SequentialModeAggressiveCheck) {
  // In sequential mode the GC condition is checked after every top-level
  // operation (the paper's "Seq" build checks more aggressively).
  Config config;
  config.workers = 1;
  config.sequential_mode = true;
  config.gc_min_nodes = 512;
  config.gc_growth_factor = 1.2;
  BddManager mgr(12, config);
  util::Xoshiro256 rng(8);
  for (int round = 0; round < 30; ++round) {
    const ExprProgram program = ExprProgram::random(12, 25, rng.next());
    auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
  }
  EXPECT_GT(mgr.gc_runs(), 0u);
}

TEST(Gc, CircuitBuildWithPeriodicCollections) {
  // End to end: build a multiplier with a GC-heavy configuration on several
  // workers and verify outputs against simulation afterwards.
  const auto bin = circuit::multiplier(6).binarized();
  const auto order = circuit::order_dfs(bin);
  Config config;
  config.workers = 3;
  config.eval_threshold = 512;
  config.group_size = 64;
  config.gc_min_nodes = 2048;
  config.gc_growth_factor = 1.3;
  BddManager mgr(static_cast<unsigned>(bin.inputs().size()), config);
  const auto outputs = circuit::build_parallel(mgr, bin, order);
  EXPECT_GT(mgr.gc_runs(), 0u);

  util::Xoshiro256 rng(123);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<bool> in;
    for (std::size_t i = 0; i < bin.inputs().size(); ++i) {
      in.push_back(rng.coin());
    }
    const auto expect = bin.simulate(in);
    std::vector<bool> assignment(mgr.num_vars(), false);
    for (std::size_t i = 0; i < in.size(); ++i) assignment[order[i]] = in[i];
    for (std::size_t o = 0; o < outputs.size(); ++o) {
      ASSERT_EQ(mgr.eval(outputs[o], assignment), expect[o]);
    }
  }
}

TEST(Gc, PhaseTimersAccumulate) {
  BddManager mgr(8, no_auto_gc(2));
  const ExprProgram program = ExprProgram::random(8, 80, 3);
  auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
  mgr.gc();
  const auto stats = mgr.stats();
  EXPECT_GT(stats.per_worker[0].gc_ns, 0u);
  EXPECT_GT(stats.per_worker[0].gc_mark_ns, 0u);
  // mark + fix + rehash should roughly compose the total.
  const auto& w0 = stats.per_worker[0];
  EXPECT_LE(w0.gc_mark_ns + w0.gc_fix_ns + w0.gc_rehash_ns, w0.gc_ns * 11 / 10);
}

}  // namespace
}  // namespace pbdd
