// Hamming single-error-correcting codec generators and circuit series
// composition: gate-level round trips under every single-bit error, and the
// full symbolic proof through BDDs — for every error position, the composed
// encode→corrupt→decode circuit is verified equivalent to the identity on
// ALL 2^k data words at once (the C499/C1355-style verification task).
#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "circuit/generators.hpp"
#include "circuit/netlist.hpp"
#include "circuit/ordering.hpp"
#include "core/bdd_manager.hpp"
#include "util/prng.hpp"

namespace pbdd {
namespace {

using circuit::Circuit;
using circuit::GateType;

std::vector<bool> bits_of(std::uint64_t value, unsigned width) {
  std::vector<bool> bits(width);
  for (unsigned i = 0; i < width; ++i) bits[i] = (value >> i) & 1;
  return bits;
}

class HammingParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(HammingParam, CleanRoundTripAndErrorFlag) {
  const unsigned k = GetParam();
  const Circuit enc = circuit::hamming_encoder(k);
  const Circuit dec = circuit::hamming_decoder(k);
  ASSERT_EQ(enc.inputs().size(), k);
  ASSERT_EQ(dec.outputs().size(), k + 1);  // data + error flag
  util::Xoshiro256 rng(k);
  for (int trial = 0; trial < 64; ++trial) {
    const std::uint64_t data = rng.below(std::uint64_t{1} << k);
    const std::vector<bool> word = enc.simulate(bits_of(data, k));
    const std::vector<bool> out = dec.simulate(word);
    for (unsigned i = 0; i < k; ++i) {
      EXPECT_EQ(out[i], (data >> i) & 1) << "clean decode, bit " << i;
    }
    EXPECT_FALSE(out[k]) << "no error flagged on a clean word";
  }
}

TEST_P(HammingParam, CorrectsEverySingleBitFlip) {
  const unsigned k = GetParam();
  const Circuit enc = circuit::hamming_encoder(k);
  const Circuit dec = circuit::hamming_decoder(k);
  const unsigned n = static_cast<unsigned>(enc.outputs().size());
  util::Xoshiro256 rng(100 + k);
  for (int trial = 0; trial < 16; ++trial) {
    const std::uint64_t data = rng.below(std::uint64_t{1} << k);
    std::vector<bool> word = enc.simulate(bits_of(data, k));
    for (unsigned flip = 0; flip < n; ++flip) {
      std::vector<bool> corrupted = word;
      corrupted[flip] = !corrupted[flip];
      const std::vector<bool> out = dec.simulate(corrupted);
      for (unsigned i = 0; i < k; ++i) {
        EXPECT_EQ(out[i], (data >> i) & 1)
            << "flip " << flip << " data bit " << i;
      }
      EXPECT_TRUE(out[k]) << "error flag after flip " << flip;
    }
  }
}

/// Encoder with codeword bit `flip` inverted, still k inputs / n outputs.
Circuit corrupted_encoder(const Circuit& enc, unsigned flip) {
  Circuit out(enc.name() + ".flip" + std::to_string(flip));
  std::vector<std::uint32_t> remap(enc.num_gates());
  for (std::uint32_t id = 0; id < enc.num_gates(); ++id) {
    const circuit::Gate& g = enc.gate(id);
    if (g.type == GateType::Input) {
      remap[id] = out.add_input(g.name);
    } else {
      std::vector<std::uint32_t> fanins;
      for (const std::uint32_t f : g.fanins) fanins.push_back(remap[f]);
      remap[id] = out.add_gate(g.type, std::move(fanins));
    }
  }
  for (std::size_t o = 0; o < enc.outputs().size(); ++o) {
    std::uint32_t gate = remap[enc.outputs()[o]];
    if (o == flip) gate = out.add_gate(GateType::Not, {gate});
    out.mark_output(gate, enc.output_names()[o]);
  }
  return out;
}

TEST_P(HammingParam, SymbolicProofOfCorrectionForAllDataWords) {
  const unsigned k = GetParam();
  const Circuit enc = circuit::hamming_encoder(k);
  const Circuit dec = circuit::hamming_decoder(k);
  const unsigned n = static_cast<unsigned>(enc.outputs().size());

  // Identity wiring: decoder input i <- encoder output i.
  std::vector<std::size_t> wiring(n);
  for (unsigned i = 0; i < n; ++i) wiring[i] = i;

  core::Config config;
  config.workers = 2;
  core::BddManager mgr(k, config);
  // The identity order is fine for these small cones.
  std::vector<unsigned> order(k);
  for (unsigned i = 0; i < k; ++i) order[i] = i;

  for (unsigned flip = 0; flip <= n; ++flip) {
    // flip == n means "no corruption".
    const Circuit front =
        flip < n ? corrupted_encoder(enc, flip) : enc;
    const Circuit loop =
        Circuit::compose_series(front, dec, wiring).binarized();
    const auto outputs = circuit::build_parallel(mgr, loop, order);
    // Corrected data bit i must be exactly variable i (identity function).
    for (unsigned i = 0; i < k; ++i) {
      EXPECT_EQ(outputs[i].ref(), mgr.var(i).ref())
          << "flip=" << flip << " data bit " << i;
    }
    // Error flag: constant false when clean, constant true when corrupted.
    if (flip == n) {
      EXPECT_TRUE(outputs[k].is_zero());
    } else {
      EXPECT_TRUE(outputs[k].is_one());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, HammingParam, ::testing::Values(4u, 11u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(ComposeSeries, MatchesManualEvaluation) {
  // adder -> parity of the sum bits.
  const Circuit add = circuit::ripple_adder(4);  // outputs s0..s3, cout
  const Circuit par = circuit::parity_tree(5);
  std::vector<std::size_t> wiring{0, 1, 2, 3, 4};
  const Circuit chained = Circuit::compose_series(add, par, wiring);
  EXPECT_EQ(chained.inputs().size(), add.inputs().size());
  EXPECT_EQ(chained.outputs().size(), 1u);
  util::Xoshiro256 rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<bool> in;
    for (std::size_t i = 0; i < add.inputs().size(); ++i) {
      in.push_back(rng.coin());
    }
    const auto sums = add.simulate(in);
    EXPECT_EQ(chained.simulate(in), par.simulate(sums));
  }
}

TEST(ComposeSeries, RejectsBadWiring) {
  const Circuit add = circuit::ripple_adder(3);
  const Circuit par = circuit::parity_tree(4);
  EXPECT_THROW((void)Circuit::compose_series(add, par, {0, 1, 2}),
               std::invalid_argument);  // wrong arity
  EXPECT_THROW((void)Circuit::compose_series(add, par, {0, 1, 2, 99}),
               std::invalid_argument);  // out of range
}

}  // namespace
}  // namespace pbdd
