// Per-worker compute cache: probe/insert semantics, lossy replacement,
// generation tagging of operator-node entries, reduction write-back, and
// flush.
#include <gtest/gtest.h>

#include "core/compute_cache.hpp"

namespace pbdd {
namespace {

using namespace pbdd::core;

TEST(ComputeCache, MissOnEmptyAndHitAfterInsert) {
  ComputeCache cache;
  cache.init(8);
  const NodeRef f = make_node_ref(0, 1, 2);
  const NodeRef g = make_node_ref(0, 1, 3);
  const std::uint32_t slot = cache.slot_for(Op::And, f, g);
  EXPECT_EQ(cache.lookup(slot, Op::And, f, g), nullptr);
  const NodeRef result = make_node_ref(0, 0, 9);
  cache.insert(slot, Op::And, f, g, result, 1);
  const auto* e = cache.lookup(slot, Op::And, f, g);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->result, result);
}

TEST(ComputeCache, KeyIncludesOperatorAndOperandOrder) {
  ComputeCache cache;
  cache.init(8);
  const NodeRef f = make_node_ref(0, 1, 2);
  const NodeRef g = make_node_ref(0, 1, 3);
  const std::uint32_t slot = cache.slot_for(Op::And, f, g);
  cache.insert(slot, Op::And, f, g, kOne, 1);
  EXPECT_EQ(cache.lookup(slot, Op::Or, f, g), nullptr);
  EXPECT_EQ(cache.lookup(slot, Op::And, g, f), nullptr);
  EXPECT_EQ(cache.lookup(slot, Op::And, f, kOne), nullptr);
}

TEST(ComputeCache, DirectMappedReplacementIsLossy) {
  ComputeCache cache;
  cache.init(8);
  const NodeRef f = make_node_ref(0, 1, 2);
  const NodeRef g = make_node_ref(0, 1, 3);
  const std::uint32_t slot = cache.slot_for(Op::And, f, g);
  cache.insert(slot, Op::And, f, g, kOne, 1);
  // Any other operation mapping to the same slot evicts silently.
  cache.insert(slot, Op::Or, g, f, kZero, 1);
  EXPECT_EQ(cache.lookup(slot, Op::And, f, g), nullptr);
  const auto* e = cache.lookup(slot, Op::Or, g, f);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->result, kZero);
}

TEST(ComputeCache, CompleteOverwritesOnlyMatchingOpEntry) {
  ComputeCache cache;
  cache.init(8);
  const NodeRef f = make_node_ref(0, 1, 2);
  const NodeRef g = make_node_ref(0, 1, 3);
  const Ref op_ref = make_op_ref(0, 1, 5);
  const std::uint32_t slot = cache.slot_for(Op::Xor, f, g);
  cache.insert(slot, Op::Xor, f, g, op_ref, 7);
  // Write-back with the right (op, f, g, op_ref) replaces the in-flight
  // entry with the computed BDD.
  const NodeRef result = make_node_ref(0, 1, 42);
  cache.complete(slot, Op::Xor, f, g, op_ref, result);
  const auto* e = cache.lookup(slot, Op::Xor, f, g);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->result, result);

  // A stale write-back (entry since replaced) must not clobber.
  cache.insert(slot, Op::And, f, g, kOne, 7);
  cache.complete(slot, Op::Xor, f, g, op_ref, kZero);
  const auto* e2 = cache.lookup(slot, Op::And, f, g);
  ASSERT_NE(e2, nullptr);
  EXPECT_EQ(e2->result, kOne);
}

TEST(ComputeCache, GenerationTagTravelsWithEntry) {
  ComputeCache cache;
  cache.init(8);
  const NodeRef f = make_node_ref(0, 1, 2);
  const NodeRef g = make_node_ref(0, 1, 3);
  const Ref op_ref = make_op_ref(0, 1, 5);
  const std::uint32_t slot = cache.slot_for(Op::And, f, g);
  cache.insert(slot, Op::And, f, g, op_ref, 3);
  const auto* e = cache.lookup(slot, Op::And, f, g);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->generation(), 3u);
  EXPECT_TRUE(is_op(e->result));
  // The consumer (Worker::preprocess) compares generations; the cache just
  // stores the tag faithfully.
}

TEST(ComputeCache, FlushInvalidatesEverything) {
  ComputeCache cache;
  cache.init(6);
  for (std::uint32_t i = 0; i < 64; ++i) {
    const NodeRef f = make_node_ref(0, 1, i);
    const std::uint32_t slot = cache.slot_for(Op::And, f, f);
    cache.insert(slot, Op::And, f, f, kOne, 1);
  }
  cache.flush();
  for (std::uint32_t i = 0; i < 64; ++i) {
    const NodeRef f = make_node_ref(0, 1, i);
    const std::uint32_t slot = cache.slot_for(Op::And, f, f);
    EXPECT_EQ(cache.lookup(slot, Op::And, f, f), nullptr);
  }
}

TEST(ComputeCache, BytesReflectConfiguredSize) {
  ComputeCache small, large;
  small.init(4);
  large.init(10);
  EXPECT_LT(small.bytes(), large.bytes());
  EXPECT_EQ(large.bytes(), (1u << 10) * sizeof(ComputeCache::Entry));
}

}  // namespace
}  // namespace pbdd
