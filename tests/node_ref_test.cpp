// Packed reference encoding, terminal-case rules, and operator metadata.
#include <gtest/gtest.h>

#include "common/op.hpp"
#include "core/node.hpp"
#include "core/ref.hpp"

namespace pbdd {
namespace {

using namespace pbdd::core;

TEST(Ref, TerminalsAreDistinctAndUntagged) {
  EXPECT_TRUE(is_terminal(kZero));
  EXPECT_TRUE(is_terminal(kOne));
  EXPECT_FALSE(is_internal(kZero));
  EXPECT_FALSE(is_op(kZero));
  EXPECT_TRUE(is_bdd(kZero));
  EXPECT_EQ(level_of(kZero), kTermLevel);
  EXPECT_EQ(level_of(kOne), kTermLevel);
}

TEST(Ref, RoundTripsAllFields) {
  for (const unsigned worker : {0u, 1u, 13u, 16383u}) {
    for (const unsigned var : {0u, 7u, 65534u}) {
      for (const std::uint32_t slot : {0u, 1u, 0xFFFFFFFFu}) {
        const Ref node = make_node_ref(worker, var, slot);
        EXPECT_TRUE(is_internal(node));
        EXPECT_FALSE(is_op(node));
        EXPECT_FALSE(is_terminal(node));
        EXPECT_EQ(worker_of(node), worker);
        EXPECT_EQ(var_of(node), var);
        EXPECT_EQ(slot_of(node), slot);
        EXPECT_EQ(level_of(node), var);

        const Ref op = make_op_ref(worker, var, slot);
        EXPECT_TRUE(is_op(op));
        EXPECT_FALSE(is_bdd(op));
        EXPECT_EQ(worker_of(op), worker);
        EXPECT_EQ(var_of(op), var);
        EXPECT_EQ(slot_of(op), slot);
      }
    }
  }
}

TEST(Ref, WithSlotPreservesOtherFields) {
  const Ref r = make_node_ref(5, 9, 1234);
  const Ref moved = with_slot(r, 77);
  EXPECT_EQ(worker_of(moved), 5u);
  EXPECT_EQ(var_of(moved), 9u);
  EXPECT_EQ(slot_of(moved), 77u);
  EXPECT_TRUE(is_internal(moved));
}

TEST(Ref, RefsAreUniqueAcrossFields) {
  // Distinct (worker, var, slot) triples and tags yield distinct values.
  EXPECT_NE(make_node_ref(0, 0, 0), kZero);
  EXPECT_NE(make_node_ref(0, 0, 0), kOne);
  EXPECT_NE(make_node_ref(0, 0, 0), make_node_ref(0, 0, 1));
  EXPECT_NE(make_node_ref(0, 0, 0), make_node_ref(0, 1, 0));
  EXPECT_NE(make_node_ref(0, 0, 0), make_node_ref(1, 0, 0));
  EXPECT_NE(make_node_ref(0, 0, 0), make_op_ref(0, 0, 0));
  EXPECT_NE(make_node_ref(2, 3, 4), kInvalid);
}

TEST(Op, ApplyBitsTruthTables) {
  struct Case {
    Op op;
    bool ff, ft, tf, tt;
  };
  const Case cases[] = {
      {Op::And, false, false, false, true},
      {Op::Or, false, true, true, true},
      {Op::Xor, false, true, true, false},
      {Op::Nand, true, true, true, false},
      {Op::Nor, true, false, false, false},
      {Op::Xnor, true, false, false, true},
      {Op::Diff, false, false, true, false},
      {Op::Implies, true, true, false, true},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(apply_bits(c.op, false, false), c.ff) << op_name(c.op);
    EXPECT_EQ(apply_bits(c.op, false, true), c.ft) << op_name(c.op);
    EXPECT_EQ(apply_bits(c.op, true, false), c.tf) << op_name(c.op);
    EXPECT_EQ(apply_bits(c.op, true, true), c.tt) << op_name(c.op);
  }
}

TEST(Op, CommutativityFlags) {
  EXPECT_TRUE(op_commutative(Op::And));
  EXPECT_TRUE(op_commutative(Op::Or));
  EXPECT_TRUE(op_commutative(Op::Xor));
  EXPECT_TRUE(op_commutative(Op::Nand));
  EXPECT_TRUE(op_commutative(Op::Nor));
  EXPECT_TRUE(op_commutative(Op::Xnor));
  EXPECT_FALSE(op_commutative(Op::Diff));
  EXPECT_FALSE(op_commutative(Op::Implies));
}

// Terminal-case rules must be sound (they may be incomplete — returning
// invalid just means "expand" — but a returned result must agree with the
// semantics on every completion of the operands).
TEST(Op, TerminalCasesAreSoundOnConstants) {
  const Ref zero = kZero, one = kOne, invalid = kInvalid;
  for (unsigned o = 0; o < kNumOps; ++o) {
    const Op op = static_cast<Op>(o);
    for (const Ref f : {zero, one}) {
      for (const Ref g : {zero, one}) {
        const Ref r = terminal_case<Ref>(op, f, g, zero, one, invalid);
        ASSERT_NE(r, invalid) << "constants must always simplify";
        EXPECT_EQ(r == one, apply_bits(op, f == one, g == one))
            << op_name(op);
      }
    }
  }
}

TEST(Op, TerminalCasesSoundOnIdenticalOperands) {
  // f op f must simplify only to f, 0, or 1 consistent with the operator.
  const Ref zero = kZero, one = kOne, invalid = kInvalid;
  const Ref f = make_node_ref(0, 3, 17);
  for (unsigned o = 0; o < kNumOps; ++o) {
    const Op op = static_cast<Op>(o);
    const Ref r = terminal_case<Ref>(op, f, f, zero, one, invalid);
    if (r == invalid) continue;  // incomplete is fine
    // For both possible valuations b of f, result must equal op(b, b).
    for (const bool b : {false, true}) {
      const bool expect = apply_bits(op, b, b);
      const bool got = (r == f) ? b : (r == one);
      EXPECT_EQ(got, expect) << op_name(op) << " b=" << b;
    }
  }
}

TEST(Op, TerminalCasesSoundWithOneConstant) {
  const Ref zero = kZero, one = kOne, invalid = kInvalid;
  const Ref f = make_node_ref(0, 2, 5);
  for (unsigned o = 0; o < kNumOps; ++o) {
    const Op op = static_cast<Op>(o);
    for (const Ref constant : {zero, one}) {
      for (const bool const_on_left : {false, true}) {
        const Ref lhs = const_on_left ? constant : f;
        const Ref rhs = const_on_left ? f : constant;
        const Ref r = terminal_case<Ref>(op, lhs, rhs, zero, one, invalid);
        if (r == invalid) continue;
        for (const bool b : {false, true}) {
          const bool lv = const_on_left ? (constant == one) : b;
          const bool rv = const_on_left ? b : (constant == one);
          const bool expect = apply_bits(op, lv, rv);
          const bool got = (r == f) ? b : (r == one);
          EXPECT_EQ(got, expect)
              << op_name(op) << " const=" << (constant == one)
              << " left=" << const_on_left << " b=" << b;
        }
      }
    }
  }
}

TEST(Node, LayoutIsCompact) {
  EXPECT_EQ(sizeof(core::BddNode), 32u);
  EXPECT_LE(sizeof(core::OpNode), 64u);
}

}  // namespace
}  // namespace pbdd
