// Circuit substrate: generators against integer arithmetic, the .bench
// parser (including the real ISCAS85 c17), orderings, binarization, and the
// circuit-to-BDD builders against gate-level simulation.
#include <gtest/gtest.h>

#include <sstream>

#include "circuit/bench_io.hpp"
#include "circuit/builder.hpp"
#include "circuit/generators.hpp"
#include "circuit/netlist.hpp"
#include "circuit/ordering.hpp"
#include "core/bdd_manager.hpp"
#include "df/df_manager.hpp"
#include "util/prng.hpp"

namespace pbdd {
namespace {

using circuit::Circuit;

std::vector<bool> bits_of(std::uint64_t value, unsigned width) {
  std::vector<bool> bits(width);
  for (unsigned i = 0; i < width; ++i) bits[i] = (value >> i) & 1;
  return bits;
}

std::uint64_t value_of(const std::vector<bool>& bits) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) v |= std::uint64_t{1} << i;
  }
  return v;
}

TEST(Generators, MultiplierComputesProducts) {
  const Circuit mult = circuit::multiplier(5);
  EXPECT_EQ(mult.inputs().size(), 10u);
  EXPECT_EQ(mult.outputs().size(), 10u);
  for (std::uint64_t a = 0; a < 32; a += 3) {
    for (std::uint64_t b = 0; b < 32; b += 5) {
      std::vector<bool> in = bits_of(a, 5);
      const std::vector<bool> bb = bits_of(b, 5);
      in.insert(in.end(), bb.begin(), bb.end());
      EXPECT_EQ(value_of(mult.simulate(in)), a * b) << a << "*" << b;
    }
  }
}

TEST(Generators, RippleAdderComputesSums) {
  const Circuit add = circuit::ripple_adder(6);
  for (std::uint64_t a = 0; a < 64; a += 7) {
    for (std::uint64_t b = 0; b < 64; b += 9) {
      for (const bool cin : {false, true}) {
        std::vector<bool> in = bits_of(a, 6);
        const std::vector<bool> bb = bits_of(b, 6);
        in.insert(in.end(), bb.begin(), bb.end());
        in.push_back(cin);
        EXPECT_EQ(value_of(add.simulate(in)), a + b + (cin ? 1 : 0));
      }
    }
  }
}

TEST(Generators, CarrySelectEqualsRipple) {
  const Circuit csel = circuit::carry_select_adder(9, 3);
  const Circuit ripple = circuit::ripple_adder(9);
  util::Xoshiro256 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<bool> in;
    for (int i = 0; i < 19; ++i) in.push_back(rng.coin());
    EXPECT_EQ(csel.simulate(in), ripple.simulate(in));
  }
}

TEST(Generators, ComparatorAgainstIntegers) {
  const Circuit cmp = circuit::comparator(5);
  for (std::uint64_t a = 0; a < 32; ++a) {
    for (std::uint64_t b = 0; b < 32; ++b) {
      std::vector<bool> in = bits_of(a, 5);
      const std::vector<bool> bb = bits_of(b, 5);
      in.insert(in.end(), bb.begin(), bb.end());
      const std::vector<bool> out = cmp.simulate(in);
      EXPECT_EQ(out[0], a < b);
      EXPECT_EQ(out[1], a == b);
      EXPECT_EQ(out[2], a > b);
    }
  }
}

TEST(Generators, ParityTree) {
  const Circuit par = circuit::parity_tree(9);
  util::Xoshiro256 rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<bool> in;
    int ones = 0;
    for (int i = 0; i < 9; ++i) {
      in.push_back(rng.coin());
      ones += in.back();
    }
    EXPECT_EQ(par.simulate(in)[0], (ones & 1) != 0);
  }
}

TEST(Generators, AluFunctions) {
  const unsigned n = 5;
  const Circuit a = circuit::alu(n);
  util::Xoshiro256 rng(13);
  for (unsigned sel = 0; sel < 8; ++sel) {
    for (int trial = 0; trial < 40; ++trial) {
      const std::uint64_t x = rng.below(32), y = rng.below(32);
      const bool cin = rng.coin();
      std::vector<bool> in = bits_of(x, n);
      const std::vector<bool> yb = bits_of(y, n);
      in.insert(in.end(), yb.begin(), yb.end());
      in.push_back(cin);
      const std::vector<bool> sb = bits_of(sel, 3);
      in.insert(in.end(), sb.begin(), sb.end());
      const std::vector<bool> out = a.simulate(in);
      const std::uint64_t r = value_of({out.begin(), out.begin() + n});
      std::uint64_t expect = 0;
      switch (sel) {
        case 0: expect = (x + y + cin) & 31; break;
        case 1: expect = (x + (~y & 31) + cin) & 31; break;
        case 2: expect = x & y; break;
        case 3: expect = x | y; break;
        case 4: expect = x ^ y; break;
        case 5: expect = ~(x | y) & 31; break;
        case 6: expect = x; break;
        case 7: expect = ~x & 31; break;
      }
      EXPECT_EQ(r, expect) << "sel=" << sel << " x=" << x << " y=" << y;
      EXPECT_EQ(out[n + 1], r == 0) << "zero flag";
    }
  }
}

TEST(BenchIo, ParsesC17) {
  const Circuit c = circuit::c17();
  EXPECT_EQ(c.inputs().size(), 5u);
  EXPECT_EQ(c.outputs().size(), 2u);
  EXPECT_EQ(c.num_gates(), 11u);
  // Known vector: all inputs 0 -> NAND chain output values.
  // 10 = !(1&3)=1, 11 = !(3&6)=1, 16 = !(2&11)=1, 19 = !(11&7)=1,
  // 22 = !(10&16)=0, 23 = !(16&19)=0
  const std::vector<bool> out = c.simulate({false, false, false, false, false});
  EXPECT_FALSE(out[0]);
  EXPECT_FALSE(out[1]);
}

TEST(BenchIo, RoundTripsGeneratedCircuits) {
  for (const Circuit& original :
       {circuit::multiplier(4), circuit::comparator(6), circuit::alu(3)}) {
    const std::string text = circuit::to_bench_string(original);
    const Circuit parsed = circuit::parse_bench_string(text, original.name());
    ASSERT_EQ(parsed.inputs().size(), original.inputs().size());
    ASSERT_EQ(parsed.outputs().size(), original.outputs().size());
    util::Xoshiro256 rng(original.num_gates());
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<bool> in;
      for (std::size_t i = 0; i < original.inputs().size(); ++i) {
        in.push_back(rng.coin());
      }
      EXPECT_EQ(parsed.simulate(in), original.simulate(in));
    }
  }
}

TEST(BenchIo, HandlesForwardReferences) {
  const char* text = R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(m, b)
m = NOT(a)
)";
  const Circuit c = circuit::parse_bench_string(text);
  EXPECT_EQ(c.simulate({false, true}), std::vector<bool>{true});
  EXPECT_EQ(c.simulate({true, true}), std::vector<bool>{false});
}

TEST(BenchIo, RejectsUnsupportedSequentialCyclesAndUndefined) {
  EXPECT_THROW(circuit::parse_bench_string("INPUT(a)\nq = DFFSR(a)\n"),
               std::runtime_error);
  EXPECT_THROW(
      circuit::parse_bench_string("INPUT(a)\nx = AND(y, a)\ny = AND(x, a)\n"),
      std::runtime_error);
  EXPECT_THROW(circuit::parse_bench_string("INPUT(a)\nx = AND(a, ghost)\n"),
               std::runtime_error);
}

TEST(BenchIo, RejectsTrailingGarbageAfterCloseParen) {
  // Ignoring trailing text would silently accept a different circuit than
  // the file says (e.g. a mangled merge leaving half a line behind).
  EXPECT_THROW(circuit::parse_bench_string("INPUT(a) junk\n"),
               std::runtime_error);
  EXPECT_THROW(
      circuit::parse_bench_string("INPUT(a)\nOUTPUT(y) = AND(a, a)\n"),
      std::runtime_error);
  EXPECT_THROW(circuit::parse_bench_string(
                   "INPUT(a)\nINPUT(b)\ny = AND(a, b) extra\n"),
               std::runtime_error);
  // A '#' comment after the ')' is still fine.
  const circuit::Circuit ok = circuit::parse_bench_string(
      "INPUT(a)  # primary\nOUTPUT(y)\ny = NOT(a)  # inverter\n");
  EXPECT_EQ(ok.simulate({false}), std::vector<bool>{true});
}

TEST(BenchIo, RejectsParenthesesInSignalNames) {
  // A paren inside a name means the line's paren structure was misread
  // (nested or unclosed call); the error must name the token instead of
  // surfacing later as a baffling undefined-signal failure.
  EXPECT_THROW(
      circuit::parse_bench_string("INPUT(a)\nINPUT(b)\ny = AND(a(, b)\n"),
      std::runtime_error);
  EXPECT_THROW(circuit::parse_bench_string(
                   "INPUT(a)\nINPUT(b)\ny = AND(NOT(a), b)\n"),
               std::runtime_error);
  EXPECT_THROW(circuit::parse_bench_string("INPUT(a(\n"),
               std::runtime_error);
  EXPECT_THROW(circuit::parse_bench_string("INPUT(a)\nx) = NOT(a)\n"),
               std::runtime_error);
  EXPECT_THROW(circuit::parse_bench_string("INPUT(a)\nq = DFF(d(\n"),
               std::runtime_error);
}

TEST(BenchIo, ParsesDffLatches) {
  // A 2-bit shift register: q1 <- q0 <- in, output taps q1.
  const char* text = R"(
INPUT(in)
OUTPUT(y)
q0 = DFF(in)
q1 = DFF(q0)
y = BUFF(q1)
)";
  const circuit::Circuit c = circuit::parse_bench_string(text, "shift2");
  ASSERT_TRUE(c.is_sequential());
  ASSERT_EQ(c.latches().size(), 2u);
  EXPECT_EQ(c.inputs().size(), 3u);  // q0, q1 pseudo-inputs + in
  EXPECT_EQ(c.free_input_positions().size(), 1u);
  // Step the register: state (q0,q1)=(1,0), in=1 -> next (1,1), y=q1=0.
  const auto [outs, next] = c.simulate_step({true, false}, {true});
  EXPECT_EQ(outs, std::vector<bool>{false});
  EXPECT_EQ(next, (std::vector<bool>{true, true}));
  // Round-trip through the writer.
  const circuit::Circuit again =
      circuit::parse_bench_string(circuit::to_bench_string(c), "rt");
  ASSERT_EQ(again.latches().size(), 2u);
  const auto [outs2, next2] = again.simulate_step({true, false}, {true});
  EXPECT_EQ(outs2, outs);
  EXPECT_EQ(next2, next);
}

TEST(Binarize, PreservesSemantics) {
  for (const Circuit& original :
       {circuit::alu(4), circuit::parity_tree(11),
        circuit::random_circuit(8, 60, 99)}) {
    const Circuit bin = original.binarized();
    bin.validate();
    for (std::uint32_t id = 0; id < bin.num_gates(); ++id) {
      EXPECT_LE(bin.gate(id).fanins.size(), 2u);
    }
    util::Xoshiro256 rng(42);
    for (int trial = 0; trial < 60; ++trial) {
      std::vector<bool> in;
      for (std::size_t i = 0; i < original.inputs().size(); ++i) {
        in.push_back(rng.coin());
      }
      EXPECT_EQ(bin.simulate(in), original.simulate(in));
    }
  }
}

TEST(Ordering, OrderDfsIsAPermutation) {
  for (const Circuit& c : {circuit::multiplier(6), circuit::c2670_like()}) {
    const std::vector<unsigned> order = circuit::order_dfs(c);
    ASSERT_EQ(order.size(), c.inputs().size());
    std::vector<bool> seen(order.size(), false);
    for (const unsigned v : order) {
      ASSERT_LT(v, order.size());
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
    }
  }
}

TEST(Ordering, OrderDfsInterleavesMultiplierOperands) {
  // For the array multiplier, order_dfs visits a-bits and b-bits
  // alternately through the partial-product plane, which is what keeps the
  // multiplier BDD from hitting its worst case. Check it differs from the
  // natural order (a0..an-1 then b0..bn-1).
  const Circuit c = circuit::multiplier(6);
  EXPECT_NE(circuit::order_dfs(c), circuit::order_natural(c));
}

class BuilderVsSimulation
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BuilderVsSimulation, ParallelBuildMatchesSimulation) {
  const auto [circuit_kind, workers] = GetParam();
  Circuit c = [&] {
    switch (circuit_kind) {
      case 0: return circuit::multiplier(5);
      case 1: return circuit::c17();
      case 2: return circuit::alu(4);
      default: return circuit::random_circuit(10, 120, 5);
    }
  }();
  const Circuit bin = c.binarized();
  const std::vector<unsigned> order = circuit::order_dfs(bin);

  core::Config config;
  config.workers = static_cast<unsigned>(workers);
  config.eval_threshold = 128;
  config.group_size = 16;
  core::BddManager mgr(static_cast<unsigned>(bin.inputs().size()), config);
  const std::vector<core::Bdd> outputs =
      circuit::build_parallel(mgr, bin, order);
  ASSERT_EQ(outputs.size(), bin.outputs().size());

  util::Xoshiro256 rng(circuit_kind * 7919 + workers);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<bool> in;
    for (std::size_t i = 0; i < bin.inputs().size(); ++i) {
      in.push_back(rng.coin());
    }
    const std::vector<bool> expect = bin.simulate(in);
    // The BDD assignment is indexed by variable; map input i -> var order[i].
    std::vector<bool> assignment(mgr.num_vars(), false);
    for (std::size_t i = 0; i < in.size(); ++i) assignment[order[i]] = in[i];
    for (std::size_t o = 0; o < outputs.size(); ++o) {
      ASSERT_EQ(mgr.eval(outputs[o], assignment), expect[o])
          << "output " << o << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, BuilderVsSimulation,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(1, 3)));

TEST(Builder, SequentialDfMatchesParallelCore) {
  const Circuit bin = circuit::multiplier(5).binarized();
  const std::vector<unsigned> order = circuit::order_dfs(bin);

  core::Config config;
  config.workers = 2;
  config.eval_threshold = 256;
  core::BddManager mgr(static_cast<unsigned>(bin.inputs().size()), config);
  df::DfManager oracle(static_cast<unsigned>(bin.inputs().size()));

  const auto core_out = circuit::build_parallel(mgr, bin, order);
  const auto df_out =
      circuit::build_sequential<df::DfManager, df::DfBdd>(oracle, bin, order);
  ASSERT_EQ(core_out.size(), df_out.size());
  for (std::size_t o = 0; o < core_out.size(); ++o) {
    EXPECT_EQ(mgr.node_count(core_out[o]), oracle.node_count(df_out[o]))
        << "output " << o;
  }
}

TEST(Builder, SubstituteCircuitsAreNontrivial) {
  const Circuit a = circuit::c2670_like();
  const Circuit b = circuit::c3540_like();
  EXPECT_GT(a.inputs().size(), 80u);
  EXPECT_GT(a.outputs().size(), 30u);
  EXPECT_GT(a.num_gates(), 1000u);
  EXPECT_GT(b.inputs().size(), 40u);
  EXPECT_GT(b.num_gates(), 1000u);
}

}  // namespace
}  // namespace pbdd
