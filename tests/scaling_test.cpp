// Determinism across the scheduling configuration space.
//
// The scale-aware scheduling work (adaptive steal groups, the phase-counted
// GC barrier, dependency-carrying batches, windowed circuit construction)
// must never change WHAT gets built — only how fast. Canonicity makes this
// checkable: two runs that build the same Boolean functions must produce
// BDDs with identical per-output node counts, whatever the worker count,
// steal granularity, or batch shape. These tests sweep the configuration
// grid and demand byte-identical checksums everywhere, including against
// the dedicated sequential engine — the same cross-configuration invariant
// the benchmark harness and the CI speedup gate enforce on every run.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/builder.hpp"
#include "circuit/generators.hpp"
#include "circuit/ordering.hpp"
#include "core/bdd_manager.hpp"

namespace pbdd {
namespace {

struct Workload {
  circuit::Circuit binarized;
  std::vector<unsigned> order;
};

Workload make_workload(circuit::Circuit raw) {
  Workload w{raw.binarized(), {}};
  w.order = circuit::order_dfs(w.binarized);
  return w;
}

// Order-sensitive FNV mix of per-output node counts — the same checksum
// bench/harness.cpp computes, so a failure here reproduces a benchmark
// checksum mismatch in a unit test.
std::uint64_t build_checksum(const Workload& w, const core::Config& config,
                             const circuit::BuildOptions& opts = {}) {
  core::BddManager mgr(static_cast<unsigned>(w.binarized.inputs().size()),
                       config);
  const std::vector<core::Bdd> outputs =
      circuit::build_parallel(mgr, w.binarized, w.order, nullptr, opts);
  std::uint64_t checksum = 0xcbf29ce484222325ULL;
  for (const core::Bdd& out : outputs) {
    checksum = (checksum ^ mgr.node_count(out)) * 0x100000001b3ULL;
  }
  return checksum;
}

core::Config parallel_config(unsigned workers) {
  core::Config config;
  config.workers = workers;
  // Modest threshold so spills, steals, and the adaptive group policy all
  // actually engage on a mid-size circuit.
  config.eval_threshold = 1u << 12;
  return config;
}

TEST(ScalingDeterminism, ChecksumsAgreeAcrossWorkersGroupsAndWindows) {
  const Workload w = make_workload(circuit::c2670_like());

  core::Config seq;
  seq.workers = 1;
  seq.sequential_mode = true;
  const std::uint64_t expect = build_checksum(w, seq);

  for (const unsigned workers : {1u, 2u, 4u}) {
    for (const bool adaptive : {false, true}) {
      for (const std::uint32_t group : {4u, 64u}) {
        core::Config config = parallel_config(workers);
        config.adaptive_group_size = adaptive;
        config.group_size = group;
        for (const std::uint32_t window : {1u, 8u}) {
          circuit::BuildOptions opts;
          opts.dag_window = window;
          EXPECT_EQ(build_checksum(w, config, opts), expect)
              << workers << " workers, group " << group << ", adaptive "
              << adaptive << ", dag_window " << window;
        }
        // One fixed group size is enough for the non-adaptive × window
        // product; the adaptive policy ignores group_size anyway.
        if (adaptive) break;
      }
    }
  }
}

TEST(ScalingDeterminism, MultiplierChecksumsAgreeAcrossBatchShapes) {
  const Workload w = make_workload(circuit::multiplier(7));

  core::Config seq;
  seq.workers = 1;
  seq.sequential_mode = true;
  const std::uint64_t expect = build_checksum(w, seq);

  for (const unsigned workers : {1u, 4u}) {
    const core::Config config = parallel_config(workers);
    for (const std::uint32_t window : {1u, 4u, 16u}) {
      circuit::BuildOptions opts;
      opts.dag_window = window;
      EXPECT_EQ(build_checksum(w, config, opts), expect)
          << workers << " workers, dag_window " << window;
    }
  }
}

// The DAG form of a batch must produce exactly the handles of the
// materialized two-phase form — same ops, same roots.
TEST(ScalingDeterminism, DagBatchMatchesMaterializedBatch) {
  core::Config config = parallel_config(2);
  core::BddManager mgr(8, config);

  std::vector<core::Bdd> vars;
  for (unsigned v = 0; v < 8; ++v) vars.push_back(mgr.var(v));

  // Materialized: two rounds with a barrier between them.
  std::vector<core::BatchOp> round1;
  for (unsigned v = 0; v + 1 < 8; v += 2) {
    round1.push_back(core::BatchOp{Op::And, vars[v], vars[v + 1]});
  }
  std::vector<core::Bdd> mids = mgr.apply_batch(round1);
  std::vector<core::BatchOp> round2;
  for (std::size_t i = 0; i + 1 < mids.size(); i += 2) {
    round2.push_back(core::BatchOp{Op::Xor, mids[i], mids[i + 1]});
  }
  std::vector<core::Bdd> top = mgr.apply_batch(round2);

  // DAG: the whole tree as one batch with dep back references.
  std::vector<core::BatchOp> dag;
  for (unsigned v = 0; v + 1 < 8; v += 2) {
    dag.push_back(core::BatchOp{Op::And, vars[v], vars[v + 1]});
  }
  dag.push_back(core::BatchOp{Op::Xor, core::Bdd{}, core::Bdd{}, 0, 1});
  dag.push_back(core::BatchOp{Op::Xor, core::Bdd{}, core::Bdd{}, 2, 3});
  std::vector<core::Bdd> dag_out = mgr.apply_batch(dag);

  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(dag_out[4].ref(), top[0].ref());
  EXPECT_EQ(dag_out[5].ref(), top[1].ref());
}

TEST(ScalingDeterminism, ForwardDependenciesAreRejected) {
  core::Config config = parallel_config(1);
  core::BddManager mgr(4, config);
  const core::Bdd a = mgr.var(0);
  const core::Bdd b = mgr.var(1);

  // Self-reference and forward reference are both non-backward.
  std::vector<core::BatchOp> self{core::BatchOp{Op::And, core::Bdd{}, b, 0, -1}};
  EXPECT_THROW((void)mgr.apply_batch(self), std::invalid_argument);
  std::vector<core::BatchOp> fwd{
      core::BatchOp{Op::And, core::Bdd{}, b, 1, -1},
      core::BatchOp{Op::Or, a, b}};
  EXPECT_THROW((void)mgr.apply_batch(fwd), std::invalid_argument);
}

}  // namespace
}  // namespace pbdd
