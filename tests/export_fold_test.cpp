// Fold helpers (balanced batched reductions) and the export utilities
// (DOT output, deterministic dumps, statistics report).
#include <gtest/gtest.h>

#include <sstream>

#include "core/bdd_manager.hpp"
#include "core/export.hpp"
#include "core/fold.hpp"
#include "oracle.hpp"

namespace pbdd {
namespace {

using core::Bdd;
using core::BddManager;
using test::ExprProgram;

TEST(Fold, MatchesLeftFoldForAllOperators) {
  BddManager mgr(8);
  const ExprProgram program = ExprProgram::random(8, 30, 41);
  const auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
  const std::vector<Bdd> operands(bdds.begin() + 5, bdds.begin() + 18);
  for (const Op op : {Op::And, Op::Or, Op::Xor}) {
    Bdd expect = operands[0];
    for (std::size_t i = 1; i < operands.size(); ++i) {
      expect = mgr.apply(op, expect, operands[i]);
    }
    EXPECT_EQ(core::fold_balanced(mgr, op, operands).ref(), expect.ref())
        << op_name(op);
  }
}

TEST(Fold, IdentitiesOnEmptyAndSingleton) {
  BddManager mgr(4);
  EXPECT_TRUE(core::and_all(mgr, {}).is_one());
  EXPECT_TRUE(core::or_all(mgr, {}).is_zero());
  EXPECT_TRUE(core::xor_all(mgr, {}).is_zero());
  const Bdd x = mgr.var(2);
  const std::vector<Bdd> one_item{x};
  EXPECT_EQ(core::and_all(mgr, one_item).ref(), x.ref());
}

TEST(Fold, RejectsNonAssociativeOperator) {
  BddManager mgr(4);
  const std::vector<Bdd> operands{mgr.var(0), mgr.var(1)};
  EXPECT_THROW((void)core::fold_balanced(mgr, Op::Diff, operands),
               std::invalid_argument);
  EXPECT_THROW((void)core::fold_balanced(mgr, Op::Nand, operands),
               std::invalid_argument);
}

TEST(Fold, ParallelFoldMatchesSequential) {
  core::Config par;
  par.workers = 3;
  par.eval_threshold = 32;
  BddManager seq(10), parallel(10, par);
  std::size_t counts[2];
  int k = 0;
  for (BddManager* mgr : {&seq, &parallel}) {
    std::vector<Bdd> literals;
    for (unsigned i = 0; i < 10; ++i) {
      literals.push_back(mgr->apply(Op::Xor, mgr->var(i),
                                    mgr->var((i + 3) % 10)));
    }
    counts[k++] = mgr->node_count(core::and_all(*mgr, literals));
  }
  EXPECT_EQ(counts[0], counts[1]);
}

TEST(Export, DotContainsSharedSubgraphOnce) {
  BddManager mgr(3);
  // g = x0 OR (x1 AND x2): its else-branch is exactly f's root node, so f's
  // subgraph is shared and must be emitted once.
  const Bdd f = mgr.apply(Op::And, mgr.var(1), mgr.var(2));
  const Bdd g = mgr.apply(Op::Or, mgr.var(0), f);
  const std::string dot = core::to_dot(mgr, {f, g}, {"f", "g"});
  EXPECT_NE(dot.find("digraph bdd"), std::string::npos);
  EXPECT_NE(dot.find("\"f\""), std::string::npos);
  EXPECT_NE(dot.find("\"g\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  // f is a subgraph of g; its AND node must be emitted exactly once.
  const std::string label = "[label=\"x1\"]";
  std::size_t occurrences = 0;
  for (std::size_t pos = dot.find(label); pos != std::string::npos;
       pos = dot.find(label, pos + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 1u);
}

TEST(Export, DotUsesCustomVariableNames) {
  BddManager mgr(2);
  const Bdd f = mgr.apply(Op::And, mgr.var(0), mgr.var(1));
  const std::string dot =
      core::to_dot(mgr, {f}, {"and"}, {"req", "grant"});
  EXPECT_NE(dot.find("\"req\""), std::string::npos);
  EXPECT_NE(dot.find("\"grant\""), std::string::npos);
}

TEST(Export, DumpIsDeterministicAndDistinguishes) {
  BddManager mgr(5);
  const ExprProgram program = ExprProgram::random(5, 25, 31);
  const auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
  const std::string d1 = core::dump_function(mgr, bdds[20]);
  const std::string d2 = core::dump_function(mgr, bdds[20]);
  EXPECT_EQ(d1, d2);
  // Two different functions should dump differently (node ids are local,
  // so equal dumps would mean isomorphic graphs).
  const std::string other = core::dump_function(mgr, bdds[19]);
  if (!(bdds[19] == bdds[20])) {
    EXPECT_NE(d1, other);
  }
  // Terminal dumps.
  EXPECT_EQ(core::dump_function(mgr, mgr.one()), "root = 1\n");
  EXPECT_EQ(core::dump_function(mgr, mgr.zero()), "root = 0\n");
}

TEST(Export, StatsReportMentionsKeyCounters) {
  core::Config config;
  config.workers = 2;
  BddManager mgr(6, config);
  const ExprProgram program = ExprProgram::random(6, 40, 3);
  const auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
  std::ostringstream out;
  core::write_stats(out, mgr);
  const std::string text = out.str();
  EXPECT_NE(text.find("workers:            2"), std::string::npos);
  EXPECT_NE(text.find("shannon operations"), std::string::npos);
  EXPECT_NE(text.find("worker 1:"), std::string::npos);
}

}  // namespace
}  // namespace pbdd
