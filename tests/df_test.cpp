// Depth-first baseline package: truth-table correctness, canonicity,
// computed-cache behaviour, and the reference-counting free-list collector.
#include <gtest/gtest.h>

#include "df/df_manager.hpp"
#include "oracle.hpp"

namespace pbdd {
namespace {

using df::DfBdd;
using df::DfManager;
using test::ExprProgram;
using test::TruthTable64;

void expect_matches_truth(DfManager& mgr, const DfBdd& f,
                          const TruthTable64& truth) {
  const unsigned n = truth.num_vars();
  for (unsigned i = 0; i < (1u << n); ++i) {
    std::vector<bool> assignment(mgr.num_vars(), false);
    for (unsigned v = 0; v < n; ++v) assignment[v] = (i >> v) & 1;
    ASSERT_EQ(mgr.eval(f, assignment), truth.eval(i));
  }
}

TEST(Df, TerminalsAndVars) {
  DfManager mgr(3);
  EXPECT_EQ(mgr.zero().ref(), df::kZero);
  EXPECT_EQ(mgr.one().ref(), df::kOne);
  const DfBdd x = mgr.var(1);
  EXPECT_EQ(mgr.var_of(x.ref()), 1u);
  EXPECT_EQ(mgr.low_of(x.ref()), df::kZero);
  EXPECT_EQ(mgr.high_of(x.ref()), df::kOne);
  EXPECT_EQ(mgr.var(1), x) << "canonical";
}

TEST(Df, RandomProgramsMatchTruthTables) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const ExprProgram program = ExprProgram::random(5, 50, seed);
    const auto truths = program.eval_truth();
    DfManager mgr(5);
    const auto bdds = program.eval_engine<DfManager, DfBdd>(mgr);
    for (std::size_t k = 0; k < bdds.size(); ++k) {
      expect_matches_truth(mgr, bdds[k], truths[k]);
    }
  }
}

TEST(Df, ReducednessInvariant) {
  // x XOR x = 0 exercises the res0 == res1 reduction path.
  DfManager mgr(4);
  const DfBdd x = mgr.var(0);
  EXPECT_TRUE(mgr.apply(Op::Xor, x, x).ref() == df::kZero);
  EXPECT_TRUE(mgr.apply(Op::Xnor, x, x).ref() == df::kOne);
  // ITE(c, t, t) = t regardless of c.
  const DfBdd c = mgr.var(1);
  const DfBdd t = mgr.apply(Op::And, mgr.var(2), mgr.var(3));
  EXPECT_EQ(mgr.ite(c, t, t), t);
}

TEST(Df, IteMatchesDefinition) {
  DfManager mgr(6);
  const ExprProgram program = ExprProgram::random(6, 20, 3);
  const auto bdds = program.eval_engine<DfManager, DfBdd>(mgr);
  const DfBdd& c = bdds[17];
  const DfBdd& t = bdds[18];
  const DfBdd& e = bdds[19];
  const DfBdd via_ite = mgr.ite(c, t, e);
  const DfBdd manual = mgr.apply(
      Op::Or, mgr.apply(Op::And, c, t), mgr.apply(Op::Diff, e, c));
  EXPECT_EQ(via_ite, manual);
}

TEST(Df, GcReclaimsDeadAndPreservesLive) {
  df::DfConfig config;
  config.auto_gc = false;
  DfManager mgr(8, config);
  DfBdd keeper;
  std::size_t live_with_garbage;
  {
    const ExprProgram program = ExprProgram::random(8, 120, 11);
    auto bdds = program.eval_engine<DfManager, DfBdd>(mgr);
    keeper = bdds[60];
    live_with_garbage = mgr.live_nodes();
  }
  EXPECT_GT(mgr.dead_nodes(), 0u);
  const std::size_t reclaimed = mgr.gc();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_LT(mgr.live_nodes(), live_with_garbage);
  EXPECT_EQ(mgr.dead_nodes(), 0u);
  // Keeper still evaluates correctly (spot check a few assignments).
  EXPECT_NO_THROW({
    std::vector<bool> a(8, false);
    (void)mgr.eval(keeper, a);
  });
  // Free-list reuse: new nodes fill reclaimed slots, the arena stays flat.
  const std::size_t slots_before = mgr.allocated_slots();
  const ExprProgram program2 = ExprProgram::random(8, 40, 12);
  auto bdds2 = program2.eval_engine<DfManager, DfBdd>(mgr);
  EXPECT_EQ(mgr.allocated_slots(), slots_before)
      << "expected allocation from the free list, not arena growth";
}

TEST(Df, ResurrectionThroughCacheIsSafe) {
  df::DfConfig config;
  config.auto_gc = false;
  DfManager mgr(4, config);
  const DfBdd x0 = mgr.var(0);
  const DfBdd x1 = mgr.var(1);
  df::Ref dead_ref;
  {
    const DfBdd f = mgr.apply(Op::And, x0, x1);
    dead_ref = f.ref();
  }
  EXPECT_GT(mgr.dead_nodes(), 0u);
  // Recompute the same operation: the cache hit resurrects the dead node.
  const DfBdd again = mgr.apply(Op::And, x0, x1);
  EXPECT_EQ(again.ref(), dead_ref);
  EXPECT_EQ(mgr.dead_nodes(), 0u);
}

TEST(Df, AutoGcTriggers) {
  df::DfConfig config;
  config.auto_gc = true;
  config.auto_gc_dead_fraction = 0.25;
  DfManager mgr(12, config);
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const ExprProgram program = ExprProgram::random(12, 40, seed);
    auto bdds = program.eval_engine<DfManager, DfBdd>(mgr);
  }
  EXPECT_GT(mgr.stats().gc_runs, 0u);
  EXPECT_GT(mgr.stats().nodes_reclaimed, 0u);
}

TEST(Df, StatsCountOpsAndCacheHits) {
  DfManager mgr(6);
  const ExprProgram program = ExprProgram::random(6, 40, 5);
  auto bdds = program.eval_engine<DfManager, DfBdd>(mgr);
  const df::DfStats& s = mgr.stats();
  EXPECT_GT(s.ops_performed, 0u);
  EXPECT_GT(s.cache_lookups, s.cache_hits);
  EXPECT_GT(s.cache_hits, 0u);
  EXPECT_GT(s.nodes_created, 0u);
}

TEST(Df, SatCountMatchesBruteForce) {
  DfManager mgr(5);
  const ExprProgram program = ExprProgram::random(5, 30, 17);
  const auto truths = program.eval_truth();
  const auto bdds = program.eval_engine<DfManager, DfBdd>(mgr);
  for (std::size_t k = 0; k < bdds.size(); ++k) {
    unsigned expect = 0;
    for (unsigned i = 0; i < 32; ++i) expect += truths[k].eval(i);
    EXPECT_DOUBLE_EQ(mgr.sat_count(bdds[k]), static_cast<double>(expect));
  }
}

TEST(Df, SatOneFindsSatisfyingAssignment) {
  DfManager mgr(5);
  const ExprProgram program = ExprProgram::random(5, 30, 19);
  const auto bdds = program.eval_engine<DfManager, DfBdd>(mgr);
  for (const DfBdd& f : bdds) {
    const auto assignment = mgr.sat_one(f);
    if (f.ref() == df::kZero) {
      EXPECT_FALSE(assignment.has_value());
      continue;
    }
    ASSERT_TRUE(assignment.has_value());
    std::vector<bool> concrete(5, false);
    for (unsigned v = 0; v < 5; ++v) {
      concrete[v] = (*assignment)[v] == 1;  // don't-cares default to 0
    }
    EXPECT_TRUE(mgr.eval(f, concrete));
  }
}

TEST(Df, SupportIsExact) {
  DfManager mgr(6);
  // f = x1 AND (x3 XOR x5): support {1,3,5}
  const DfBdd f = mgr.apply(Op::And, mgr.var(1),
                            mgr.apply(Op::Xor, mgr.var(3), mgr.var(5)));
  EXPECT_EQ(mgr.support(f), (std::vector<unsigned>{1, 3, 5}));
  // x XOR x vanishes from the support entirely.
  const DfBdd g = mgr.apply(Op::Xor, f, f);
  EXPECT_TRUE(mgr.support(g).empty());
}

}  // namespace
}  // namespace pbdd
