// Parallel engine stress: work stealing, stall-and-steal, deep context
// nesting, batch distribution, and determinism of results (not of schedules)
// across worker counts.
#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "circuit/generators.hpp"
#include "circuit/ordering.hpp"
#include "core/bdd_manager.hpp"
#include "oracle.hpp"

namespace pbdd {
namespace {

using core::BatchOp;
using core::Bdd;
using core::BddManager;
using core::Config;
using test::ExprProgram;

Config stress_config(unsigned workers, std::uint64_t threshold,
                     std::uint32_t group) {
  Config c;
  c.workers = workers;
  c.eval_threshold = threshold;
  c.group_size = group;
  c.share_poll_interval = 16;  // aggressive hunger polling
  c.gc_min_nodes = 1u << 30;
  return c;
}

TEST(Parallel, LargeBatchAcrossWorkerCounts) {
  // One batch of many independent mid-size operations: the main parallel
  // distribution path. All configurations must produce identical functions.
  const ExprProgram program = ExprProgram::random(6, 64, 2024);
  std::vector<std::size_t> reference;
  for (const unsigned workers : {1u, 2u, 4u, 7u}) {
    BddManager mgr(6, stress_config(workers, 32, 4));
    std::vector<Bdd> env;
    for (unsigned v = 0; v < 6; ++v) env.push_back(mgr.var(v));
    // Issue the program as batches of independent operations, flushing
    // whenever a step depends on a result still pending in the open batch.
    std::vector<BatchOp> batch;
    auto flush = [&] {
      if (batch.empty()) return;
      auto results = mgr.apply_batch(batch);
      for (std::size_t k = 0; k < results.size(); ++k) {
        env[env.size() - results.size() + k] = std::move(results[k]);
      }
      batch.clear();
    };
    for (const auto& s : program.steps) {
      if (!env[s.lhs].valid() || !env[s.rhs].valid()) flush();
      batch.push_back(BatchOp{s.op, env[s.lhs], env[s.rhs]});
      env.push_back(Bdd{});  // placeholder, filled at the next flush
      if (batch.size() == 8) flush();
    }
    flush();
    std::vector<std::size_t> counts;
    for (std::size_t k = 6; k < env.size(); ++k) {
      counts.push_back(mgr.node_count(env[k]));
    }
    if (reference.empty()) {
      reference = counts;
    } else {
      EXPECT_EQ(counts, reference) << workers << " workers";
    }
  }
}

TEST(Parallel, StealingActuallyHappensUnderTinyThresholds) {
  const auto bin = circuit::multiplier(7).binarized();
  const auto order = circuit::order_dfs(bin);
  BddManager mgr(static_cast<unsigned>(bin.inputs().size()),
                 stress_config(4, 64, 8));
  const auto outputs = circuit::build_parallel(mgr, bin, order);
  const auto stats = mgr.stats();
  EXPECT_GT(stats.total.contexts_pushed, 0u);
  EXPECT_GT(stats.total.groups_created, 0u);
  // With 4 workers, tiny thresholds, and one-gate levels at the multiplier
  // output ripple, idle workers must have stolen something.
  EXPECT_GT(stats.total.groups_stolen + stats.total.groups_taken, 0u);
  (void)outputs;
}

TEST(Parallel, StallAndStealPathIsExercised) {
  // Force maximal theft: two workers, threshold 1, group size 1. Owners
  // will routinely reach reduction with their operations stolen.
  const ExprProgram program = ExprProgram::random(8, 40, 7);
  BddManager mgr(8, stress_config(2, 1, 1));
  const auto bdds = program.eval_engine<BddManager, Bdd>(mgr);
  BddManager oracle(8, stress_config(1, Config::kUnbounded, 64));
  const auto expect = program.eval_engine<BddManager, Bdd>(oracle);
  for (std::size_t k = 0; k < bdds.size(); ++k) {
    EXPECT_EQ(mgr.node_count(bdds[k]), oracle.node_count(expect[k]));
  }
}

TEST(Parallel, RepeatedBatchesReuseOperatorArenas) {
  BddManager mgr(8, stress_config(2, 128, 16));
  const ExprProgram program = ExprProgram::random(8, 30, 11);
  auto first = program.eval_engine<BddManager, Bdd>(mgr);
  const std::size_t bytes_after_first = mgr.bytes();
  // Re-running the same program should reuse cached results and rewound
  // operator blocks: memory must not balloon.
  for (int round = 0; round < 5; ++round) {
    auto again = program.eval_engine<BddManager, Bdd>(mgr);
    for (std::size_t k = 0; k < again.size(); ++k) {
      EXPECT_EQ(again[k].ref(), first[k].ref());
    }
  }
  EXPECT_LE(mgr.bytes(), bytes_after_first * 2);
}

TEST(Parallel, EightWorkersOnOversubscribedHost) {
  // More workers than hardware threads must still terminate and be correct
  // (the batch-help loop and stall loops yield rather than spin forever).
  const auto bin = circuit::alu(6).binarized();
  const auto order = circuit::order_dfs(bin);
  BddManager mgr(static_cast<unsigned>(bin.inputs().size()),
                 stress_config(8, 256, 32));
  const auto outputs = circuit::build_parallel(mgr, bin, order);
  util::Xoshiro256 rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<bool> in;
    for (std::size_t i = 0; i < bin.inputs().size(); ++i) {
      in.push_back(rng.coin());
    }
    const auto expect = bin.simulate(in);
    std::vector<bool> assignment(mgr.num_vars(), false);
    for (std::size_t i = 0; i < in.size(); ++i) assignment[order[i]] = in[i];
    for (std::size_t o = 0; o < outputs.size(); ++o) {
      ASSERT_EQ(mgr.eval(outputs[o], assignment), expect[o]);
    }
  }
}

TEST(Parallel, OperationCountsGrowOnlyMildlyWithWorkers) {
  // Fig. 11's property: unshared caches duplicate some work, but not much.
  // The shared completed-results cache is switched off here — by pooling
  // capacity it can push a parallel run *below* the 1-worker operation
  // count, which is exactly the effect this paper-layout invariant
  // excludes.
  const auto bin = circuit::multiplier(7).binarized();
  const auto order = circuit::order_dfs(bin);
  std::uint64_t ops1 = 0;
  for (const unsigned workers : {1u, 4u}) {
    Config c = stress_config(workers, 1u << 12, 256);
    c.shared_cache_log2 = 0;
    BddManager mgr(static_cast<unsigned>(bin.inputs().size()), c);
    const auto outputs = circuit::build_parallel(mgr, bin, order);
    const std::uint64_t ops = mgr.stats().total.ops_performed;
    if (workers == 1) {
      ops1 = ops;
    } else {
      EXPECT_LT(ops, ops1 * 2) << "duplication should be bounded";
      EXPECT_GE(ops, ops1) << "parallel run cannot do less work";
    }
    (void)outputs;
  }
}

TEST(Parallel, HandlesTerminalHeavyBatches) {
  BddManager mgr(4, stress_config(3, 4, 2));
  const Bdd x = mgr.var(0);
  std::vector<BatchOp> batch;
  batch.push_back(BatchOp{Op::And, mgr.zero(), x});      // 0
  batch.push_back(BatchOp{Op::Or, mgr.one(), x});        // 1
  batch.push_back(BatchOp{Op::Xor, x, x});               // 0
  batch.push_back(BatchOp{Op::And, x, x});               // x
  batch.push_back(BatchOp{Op::Implies, mgr.zero(), x});  // 1
  const auto results = mgr.apply_batch(batch);
  EXPECT_TRUE(results[0].is_zero());
  EXPECT_TRUE(results[1].is_one());
  EXPECT_TRUE(results[2].is_zero());
  EXPECT_EQ(results[3].ref(), x.ref());
  EXPECT_TRUE(results[4].is_one());
}

TEST(Parallel, EmptyBatchIsANoop) {
  BddManager mgr(4, stress_config(2, 64, 8));
  const auto results = mgr.apply_batch({});
  EXPECT_TRUE(results.empty());
  // The controlled entry point must short-circuit the same way, without
  // touching the (absent) control.
  core::BatchControl control;
  EXPECT_TRUE(mgr.apply_batch({}, &control).empty());
  EXPECT_EQ(control.skipped.load(), 0u);
}

TEST(Parallel, SelfOperandBatchesAreCanonical) {
  // f == g on both commutative and non-commutative operators, including the
  // ops with no f == g terminal rule (NAND/NOR must Shannon-expand a node
  // against itself and still reduce canonically).
  BddManager mgr(6, stress_config(3, 2, 1));
  std::vector<Bdd> env;
  for (unsigned v = 0; v < 6; ++v) env.push_back(mgr.var(v));
  Bdd f = (env[0] & env[1]) | (env[2] ^ env[3]) | (env[4] & env[5]);
  std::vector<BatchOp> batch;
  for (const Op op : {Op::And, Op::Or, Op::Xor, Op::Xnor, Op::Nand, Op::Nor,
                      Op::Diff, Op::Implies}) {
    batch.push_back(BatchOp{op, f, f});
  }
  const auto results = mgr.apply_batch(batch);
  EXPECT_EQ(results[0].ref(), f.ref());  // f AND f = f
  EXPECT_EQ(results[1].ref(), f.ref());  // f OR f = f
  EXPECT_TRUE(results[2].is_zero());     // f XOR f = 0
  EXPECT_TRUE(results[3].is_one());      // f XNOR f = 1
  EXPECT_TRUE(results[6].is_zero());     // f AND NOT f = 0
  EXPECT_TRUE(results[7].is_one());      // f -> f = 1
  // NAND/NOR have no self-operand terminal rule; validate against NOT f.
  const Bdd not_f = !f;
  EXPECT_EQ(results[4].ref(), not_f.ref());
  EXPECT_EQ(results[5].ref(), not_f.ref());
}

TEST(Parallel, RepeatedIdenticalOpsInOneBatch) {
  // The same (op, f, g) appearing many times in one batch: different workers
  // may race to compute it, and every copy must resolve to the same node.
  // Tiny thresholds force spills and steals between the duplicate items.
  BddManager mgr(8, stress_config(4, 1, 1));
  const ExprProgram program = ExprProgram::random(8, 20, 31);
  const auto env = program.eval_engine<BddManager, Bdd>(mgr);
  const Bdd& a = env[env.size() - 2];
  const Bdd& b = env[env.size() - 1];
  std::vector<BatchOp> batch;
  for (int i = 0; i < 12; ++i) batch.push_back(BatchOp{Op::Xor, a, b});
  const auto results = mgr.apply_batch(batch);
  ASSERT_EQ(results.size(), 12u);
  for (const Bdd& r : results) EXPECT_EQ(r.ref(), results[0].ref());
  // And the result is correct, not just consistent.
  EXPECT_EQ(results[0].ref(), mgr.apply(Op::Xor, a, b).ref());
}

TEST(Parallel, PreCancelledBatchSkipsEverything) {
  BddManager mgr(6, stress_config(2, 64, 8));
  const Bdd x = mgr.var(0), y = mgr.var(1);
  std::vector<BatchOp> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(BatchOp{Op::And, x, y});
  core::BatchControl control;
  control.cancel.store(true);
  const auto results = mgr.apply_batch(batch, &control);
  ASSERT_EQ(results.size(), 8u);
  EXPECT_EQ(control.skipped.load(), 8u);
  for (const Bdd& r : results) EXPECT_FALSE(r.valid());
}

TEST(Parallel, ExpiredDeadlineCutsBatchShort) {
  BddManager mgr(6, stress_config(2, 64, 8));
  const Bdd x = mgr.var(0), y = mgr.var(1);
  std::vector<BatchOp> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(BatchOp{Op::Or, x, y});
  core::BatchControl control;
  control.arm_deadline(std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(1));
  const auto results = mgr.apply_batch(batch, &control);
  EXPECT_EQ(control.skipped.load(), 8u);
  for (const Bdd& r : results) EXPECT_FALSE(r.valid());
  // A future deadline leaves the batch untouched.
  core::BatchControl relaxed;
  relaxed.arm_deadline(std::chrono::steady_clock::now() +
                       std::chrono::hours(1));
  const auto ok = mgr.apply_batch(batch, &relaxed);
  EXPECT_EQ(relaxed.skipped.load(), 0u);
  for (const Bdd& r : ok) EXPECT_EQ(r.ref(), (x | y).ref());
}

TEST(Parallel, RejectsInvalidBatchOperands) {
  BddManager mgr(4, stress_config(2, 64, 8));
  BddManager other(4);
  const Bdd x = mgr.var(0);
  const Bdd foreign = other.var(0);
  std::vector<BatchOp> empty_operand;
  empty_operand.push_back(BatchOp{Op::And, x, Bdd{}});
  EXPECT_THROW((void)mgr.apply_batch(empty_operand), std::invalid_argument);
  std::vector<BatchOp> cross_manager;
  cross_manager.push_back(BatchOp{Op::And, x, foreign});
  EXPECT_THROW((void)mgr.apply_batch(cross_manager), std::invalid_argument);
}

TEST(Parallel, HybridOverflowMatchesContextStackResults) {
  const auto bin = circuit::multiplier(6).binarized();
  const auto order = circuit::order_dfs(bin);
  std::vector<std::size_t> counts[2];
  int k = 0;
  for (const core::OverflowPolicy policy :
       {core::OverflowPolicy::kContextStack,
        core::OverflowPolicy::kDepthFirst}) {
    Config c = stress_config(2, 1u << 9, 64);
    c.overflow = policy;
    BddManager mgr(static_cast<unsigned>(bin.inputs().size()), c);
    const auto outputs = circuit::build_parallel(mgr, bin, order);
    for (const auto& o : outputs) counts[k].push_back(mgr.node_count(o));
    ++k;
  }
  EXPECT_EQ(counts[0], counts[1]);
}

}  // namespace
}  // namespace pbdd
