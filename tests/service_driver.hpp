// Shared multi-session service workload: N closed-loop client threads, each
// owning one session, hammering a BddService with randomized batches plus
// per-request canary operations whose results are known a priori
// (h XOR h == 0, h XNOR h == 1), so every kOk response is spot-validated
// without truth-table bookkeeping. Used by the gtest suite
// (service_test.cpp), the torture sweep (torture_test.cpp), and the seed
// replay binary (torture_replay.cpp), so results come back as data.
//
// Client threads are *unregistered* from the torture scheduler's point of
// view: under an enabled kPerturb schedule they get seeded delays/yields at
// the kServiceAdmit/kServiceCancel points (via the dispatcher) while the
// engine's pool workers are tortured as usual. Serialize-mode determinism
// does not extend to this workload — client racing is inherently timing-
// dependent — so service seeds are perturb-mode only.
#pragma once

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/bdd_service.hpp"
#include "store_invariants.hpp"
#include "util/prng.hpp"

namespace pbdd::test {

struct ServiceWorkload {
  unsigned sessions = 8;              ///< client threads (1 session each)
  unsigned requests_per_session = 16;
  unsigned ops_per_request = 6;       ///< randomized ops (+2 canaries)
  std::uint64_t program_seed = 1;
  /// Every Nth request carries a near-immediate deadline (0 = never); the
  /// response must then be kOk or kExpired, nothing else.
  unsigned deadline_every = 0;
  /// Every Nth request is followed by cancel_session (0 = never).
  unsigned cancel_every = 0;
  /// Every Nth request is followed by release_session_roots (0 = never).
  unsigned release_every = 8;
};

struct ServiceRunResult {
  std::string error;  ///< empty on success, first violation otherwise
  service::ServiceMetrics metrics;
  std::uint64_t ok = 0;
  std::uint64_t non_ok = 0;
};

/// Drive `svc` with the workload and validate: canary results on every kOk,
/// status sanity on every response, store invariants on the quiesced
/// manager afterwards, and the governor's budget guarantee.
inline ServiceRunResult run_service_workload(service::BddService& svc,
                                             const ServiceWorkload& wl) {
  std::mutex error_mutex;
  std::string error;
  const auto record = [&](const std::string& msg) {
    std::lock_guard<std::mutex> lk(error_mutex);
    if (error.empty()) error = msg;
  };
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> non_ok{0};

  const unsigned num_vars = svc.config().num_vars;
  std::vector<std::thread> clients;
  clients.reserve(wl.sessions);
  for (unsigned c = 0; c < wl.sessions; ++c) {
    clients.emplace_back([&, c] {
      util::Xoshiro256 rng(wl.program_seed * 0x9E3779B97F4A7C15ull + c + 1);
      const service::SessionId sid = svc.open_session();
      if (sid == service::kInvalidSession) {
        record("client " + std::to_string(c) + ": open_session failed");
        return;
      }
      // Working set: seed with every variable (combinations spanning the
      // full space grow into real node demand), extend with returned roots.
      std::vector<core::Bdd> ws;
      for (unsigned v = 0; v < num_vars; ++v) {
        ws.push_back((c + v) % 2 == 0 ? svc.var(v) : svc.nvar(v));
      }
      const auto pick = [&]() -> const core::Bdd& {
        return ws[rng.below(ws.size())];
      };

      // Demand driver: random And/Or mixes collapse to small BDDs, so each
      // request also builds a fresh two-variable product and Xors the
      // previous one into a per-client accumulator. XOR-of-random-monomials
      // (bent-function style) is where BDDs genuinely grow, giving the
      // governor real node demand to manage.
      core::Bdd acc = svc.var(static_cast<unsigned>(rng.below(num_vars)));
      core::Bdd mono = svc.var(static_cast<unsigned>(rng.below(num_vars)));

      for (unsigned r = 0; r < wl.requests_per_session; ++r) {
        std::vector<core::BatchOp> ops;
        for (unsigned i = 0; i < wl.ops_per_request; ++i) {
          const Op op = static_cast<Op>(rng.below(kNumOps));
          ops.push_back(core::BatchOp{op, pick(), pick()});
        }
        ops.push_back(core::BatchOp{
            Op::And, svc.var(static_cast<unsigned>(rng.below(num_vars))),
            svc.var(static_cast<unsigned>(rng.below(num_vars)))});  // monomial
        ops.push_back(core::BatchOp{Op::Xor, acc, mono});           // grower
        // Canaries: self-operand results are known without any oracle.
        const core::Bdd& h = pick();
        ops.push_back(core::BatchOp{Op::Xor, h, h});   // == zero
        ops.push_back(core::BatchOp{Op::Xnor, h, h});  // == one

        service::SubmitOptions opts;
        opts.priority = static_cast<service::Priority>(rng.below(3));
        const bool tight_deadline =
            wl.deadline_every != 0 && (r % wl.deadline_every) == 0;
        if (tight_deadline) {
          opts.deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(rng.below(500));
        }
        const service::RequestResult res = svc.execute(sid, ops, opts);

        switch (res.status) {
          case service::RequestStatus::kOk: {
            ok.fetch_add(1, std::memory_order_relaxed);
            if (res.roots.size() != ops.size()) {
              record("client " + std::to_string(c) +
                     ": kOk with wrong result count");
              return;
            }
            const core::Bdd& xor_res = res.roots[res.roots.size() - 2];
            const core::Bdd& xnor_res = res.roots[res.roots.size() - 1];
            if (!xor_res.is_zero() || !xnor_res.is_one()) {
              record("client " + std::to_string(c) + " request " +
                     std::to_string(r) + ": canary mismatch (h^h or h<=>h)");
              return;
            }
            mono = res.roots[res.roots.size() - 4];
            acc = res.roots[res.roots.size() - 3];
            for (const core::Bdd& b : res.roots) ws.push_back(b);
            if (ws.size() > 24) {
              ws.erase(ws.begin(),
                       ws.begin() + static_cast<std::ptrdiff_t>(ws.size() - 24));
            }
            break;
          }
          case service::RequestStatus::kExpired:
            non_ok.fetch_add(1, std::memory_order_relaxed);
            break;
          case service::RequestStatus::kRejected:
          case service::RequestStatus::kShed:
          case service::RequestStatus::kQuotaExceeded:
            non_ok.fetch_add(1, std::memory_order_relaxed);
            if (res.retry_after.count() <= 0) {
              record("client " + std::to_string(c) +
                     ": backpressure response without retry-after hint");
              return;
            }
            break;
          case service::RequestStatus::kCancelled:
            // Only reachable here via our own cancel_session racing a
            // queued successor, or shutdown; both are legitimate.
            non_ok.fetch_add(1, std::memory_order_relaxed);
            break;
          case service::RequestStatus::kFailed:
            record("client " + std::to_string(c) + " request " +
                   std::to_string(r) + ": unexpected kFailed: " + res.error);
            return;
        }

        if (wl.cancel_every != 0 && (r % wl.cancel_every) == wl.cancel_every - 1) {
          svc.cancel_session(sid);
        }
        if (wl.release_every != 0 &&
            (r % wl.release_every) == wl.release_every - 1) {
          svc.release_session_roots(sid);
        }
      }
      ws.clear();  // drop client handles before the session goes
      svc.close_session(sid);
    });
  }
  for (std::thread& t : clients) t.join();

  ServiceRunResult out;
  out.ok = ok.load();
  out.non_ok = non_ok.load();
  {
    std::lock_guard<std::mutex> lk(error_mutex);
    out.error = error;
  }
  // The store must be coherent after the storm, checked with the service
  // quiesced (no batch in flight, dispatcher held off).
  if (out.error.empty()) {
    svc.quiesce_and([&](core::BddManager& mgr) {
      mgr.gc();
      out.error = check_store_invariants(mgr);
    });
  }
  out.metrics = svc.metrics();
  if (out.error.empty() &&
      out.metrics.max_live_nodes_observed > out.metrics.live_node_budget) {
    out.error = "governor budget violated: " +
                std::to_string(out.metrics.max_live_nodes_observed) + " > " +
                std::to_string(out.metrics.live_node_budget);
  }
  return out;
}

}  // namespace pbdd::test
