// Out-of-core paging suite (src/ooc/): spill/fault round-trip identity
// across all three unique-table disciplines, the spill-segment corruption
// battery (every damaged segment must fault loudly, never half-apply), the
// resident-node budget at batch barriers, demand-estimator bounds, trace
// events, and the service governor's demote-before-shed lever.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/bdd_manager.hpp"
#include "obs/trace.hpp"
#include "ooc/demand.hpp"
#include "ooc/level_pager.hpp"
#include "oracle.hpp"
#include "service/bdd_service.hpp"
#include "service_driver.hpp"
#include "snapshot/level_codec.hpp"
#include "store_invariants.hpp"
#include "util/crc32.hpp"
#include "util/prng.hpp"

namespace pbdd {
namespace {

using core::Bdd;
using core::BddManager;
using core::Config;
using core::TableDiscipline;
using ooc::LevelPager;
using ooc::PagerConfig;
using ooc::PagerStats;
using test::TruthTable64;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Unique spill directory under /tmp, removed on destruction. The pager
/// deletes its segment files itself; this only owns the directory.
class TempSpillDir {
 public:
  TempSpillDir() {
    static int counter = 0;
    path_ = "/tmp/pbdd_ooc_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++);
    ::mkdir(path_.c_str(), 0755);
  }
  ~TempSpillDir() { ::rmdir(path_.c_str()); }
  TempSpillDir(const TempSpillDir&) = delete;
  TempSpillDir& operator=(const TempSpillDir&) = delete;
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Segment file naming contract (docs/FORMAT.md): one file per level.
std::string segment_path(const std::string& dir, unsigned var) {
  return dir + "/pbdd-level-" + std::to_string(var) + ".spill";
}

/// Seeded random environment with exhaustive truth tables, same shape as the
/// torture driver's workload but pure (no scheduler required).
struct Env {
  std::vector<Bdd> fns;
  std::vector<TruthTable64> tts;
};

Env build_env(BddManager& mgr, unsigned num_vars, int steps,
              std::uint64_t seed) {
  Env env;
  util::Xoshiro256 rng(seed);
  for (unsigned v = 0; v < num_vars; ++v) {
    env.fns.push_back(mgr.var(v));
    env.tts.push_back(TruthTable64::input(v, num_vars));
  }
  for (int step = 0; step < steps; ++step) {
    const Op op = static_cast<Op>(rng.below(kNumOps));
    const std::size_t a = rng.below(env.fns.size());
    const std::size_t b = rng.below(env.fns.size());
    env.fns.push_back(mgr.apply(op, env.fns[a], env.fns[b]));
    env.tts.push_back(env.tts[a].apply(op, env.tts[b]));
  }
  return env;
}

/// Exhaustive check of every function against its truth table. Dereferences
/// every reachable node, so it faults every spilled level the environment
/// touches.
std::string validate_env(BddManager& mgr, const Env& env, unsigned num_vars) {
  std::vector<bool> assignment(num_vars);
  for (std::size_t k = 0; k < env.fns.size(); ++k) {
    for (unsigned i = 0; i < (1u << num_vars); ++i) {
      for (unsigned v = 0; v < num_vars; ++v) {
        assignment[v] = (i >> v) & 1;
      }
      if (mgr.eval(env.fns[k], assignment) != env.tts[k].eval(i)) {
        return "fn " + std::to_string(k) + " assignment " + std::to_string(i) +
               " disagrees after paging";
      }
    }
  }
  return {};
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(buf.data()), size);
  return buf;
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(out)) << path;
}

/// Re-seal a deliberately mutated segment so it passes the CRC check and
/// fails on the *target* field instead (version skew, magic).
void reseal_crc(std::vector<std::uint8_t>& bytes) {
  const std::uint32_t crc = util::crc32(bytes.data(), bytes.size() - 4);
  std::memcpy(bytes.data() + bytes.size() - 4, &crc, 4);
}

Config engine_config(TableDiscipline discipline, unsigned workers = 2) {
  Config config;
  config.workers = workers;
  config.table_discipline = discipline;
  config.table_shards = discipline == TableDiscipline::kSharded ? 4 : 1;
  return config;
}

// ---------------------------------------------------------------------------
// Round-trip identity across all three table disciplines
// ---------------------------------------------------------------------------

class OocRoundTrip : public ::testing::TestWithParam<TableDiscipline> {};

TEST_P(OocRoundTrip, SpillEverythingThenValidateExhaustively) {
  constexpr unsigned kVars = 6;
  TempSpillDir dir;
  BddManager mgr(kVars, engine_config(GetParam()));
  const Env env = build_env(mgr, kVars, 40, 0xBEEF);

  std::vector<std::size_t> counts_before;
  for (const Bdd& f : env.fns) counts_before.push_back(mgr.node_count(f));
  const std::size_t live_before = mgr.live_nodes();
  ASSERT_GT(live_before, 0u);

  PagerConfig pc;
  pc.spill_dir = dir.path();
  LevelPager pager(mgr, pc);

  // Explicit full demotion: every level with allocated slots goes to disk
  // and live_nodes drops to zero.
  const unsigned demoted = pager.demote_until(0);
  EXPECT_GT(demoted, 0u);
  EXPECT_EQ(mgr.live_nodes(), 0u);
  {
    const PagerStats s = pager.stats();
    EXPECT_EQ(s.demotions, demoted);
    EXPECT_EQ(s.spilled_levels, demoted);
    EXPECT_GT(s.spilled_nodes, 0u);
    EXPECT_EQ(s.resident_nodes, 0u);
    EXPECT_GT(s.bytes_written, 0u);
  }

  // Exhaustive evaluation faults every level back in through the touch
  // barrier; results must be bit-identical and the store sound.
  EXPECT_EQ(validate_env(mgr, env, kVars), "");
  EXPECT_EQ(test::check_store_invariants(mgr), "");
  EXPECT_EQ(mgr.live_nodes(), live_before);
  for (std::size_t k = 0; k < env.fns.size(); ++k) {
    EXPECT_EQ(mgr.node_count(env.fns[k]), counts_before[k]) << "fn " << k;
  }
  {
    const PagerStats s = pager.stats();
    EXPECT_GT(s.faults, 0u);
    EXPECT_EQ(s.spilled_levels, 0u);
    EXPECT_GT(s.bytes_read, 0u);
    // ensure_all_resident faults bottom-up, so after the first fault the
    // ascending direction always finds the next spilled level to stage.
    EXPECT_GT(s.prefetch_issued, 0u);
  }

  // A second cycle through a collection: gc() faults everything in first
  // and invalidates the segments, so paging and compaction compose.
  pager.demote_until(0);
  mgr.gc();
  EXPECT_EQ(validate_env(mgr, env, kVars), "");
  EXPECT_EQ(test::check_store_invariants(mgr), "");
}

INSTANTIATE_TEST_SUITE_P(Disciplines, OocRoundTrip,
                         ::testing::Values(TableDiscipline::kPassLock,
                                           TableDiscipline::kSharded,
                                           TableDiscipline::kLockFree),
                         [](const ::testing::TestParamInfo<TableDiscipline>&
                                info) {
                           switch (info.param) {
                             case TableDiscipline::kPassLock:
                               return "passlock";
                             case TableDiscipline::kSharded:
                               return "sharded";
                             default:
                               return "lockfree";
                           }
                         });

// ---------------------------------------------------------------------------
// Automatic demotion under a budget
// ---------------------------------------------------------------------------

TEST(OocBudget, BatchBarriersKeepResidencyAtOrBelowTarget) {
  constexpr unsigned kVars = 6;
  TempSpillDir dir;
  BddManager mgr(kVars, engine_config(TableDiscipline::kPassLock));

  PagerConfig pc;
  pc.spill_dir = dir.path();
  pc.node_budget = 8;  // far below any level's population: constant paging
  LevelPager pager(mgr, pc);

  const Env env = build_env(mgr, kVars, 40, 0xF00D);
  EXPECT_GT(pager.stats().demotions, 0u);
  EXPECT_GT(pager.stats().faults, 0u);

  // The barrier demotes to the hard target, hot levels included.
  pager.demote_until(pc.node_budget);
  EXPECT_LE(pager.stats().resident_nodes, pc.node_budget);

  EXPECT_EQ(validate_env(mgr, env, kVars), "");
  EXPECT_EQ(test::check_store_invariants(mgr), "");
}

// ---------------------------------------------------------------------------
// Corruption battery: every damaged segment faults loudly before any
// manager mutation, and the original bytes still fault in afterwards.
// ---------------------------------------------------------------------------

class OocCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    mgr_ = std::make_unique<BddManager>(
        kVars, engine_config(TableDiscipline::kPassLock));
    env_ = build_env(*mgr_, kVars, 30, 0xCAFE);
    PagerConfig pc;
    pc.spill_dir = dir_.path();
    pc.prefetch = false;  // the sync fault path must read the mutated file
    pager_ = std::make_unique<LevelPager>(*mgr_, pc);
    // Spill one mid-order level and keep its pristine segment bytes.
    for (unsigned v = 0; v < kVars; ++v) {
      if (pager_->demote_level(v)) {
        var_ = v;
        break;
      }
    }
    ASSERT_TRUE(pager_->is_spilled(var_));
    path_ = segment_path(dir_.path(), var_);
    pristine_ = slurp(path_);
    ASSERT_GT(pristine_.size(), 24u);
  }

  /// The next touch of the spilled level must throw `what_substr`, leave the
  /// level spilled, and succeed once the pristine bytes are put back.
  void expect_fault_then_recover(const std::string& what_substr) {
    try {
      mgr_->ensure_all_resident();
      FAIL() << "fault-in accepted a corrupt segment (" << what_substr << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(what_substr), std::string::npos)
          << "actual: " << e.what();
    }
    EXPECT_TRUE(pager_->is_spilled(var_));
    spit(path_, pristine_);
    mgr_->ensure_all_resident();
    EXPECT_FALSE(pager_->is_spilled(var_));
    EXPECT_EQ(validate_env(*mgr_, env_, kVars), "");
    EXPECT_EQ(test::check_store_invariants(*mgr_), "");
  }

  static constexpr unsigned kVars = 6;
  TempSpillDir dir_;
  std::unique_ptr<BddManager> mgr_;
  std::unique_ptr<LevelPager> pager_;
  Env env_;
  unsigned var_ = 0;
  std::string path_;
  std::vector<std::uint8_t> pristine_;
};

TEST_F(OocCorruption, TruncatedSegmentFaultsLoudly) {
  std::vector<std::uint8_t> bytes(pristine_.begin(), pristine_.begin() + 10);
  spit(path_, bytes);
  expect_fault_then_recover("truncated");
}

TEST_F(OocCorruption, BodyBitFlipFailsTheChecksum) {
  std::vector<std::uint8_t> bytes = pristine_;
  bytes[bytes.size() / 2] ^= 0x40;
  spit(path_, bytes);
  expect_fault_then_recover("checksum mismatch");
}

TEST_F(OocCorruption, StaleCrcTrailerFailsTheChecksum) {
  // A trailer from some other generation of the file: payload and CRC no
  // longer agree, exactly as after a torn rewrite.
  std::vector<std::uint8_t> bytes = pristine_;
  for (std::size_t i = bytes.size() - 4; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(~bytes[i]);
  }
  spit(path_, bytes);
  expect_fault_then_recover("checksum mismatch");
}

TEST_F(OocCorruption, FormatVersionSkewIsRejected) {
  // Re-sealed CRC so the version check itself must catch it.
  std::vector<std::uint8_t> bytes = pristine_;
  bytes[8] = static_cast<std::uint8_t>(bytes[8] + 1);
  reseal_crc(bytes);
  spit(path_, bytes);
  expect_fault_then_recover("format version skew");
}

TEST_F(OocCorruption, ForeignMagicIsRejected) {
  std::vector<std::uint8_t> bytes = pristine_;
  bytes[0] ^= 0xFF;
  reseal_crc(bytes);
  spit(path_, bytes);
  expect_fault_then_recover("bad magic");
}

TEST_F(OocCorruption, MissingSegmentFaultsLoudly) {
  std::remove(path_.c_str());
  expect_fault_then_recover("missing spill segment");
}

TEST_F(OocCorruption, WrongLevelSegmentIsRejected) {
  // A valid segment for a *different* level copied over this one: the CRC
  // passes, the level tag must not.
  unsigned other = kVars;
  for (unsigned v = var_ + 1; v < kVars; ++v) {
    if (pager_->demote_level(v)) {
      other = v;
      break;
    }
  }
  ASSERT_LT(other, kVars) << "workload left no second non-empty level";
  spit(path_, slurp(segment_path(dir_.path(), other)));
  try {
    mgr_->ensure_all_resident();
    FAIL() << "fault-in accepted a segment for the wrong level";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("level tag mismatch"),
              std::string::npos)
        << "actual: " << e.what();
  }
  // Both levels recover from their pristine images.
  spit(path_, pristine_);
  mgr_->ensure_all_resident();
  EXPECT_EQ(validate_env(*mgr_, env_, kVars), "");
}

// ---------------------------------------------------------------------------
// Demand estimator
// ---------------------------------------------------------------------------

TEST(OocDemand, CutProductBoundsTheApplyResult) {
  BddManager mgr(8, engine_config(TableDiscipline::kPassLock, 1));
  const Env env = build_env(mgr, 6, 30, 0xD00D);
  const Bdd& f = env.fns[env.fns.size() - 1];
  const Bdd& g = env.fns[env.fns.size() - 2];

  std::vector<core::BatchOp> batch{core::BatchOp{Op::And, f, g, -1, -1}};
  const ooc::DemandEstimate est = ooc::estimate_batch_demand(
      mgr, std::span<const core::BatchOp>(batch.data(), batch.size()));
  EXPECT_TRUE(est.exact);

  const Bdd h = mgr.apply(Op::And, f, g);
  // The summed cut products upper-bound the result's internal nodes (the
  // max-cut memory model); +2 tolerates terminal counting conventions.
  EXPECT_GE(est.nodes + 2, mgr.node_count(h));
}

TEST(OocDemand, VisitCapAndDepsDowngradeToInexact) {
  BddManager mgr(8, engine_config(TableDiscipline::kPassLock, 1));
  const Env env = build_env(mgr, 6, 30, 0xD11D);
  const Bdd& f = env.fns.back();

  std::vector<core::BatchOp> capped{core::BatchOp{Op::And, f, f, -1, -1}};
  EXPECT_FALSE(ooc::estimate_batch_demand(
                   mgr, std::span<const core::BatchOp>(capped.data(), 1),
                   /*visit_cap=*/1)
                   .exact);

  // An unresolved in-batch dependency cannot be profiled.
  std::vector<core::BatchOp> dag{
      core::BatchOp{Op::And, f, f, -1, -1},
      core::BatchOp{Op::Or, core::Bdd{}, f, 0, -1},
  };
  EXPECT_FALSE(ooc::estimate_batch_demand(
                   mgr, std::span<const core::BatchOp>(dag.data(), dag.size()))
                   .exact);
}

TEST(OocDemand, TerminalsAndEmptyBatchesCostNothing) {
  BddManager mgr(4, engine_config(TableDiscipline::kPassLock, 1));
  const ooc::DemandEstimate none =
      ooc::estimate_batch_demand(mgr, std::span<const core::BatchOp>{});
  EXPECT_TRUE(none.exact);
  EXPECT_EQ(none.nodes, 0u);

  std::vector<core::BatchOp> terminals{
      core::BatchOp{Op::And, mgr.one(), mgr.zero(), -1, -1}};
  const ooc::DemandEstimate est = ooc::estimate_batch_demand(
      mgr, std::span<const core::BatchOp>(terminals.data(), 1));
  EXPECT_TRUE(est.exact);
  EXPECT_EQ(est.nodes, 0u);
}

// ---------------------------------------------------------------------------
// Trace events
// ---------------------------------------------------------------------------

TEST(OocTrace, DemoteAndFaultEmitInstantEvents) {
  if (!obs::trace_compiled()) {
    GTEST_SKIP() << "built with PBDD_TRACE=OFF";
  }
  constexpr unsigned kVars = 6;
  TempSpillDir dir;
  BddManager mgr(kVars, engine_config(TableDiscipline::kPassLock));
  const Env env = build_env(mgr, kVars, 20, 0xABCD);
  PagerConfig pc;
  pc.spill_dir = dir.path();
  LevelPager pager(mgr, pc);

  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.start();
  pager.demote_until(0);
  mgr.ensure_all_resident();
  tracer.stop();

  bool saw_demote = false;
  bool saw_fault = false;
  for (const obs::TraceRecord& r : tracer.collect().records) {
    if (r.kind == static_cast<std::uint8_t>(obs::EventKind::kOocDemote)) {
      saw_demote = true;
    }
    if (r.kind == static_cast<std::uint8_t>(obs::EventKind::kOocFault)) {
      saw_fault = true;
    }
  }
  EXPECT_TRUE(saw_demote);
  EXPECT_TRUE(saw_fault);
}

// ---------------------------------------------------------------------------
// Service governor: under memory pressure with a pager attached, the
// governor demotes cold levels instead of shedding queued work.
// ---------------------------------------------------------------------------

TEST(OocService, GovernorDemotesInsteadOfShedding) {
  TempSpillDir dir;
  service::ServiceConfig cfg;
  cfg.num_vars = 8;
  cfg.engine.workers = 2;
  cfg.queue_capacity = 16;
  // Tight enough that retained roots overflow it, loose enough that any one
  // batch's max-cut demand fits — the regime where paging (not shedding) is
  // the right lever.
  cfg.live_node_budget = 8000;
  cfg.spill_dir = dir.path();
  cfg.pager_node_budget = 0;  // governor-driven demotion only
  cfg.use_demand_estimator = true;
  service::BddService svc(cfg);

  test::ServiceWorkload wl;
  wl.sessions = 6;
  wl.requests_per_session = 20;
  wl.ops_per_request = 4;
  wl.program_seed = 77;
  wl.release_every = 0;  // never release: pressure comes from retained roots
  const test::ServiceRunResult result = test::run_service_workload(svc, wl);
  EXPECT_EQ(result.error, "");
  EXPECT_GT(result.ok, 0u);

  const service::ServiceMetrics m = svc.metrics();
  EXPECT_GT(m.ooc_demotions, 0u) << "budget never pressured the governor";
  EXPECT_EQ(m.shed, 0u) << "governor shed work it could have demoted";
  EXPECT_GT(m.demand_estimates, 0u);

  const std::string text = svc.metrics_text();
  EXPECT_NE(text.find("pbdd_service_ooc_events_total"), std::string::npos);
  EXPECT_NE(text.find("pbdd_service_ooc_bytes_total"), std::string::npos);
  EXPECT_NE(text.find("pbdd_service_demand_estimates_total"),
            std::string::npos);
}

}  // namespace
}  // namespace pbdd
