// Dynamic variable reordering in the depth-first package: in-place adjacent
// level swaps must preserve every live function; sifting must find the good
// order for functions with a known exponential/linear order gap; canonicity
// and reference counting must survive arbitrary swap sequences.
#include <gtest/gtest.h>

#include "df/df_manager.hpp"
#include "oracle.hpp"
#include "util/prng.hpp"

namespace pbdd {
namespace {

using df::DfBdd;
using df::DfManager;
using test::ExprProgram;

std::vector<bool> truth_vector(DfManager& mgr, const DfBdd& f) {
  std::vector<bool> table;
  const unsigned n = mgr.num_vars();
  for (unsigned i = 0; i < (1u << n); ++i) {
    std::vector<bool> assignment(n, false);
    for (unsigned v = 0; v < n; ++v) assignment[v] = (i >> v) & 1;
    table.push_back(mgr.eval(f, assignment));
  }
  return table;
}

/// Full semantic + structural audit of the manager after reordering:
/// every function unchanged, levels consistent, children strictly below
/// parents, sat counts intact.
void audit(DfManager& mgr, const std::vector<DfBdd>& fns,
           const std::vector<std::vector<bool>>& truths) {
  // Level maps are mutually inverse permutations.
  std::vector<bool> seen(mgr.num_vars(), false);
  for (unsigned l = 0; l < mgr.num_vars(); ++l) {
    const unsigned v = mgr.var_at(l);
    ASSERT_LT(v, mgr.num_vars());
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
    EXPECT_EQ(mgr.level_of(v), l);
  }
  for (std::size_t k = 0; k < fns.size(); ++k) {
    EXPECT_EQ(truth_vector(mgr, fns[k]), truths[k]) << "function " << k;
  }
}

TEST(Reorder, SingleSwapPreservesFunctions) {
  DfManager mgr(4);
  const ExprProgram program = ExprProgram::random(4, 30, 7);
  const auto fns = program.eval_engine<DfManager, DfBdd>(mgr);
  std::vector<std::vector<bool>> truths;
  for (const auto& f : fns) truths.push_back(truth_vector(mgr, f));

  for (unsigned l = 0; l + 1 < 4; ++l) {
    mgr.swap_levels(l);
    audit(mgr, fns, truths);
    mgr.swap_levels(l);  // swap back
    audit(mgr, fns, truths);
    EXPECT_EQ(mgr.var_at(l), l) << "double swap restores the order";
  }
}

TEST(Reorder, RandomSwapSequencePreservesEverything) {
  DfManager mgr(6);
  const ExprProgram program = ExprProgram::random(6, 60, 13);
  const auto fns = program.eval_engine<DfManager, DfBdd>(mgr);
  std::vector<std::vector<bool>> truths;
  for (const auto& f : fns) truths.push_back(truth_vector(mgr, f));

  util::Xoshiro256 rng(3);
  for (int step = 0; step < 200; ++step) {
    mgr.swap_levels(static_cast<unsigned>(rng.below(5)));
  }
  audit(mgr, fns, truths);
  // Canonicity after chaos: rebuilding a function finds the same node.
  const auto again = program.eval_engine<DfManager, DfBdd>(mgr);
  for (std::size_t k = 0; k < fns.size(); ++k) {
    EXPECT_EQ(again[k], fns[k]);
  }
  // GC still works and reclaims the garbage from swapping.
  mgr.gc();
  audit(mgr, fns, truths);
}

/// The canonical order-sensitive function: f = x0 x1 + x2 x3 + ... pairs
/// adjacent in the good order are 2n+2 nodes; with the interleaved bad
/// order (all "left" variables before all "right" ones) the BDD is
/// exponential (~2^(n/2) nodes).
DfBdd pair_function(DfManager& mgr, const std::vector<unsigned>& pairing) {
  DfBdd f = mgr.zero();
  for (std::size_t i = 0; i + 1 < pairing.size(); i += 2) {
    f = mgr.apply(Op::Or, f,
                  mgr.apply(Op::And, mgr.var(pairing[i]),
                            mgr.var(pairing[i + 1])));
  }
  return f;
}

TEST(Reorder, SiftingRecoversTheExponentialGap) {
  constexpr unsigned kPairs = 5;  // 10 variables
  DfManager mgr(2 * kPairs);
  // Bad pairing under the identity order: pair (i, i + kPairs).
  std::vector<unsigned> pairing;
  for (unsigned i = 0; i < kPairs; ++i) {
    pairing.push_back(i);
    pairing.push_back(i + kPairs);
  }
  const DfBdd f = pair_function(mgr, pairing);
  const auto truth = truth_vector(mgr, f);
  const std::size_t bad_size = mgr.node_count(f);
  ASSERT_GT(bad_size, 60u) << "interleaved order must be exponential";

  df::SiftOptions converge;
  converge.max_passes = 8;
  const std::size_t after = mgr.reorder_sift(converge);
  const std::size_t good_size = mgr.node_count(f);
  EXPECT_LE(good_size, 2 * kPairs) << "sifting must find a linear order";
  EXPECT_LT(after, bad_size);
  EXPECT_EQ(truth_vector(mgr, f), truth);
  EXPECT_EQ(mgr.stats().reorderings, 1u);
}

TEST(Reorder, SiftingNeverLosesLiveFunctions) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    DfManager mgr(7);
    const ExprProgram program = ExprProgram::random(7, 80, seed);
    const auto fns = program.eval_engine<DfManager, DfBdd>(mgr);
    std::vector<std::vector<bool>> truths;
    for (const auto& f : fns) truths.push_back(truth_vector(mgr, f));
    const std::size_t before = mgr.reorder_sift();
    audit(mgr, fns, truths);
    // Sifting is greedy descent: never worse than where it started.
    EXPECT_LE(before, mgr.live_nodes() + 0u);
    // Operations keep working after reordering.
    const DfBdd g = mgr.apply(Op::Xor, fns[10], fns[20]);
    std::vector<bool> expect;
    for (std::size_t i = 0; i < truths[10].size(); ++i) {
      expect.push_back(truths[10][i] != truths[20][i]);
    }
    EXPECT_EQ(truth_vector(mgr, g), expect);
  }
}

TEST(Reorder, MaxVarsLimitsSifting) {
  DfManager mgr(8);
  const ExprProgram program = ExprProgram::random(8, 60, 5);
  const auto fns = program.eval_engine<DfManager, DfBdd>(mgr);
  df::SiftOptions options;
  options.max_vars = 2;
  const std::size_t size = mgr.reorder_sift(options);
  EXPECT_GT(size, 0u);
}

TEST(Reorder, QueriesRespectDynamicOrder) {
  // After moving x3 to the top, sat_count / restrict / compose must still
  // be exact (they weight by level distance, not variable index).
  DfManager mgr(4);
  const ExprProgram program = ExprProgram::random(4, 30, 11);
  const auto truths = program.eval_truth();
  const auto fns = program.eval_engine<DfManager, DfBdd>(mgr);
  while (mgr.level_of(3) > 0) mgr.swap_levels(mgr.level_of(3) - 1);
  ASSERT_EQ(mgr.var_at(0), 3u);
  for (std::size_t k = 0; k < fns.size(); ++k) {
    unsigned expect = 0;
    for (unsigned i = 0; i < 16; ++i) expect += truths[k].eval(i);
    EXPECT_DOUBLE_EQ(mgr.sat_count(fns[k]), static_cast<double>(expect));
  }
  const DfBdd r = mgr.restrict_(fns.back(), 1, true);
  for (unsigned i = 0; i < 16; ++i) {
    std::vector<bool> a(4, false);
    for (unsigned v = 0; v < 4; ++v) a[v] = (i >> v) & 1;
    EXPECT_EQ(mgr.eval(r, a), truths.back().eval(i | 2u));
  }
}

}  // namespace
}  // namespace pbdd
