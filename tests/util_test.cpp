// Utility layer: hashing, PRNG determinism, block arenas, barriers, the
// worker pool, and the text-table formatter.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <thread>

#include "runtime/backoff.hpp"
#include "runtime/barrier.hpp"
#include "runtime/worker_pool.hpp"
#include "util/arena.hpp"
#include "util/hash.hpp"
#include "util/prng.hpp"
#include "util/sha256.hpp"
#include "util/table.hpp"

namespace pbdd {
namespace {

TEST(Hash, Mix64Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  int total = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t a = util::mix64(0x123456789abcdefULL);
    const std::uint64_t b =
        util::mix64(0x123456789abcdefULL ^ (std::uint64_t{1} << bit));
    total += __builtin_popcountll(a ^ b);
  }
  const double avg = static_cast<double>(total) / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Hash, PairAndTripleAreOrderSensitive) {
  EXPECT_NE(util::hash_pair(3, 7), util::hash_pair(7, 3));
  EXPECT_NE(util::hash_triple(1, 2, 3), util::hash_triple(1, 3, 2));
  EXPECT_NE(util::hash_triple(1, 2, 3), util::hash_triple(2, 1, 3));
}

TEST(Sha256, KnownAnswerVectors) {
  // FIPS 180-4 test vectors. The fault-report footer (docs/FAULTSIM.md)
  // leans on this implementation, so pin it to the standard exactly.
  EXPECT_EQ(
      util::Sha256::hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      util::Sha256::hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      util::Sha256::hex(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalUpdatesMatchOneShot) {
  // Split points around the 64-byte block boundary are where a buggy
  // padding/length path would diverge.
  std::string msg;
  for (int i = 0; i < 150; ++i) msg.push_back(static_cast<char>('a' + i % 26));
  const std::string expected = util::Sha256::hex(msg);
  for (const std::size_t split : {std::size_t{1}, std::size_t{55},
                                  std::size_t{56}, std::size_t{63},
                                  std::size_t{64}, std::size_t{65},
                                  std::size_t{128}}) {
    util::Sha256 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.hex_digest(), expected) << "split at " << split;
  }
  // One million 'a's: the classic long-message vector.
  util::Sha256 big;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) big.update(chunk);
  EXPECT_EQ(
      big.hex_digest(),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ResetStartsFresh) {
  util::Sha256 h;
  h.update("garbage");
  h.reset();
  h.update("abc");
  EXPECT_EQ(
      h.hex_digest(),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Prng, DeterministicAndWellDistributed) {
  util::Xoshiro256 a(42), b(42), c(43);
  std::set<std::uint64_t> values;
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) diverged = true;
    values.insert(va);
  }
  EXPECT_TRUE(diverged);
  EXPECT_EQ(values.size(), 1000u) << "collisions in 1000 draws";
}

TEST(Prng, BelowRespectsBound) {
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  // range is inclusive on both ends and hits both.
  bool lo = false, hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    lo = lo || v == 3;
    hi = hi || v == 5;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Arena, AllocTruncateRewind) {
  util::BlockArena<int, 4> arena;  // 16 slots per block
  for (int i = 0; i < 100; ++i) {
    const auto slot = arena.alloc();
    EXPECT_EQ(slot, static_cast<std::uint32_t>(i));
    arena.at(slot) = i * 3;
  }
  EXPECT_EQ(arena.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(arena.at(i), i * 3);
  const std::size_t bytes_full = arena.bytes();
  arena.truncate(17);
  EXPECT_EQ(arena.size(), 17u);
  EXPECT_LT(arena.bytes(), bytes_full) << "trailing blocks freed";
  for (int i = 0; i < 17; ++i) EXPECT_EQ(arena.at(i), i * 3);
  arena.rewind();
  EXPECT_EQ(arena.size(), 0u);
  EXPECT_GT(arena.bytes(), 0u) << "rewind keeps blocks";
  EXPECT_EQ(arena.alloc(), 0u);
}

TEST(Barrier, SynchronizesAndReturnsOneLeader) {
  constexpr unsigned kThreads = 4;
  rt::SpinBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::atomic<int> leaders{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        counter.fetch_add(1);
        if (barrier.arrive_and_wait()) leaders.fetch_add(1);
        if (counter.load() != static_cast<int>(kThreads) * (round + 1)) {
          failed = true;
        }
        if (barrier.arrive_and_wait()) leaders.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(leaders.load(), 100) << "exactly one leader per phase";
}

TEST(WorkerPool, RunsEveryWorkerExactlyOnce) {
  rt::WorkerPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
  std::vector<std::atomic<int>> hits(5);
  for (int round = 0; round < 20; ++round) {
    pool.run([&](unsigned id) { hits[id].fetch_add(1); });
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 20);
}

TEST(WorkerPool, SizeOneRunsInline) {
  rt::WorkerPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.run([&](unsigned) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(Table, FormatsAlignedColumns) {
  util::TextTable table({"name", "value"});
  table.add_row({"x", "1.50"});
  table.add_row({"longer", "22.00"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer |"), std::string::npos);
  EXPECT_EQ(util::TextTable::num(1.234, 2), "1.23");
}

TEST(Backoff, PausesWithoutBlocking) {
  rt::Backoff backoff;
  for (int i = 0; i < 20; ++i) backoff.pause();  // must terminate quickly
  backoff.reset();
  backoff.pause();
  SUCCEED();
}

}  // namespace
}  // namespace pbdd
