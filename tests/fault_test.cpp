// Fault-simulation engine (src/fault/) against the exhaustive gate-level
// stuck-at oracle, plus the report format's determinism and SHA-256 sealing.
//
// The load-bearing claims: (1) the campaign's per-net verdicts match
// brute-force simulation over every input assignment, for every worker
// count and unique-table discipline; (2) the rendered report is a pure
// function of circuit + sampling cap — byte-identical no matter how the
// campaign was parallelized; (3) a report that was tampered with fails
// verification.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "circuit/generators.hpp"
#include "circuit/netlist.hpp"
#include "circuit/ordering.hpp"
#include "core/bdd_manager.hpp"
#include "fault/fault.hpp"
#include "fault/report.hpp"
#include "oracle.hpp"

namespace pbdd {
namespace {

struct EngineConfig {
  unsigned workers;
  core::TableDiscipline discipline;
};

std::vector<EngineConfig> engine_matrix() {
  std::vector<EngineConfig> m;
  for (const unsigned w : {1u, 2u, 4u}) {
    for (const core::TableDiscipline d :
         {core::TableDiscipline::kPassLock, core::TableDiscipline::kSharded,
          core::TableDiscipline::kLockFree}) {
      m.push_back({w, d});
    }
  }
  return m;
}

core::Config make_config(const EngineConfig& ec) {
  core::Config config;
  config.workers = ec.workers;
  config.table_discipline = ec.discipline;
  return config;
}

std::vector<fault::NetFaultResult> run_campaign(
    const circuit::Circuit& bin, const EngineConfig& ec,
    const fault::FaultSimOptions& fopts = {},
    fault::CampaignStats* stats_out = nullptr) {
  core::BddManager mgr(static_cast<unsigned>(bin.inputs().size()),
                       make_config(ec));
  fault::FaultCampaign campaign(mgr, bin, circuit::order_dfs(bin));
  std::vector<fault::NetFaultResult> results = campaign.run(fopts);
  if (stats_out != nullptr) *stats_out = campaign.stats();
  return results;
}

void expect_matches_oracle(const circuit::Circuit& bin,
                           const EngineConfig& ec) {
  SCOPED_TRACE(testing::Message()
               << bin.name() << " workers=" << ec.workers << " discipline="
               << static_cast<int>(ec.discipline));
  const std::vector<fault::NetFaultResult> results = run_campaign(bin, ec);
  ASSERT_EQ(results.size(), fault::enumerate_fault_sites(bin).size());
  for (const fault::NetFaultResult& r : results) {
    SCOPED_TRACE("net " + r.net);
    EXPECT_EQ(r.sa0_equivalent, !test::fault_detectable(bin, r.gate, false));
    EXPECT_EQ(r.sa1_equivalent, !test::fault_detectable(bin, r.gate, true));
  }
}

std::string render(const circuit::Circuit& bin,
                   const std::vector<fault::NetFaultResult>& results) {
  fault::ReportInfo info;
  info.circuit = bin.name();
  info.inputs = bin.inputs().size();
  info.outputs = bin.outputs().size();
  info.gates = bin.num_gates();
  info.total_nets = fault::enumerate_fault_sites(bin).size();
  info.reported_nets = results.size();
  return fault::render_report(info, results);
}

TEST(FaultOracle, C17AllConfigurations) {
  const circuit::Circuit bin = circuit::c17().binarized();
  for (const EngineConfig& ec : engine_matrix()) {
    expect_matches_oracle(bin, ec);
  }
}

TEST(FaultOracle, ParityTree) {
  // XOR trees are fully testable and exercise deep shared cones.
  const circuit::Circuit bin = circuit::parity_tree(8).binarized();
  for (const EngineConfig& ec : engine_matrix()) {
    expect_matches_oracle(bin, ec);
  }
}

TEST(FaultOracle, RandomCircuits) {
  // Random netlists are where redundant (equivalent) faults actually show
  // up; sweep several seeds on the full worker/discipline matrix.
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    const circuit::Circuit bin =
        circuit::random_circuit(6, 40, seed).binarized();
    for (const EngineConfig& ec : engine_matrix()) {
      expect_matches_oracle(bin, ec);
    }
  }
}

TEST(FaultOracle, RedundantNetIsEquivalent) {
  // Hand-built redundancy: y = a AND (a OR b). The inner OR stuck at 1
  // leaves y = a unchanged, so sa1 on that net must be equivalent while
  // both polarities on `a` are detectable.
  circuit::Circuit c("redundant");
  const auto a = c.add_input("a");
  const auto b = c.add_input("b");
  const auto o = c.add_gate(circuit::GateType::Or, {a, b}, "inner");
  const auto y = c.add_gate(circuit::GateType::And, {a, o}, "y");
  c.mark_output(y, "y");
  const std::vector<fault::NetFaultResult> results =
      run_campaign(c, {2, core::TableDiscipline::kPassLock});
  ASSERT_EQ(results.size(), 4u);
  for (const fault::NetFaultResult& r : results) {
    if (r.net == "inner") {
      EXPECT_FALSE(r.sa0_equivalent);
      EXPECT_TRUE(r.sa1_equivalent);
    }
    if (r.net == "a") {
      EXPECT_FALSE(r.sa0_equivalent);
      EXPECT_FALSE(r.sa1_equivalent);
    }
    EXPECT_EQ(r.sa0_equivalent, !test::fault_detectable(c, r.gate, false));
    EXPECT_EQ(r.sa1_equivalent, !test::fault_detectable(c, r.gate, true));
  }
}

TEST(FaultReport, ByteIdenticalAcrossWorkersAndDisciplines) {
  const circuit::Circuit bin =
      circuit::carry_select_adder(8).binarized();
  std::string reference;
  for (const EngineConfig& ec : engine_matrix()) {
    fault::FaultSimOptions fopts;
    fopts.batch_faults = ec.workers * 8;  // batch width must not leak either
    const std::string report =
        render(bin, run_campaign(bin, ec, fopts));
    std::string error;
    EXPECT_TRUE(fault::verify_report(report, &error)) << error;
    if (reference.empty()) {
      reference = report;
    } else {
      EXPECT_EQ(report, reference)
          << "workers=" << ec.workers
          << " discipline=" << static_cast<int>(ec.discipline);
    }
  }
}

TEST(FaultReport, SamplingIsDeterministicPrefixFree) {
  // max_nets stride-samples the enumeration: same cap -> same sites, and
  // every sampled site's verdict matches the full campaign's.
  const circuit::Circuit bin = circuit::c17().binarized();
  const EngineConfig ec{1, core::TableDiscipline::kPassLock};
  fault::FaultSimOptions capped;
  capped.max_nets = 4;
  const std::vector<fault::NetFaultResult> sampled =
      run_campaign(bin, ec, capped);
  const std::vector<fault::NetFaultResult> again =
      run_campaign(bin, ec, capped);
  const std::vector<fault::NetFaultResult> full = run_campaign(bin, ec);
  ASSERT_EQ(sampled.size(), 4u);
  ASSERT_EQ(again.size(), 4u);
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    EXPECT_EQ(sampled[i].net, again[i].net);
    bool found = false;
    for (const fault::NetFaultResult& f : full) {
      if (f.gate != sampled[i].gate) continue;
      found = true;
      EXPECT_EQ(f.sa0_equivalent, sampled[i].sa0_equivalent);
      EXPECT_EQ(f.sa1_equivalent, sampled[i].sa1_equivalent);
    }
    EXPECT_TRUE(found) << sampled[i].net;
  }
  // The sampled header must disclose the cap.
  const std::string report = render(bin, sampled);
  EXPECT_NE(report.find("# sampled 4 of "), std::string::npos);
}

TEST(FaultReport, TamperingIsDetected) {
  const circuit::Circuit bin = circuit::c17().binarized();
  const std::string report =
      render(bin,
             run_campaign(bin, {1, core::TableDiscipline::kPassLock}));
  std::string error;
  ASSERT_TRUE(fault::verify_report(report, &error)) << error;

  // Flip one verdict bit in the body.
  std::string flipped = report;
  const std::size_t pos = flipped.find(" 0 0\n");
  const std::size_t alt = flipped.find(" 0 1\n");
  const std::size_t hit = pos != std::string::npos ? pos : alt;
  ASSERT_NE(hit, std::string::npos);
  flipped[hit + 1] = flipped[hit + 1] == '0' ? '1' : '0';
  EXPECT_FALSE(fault::verify_report(flipped, &error));

  // Truncate the footer entirely.
  const std::string truncated =
      report.substr(0, report.rfind("# sha256 "));
  EXPECT_FALSE(fault::verify_report(truncated, &error));

  // Corrupt the digest itself.
  std::string bad_digest = report;
  const std::size_t dpos = bad_digest.rfind("# sha256 ") + 9;
  bad_digest[dpos] = bad_digest[dpos] == 'a' ? 'b' : 'a';
  EXPECT_FALSE(fault::verify_report(bad_digest, &error));

  // Missing magic line.
  EXPECT_FALSE(fault::verify_report(report.substr(1), &error));
}

TEST(FaultCampaign, DifferenceFunctionMatchesOracle) {
  const circuit::Circuit bin = circuit::c17().binarized();
  core::BddManager mgr(static_cast<unsigned>(bin.inputs().size()), {});
  fault::FaultCampaign campaign(mgr, bin, circuit::order_dfs(bin));
  for (const fault::FaultSite& site : fault::enumerate_fault_sites(bin)) {
    for (const bool stuck_one : {false, true}) {
      const core::Bdd diff = campaign.difference_function(
          site.gate,
          stuck_one ? fault::StuckAt::kOne : fault::StuckAt::kZero);
      const bool detectable = mgr.sat_count(diff) != 0.0;
      EXPECT_EQ(detectable,
                test::fault_detectable(bin, site.gate, stuck_one))
          << site.net << " sa" << (stuck_one ? 1 : 0);
    }
  }
}

TEST(FaultCampaign, CancellationReturnsResolvedPrefix) {
  const circuit::Circuit bin =
      circuit::carry_select_adder(8).binarized();
  core::BddManager mgr(static_cast<unsigned>(bin.inputs().size()), {});
  fault::FaultCampaign campaign(mgr, bin, circuit::order_dfs(bin));
  core::BatchControl control;
  fault::FaultSimOptions fopts;
  fopts.batch_faults = 8;  // several waves
  fopts.control = &control;
  fopts.wave_callback = [&control](std::size_t wave) {
    if (wave == 1) control.cancel.store(true);
  };
  const std::vector<fault::NetFaultResult> results = campaign.run(fopts);
  const std::size_t total = fault::enumerate_fault_sites(bin).size();
  EXPECT_TRUE(campaign.stats().cancelled);
  EXPECT_LT(results.size(), total);
  EXPECT_GT(results.size(), 0u);
  // The resolved prefix must still be correct.
  for (const fault::NetFaultResult& r : results) {
    EXPECT_EQ(r.sa0_equivalent, !test::fault_detectable(bin, r.gate, false));
    EXPECT_EQ(r.sa1_equivalent, !test::fault_detectable(bin, r.gate, true));
  }
}

TEST(FaultCampaign, StatsAccounting) {
  const circuit::Circuit bin = circuit::c17().binarized();
  fault::CampaignStats stats;
  const std::vector<fault::NetFaultResult> results =
      run_campaign(bin, {1, core::TableDiscipline::kPassLock}, {}, &stats);
  EXPECT_EQ(stats.nets, results.size());
  EXPECT_EQ(stats.nets_resolved, results.size());
  EXPECT_EQ(stats.faults_evaluated, 2 * results.size());
  EXPECT_EQ(stats.faults_detected + stats.faults_equivalent,
            stats.faults_evaluated);
  EXPECT_GT(stats.waves, 0u);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.golden_batches, 0u);
  EXPECT_FALSE(stats.cancelled);
  // c17 is the textbook fully-testable circuit.
  EXPECT_EQ(stats.faults_equivalent, 0u);
}

TEST(FaultCampaign, GoldenAccessorsAndReuse) {
  const circuit::Circuit bin = circuit::c17().binarized();
  core::BddManager mgr(static_cast<unsigned>(bin.inputs().size()), {});
  fault::FaultCampaign campaign(mgr, bin, circuit::order_dfs(bin));
  campaign.build_golden();
  const std::uint64_t golden_batches = campaign.stats().golden_batches;
  EXPECT_GT(golden_batches, 0u);
  EXPECT_EQ(campaign.golden_values().size(), bin.num_gates());
  EXPECT_EQ(campaign.golden_outputs().size(), bin.outputs().size());
  campaign.build_golden();  // idempotent: no rebuild
  EXPECT_EQ(campaign.stats().golden_batches, golden_batches);
  // run() reuses the same goldens rather than rebuilding.
  (void)campaign.run({});
  EXPECT_EQ(campaign.stats().golden_batches, golden_batches);
}

}  // namespace
}  // namespace pbdd
