// Multi-session service runtime: admission, backpressure, deadlines,
// cancellation, quotas, priority shedding, and the memory-pressure
// governor's budget guarantee. Deterministic scheduling levers: the
// dispatcher can be held off via quiesce_and (it blocks on the manager
// mutex), and already-passed deadlines / pre-bumped epochs make the
// cancellation paths exact rather than timing-dependent.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "service/bdd_service.hpp"
#include "service_driver.hpp"

namespace pbdd {
namespace {

using namespace std::chrono_literals;
using service::BddService;
using service::Priority;
using service::RequestResult;
using service::RequestStatus;
using service::ServiceConfig;
using service::SessionId;
using service::SubmitOptions;

ServiceConfig small_config() {
  ServiceConfig cfg;
  cfg.num_vars = 8;
  cfg.engine.workers = 2;
  cfg.engine.eval_threshold = 16;
  return cfg;
}

/// Holds the service's manager mutex on a helper thread, which stalls the
/// dispatcher at its next manager access and leaves submissions queued.
class DispatcherHold {
 public:
  explicit DispatcherHold(BddService& svc) {
    std::promise<void> held;
    auto held_f = held.get_future();
    thread_ = std::thread([this, &svc, &held] {
      svc.quiesce_and([this, &held](core::BddManager&) {
        held.set_value();
        release_.get_future().wait();
      });
    });
    held_f.wait();
  }
  void release() {
    if (!released_) {
      release_.set_value();
      released_ = true;
      thread_.join();
    }
  }
  ~DispatcherHold() { release(); }

 private:
  std::promise<void> release_;
  bool released_ = false;
  std::thread thread_;
};

TEST(ServiceTest, SingleSessionExecutesABatchCorrectly) {
  BddService svc(small_config());
  const SessionId sid = svc.open_session();
  ASSERT_NE(sid, service::kInvalidSession);

  std::vector<core::BatchOp> ops;
  ops.push_back({Op::And, svc.var(0), svc.var(1)});
  ops.push_back({Op::Or, svc.var(2), svc.var(3)});
  ops.push_back({Op::Xor, svc.var(0), svc.var(0)});
  const RequestResult res = svc.execute(sid, ops);
  ASSERT_EQ(res.status, RequestStatus::kOk);
  ASSERT_EQ(res.roots.size(), 3u);
  EXPECT_TRUE(res.roots[2].is_zero());

  // Validate against the engine oracle on the quiesced manager.
  svc.quiesce_and([&](core::BddManager& mgr) {
    for (unsigned i = 0; i < 16; ++i) {
      std::vector<bool> a(8);
      for (unsigned v = 0; v < 4; ++v) a[v] = (i >> v) & 1;
      EXPECT_EQ(mgr.eval(res.roots[0], a), (a[0] && a[1]));
      EXPECT_EQ(mgr.eval(res.roots[1], a), (a[2] || a[3]));
    }
  });
  EXPECT_GT(svc.session_accounted_nodes(sid), 0u);
  svc.close_session(sid);
}

TEST(ServiceTest, EmptyBatchResolvesOkWithoutDispatch) {
  BddService svc(small_config());
  const SessionId sid = svc.open_session();
  const RequestResult res = svc.execute(sid, {});
  EXPECT_EQ(res.status, RequestStatus::kOk);
  EXPECT_TRUE(res.roots.empty());
}

TEST(ServiceTest, InvalidRequestsFailFast) {
  BddService svc(small_config());
  const SessionId sid = svc.open_session();

  // Unknown session.
  std::vector<core::BatchOp> ops{{Op::And, svc.var(0), svc.var(1)}};
  EXPECT_EQ(svc.execute(sid + 99, ops).status, RequestStatus::kFailed);

  // Invalid operand handle.
  std::vector<core::BatchOp> bad{{Op::And, svc.var(0), core::Bdd{}}};
  EXPECT_EQ(svc.execute(sid, bad).status, RequestStatus::kFailed);

  // Closed session.
  svc.close_session(sid);
  EXPECT_EQ(svc.execute(sid, ops).status, RequestStatus::kFailed);
}

TEST(ServiceTest, SessionLimitAndReopen) {
  ServiceConfig cfg = small_config();
  cfg.max_sessions = 2;
  BddService svc(cfg);
  const SessionId a = svc.open_session();
  const SessionId b = svc.open_session();
  ASSERT_NE(a, service::kInvalidSession);
  ASSERT_NE(b, service::kInvalidSession);
  EXPECT_EQ(svc.open_session(), service::kInvalidSession);
  svc.close_session(a);
  EXPECT_NE(svc.open_session(), service::kInvalidSession);
}

TEST(ServiceTest, NodeQuotaRejectsUntilRootsReleased) {
  ServiceConfig cfg = small_config();
  cfg.session_node_quota = 1;  // the first registered root busts it
  BddService svc(cfg);
  const SessionId sid = svc.open_session();

  std::vector<core::BatchOp> ops{{Op::And, svc.var(0), svc.var(1)}};
  ASSERT_EQ(svc.execute(sid, ops).status, RequestStatus::kOk);
  ASSERT_GE(svc.session_accounted_nodes(sid), 1u);

  const RequestResult over = svc.execute(sid, ops);
  EXPECT_EQ(over.status, RequestStatus::kQuotaExceeded);
  EXPECT_GT(over.retry_after.count(), 0);

  svc.release_session_roots(sid);
  EXPECT_EQ(svc.session_accounted_nodes(sid), 0u);
  EXPECT_EQ(svc.execute(sid, ops).status, RequestStatus::kOk);
  EXPECT_GE(svc.metrics().rejected_quota, 1u);
}

TEST(ServiceTest, PastDeadlineExpiresBeforeExecution) {
  BddService svc(small_config());
  const SessionId sid = svc.open_session();
  std::vector<core::BatchOp> ops{{Op::And, svc.var(0), svc.var(1)}};
  SubmitOptions opts;
  opts.deadline = std::chrono::steady_clock::now() - 1ms;
  const RequestResult res = svc.execute(sid, ops, opts);
  EXPECT_EQ(res.status, RequestStatus::kExpired);
  EXPECT_TRUE(res.roots.empty());
  EXPECT_GE(svc.metrics().expired, 1u);
}

TEST(ServiceTest, DeadlineCutsAnInFlightBatchShort) {
  BddService svc(small_config());
  const SessionId sid = svc.open_session();
  std::vector<core::BatchOp> ops{{Op::And, svc.var(0), svc.var(1)},
                                 {Op::Or, svc.var(2), svc.var(3)}};
  std::future<RequestResult> fut;
  {
    DispatcherHold hold(svc);
    SubmitOptions opts;
    opts.deadline = std::chrono::steady_clock::now() + 20ms;
    fut = svc.submit(sid, ops, opts);
    std::this_thread::sleep_for(40ms);  // deadline passes while held
    hold.release();
  }
  const RequestResult res = fut.get();
  EXPECT_EQ(res.status, RequestStatus::kExpired);
  EXPECT_TRUE(res.roots.empty());
}

TEST(ServiceTest, CancelSessionKillsQueuedAndInFlightWork) {
  BddService svc(small_config());
  const SessionId sid = svc.open_session();
  std::vector<core::BatchOp> ops{{Op::And, svc.var(0), svc.var(1)}};
  std::future<RequestResult> fut;
  {
    DispatcherHold hold(svc);
    fut = svc.submit(sid, ops);
    svc.cancel_session(sid);
    hold.release();
  }
  EXPECT_EQ(fut.get().status, RequestStatus::kCancelled);

  // The session itself survives a cancel: new work is accepted.
  EXPECT_EQ(svc.execute(sid, ops).status, RequestStatus::kOk);
  EXPECT_GE(svc.metrics().cancelled, 1u);
}

TEST(ServiceTest, FullQueueRejectsNonBlockingSubmits) {
  ServiceConfig cfg = small_config();
  cfg.queue_capacity = 2;
  BddService svc(cfg);
  const SessionId sid = svc.open_session();
  std::vector<core::BatchOp> ops{{Op::And, svc.var(0), svc.var(1)}};

  std::vector<std::future<RequestResult>> futs;
  unsigned rejected = 0;
  {
    DispatcherHold hold(svc);
    SubmitOptions opts;
    opts.block_on_full = false;
    // Dispatcher can hold at most one request in flight; with capacity 2,
    // four non-blocking submits must see at least one rejection.
    for (int i = 0; i < 4; ++i) {
      futs.push_back(svc.submit(sid, ops, opts));
      std::this_thread::sleep_for(5ms);
    }
    for (auto& f : futs) {
      if (f.wait_for(0ms) == std::future_status::ready) {
        const RequestResult r = f.get();
        EXPECT_EQ(r.status, RequestStatus::kRejected);
        EXPECT_GT(r.retry_after.count(), 0);
        ++rejected;
      }
    }
    EXPECT_GE(rejected, 1u);
    hold.release();
  }
  // Everything admitted completes after the hold lifts.
  for (auto& f : futs) {
    if (f.valid()) {
      EXPECT_EQ(f.get().status, RequestStatus::kOk);
    }
  }
  EXPECT_EQ(svc.metrics().rejected_queue_full, rejected);
}

TEST(ServiceTest, GovernorShedsLowerPriorityUnderSustainedPressure) {
  ServiceConfig cfg = small_config();
  cfg.live_node_budget = 1;  // permanently over budget: every admission defers
  cfg.shed_after_deferrals = 2;
  cfg.deferral_wait = 1ms;
  BddService svc(cfg);
  const SessionId sid = svc.open_session();
  std::vector<core::BatchOp> ops{{Op::And, svc.var(0), svc.var(1)}};

  // First request enters the governor and starts deferring; while it does,
  // a high-priority and a low-priority request join the queue. When the
  // high-priority one reaches the governor, its shedding pass drops the
  // queued low-priority request.
  SubmitOptions low;
  low.priority = Priority::kLow;
  SubmitOptions high;
  high.priority = Priority::kHigh;
  auto f1 = svc.submit(sid, ops, low);
  auto f_high = svc.submit(sid, ops, high);
  auto f_low = svc.submit(sid, ops, low);

  // Which request the dispatcher pops first depends on submission timing
  // (the first low request may or may not be queued alongside the others),
  // but the outcome classes are fixed: the high-priority request is never
  // shed — it reaches the governor and is rejected after its deferrals —
  // while the trailing low-priority request is always still queued when a
  // shedding pass runs, so it is always shed.
  const RequestResult r1 = f1.get();
  const RequestResult r_high = f_high.get();
  const RequestResult r_low = f_low.get();
  EXPECT_EQ(r_high.status, RequestStatus::kRejected);
  EXPECT_GT(r_high.retry_after.count(), 0);
  EXPECT_EQ(r_low.status, RequestStatus::kShed);
  EXPECT_GT(r_low.retry_after.count(), 0);
  EXPECT_TRUE(r1.status == RequestStatus::kRejected ||
              r1.status == RequestStatus::kShed)
      << request_status_name(r1.status);

  const service::ServiceMetrics m = svc.metrics();
  EXPECT_GE(m.shed, 1u);
  EXPECT_GE(m.rejected_demand, 1u);
  EXPECT_EQ(m.shed + m.rejected_demand, 3u);
  EXPECT_GT(m.deferrals, 0u);
  EXPECT_GT(m.governor_gcs, 0u);
  EXPECT_EQ(m.completed, 0u);
}

TEST(ServiceTest, GovernorKeepsLiveNodesUnderBudget) {
  ServiceConfig cfg;
  cfg.num_vars = 16;
  cfg.engine.workers = 2;
  cfg.engine.eval_threshold = 16;
  // A single-session run is fully deterministic (one closed-loop client,
  // sequential dispatch). Its monomial accumulator pushes gross allocation
  // well past this budget — garbage the engine's own auto-GC threshold
  // would never touch at this scale — so the governor's admission-time
  // collection provably fires, while the client's pinned working set stays
  // inside the budget so progress continues and the guarantee is checkable.
  cfg.live_node_budget = 16384;
  BddService svc(cfg);

  test::ServiceWorkload wl;
  wl.sessions = 1;
  wl.requests_per_session = 48;
  wl.ops_per_request = 8;
  wl.program_seed = 7;
  wl.release_every = 2;
  const test::ServiceRunResult res = test::run_service_workload(svc, wl);
  EXPECT_TRUE(res.error.empty()) << res.error;
  EXPECT_EQ(res.ok, 48u);
  EXPECT_GE(res.metrics.governor_gcs, 1u);
  EXPECT_LE(res.metrics.max_live_nodes_observed, cfg.live_node_budget);
}

TEST(ServiceTest, EightSessionMixedWorkloadStaysCoherent) {
  ServiceConfig cfg;
  cfg.num_vars = 10;
  cfg.engine.workers = 4;
  cfg.engine.eval_threshold = 16;
  cfg.queue_capacity = 16;
  BddService svc(cfg);

  test::ServiceWorkload wl;
  wl.sessions = 8;
  wl.requests_per_session = 16;
  wl.ops_per_request = 6;
  wl.program_seed = 11;
  wl.deadline_every = 5;
  wl.cancel_every = 7;
  const test::ServiceRunResult res = test::run_service_workload(svc, wl);
  EXPECT_TRUE(res.error.empty()) << res.error;
  EXPECT_GT(res.ok, 0u);
  const service::ServiceMetrics m = res.metrics;
  EXPECT_EQ(m.completed, res.ok);
  EXPECT_EQ(m.open_sessions, 0u);
  EXPECT_EQ(m.queue_depth, 0u);
  EXPECT_EQ(m.submitted,
            m.completed + m.rejected_queue_full + m.rejected_quota +
                m.rejected_demand + m.shed + m.expired + m.cancelled);
}

TEST(ServiceTest, ShutdownResolvesEveryOutstandingFuture) {
  std::vector<std::future<RequestResult>> futs;
  {
    BddService svc(small_config());
    const SessionId sid = svc.open_session();
    std::vector<core::BatchOp> ops{{Op::And, svc.var(0), svc.var(1)}};
    for (int i = 0; i < 6; ++i) futs.push_back(svc.submit(sid, ops));
    // Destructor runs with requests possibly still queued or in flight.
  }
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(0ms), std::future_status::ready);
    const RequestResult r = f.get();
    EXPECT_TRUE(r.status == RequestStatus::kOk ||
                r.status == RequestStatus::kCancelled)
        << request_status_name(r.status);
  }
}

TEST(ServiceTest, MetricsJsonIsBalancedAndCarriesTheEngineStats) {
  BddService svc(small_config());
  const SessionId sid = svc.open_session();
  std::vector<core::BatchOp> ops{{Op::And, svc.var(0), svc.var(1)}};
  ASSERT_EQ(svc.execute(sid, ops).status, RequestStatus::kOk);

  const std::string json = svc.metrics_json();
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  for (const char* key :
       {"\"submitted\"", "\"completed\"", "\"governor_gcs\"",
        "\"live_node_budget\"", "\"demand_per_op\"", "\"engine\"",
        "\"ops_performed\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace pbdd
