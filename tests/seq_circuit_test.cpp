// New generator blocks: barrel shifter and priority encoder against
// reference models, and the sequential generators (shift register, LFSR,
// Gray counter) stepped against software models and analyzed symbolically.
#include <gtest/gtest.h>

#include <set>

#include <cmath>

#include "circuit/generators.hpp"
#include "circuit/netlist.hpp"
#include "core/bdd_manager.hpp"
#include "core/fold.hpp"
#include "mc/circuit_system.hpp"
#include "mc/reachability.hpp"
#include "util/prng.hpp"

namespace pbdd {
namespace {

using circuit::Circuit;

std::vector<bool> bits_of(std::uint64_t value, unsigned width) {
  std::vector<bool> bits(width);
  for (unsigned i = 0; i < width; ++i) bits[i] = (value >> i) & 1;
  return bits;
}

std::uint64_t value_of(const std::vector<bool>& bits) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) v |= std::uint64_t{1} << i;
  }
  return v;
}

TEST(Generators, BarrelShifterRotates) {
  const unsigned w = 8;
  const Circuit shifter = circuit::barrel_shifter(w);
  util::Xoshiro256 rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t data = rng.below(256);
    const unsigned amount = static_cast<unsigned>(rng.below(8));
    std::vector<bool> in = bits_of(data, w);
    const std::vector<bool> sb = bits_of(amount, 3);
    in.insert(in.end(), sb.begin(), sb.end());
    const std::uint64_t expect =
        ((data << amount) | (data >> (w - amount))) & 0xFF;
    EXPECT_EQ(value_of(shifter.simulate(in)), amount ? expect : data)
        << "data=" << data << " amount=" << amount;
  }
}

TEST(Generators, BarrelShifterRejectsNonPowerOfTwo) {
  EXPECT_THROW((void)circuit::barrel_shifter(6), std::invalid_argument);
}

TEST(Generators, PriorityEncoderFindsLowestAsserted) {
  const unsigned n = 11;  // non-power-of-two width
  const Circuit enc = circuit::priority_encoder(n);
  for (std::uint64_t mask = 0; mask < (1u << n); mask += 13) {
    const std::vector<bool> out = enc.simulate(bits_of(mask, n));
    const bool valid = mask != 0;
    EXPECT_EQ(out.back(), valid);
    if (valid) {
      const unsigned expect =
          static_cast<unsigned>(__builtin_ctzll(mask));
      EXPECT_EQ(value_of({out.begin(), out.end() - 1}), expect)
          << "mask=" << mask;
    }
  }
}

TEST(SequentialGenerators, ShiftRegisterPipesBits) {
  const unsigned n = 5;
  const Circuit sr = circuit::shift_register(n);
  ASSERT_EQ(sr.latches().size(), n);
  std::vector<bool> state(n, false);
  util::Xoshiro256 rng(3);
  std::vector<bool> history;
  for (int step = 0; step < 40; ++step) {
    const bool in = rng.coin();
    history.push_back(in);
    const auto [outs, next] = sr.simulate_step(state, {in});
    // The output taps the last stage: the bit fed n-1 steps ago.
    EXPECT_EQ(outs[0], state[n - 1]);
    state = next;
    // Next state is the previous state shifted with `in` at the front.
    if (step >= static_cast<int>(n)) {
      EXPECT_EQ(state[n - 1], history[history.size() - n]);
    }
  }
}

TEST(SequentialGenerators, LfsrHasFullPeriod) {
  // x^4 + x^3 + 1 (taps 3,2 in 0-indexed shift-in form) is maximal:
  // period 15 over the nonzero states.
  const Circuit reg = circuit::lfsr(4, {3, 2});
  std::vector<bool> state{true, false, false, false};
  std::set<std::uint64_t> seen;
  for (int step = 0; step < 15; ++step) {
    EXPECT_TRUE(seen.insert(value_of(state)).second) << "step " << step;
    const auto [outs, next] = reg.simulate_step(state, {false});
    state = next;
  }
  EXPECT_EQ(value_of(state), 1u) << "period 15 returns to the seed state";
  EXPECT_EQ(seen.size(), 15u);
}

TEST(SequentialGenerators, GrayCounterStepsTheReflectedSequence) {
  const unsigned n = 4;
  const Circuit gray = circuit::gray_counter(n);
  ASSERT_EQ(gray.latches().size(), n);
  std::vector<bool> state(n, false);
  for (unsigned step = 0; step < (1u << n); ++step) {
    const std::uint64_t expect = step ^ (step >> 1);  // binary -> Gray
    EXPECT_EQ(value_of(state), expect) << "step " << step;
    // Exactly one bit flips per enabled step (after the first check).
    const auto [outs, next] = gray.simulate_step(state, {true});
    if (step + 1 < (1u << n)) {
      EXPECT_EQ(__builtin_popcountll(value_of(state) ^ value_of(next)), 1);
    }
    state = next;
  }
  EXPECT_EQ(value_of(state), 0u) << "wraps around";
  // Disabled: state holds.
  const auto [outs, held] = gray.simulate_step(state, {false});
  EXPECT_EQ(held, state);
}

TEST(SequentialGenerators, SymbolicReachabilityOfGrayCounter) {
  const unsigned n = 5;
  const Circuit gray = circuit::gray_counter(n);
  const mc::VarLayout layout = mc::CircuitSystem::layout_for(gray);
  core::BddManager mgr(layout.total_vars());
  const auto system = mc::CircuitSystem::build(mgr, gray);
  mc::Reachability analyzer(mgr, layout, system.next_state);
  const auto result = analyzer.analyze(system.initial);
  EXPECT_TRUE(result.fixpoint);
  // Every Gray code is reachable; the diameter is the full cycle.
  EXPECT_DOUBLE_EQ(
      mgr.sat_count(result.reachable),
      std::exp2(static_cast<double>(mgr.num_vars() - layout.state_bits)) *
          (1u << n));
  EXPECT_EQ(result.iterations, (1u << n) - 1);
}

TEST(SequentialGenerators, SymbolicLfsrAvoidsZeroWithoutSeed) {
  // Without seeding, an LFSR started at 1 never reaches the all-zero
  // state; "state == 0" is a safety property that must hold.
  const Circuit reg = circuit::lfsr(5, {4, 2});
  const mc::VarLayout layout = mc::CircuitSystem::layout_for(reg);
  core::BddManager mgr(layout.total_vars());
  const auto system = mc::CircuitSystem::build(mgr, reg);
  mc::Reachability analyzer(mgr, layout, system.next_state);
  // init = state 00001, seed input quantified over {0} only by restricting
  // the transition: emulate seed=0 by conjoining NOT seed into "bad" is
  // wrong; instead restrict each delta.
  std::vector<core::Bdd> deltas;
  for (const core::Bdd& d : system.next_state) {
    deltas.push_back(mgr.restrict_(d, layout.input(0), false));
  }
  mc::Reachability pinned(mgr, layout, deltas);
  std::vector<core::Bdd> literals;
  for (unsigned i = 0; i < layout.state_bits; ++i) {
    literals.push_back(i == 0 ? mgr.var(layout.current(i))
                              : mgr.nvar(layout.current(i)));
  }
  const core::Bdd init = core::and_all(mgr, literals);
  std::vector<core::Bdd> zeros;
  for (unsigned i = 0; i < layout.state_bits; ++i) {
    zeros.push_back(mgr.nvar(layout.current(i)));
  }
  const core::Bdd all_zero = core::and_all(mgr, zeros);
  const auto result = pinned.analyze(init, all_zero);
  EXPECT_TRUE(result.property_holds) << "unseeded LFSR must avoid zero";
  EXPECT_TRUE(result.fixpoint);
}

}  // namespace
}  // namespace pbdd
