// Replay a captured torture seed file (tests/seeds/*.seed) and exit 0 iff
// the run passes validation. Each seed file is wired into ctest as its own
// named test (seed_<name>), so the corpus doubles as a permanent regression
// suite: `ctest -R seed_` reruns every captured failure.
//
// Seed file format: one `key=value` per line; `#` starts a comment. Keys
// split into scheduler knobs (seed, mode, delay_permille, ...), engine
// config (workers, eval_threshold, ...), and workload shape (num_vars,
// steps, program_seed). Unknown keys are an error, so a corpus file cannot
// silently stop exercising what it was captured for.
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "core/bdd_manager.hpp"
#include "runtime/torture.hpp"
#include "service_driver.hpp"
#include "torture_driver.hpp"

namespace {

struct ReplaySpec {
  pbdd::rt::TortureConfig torture;
  pbdd::core::Config config;
  unsigned num_vars = 4;
  int steps = 40;
  std::uint64_t program_seed = 1;
  int snapshot_every = 0;  // >0: checkpoint/restore cycle every N steps
  int dag_permille = 0;    // fraction of batch steps made dep-carrying
  std::size_t ooc_budget = 0;  // >0: attach a LevelPager with this budget
  bool expect_deterministic = false;  // run twice, require identical logs

  // fault_campaign=1 switches to the stuck-at fault-campaign workload
  // (torture_driver.hpp run_fault_torture): a full campaign over a seeded
  // random circuit with collections / checkpoint writes forced between
  // waves, every verdict checked against the exhaustive oracle.
  bool fault_campaign = false;
  std::size_t fault_batch = 8;    // faults rebuilt concurrently per wave
  int fault_gc_every = 2;         // force mgr.gc() every N waves (0 = off)
  int fault_snapshot_every = 3;   // checkpoint write every N waves (0 = off)

  // service_sessions > 0 switches from the single-manager workload to the
  // multi-session BddService workload (service_driver.hpp): N client
  // threads against one service, canary-validated, store invariants and
  // the governor budget checked afterwards. Perturb mode only — client
  // racing is outside the serialize-mode determinism guarantee.
  unsigned service_sessions = 0;
  unsigned service_requests = 10;
  unsigned service_ops = 5;
  unsigned service_deadline_every = 0;
  unsigned service_cancel_every = 0;
  unsigned service_release_every = 4;
  std::size_t service_queue_capacity = 8;
  std::size_t service_budget = 4096;
};

bool apply_key(ReplaySpec& spec, const std::string& key,
               const std::string& value, std::string& error) try {
  const auto u64 = [&] { return std::stoull(value); };
  const auto u32 = [&] { return static_cast<std::uint32_t>(std::stoul(value)); };

  if (key == "seed") spec.torture.seed = u64();
  else if (key == "mode") {
    if (value == "perturb") {
      spec.torture.mode = pbdd::rt::TortureMode::kPerturb;
    } else if (value == "serialize") {
      spec.torture.mode = pbdd::rt::TortureMode::kSerialize;
    } else {
      error = "mode must be 'perturb' or 'serialize', got '" + value + "'";
      return false;
    }
  }
  else if (key == "delay_permille") spec.torture.delay_permille = u32();
  else if (key == "yield_permille") spec.torture.yield_permille = u32();
  else if (key == "max_delay_spins") spec.torture.max_delay_spins = u32();
  else if (key == "force_gc_permille") spec.torture.force_gc_permille = u32();
  else if (key == "force_spill_permille") {
    spec.torture.force_spill_permille = u32();
  }
  else if (key == "force_table_grow_permille") {
    spec.torture.force_table_grow_permille = u32();
  }
  else if (key == "force_dir_churn_permille") {
    spec.torture.force_dir_churn_permille = u32();
  }
  else if (key == "stall_timeout_ms") spec.torture.stall_timeout_ms = u32();
  else if (key == "workers") spec.config.workers = u32();
  else if (key == "sequential") spec.config.sequential_mode = u64() != 0;
  else if (key == "eval_threshold") spec.config.eval_threshold = u64();
  else if (key == "group_size") spec.config.group_size = u32();
  else if (key == "share_poll_interval") {
    spec.config.share_poll_interval = u32();
  }
  else if (key == "table_shards") spec.config.table_shards = u32();
  else if (key == "table_discipline") {
    // Seed files are regression captures: the discipline they were captured
    // with is part of the bug, so it is pinned here and deliberately NOT
    // overridable via PBDD_TABLE_DISCIPLINE.
    if (value == "passlock") {
      spec.config.table_discipline = pbdd::core::TableDiscipline::kPassLock;
    } else if (value == "sharded") {
      spec.config.table_discipline = pbdd::core::TableDiscipline::kSharded;
    } else if (value == "lockfree") {
      spec.config.table_discipline = pbdd::core::TableDiscipline::kLockFree;
    } else {
      error = "table_discipline must be 'passlock', 'sharded' or "
              "'lockfree', got '" + value + "'";
      return false;
    }
  }
  else if (key == "gc_min_nodes") {
    spec.config.gc_min_nodes = static_cast<std::size_t>(u64());
  }
  else if (key == "gc_growth_factor") {
    spec.config.gc_growth_factor = std::stod(value);
  }
  else if (key == "auto_gc") spec.config.auto_gc = u64() != 0;
  else if (key == "num_vars") spec.num_vars = u32();
  else if (key == "steps") spec.steps = static_cast<int>(u64());
  else if (key == "program_seed") spec.program_seed = u64();
  else if (key == "snapshot_every") spec.snapshot_every = static_cast<int>(u64());
  else if (key == "dag_permille") spec.dag_permille = static_cast<int>(u64());
  else if (key == "ooc_budget") {
    spec.ooc_budget = static_cast<std::size_t>(u64());
  }
  else if (key == "expect_deterministic") {
    spec.expect_deterministic = u64() != 0;
  }
  else if (key == "fault_campaign") spec.fault_campaign = u64() != 0;
  else if (key == "fault_batch") {
    spec.fault_batch = static_cast<std::size_t>(u64());
  }
  else if (key == "fault_gc_every") {
    spec.fault_gc_every = static_cast<int>(u64());
  }
  else if (key == "fault_snapshot_every") {
    spec.fault_snapshot_every = static_cast<int>(u64());
  }
  else if (key == "service_sessions") spec.service_sessions = u32();
  else if (key == "service_requests") spec.service_requests = u32();
  else if (key == "service_ops") spec.service_ops = u32();
  else if (key == "service_deadline_every") spec.service_deadline_every = u32();
  else if (key == "service_cancel_every") spec.service_cancel_every = u32();
  else if (key == "service_release_every") spec.service_release_every = u32();
  else if (key == "service_queue_capacity") {
    spec.service_queue_capacity = static_cast<std::size_t>(u64());
  }
  else if (key == "service_budget") {
    spec.service_budget = static_cast<std::size_t>(u64());
  }
  else {
    error = "unknown key '" + key + "'";
    return false;
  }
  return true;
} catch (const std::exception&) {  // stoull/stoul/stod on a malformed value
  error = "bad numeric value '" + value + "' for key '" + key + "'";
  return false;
}

bool parse_seed_file(const char* path, ReplaySpec& spec, std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = std::string("cannot open ") + path;
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    // Trim whitespace.
    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t\r");
    line = line.substr(begin, end - begin + 1);

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      error = "line " + std::to_string(lineno) + ": expected key=value";
      return false;
    }
    const auto trim = [](std::string s) {
      const auto b = s.find_first_not_of(" \t");
      if (b == std::string::npos) return std::string();
      return s.substr(b, s.find_last_not_of(" \t") - b + 1);
    };
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    std::string key_error;
    if (!apply_key(spec, key, value, key_error)) {
      error = "line " + std::to_string(lineno) + ": " + key_error;
      return false;
    }
  }
  if (spec.service_sessions == 0 &&
      (spec.num_vars < 1 || spec.num_vars > 6)) {
    error = "num_vars must be in [1, 6] (truth-table oracle limit)";
    return false;
  }
  if (spec.service_sessions > 0 &&
      spec.torture.mode == pbdd::rt::TortureMode::kSerialize) {
    error = "service workloads are perturb-mode only (client racing is "
            "outside the serialize determinism guarantee)";
    return false;
  }
  if (spec.fault_campaign && spec.service_sessions > 0) {
    error = "fault_campaign and service_sessions are mutually exclusive";
    return false;
  }
  if (spec.fault_campaign && spec.fault_batch == 0) {
    error = "fault_batch must be >= 1";
    return false;
  }
  if (spec.ooc_budget > 0 &&
      (spec.fault_campaign || spec.service_sessions > 0)) {
    error = "ooc_budget applies to the single-manager workload only (the "
            "service attaches its own pager via spill_dir)";
    return false;
  }
  return true;
}

/// Fault-campaign replay: a stuck-at campaign with GC/checkpoint writes
/// forced between waves, every verdict oracle-checked
/// (torture_driver.hpp run_fault_torture).
int run_fault(const ReplaySpec& spec, const char* path) {
  pbdd::test::FaultTortureResult result;
  {
    pbdd::test::TortureGuard guard(spec.torture);
    result = pbdd::test::run_fault_torture(
        spec.config, spec.program_seed, spec.fault_batch, spec.fault_gc_every,
        spec.fault_snapshot_every);
  }
  if (!result.error.empty()) {
    std::fprintf(stderr, "FAIL %s\n%s\n", path, result.error.c_str());
    return 1;
  }
  std::printf(
      "PASS %s (fault campaign: %llu faults over %llu waves, %llu gc + %llu "
      "checkpoint interleaves)\n",
      path, static_cast<unsigned long long>(result.faults),
      static_cast<unsigned long long>(result.waves),
      static_cast<unsigned long long>(result.gc_interleaves),
      static_cast<unsigned long long>(result.snapshot_interleaves));
  return 0;
}

/// Service-mode replay: the seed file drives the multi-session workload
/// instead of the single-manager one. Exit-0 condition is the same shape:
/// empty error from the driver (canaries, invariants, governor budget).
int run_service(const ReplaySpec& spec, const char* path) {
  pbdd::service::ServiceConfig cfg;
  cfg.num_vars = spec.num_vars;
  cfg.engine = spec.config;
  cfg.queue_capacity = spec.service_queue_capacity;
  cfg.live_node_budget = spec.service_budget;

  pbdd::test::ServiceWorkload wl;
  wl.sessions = spec.service_sessions;
  wl.requests_per_session = spec.service_requests;
  wl.ops_per_request = spec.service_ops;
  wl.program_seed = spec.program_seed;
  wl.deadline_every = spec.service_deadline_every;
  wl.cancel_every = spec.service_cancel_every;
  wl.release_every = spec.service_release_every;

  pbdd::test::ServiceRunResult result;
  {
    pbdd::test::TortureGuard guard(spec.torture);
    pbdd::service::BddService svc(cfg);
    result = pbdd::test::run_service_workload(svc, wl);
  }
  if (!result.error.empty()) {
    std::fprintf(stderr, "FAIL %s\n%s\n", path, result.error.c_str());
    return 1;
  }
  std::printf(
      "PASS %s (service: %llu ok, %llu non-ok, %llu governor gcs, "
      "max live %zu <= budget %zu)\n",
      path, static_cast<unsigned long long>(result.ok),
      static_cast<unsigned long long>(result.non_ok),
      static_cast<unsigned long long>(result.metrics.governor_gcs),
      result.metrics.max_live_nodes_observed,
      result.metrics.live_node_budget);
  return 0;
}

pbdd::test::TortureRunResult run(const ReplaySpec& spec) {
  pbdd::test::TortureGuard guard(spec.torture);
  return pbdd::test::run_torture_workload(spec.config, spec.num_vars,
                                          spec.steps, spec.program_seed,
                                          spec.snapshot_every,
                                          spec.dag_permille, spec.ooc_budget);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: torture_replay <file.seed>\n");
    return 2;
  }
  ReplaySpec spec;
  std::string error;
  if (!parse_seed_file(argv[1], spec, error)) {
    std::fprintf(stderr, "torture_replay: %s: %s\n", argv[1], error.c_str());
    return 2;
  }

  if (spec.fault_campaign) return run_fault(spec, argv[1]);
  if (spec.service_sessions > 0) return run_service(spec, argv[1]);

  const auto first = run(spec);
  if (!first.error.empty()) {
    std::fprintf(stderr, "FAIL %s\n%s\n--- event log ---\n%s", argv[1],
                 first.error.c_str(), first.event_log.c_str());
    return 1;
  }
  if (first.stall_breaks != 0) {
    std::fprintf(stderr,
                 "FAIL %s: %llu scheduler stall break(s); run is not "
                 "replay-deterministic\n",
                 argv[1], static_cast<unsigned long long>(first.stall_breaks));
    return 1;
  }

  if (spec.expect_deterministic) {
    const auto second = run(spec);
    if (!second.error.empty()) {
      std::fprintf(stderr, "FAIL %s (second run)\n%s\n", argv[1],
                   second.error.c_str());
      return 1;
    }
    if (first.event_log != second.event_log ||
        first.node_counts != second.node_counts) {
      std::fprintf(stderr,
                   "FAIL %s: two runs of the same (seed, config) diverged "
                   "(%llu vs %llu events)\n",
                   argv[1], static_cast<unsigned long long>(first.events),
                   static_cast<unsigned long long>(second.events));
      return 1;
    }
  }

  if (spec.ooc_budget > 0) {
    std::printf(
        "PASS %s (%llu events, %llu stolen groups, %llu collections, "
        "%llu demotions / %llu faults)\n",
        argv[1], static_cast<unsigned long long>(first.events),
        static_cast<unsigned long long>(first.groups_stolen),
        static_cast<unsigned long long>(first.gc_runs),
        static_cast<unsigned long long>(first.ooc_demotions),
        static_cast<unsigned long long>(first.ooc_faults));
    return 0;
  }
  std::printf("PASS %s (%llu events, %llu stolen groups, %llu collections)\n",
              argv[1], static_cast<unsigned long long>(first.events),
              static_cast<unsigned long long>(first.groups_stolen),
              static_cast<unsigned long long>(first.gc_runs));
  return 0;
}
