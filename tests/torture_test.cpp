// Torture suite: seeded schedule perturbation / serialization sweeps over
// worker counts and pathological thresholds, validated exhaustively against
// truth tables and the store invariants; plus unit tests for the scheduler
// itself and the targeted GC-during-steal regression.
//
// The suite is meaningful in two build modes. With PBDD_TORTURE=ON the
// engine's injection points drive the scheduler and the sweeps explore real
// interleavings; with the default OFF build the points are no-ops and the
// sweeps degrade to plain workload/oracle checks (the scheduler unit tests
// drive the hooks directly and are unaffected).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/bdd_manager.hpp"
#include "runtime/torture.hpp"
#include "service_driver.hpp"
#include "torture_driver.hpp"

namespace pbdd {
namespace {

using core::Config;
using core::TableDiscipline;
using rt::InjectPoint;
using rt::TortureConfig;
using rt::TortureMode;
using rt::TortureScheduler;
using test::run_torture_workload;
using test::TortureGuard;

// ---------------------------------------------------------------------------
// Scheduler unit tests (drive the hooks directly; independent of the build's
// injection points)
// ---------------------------------------------------------------------------

TEST(TortureSchedulerUnit, PointTableIsComplete) {
  for (unsigned p = 0; p < static_cast<unsigned>(InjectPoint::kCount); ++p) {
    const char* name = rt::point_name(static_cast<InjectPoint>(p));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
  // The lock discipline: points that fire inside unique-table critical
  // sections must never park a thread.
  EXPECT_FALSE(rt::point_yieldable(InjectPoint::kTableInsert));
  EXPECT_FALSE(rt::point_yieldable(InjectPoint::kTableGrow));
  EXPECT_FALSE(rt::point_yieldable(InjectPoint::kArenaBlockAlloc));
  EXPECT_FALSE(rt::point_yieldable(InjectPoint::kArenaDirGrow));
  EXPECT_FALSE(rt::point_yieldable(InjectPoint::kReducePublish));
  // The steal/GC communication points are exactly the ones worth parking at.
  EXPECT_TRUE(rt::point_yieldable(InjectPoint::kStealWriteback));
  EXPECT_TRUE(rt::point_yieldable(InjectPoint::kResolveStall));
  EXPECT_TRUE(rt::point_yieldable(InjectPoint::kGcBarrierWait));
  // The lock-free CAS-retry point holds no mutex and MUST be yieldable: in
  // serialize mode a spinner waiting out a moved bucket has to hand the
  // token to the grower, or the growth never completes.
  EXPECT_TRUE(rt::point_yieldable(InjectPoint::kTableCasRetry));
}

TEST(TortureSchedulerUnit, DisabledSchedulerIsInert) {
  auto& sched = TortureScheduler::instance();
  ASSERT_FALSE(sched.enabled());
  sched.hit(InjectPoint::kStealAttempt);  // must be a no-op, not a hang
  EXPECT_FALSE(sched.query(InjectPoint::kForceGc));
}

TEST(TortureSchedulerUnit, QueryStreamIsSeedDeterministic) {
  auto draw = [](std::uint64_t seed) {
    TortureConfig tc;
    tc.seed = seed;
    tc.force_gc_permille = 500;
    TortureGuard guard(tc);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(
          TortureScheduler::instance().query(InjectPoint::kForceGc));
    }
    return fired;
  };
  const auto a = draw(99);
  EXPECT_EQ(a, draw(99));
  EXPECT_NE(a, draw(100));
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST(TortureSchedulerUnit, ZeroRateQueryNeverFires) {
  TortureConfig tc;
  tc.force_gc_permille = 0;
  TortureGuard guard(tc);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(TortureScheduler::instance().query(InjectPoint::kForceGc));
  }
}

TEST(TortureSchedulerUnit, LogCapCountsDroppedEvents) {
  TortureConfig tc;
  tc.mode = TortureMode::kSerialize;
  tc.max_log_events = 8;
  TortureGuard guard(tc);
  auto& sched = TortureScheduler::instance();
  sched.expect_threads(1);
  sched.thread_begin(0);
  for (int i = 0; i < 100; ++i) sched.hit(InjectPoint::kStealAttempt);
  sched.thread_end();
  EXPECT_EQ(sched.event_count(), 8u);
  EXPECT_GT(sched.dropped_events(), 0u);
}

TEST(TortureSchedulerUnit, SerializeHandoffIsDeterministic) {
  auto once = [] {
    TortureConfig tc;
    tc.seed = 7;
    tc.mode = TortureMode::kSerialize;
    TortureGuard guard(tc);
    auto& sched = TortureScheduler::instance();
    sched.expect_threads(2);
    auto body = [&sched](unsigned id) {
      sched.thread_begin(id);
      for (int i = 0; i < 25; ++i) {
        sched.hit(id == 0 ? InjectPoint::kStealAttempt
                          : InjectPoint::kGroupTake);
      }
      sched.thread_end();
    };
    std::thread helper(body, 1);
    body(0);
    helper.join();
    EXPECT_EQ(sched.stall_breaks(), 0u);
    return sched.dump_log();
  };
  const std::string first = once();
  EXPECT_EQ(first, once());
  // Both threads' events interleave in one global order.
  EXPECT_NE(first.find("w0 steal_attempt"), std::string::npos);
  EXPECT_NE(first.find("w1 group_take"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Seeded workload sweep: seeds × worker counts × tiny eval-thresholds,
// exhaustively validated (torture_driver.hpp)
// ---------------------------------------------------------------------------

/// Table discipline for a sweep entry: rotates through all three by seed so
/// every CI leg tortures every discipline, unless PBDD_TABLE_DISCIPLINE
/// ("passlock" | "sharded" | "lockfree") pins the whole sweep — the TSan
/// matrix uses that to give the lock-free protocol a dedicated leg.
TableDiscipline sweep_discipline(std::uint64_t seed) {
  const char* env = std::getenv("PBDD_TABLE_DISCIPLINE");
  if (env != nullptr && *env != '\0') {
    const std::string s = env;
    if (s == "passlock") return TableDiscipline::kPassLock;
    if (s == "sharded") return TableDiscipline::kSharded;
    if (s == "lockfree") return TableDiscipline::kLockFree;
    ADD_FAILURE() << "unknown PBDD_TABLE_DISCIPLINE: " << s;
  }
  switch (seed % 3) {
    case 0: return TableDiscipline::kPassLock;
    case 1: return TableDiscipline::kSharded;
    default: return TableDiscipline::kLockFree;
  }
}

class TortureSweep
    : public ::testing::TestWithParam<
          std::tuple<unsigned, unsigned, std::uint64_t, TortureMode>> {};

TEST_P(TortureSweep, WorkloadMatchesTruthTables) {
  const auto [workers, threshold, seed, mode] = GetParam();

  TortureConfig tc;
  tc.seed = seed;
  tc.mode = mode;
  tc.delay_permille = 200;
  tc.yield_permille = 200;
  tc.force_gc_permille = 25;
  tc.force_spill_permille = 50;
  tc.force_table_grow_permille = 25;
  tc.force_dir_churn_permille = 25;
  TortureGuard guard(tc);

  Config config;
  config.workers = workers;
  config.eval_threshold = threshold;
  config.group_size = 2;
  config.share_poll_interval = 4;
  const TableDiscipline discipline = sweep_discipline(seed);
  config.table_discipline = discipline;
  config.table_shards = discipline == TableDiscipline::kSharded ? 4 : 1;

  const auto result =
      run_torture_workload(config, 4, 40, seed * 977 + workers);
  EXPECT_EQ(result.error, "");
  EXPECT_EQ(result.stall_breaks, 0u);
  if (rt::torture_compiled()) {
    EXPECT_GT(result.events, 0u);
    EXPECT_GT(result.gc_runs, 0u);  // force_gc_permille > 0 must bite
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TortureSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1u, 12u),
                       // Three seeds so the seed-rotated table discipline
                       // (sweep_discipline) covers all three per sweep.
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3}),
                       ::testing::Values(TortureMode::kPerturb,
                                         TortureMode::kSerialize)),
    [](const ::testing::TestParamInfo<
        std::tuple<unsigned, unsigned, std::uint64_t, TortureMode>>& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) == TortureMode::kPerturb ? "_perturb"
                                                               : "_serialize");
    });

// ---------------------------------------------------------------------------
// Snapshot sweep: checkpoint/restore churn (export-save every few steps,
// restore into a fresh manager, continue there — torture_driver.hpp) with
// collections forced aggressively, so the kSnapshotWrite/kSnapshotRestore
// points interleave against the steal/GC machinery on every discipline.
// ---------------------------------------------------------------------------

class SnapshotTortureSweep
    : public ::testing::TestWithParam<
          std::tuple<unsigned, std::uint64_t, TortureMode>> {};

TEST_P(SnapshotTortureSweep, CheckpointRestoreCycleSurvivesForcedGc) {
  const auto [workers, seed, mode] = GetParam();

  TortureConfig tc;
  tc.seed = seed;
  tc.mode = mode;
  tc.delay_permille = 200;
  tc.yield_permille = 200;
  tc.force_gc_permille = 200;  // collections race every checkpoint cycle
  tc.force_spill_permille = 50;
  tc.force_table_grow_permille = 25;
  TortureGuard guard(tc);

  Config config;
  config.workers = workers;
  config.eval_threshold = 4;
  config.group_size = 2;
  config.share_poll_interval = 4;
  const TableDiscipline discipline = sweep_discipline(seed);
  config.table_discipline = discipline;
  config.table_shards = discipline == TableDiscipline::kSharded ? 4 : 1;

  const auto result =
      run_torture_workload(config, 4, 40, seed * 977 + workers,
                           /*snapshot_every=*/7);
  EXPECT_EQ(result.error, "");
  EXPECT_EQ(result.stall_breaks, 0u);
  EXPECT_GE(result.snapshot_cycles, 5u);
  if (rt::torture_compiled()) {
    EXPECT_GT(result.events, 0u);
    EXPECT_GT(result.gc_runs, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SnapshotTortureSweep,
    ::testing::Combine(::testing::Values(2u, 4u),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3}),
                       ::testing::Values(TortureMode::kPerturb,
                                         TortureMode::kSerialize)),
    [](const ::testing::TestParamInfo<
        std::tuple<unsigned, std::uint64_t, TortureMode>>& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) == TortureMode::kPerturb ? "_perturb"
                                                               : "_serialize");
    });

// ---------------------------------------------------------------------------
// Out-of-core paging sweep: a LevelPager with a 1-node resident budget
// (torture_driver.hpp ooc_budget) spills every level at every batch barrier
// and faults them back on the next touch, while checkpoint/restore swaps and
// forced collections (which fault everything in and then invalidate every
// segment) run on top — so the kOocSpill/kOocFault points race the steal,
// GC and snapshot machinery on every discipline, and a level that comes back
// from disk wrong fails the exhaustive truth-table validation.
// ---------------------------------------------------------------------------

class OocTortureSweep
    : public ::testing::TestWithParam<
          std::tuple<unsigned, std::uint64_t, TortureMode>> {};

TEST_P(OocTortureSweep, PagingSurvivesGcAndCheckpointRaces) {
  const auto [workers, seed, mode] = GetParam();

  TortureConfig tc;
  tc.seed = seed;
  tc.mode = mode;
  tc.delay_permille = 200;
  tc.yield_permille = 200;
  tc.force_gc_permille = 150;  // collections invalidate every spill segment
  tc.force_spill_permille = 50;
  tc.force_table_grow_permille = 25;
  TortureGuard guard(tc);

  Config config;
  config.workers = workers;
  config.eval_threshold = 4;
  config.group_size = 2;
  config.share_poll_interval = 4;
  const TableDiscipline discipline = sweep_discipline(seed);
  config.table_discipline = discipline;
  config.table_shards = discipline == TableDiscipline::kSharded ? 4 : 1;

  const auto result =
      run_torture_workload(config, 4, 40, seed * 977 + workers,
                           /*snapshot_every=*/7, /*dag_permille=*/0,
                           /*ooc_budget=*/1);
  EXPECT_EQ(result.error, "");
  EXPECT_EQ(result.stall_breaks, 0u);
  EXPECT_GE(result.snapshot_cycles, 5u);
  // Budget 1 with nonempty levels means demotion fires at every barrier and
  // the workload's next touch faults — independent of the torture build.
  EXPECT_GT(result.ooc_demotions, 0u);
  EXPECT_GT(result.ooc_faults, 0u);
  if (rt::torture_compiled()) {
    EXPECT_GT(result.events, 0u);
    EXPECT_GT(result.gc_runs, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OocTortureSweep,
    ::testing::Combine(::testing::Values(2u, 4u),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3}),
                       ::testing::Values(TortureMode::kPerturb,
                                         TortureMode::kSerialize)),
    [](const ::testing::TestParamInfo<
        std::tuple<unsigned, std::uint64_t, TortureMode>>& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) == TortureMode::kPerturb ? "_perturb"
                                                               : "_serialize");
    });

// ---------------------------------------------------------------------------
// Multi-session service sweep: client threads × seeds, perturb mode only.
// The service dispatcher and client threads are unregistered with the
// scheduler (they never run pool jobs) so they get seeded delays/yields at
// the kServiceAdmit/kServiceCancel points while the engine's own workers
// are tortured as usual. Serialize mode is excluded by design: client
// racing is inherently timing-dependent, so its determinism guarantee
// covers pool workers only.
// ---------------------------------------------------------------------------

class ServiceTortureSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t>> {};

TEST_P(ServiceTortureSweep, MultiSessionWorkloadSurvivesPerturbation) {
  const auto [workers, seed] = GetParam();

  TortureConfig tc;
  tc.seed = seed;
  tc.mode = TortureMode::kPerturb;
  tc.delay_permille = 200;
  tc.yield_permille = 200;
  tc.force_gc_permille = 25;
  tc.force_spill_permille = 50;
  TortureGuard guard(tc);

  service::ServiceConfig cfg;
  cfg.num_vars = 8;
  cfg.engine.workers = workers;
  cfg.engine.eval_threshold = 4;
  cfg.engine.group_size = 2;
  cfg.engine.share_poll_interval = 4;
  cfg.engine.table_discipline = sweep_discipline(seed);
  cfg.engine.table_shards =
      cfg.engine.table_discipline == TableDiscipline::kSharded ? 4 : 1;
  cfg.queue_capacity = 8;
  cfg.live_node_budget = 4096;
  service::BddService svc(cfg);

  test::ServiceWorkload wl;
  wl.sessions = 6;
  wl.requests_per_session = 10;
  wl.ops_per_request = 5;
  wl.program_seed = seed * 7919 + workers;
  wl.deadline_every = 4;
  wl.cancel_every = 6;
  wl.release_every = 3;
  const test::ServiceRunResult result = test::run_service_workload(svc, wl);
  EXPECT_EQ(result.error, "");
  EXPECT_GT(result.ok, 0u);
  EXPECT_LE(result.metrics.max_live_nodes_observed, cfg.live_node_budget);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ServiceTortureSweep,
    ::testing::Combine(::testing::Values(2u, 4u),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})),
    [](const ::testing::TestParamInfo<std::tuple<unsigned, std::uint64_t>>&
           info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Fault-campaign sweep: a full stuck-at campaign (src/fault/) whose wave
// boundaries force collections and checkpoint writes against the shared
// golden BDDs (torture_driver.hpp's run_fault_torture), across worker
// counts and all three disciplines, under both schedule modes. Every
// verdict is cross-checked against the exhaustive simulation oracle, so a
// GC that frees a live golden or a wave that reads a stale cone value is a
// test failure, not a silent wrong verdict.
// ---------------------------------------------------------------------------

class FaultTortureSweep
    : public ::testing::TestWithParam<
          std::tuple<unsigned, std::uint64_t, TortureMode>> {};

TEST_P(FaultTortureSweep, CampaignSurvivesGcAndCheckpointRaces) {
  const auto [workers, seed, mode] = GetParam();

  TortureConfig tc;
  tc.seed = seed;
  tc.mode = mode;
  tc.delay_permille = 200;
  tc.yield_permille = 200;
  tc.force_gc_permille = 100;  // collections also fire inside batches
  tc.force_spill_permille = 50;
  tc.force_table_grow_permille = 25;
  TortureGuard guard(tc);

  Config config;
  config.workers = workers;
  config.eval_threshold = 4;
  config.group_size = 2;
  config.share_poll_interval = 4;
  const TableDiscipline discipline = sweep_discipline(seed);
  config.table_discipline = discipline;
  config.table_shards = discipline == TableDiscipline::kSharded ? 4 : 1;

  const auto result = test::run_fault_torture(
      config, seed * 131 + workers, /*batch_faults=*/6,
      /*gc_every=*/2, /*snapshot_every=*/3);
  EXPECT_EQ(result.error, "");
  EXPECT_GT(result.waves, 1u);
  EXPECT_GT(result.faults, 0u);
  EXPECT_GT(result.gc_interleaves, 0u);
  EXPECT_GT(result.snapshot_interleaves, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FaultTortureSweep,
    ::testing::Combine(::testing::Values(2u, 4u),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3}),
                       ::testing::Values(TortureMode::kPerturb,
                                         TortureMode::kSerialize)),
    [](const ::testing::TestParamInfo<
        std::tuple<unsigned, std::uint64_t, TortureMode>>& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) == TortureMode::kPerturb ? "_perturb"
                                                               : "_serialize");
    });

// ---------------------------------------------------------------------------
// Replay determinism: the acceptance criterion. The same (seed, config) pair
// must produce byte-identical event logs across consecutive runs — and the
// same results.
// ---------------------------------------------------------------------------

TEST(TortureDeterminism, SerializedRunReplaysByteIdentically) {
  auto once = [] {
    TortureConfig tc;
    tc.seed = 42;
    tc.mode = TortureMode::kSerialize;
    tc.force_gc_permille = 100;
    tc.force_spill_permille = 100;
    tc.force_table_grow_permille = 50;
    tc.force_dir_churn_permille = 50;
    TortureGuard guard(tc);
    Config config;
    config.workers = 4;
    config.eval_threshold = 2;
    config.group_size = 2;
    config.share_poll_interval = 4;
    return run_torture_workload(config, 4, 32, 7);
  };
  const auto a = once();
  const auto b = once();
  ASSERT_EQ(a.error, "");
  ASSERT_EQ(b.error, "");
  EXPECT_EQ(a.stall_breaks, 0u);
  EXPECT_EQ(b.stall_breaks, 0u);
  EXPECT_EQ(a.event_log, b.event_log);
  EXPECT_EQ(a.node_counts, b.node_counts);
  if (rt::torture_compiled()) {
    EXPECT_GT(a.events, 0u);
    EXPECT_GT(a.gc_runs, 0u);
  }
}

// The snapshot file format has no timestamps and restore preserves chain
// order, so a serialized run that swaps managers through disk snapshots must
// still replay byte-identically.
TEST(TortureDeterminism, SnapshotCycleReplaysByteIdentically) {
  auto once = [] {
    TortureConfig tc;
    tc.seed = 17;
    tc.mode = TortureMode::kSerialize;
    tc.force_gc_permille = 150;
    tc.force_spill_permille = 100;
    TortureGuard guard(tc);
    Config config;
    config.workers = 4;
    config.eval_threshold = 2;
    config.group_size = 2;
    config.share_poll_interval = 4;
    return run_torture_workload(config, 4, 32, 13, /*snapshot_every=*/6);
  };
  const auto a = once();
  const auto b = once();
  ASSERT_EQ(a.error, "");
  ASSERT_EQ(b.error, "");
  EXPECT_EQ(a.stall_breaks, 0u);
  EXPECT_GE(a.snapshot_cycles, 4u);
  EXPECT_EQ(a.event_log, b.event_log);
  EXPECT_EQ(a.node_counts, b.node_counts);
}

TEST(TortureDeterminism, SingleWorkerPerturbReplaysByteIdentically) {
  auto once = [] {
    TortureConfig tc;
    tc.seed = 5;
    tc.mode = TortureMode::kPerturb;
    tc.delay_permille = 300;
    tc.yield_permille = 300;
    tc.force_gc_permille = 100;
    TortureGuard guard(tc);
    Config config;
    config.workers = 1;
    config.eval_threshold = 3;
    config.group_size = 2;
    return run_torture_workload(config, 4, 32, 11);
  };
  const auto a = once();
  const auto b = once();
  ASSERT_EQ(a.error, "");
  EXPECT_EQ(a.event_log, b.event_log);
  EXPECT_EQ(a.node_counts, b.node_counts);
}

// ---------------------------------------------------------------------------
// Targeted regression: stolen-result writeback vs. forced mark-compact
// relocation. Collections are driven at every safe point while tiny
// thresholds and forced spills keep every batch full of stolen groups, so
// each batch's writebacks are followed by a compaction that relocates the
// destination arenas before the results are used again. The exhaustive
// validation in the driver fails if a writeback ever lands through a stale
// arena directory or a relocated slot.
// ---------------------------------------------------------------------------

TEST(TortureRegression, StolenWritebackThenForcedCompaction) {
  TortureConfig tc;
  tc.seed = 1234;
  tc.mode = TortureMode::kSerialize;
  tc.force_gc_permille = 1000;  // collect at every safe point
  tc.force_spill_permille = 1000;
  tc.force_dir_churn_permille = 200;
  TortureGuard guard(tc);

  Config config;
  config.workers = 4;
  config.eval_threshold = 1;  // spill after every expansion round
  config.group_size = 1;      // one operation per stealable group
  config.share_poll_interval = 1;

  const auto result = run_torture_workload(config, 5, 40, 99);
  EXPECT_EQ(result.error, "");
  EXPECT_EQ(result.stall_breaks, 0u);
  if (rt::torture_compiled()) {
    EXPECT_GE(result.gc_runs, 10u);
    EXPECT_GT(result.groups_stolen, 0u);
  }
}

}  // namespace
}  // namespace pbdd
