// Multiplier BDD explosion — the phenomenon that motivates the paper's
// parallelization (Section 1: integer-multiplication BDDs are exponential
// in the operand width [Bryant 91], so real verification runs are dominated
// by a few huge graph constructions).
//
// This example sweeps C6288-style array multipliers across widths, building
// all 2n product-bit BDDs in parallel, and reports node counts, Shannon
// operations, memory, and GC activity — watch every column grow by ~2.5x
// per extra operand bit.
//
// Usage: ./build/examples/multiplier_explosion [max_width] [threads]
#include <cstdio>
#include <cstdlib>

#include "circuit/builder.hpp"
#include "circuit/generators.hpp"
#include "circuit/ordering.hpp"
#include "core/bdd_manager.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pbdd;
  const unsigned max_width =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  const unsigned threads = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;

  std::printf("%5s %12s %14s %12s %10s %8s %4s\n", "width", "sum nodes",
              "largest output", "ops", "peak MB", "seconds", "GCs");
  for (unsigned n = 4; n <= max_width; ++n) {
    const auto circuit = circuit::multiplier(n);
    const auto bin = circuit.binarized();
    const auto order = circuit::order_dfs(bin);

    core::Config config;
    config.workers = threads;
    config.gc_min_nodes = 1u << 18;
    core::BddManager mgr(2 * n, config);

    util::WallTimer timer;
    const auto outputs = circuit::build_parallel(mgr, bin, order);
    const double elapsed = timer.elapsed_s();

    std::size_t total = 0, largest = 0;
    for (const core::Bdd& out : outputs) {
      const std::size_t count = mgr.node_count(out);
      total += count;
      largest = std::max(largest, count);
    }
    std::printf("%5u %12zu %14zu %12llu %10.1f %8.2f %4llu\n", n, total,
                largest,
                static_cast<unsigned long long>(
                    mgr.stats().total.ops_performed),
                static_cast<double>(mgr.peak_bytes()) / 1048576.0, elapsed,
                static_cast<unsigned long long>(mgr.gc_runs()));
  }
  std::printf(
      "\nMiddle product bits dominate: their BDDs are provably exponential\n"
      "in the operand width for every variable order [Bryant 1991], which\n"
      "is why the paper benchmarks on mult-13/mult-14 and why node counts\n"
      "concentrate on a few variables (see bench/fig15_node_distribution).\n");
  return 0;
}
