// Quickstart: the 60-second tour of the pbdd public API.
//
//   * create a manager with a fixed variable count (and optionally threads)
//   * build formulas from variables with apply / operators
//   * test equivalence, tautology, satisfiability — all O(1) via canonicity
//   * count and extract satisfying assignments
//   * inspect node counts and trigger garbage collection
//
// Build and run:  ./build/examples/quickstart
#include <cstdio>

#include "core/bdd_manager.hpp"

int main() {
  using namespace pbdd;
  using core::Bdd;

  // A manager over 4 Boolean variables; default configuration is one
  // worker. Pass core::Config{.workers = 8} to parallelize construction.
  core::BddManager mgr(4);

  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  const Bdd c = mgr.var(2);

  // The paper's Figure 1 function: f = (b AND c) OR (a AND NOT b AND NOT c).
  const Bdd f = (b & c) | (a & mgr.apply(Op::Nor, b, c));
  std::printf("f has %zu BDD nodes\n", mgr.node_count(f));

  // Canonicity: logically equal formulas are the same node, so equivalence
  // checking is a pointer comparison. Rewrite f by Shannon expansion on a:
  const Bdd f_a1 = mgr.restrict_(f, 0, true);
  const Bdd f_a0 = mgr.restrict_(f, 0, false);
  const Bdd rebuilt = mgr.ite(a, f_a1, f_a0);
  std::printf("f == ITE(a, f|a=1, f|a=0)? %s\n",
              f == rebuilt ? "yes" : "NO (bug!)");

  // Tautology and satisfiability are constant-time checks on the handle.
  const Bdd taut = f | !f;
  std::printf("f OR NOT f is %s\n", taut.is_one() ? "a tautology" : "???");

  // Model counting and extraction.
  std::printf("f has %.0f satisfying assignments over %u variables\n",
              mgr.sat_count(f), mgr.num_vars());
  if (const auto model = mgr.sat_one(f)) {
    std::printf("one model: ");
    for (unsigned v = 0; v < mgr.num_vars(); ++v) {
      std::printf("x%u=%c ", v,
                  (*model)[v] < 0 ? '*' : static_cast<char>('0' + (*model)[v]));
    }
    std::printf("(* = don't care)\n");
  }

  // Quantification: does some value of b make f true, for every a, c?
  const Bdd exists_b = mgr.exists(f, {1});
  std::printf("exists b. f depends on %zu variables\n",
              mgr.support(exists_b).size());

  // Handles are RAII references; dropping them makes nodes collectible.
  std::printf("live nodes before GC: %zu\n", mgr.live_nodes());
  mgr.gc();
  std::printf("live nodes after GC:  %zu\n", mgr.live_nodes());
  return 0;
}
