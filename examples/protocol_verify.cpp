// Protocol verification by symbolic reachability — the "protocol designs"
// use case from the paper's opening sentence.
//
// Model: an n-station token-ring mutual-exclusion protocol. Each station i
// has one state bit t_i ("holds the token"). Per step, each station with
// the token either keeps it or passes it to station (i+1) mod n, controlled
// by a free input p_i. Safety property: at most one station ever holds the
// token (mutual exclusion).
//
//   * The correct protocol starts from a one-hot state and preserves
//     one-hotness: the analyzer proves the property over the full
//     reachable set.
//   * The buggy variant mishandles the pass: a station RECEIVING a token
//     while also keeping its own forged copy (a duplicated-grant fault) —
//     reachability finds the violation and prints a concrete trace.
//
// Usage: ./build/examples/protocol_verify [stations] [threads]
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <vector>

#include "core/bdd_manager.hpp"
#include "core/fold.hpp"
#include "mc/reachability.hpp"

namespace {

using namespace pbdd;
using core::Bdd;

/// next(t_i) for the ring:
///   correct: t'_i = (t_i AND NOT pass_i) OR (t_{i-1} AND pass_{i-1})
///   buggy:   t'_i = t_i OR (t_{i-1} AND pass_{i-1})
///            (a station keeps its token even while passing it on)
std::vector<Bdd> ring_deltas(core::BddManager& mgr, const mc::VarLayout& l,
                             bool buggy) {
  std::vector<Bdd> deltas;
  const unsigned n = l.state_bits;
  for (unsigned i = 0; i < n; ++i) {
    const unsigned prev = (i + n - 1) % n;
    const Bdd have = mgr.var(l.current(i));
    const Bdd pass_me = mgr.var(l.input(i));
    const Bdd recv = mgr.apply(Op::And, mgr.var(l.current(prev)),
                               mgr.var(l.input(prev)));
    const Bdd keep =
        buggy ? have : mgr.apply(Op::Diff, have, pass_me);
    deltas.push_back(mgr.apply(Op::Or, keep, recv));
  }
  return deltas;
}

/// "At least two tokens" — the violation of mutual exclusion.
Bdd two_tokens(core::BddManager& mgr, const mc::VarLayout& l) {
  std::vector<Bdd> pairs;
  for (unsigned i = 0; i < l.state_bits; ++i) {
    for (unsigned j = i + 1; j < l.state_bits; ++j) {
      pairs.push_back(mgr.apply(Op::And, mgr.var(l.current(i)),
                                mgr.var(l.current(j))));
    }
  }
  return core::or_all(mgr, pairs);
}

Bdd one_hot_init(core::BddManager& mgr, const mc::VarLayout& l) {
  std::vector<Bdd> literals;
  for (unsigned i = 0; i < l.state_bits; ++i) {
    literals.push_back(i == 0 ? mgr.var(l.current(i))
                              : mgr.nvar(l.current(i)));
  }
  return core::and_all(mgr, literals);
}

void report(const char* name, const mc::ReachResult& result,
            core::BddManager& mgr, const mc::VarLayout& l) {
  std::printf("%s: %u image steps, %s, %.0f reachable states, property %s\n",
              name, result.iterations,
              result.fixpoint ? "fixpoint" : "bound hit",
              mgr.sat_count(result.reachable) /
                  std::exp2(static_cast<double>(mgr.num_vars() -
                                                l.state_bits)),
              result.property_holds ? "HOLDS" : "VIOLATED");
  if (!result.property_holds) {
    std::printf("counterexample (token bits per step):\n");
    for (std::size_t step = 0; step < result.counterexample.size(); ++step) {
      std::printf("  step %zu: ", step);
      for (const bool bit : result.counterexample[step]) {
        std::printf("%c", bit ? '1' : '0');
      }
      std::printf("\n");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned stations =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const unsigned threads = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;

  mc::VarLayout layout;
  layout.state_bits = stations;
  layout.input_bits = stations;

  core::Config config;
  config.workers = threads;

  {
    core::BddManager mgr(layout.total_vars(), config);
    mc::Reachability ring(mgr, layout,
                          ring_deltas(mgr, layout, /*buggy=*/false));
    std::printf("transition relation: %zu nodes\n",
                mgr.node_count(ring.transition_relation()));
    auto result = ring.analyze(one_hot_init(mgr, layout),
                               two_tokens(mgr, layout));
    report("correct ring ", result, mgr, layout);
    if (!result.property_holds) return 1;
  }
  {
    core::BddManager mgr(layout.total_vars(), config);
    mc::Reachability ring(mgr, layout,
                          ring_deltas(mgr, layout, /*buggy=*/true));
    auto result = ring.analyze(one_hot_init(mgr, layout),
                               two_tokens(mgr, layout));
    report("buggy ring   ", result, mgr, layout);
    if (result.property_holds) return 1;  // the bug must be found
  }
  return 0;
}
