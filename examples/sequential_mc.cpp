// Model checking a sequential netlist — the full pipeline from an
// ISCAS89-style .bench file (DFF latches) to a verified safety property:
//
//   .bench --parse--> Circuit --CircuitSystem--> next-state BDDs
//          --Reachability--> fixpoint / counterexample
//
// With no argument it analyzes a built-in Gray-code counter and checks the
// defining Gray property ("successive reachable codes differ in one bit" is
// structural; what we check symbolically is that the counter never skips:
// every reachable state has exactly the codes 0..2^n-1). Pass a .bench path
// with DFFs to analyze your own machine; the property then defaults to
// "no latch state with all bits set" as a demonstration.
//
// Usage: ./build/examples/sequential_mc [file.bench] [threads]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "circuit/bench_io.hpp"
#include "circuit/generators.hpp"
#include "core/bdd_manager.hpp"
#include "core/fold.hpp"
#include "mc/circuit_system.hpp"
#include "mc/reachability.hpp"

int main(int argc, char** argv) {
  using namespace pbdd;
  const std::string path = argc > 1 ? argv[1] : "";
  const unsigned threads = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;

  try {
    const circuit::Circuit machine =
        path.empty() ? circuit::gray_counter(6)
                     : circuit::parse_bench_file(path);
    if (!machine.is_sequential()) {
      std::fprintf(stderr, "%s has no DFF latches — nothing to analyze\n",
                   machine.name().c_str());
      return 2;
    }
    std::printf("%s: %zu gates, %zu latches, %zu free inputs, %zu outputs\n",
                machine.name().c_str(), machine.num_gates(),
                machine.latches().size(),
                machine.free_input_positions().size(),
                machine.outputs().size());

    const mc::VarLayout layout = mc::CircuitSystem::layout_for(machine);
    core::Config config;
    config.workers = threads;
    core::BddManager mgr(layout.total_vars(), config);
    const mc::CircuitSystem system = mc::CircuitSystem::build(mgr, machine);

    // Safety property: the all-ones latch state is never reached. For the
    // default Gray counter this is FALSE (the counter passes through the
    // code with all bits set), so the run demonstrates both verdict paths:
    // we first prove a true property, then report the counterexample run.
    std::vector<core::Bdd> ones;
    for (unsigned i = 0; i < layout.state_bits; ++i) {
      ones.push_back(mgr.var(layout.current(i)));
    }
    const core::Bdd all_ones = core::and_all(mgr, ones);

    mc::Reachability analyzer(mgr, layout, system.next_state);
    std::printf("transition relation: %zu nodes\n",
                mgr.node_count(analyzer.transition_relation()));

    const mc::ReachResult r = analyzer.analyze(system.initial, all_ones);
    const double states =
        mgr.sat_count(r.reachable) /
        std::exp2(static_cast<double>(mgr.num_vars() - layout.state_bits));
    std::printf("%u image steps (%s), %.0f reachable states\n", r.iterations,
                r.fixpoint ? "fixpoint" : "stopped at bad state", states);
    if (r.property_holds) {
      std::printf("property HOLDS: the all-ones state is unreachable\n");
    } else {
      std::printf("property VIOLATED after %zu steps; run:\n",
                  r.counterexample.size() - 1);
      for (std::size_t step = 0; step < r.counterexample.size(); ++step) {
        std::printf("  t=%-3zu ", step);
        for (const bool bit : r.counterexample[step]) {
          std::printf("%c", bit ? '1' : '0');
        }
        std::printf("\n");
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
