// Formal equivalence checking — the paper's motivating application
// (Section 1: compare specification and implementation, and produce a
// counterexample by XOR-ing the two BDDs when they differ).
//
// This example verifies a gate-level "synthesized" carry-select adder
// against a ripple-carry specification, then injects a single wrong-gate
// fault and extracts the counterexample input vector that exposes it.
//
// Usage: ./build/examples/equivalence_check [width] [threads]
#include <cstdio>
#include <cstdlib>

#include "circuit/builder.hpp"
#include "circuit/generators.hpp"
#include "circuit/netlist.hpp"
#include "circuit/ordering.hpp"
#include "core/bdd_manager.hpp"

namespace {

using namespace pbdd;
using circuit::Circuit;
using core::Bdd;

/// Inject a wrong-gate fault: flip the type of one internal gate.
Circuit inject_fault(const Circuit& good, std::uint32_t victim) {
  Circuit bad(good.name() + ".faulty");
  for (std::uint32_t id = 0; id < good.num_gates(); ++id) {
    const circuit::Gate& g = good.gate(id);
    if (g.type == circuit::GateType::Input) {
      bad.add_input(g.name);
      continue;
    }
    circuit::GateType t = g.type;
    if (id == victim) {
      t = (t == circuit::GateType::Xor) ? circuit::GateType::Or
                                        : circuit::GateType::Xor;
      std::printf("injected fault: gate %u (%s) flipped\n", id,
                  circuit::gate_type_name(g.type));
    }
    bad.add_gate(t, g.fanins, g.name);
  }
  for (std::size_t i = 0; i < good.outputs().size(); ++i) {
    bad.mark_output(good.outputs()[i], good.output_names()[i]);
  }
  return bad;
}

/// Build a miter over two circuits' outputs and report equivalence; on a
/// mismatch, extract and replay a counterexample.
bool check(core::BddManager& mgr, const Circuit& spec, const Circuit& impl,
           const std::vector<unsigned>& order) {
  const auto spec_out =
      circuit::build_parallel(mgr, spec.binarized(), order);
  const auto impl_out =
      circuit::build_parallel(mgr, impl.binarized(), order);

  bool equivalent = true;
  Bdd miter = mgr.zero();
  for (std::size_t o = 0; o < spec_out.size(); ++o) {
    if (!(spec_out[o] == impl_out[o])) {  // O(1) by canonicity
      equivalent = false;
      miter = mgr.apply(Op::Or, miter,
                        mgr.apply(Op::Xor, spec_out[o], impl_out[o]));
    }
  }
  if (equivalent) {
    std::printf("EQUIVALENT: all %zu outputs match node-for-node\n",
                spec_out.size());
    return true;
  }
  std::printf("NOT EQUIVALENT: %.0f distinguishing input vectors\n",
              mgr.sat_count(miter));
  const auto cex = mgr.sat_one(miter);
  std::printf("counterexample:");
  std::vector<bool> inputs(spec.inputs().size(), false);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto v = (*cex)[order[i]];
    inputs[i] = v == 1;
    std::printf(" %s=%c", spec.gate(spec.inputs()[i]).name.c_str(),
                v < 0 ? '0' : static_cast<char>('0' + v));
  }
  std::printf("\n");
  // Replay through gate-level simulation to demonstrate the divergence.
  const auto sv = spec.simulate(inputs);
  const auto iv = impl.simulate(inputs);
  for (std::size_t o = 0; o < sv.size(); ++o) {
    if (sv[o] != iv[o]) {
      std::printf("  output %-6s: spec=%d impl=%d\n",
                  spec.output_names()[o].c_str(), int(sv[o]), int(iv[o]));
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned width = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  const unsigned threads = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;

  const Circuit spec = circuit::ripple_adder(width);
  const Circuit impl = circuit::carry_select_adder(width);
  const auto order = circuit::order_dfs(spec.binarized());

  core::Config config;
  config.workers = threads;
  core::BddManager mgr(static_cast<unsigned>(spec.inputs().size()), config);

  std::printf("== verifying %u-bit carry-select adder against ripple spec "
              "(%u threads) ==\n", width, threads);
  if (!check(mgr, spec, impl, order)) return 1;

  std::printf("\n== now with an injected wrong-gate fault ==\n");
  const Circuit faulty = inject_fault(impl, impl.num_gates() / 2);
  core::BddManager mgr2(static_cast<unsigned>(spec.inputs().size()), config);
  const bool equal = check(mgr2, spec, faulty, order);
  return equal ? 1 : 0;  // the fault must be detected
}
