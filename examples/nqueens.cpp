// N-queens through BDDs: build the constraint function over N*N board
// variables and count its satisfying assignments — the classic symbolic
// combinatorics demo, and a nice stress of apply() chains plus sat_count.
//
// The per-row "exactly one queen" and the attack constraints are issued as
// parallel batches where independent, so larger boards exercise the
// multi-worker engine.
//
// Usage: ./build/examples/nqueens [N] [threads]     (default N=7)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/bdd_manager.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pbdd;
  using core::Bdd;

  const unsigned n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 7;
  const unsigned threads = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;
  // Known solution counts for checking.
  const unsigned known[] = {1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724};

  core::Config config;
  config.workers = threads;
  core::BddManager mgr(n * n, config);
  util::WallTimer timer;

  auto cell = [&](unsigned r, unsigned c) { return mgr.var(r * n + c); };

  // Row constraints: exactly one queen per row.
  std::vector<Bdd> row_constraints;
  for (unsigned r = 0; r < n; ++r) {
    Bdd at_least = mgr.zero();
    Bdd at_most = mgr.one();
    for (unsigned c = 0; c < n; ++c) {
      at_least = mgr.apply(Op::Or, at_least, cell(r, c));
      for (unsigned c2 = c + 1; c2 < n; ++c2) {
        at_most = mgr.apply(
            Op::Diff, at_most, mgr.apply(Op::And, cell(r, c), cell(r, c2)));
      }
    }
    row_constraints.push_back(mgr.apply(Op::And, at_least, at_most));
  }

  // Attack constraints: no two queens share a column or diagonal. Collect
  // the pairwise exclusions as one big batch of independent ANDs first.
  std::vector<core::BatchOp> pair_batch;
  for (unsigned r = 0; r < n; ++r) {
    for (unsigned c = 0; c < n; ++c) {
      for (unsigned r2 = r + 1; r2 < n; ++r2) {
        // same column
        pair_batch.push_back({Op::And, cell(r, c), cell(r2, c)});
        const int dr = static_cast<int>(r2) - static_cast<int>(r);
        if (c >= static_cast<unsigned>(dr)) {
          pair_batch.push_back({Op::And, cell(r, c), cell(r2, c - dr)});
        }
        if (c + dr < n) {
          pair_batch.push_back({Op::And, cell(r, c), cell(r2, c + dr)});
        }
      }
    }
  }
  const std::vector<Bdd> conflicts = mgr.apply_batch(pair_batch);

  // Fold everything: board = AND rows AND NOT each conflict.
  Bdd board = mgr.one();
  for (const Bdd& rc : row_constraints) board = mgr.apply(Op::And, board, rc);
  for (const Bdd& bad : conflicts) board = mgr.apply(Op::Diff, board, bad);

  const double solutions = mgr.sat_count(board);
  std::printf("%u-queens: %.0f solutions, %zu BDD nodes, %.2fs, "
              "%zu live nodes, %llu ops\n",
              n, solutions, mgr.node_count(board), timer.elapsed_s(),
              mgr.live_nodes(),
              static_cast<unsigned long long>(
                  mgr.stats().total.ops_performed));
  if (n < std::size(known)) {
    if (static_cast<unsigned>(solutions) != known[n]) {
      std::printf("ERROR: expected %u solutions\n", known[n]);
      return 1;
    }
    std::printf("matches the known count (%u)\n", known[n]);
  }
  if (solutions > 0) {
    const auto model = mgr.sat_one(board);
    std::printf("one placement:\n");
    for (unsigned r = 0; r < n; ++r) {
      for (unsigned c = 0; c < n; ++c) {
        std::printf("%c", (*model)[r * n + c] == 1 ? 'Q' : '.');
      }
      std::printf("\n");
    }
  }
  return 0;
}
