#include "net/http.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

namespace pbdd::net {

namespace {

/// Request-header size cap: a GET for a telemetry path is a few hundred
/// bytes; anything larger is a confused or hostile client.
constexpr std::size_t kMaxRequestBytes = 8192;

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    default:
      return "";
  }
}

void send_response(Socket& client, const HttpResponse& resp) {
  std::string head = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                     status_text(resp.status) + "\r\n";
  head += "Content-Type: " + resp.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  client.send_all(head.data(), head.size());
  if (!resp.body.empty()) {
    client.send_all(resp.body.data(), resp.body.size());
  }
}

}  // namespace

void HttpServer::handle(const std::string& path, Handler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  handlers_[path] = std::move(handler);
}

void HttpServer::start(std::uint16_t port, bool any) {
  if (running_.load(std::memory_order_acquire)) {
    throw std::runtime_error("http: server already started");
  }
  listener_ = Listener(port, any);
  port_ = listener_.port();
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
}

void HttpServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    Socket client = listener_.accept_client();
    if (!client.valid()) break;  // listener closed: shutting down
    try {
      serve(std::move(client));
    } catch (const std::exception&) {
      // A torn request or a peer reset mid-response only kills this
      // connection, never the accept loop.
    }
  }
}

void HttpServer::serve(Socket client) {
  // A slow-loris client must not wedge the (serial) accept loop.
  client.set_recv_timeout(std::chrono::milliseconds(2000));

  // Read byte-wise until the header terminator; requests are tiny and the
  // simplicity beats buffering a stream we close right after.
  std::string request;
  while (request.size() < kMaxRequestBytes) {
    char c = 0;
    if (!client.recv_all(&c, 1)) break;  // clean close before a full request
    request += c;
    if (request.size() >= 4 &&
        request.compare(request.size() - 4, 4, "\r\n\r\n") == 0) {
      break;
    }
  }
  const std::size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) {
    send_response(client, {400, "text/plain; charset=utf-8", "bad request\n"});
    return;
  }
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    send_response(client, {400, "text/plain; charset=utf-8", "bad request\n"});
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (const std::size_t query = path.find('?'); query != std::string::npos) {
    path.resize(query);
  }
  if (method != "GET") {
    send_response(client, {405, "text/plain; charset=utf-8",
                           "only GET is supported\n"});
    return;
  }
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = handlers_.find(path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (!handler) {
    send_response(client,
                  {404, "text/plain; charset=utf-8", "no such endpoint\n"});
    return;
  }
  HttpResponse resp;
  try {
    resp = handler();
  } catch (const std::exception& e) {
    resp = {500, "text/plain; charset=utf-8",
            std::string("handler error: ") + e.what() + "\n"};
  }
  send_response(client, resp);
}

}  // namespace pbdd::net
