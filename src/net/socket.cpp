#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace pbdd::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("net: " + what);
}

[[noreturn]] void fail_errno(const std::string& what) {
  fail(what + ": " + std::strerror(errno));
}

}  // namespace

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::send_all(const void* data, std::size_t size) {
  const auto* p = static_cast<const char*>(data);
  while (size > 0) {
    // MSG_NOSIGNAL: a reset peer must surface as EPIPE, not kill the
    // process with SIGPIPE (the failover path depends on catching it).
    const ssize_t n = ::send(fd_, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("send");
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

bool Socket::recv_all(void* data, std::size_t size) {
  auto* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) fail("receive timeout");
      fail_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean close on a frame boundary
      fail("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::set_recv_timeout(std::chrono::milliseconds timeout) {
  struct timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    fail_errno("setsockopt(SO_RCVTIMEO)");
  }
}

void Socket::set_nodelay() {
  const int one = 1;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    fail_errno("setsockopt(TCP_NODELAY)");
  }
}

Listener::Listener(std::uint16_t port, bool any) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) fail_errno("socket");
  Socket sock(fd);
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    fail_errno("setsockopt(SO_REUSEADDR)");
  }
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = any ? htonl(INADDR_ANY) : htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    fail_errno("bind");
  }
  if (::listen(fd, 16) != 0) fail_errno("listen");
  // Recover the kernel-assigned port when 0 was requested.
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    fail_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  sock_ = std::move(sock);
}

Socket Listener::accept_client() {
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return Socket();  // closed listener (shutdown path) or hard error
  }
}

Socket connect_to(const std::string& host, std::uint16_t port) {
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved =
      (host == "localhost" || host.empty()) ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    fail("bad address '" + host + "' (IPv4 dotted quad or localhost only)");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) fail_errno("socket");
  Socket sock(fd);
  for (;;) {
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return sock;
    }
    if (errno == EINTR) continue;
    fail_errno("connect " + resolved + ":" + std::to_string(port));
  }
}

std::pair<std::string, std::uint16_t> parse_endpoint(
    const std::string& endpoint) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    fail("bad endpoint '" + endpoint + "' (want host:port)");
  }
  const unsigned long port = std::strtoul(endpoint.c_str() + colon + 1,
                                          nullptr, 10);
  if (port == 0 || port > 0xFFFF) {
    fail("bad port in endpoint '" + endpoint + "'");
  }
  return {endpoint.substr(0, colon), static_cast<std::uint16_t>(port)};
}

}  // namespace pbdd::net
