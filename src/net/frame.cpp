#include "net/frame.hpp"

#include <cstring>
#include <stdexcept>

#include "util/crc32.hpp"

namespace pbdd::net {

namespace {

constexpr std::size_t kHeadBytes = 4 + 2 + 2 + 4;  // magic, type, flags, len

void put_u16(std::uint8_t* p, std::uint16_t v) { std::memcpy(p, &v, 2); }
void put_u32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
[[nodiscard]] std::uint16_t get_u16(const std::uint8_t* p) {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

void send_frame(Socket& sock, std::uint16_t type, const std::uint8_t* payload,
                std::size_t payload_len, std::uint16_t flags) {
  if (payload_len > 0xFFFFFFFFu) {
    throw std::runtime_error("net: frame payload too large");
  }
  std::uint8_t head[kHeadBytes];
  put_u32(head, kFrameMagic);
  put_u16(head + 4, type);
  put_u16(head + 6, flags);
  put_u32(head + 8, static_cast<std::uint32_t>(payload_len));
  // CRC over type..payload: the covered header fields first, then the
  // payload continued through the same running register.
  util::Crc32 crc;
  crc.update(head + 4, kHeadBytes - 4);
  if (payload_len > 0) crc.update(payload, payload_len);
  std::uint8_t foot[4];
  put_u32(foot, crc.value());
  sock.send_all(head, sizeof(head));
  if (payload_len > 0) sock.send_all(payload, payload_len);
  sock.send_all(foot, sizeof(foot));
}

void send_frame(Socket& sock, std::uint16_t type,
                const std::vector<std::uint8_t>& payload,
                std::uint16_t flags) {
  send_frame(sock, type, payload.data(), payload.size(), flags);
}

std::optional<Frame> recv_frame(Socket& sock, std::uint32_t max_payload) {
  std::uint8_t head[kHeadBytes];
  if (!sock.recv_all(head, sizeof(head))) return std::nullopt;
  if (get_u32(head) != kFrameMagic) {
    throw std::runtime_error("net: bad frame magic");
  }
  Frame f;
  f.type = get_u16(head + 4);
  f.flags = get_u16(head + 6);
  const std::uint32_t len = get_u32(head + 8);
  if (len > max_payload) {
    throw std::runtime_error("net: frame payload exceeds receive cap");
  }
  f.payload.resize(len);
  if (len > 0 && !sock.recv_all(f.payload.data(), len)) {
    throw std::runtime_error("net: connection closed mid-frame");
  }
  std::uint8_t foot[4];
  if (!sock.recv_all(foot, sizeof(foot))) {
    throw std::runtime_error("net: connection closed mid-frame");
  }
  util::Crc32 crc;
  crc.update(head + 4, kHeadBytes - 4);
  if (len > 0) crc.update(f.payload.data(), len);
  if (crc.value() != get_u32(foot)) {
    throw std::runtime_error("net: frame checksum mismatch");
  }
  return f;
}

}  // namespace pbdd::net
