// Minimal HTTP/1.1 server for the telemetry endpoints (/metrics, /healthz,
// /tracez — docs/OBSERVABILITY.md). GET-only, Connection: close, one
// request per connection, served serially from a single accept thread: the
// clients are Prometheus scrapes, CI curls, and humans, not a fleet.
// Reuses the replication tier's Listener/Socket (src/net/socket.hpp), so it
// inherits ephemeral-port support (port 0 + port()) and loopback binding.
//
// Handlers are registered per exact path and produce the body on each
// request, so a /metrics handler can render a fresh Registry snapshot per
// scrape. Unknown paths get 404, non-GET methods 405, and a handler that
// throws turns into a 500 with the exception text — a scrape must never
// take the process down.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "net/socket.hpp"

namespace pbdd::net {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Prometheus exposition content type for /metrics handlers.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

class HttpServer {
 public:
  using Handler = std::function<HttpResponse()>;

  HttpServer() = default;
  ~HttpServer() { stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register a GET handler for an exact path (query strings are stripped
  /// before lookup). Replaces any previous handler for the path; safe to
  /// call before or after start().
  void handle(const std::string& path, Handler handler);

  /// Bind (port 0 = ephemeral) and spawn the accept thread.
  /// Throws std::runtime_error if the port can't be bound.
  void start(std::uint16_t port, bool any = false);

  /// The bound port (valid after start()), 0 otherwise.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Close the listener and join the accept thread. Idempotent.
  void stop();

 private:
  void accept_loop();
  void serve(Socket client);

  Listener listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::uint16_t port_ = 0;
  mutable std::mutex mutex_;
  std::map<std::string, Handler> handlers_;
};

}  // namespace pbdd::net
