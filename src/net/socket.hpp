// Minimal RAII TCP sockets for the replication tier (docs/REPLICATION.md).
//
// Deliberately tiny: blocking POSIX stream sockets over loopback or a
// trusted LAN, with EINTR-safe full-buffer send/recv, optional receive
// timeouts, and ephemeral-port listeners (port 0) so tests and the CI smoke
// job never collide on a fixed port. No TLS, no non-blocking state machine —
// the replication protocol is one writer and a handful of replicas, and
// every connection gets its own thread.
//
// Errors are std::runtime_error("net: ..."); a clean peer close surfaces as
// recv_some() == 0, which frame.hpp turns into "no more frames".
#pragma once

#include <cstddef>
#include <cstdint>
#include <chrono>
#include <string>
#include <utility>

namespace pbdd::net {

/// Move-only owner of one socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Close the fd (idempotent). Also the way to unblock a thread parked in
  /// accept()/recv on this socket from another thread (via shutdown first).
  void close() noexcept;
  /// shutdown(SHUT_RDWR): wakes any thread blocked on this socket without
  /// racing the fd number the way close() alone would.
  void shutdown() noexcept;

  /// Block-until-done send; throws on error or peer reset.
  void send_all(const void* data, std::size_t size);
  /// Block-until-done receive of exactly `size` bytes. Returns false on a
  /// clean EOF *before the first byte*; throws on error, timeout, or EOF
  /// mid-buffer (a torn frame is corruption, not a clean close).
  [[nodiscard]] bool recv_all(void* data, std::size_t size);

  /// SO_RCVTIMEO for subsequent receives (zero = block forever). A timeout
  /// expiring inside recv_all throws ("net: receive timeout").
  void set_recv_timeout(std::chrono::milliseconds timeout);
  /// Disable Nagle: the protocol is request/response with small frames
  /// between the ship bursts.
  void set_nodelay();

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1 (or INADDR_ANY with `any` = true).
/// Construct with port 0 for an ephemeral port; port() reports the bound one.
class Listener {
 public:
  Listener() = default;
  explicit Listener(std::uint16_t port, bool any = false);
  [[nodiscard]] bool valid() const noexcept { return sock_.valid(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Block for one connection. Returns an invalid Socket once close() has
  /// been called (the accept loop's shutdown path).
  [[nodiscard]] Socket accept_client();
  void close() noexcept {
    sock_.shutdown();
    sock_.close();
  }

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Blocking connect to host:port (IPv4 dotted quad or "localhost").
/// Throws on failure.
[[nodiscard]] Socket connect_to(const std::string& host, std::uint16_t port);

/// "host:port" split; throws on malformed input.
[[nodiscard]] std::pair<std::string, std::uint16_t> parse_endpoint(
    const std::string& endpoint);

}  // namespace pbdd::net
