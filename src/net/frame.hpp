// Length-prefixed, CRC-guarded frames over a Socket (docs/FORMAT.md,
// "Replication wire format").
//
// Every replication message travels as one frame:
//
//   magic u32 ("PBDF"), type u16, flags u16, payload_len u32,
//   payload bytes, crc u32
//
// The CRC-32 covers type..payload (everything after the magic, before the
// crc), so a flipped bit anywhere in a message is loud. payload_len is
// bounded by the receiver's max_payload — a garbage length (port scanner,
// protocol confusion) fails fast instead of allocating gigabytes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/socket.hpp"

namespace pbdd::net {

inline constexpr std::uint32_t kFrameMagic = 0x46444250u;  // "PBDF" LE
/// Default receive cap: generous for full-snapshot level sections, small
/// enough that a corrupt length cannot exhaust memory.
inline constexpr std::uint32_t kDefaultMaxPayload = 1u << 30;

struct Frame {
  std::uint16_t type = 0;
  std::uint16_t flags = 0;
  std::vector<std::uint8_t> payload;
};

/// Serialize and send one frame.
void send_frame(Socket& sock, std::uint16_t type,
                const std::uint8_t* payload, std::size_t payload_len,
                std::uint16_t flags = 0);
void send_frame(Socket& sock, std::uint16_t type,
                const std::vector<std::uint8_t>& payload,
                std::uint16_t flags = 0);

/// Receive one frame. nullopt on a clean peer close between frames; throws
/// on corruption (bad magic, CRC mismatch, oversized payload), timeout, or
/// mid-frame EOF.
[[nodiscard]] std::optional<Frame> recv_frame(
    Socket& sock, std::uint32_t max_payload = kDefaultMaxPayload);

}  // namespace pbdd::net
