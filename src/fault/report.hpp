// Deterministic fault-campaign reports with a SHA-256 integrity footer.
//
// A report is a pure function of the circuit topology and the campaign's
// sampling cap — no timing, worker count, or table discipline leaks into
// the bytes, so the same circuit produces the byte-identical report under
// any engine configuration. That property is what makes the checked-in
// goldens under tests/goldens/ meaningful: any semantic divergence in the
// engine shows up as a byte diff. The footer hash makes each file
// self-verifying. Format details in docs/FAULTSIM.md.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "fault/fault.hpp"

namespace pbdd::fault {

/// Header fields of a report. All values derive from the circuit and the
/// sampling cap, never from the run.
struct ReportInfo {
  std::string circuit;
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t gates = 0;
  std::size_t total_nets = 0;    ///< faultable nets in the circuit
  std::size_t reported_nets = 0; ///< rows in this report (after sampling)
};

/// Render the canonical report: header comments, one `net sa0_eq sa1_eq`
/// row per result (0/1 flags), and the `# sha256 <hex>` footer hashing
/// every preceding byte.
[[nodiscard]] std::string render_report(
    const ReportInfo& info, std::span<const NetFaultResult> results);

/// Check a report's footer hash against its body. Returns false (with a
/// diagnostic in *error if given) on a missing or mismatching footer.
[[nodiscard]] bool verify_report(std::string_view report,
                                 std::string* error = nullptr);

/// Read a report file and verify its footer. Throws std::runtime_error if
/// the file cannot be read; returns the verdict of verify_report.
[[nodiscard]] bool verify_report_file(const std::string& path,
                                      std::string* error = nullptr);

}  // namespace pbdd::fault
