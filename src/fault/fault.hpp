// BDD-based stuck-at fault simulation and equivalence checking.
//
// The classic combinational fault model: a net stuck at 0 or 1. For each
// fault the transitive fanout cone of the faulted net is rebuilt with the
// net replaced by a constant; everything outside the cone keeps its golden
// (fault-free) BDD, so the golden construction is paid once per circuit and
// shared across the whole campaign. A fault is *detectable* iff some primary
// output differs from golden for some input assignment — decided exactly by
// building the miter XOR(golden_out, faulty_out) per affected output,
// OR-ing the miters, and testing sat_count != 0 (canonicity makes the test
// a constant-time comparison against the zero terminal). A fault whose
// difference function is identically zero is *equivalent* (undetectable
// redundancy).
//
// This is the engine's best-shaped parallel workload: each fault's cone
// rebuild is independent of every other fault's, so a wave of faults is a
// stream of wide apply_batch calls (docs/FAULTSIM.md describes the
// campaign lifecycle; the service wrapper in src/service/ adds admission,
// cancellation, and metrics).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "core/bdd_manager.hpp"

namespace pbdd::fault {

enum class StuckAt : std::uint8_t { kZero = 0, kOne = 1 };

/// One faultable net: a gate output (or primary input) with its report name.
struct FaultSite {
  std::uint32_t gate = 0;
  std::string net;  ///< gate name, or "n<id>" for unnamed internal gates
};

/// Verdict for both polarities of one net. `equivalent` means the faulty
/// circuit is combinationally equivalent to the golden one — the fault is
/// undetectable by any input assignment.
struct NetFaultResult {
  std::string net;
  std::uint32_t gate = 0;
  bool sa0_equivalent = false;
  bool sa1_equivalent = false;
};

struct CampaignStats {
  std::uint64_t nets = 0;              ///< fault sites selected
  std::uint64_t nets_resolved = 0;     ///< sites with both polarities decided
  std::uint64_t faults_evaluated = 0;  ///< single-polarity faults decided
  std::uint64_t faults_detected = 0;
  std::uint64_t faults_equivalent = 0;
  std::uint64_t waves = 0;             ///< fault waves executed
  std::uint64_t batches = 0;           ///< apply_batch calls issued
  std::uint64_t cone_ops = 0;          ///< gate rebuild operations
  std::uint64_t miter_ops = 0;         ///< XOR + OR-fold operations
  std::uint64_t golden_batches = 0;    ///< batches in the golden build
  bool cancelled = false;              ///< cut short by BatchControl
  /// Per-wave worker utilization: sum of per-active-worker expansion counts
  /// over (active_workers x max per-worker count) for the wave's batches —
  /// 1.0 is a perfectly balanced wave, 1/active_workers is one worker doing
  /// everything. Sampled from the engine's ops_performed counters.
  std::vector<double> wave_utilization;
};

struct FaultSimOptions {
  /// Faults rebuilt concurrently per wave (rounded to whole nets). Each
  /// wave's per-level ops across all its faults merge into one batch — the
  /// knob that trades peak memory for batch width.
  std::size_t batch_faults = 32;
  /// Cap on fault sites; 0 = every net. Sites are sampled by a
  /// deterministic stride over the topological enumeration, so the same
  /// cap always selects the same nets.
  std::size_t max_nets = 0;
  /// Issue each wave as one dependency-carrying batch (cone rebuilds,
  /// miters, and the OR fold chained through BatchOp deps) instead of one
  /// batch per topological round. The lockstep rounds drain the worker pool
  /// at every barrier — a wave of shallow cones is mostly barrier — while
  /// the DAG form keeps every worker busy across the whole wave. Off
  /// reproduces the round-lockstep pipeline (same verdicts either way).
  bool dag_pipeline = true;
  /// Optional cooperative cancellation/deadline, polled between batches and
  /// observed mid-batch at item-claim checkpoints. On cancellation run()
  /// returns the resolved prefix and stats().cancelled is set.
  core::BatchControl* control = nullptr;
  /// Optional hook invoked after each completed wave (with the wave index).
  /// The torture harness uses it to race GC and checkpoints against the
  /// campaign; production leaves it empty.
  std::function<void(std::size_t)> wave_callback;
};

/// Enumerate the faultable nets of a circuit in deterministic (gate id)
/// order: every gate except constants, named by gate name or "n<id>". With
/// `max_nets` > 0 the list is stride-sampled down to at most that many
/// sites, still deterministically.
[[nodiscard]] std::vector<FaultSite> enumerate_fault_sites(
    const circuit::Circuit& circuit, std::size_t max_nets = 0);

/// A fault campaign over one (binarized) circuit. Builds the golden BDD of
/// every gate once, then evaluates stuck-at faults in waves. The circuit
/// and manager must outlive the campaign; like all manager entry points,
/// calls are single-threaded from outside (parallelism lives inside
/// apply_batch).
class FaultCampaign {
 public:
  /// `circuit` must be binarized (fanin <= 2); `input_vars[i]` is the BDD
  /// variable for the i-th primary input, e.g. from order_dfs.
  FaultCampaign(core::BddManager& mgr, const circuit::Circuit& circuit,
                std::vector<unsigned> input_vars);
  ~FaultCampaign();

  FaultCampaign(const FaultCampaign&) = delete;
  FaultCampaign& operator=(const FaultCampaign&) = delete;

  /// Build the golden BDDs (every gate retained). Idempotent; run() and
  /// difference_function() call it on demand.
  void build_golden();

  /// Evaluate stuck-at-0/1 for every enumerated net. Returns one result per
  /// resolved net, in enumeration order; on cancellation the vector is the
  /// resolved prefix and stats().cancelled is true.
  [[nodiscard]] std::vector<NetFaultResult> run(
      const FaultSimOptions& options = {});

  /// The Boolean difference of a single fault: OR over outputs of
  /// XOR(golden, faulty). Zero BDD iff the fault is undetectable. Reuses
  /// the shared golden BDDs.
  [[nodiscard]] core::Bdd difference_function(std::uint32_t gate,
                                              StuckAt value);

  [[nodiscard]] const CampaignStats& stats() const noexcept { return stats_; }
  /// Golden value of every gate (valid after build_golden()).
  [[nodiscard]] const std::vector<core::Bdd>& golden_values() const noexcept {
    return golden_;
  }
  /// Golden primary-output BDDs (valid after build_golden()).
  [[nodiscard]] std::vector<core::Bdd> golden_outputs() const;

 private:
  struct Cone;
  struct Job;

  // The transitive-fanout cone of a net is identical for both stuck-at
  // polarities, so it is computed once per net and shared read-only by the
  // sa0 and sa1 jobs (and any repeated difference_function calls would
  // otherwise redo the BFS + sort per fault).
  [[nodiscard]] std::shared_ptr<const Cone> make_cone(std::uint32_t gate);
  [[nodiscard]] Job make_job(std::size_t site_index,
                             std::shared_ptr<const Cone> cone,
                             bool stuck_one);
  // Each phase returns false on cancellation. A wave = advance all jobs'
  // cone rebuilds in lockstep rounds, build the output miters, OR-fold
  // them, decide detectability. run_wave dispatches to the DAG pipeline
  // (whole wave as one dependency-carrying batch) unless
  // FaultSimOptions::dag_pipeline is off.
  bool advance_cones(std::vector<Job>& jobs, const FaultSimOptions& options);
  bool build_miters(std::vector<Job>& jobs, const FaultSimOptions& options);
  bool run_wave(std::vector<Job>& jobs, const FaultSimOptions& options);
  bool run_wave_dag(std::vector<Job>& jobs, const FaultSimOptions& options);
  [[nodiscard]] bool check_cancel(const FaultSimOptions& options);

  core::BddManager& mgr_;
  const circuit::Circuit& circuit_;
  std::vector<unsigned> input_vars_;
  std::vector<core::Bdd> golden_;
  std::vector<std::vector<std::uint32_t>> fanouts_;
  std::vector<std::uint32_t> levels_;
  CampaignStats stats_;
  bool golden_built_ = false;
};

}  // namespace pbdd::fault
