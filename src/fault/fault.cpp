#include "fault/fault.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "circuit/builder.hpp"
#include "core/fold.hpp"

namespace pbdd::fault {

using circuit::Gate;
using circuit::GateType;
using core::BatchOp;
using core::Bdd;

std::vector<FaultSite> enumerate_fault_sites(const circuit::Circuit& circuit,
                                             std::size_t max_nets) {
  std::vector<FaultSite> sites;
  for (std::uint32_t id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    if (g.type == GateType::Const0 || g.type == GateType::Const1) continue;
    FaultSite site;
    site.gate = id;
    site.net = g.name.empty() ? "n" + std::to_string(id) : g.name;
    sites.push_back(std::move(site));
  }
  if (max_nets != 0 && sites.size() > max_nets) {
    // Deterministic stride sample: same cap -> same nets, every run.
    const std::size_t step = (sites.size() + max_nets - 1) / max_nets;
    std::vector<FaultSite> sampled;
    sampled.reserve(max_nets);
    for (std::size_t i = 0; i < sites.size(); i += step) {
      sampled.push_back(std::move(sites[i]));
    }
    sites = std::move(sampled);
  }
  return sites;
}

/// The recompute region of one fault site: the strict transitive fanout,
/// level-sorted, with per-level round ranges. Polarity-independent, so one
/// cone is shared read-only by the sa0 and sa1 jobs of a net.
struct FaultCampaign::Cone {
  std::uint32_t gate = 0;
  /// Strict transitive fanout of the site, (level, id) sorted.
  std::vector<std::uint32_t> recompute;
  /// [begin, end) ranges into `recompute`, one per topological level.
  std::vector<std::pair<std::size_t, std::size_t>> rounds;
};

/// One in-flight fault: the shared cone to rebuild, the faulty values
/// computed so far, and the output miters.
struct FaultCampaign::Job {
  std::size_t site_index = 0;
  bool stuck_one = false;
  std::shared_ptr<const Cone> cone;
  std::size_t next_round = 0;
  /// Faulty value of every cone gate built so far (site preset to the
  /// stuck constant). Gates outside the map read golden values — the fence.
  std::unordered_map<std::uint32_t, Bdd> value;
  std::vector<Bdd> miters;
  bool detected = false;
};

FaultCampaign::FaultCampaign(core::BddManager& mgr,
                             const circuit::Circuit& circuit,
                             std::vector<unsigned> input_vars)
    : mgr_(mgr), circuit_(circuit), input_vars_(std::move(input_vars)) {
  if (input_vars_.size() != circuit_.inputs().size()) {
    throw std::invalid_argument("FaultCampaign: input_vars size mismatch");
  }
  fanouts_.resize(circuit_.num_gates());
  for (std::uint32_t id = 0; id < circuit_.num_gates(); ++id) {
    const Gate& g = circuit_.gate(id);
    if (g.fanins.size() > 2) {
      throw std::invalid_argument("FaultCampaign: circuit not binarized");
    }
    for (const std::uint32_t f : g.fanins) fanouts_[f].push_back(id);
  }
  levels_ = circuit_.levels();
}

FaultCampaign::~FaultCampaign() = default;

void FaultCampaign::build_golden() {
  if (golden_built_) return;
  circuit::BuildStats build_stats;
  golden_ = circuit::build_parallel_all(mgr_, circuit_, input_vars_,
                                        &build_stats);
  stats_.golden_batches = build_stats.batches;
  golden_built_ = true;
}

std::vector<Bdd> FaultCampaign::golden_outputs() const {
  std::vector<Bdd> outs;
  outs.reserve(circuit_.outputs().size());
  for (const std::uint32_t o : circuit_.outputs()) outs.push_back(golden_[o]);
  return outs;
}

std::shared_ptr<const FaultCampaign::Cone> FaultCampaign::make_cone(
    std::uint32_t gate) {
  auto cone = std::make_shared<Cone>();
  cone->gate = gate;
  // BFS over the fanout adjacency for the strict transitive fanout.
  std::vector<char> in_cone(circuit_.num_gates(), 0);
  in_cone[gate] = 1;
  std::vector<std::uint32_t> frontier{gate};
  while (!frontier.empty()) {
    const std::uint32_t id = frontier.back();
    frontier.pop_back();
    for (const std::uint32_t out : fanouts_[id]) {
      if (!in_cone[out]) {
        in_cone[out] = 1;
        cone->recompute.push_back(out);
        frontier.push_back(out);
      }
    }
  }
  std::sort(cone->recompute.begin(), cone->recompute.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return levels_[a] != levels_[b] ? levels_[a] < levels_[b]
                                              : a < b;
            });
  for (std::size_t i = 0; i < cone->recompute.size();) {
    std::size_t j = i;
    while (j < cone->recompute.size() &&
           levels_[cone->recompute[j]] == levels_[cone->recompute[i]]) {
      ++j;
    }
    cone->rounds.emplace_back(i, j);
    i = j;
  }
  return cone;
}

FaultCampaign::Job FaultCampaign::make_job(std::size_t site_index,
                                           std::shared_ptr<const Cone> cone,
                                           bool stuck_one) {
  Job job;
  job.site_index = site_index;
  job.stuck_one = stuck_one;
  job.value.emplace(cone->gate, stuck_one ? mgr_.one() : mgr_.zero());
  job.cone = std::move(cone);
  return job;
}

// Returns true when the campaign may continue, false once the control has
// fired (and records the cancellation in stats_).
bool FaultCampaign::check_cancel(const FaultSimOptions& options) {
  if (options.control == nullptr) return true;
  if (options.control->expired() ||
      options.control->skipped.load(std::memory_order_relaxed) > 0) {
    stats_.cancelled = true;
    return false;
  }
  return true;
}

bool FaultCampaign::advance_cones(std::vector<Job>& jobs,
                                  const FaultSimOptions& options) {
  const Bdd one = mgr_.one();
  // Faulty value if the gate is in this job's cone, golden fence otherwise.
  auto fo = [&](Job& job, std::uint32_t f) -> const Bdd& {
    const auto it = job.value.find(f);
    return it != job.value.end() ? it->second : golden_[f];
  };
  for (;;) {
    if (!check_cancel(options)) return false;
    std::vector<BatchOp> batch;
    std::vector<std::pair<Job*, std::uint32_t>> targets;
    bool any_rounds_left = false;
    for (Job& job : jobs) {
      if (job.next_round >= job.cone->rounds.size()) continue;
      const auto [begin, end] = job.cone->rounds[job.next_round];
      ++job.next_round;
      if (job.next_round < job.cone->rounds.size()) any_rounds_left = true;
      for (std::size_t k = begin; k < end; ++k) {
        const std::uint32_t id = job.cone->recompute[k];
        const Gate& g = circuit_.gate(id);
        switch (g.type) {
          case GateType::Buf:
            job.value[id] = fo(job, g.fanins[0]);
            break;
          case GateType::Not:
            batch.push_back(BatchOp{Op::Xor, fo(job, g.fanins[0]), one});
            targets.emplace_back(&job, id);
            break;
          default:
            batch.push_back(BatchOp{circuit::gate_op(g.type),
                                    fo(job, g.fanins[0]),
                                    fo(job, g.fanins[1])});
            targets.emplace_back(&job, id);
            break;
        }
      }
    }
    if (!batch.empty()) {
      std::vector<Bdd> results = mgr_.apply_batch(batch, options.control);
      ++stats_.batches;
      stats_.cone_ops += batch.size();
      if (!check_cancel(options)) return false;
      for (std::size_t k = 0; k < targets.size(); ++k) {
        targets[k].first->value[targets[k].second] = std::move(results[k]);
      }
    }
    if (!any_rounds_left) return true;
  }
}

bool FaultCampaign::build_miters(std::vector<Job>& jobs,
                                 const FaultSimOptions& options) {
  // XOR(golden, faulty) for every output inside each job's cone; outputs
  // outside the cone are untouched by the fault and trivially equal.
  std::vector<BatchOp> batch;
  std::vector<Job*> targets;
  for (Job& job : jobs) {
    for (const std::uint32_t o : circuit_.outputs()) {
      const auto it = job.value.find(o);
      if (it == job.value.end()) continue;
      batch.push_back(BatchOp{Op::Xor, golden_[o], it->second});
      targets.push_back(&job);
    }
  }
  if (!batch.empty()) {
    std::vector<Bdd> results = mgr_.apply_batch(batch, options.control);
    ++stats_.batches;
    stats_.miter_ops += batch.size();
    if (!check_cancel(options)) return false;
    for (std::size_t k = 0; k < results.size(); ++k) {
      targets[k]->miters.push_back(std::move(results[k]));
    }
  }
  // The cone values are dead once the miters exist.
  for (Job& job : jobs) job.value.clear();
  return true;
}

// The whole wave — every job's cone rebuild, output miters, and OR fold —
// issued as ONE dependency-carrying batch. The round-lockstep pipeline
// (below) drains the worker pool at a barrier per topological level; here a
// worker finishing one fault's shallow cone immediately moves on to another
// fault's miters, so the pool stays saturated across the wave.
bool FaultCampaign::run_wave_dag(std::vector<Job>& jobs,
                                 const FaultSimOptions& options) {
  if (!check_cancel(options)) return false;
  const Bdd one = mgr_.one();
  std::vector<BatchOp> batch;
  // Per-job root item of the OR fold (-1: no output in the cone).
  std::vector<std::int32_t> root(jobs.size(), -1);
  std::uint64_t cone_ops = 0;
  std::uint64_t miter_ops = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    Job& job = jobs[j];
    // Batch item producing each in-cone gate (gates absent from the map and
    // from job.value read the golden fence).
    std::unordered_map<std::uint32_t, std::int32_t> item;
    item.reserve(job.cone->recompute.size() + 1);
    // Operand for a fanin: a dep on the item computing it, the job's preset
    // faulty constant, or the golden fence value.
    auto fanin_op = [&](std::uint32_t f, Bdd& h) -> std::int32_t {
      const auto it = item.find(f);
      if (it != item.end()) return it->second;
      const auto vt = job.value.find(f);
      h = vt != job.value.end() ? vt->second : golden_[f];
      return -1;
    };
    for (const std::uint32_t id : job.cone->recompute) {
      const Gate& g = circuit_.gate(id);
      switch (g.type) {
        case GateType::Buf: {
          Bdd h;
          const std::int32_t dep = fanin_op(g.fanins[0], h);
          if (dep >= 0) {
            item.emplace(id, dep);
          } else {
            job.value[id] = h;
          }
          break;
        }
        case GateType::Not: {
          BatchOp op{Op::Xor, Bdd{}, one, -1, -1};
          op.f_dep = fanin_op(g.fanins[0], op.f);
          item.emplace(id, static_cast<std::int32_t>(batch.size()));
          batch.push_back(std::move(op));
          ++cone_ops;
          break;
        }
        default: {
          BatchOp op{circuit::gate_op(g.type), Bdd{}, Bdd{}, -1, -1};
          op.f_dep = fanin_op(g.fanins[0], op.f);
          op.g_dep = fanin_op(g.fanins[1], op.g);
          item.emplace(id, static_cast<std::int32_t>(batch.size()));
          batch.push_back(std::move(op));
          ++cone_ops;
          break;
        }
      }
    }
    // Miters: XOR(golden, faulty) for every output the cone reaches, chained
    // straight onto the cone items.
    std::vector<std::int32_t> fold;
    for (const std::uint32_t o : circuit_.outputs()) {
      BatchOp op{Op::Xor, golden_[o], Bdd{}, -1, -1};
      const auto it = item.find(o);
      if (it != item.end()) {
        op.g_dep = it->second;
      } else {
        const auto vt = job.value.find(o);
        if (vt == job.value.end()) continue;  // untouched by the fault
        op.g = vt->second;
      }
      fold.push_back(static_cast<std::int32_t>(batch.size()));
      batch.push_back(std::move(op));
      ++miter_ops;
    }
    // Balanced OR fold of the miter items, still inside the same batch.
    while (fold.size() > 1) {
      std::vector<std::int32_t> next;
      next.reserve(fold.size() / 2 + 1);
      for (std::size_t i = 0; i + 1 < fold.size(); i += 2) {
        next.push_back(static_cast<std::int32_t>(batch.size()));
        batch.push_back(BatchOp{Op::Or, Bdd{}, Bdd{}, fold[i], fold[i + 1]});
        ++miter_ops;
      }
      if (fold.size() & 1) next.push_back(fold.back());
      fold = std::move(next);
    }
    if (!fold.empty()) root[j] = fold.front();
  }
  std::vector<Bdd> results;
  if (!batch.empty()) {
    results = mgr_.apply_batch(batch, options.control);
    ++stats_.batches;
    stats_.cone_ops += cone_ops;
    stats_.miter_ops += miter_ops;
    if (!check_cancel(options)) return false;
  }
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const std::int32_t r = root[j];
    jobs[j].detected = r >= 0 && results[static_cast<std::size_t>(r)].valid() &&
                       mgr_.sat_count(results[static_cast<std::size_t>(r)]) !=
                           0.0;
    jobs[j].value.clear();
  }
  return true;
}

bool FaultCampaign::run_wave(std::vector<Job>& jobs,
                             const FaultSimOptions& options) {
  if (options.dag_pipeline) return run_wave_dag(jobs, options);
  if (!advance_cones(jobs, options)) return false;
  if (!build_miters(jobs, options)) return false;
  // OR-fold every job's miters as balanced trees, all jobs per level merged
  // into one batch (the cross-job generalization of core::or_all).
  for (;;) {
    if (!check_cancel(options)) return false;
    std::vector<BatchOp> batch;
    std::vector<Job*> targets;
    for (Job& job : jobs) {
      for (std::size_t i = 0; i + 1 < job.miters.size(); i += 2) {
        batch.push_back(BatchOp{Op::Or, job.miters[i], job.miters[i + 1]});
        targets.push_back(&job);
      }
    }
    if (batch.empty()) break;
    std::vector<Bdd> results = mgr_.apply_batch(batch, options.control);
    ++stats_.batches;
    stats_.miter_ops += batch.size();
    if (!check_cancel(options)) return false;
    std::size_t k = 0;
    for (Job& job : jobs) {
      if (job.miters.size() < 2) continue;
      std::vector<Bdd> next;
      next.reserve(job.miters.size() / 2 + 1);
      for (std::size_t i = 0; i + 1 < job.miters.size(); i += 2) {
        next.push_back(std::move(results[k++]));
      }
      if (job.miters.size() & 1) next.push_back(std::move(job.miters.back()));
      job.miters = std::move(next);
    }
  }
  // Canonicity: the difference function is nonzero iff some assignment
  // distinguishes faulty from golden.
  for (Job& job : jobs) {
    job.detected =
        !job.miters.empty() && mgr_.sat_count(job.miters.front()) != 0.0;
    job.miters.clear();
  }
  return true;
}

std::vector<NetFaultResult> FaultCampaign::run(
    const FaultSimOptions& options) {
  build_golden();
  const std::uint64_t golden_batches = stats_.golden_batches;
  stats_ = CampaignStats{};
  stats_.golden_batches = golden_batches;

  const std::vector<FaultSite> sites =
      enumerate_fault_sites(circuit_, options.max_nets);
  stats_.nets = sites.size();
  const std::size_t sites_per_wave =
      std::max<std::size_t>(1, options.batch_faults / 2);

  std::vector<NetFaultResult> results;
  results.reserve(sites.size());
  std::size_t wave_index = 0;
  for (std::size_t begin = 0; begin < sites.size();
       begin += sites_per_wave) {
    const std::size_t end = std::min(sites.size(), begin + sites_per_wave);
    std::vector<Job> jobs;
    jobs.reserve(2 * (end - begin));
    for (std::size_t s = begin; s < end; ++s) {
      // One BFS + sort per net, shared read-only by both polarities.
      auto cone = make_cone(sites[s].gate);
      jobs.push_back(make_job(s, cone, /*stuck_one=*/false));
      jobs.push_back(make_job(s, std::move(cone), /*stuck_one=*/true));
    }
    // Per-wave utilization: expansion-count deltas across the active pool.
    const unsigned active = mgr_.active_workers();
    std::vector<std::uint64_t> ops_before(active);
    for (unsigned w = 0; w < active; ++w) {
      ops_before[w] = mgr_.worker(w).stats().ops_performed;
    }
    if (!run_wave(jobs, options)) break;
    std::uint64_t ops_sum = 0;
    std::uint64_t ops_max = 0;
    for (unsigned w = 0; w < active; ++w) {
      const std::uint64_t d =
          mgr_.worker(w).stats().ops_performed - ops_before[w];
      ops_sum += d;
      ops_max = std::max(ops_max, d);
    }
    stats_.wave_utilization.push_back(
        ops_max > 0 ? static_cast<double>(ops_sum) /
                          (static_cast<double>(active) *
                           static_cast<double>(ops_max))
                    : 1.0);
    for (std::size_t s = begin; s < end; ++s) {
      const Job& sa0 = jobs[2 * (s - begin)];
      const Job& sa1 = jobs[2 * (s - begin) + 1];
      NetFaultResult r;
      r.net = sites[s].net;
      r.gate = sites[s].gate;
      r.sa0_equivalent = !sa0.detected;
      r.sa1_equivalent = !sa1.detected;
      results.push_back(std::move(r));
      ++stats_.nets_resolved;
      stats_.faults_evaluated += 2;
      stats_.faults_detected +=
          static_cast<std::uint64_t>(sa0.detected) + sa1.detected;
      stats_.faults_equivalent +=
          static_cast<std::uint64_t>(!sa0.detected) + !sa1.detected;
    }
    ++stats_.waves;
    if (options.wave_callback) options.wave_callback(wave_index);
    ++wave_index;
  }
  return results;
}

core::Bdd FaultCampaign::difference_function(std::uint32_t gate,
                                             StuckAt value) {
  if (gate >= circuit_.num_gates()) {
    throw std::invalid_argument("difference_function: gate out of range");
  }
  const GateType t = circuit_.gate(gate).type;
  if (t == GateType::Const0 || t == GateType::Const1) {
    throw std::invalid_argument("difference_function: constant gate");
  }
  build_golden();
  FaultSimOptions options;
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, make_cone(gate), value == StuckAt::kOne));
  advance_cones(jobs, options);
  build_miters(jobs, options);
  return core::or_all(mgr_, jobs.front().miters);
}

}  // namespace pbdd::fault
