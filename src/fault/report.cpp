#include "fault/report.hpp"

#include <fstream>
#include <sstream>

#include "util/sha256.hpp"

namespace pbdd::fault {

namespace {

constexpr std::string_view kMagic = "# pbdd fault report v1\n";
constexpr std::string_view kFooterPrefix = "# sha256 ";

}  // namespace

std::string render_report(const ReportInfo& info,
                          std::span<const NetFaultResult> results) {
  std::ostringstream out;
  out << kMagic;
  out << "# circuit " << info.circuit << " inputs " << info.inputs
      << " outputs " << info.outputs << " gates " << info.gates << " nets "
      << info.total_nets << "\n";
  if (info.reported_nets != info.total_nets) {
    out << "# sampled " << info.reported_nets << " of " << info.total_nets
        << " nets\n";
  }
  for (const NetFaultResult& r : results) {
    out << r.net << ' ' << (r.sa0_equivalent ? '1' : '0') << ' '
        << (r.sa1_equivalent ? '1' : '0') << '\n';
  }
  std::string body = std::move(out).str();
  const std::string digest = util::Sha256::hex(body);
  body.append(kFooterPrefix);
  body.append(digest);
  body.push_back('\n');
  return body;
}

bool verify_report(std::string_view report, std::string* error) {
  auto fail = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  if (report.substr(0, kMagic.size()) != kMagic) {
    return fail("missing report magic line");
  }
  // The footer is the last line: "# sha256 <64 hex>\n".
  if (report.empty() || report.back() != '\n') {
    return fail("report does not end in newline");
  }
  const std::size_t last_line_start =
      report.find_last_of('\n', report.size() - 2);
  if (last_line_start == std::string_view::npos) {
    return fail("missing sha256 footer");
  }
  const std::string_view footer =
      report.substr(last_line_start + 1,
                    report.size() - last_line_start - 2);
  if (footer.substr(0, kFooterPrefix.size()) != kFooterPrefix) {
    return fail("missing sha256 footer");
  }
  const std::string_view claimed = footer.substr(kFooterPrefix.size());
  if (claimed.size() != 64) return fail("malformed sha256 footer");
  // The hash covers every byte up to and including the newline that
  // precedes the footer line.
  const std::string actual =
      util::Sha256::hex(report.substr(0, last_line_start + 1));
  if (actual != claimed) {
    return fail("sha256 mismatch: footer " + std::string(claimed) +
                ", body hashes to " + actual);
  }
  return true;
}

bool verify_report_file(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return verify_report(std::move(buf).str(), error);
}

}  // namespace pbdd::fault
