// Symbolic reachability analysis over BDDs — the classic downstream client
// of a BDD package in formal verification (the application domain the
// paper's introduction motivates: protocol and circuit verification,
// counterexample extraction).
//
// A transition system is given functionally: one next-state function per
// state bit over (current state, primary inputs). The analyzer builds a
// monolithic transition relation
//     T(s, s', x) = AND_i ( s'_i XNOR delta_i(s, x) )
// with interleaved current/next variables (s_i at 2i, s'_i at 2i+1, inputs
// after all state variables), computes forward images by quantification and
// a monotone variable renaming, iterates to the reachable fixpoint, checks
// a safety property, and reconstructs a concrete counterexample trace by
// backward pre-images when the property fails.
#pragma once

#include <optional>
#include <vector>

#include "core/bdd_manager.hpp"

namespace pbdd::mc {

/// Variable layout shared by the analyzer and its clients.
struct VarLayout {
  unsigned state_bits = 0;
  unsigned input_bits = 0;

  [[nodiscard]] unsigned current(unsigned i) const { return 2 * i; }
  [[nodiscard]] unsigned next(unsigned i) const { return 2 * i + 1; }
  [[nodiscard]] unsigned input(unsigned j) const {
    return 2 * state_bits + j;
  }
  [[nodiscard]] unsigned total_vars() const {
    return 2 * state_bits + input_bits;
  }
};

struct ReachResult {
  core::Bdd reachable;          ///< all states reachable from init
  unsigned iterations = 0;      ///< image steps until the fixpoint
  bool fixpoint = false;        ///< false if max_iterations hit first
  bool property_holds = true;   ///< no reachable state satisfies `bad`
  /// When the property fails: a concrete run init -> ... -> bad state,
  /// one state-bit vector per step.
  std::vector<std::vector<bool>> counterexample;
};

class Reachability {
 public:
  /// `next_state[i]` is delta_i as a BDD over current-state and input
  /// variables (per `layout`); `manager` must have layout.total_vars()
  /// variables. Builds the transition relation (one balanced fold of
  /// per-bit equivalences, batched through the parallel engine).
  Reachability(core::BddManager& manager, VarLayout layout,
               const std::vector<core::Bdd>& next_state);

  /// Forward image: states reachable from `states` in exactly one step.
  [[nodiscard]] core::Bdd image(const core::Bdd& states);

  /// Backward pre-image: states that can reach `states` in one step.
  [[nodiscard]] core::Bdd pre_image(const core::Bdd& states);

  /// Least fixpoint of image from `init`; checks `bad` (a predicate over
  /// current-state variables) against each frontier and extracts a
  /// counterexample trace on failure.
  ReachResult analyze(const core::Bdd& init,
                      const std::optional<core::Bdd>& bad = std::nullopt,
                      unsigned max_iterations = 10000);

  [[nodiscard]] const core::Bdd& transition_relation() const {
    return trans_;
  }
  [[nodiscard]] const VarLayout& layout() const { return layout_; }

 private:
  /// Monotone variable renaming next->current (or current->next): the
  /// interleaved layout makes both maps order-preserving, so a structural
  /// recursion suffices.
  [[nodiscard]] core::Bdd rename_next_to_current(const core::Bdd& f);
  [[nodiscard]] core::Bdd rename_current_to_next(const core::Bdd& f);

  core::BddManager& mgr_;
  VarLayout layout_;
  core::Bdd trans_;
  std::vector<unsigned> current_vars_;
  std::vector<unsigned> current_and_input_vars_;
  std::vector<unsigned> next_vars_;
  std::vector<unsigned> next_and_input_vars_;
};

}  // namespace pbdd::mc
