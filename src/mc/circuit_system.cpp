#include "mc/circuit_system.hpp"

#include <stdexcept>
#include <unordered_map>

#include "circuit/builder.hpp"
#include "core/fold.hpp"

namespace pbdd::mc {

CircuitSystem CircuitSystem::build(core::BddManager& manager,
                                   const circuit::Circuit& seq) {
  if (!seq.is_sequential()) {
    throw std::invalid_argument("CircuitSystem: circuit has no latches");
  }
  CircuitSystem system;
  system.layout = layout_for(seq);
  if (manager.num_vars() < system.layout.total_vars()) {
    throw std::invalid_argument("CircuitSystem: manager has too few vars");
  }

  // Variable for each input position: latch q inputs get current-state
  // variables (in latch order); the rest get input variables.
  const circuit::Circuit bin = seq.binarized();
  std::unordered_map<std::uint32_t, unsigned> latch_index;
  for (unsigned k = 0; k < bin.latches().size(); ++k) {
    latch_index.emplace(bin.latches()[k].q, k);
  }
  std::vector<unsigned> input_vars(bin.inputs().size());
  unsigned next_free = 0;
  for (std::size_t i = 0; i < bin.inputs().size(); ++i) {
    const auto it = latch_index.find(bin.inputs()[i]);
    input_vars[i] = it != latch_index.end()
                        ? system.layout.current(it->second)
                        : system.layout.input(next_free++);
  }

  // One parallel build of the combinational logic yields both the output
  // cones and every latch's next-state cone. Latch d-signals may not be
  // primary outputs, so mark them in a working copy.
  circuit::Circuit work = bin;
  for (const circuit::Latch& latch : bin.latches()) {
    work.mark_output(latch.d, "");
  }
  std::vector<core::Bdd> cones =
      circuit::build_parallel(manager, work, input_vars);

  const std::size_t num_outputs = bin.outputs().size();
  system.outputs.assign(cones.begin(),
                        cones.begin() + static_cast<std::ptrdiff_t>(num_outputs));
  system.next_state.assign(
      cones.begin() + static_cast<std::ptrdiff_t>(num_outputs), cones.end());

  // All-zero initial state.
  std::vector<core::Bdd> literals;
  for (unsigned k = 0; k < system.layout.state_bits; ++k) {
    literals.push_back(manager.nvar(system.layout.current(k)));
  }
  system.initial = core::and_all(manager, literals);
  return system;
}

}  // namespace pbdd::mc
