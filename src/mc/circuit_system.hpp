// Bridge from sequential gate-level circuits (ISCAS89-style .bench with
// DFF latches) to the symbolic reachability analyzer: builds the per-latch
// next-state BDDs and per-output BDDs over the analyzer's interleaved
// variable layout, using the parallel circuit builder.
#pragma once

#include <vector>

#include "circuit/netlist.hpp"
#include "core/bdd_manager.hpp"
#include "mc/reachability.hpp"

namespace pbdd::mc {

struct CircuitSystem {
  VarLayout layout;
  /// delta_i over (current-state, input) variables, one per latch, in the
  /// circuit's latch order.
  std::vector<core::Bdd> next_state;
  /// Primary-output functions over the same variables.
  std::vector<core::Bdd> outputs;
  /// The all-zero initial state (the ISCAS89 convention).
  core::Bdd initial;

  /// Lower a sequential circuit. `manager` must have at least
  /// 2 * latches + free-inputs variables (VarLayout::total_vars()); latch i
  /// gets current-state variable layout.current(i), the j-th free input
  /// gets layout.input(j).
  static CircuitSystem build(core::BddManager& manager,
                             const circuit::Circuit& seq);

  /// Convenience: layout needed for a circuit (to size the manager).
  static VarLayout layout_for(const circuit::Circuit& seq) {
    VarLayout layout;
    layout.state_bits = static_cast<unsigned>(seq.latches().size());
    layout.input_bits =
        static_cast<unsigned>(seq.free_input_positions().size());
    return layout;
  }
};

}  // namespace pbdd::mc
