#include "mc/reachability.hpp"

#include <cassert>
#include <stdexcept>
#include <unordered_map>

#include "core/fold.hpp"

namespace pbdd::mc {

using core::Bdd;
using core::BddManager;
using core::NodeRef;

namespace {

/// Structural variable renaming under a strictly monotone variable map
/// (order-preserving on the function's support), memoized per node.
NodeRef rename_rec(BddManager& mgr, NodeRef r, unsigned (*map)(unsigned),
                   std::unordered_map<NodeRef, NodeRef>& memo) {
  if (core::is_terminal(r)) return r;
  if (auto it = memo.find(r); it != memo.end()) return it->second;
  const core::BddNode& n = mgr.node(r);
  const NodeRef low = rename_rec(mgr, n.low, map, memo);
  const NodeRef high = rename_rec(mgr, n.high, map, memo);
  const NodeRef result = mgr.mk_node(map(core::var_of(r)), low, high);
  memo.emplace(r, result);
  return result;
}

unsigned next_to_current(unsigned v) {
  // Next-state variables are the odd ones below the input block.
  return (v & 1u) ? v - 1 : v;
}

unsigned current_to_next(unsigned v) { return (v & 1u) ? v : v + 1; }

}  // namespace

Reachability::Reachability(BddManager& manager, VarLayout layout,
                           const std::vector<Bdd>& next_state)
    : mgr_(manager), layout_(layout) {
  if (next_state.size() != layout_.state_bits) {
    throw std::invalid_argument("Reachability: one delta per state bit");
  }
  if (mgr_.num_vars() < layout_.total_vars()) {
    throw std::invalid_argument("Reachability: manager has too few vars");
  }
  for (unsigned i = 0; i < layout_.state_bits; ++i) {
    current_vars_.push_back(layout_.current(i));
    next_vars_.push_back(layout_.next(i));
  }
  current_and_input_vars_ = current_vars_;
  next_and_input_vars_ = next_vars_;
  for (unsigned j = 0; j < layout_.input_bits; ++j) {
    current_and_input_vars_.push_back(layout_.input(j));
    next_and_input_vars_.push_back(layout_.input(j));
  }

  // T(s, s', x) = AND_i (s'_i XNOR delta_i): the equivalences are
  // independent, so they go out as one batch; the conjunction is a
  // balanced batched fold.
  std::vector<core::BatchOp> batch;
  batch.reserve(layout_.state_bits);
  for (unsigned i = 0; i < layout_.state_bits; ++i) {
    batch.push_back(
        core::BatchOp{Op::Xnor, mgr_.var(layout_.next(i)), next_state[i]});
  }
  const std::vector<Bdd> equivalences = mgr_.apply_batch(batch);
  trans_ = core::and_all(mgr_, equivalences);
}

Bdd Reachability::rename_next_to_current(const Bdd& f) {
  std::unordered_map<NodeRef, NodeRef> memo;
  return mgr_.make_root(rename_rec(mgr_, f.ref(), next_to_current, memo));
}

Bdd Reachability::rename_current_to_next(const Bdd& f) {
  std::unordered_map<NodeRef, NodeRef> memo;
  return mgr_.make_root(rename_rec(mgr_, f.ref(), current_to_next, memo));
}

Bdd Reachability::image(const Bdd& states) {
  // Relational product: quantify while conjoining, so S ∧ T — often far
  // larger than either operand or the result — is never materialized.
  const Bdd next_only =
      mgr_.and_exists(states, trans_, current_and_input_vars_);
  return rename_next_to_current(next_only);
}

Bdd Reachability::pre_image(const Bdd& states) {
  const Bdd primed = rename_current_to_next(states);
  return mgr_.and_exists(primed, trans_, next_and_input_vars_);
}

namespace {

/// Concrete state (current-variable values) from any nonempty set;
/// don't-cares resolve to 0, which stays inside the set.
std::vector<bool> pick_state(BddManager& mgr, const VarLayout& layout,
                             const Bdd& set) {
  const auto assignment = mgr.sat_one(set);
  assert(assignment.has_value());
  std::vector<bool> state(layout.state_bits);
  for (unsigned i = 0; i < layout.state_bits; ++i) {
    state[i] = (*assignment)[layout.current(i)] == 1;
  }
  return state;
}

/// Characteristic function (cube over current variables) of one state.
Bdd state_cube(BddManager& mgr, const VarLayout& layout,
               const std::vector<bool>& state) {
  std::vector<Bdd> literals;
  literals.reserve(layout.state_bits);
  for (unsigned i = 0; i < layout.state_bits; ++i) {
    literals.push_back(state[i] ? mgr.var(layout.current(i))
                                : mgr.nvar(layout.current(i)));
  }
  return core::and_all(mgr, literals);
}

}  // namespace

ReachResult Reachability::analyze(const Bdd& init,
                                  const std::optional<Bdd>& bad,
                                  unsigned max_iterations) {
  ReachResult result;
  std::vector<Bdd> frontiers{init};
  Bdd reached = init;
  Bdd frontier = init;

  auto build_trace = [&](const Bdd& hit, std::size_t depth) {
    result.property_holds = false;
    std::vector<std::vector<bool>> trace(depth + 1);
    trace[depth] = pick_state(mgr_, layout_, hit);
    for (std::size_t j = depth; j-- > 0;) {
      const Bdd cube = state_cube(mgr_, layout_, trace[j + 1]);
      const Bdd preds =
          mgr_.apply(Op::And, pre_image(cube), frontiers[j]);
      assert(!preds.is_zero());
      trace[j] = pick_state(mgr_, layout_, preds);
    }
    result.counterexample = std::move(trace);
  };

  if (bad.has_value()) {
    const Bdd hit = mgr_.apply(Op::And, init, *bad);
    if (!hit.is_zero()) {
      build_trace(hit, 0);
      result.reachable = std::move(reached);
      return result;
    }
  }

  for (unsigned iter = 0; iter < max_iterations; ++iter) {
    const Bdd img = image(frontier);
    const Bdd fresh = mgr_.apply(Op::Diff, img, reached);
    if (fresh.is_zero()) {
      result.fixpoint = true;
      break;
    }
    ++result.iterations;
    frontiers.push_back(fresh);
    if (bad.has_value()) {
      const Bdd hit = mgr_.apply(Op::And, fresh, *bad);
      if (!hit.is_zero()) {
        build_trace(hit, frontiers.size() - 1);
        reached = mgr_.apply(Op::Or, reached, fresh);
        result.reachable = std::move(reached);
        return result;
      }
    }
    reached = mgr_.apply(Op::Or, reached, fresh);
    frontier = fresh;
  }
  result.reachable = std::move(reached);
  return result;
}

}  // namespace pbdd::mc
