// Boolean operator definitions shared by every construction engine in this
// repository (the depth-first baseline, the partial breadth-first engine, and
// the brute-force truth-table oracle used in tests).
//
// The packages here use plain (non-complemented) edges, as the paper's
// figures do, so "NOT" is not a constant-time operation; it is expressed as
// XOR with the constant one. Terminal simplification therefore only fires
// when the result is immediately available as one of the operands or a
// constant (Section 2.1's "terminal cases").
#pragma once

#include <cstdint>
#include <string_view>

namespace pbdd {

enum class Op : std::uint8_t {
  And = 0,
  Or,
  Xor,
  Nand,
  Nor,
  Xnor,
  Diff,     // f AND NOT g
  Implies,  // NOT f OR g
};

inline constexpr unsigned kNumOps = 8;

[[nodiscard]] constexpr std::string_view op_name(Op op) noexcept {
  switch (op) {
    case Op::And: return "AND";
    case Op::Or: return "OR";
    case Op::Xor: return "XOR";
    case Op::Nand: return "NAND";
    case Op::Nor: return "NOR";
    case Op::Xnor: return "XNOR";
    case Op::Diff: return "DIFF";
    case Op::Implies: return "IMPLIES";
  }
  return "?";
}

[[nodiscard]] constexpr bool op_commutative(Op op) noexcept {
  switch (op) {
    case Op::And:
    case Op::Or:
    case Op::Xor:
    case Op::Nand:
    case Op::Nor:
    case Op::Xnor:
      return true;
    case Op::Diff:
    case Op::Implies:
      return false;
  }
  return false;
}

/// Apply `op` to two boolean constants.
[[nodiscard]] constexpr bool apply_bits(Op op, bool f, bool g) noexcept {
  switch (op) {
    case Op::And: return f && g;
    case Op::Or: return f || g;
    case Op::Xor: return f != g;
    case Op::Nand: return !(f && g);
    case Op::Nor: return !(f || g);
    case Op::Xnor: return f == g;
    case Op::Diff: return f && !g;
    case Op::Implies: return !f || g;
  }
  return false;
}

/// Terminal-case simplification over an engine-agnostic reference type.
///
/// `R` must be an integral reference type where `zero` and `one` are the
/// terminal constants. Returns the simplified result, or `invalid` when the
/// operation is not a terminal case and must be Shannon-expanded. Only rules
/// whose result is an existing reference are applied (no complement edges).
template <typename R>
[[nodiscard]] constexpr R terminal_case(Op op, R f, R g, R zero, R one,
                                        R invalid) noexcept {
  const bool fc = (f == zero || f == one);
  const bool gc = (g == zero || g == one);
  if (fc && gc) {
    return apply_bits(op, f == one, g == one) ? one : zero;
  }
  switch (op) {
    case Op::And:
      if (f == g) return f;
      if (f == zero || g == zero) return zero;
      if (f == one) return g;
      if (g == one) return f;
      break;
    case Op::Or:
      if (f == g) return f;
      if (f == one || g == one) return one;
      if (f == zero) return g;
      if (g == zero) return f;
      break;
    case Op::Xor:
      if (f == g) return zero;
      if (f == zero) return g;
      if (g == zero) return f;
      break;
    case Op::Xnor:
      if (f == g) return one;
      if (f == one) return g;
      if (g == one) return f;
      break;
    case Op::Nand:
      if (f == zero || g == zero) return one;
      break;
    case Op::Nor:
      if (f == one || g == one) return zero;
      break;
    case Op::Diff:  // f AND NOT g
      if (f == g) return zero;
      if (f == zero) return zero;
      if (g == one) return zero;
      if (g == zero) return f;
      break;
    case Op::Implies:  // NOT f OR g
      if (f == g) return one;
      if (f == zero) return one;
      if (g == one) return one;
      if (f == one) return g;
      break;
  }
  return invalid;
}

}  // namespace pbdd
