// Shared per-level codec: the pieces of the snapshot format that serialize
// one variable level, factored out so the out-of-core pager (src/ooc/) and
// the whole-store snapshot writer speak the same encoding.
//
// Two layers live here:
//
//  1. The *chain-structure* codec — unique-table bucket shapes and heads as
//     level-local ids — used verbatim by both the snapshot's full-store mode
//     and spill segments (docs/FORMAT.md).
//
//  2. The *spill segment*: a self-contained, CRC-guarded serialization of a
//     single resident level (node records, recycled-slot lists, chain
//     structure) that LevelPager writes when it demotes the level and reads
//     back on fault. Unlike a snapshot section, child references are stored
//     as raw 64-bit NodeRefs: slots in *other* levels do not move between
//     collections, so no cross-level local-id table is needed — and the
//     collector invalidates every segment anyway (PagerHook contract).
#pragma once

#include <cstdint>
#include <vector>

#include "core/bdd_manager.hpp"
#include "snapshot/format.hpp"

namespace pbdd::snapshot {

/// Full-mode node record: u64 low, u64 high, u32 next-local (docs/FORMAT.md).
inline constexpr std::size_t kFullRecordBytes = 8 + 8 + 4;

// ---- Chain-structure codec (shared with the snapshot writer) ---------------

/// Unique-table chain structure of one level, with bucket heads as
/// level-local dense ids (kNilLocal = empty bucket). Segment-major, the
/// same layout VarUniqueTable::bucket_heads() produces.
struct LevelChains {
  std::vector<std::size_t> seg_buckets;   ///< bucket-array size per segment
  std::vector<std::size_t> seg_counts;    ///< chained-node count per segment
  std::vector<std::uint32_t> head_locals; ///< per-bucket head local ids
};

void encode_chains(ByteWriter& out, const LevelChains& chains);
/// Throws std::runtime_error on malformed input (ByteReader range check).
[[nodiscard]] LevelChains decode_chains(ByteReader& in);
/// Advance past an encoded chain structure without materializing it
/// (import_into: chains are meaningless across managers).
void skip_chains(ByteReader& in);
/// Serialized size in bytes of `chains` (layout precomputation).
[[nodiscard]] std::size_t chains_bytes(const LevelChains& chains);

// ---- Spill segments (out-of-core pager) -------------------------------------

inline constexpr char kSpillMagic[8] = {'P', 'B', 'D', 'D',
                                        'S', 'P', 'I', 'L'};
inline constexpr std::uint32_t kSpillFormatVersion = 1;

struct SpillStats {
  std::uint64_t nodes = 0;  ///< allocated slots serialized (incl. tombstones)
  std::uint64_t bytes = 0;  ///< encoded segment size
};

/// Serialize level `var` of a quiet manager into a self-contained spill
/// segment (header, per-worker slot counts and recycled-slot lists, chain
/// structure, node records, trailing CRC32). Read-only; the caller releases
/// the arenas (truncate(0)) and resets the level's chains afterwards.
[[nodiscard]] SpillStats encode_spill_level(core::BddManager& mgr,
                                            unsigned var,
                                            std::vector<std::uint8_t>& out);

/// Rebuild level `var` from a segment produced by encode_spill_level. The
/// level must be empty (arenas released, chains reset). Validates the CRC,
/// magic, version, and shape *before* touching the manager and throws
/// std::runtime_error on any mismatch, so a corrupt segment never
/// half-applies. Returns the node count restored.
std::uint64_t decode_spill_level(core::BddManager& mgr, unsigned var,
                                 const std::uint8_t* data, std::size_t size);

/// Cheap integrity probe (magic + version + CRC only) used by the prefetch
/// thread to avoid staging a corrupt buffer.
[[nodiscard]] bool spill_payload_ok(const std::uint8_t* data,
                                    std::size_t size) noexcept;

}  // namespace pbdd::snapshot
