// Parallel checkpoint/restore implementation (see snapshot.hpp and
// docs/FORMAT.md for the contracts and the byte-level layout).
//
// Parallelization mirrors the engine's own phase structure: variables are
// dealt round-robin to the manager's worker pool, so a level's section is
// produced (save) or consumed (restore) by exactly one thread, keeping the
// per-(worker, variable) arenas and the per-variable unique tables
// single-writer without any new locks. Cross-level references never block
// restore: the local-id -> NodeRef mapping is arithmetic over the per-level
// worker counts stored in the level directory, known before any node is
// materialized.
#include "snapshot/snapshot.hpp"

#include "snapshot/level_codec.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/node.hpp"
#include "runtime/inject.hpp"
#include "snapshot/format.hpp"
#include "util/crc32.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace pbdd::snapshot {

using core::BddManager;
using core::BddNode;
using core::NodeRef;
using core::TableDiscipline;

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("snapshot: " + what);
}

[[noreturn]] void fail_errno(const std::string& what) {
  fail(what + ": " + std::strerror(errno));
}

struct Fd {
  int fd = -1;
  Fd() = default;
  explicit Fd(int f) : fd(f) {}
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

void pwrite_all(int fd, const void* data, std::size_t size,
                std::uint64_t offset) {
  const auto* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::pwrite(fd, p, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("write");
    }
    p += n;
    size -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

void pread_all(int fd, void* data, std::size_t size, std::uint64_t offset) {
  auto* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::pread(fd, p, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("read");
    }
    if (n == 0) fail("truncated file");
    p += n;
    size -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

[[nodiscard]] std::uint32_t read_u32_at(const std::uint8_t* buf,
                                        std::size_t offset) {
  std::uint32_t v;
  std::memcpy(&v, buf + offset, 4);
  return v;
}

[[nodiscard]] std::uint64_t config_fingerprint(unsigned num_vars,
                                               unsigned workers,
                                               TableDiscipline discipline,
                                               unsigned shards) {
  return util::hash_pair(
      util::hash_pair(num_vars, workers),
      util::hash_pair(static_cast<std::uint64_t>(discipline), shards));
}

constexpr std::size_t kExportRecordBytes = 8 + 8;

// ---- Parsed file metadata ---------------------------------------------------

struct DirEntry {
  std::uint64_t offset = 0;
  std::uint64_t byte_size = 0;
  std::uint32_t node_count = 0;
  std::uint32_t crc = 0;
};

struct FileMeta {
  SnapshotInfo info;
  std::vector<DirEntry> dir;
  /// Per level, per *saved* worker: how many node records that worker
  /// contributed (level-local ids concatenate in this order).
  std::vector<std::vector<std::uint32_t>> saved_counts;
  std::vector<std::pair<std::string, std::uint64_t>> roots;
  [[nodiscard]] bool has_chains() const noexcept {
    return (info.flags & kFlagChains) != 0;
  }
};

[[nodiscard]] std::size_t dir_bytes(unsigned num_vars, unsigned workers) {
  return std::size_t{num_vars} * kDirEntryBytes +
         std::size_t{num_vars} * workers * 4 + 4;
}

SnapshotInfo read_header(int fd, std::uint64_t file_size) {
  if (file_size < kHeaderBytes) fail("truncated header");
  std::uint8_t raw[kHeaderBytes];
  pread_all(fd, raw, sizeof(raw), 0);
  if (util::crc32(raw, kHeaderBytes - 4) !=
      read_u32_at(raw, kHeaderBytes - 4)) {
    fail("header checksum mismatch");
  }
  ByteReader rd(raw, sizeof(raw));
  char magic[8];
  rd.bytes(magic, 8);
  if (std::memcmp(magic, kMagic, 8) != 0) fail("not a snapshot file");
  SnapshotInfo info;
  info.version = rd.u32();
  if (info.version != kFormatVersion) {
    fail("unsupported format version " + std::to_string(info.version));
  }
  info.flags = rd.u32();
  if ((info.flags & ~kKnownFlags) != 0) fail("unknown format flags");
  info.num_vars = rd.u32();
  info.workers = rd.u32();
  const std::uint32_t discipline = rd.u32();
  if (discipline > static_cast<std::uint32_t>(TableDiscipline::kLockFree)) {
    fail("unknown table discipline tag");
  }
  info.discipline = static_cast<TableDiscipline>(discipline);
  info.table_shards = rd.u32();
  info.total_nodes = rd.u64();
  const std::uint64_t root_offset = rd.u64();
  const std::uint64_t root_bytes = rd.u64();
  (void)rd.u64();  // config fingerprint: informational
  if (info.num_vars == 0 || info.num_vars >= core::kTermLevel) {
    fail("bad variable count");
  }
  if (info.workers == 0 || info.workers > 0x3FFFu) fail("bad worker count");
  if (root_offset > file_size || root_bytes > file_size - root_offset) {
    fail("root table out of bounds");
  }
  // Stash the root-table window in the info for read_meta (not part of the
  // public struct fields that matter to callers).
  info.file_bytes = file_size;
  info.root_count = 0;  // filled by read_meta
  return info;
}

FileMeta read_meta(int fd, std::uint64_t file_size) {
  // Re-parse the header here to recover the root-table window (read_header
  // validates it but only returns the public fields).
  std::uint8_t raw[kHeaderBytes];
  pread_all(fd, raw, sizeof(raw), 0);
  FileMeta meta;
  meta.info = read_header(fd, file_size);
  ByteReader hr(raw, sizeof(raw));
  char magic[8];
  hr.bytes(magic, 8);
  for (int i = 0; i < 6; ++i) (void)hr.u32();
  (void)hr.u64();  // total_nodes
  const std::uint64_t root_offset = hr.u64();
  const std::uint64_t root_bytes = hr.u64();

  const unsigned num_vars = meta.info.num_vars;
  const unsigned workers = meta.info.workers;
  const std::size_t dsize = dir_bytes(num_vars, workers);
  if (file_size < kHeaderBytes + dsize) fail("truncated level directory");
  std::vector<std::uint8_t> dbuf(dsize);
  pread_all(fd, dbuf.data(), dsize, kHeaderBytes);
  if (util::crc32(dbuf.data(), dsize - 4) !=
      read_u32_at(dbuf.data(), dsize - 4)) {
    fail("level directory checksum mismatch");
  }
  ByteReader rd(dbuf.data(), dsize);
  meta.dir.resize(num_vars);
  std::uint64_t total = 0;
  for (DirEntry& e : meta.dir) {
    e.offset = rd.u64();
    e.byte_size = rd.u64();
    e.node_count = rd.u32();
    e.crc = rd.u32();
    if (e.offset > file_size || e.byte_size > file_size - e.offset) {
      fail("level section out of bounds");
    }
    total += e.node_count;
  }
  if (total != meta.info.total_nodes) fail("node count mismatch");
  meta.saved_counts.assign(num_vars, {});
  for (unsigned v = 0; v < num_vars; ++v) {
    auto& row = meta.saved_counts[v];
    row.resize(workers);
    std::uint64_t sum = 0;
    for (std::uint32_t& c : row) {
      c = rd.u32();
      sum += c;
    }
    if (sum != meta.dir[v].node_count) fail("worker count matrix mismatch");
  }

  if (root_bytes < 8) fail("root table too small");
  std::vector<std::uint8_t> rbuf(root_bytes);
  pread_all(fd, rbuf.data(), root_bytes, root_offset);
  if (util::crc32(rbuf.data(), root_bytes - 4) !=
      read_u32_at(rbuf.data(), root_bytes - 4)) {
    fail("root table checksum mismatch");
  }
  ByteReader rr(rbuf.data(), root_bytes - 4);
  const std::uint32_t count = rr.u32();
  meta.roots.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint16_t len = rr.u16();
    std::string name(len, '\0');
    rr.bytes(name.data(), len);
    const std::uint64_t ref = rr.u64();
    if (!disk_ref_is_terminal(ref)) {
      const unsigned v = disk_ref_var(ref);
      if (v >= num_vars || disk_ref_local(ref) >= meta.dir[v].node_count) {
        fail("root reference out of bounds");
      }
    }
    meta.roots.emplace_back(std::move(name), ref);
  }
  if (rr.remaining() != 0) fail("trailing bytes in root table");
  meta.info.root_count = count;
  return meta;
}

[[nodiscard]] std::uint64_t file_size_of(int fd) {
  struct stat st{};
  if (::fstat(fd, &st) != 0) fail_errno("stat");
  return static_cast<std::uint64_t>(st.st_size);
}

void rethrow_level_errors(const std::vector<std::string>& errs) {
  for (std::size_t v = 0; v < errs.size(); ++v) {
    if (!errs[v].empty()) {
      fail("level " + std::to_string(v) + ": " + errs[v]);
    }
  }
}

std::string json_common(std::uint64_t bytes, std::uint32_t levels,
                        std::uint64_t nodes, std::uint32_t roots) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\"bytes\":%llu,\"levels\":%u,\"nodes\":%llu,\"roots\":%u",
                static_cast<unsigned long long>(bytes), levels,
                static_cast<unsigned long long>(nodes), roots);
  return buf;
}

double ms(std::uint64_t ns) { return static_cast<double>(ns) * 1e-6; }

}  // namespace

bool SnapshotInfo::export_mode() const noexcept {
  return (flags & kFlagExportRoots) != 0;
}
bool SnapshotInfo::has_chains() const noexcept {
  return (flags & kFlagChains) != 0;
}

std::string SaveStats::to_json() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{%s,\"nonempty_levels\":%u,\"mark_ms\":%.3f,"
                "\"layout_ms\":%.3f,\"write_ms\":%.3f,\"total_ms\":%.3f}",
                json_common(bytes, levels, nodes, roots).c_str(),
                nonempty_levels, ms(mark_ns), ms(layout_ns), ms(write_ns),
                ms(total_ns));
  return buf;
}

std::string RestoreStats::to_json() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{%s,\"ref_preserving\":%s,\"levels_adopted\":%u,"
                "\"read_ms\":%.3f,\"build_ms\":%.3f,\"total_ms\":%.3f}",
                json_common(bytes, levels, nodes, roots).c_str(),
                ref_preserving ? "true" : "false", levels_adopted,
                ms(read_ns), ms(build_ns), ms(total_ns));
  return buf;
}

// ---------------------------------------------------------------------------
// Save
// ---------------------------------------------------------------------------

SaveStats save(BddManager& mgr, const std::string& path,
               const std::vector<NamedRoot>& roots, const SaveOptions& opts) {
  util::WallTimer total;
  util::WallTimer phase;
  SaveStats stats;
  const unsigned num_vars = mgr.num_vars();
  const unsigned workers = mgr.workers();
  const bool export_mode = opts.mode == SaveMode::kExportRoots;
  // The layout and write phases walk every arena directly; nothing may stay
  // on disk in the paging tier while they run.
  mgr.ensure_all_resident();

  std::vector<NodeRef> root_refs;
  root_refs.reserve(roots.size());
  for (const NamedRoot& r : roots) {
    if (!r.bdd.valid() || r.bdd.manager() != &mgr) {
      fail("root '" + r.name + "' does not belong to this manager");
    }
    if (r.name.size() > 0xFFFFu) fail("root name too long: " + r.name);
    root_refs.push_back(r.bdd.ref());
  }

  // --- Mark phase (export mode): standalone GC mark from the roots.
  if (export_mode) mgr.snapshot_mark(root_refs);
  stats.mark_ns = phase.elapsed_ns();
  phase.reset();

  // --- Layout phase: per-(level, worker) included-node counts; in export
  // mode the pool also stashes dense level-local ids in the aux words
  // (mark bit | local, exactly gc_forward's encoding).
  std::vector<std::vector<std::uint32_t>> counts(num_vars);
  for (auto& row : counts) row.assign(workers, 0);
  if (export_mode) {
    mgr.run_on_workers([&](unsigned id) {
      for (unsigned v = id; v < num_vars; v += workers) {
        std::uint32_t local = 0;
        for (unsigned w = 0; w < workers; ++w) {
          const core::NodeArena& arena = mgr.worker(w).node_arena(v);
          const std::uint32_t allocated = arena.size();
          std::uint32_t included = 0;
          for (std::uint32_t s = 0; s < allocated; ++s) {
            BddNode& n = arena.at(s);
            if ((n.aux.load(std::memory_order_relaxed) &
                 BddNode::kMarkBit) == 0) {
              continue;
            }
            n.aux.store(BddNode::kMarkBit | (local + included),
                        std::memory_order_relaxed);
            ++included;
          }
          counts[v][w] = included;
          local += included;
        }
      }
    });
  } else {
    for (unsigned v = 0; v < num_vars; ++v) {
      for (unsigned w = 0; w < workers; ++w) {
        counts[v][w] = mgr.worker(w).node_arena(v).size();
      }
    }
  }

  std::vector<std::vector<std::uint32_t>> prefix(num_vars);
  std::vector<std::uint32_t> level_nodes(num_vars, 0);
  for (unsigned v = 0; v < num_vars; ++v) {
    prefix[v].assign(workers + 1, 0);
    for (unsigned w = 0; w < workers; ++w) {
      prefix[v][w + 1] = prefix[v][w] + counts[v][w];
    }
    level_nodes[v] = prefix[v][workers];
    stats.nodes += level_nodes[v];
    if (level_nodes[v] > 0) ++stats.nonempty_levels;
  }

  // Bucket shapes (full mode serializes the chain structure).
  const TableDiscipline discipline = mgr.config().table_discipline;
  std::vector<std::vector<std::size_t>> seg_buckets(num_vars);
  std::vector<std::vector<std::size_t>> seg_counts(num_vars);
  if (!export_mode) {
    for (unsigned v = 0; v < num_vars; ++v) {
      seg_buckets[v] = mgr.unique(v).segment_bucket_counts();
      seg_counts[v] = mgr.unique(v).segment_node_counts();
    }
  }

  const std::size_t record_bytes =
      export_mode ? kExportRecordBytes : kFullRecordBytes;
  std::vector<DirEntry> dir(num_vars);
  std::uint64_t cursor = kHeaderBytes + dir_bytes(num_vars, workers);
  for (unsigned v = 0; v < num_vars; ++v) {
    std::size_t section = 4;  // var sanity field
    if (!export_mode) {
      std::size_t buckets = 0;
      for (std::size_t b : seg_buckets[v]) buckets += b;
      section += 4 + seg_buckets[v].size() * 16 + buckets * 4;
    }
    section += std::size_t{level_nodes[v]} * record_bytes;
    dir[v].offset = cursor;
    dir[v].byte_size = section;
    dir[v].node_count = level_nodes[v];
    cursor += section;
  }
  const std::uint64_t root_table_offset = cursor;

  // Disk encoding of a reference under this save's local-id assignment.
  auto disk_ref_of = [&](NodeRef r) -> std::uint64_t {
    if (core::is_terminal(r)) return r;
    const unsigned v = core::var_of(r);
    const std::uint32_t local =
        export_mode
            ? static_cast<std::uint32_t>(
                  mgr.node(r).aux.load(std::memory_order_relaxed))
            : prefix[v][core::worker_of(r)] + core::slot_of(r);
    return make_disk_ref(v, local);
  };

  // Root disk refs must be computed before the marks are cleared.
  std::vector<std::uint64_t> root_disk;
  root_disk.reserve(root_refs.size());
  for (const NodeRef r : root_refs) root_disk.push_back(disk_ref_of(r));
  stats.layout_ns = phase.elapsed_ns();
  phase.reset();

  // --- Write phase: one pool worker per group of variables serializes its
  // sections into private buffers and pwrites them at precomputed offsets.
  Fd fd(::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644));
  if (fd.fd < 0) fail_errno("open " + path);
  std::vector<std::string> level_errs(num_vars);
  mgr.run_on_workers([&](unsigned id) {
    for (unsigned v = id; v < num_vars; v += workers) {
      PBDD_INJECT(kSnapshotWrite);
      try {
        ByteWriter out(dir[v].byte_size);
        out.u32(v);
        if (!export_mode) {
          LevelChains chains;
          chains.seg_buckets = seg_buckets[v];
          chains.seg_counts = seg_counts[v];
          const std::vector<NodeRef> heads = mgr.unique(v).bucket_heads();
          chains.head_locals.reserve(heads.size());
          for (const NodeRef head : heads) {
            chains.head_locals.push_back(
                head == core::kZero
                    ? kNilLocal
                    : prefix[v][core::worker_of(head)] +
                          core::slot_of(head));
          }
          encode_chains(out, chains);
        }
        for (unsigned w = 0; w < workers; ++w) {
          const core::NodeArena& arena = mgr.worker(w).node_arena(v);
          const std::uint32_t allocated = arena.size();
          for (std::uint32_t s = 0; s < allocated; ++s) {
            const BddNode& n = arena.at(s);
            if (export_mode) {
              if ((n.aux.load(std::memory_order_relaxed) &
                   BddNode::kMarkBit) == 0) {
                continue;
              }
              out.u64(disk_ref_of(n.low));
              out.u64(disk_ref_of(n.high));
              continue;
            }
            if (n.low == core::kInvalid && n.high == core::kInvalid) {
              // Tombstone (lock-free losing racer): chained nowhere.
              out.u64(kTombstoneField);
              out.u64(kTombstoneField);
              out.u32(kNilLocal);
              continue;
            }
            out.u64(disk_ref_of(n.low));
            out.u64(disk_ref_of(n.high));
            const NodeRef next = n.next.load(std::memory_order_relaxed);
            out.u32(next == core::kZero
                        ? kNilLocal
                        : prefix[v][core::worker_of(next)] +
                              core::slot_of(next));
          }
        }
        if (out.size() != dir[v].byte_size) {
          throw std::runtime_error("section size mismatch (internal)");
        }
        dir[v].crc = util::crc32(out.data().data(), out.size());
        pwrite_all(fd.fd, out.data().data(), out.size(), dir[v].offset);
      } catch (const std::exception& e) {
        level_errs[v] = e.what();
      }
    }
  });
  if (export_mode) mgr.snapshot_clear_marks();
  rethrow_level_errors(level_errs);

  // --- Directory, root table, header (caller thread).
  ByteWriter dout(dir_bytes(num_vars, workers));
  for (const DirEntry& e : dir) {
    dout.u64(e.offset);
    dout.u64(e.byte_size);
    dout.u32(e.node_count);
    dout.u32(e.crc);
  }
  for (unsigned v = 0; v < num_vars; ++v) {
    for (unsigned w = 0; w < workers; ++w) dout.u32(counts[v][w]);
  }
  dout.u32(util::crc32(dout.data().data(), dout.size()));
  pwrite_all(fd.fd, dout.data().data(), dout.size(), kHeaderBytes);

  ByteWriter rout;
  rout.u32(static_cast<std::uint32_t>(roots.size()));
  for (std::size_t i = 0; i < roots.size(); ++i) {
    rout.u16(static_cast<std::uint16_t>(roots[i].name.size()));
    rout.bytes(roots[i].name.data(), roots[i].name.size());
    rout.u64(root_disk[i]);
  }
  rout.u32(util::crc32(rout.data().data(), rout.size()));
  pwrite_all(fd.fd, rout.data().data(), rout.size(), root_table_offset);

  ByteWriter hout(kHeaderBytes);
  hout.bytes(kMagic, 8);
  hout.u32(kFormatVersion);
  hout.u32(export_mode ? kFlagExportRoots : kFlagChains);
  hout.u32(num_vars);
  hout.u32(workers);
  hout.u32(static_cast<std::uint32_t>(discipline));
  hout.u32(mgr.config().table_shards);
  hout.u64(stats.nodes);
  hout.u64(root_table_offset);
  hout.u64(rout.size());
  hout.u64(config_fingerprint(num_vars, workers, discipline,
                              mgr.config().table_shards));
  hout.u32(util::crc32(hout.data().data(), hout.size()));
  pwrite_all(fd.fd, hout.data().data(), hout.size(), 0);

  if (opts.sync && ::fsync(fd.fd) != 0) fail_errno("fsync");

  stats.bytes = root_table_offset + rout.size();
  stats.levels = num_vars;
  stats.roots = static_cast<std::uint32_t>(roots.size());
  stats.write_ns = phase.elapsed_ns();
  stats.total_ns = total.elapsed_ns();
  return stats;
}

// ---------------------------------------------------------------------------
// Restore (fresh manager)
// ---------------------------------------------------------------------------

RestoreResult restore(const std::string& path, core::Config config) {
  util::WallTimer total;
  util::WallTimer phase;
  RestoreResult result;
  RestoreStats& stats = result.stats;

  Fd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (fd.fd < 0) fail_errno("open " + path);
  const std::uint64_t file_size = file_size_of(fd.fd);
  const FileMeta meta = read_meta(fd.fd, file_size);
  stats.read_ns = phase.elapsed_ns();
  phase.reset();

  auto mgr = std::make_unique<BddManager>(meta.info.num_vars, config);
  const unsigned num_vars = meta.info.num_vars;
  const unsigned workers = mgr->workers();
  const bool ref_preserving = workers == meta.info.workers;
  stats.ref_preserving = ref_preserving;

  // Node distribution across the restoring manager's workers. When the
  // worker count matches the saved one, reusing the saved per-worker counts
  // reproduces every NodeRef bit-identically (slots allocate densely in
  // order), which is what validates the stored chains. Otherwise nodes are
  // dealt in contiguous even chunks and everything rehashes.
  std::vector<std::vector<std::uint32_t>> prefix(num_vars);
  for (unsigned v = 0; v < num_vars; ++v) {
    prefix[v].assign(workers + 1, 0);
    if (ref_preserving) {
      for (unsigned w = 0; w < workers; ++w) {
        prefix[v][w + 1] = prefix[v][w] + meta.saved_counts[v][w];
      }
    } else {
      const std::uint32_t n = meta.dir[v].node_count;
      const std::uint32_t base = n / workers;
      const std::uint32_t rem = n % workers;
      for (unsigned w = 0; w < workers; ++w) {
        prefix[v][w + 1] = prefix[v][w] + base + (w < rem ? 1 : 0);
      }
    }
  }
  auto local_to_ref = [&](unsigned v, std::uint32_t local) -> NodeRef {
    unsigned w = 0;
    while (prefix[v][w + 1] <= local) ++w;
    return core::make_node_ref(w, v, local - prefix[v][w]);
  };

  std::vector<std::string> level_errs(num_vars);
  std::atomic<std::uint32_t> adopted{0};
  std::atomic<std::uint64_t> built{0};
  mgr->run_on_workers([&](unsigned id) {
    for (unsigned v = id; v < num_vars; v += workers) {
      PBDD_INJECT(kSnapshotRestore);
      try {
        const DirEntry& e = meta.dir[v];
        std::vector<std::uint8_t> buf(e.byte_size);
        pread_all(fd.fd, buf.data(), buf.size(), e.offset);
        if (util::crc32(buf.data(), buf.size()) != e.crc) {
          throw std::runtime_error("section checksum mismatch");
        }
        ByteReader rd(buf.data(), buf.size());
        if (rd.u32() != v) throw std::runtime_error("level tag mismatch");

        LevelChains chains;
        if (meta.has_chains()) chains = decode_chains(rd);

        // Materialize this level's nodes; slots come out 0..count-1 per
        // worker because the arenas are untouched until now.
        std::uint64_t live = 0;
        for (unsigned w = 0; w < workers; ++w) {
          core::NodeArena& arena = mgr->worker(w).node_arena(v);
          const std::uint32_t n = prefix[v][w + 1] - prefix[v][w];
          for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint64_t dlow = rd.u64();
            const std::uint64_t dhigh = rd.u64();
            const std::uint32_t dnext =
                meta.has_chains() ? rd.u32() : kNilLocal;
            const std::uint32_t slot = arena.alloc();
            BddNode& node = arena.at_own(slot);
            node.aux.store(0, std::memory_order_relaxed);
            if (dlow == kTombstoneField && dhigh == kTombstoneField) {
              node.low = core::kInvalid;
              node.high = core::kInvalid;
              node.next.store(core::kZero, std::memory_order_relaxed);
              continue;
            }
            auto decode = [&](std::uint64_t d) -> NodeRef {
              if (disk_ref_is_terminal(d)) return d;
              const unsigned cv = disk_ref_var(d);
              if (cv >= num_vars || cv <= v ||
                  disk_ref_local(d) >= meta.dir[cv].node_count) {
                throw std::runtime_error("child reference out of bounds");
              }
              return local_to_ref(cv, disk_ref_local(d));
            };
            node.low = decode(dlow);
            node.high = decode(dhigh);
            if (node.low == node.high) {
              throw std::runtime_error("redundant node in snapshot");
            }
            node.next.store(
                dnext == kNilLocal ? core::kZero : local_to_ref(v, dnext),
                std::memory_order_relaxed);
            ++live;
          }
        }
        if (rd.remaining() != 0) {
          throw std::runtime_error("trailing bytes in level section");
        }
        built.fetch_add(live, std::memory_order_relaxed);

        // Unique-table rebuild: adopt the stored chains when the restored
        // references are bit-identical to the saved ones and the table
        // shape still hashes the same way; otherwise presize and rehash.
        core::VarUniqueTable& table = mgr->unique(v);
        bool level_adopted = false;
        if (meta.has_chains() && ref_preserving) {
          std::vector<NodeRef> heads;
          heads.reserve(chains.head_locals.size());
          for (const std::uint32_t h : chains.head_locals) {
            heads.push_back(h == kNilLocal ? core::kZero
                                           : local_to_ref(v, h));
          }
          level_adopted =
              table.adopt_chains(meta.info.discipline, chains.seg_buckets,
                                 chains.seg_counts, heads);
        }
        if (!level_adopted && live > 0) {
          table.reset_chains(live);
          for (unsigned w = 0; w < workers; ++w) {
            core::NodeArena& arena = mgr->worker(w).node_arena(v);
            const std::uint32_t n = arena.size();
            for (std::uint32_t s = 0; s < n; ++s) {
              const BddNode& node = arena.at_own(s);
              if (node.low == core::kInvalid &&
                  node.high == core::kInvalid) {
                continue;
              }
              table.reinsert(w, core::make_node_ref(w, v, s), node.low,
                             node.high);
            }
          }
        }
        if (level_adopted) adopted.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::exception& ex) {
        level_errs[v] = ex.what();
      }
    }
  });
  rethrow_level_errors(level_errs);

  stats.build_ns = phase.elapsed_ns();
  stats.bytes = file_size;
  stats.levels = num_vars;
  stats.nodes = built.load(std::memory_order_relaxed);
  stats.levels_adopted = adopted.load(std::memory_order_relaxed);

  result.roots.reserve(meta.roots.size());
  for (const auto& [name, dref] : meta.roots) {
    const NodeRef r = disk_ref_is_terminal(dref)
                          ? dref
                          : local_to_ref(disk_ref_var(dref),
                                         disk_ref_local(dref));
    result.roots.push_back({name, mgr->make_root(r)});
  }
  stats.roots = static_cast<std::uint32_t>(result.roots.size());
  stats.total_ns = total.elapsed_ns();
  result.manager = std::move(mgr);
  return result;
}

// ---------------------------------------------------------------------------
// Import into a live manager
// ---------------------------------------------------------------------------

std::vector<NamedRoot> import_into(BddManager& mgr, const std::string& path,
                                   RestoreStats* out_stats) {
  util::WallTimer total;
  util::WallTimer phase;
  RestoreStats stats;

  Fd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (fd.fd < 0) fail_errno("open " + path);
  const std::uint64_t file_size = file_size_of(fd.fd);
  const FileMeta meta = read_meta(fd.fd, file_size);
  if (meta.info.num_vars > mgr.num_vars()) {
    fail("snapshot has more variables than the manager");
  }
  stats.read_ns = phase.elapsed_ns();
  phase.reset();

  // Levels stream bottom-up (deepest variable first) so every child is
  // already materialized; nodes go through the normal find-or-insert path,
  // deduplicating against whatever the manager already holds.
  const unsigned num_vars = meta.info.num_vars;
  std::vector<std::vector<NodeRef>> local2ref(num_vars);
  for (unsigned step = 0; step < num_vars; ++step) {
    const unsigned v = num_vars - 1 - step;
    PBDD_INJECT(kSnapshotRestore);
    const DirEntry& e = meta.dir[v];
    std::vector<std::uint8_t> buf(e.byte_size);
    pread_all(fd.fd, buf.data(), buf.size(), e.offset);
    if (util::crc32(buf.data(), buf.size()) != e.crc) {
      fail("level " + std::to_string(v) + ": section checksum mismatch");
    }
    ByteReader rd(buf.data(), buf.size());
    if (rd.u32() != v) fail("level " + std::to_string(v) + ": tag mismatch");
    if (meta.has_chains()) {
      // Chain structure is meaningless across managers; skip it.
      skip_chains(rd);
    }
    local2ref[v].assign(e.node_count, core::kInvalid);
    for (std::uint32_t i = 0; i < e.node_count; ++i) {
      const std::uint64_t dlow = rd.u64();
      const std::uint64_t dhigh = rd.u64();
      if (meta.has_chains()) (void)rd.u32();
      if (dlow == kTombstoneField && dhigh == kTombstoneField) continue;
      auto decode = [&](std::uint64_t d) -> NodeRef {
        if (disk_ref_is_terminal(d)) return d;
        const unsigned cv = disk_ref_var(d);
        if (cv >= num_vars || cv <= v ||
            disk_ref_local(d) >= local2ref[cv].size()) {
          fail("level " + std::to_string(v) + ": child out of bounds");
        }
        const NodeRef r = local2ref[cv][disk_ref_local(d)];
        if (r == core::kInvalid) {
          fail("level " + std::to_string(v) + ": dangling child");
        }
        return r;
      };
      const NodeRef low = decode(dlow);
      const NodeRef high = decode(dhigh);
      if (low == high) fail("level " + std::to_string(v) + ": redundant node");
      local2ref[v][i] = mgr.mk_node(v, low, high);
      ++stats.nodes;
    }
    if (rd.remaining() != 0) {
      fail("level " + std::to_string(v) + ": trailing bytes");
    }
  }
  stats.build_ns = phase.elapsed_ns();

  std::vector<NamedRoot> out;
  out.reserve(meta.roots.size());
  for (const auto& [name, dref] : meta.roots) {
    NodeRef r;
    if (disk_ref_is_terminal(dref)) {
      r = dref;
    } else {
      r = local2ref[disk_ref_var(dref)][disk_ref_local(dref)];
      if (r == core::kInvalid) fail("root '" + name + "' is dangling");
    }
    out.push_back({name, mgr.make_root(r)});
  }
  stats.bytes = file_size;
  stats.levels = num_vars;
  stats.roots = static_cast<std::uint32_t>(out.size());
  stats.total_ns = total.elapsed_ns();
  if (out_stats != nullptr) *out_stats = stats;
  return out;
}

SnapshotInfo inspect(const std::string& path) {
  Fd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (fd.fd < 0) fail_errno("open " + path);
  const std::uint64_t file_size = file_size_of(fd.fd);
  const FileMeta meta = read_meta(fd.fd, file_size);
  return meta.info;
}

std::uint64_t LevelDirectory::meta_bytes() const noexcept {
  return kHeaderBytes + dir_bytes(info.num_vars, info.workers);
}

LevelDirectory inspect_levels(const std::string& path) {
  Fd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (fd.fd < 0) fail_errno("open " + path);
  const std::uint64_t file_size = file_size_of(fd.fd);
  const FileMeta meta = read_meta(fd.fd, file_size);
  LevelDirectory out;
  out.info = meta.info;
  out.levels.reserve(meta.dir.size());
  for (const DirEntry& e : meta.dir) {
    out.levels.push_back({e.offset, e.byte_size, e.node_count, e.crc});
  }
  // Recover the root-table window from the (already CRC-validated) header.
  std::uint8_t raw[kHeaderBytes];
  pread_all(fd.fd, raw, sizeof(raw), 0);
  ByteReader hr(raw, sizeof(raw));
  char magic[8];
  hr.bytes(magic, 8);
  for (int i = 0; i < 6; ++i) (void)hr.u32();
  (void)hr.u64();  // total_nodes
  out.root_table_offset = hr.u64();
  out.root_table_bytes = hr.u64();
  return out;
}

LevelDirectory parse_meta_blob(const std::uint8_t* data, std::size_t size,
                               std::uint64_t file_bytes) {
  if (size < kHeaderBytes) fail("truncated header");
  if (util::crc32(data, kHeaderBytes - 4) !=
      read_u32_at(data, kHeaderBytes - 4)) {
    fail("header checksum mismatch");
  }
  ByteReader rd(data, kHeaderBytes);
  char magic[8];
  rd.bytes(magic, 8);
  if (std::memcmp(magic, kMagic, 8) != 0) fail("not a snapshot meta blob");
  LevelDirectory out;
  SnapshotInfo& info = out.info;
  info.version = rd.u32();
  if (info.version != kFormatVersion) {
    fail("unsupported format version " + std::to_string(info.version));
  }
  info.flags = rd.u32();
  if ((info.flags & ~kKnownFlags) != 0) fail("unknown format flags");
  info.num_vars = rd.u32();
  info.workers = rd.u32();
  const std::uint32_t discipline = rd.u32();
  if (discipline > static_cast<std::uint32_t>(TableDiscipline::kLockFree)) {
    fail("unknown table discipline tag");
  }
  info.discipline = static_cast<TableDiscipline>(discipline);
  info.table_shards = rd.u32();
  info.total_nodes = rd.u64();
  out.root_table_offset = rd.u64();
  out.root_table_bytes = rd.u64();
  if (info.num_vars == 0 || info.num_vars >= core::kTermLevel) {
    fail("bad variable count");
  }
  if (info.workers == 0 || info.workers > 0x3FFFu) fail("bad worker count");
  if (out.root_table_offset > file_bytes ||
      out.root_table_bytes > file_bytes - out.root_table_offset) {
    fail("root table out of bounds");
  }
  info.file_bytes = file_bytes;

  const std::size_t dsize = dir_bytes(info.num_vars, info.workers);
  if (size < kHeaderBytes + dsize) fail("truncated level directory");
  const std::uint8_t* dbuf = data + kHeaderBytes;
  if (util::crc32(dbuf, dsize - 4) != read_u32_at(dbuf, dsize - 4)) {
    fail("level directory checksum mismatch");
  }
  ByteReader dr(dbuf, dsize);
  out.levels.resize(info.num_vars);
  std::uint64_t total = 0;
  for (LevelDirEntry& e : out.levels) {
    e.offset = dr.u64();
    e.byte_size = dr.u64();
    e.node_count = dr.u32();
    e.crc = dr.u32();
    if (e.offset > file_bytes || e.byte_size > file_bytes - e.offset) {
      fail("level section out of bounds");
    }
    total += e.node_count;
  }
  if (total != info.total_nodes) fail("node count mismatch");
  return out;
}

}  // namespace pbdd::snapshot
