// On-disk snapshot format constants and byte-stream helpers.
//
// The authoritative layout description lives in docs/FORMAT.md; this header
// is its executable counterpart. Everything is serialized field-by-field in
// little-endian byte order (no struct dumping), so the format is independent
// of host padding and the reader can validate sizes exactly.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/ref.hpp"

namespace pbdd::snapshot {

inline constexpr char kMagic[8] = {'P', 'B', 'D', 'D', 'S', 'N', 'A', 'P'};
inline constexpr std::uint32_t kFormatVersion = 1;

// Header flags. A reader must reject files carrying flags it does not know.
inline constexpr std::uint32_t kFlagExportRoots = 1u << 0;
inline constexpr std::uint32_t kFlagChains = 1u << 1;
inline constexpr std::uint32_t kKnownFlags = kFlagExportRoots | kFlagChains;

/// Fixed header size in bytes: magic + 6 u32 fields + 3 u64 fields +
/// fingerprint u64 + crc u32.
inline constexpr std::size_t kHeaderBytes = 8 + 6 * 4 + 4 * 8 + 4;

/// Fixed-size part of one level-directory entry: offset u64, byte size u64,
/// node count u32, section crc u32.
inline constexpr std::size_t kDirEntryBytes = 8 + 8 + 4 + 4;

/// "No local id" marker (chain ends, empty bucket heads).
inline constexpr std::uint32_t kNilLocal = 0xFFFFFFFFu;

// ---- Disk reference encoding ------------------------------------------------
// Terminals serialize as themselves (0 and 1). Internal nodes serialize as
// bit 63 | variable << 32 | level-local id, where local ids are dense per
// level: the concatenation, in worker order, of each worker's included
// slots. Tombstoned slots (lock-free losing racers awaiting compaction)
// serialize their fields as kTombstoneField.
inline constexpr std::uint64_t kDiskInternalBit = std::uint64_t{1} << 63;
inline constexpr std::uint64_t kTombstoneField = ~std::uint64_t{0};

[[nodiscard]] constexpr std::uint64_t make_disk_ref(unsigned var,
                                                    std::uint32_t local) {
  return kDiskInternalBit | (std::uint64_t{var} << 32) | local;
}
[[nodiscard]] constexpr bool disk_ref_is_terminal(std::uint64_t r) {
  return r <= core::kOne;
}
[[nodiscard]] constexpr unsigned disk_ref_var(std::uint64_t r) {
  return static_cast<unsigned>((r >> 32) & 0xFFFFu);
}
[[nodiscard]] constexpr std::uint32_t disk_ref_local(std::uint64_t r) {
  return static_cast<std::uint32_t>(r);
}

// ---- Byte-stream helpers ----------------------------------------------------

class ByteWriter {
 public:
  explicit ByteWriter(std::size_t reserve = 0) { buf_.reserve(reserve); }

  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void bytes(const void* data, std::size_t n) { raw(data, n); }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  // Fields are written on little-endian hosts only (static_assert below);
  // a big-endian port would byte-swap here.
  std::vector<std::uint8_t> buf_;
};

static_assert(std::endian::native == std::endian::little,
              "snapshot serialization assumes a little-endian host");

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::uint16_t u16() { return fixed<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return fixed<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return fixed<std::uint64_t>(); }
  void bytes(void* out, std::size_t n) {
    need(n);
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return size_ - pos_;
  }

 private:
  template <typename T>
  [[nodiscard]] T fixed() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw std::runtime_error("snapshot: truncated section");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace pbdd::snapshot
