#include "snapshot/level_codec.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "util/crc32.hpp"

namespace pbdd::snapshot {

using core::BddManager;
using core::BddNode;
using core::NodeRef;

// ---------------------------------------------------------------------------
// Chain-structure codec
// ---------------------------------------------------------------------------

void encode_chains(ByteWriter& out, const LevelChains& chains) {
  out.u32(static_cast<std::uint32_t>(chains.seg_buckets.size()));
  for (std::size_t si = 0; si < chains.seg_buckets.size(); ++si) {
    out.u64(chains.seg_buckets[si]);
    out.u64(chains.seg_counts[si]);
  }
  for (const std::uint32_t h : chains.head_locals) out.u32(h);
}

LevelChains decode_chains(ByteReader& in) {
  LevelChains chains;
  const std::uint32_t segs = in.u32();
  chains.seg_buckets.resize(segs);
  chains.seg_counts.resize(segs);
  std::size_t total_buckets = 0;
  for (std::uint32_t si = 0; si < segs; ++si) {
    chains.seg_buckets[si] = in.u64();
    chains.seg_counts[si] = in.u64();
    total_buckets += chains.seg_buckets[si];
  }
  chains.head_locals.resize(total_buckets);
  for (std::uint32_t& h : chains.head_locals) h = in.u32();
  return chains;
}

void skip_chains(ByteReader& in) {
  const std::uint32_t segs = in.u32();
  std::size_t total_buckets = 0;
  for (std::uint32_t si = 0; si < segs; ++si) {
    total_buckets += in.u64();
    (void)in.u64();
  }
  for (std::size_t i = 0; i < total_buckets; ++i) (void)in.u32();
}

std::size_t chains_bytes(const LevelChains& chains) {
  std::size_t buckets = 0;
  for (const std::size_t b : chains.seg_buckets) buckets += b;
  return 4 + chains.seg_buckets.size() * 16 + buckets * 4;
}

// ---------------------------------------------------------------------------
// Spill segments
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void spill_fail(unsigned var, const std::string& what) {
  throw std::runtime_error("spill segment (level " + std::to_string(var) +
                           "): " + what);
}

/// Level-local dense id of an in-level reference (chain next pointers and
/// bucket heads): prefix over per-worker allocated-slot counts, covering
/// tombstones too so the mapping is invertible without a side table.
std::uint32_t local_of(NodeRef r, const std::vector<std::uint32_t>& prefix) {
  return prefix[core::worker_of(r)] + core::slot_of(r);
}

NodeRef local_to_ref(std::uint32_t local, unsigned var,
                     const std::vector<std::uint32_t>& prefix) {
  unsigned w = 0;
  while (w + 1 < prefix.size() && prefix[w + 1] <= local) ++w;
  return core::make_node_ref(w, var, local - prefix[w]);
}

}  // namespace

SpillStats encode_spill_level(BddManager& mgr, unsigned var,
                              std::vector<std::uint8_t>& out_bytes) {
  const unsigned workers = mgr.workers();
  std::vector<std::uint32_t> prefix(workers + 1, 0);
  for (unsigned w = 0; w < workers; ++w) {
    prefix[w + 1] = prefix[w] + mgr.worker(w).node_arena(var).size();
  }
  const std::uint32_t total = prefix[workers];

  ByteWriter out(64 + std::size_t{total} * kFullRecordBytes);
  out.bytes(kSpillMagic, 8);
  out.u32(kSpillFormatVersion);
  out.u32(var);
  out.u32(workers);
  out.u32(total);
  for (unsigned w = 0; w < workers; ++w) {
    out.u32(mgr.worker(w).node_arena(var).size());
  }
  // Recycled-slot lists, bottom-to-top: alloc() pops from the back, so the
  // order decides slot reuse and must survive the round trip verbatim.
  for (unsigned w = 0; w < workers; ++w) {
    const auto& free_slots = mgr.worker(w).node_arena(var).free_slots();
    out.u32(static_cast<std::uint32_t>(free_slots.size()));
    for (const std::uint32_t s : free_slots) out.u32(s);
  }

  const core::VarUniqueTable& table = mgr.unique(var);
  LevelChains chains;
  chains.seg_buckets = table.segment_bucket_counts();
  chains.seg_counts = table.segment_node_counts();
  const std::vector<NodeRef> heads = table.bucket_heads();
  chains.head_locals.reserve(heads.size());
  for (const NodeRef h : heads) {
    chains.head_locals.push_back(h == core::kZero ? kNilLocal
                                                  : local_of(h, prefix));
  }
  encode_chains(out, chains);

  for (unsigned w = 0; w < workers; ++w) {
    const core::NodeArena& arena = mgr.worker(w).node_arena(var);
    const std::uint32_t allocated = arena.size();
    for (std::uint32_t s = 0; s < allocated; ++s) {
      const BddNode& n = arena.at(s);
      if (n.low == core::kInvalid && n.high == core::kInvalid) {
        out.u64(kTombstoneField);
        out.u64(kTombstoneField);
        out.u32(kNilLocal);
        continue;
      }
      // Raw NodeRefs: children live in other levels, whose slots are stable
      // until the next collection — which discards this segment.
      out.u64(n.low);
      out.u64(n.high);
      const NodeRef next = n.next.load(std::memory_order_relaxed);
      out.u32(next == core::kZero ? kNilLocal : local_of(next, prefix));
    }
  }
  out.u32(util::crc32(out.data().data(), out.size()));

  out_bytes = out.data();
  return SpillStats{total, out_bytes.size()};
}

bool spill_payload_ok(const std::uint8_t* data, std::size_t size) noexcept {
  if (size < 8 + 4 + 4) return false;
  if (std::memcmp(data, kSpillMagic, 8) != 0) return false;
  std::uint32_t version;
  std::memcpy(&version, data + 8, 4);
  if (version != kSpillFormatVersion) return false;
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, data + size - 4, 4);
  return util::crc32(data, size - 4) == stored_crc;
}

std::uint64_t decode_spill_level(BddManager& mgr, unsigned var,
                                 const std::uint8_t* data, std::size_t size) {
  // Validate the envelope before any manager mutation: a corrupt segment
  // must fault loudly, not half-apply.
  if (size < 8 + 4 + 4 + 4) spill_fail(var, "truncated");
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, data + size - 4, 4);
  if (util::crc32(data, size - 4) != stored_crc) {
    spill_fail(var, "checksum mismatch");
  }
  ByteReader in(data, size - 4);
  char magic[8];
  in.bytes(magic, 8);
  if (std::memcmp(magic, kSpillMagic, 8) != 0) spill_fail(var, "bad magic");
  const std::uint32_t version = in.u32();
  if (version != kSpillFormatVersion) {
    spill_fail(var, "format version skew (" + std::to_string(version) +
                        " != " + std::to_string(kSpillFormatVersion) + ")");
  }
  if (in.u32() != var) spill_fail(var, "level tag mismatch");
  const unsigned workers = in.u32();
  if (workers != mgr.workers()) spill_fail(var, "worker count mismatch");
  const std::uint32_t total = in.u32();

  std::vector<std::uint32_t> prefix(workers + 1, 0);
  for (unsigned w = 0; w < workers; ++w) {
    const std::uint32_t n = in.u32();
    prefix[w + 1] = prefix[w] + n;
    if (mgr.worker(w).node_arena(var).size() != 0) {
      spill_fail(var, "level not empty at fault-in");
    }
  }
  if (prefix[workers] != total) spill_fail(var, "slot count mismatch");

  std::vector<std::vector<std::uint32_t>> free_lists(workers);
  for (unsigned w = 0; w < workers; ++w) {
    const std::uint32_t n = in.u32();
    const std::uint32_t allocated = prefix[w + 1] - prefix[w];
    if (n > allocated) spill_fail(var, "free list longer than arena");
    free_lists[w].resize(n);
    for (std::uint32_t& s : free_lists[w]) {
      s = in.u32();
      if (s >= allocated) spill_fail(var, "free slot out of range");
    }
  }

  const LevelChains chains = decode_chains(in);

  // The records region must account for exactly the declared slots.
  if (in.remaining() != std::size_t{total} * kFullRecordBytes) {
    spill_fail(var, "record region size mismatch");
  }

  // --- Mutation starts here; everything above was read-only. -----------------
  std::uint64_t live = 0;
  for (unsigned w = 0; w < workers; ++w) {
    core::NodeArena& arena = mgr.worker(w).node_arena(var);
    const std::uint32_t allocated = prefix[w + 1] - prefix[w];
    for (std::uint32_t i = 0; i < allocated; ++i) {
      const std::uint64_t low = in.u64();
      const std::uint64_t high = in.u64();
      const std::uint32_t next_local = in.u32();
      const std::uint32_t slot = arena.alloc();
      BddNode& node = arena.at_own(slot);
      node.aux.store(0, std::memory_order_relaxed);
      if (low == kTombstoneField && high == kTombstoneField) {
        node.low = core::kInvalid;
        node.high = core::kInvalid;
        node.next.store(core::kZero, std::memory_order_relaxed);
        continue;
      }
      node.low = low;
      node.high = high;
      node.next.store(next_local == kNilLocal
                          ? core::kZero
                          : local_to_ref(next_local, var, prefix),
                      std::memory_order_relaxed);
      ++live;
    }
    arena.restore_free_slots(std::move(free_lists[w]));
  }

  // Chain adoption always succeeds here — same manager, same discipline,
  // same segment count — but keep the rehash fallback for belt and braces.
  core::VarUniqueTable& table = mgr.unique(var);
  std::vector<NodeRef> heads;
  heads.reserve(chains.head_locals.size());
  for (const std::uint32_t h : chains.head_locals) {
    heads.push_back(h == kNilLocal ? core::kZero
                                   : local_to_ref(h, var, prefix));
  }
  if (!table.adopt_chains(mgr.config().table_discipline, chains.seg_buckets,
                          chains.seg_counts, heads)) {
    table.reset_chains(static_cast<std::size_t>(live));
    for (unsigned w = 0; w < workers; ++w) {
      core::NodeArena& arena = mgr.worker(w).node_arena(var);
      const std::uint32_t n = arena.size();
      for (std::uint32_t s = 0; s < n; ++s) {
        const BddNode& node = arena.at_own(s);
        if (node.low == core::kInvalid && node.high == core::kInvalid) {
          continue;
        }
        table.reinsert(w, core::make_node_ref(w, var, s), node.low,
                       node.high);
      }
    }
  }
  return live;
}

}  // namespace pbdd::snapshot
