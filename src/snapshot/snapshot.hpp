// Parallel checkpoint/restore of a BDD store (docs/FORMAT.md).
//
// The paper's per-(worker, variable) node clustering makes a level-ordered
// file the natural disk representation: each variable's nodes serialize as
// one contiguous section with dense level-local ids, sections are written in
// parallel by the manager's own worker pool (variables dealt round-robin,
// like the reduction phase), and restore rebuilds every level concurrently
// because the local-id -> NodeRef mapping is pure arithmetic over the
// per-level worker counts stored in the directory.
//
// Two save modes:
//  * kFullStore — every allocated slot, plus the unique-table bucket
//    structure and chain links. A shape-compatible restore (same worker
//    count, discipline, and segment count) adopts the stored chains without
//    hashing a single node; anything else falls back to rehashing.
//  * kExportRoots — only nodes reachable from the given roots, renumbered
//    dense per level (the GC mark phase run standalone), so snapshots
//    exclude dead nodes. Restore always rehashes.
//
// All entry points follow the manager's external-call contract (one thread
// at a time, no batch in flight) and report failures as std::runtime_error.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/bdd_manager.hpp"

namespace pbdd::snapshot {

/// A root to persist, addressable by name at restore time.
struct NamedRoot {
  std::string name;
  core::Bdd bdd;
};

enum class SaveMode : std::uint8_t {
  kFullStore,
  kExportRoots,
};

struct SaveOptions {
  SaveMode mode = SaveMode::kFullStore;
  /// fsync before closing (periodic service checkpoints leave this off).
  bool sync = false;
};

/// Writer-side counters, one save. to_json emits a flat object (the shape
/// ServiceMetrics and the CLI embed).
struct SaveStats {
  std::uint64_t bytes = 0;
  std::uint32_t levels = 0;          ///< levels written (== num_vars)
  std::uint32_t nonempty_levels = 0;
  std::uint64_t nodes = 0;           ///< node records written
  std::uint32_t roots = 0;
  std::uint64_t mark_ns = 0;    ///< reachability mark (export mode only)
  std::uint64_t layout_ns = 0;  ///< counting, local-id assignment, offsets
  std::uint64_t write_ns = 0;   ///< parallel section serialization + I/O
  std::uint64_t total_ns = 0;

  [[nodiscard]] std::string to_json() const;
};

/// Reader-side counters, one restore/import.
struct RestoreStats {
  std::uint64_t bytes = 0;
  std::uint32_t levels = 0;
  std::uint64_t nodes = 0;  ///< nodes materialized (tombstones excluded)
  std::uint32_t roots = 0;
  bool ref_preserving = false;    ///< restored refs bit-identical to saved
  std::uint32_t levels_adopted = 0;  ///< levels rebuilt without hashing
  std::uint64_t read_ns = 0;   ///< header/directory/root-table validation
  std::uint64_t build_ns = 0;  ///< parallel arena + table rebuild
  std::uint64_t total_ns = 0;

  [[nodiscard]] std::string to_json() const;
};

/// Write a snapshot of `mgr` to `path`. `roots` become the file's root
/// table; in export mode they also select what is saved. Roots must belong
/// to `mgr`. Overwrites `path` atomically enough for our purposes (plain
/// truncate + write; callers wanting crash-safe replacement write to a temp
/// name and rename).
SaveStats save(core::BddManager& mgr, const std::string& path,
               const std::vector<NamedRoot>& roots,
               const SaveOptions& opts = {});

struct RestoreResult {
  std::unique_ptr<core::BddManager> manager;
  std::vector<NamedRoot> roots;  ///< same order as saved
  RestoreStats stats;
};

/// Build a fresh manager from a snapshot. `config` may differ from the
/// saved configuration (worker count, table discipline, shard count); the
/// chain-adoption fast path then degrades to the rehash fallback, and the
/// restored store is re-canonicalized under the new configuration.
RestoreResult restore(const std::string& path, core::Config config = {});

/// Import a snapshot's roots into an existing manager, deduplicating
/// against its live store through the normal find-or-insert path (levels
/// stream bottom-up so children always resolve first). The manager must
/// have at least the snapshot's variable count. Returns the root table as
/// live handles.
std::vector<NamedRoot> import_into(core::BddManager& mgr,
                                   const std::string& path,
                                   RestoreStats* stats = nullptr);

/// Header-only peek (no node data touched beyond validation of the header
/// checksum).
struct SnapshotInfo {
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
  unsigned num_vars = 0;
  unsigned workers = 0;
  core::TableDiscipline discipline = core::TableDiscipline::kPassLock;
  unsigned table_shards = 1;
  std::uint64_t total_nodes = 0;
  std::uint32_t root_count = 0;
  std::uint64_t file_bytes = 0;
  [[nodiscard]] bool export_mode() const noexcept;
  [[nodiscard]] bool has_chains() const noexcept;
};
SnapshotInfo inspect(const std::string& path);

/// One validated level-directory row (docs/FORMAT.md, "Level directory").
/// The per-level CRC column is what makes delta shipping possible: a level
/// whose encoded bytes did not change between two export saves keeps its
/// CRC, so only changed levels need to travel (src/replica/, ROADMAP item 5).
struct LevelDirEntry {
  std::uint64_t offset = 0;     ///< absolute file offset of the section
  std::uint64_t byte_size = 0;  ///< section size in bytes
  std::uint32_t node_count = 0;
  std::uint32_t crc = 0;        ///< CRC-32 of the entire section
};

struct LevelDirectory {
  SnapshotInfo info;
  std::vector<LevelDirEntry> levels;  ///< one per variable, in order
  std::uint64_t root_table_offset = 0;
  std::uint64_t root_table_bytes = 0;
  /// Byte size of header + level directory (the "meta" prefix a delta ship
  /// sends verbatim: everything before the first level section).
  [[nodiscard]] std::uint64_t meta_bytes() const noexcept;
};

/// Parse and CRC-validate the header + level directory + root-table window
/// of a snapshot (no node data touched). The delta shipper's and
/// `pbdd_cli --inspect`'s view of a file.
LevelDirectory inspect_levels(const std::string& path);

/// Same parse, but over an in-memory meta prefix (the first
/// `meta_bytes()` of a file) as shipped by the replication tier before the
/// receiving side has any file to open. `file_bytes` is the size the
/// complete file will have; section and root-table windows are
/// bounds-checked against it. The root table itself is not present in the
/// blob, so `info.root_count` stays 0.
LevelDirectory parse_meta_blob(const std::uint8_t* data, std::size_t size,
                               std::uint64_t file_bytes);

}  // namespace pbdd::snapshot
