// Block-based arena storage.
//
// This is the "specialized memory manager" of the paper (Section 3.1): BDD
// nodes and operator nodes of the same variable are clustered by allocating
// memory in fixed-size blocks and bump-allocating contiguously within each
// block. Slots are stable 32-bit indices (block pointers never move), which
// lets node references be compact packed integers rather than raw pointers —
// essential for the mark-compact collector, which slides live nodes toward
// slot 0 and fixes references by index arithmetic.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace pbdd::util {

/// Fixed-block arena of default-constructible T with stable slot addresses.
///
/// Not internally synchronized: each arena is owned by exactly one worker
/// (the paper's per-process node managers), so allocation needs no locks.
/// Other workers may *read* slots they learned about through the shared
/// unique tables; publication happens via the unique-table lock.
template <typename T, unsigned kLog2BlockSlots = 12>
class BlockArena {
 public:
  static constexpr std::uint32_t kBlockSlots = 1u << kLog2BlockSlots;
  static constexpr std::uint32_t kSlotMask = kBlockSlots - 1;

  BlockArena() = default;
  BlockArena(const BlockArena&) = delete;
  BlockArena& operator=(const BlockArena&) = delete;
  BlockArena(BlockArena&&) noexcept = default;
  BlockArena& operator=(BlockArena&&) noexcept = default;

  /// Allocate one slot (bump allocation). Returns its stable index.
  std::uint32_t alloc() {
    const std::uint32_t slot = size_;
    if ((slot >> kLog2BlockSlots) == blocks_.size()) {
      blocks_.push_back(std::make_unique<Block>());
    }
    ++size_;
    return slot;
  }

  [[nodiscard]] T& at(std::uint32_t slot) noexcept {
    assert(slot < size_);
    return blocks_[slot >> kLog2BlockSlots]->slots[slot & kSlotMask];
  }

  [[nodiscard]] const T& at(std::uint32_t slot) const noexcept {
    assert(slot < size_);
    return blocks_[slot >> kLog2BlockSlots]->slots[slot & kSlotMask];
  }

  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Bytes of backing storage currently held (used for the paper's memory
  /// accounting, Figs. 9/10). Counts whole blocks, matching the paper's
  /// observation that free space inside one process's blocks is not
  /// available to another process.
  [[nodiscard]] std::size_t bytes() const noexcept {
    return blocks_.size() * sizeof(Block);
  }

  /// Shrink the live prefix to `new_size` slots and release now-unused
  /// trailing blocks. Used after sliding compaction: the collector moves
  /// live nodes into the prefix [0, new_size) before calling this.
  void truncate(std::uint32_t new_size) {
    assert(new_size <= size_);
    size_ = new_size;
    const std::size_t blocks_needed =
        (static_cast<std::size_t>(size_) + kBlockSlots - 1) / kBlockSlots;
    blocks_.resize(blocks_needed);
  }

  /// Reset to empty but keep the allocated blocks for reuse. Operator-node
  /// arenas are rewound after every top-level batch: the blocks stay hot and
  /// the retained footprint reflects the peak breadth-first operator-node
  /// overhead the paper's memory numbers account for.
  void rewind() noexcept { size_ = 0; }

  void clear() {
    size_ = 0;
    blocks_.clear();
  }

 private:
  struct Block {
    T slots[kBlockSlots];
  };

  std::vector<std::unique_ptr<Block>> blocks_;
  std::uint32_t size_ = 0;
};

}  // namespace pbdd::util
