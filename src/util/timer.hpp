// Wall-clock timing used by the phase-breakdown instrumentation (Figs. 13/14,
// 16/17, 18/19 of the paper) and by the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace pbdd::util {

/// Nanosecond-count conversions shared by the benchmarks and reports so the
/// 1e-9/1e-6 factors live in one place.
[[nodiscard]] constexpr double ns_to_s(std::uint64_t ns) noexcept {
  return static_cast<double>(ns) * 1e-9;
}

[[nodiscard]] constexpr double ns_to_ms(std::uint64_t ns) noexcept {
  return static_cast<double>(ns) * 1e-6;
}

/// Monotonic wall-clock timer with nanosecond resolution.
class WallTimer {
 public:
  using Clock = std::chrono::steady_clock;

  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] std::uint64_t elapsed_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  [[nodiscard]] double elapsed_s() const noexcept {
    return ns_to_s(elapsed_ns());
  }

 private:
  Clock::time_point start_;
};

/// Accumulates intervals into a caller-owned nanosecond counter. Used for
/// per-phase and per-variable accounting where one aggregate counter is
/// charged from many short intervals (e.g. lock-acquire waits).
class ScopedAccumulate {
 public:
  explicit ScopedAccumulate(std::uint64_t& sink) noexcept : sink_(sink) {}
  ~ScopedAccumulate() { sink_ += timer_.elapsed_ns(); }

  ScopedAccumulate(const ScopedAccumulate&) = delete;
  ScopedAccumulate& operator=(const ScopedAccumulate&) = delete;

 private:
  std::uint64_t& sink_;
  WallTimer timer_;
};

}  // namespace pbdd::util
