// Cache-line utilities: padded per-worker counters and software prefetch.
//
// Two memory-system problems recur across the engine's shared structures:
//
//  * False sharing — per-worker counters packed into one array (the
//    unique tables' lock-wait meters, CAS-retry meters) land on shared
//    cache lines, so a counter bump by one worker invalidates the line
//    under every other worker. PaddedCounter gives each worker its own
//    64-byte line.
//
//  * Demand-miss stalls — the reduction and expansion loops walk linked
//    structures (unique-table chains, operator-node queues) whose next
//    element's address is known one step ahead. prefetch_read/write issue
//    the line fetch early so the walk overlaps the miss latency.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pbdd::util {

/// Size every x86/ARM line-granular structure in this codebase assumes.
/// (std::hardware_destructive_interference_size is 64 on the supported
/// targets but drags in <new> and a GCC ABI warning; a constant is clearer.)
inline constexpr std::size_t kCacheLineBytes = 64;

/// One counter, alone on its cache line. Used for per-worker slots of a
/// shared array where neighbouring workers would otherwise false-share.
struct alignas(kCacheLineBytes) PaddedCounter {
  std::uint64_t value = 0;
};
static_assert(sizeof(PaddedCounter) == kCacheLineBytes);
static_assert(alignof(PaddedCounter) == kCacheLineBytes);

/// Hint the prefetcher at a line we will read soon. No-op on compilers
/// without the builtin; never required for correctness.
inline void prefetch_read(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Hint the prefetcher at a line we will write soon.
inline void prefetch_write(void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace pbdd::util
