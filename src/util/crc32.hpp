// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) for the snapshot
// file format. Table-driven software implementation: snapshot integrity
// checks are bandwidth-bound on the surrounding I/O, not on the checksum,
// so there is no need for hardware CRC intrinsics here.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace pbdd::util {

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();
}  // namespace detail

/// Incremental CRC-32 accumulator; value() may be read at any point.
class Crc32 {
 public:
  void update(const void* data, std::size_t size) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < size; ++i) {
      c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    }
    state_ = c;
  }

  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }

  void reset() noexcept { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a buffer.
[[nodiscard]] inline std::uint32_t crc32(const void* data,
                                         std::size_t size) noexcept {
  Crc32 crc;
  crc.update(data, size);
  return crc.value();
}

}  // namespace pbdd::util
