// Deterministic pseudo-random number generation for tests, workload
// generators, and the random-circuit generator. We avoid std::mt19937 on hot
// paths (large state, slow seeding) and need cross-platform reproducibility,
// which the standard distributions do not guarantee.
#pragma once

#include <cstdint>

#include "util/hash.hpp"

namespace pbdd::util {

/// xoshiro256** by Blackman & Vigna. Seeded via splitmix64 so that any
/// 64-bit seed (including 0) produces a well-mixed state.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    // splitmix64 stream to initialize state; guarantees not-all-zero.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      word = mix64(x);
    }
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). Uses the widening-multiply trick; bias is
  /// negligible for the bounds used here (< 2^32).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform value in [lo, hi] inclusive.
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  constexpr bool coin() noexcept { return (next() >> 63) != 0; }

  /// Probability-p coin, p in [0,1].
  constexpr bool chance(double p) noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace pbdd::util
