// Hashing primitives shared by the unique tables and compute caches.
//
// BDD construction performance is dominated by hash-table behaviour: every
// Shannon-expansion step performs one compute-cache probe and every reduction
// step performs one unique-table probe. The paper's per-variable tables mean
// the variable index never needs to participate in the hash; only the (low,
// high) child pair (unique table) or the (op, f, g) triple (compute cache)
// does.
#pragma once

#include <cstdint>

namespace pbdd::util {

/// Finalizer from splitmix64 / MurmurHash3. Full-avalanche mix of a 64-bit
/// value; cheap enough (3 multiplies) to use on the hot path.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combine two 64-bit keys (e.g. a unique-table (low, high) pair).
constexpr std::uint64_t hash_pair(std::uint64_t a, std::uint64_t b) noexcept {
  // Asymmetric combine: (low, high) and (high, low) must hash differently.
  return mix64(a + 0x9e3779b97f4a7c15ULL * b);
}

/// Combine three keys (e.g. a compute-cache (op, f, g) triple).
constexpr std::uint64_t hash_triple(std::uint64_t a, std::uint64_t b,
                                    std::uint64_t c) noexcept {
  return mix64(a + 0x9e3779b97f4a7c15ULL * b + 0xc2b2ae3d27d4eb4fULL * c);
}

static_assert(mix64(0) == 0, "mix64 maps 0 to 0 (fine: keys are never 0)");
static_assert(hash_pair(1, 2) != hash_pair(2, 1),
              "pair hash must be order-sensitive");

}  // namespace pbdd::util
