// Plain-text table formatting used by the benchmark harnesses to print the
// paper's tables (Figs. 7, 9, 11, 13, 18) and by the examples.
#pragma once

#include <cstddef>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace pbdd::util {

/// Right-aligned fixed-precision table writer. Collects rows of strings and
/// prints with per-column widths. Deliberately tiny: no wrapping, no color.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  TextTable& add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  static std::string num(double v, int precision = 1) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  static std::string num(std::uint64_t v) { return std::to_string(v); }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    print_row(os, header_, width);
    std::string rule;
    for (std::size_t c = 0; c < width.size(); ++c) {
      rule += std::string(width[c], '-');
      if (c + 1 < width.size()) rule += "-+-";
    }
    os << rule << '\n';
    for (const auto& row : rows_) print_row(os, row, width);
  }

 private:
  static void print_row(std::ostream& os, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << std::setw(static_cast<int>(width[c])) << cell;
      if (c + 1 < width.size()) os << " | ";
    }
    os << '\n';
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pbdd::util
