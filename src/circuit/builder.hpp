// Circuit-to-BDD construction.
//
// Builds the BDD of every primary output of a (binarized) circuit. Two
// construction drivers are provided:
//
//  * build_parallel: the paper's workload driver. Gates are batched by
//    topological level — all gates of one level are independent top-level
//    operations issued together (the implicit barrier between batches is
//    where the paper's parallel implementation checks the GC condition).
//
//  * build_sequential<Engine>: a generic single-issue driver usable with
//    any engine exposing var/zero/one/apply (the depth-first baseline, or
//    the core manager in sequential mode).
//
// Both release a gate's BDD handle as soon as its last fanout has been
// built, so dead intermediate functions become collectible mid-run —
// without this, garbage collection (a third of the paper's measurements)
// would never trigger.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "circuit/netlist.hpp"
#include "common/op.hpp"
#include "core/bdd_manager.hpp"

namespace pbdd::circuit {

struct BuildStats {
  std::uint64_t batches = 0;     ///< top-level operation batches issued
  std::uint64_t gate_ops = 0;    ///< two-input gate operations issued
  std::size_t peak_live_handles = 0;
};

/// Tuning knobs for the parallel construction drivers.
struct BuildOptions {
  /// Topological levels per batch. Gates of up to this many consecutive
  /// levels are issued as ONE dependency-carrying batch: in-window fanins
  /// become BatchOp::f_dep/g_dep back references resolved inside the apply
  /// pipeline, so narrow levels no longer drain the worker pool at a
  /// barrier per level. 1 reproduces the classic one-batch-per-level
  /// construction. Dead intermediate handles are released at window
  /// boundaries, so a larger window trades a bounded amount of handle
  /// lifetime (and thus GC eagerness) for barrier-free scheduling.
  std::uint32_t dag_window = 8;
};

/// Map a two-input (or unary) gate type to the engine operator. Not is
/// lowered to XOR with constant one (no complement edges in these packages).
[[nodiscard]] constexpr Op gate_op(GateType t) {
  switch (t) {
    case GateType::And: return Op::And;
    case GateType::Or: return Op::Or;
    case GateType::Nand: return Op::Nand;
    case GateType::Nor: return Op::Nor;
    case GateType::Xor: return Op::Xor;
    case GateType::Xnor: return Op::Xnor;
    case GateType::Not: return Op::Xor;  // with constant one
    default:
      throw std::invalid_argument("gate_op: not an operation gate");
  }
}

/// Parallel level-batched construction on the core engine. `input_vars[i]`
/// is the BDD variable for the circuit's i-th primary input (e.g. from
/// order_dfs). The circuit must be binarized.
std::vector<core::Bdd> build_parallel(core::BddManager& mgr,
                                      const Circuit& circuit,
                                      const std::vector<unsigned>& input_vars,
                                      BuildStats* stats = nullptr,
                                      const BuildOptions& opts = {});

/// Like build_parallel, but retains and returns the BDD of *every* gate,
/// indexed by gate id, instead of only the primary outputs. The fault
/// engine uses these as the golden fence values surrounding a faulty cone
/// (src/fault/), so a fault campaign rebuilds only the transitive fanout of
/// each fault site. Peak memory is proportional to the sum of all gate
/// BDDs — use build_parallel when intermediates are disposable.
std::vector<core::Bdd> build_parallel_all(
    core::BddManager& mgr, const Circuit& circuit,
    const std::vector<unsigned>& input_vars, BuildStats* stats = nullptr,
    const BuildOptions& opts = {});

/// Sequential one-gate-at-a-time construction on any engine with
/// Handle var(unsigned), Handle zero(), Handle one(),
/// Handle apply(Op, const Handle&, const Handle&).
template <typename Engine, typename Handle>
std::vector<Handle> build_sequential(Engine& engine, const Circuit& circuit,
                                     const std::vector<unsigned>& input_vars,
                                     BuildStats* stats = nullptr) {
  if (input_vars.size() != circuit.inputs().size()) {
    throw std::invalid_argument("build: input_vars size mismatch");
  }
  std::vector<Handle> value(circuit.num_gates());
  std::vector<std::uint32_t> uses = circuit.fanout_counts();
  BuildStats local;

  for (std::size_t i = 0; i < circuit.inputs().size(); ++i) {
    value[circuit.inputs()[i]] = engine.var(input_vars[i]);
  }

  auto release_fanins = [&](const Gate& g) {
    for (const std::uint32_t f : g.fanins) {
      if (--uses[f] == 0) value[f] = Handle{};
    }
  };

  for (std::uint32_t id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    switch (g.type) {
      case GateType::Input:
        break;
      case GateType::Const0:
        value[id] = engine.zero();
        break;
      case GateType::Const1:
        value[id] = engine.one();
        break;
      case GateType::Buf:
        value[id] = value[g.fanins[0]];
        release_fanins(g);
        break;
      case GateType::Not:
        value[id] = engine.apply(Op::Xor, value[g.fanins[0]], engine.one());
        ++local.gate_ops;
        release_fanins(g);
        break;
      default: {
        if (g.fanins.size() != 2) {
          throw std::invalid_argument("build: circuit not binarized");
        }
        value[id] = engine.apply(gate_op(g.type), value[g.fanins[0]],
                                 value[g.fanins[1]]);
        ++local.gate_ops;
        ++local.batches;
        release_fanins(g);
        break;
      }
    }
  }
  std::vector<Handle> outputs;
  outputs.reserve(circuit.outputs().size());
  for (const std::uint32_t o : circuit.outputs()) outputs.push_back(value[o]);
  if (stats != nullptr) *stats = local;
  return outputs;
}

}  // namespace pbdd::circuit
