// Variable orderings for circuit-to-BDD construction.
//
// BDD size is extremely sensitive to variable order (Section 2 of the
// paper). The paper uses the ordering produced by SIS's `order_dfs`; this
// module reimplements it: a depth-first traversal from each primary output
// in declaration order, visiting fanins in declaration order, assigning BDD
// variables to primary inputs in first-visit order.
#pragma once

#include <vector>

#include "circuit/netlist.hpp"

namespace pbdd::circuit {

/// order_dfs (SIS): result[i] is the BDD variable assigned to the circuit's
/// i-th primary input. Inputs never reached from any output are appended at
/// the end in declaration order.
[[nodiscard]] std::vector<unsigned> order_dfs(const Circuit& circuit);

/// Declaration order: input i gets variable i. The known-bad baseline for
/// ordering studies.
[[nodiscard]] std::vector<unsigned> order_natural(const Circuit& circuit);

}  // namespace pbdd::circuit
