// Gate-level combinational netlist IR.
//
// The paper's workloads are ISCAS85 circuits (netlists of industrial
// combinational circuits) plus generated multipliers; this module is the
// substrate that represents them: gates with arbitrary fanin, named primary
// inputs/outputs, topological utilities, gate-level simulation (the oracle
// the BDD builders are checked against), and a binarization pass that lowers
// arbitrary-fanin gates to two-input gates for the BDD construction engines.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <string>
#include <unordered_map>
#include <vector>

namespace pbdd::circuit {

enum class GateType : std::uint8_t {
  Input,
  Const0,
  Const1,
  Buf,   // 1 fanin
  Not,   // 1 fanin
  And,   // >= 2 fanins
  Or,
  Nand,
  Nor,
  Xor,   // odd parity over fanins
  Xnor,  // complement of odd parity
};

[[nodiscard]] const char* gate_type_name(GateType t) noexcept;

struct Gate {
  GateType type = GateType::Input;
  std::vector<std::uint32_t> fanins;
  std::string name;  ///< may be empty for internally generated gates
};

/// State element (ISCAS89-style DFF): `q` is a pseudo-input carrying the
/// current state; `d` is the gate computing the next state.
struct Latch {
  std::uint32_t q = 0;
  std::uint32_t d = 0;
};

/// Evaluate one gate given its fanin values.
[[nodiscard]] bool eval_gate(GateType type, const std::vector<bool>& inputs);

class Circuit {
 public:
  explicit Circuit(std::string name = "circuit") : name_(std::move(name)) {}

  // ---- Construction --------------------------------------------------------
  std::uint32_t add_input(std::string name);
  std::uint32_t add_gate(GateType type, std::vector<std::uint32_t> fanins,
                         std::string name = {});
  void mark_output(std::uint32_t gate, std::string name = {});
  /// Register a state element: `q` (must be an input gate) holds the
  /// current state, `d` computes the next state. Called after both exist.
  void add_latch(std::uint32_t q, std::uint32_t d);

  // ---- Access ---------------------------------------------------------------
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  [[nodiscard]] std::size_t num_gates() const noexcept {
    return gates_.size();
  }
  [[nodiscard]] const Gate& gate(std::uint32_t id) const {
    return gates_[id];
  }
  [[nodiscard]] const std::vector<std::uint32_t>& inputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& outputs() const noexcept {
    return outputs_;
  }
  [[nodiscard]] const std::vector<std::string>& output_names()
      const noexcept {
    return output_names_;
  }
  [[nodiscard]] std::optional<std::uint32_t> find(
      const std::string& name) const;
  [[nodiscard]] const std::vector<Latch>& latches() const noexcept {
    return latches_;
  }
  [[nodiscard]] bool is_sequential() const noexcept {
    return !latches_.empty();
  }
  /// Primary (non-latch) input positions within inputs().
  [[nodiscard]] std::vector<std::size_t> free_input_positions() const;

  // ---- Analyses -------------------------------------------------------------
  /// Gate ids in dependency order (fanins before fanouts). Throws
  /// std::runtime_error on a combinational cycle.
  [[nodiscard]] std::vector<std::uint32_t> topological_order() const;

  /// Level of each gate: inputs/constants at 0, otherwise 1 + max fanin
  /// level. Gates at one level are mutually independent — the unit of
  /// top-level-operation batching for the parallel BDD builder.
  [[nodiscard]] std::vector<std::uint32_t> levels() const;

  /// Number of gates that consume each gate's value (output markings count
  /// as one extra use so output BDDs are retained).
  [[nodiscard]] std::vector<std::uint32_t> fanout_counts() const;

  /// Gate-level simulation: the test oracle for the BDD builders. For a
  /// sequential circuit, latch inputs are part of `input_values` (the
  /// current state) like any other input.
  [[nodiscard]] std::vector<bool> simulate(
      const std::vector<bool>& input_values) const;

  /// Sequential step: given per-latch state and free-input values, return
  /// (outputs, next state). Oracle for the symbolic reachability bridge.
  [[nodiscard]] std::pair<std::vector<bool>, std::vector<bool>>
  simulate_step(const std::vector<bool>& state,
                const std::vector<bool>& free_inputs) const;

  /// Lower to 1- and 2-input gates: n-ary AND/OR/XOR become balanced fold
  /// trees (balanced trees expose parallelism and keep intermediate BDDs
  /// small); NAND/NOR/XNOR fold their base operation and negate in the
  /// final gate. Input order, output order, and names are preserved.
  [[nodiscard]] Circuit binarized() const;

  /// Sanity check: fanin counts match gate types, references in range.
  void validate() const;

  /// Series composition: feed `producer`'s outputs into `consumer`'s
  /// inputs. `input_wiring[i]` is the producer output position driving
  /// consumer input i. The result has the producer's inputs and the
  /// consumer's outputs. Both circuits must be combinational.
  static Circuit compose_series(const Circuit& producer,
                                const Circuit& consumer,
                                const std::vector<std::size_t>& input_wiring);

 private:
  std::string name_;
  std::vector<Gate> gates_;
  std::vector<std::uint32_t> inputs_;
  std::vector<std::uint32_t> outputs_;
  std::vector<std::string> output_names_;
  std::vector<Latch> latches_;
  std::unordered_map<std::string, std::uint32_t> by_name_;
};

}  // namespace pbdd::circuit
