#include "circuit/generators.hpp"

#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/bench_io.hpp"
#include "util/prng.hpp"

namespace pbdd::circuit {

namespace {

using Id = std::uint32_t;

struct AdderBits {
  Id sum;
  Id carry;
};

AdderBits half_adder(Circuit& c, Id x, Id y) {
  return {c.add_gate(GateType::Xor, {x, y}),
          c.add_gate(GateType::And, {x, y})};
}

AdderBits full_adder(Circuit& c, Id x, Id y, Id z) {
  const Id s1 = c.add_gate(GateType::Xor, {x, y});
  const Id sum = c.add_gate(GateType::Xor, {s1, z});
  const Id c1 = c.add_gate(GateType::And, {x, y});
  const Id c2 = c.add_gate(GateType::And, {s1, z});
  return {sum, c.add_gate(GateType::Or, {c1, c2})};
}

/// 2:1 mux: sel ? hi : lo.
Id mux(Circuit& c, Id sel, Id lo, Id hi) {
  const Id nsel = c.add_gate(GateType::Not, {sel});
  const Id a = c.add_gate(GateType::And, {sel, hi});
  const Id b = c.add_gate(GateType::And, {nsel, lo});
  return c.add_gate(GateType::Or, {a, b});
}

std::vector<Id> add_input_bus(Circuit& c, const std::string& prefix,
                              unsigned width) {
  std::vector<Id> bus;
  bus.reserve(width);
  for (unsigned i = 0; i < width; ++i) {
    bus.push_back(c.add_input(prefix + std::to_string(i)));
  }
  return bus;
}

/// Ripple chain over existing signals; returns n sum bits and the carry out.
std::vector<Id> ripple_sum(Circuit& c, const std::vector<Id>& a,
                           const std::vector<Id>& b, Id cin, Id& cout) {
  std::vector<Id> sums;
  Id carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const AdderBits fa = full_adder(c, a[i], b[i], carry);
    sums.push_back(fa.sum);
    carry = fa.carry;
  }
  cout = carry;
  return sums;
}

}  // namespace

Circuit multiplier(unsigned n) {
  if (n < 2) throw std::invalid_argument("multiplier: need n >= 2");
  Circuit c("mult-" + std::to_string(n));
  const std::vector<Id> a = add_input_bus(c, "a", n);
  const std::vector<Id> b = add_input_bus(c, "b", n);

  // AND plane of partial products, bucketed by output weight.
  std::vector<std::deque<Id>> columns(2 * n);
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = 0; j < n; ++j) {
      columns[i + j].push_back(c.add_gate(GateType::And, {a[j], b[i]}));
    }
  }

  // Column-wise carry-save reduction (the C6288-style adder array): full
  // adders compress three bits of one weight into one sum bit plus a carry
  // of the next weight, half adders finish off pairs.
  for (unsigned w = 0; w < 2 * n; ++w) {
    auto& col = columns[w];
    while (col.size() >= 3) {
      const Id x = col.front(); col.pop_front();
      const Id y = col.front(); col.pop_front();
      const Id z = col.front(); col.pop_front();
      const AdderBits fa = full_adder(c, x, y, z);
      col.push_back(fa.sum);
      columns[w + 1].push_back(fa.carry);
    }
    if (col.size() == 2) {
      const Id x = col.front(); col.pop_front();
      const Id y = col.front(); col.pop_front();
      const AdderBits ha = half_adder(c, x, y);
      col.push_back(ha.sum);
      columns[w + 1].push_back(ha.carry);
    }
  }
  for (unsigned w = 0; w < 2 * n; ++w) {
    const Id bit = columns[w].empty()
                       ? c.add_gate(GateType::Const0, {})
                       : columns[w].front();
    c.mark_output(bit, "p" + std::to_string(w));
  }
  c.validate();
  return c;
}

Circuit ripple_adder(unsigned n) {
  Circuit c("radd-" + std::to_string(n));
  const std::vector<Id> a = add_input_bus(c, "a", n);
  const std::vector<Id> b = add_input_bus(c, "b", n);
  const Id cin = c.add_input("cin");
  Id cout = cin;
  const std::vector<Id> sums = ripple_sum(c, a, b, cin, cout);
  for (unsigned i = 0; i < n; ++i) {
    c.mark_output(sums[i], "s" + std::to_string(i));
  }
  c.mark_output(cout, "cout");
  c.validate();
  return c;
}

Circuit carry_select_adder(unsigned n, unsigned block) {
  if (block == 0) throw std::invalid_argument("carry_select_adder: block=0");
  Circuit c("csadd-" + std::to_string(n));
  const std::vector<Id> a = add_input_bus(c, "a", n);
  const std::vector<Id> b = add_input_bus(c, "b", n);
  const Id cin = c.add_input("cin");

  std::vector<Id> sums;
  Id carry = cin;
  for (unsigned lo = 0; lo < n; lo += block) {
    const unsigned hi = std::min(lo + block, n);
    const std::vector<Id> ab(a.begin() + lo, a.begin() + hi);
    const std::vector<Id> bb(b.begin() + lo, b.begin() + hi);
    // Both speculative blocks: carry-in fixed to the block's first full
    // adder by folding the constant into half-adder style logic. Simplest
    // faithful construction: propagate x XOR y with the speculative carry.
    std::vector<Id> sum0, sum1;
    Id carry0 = 0, carry1 = 0;
    {
      // carry-in = 0 version
      Id ca = c.add_gate(GateType::And, {ab[0], bb[0]});
      sum0.push_back(c.add_gate(GateType::Xor, {ab[0], bb[0]}));
      for (std::size_t i = 1; i < ab.size(); ++i) {
        const AdderBits fa = full_adder(c, ab[i], bb[i], ca);
        sum0.push_back(fa.sum);
        ca = fa.carry;
      }
      carry0 = ca;
    }
    {
      // carry-in = 1 version
      Id ca = c.add_gate(GateType::Or, {ab[0], bb[0]});
      sum1.push_back(c.add_gate(GateType::Xnor, {ab[0], bb[0]}));
      for (std::size_t i = 1; i < ab.size(); ++i) {
        const AdderBits fa = full_adder(c, ab[i], bb[i], ca);
        sum1.push_back(fa.sum);
        ca = fa.carry;
      }
      carry1 = ca;
    }
    for (std::size_t i = 0; i < sum0.size(); ++i) {
      sums.push_back(mux(c, carry, sum0[i], sum1[i]));
    }
    carry = mux(c, carry, carry0, carry1);
  }
  for (unsigned i = 0; i < n; ++i) {
    c.mark_output(sums[i], "s" + std::to_string(i));
  }
  c.mark_output(carry, "cout");
  c.validate();
  return c;
}

Circuit comparator(unsigned n) {
  Circuit c("cmp-" + std::to_string(n));
  const std::vector<Id> a = add_input_bus(c, "a", n);
  const std::vector<Id> b = add_input_bus(c, "b", n);
  // From LSB upward: lt_i = (!a_i & b_i) | (xnor_i & lt_{i-1}).
  Id lt = c.add_gate(GateType::And,
                     {c.add_gate(GateType::Not, {a[0]}), b[0]});
  Id eq = c.add_gate(GateType::Xnor, {a[0], b[0]});
  for (unsigned i = 1; i < n; ++i) {
    const Id bit_eq = c.add_gate(GateType::Xnor, {a[i], b[i]});
    const Id bit_lt = c.add_gate(GateType::And,
                                 {c.add_gate(GateType::Not, {a[i]}), b[i]});
    lt = c.add_gate(GateType::Or,
                    {bit_lt, c.add_gate(GateType::And, {bit_eq, lt})});
    eq = c.add_gate(GateType::And, {bit_eq, eq});
  }
  const Id gt = c.add_gate(GateType::Nor, {lt, eq});
  c.mark_output(lt, "lt");
  c.mark_output(eq, "eq");
  c.mark_output(gt, "gt");
  c.validate();
  return c;
}

Circuit parity_tree(unsigned n) {
  if (n < 2) throw std::invalid_argument("parity_tree: need n >= 2");
  Circuit c("par-" + std::to_string(n));
  std::vector<Id> bus = add_input_bus(c, "e", n);
  c.mark_output(c.add_gate(GateType::Xor, std::move(bus)), "parity");
  c.validate();
  return c;
}

Circuit alu(unsigned n) {
  Circuit c("alu-" + std::to_string(n));
  const std::vector<Id> a = add_input_bus(c, "a", n);
  const std::vector<Id> b = add_input_bus(c, "b", n);
  const Id cin = c.add_input("cin");
  const std::vector<Id> sel = add_input_bus(c, "sel", 3);

  // Function units.
  Id add_cout = 0;
  const std::vector<Id> sum = ripple_sum(c, a, b, cin, add_cout);
  std::vector<Id> nb;
  for (unsigned i = 0; i < n; ++i) {
    nb.push_back(c.add_gate(GateType::Not, {b[i]}));
  }
  Id sub_cout = 0;
  const std::vector<Id> diff = ripple_sum(c, a, nb, cin, sub_cout);

  // Select-line minterms.
  const Id ns0 = c.add_gate(GateType::Not, {sel[0]});
  const Id ns1 = c.add_gate(GateType::Not, {sel[1]});
  const Id ns2 = c.add_gate(GateType::Not, {sel[2]});
  auto minterm = [&](bool s2, bool s1, bool s0) {
    return c.add_gate(GateType::And, {s2 ? sel[2] : ns2,
                                      c.add_gate(GateType::And,
                                                 {s1 ? sel[1] : ns1,
                                                  s0 ? sel[0] : ns0})});
  };
  const Id m_add = minterm(false, false, false);
  const Id m_sub = minterm(false, false, true);
  const Id m_and = minterm(false, true, false);
  const Id m_or = minterm(false, true, true);
  const Id m_xor = minterm(true, false, false);
  const Id m_nor = minterm(true, false, true);
  const Id m_pass = minterm(true, true, false);
  const Id m_not = minterm(true, true, true);

  std::vector<Id> result;
  for (unsigned i = 0; i < n; ++i) {
    const Id f_and = c.add_gate(GateType::And, {a[i], b[i]});
    const Id f_or = c.add_gate(GateType::Or, {a[i], b[i]});
    const Id f_xor = c.add_gate(GateType::Xor, {a[i], b[i]});
    const Id f_nor = c.add_gate(GateType::Nor, {a[i], b[i]});
    const Id f_not = c.add_gate(GateType::Not, {a[i]});
    const Id r = c.add_gate(
        GateType::Or,
        {c.add_gate(GateType::And, {m_add, sum[i]}),
         c.add_gate(GateType::And, {m_sub, diff[i]}),
         c.add_gate(GateType::And, {m_and, f_and}),
         c.add_gate(GateType::And, {m_or, f_or}),
         c.add_gate(GateType::And, {m_xor, f_xor}),
         c.add_gate(GateType::And, {m_nor, f_nor}),
         c.add_gate(GateType::And, {m_pass, a[i]}),
         c.add_gate(GateType::And, {m_not, f_not})});
    result.push_back(r);
    c.mark_output(r, "r" + std::to_string(i));
  }
  const Id carry_flag =
      c.add_gate(GateType::Or, {c.add_gate(GateType::And, {m_add, add_cout}),
                                c.add_gate(GateType::And, {m_sub, sub_cout})});
  c.mark_output(carry_flag, "carry");
  std::vector<Id> rcopy = result;
  c.mark_output(c.add_gate(GateType::Nor, std::move(rcopy)), "zero");
  c.validate();
  return c;
}

namespace {

/// Merge another circuit's gates into `dst` (fresh inputs, outputs returned).
std::vector<Id> absorb(Circuit& dst, const Circuit& src,
                       const std::string& prefix) {
  std::vector<Id> remap(src.num_gates());
  for (Id id = 0; id < src.num_gates(); ++id) {
    const Gate& g = src.gate(id);
    if (g.type == GateType::Input) {
      remap[id] = dst.add_input(prefix + g.name);
    } else {
      std::vector<Id> fanins;
      for (const Id f : g.fanins) fanins.push_back(remap[f]);
      remap[id] = dst.add_gate(g.type, std::move(fanins));
    }
  }
  std::vector<Id> outs;
  for (const Id o : src.outputs()) outs.push_back(remap[o]);
  return outs;
}

/// Seeded mixing layer: combine signals pairwise with random gate types so
/// the blocks' functions interact (control-logic flavour).
std::vector<Id> mix_layer(Circuit& c, std::vector<Id> signals,
                          unsigned rounds, util::Xoshiro256& rng) {
  static constexpr GateType kTypes[] = {GateType::And, GateType::Or,
                                        GateType::Nand, GateType::Nor,
                                        GateType::Xor, GateType::Xnor};
  for (unsigned r = 0; r < rounds; ++r) {
    std::vector<Id> next;
    for (std::size_t i = 0; i + 1 < signals.size(); i += 2) {
      const GateType t = kTypes[rng.below(std::size(kTypes))];
      next.push_back(c.add_gate(t, {signals[i], signals[i + 1]}));
    }
    if (signals.size() & 1) next.push_back(signals.back());
    signals = std::move(next);
  }
  return signals;
}

}  // namespace

Circuit c2670_like() {
  Circuit c("c2670s");
  util::Xoshiro256 rng(0x2670);
  const std::vector<Id> adder = absorb(c, carry_select_adder(32), "add.");
  const std::vector<Id> cmp = absorb(c, comparator(24), "cmp.");
  const std::vector<Id> par1 = absorb(c, parity_tree(24), "p1.");
  const std::vector<Id> par2 = absorb(c, parity_tree(24), "p2.");
  const std::vector<Id> mul = absorb(c, multiplier(10), "mul.");

  // Expose the arithmetic results directly, ISCAS-style multi-output.
  for (std::size_t i = 0; i < adder.size(); ++i) {
    c.mark_output(adder[i], "sum" + std::to_string(i));
  }
  for (std::size_t i = 0; i < mul.size(); i += 2) {
    c.mark_output(mul[i], "prod" + std::to_string(i));
  }
  // Control outputs: comparator and parity gated into the datapath.
  std::vector<Id> control{cmp[0], cmp[1], cmp[2], par1[0], par2[0]};
  for (std::size_t i = 0; i < adder.size(); i += 4) control.push_back(adder[i]);
  for (std::size_t i = 1; i < mul.size(); i += 5) control.push_back(mul[i]);
  const std::vector<Id> mixed = mix_layer(c, control, 3, rng);
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    c.mark_output(mixed[i], "ctl" + std::to_string(i));
  }
  c.validate();
  return c;
}

Circuit c3540_like() {
  Circuit c("c3540s");
  util::Xoshiro256 rng(0x3540);
  const std::vector<Id> alu_out = absorb(c, alu(16), "alu.");
  const std::vector<Id> cmp = absorb(c, comparator(16), "cmp.");
  const std::vector<Id> mul = absorb(c, multiplier(10), "mul.");
  const std::vector<Id> par = absorb(c, parity_tree(24), "par.");

  for (std::size_t i = 0; i < alu_out.size(); ++i) {
    c.mark_output(alu_out[i], "alu" + std::to_string(i));
  }
  for (std::size_t i = 0; i < mul.size(); i += 2) {
    c.mark_output(mul[i], "prod" + std::to_string(i));
  }
  std::vector<Id> control{cmp[0], cmp[2], par[0]};
  for (std::size_t i = 0; i < alu_out.size(); i += 3) {
    control.push_back(alu_out[i]);
  }
  for (std::size_t i = 1; i < mul.size(); i += 4) control.push_back(mul[i]);
  const std::vector<Id> mixed = mix_layer(c, control, 3, rng);
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    c.mark_output(mixed[i], "ctl" + std::to_string(i));
  }
  c.validate();
  return c;
}

Circuit c2670_big() {
  Circuit c("c2670b");
  util::Xoshiro256 rng(0xb2670);
  const std::vector<Id> adder = absorb(c, carry_select_adder(48), "add.");
  const std::vector<Id> cmp = absorb(c, comparator(32), "cmp.");
  const std::vector<Id> par1 = absorb(c, parity_tree(32), "p1.");
  const std::vector<Id> par2 = absorb(c, parity_tree(32), "p2.");
  const std::vector<Id> mul = absorb(c, multiplier(10), "mul.");
  const std::vector<Id> shf = absorb(c, barrel_shifter(16), "sh.");
  const std::vector<Id> pri = absorb(c, priority_encoder(32), "pe.");

  for (std::size_t i = 0; i < adder.size(); ++i) {
    c.mark_output(adder[i], "sum" + std::to_string(i));
  }
  for (std::size_t i = 0; i < mul.size(); i += 2) {
    c.mark_output(mul[i], "prod" + std::to_string(i));
  }
  for (std::size_t i = 0; i < shf.size(); i += 2) {
    c.mark_output(shf[i], "rot" + std::to_string(i));
  }
  // Deep control spine: every block feeds the mixer, five rounds deep.
  std::vector<Id> control{cmp[0], cmp[1], cmp[2], par1[0], par2[0]};
  control.insert(control.end(), pri.begin(), pri.end());
  for (std::size_t i = 0; i < adder.size(); i += 3) control.push_back(adder[i]);
  for (std::size_t i = 1; i < mul.size(); i += 4) control.push_back(mul[i]);
  for (std::size_t i = 1; i < shf.size(); i += 3) control.push_back(shf[i]);
  const std::vector<Id> mixed = mix_layer(c, control, 5, rng);
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    c.mark_output(mixed[i], "ctl" + std::to_string(i));
  }
  c.validate();
  return c;
}

Circuit random_circuit(unsigned num_inputs, unsigned num_gates,
                       std::uint64_t seed) {
  if (num_inputs < 2) throw std::invalid_argument("random_circuit: inputs<2");
  Circuit c("rand-" + std::to_string(seed));
  util::Xoshiro256 rng(seed);
  std::vector<Id> signals;
  for (unsigned i = 0; i < num_inputs; ++i) {
    signals.push_back(c.add_input("x" + std::to_string(i)));
  }
  static constexpr GateType kTypes[] = {GateType::And, GateType::Or,
                                        GateType::Nand, GateType::Nor,
                                        GateType::Xor, GateType::Xnor,
                                        GateType::Not};
  for (unsigned k = 0; k < num_gates; ++k) {
    const GateType t = kTypes[rng.below(std::size(kTypes))];
    // Bias fanin choice toward recent signals for a deep, narrow DAG.
    auto pick = [&]() -> Id {
      const std::size_t span = std::min<std::size_t>(signals.size(), 24);
      return signals[signals.size() - 1 - rng.below(span)];
    };
    if (t == GateType::Not) {
      signals.push_back(c.add_gate(t, {pick()}));
    } else {
      const unsigned fanin = 2 + static_cast<unsigned>(rng.below(2));
      std::vector<Id> fanins;
      for (unsigned i = 0; i < fanin; ++i) fanins.push_back(pick());
      signals.push_back(c.add_gate(t, std::move(fanins)));
    }
  }
  const auto fanouts = c.fanout_counts();
  unsigned outputs = 0;
  for (Id id = 0; id < c.num_gates(); ++id) {
    if (fanouts[id] == 0 && c.gate(id).type != GateType::Input) {
      c.mark_output(id, "y" + std::to_string(outputs++));
    }
  }
  c.validate();
  return c;
}


namespace {

/// Hamming code geometry for `data_bits` data bits: number of parity bits
/// and the codeword layout (1-indexed positions; parity at powers of two).
struct HammingLayout {
  unsigned parity_bits;
  unsigned codeword_bits;
  std::vector<unsigned> data_position;    // data bit k -> codeword position
  std::vector<unsigned> parity_position;  // parity bit j -> position 2^j

  explicit HammingLayout(unsigned data_bits) {
    parity_bits = 0;
    while ((1u << parity_bits) < data_bits + parity_bits + 1) ++parity_bits;
    codeword_bits = data_bits + parity_bits;
    for (unsigned pos = 1; pos <= codeword_bits; ++pos) {
      if ((pos & (pos - 1)) == 0) {
        parity_position.push_back(pos);
      } else {
        data_position.push_back(pos);
      }
    }
  }
};

}  // namespace

Circuit hamming_encoder(unsigned data_bits) {
  if (data_bits < 1) throw std::invalid_argument("hamming: data_bits >= 1");
  const HammingLayout layout(data_bits);
  Circuit c("henc-" + std::to_string(data_bits));
  const std::vector<Id> d = add_input_bus(c, "d", data_bits);

  // Signal at each codeword position: data bits directly, parity bits as
  // the XOR of the data positions they cover.
  std::vector<Id> at_position(layout.codeword_bits + 1, 0);
  for (unsigned k = 0; k < data_bits; ++k) {
    at_position[layout.data_position[k]] = d[k];
  }
  for (unsigned j = 0; j < layout.parity_bits; ++j) {
    const unsigned pj = layout.parity_position[j];
    std::vector<Id> covered;
    for (unsigned k = 0; k < data_bits; ++k) {
      if (layout.data_position[k] & pj) covered.push_back(d[k]);
    }
    const Id parity = covered.size() == 1
                          ? c.add_gate(GateType::Buf, {covered[0]})
                          : c.add_gate(GateType::Xor, covered);
    at_position[pj] = parity;
  }
  for (unsigned pos = 1; pos <= layout.codeword_bits; ++pos) {
    c.mark_output(at_position[pos], "c" + std::to_string(pos));
  }
  c.validate();
  return c;
}

Circuit hamming_decoder(unsigned data_bits) {
  const HammingLayout layout(data_bits);
  Circuit c("hdec-" + std::to_string(data_bits));
  std::vector<Id> word(layout.codeword_bits + 1, 0);
  for (unsigned pos = 1; pos <= layout.codeword_bits; ++pos) {
    word[pos] = c.add_input("c" + std::to_string(pos));
  }
  // Syndrome bit j = XOR of every position with bit j set (parity
  // included): the syndrome spells the flipped position, 0 = clean.
  std::vector<Id> syndrome;
  for (unsigned j = 0; j < layout.parity_bits; ++j) {
    std::vector<Id> covered;
    for (unsigned pos = 1; pos <= layout.codeword_bits; ++pos) {
      if (pos & (1u << j)) covered.push_back(word[pos]);
    }
    syndrome.push_back(covered.size() == 1
                           ? c.add_gate(GateType::Buf, {covered[0]})
                           : c.add_gate(GateType::Xor, covered));
  }
  std::vector<Id> not_syndrome;
  for (const Id s : syndrome) {
    not_syndrome.push_back(c.add_gate(GateType::Not, {s}));
  }
  // Corrected data bit: flip when the syndrome equals its position.
  for (unsigned k = 0; k < data_bits; ++k) {
    const unsigned pos = layout.data_position[k];
    std::vector<Id> match;
    for (unsigned j = 0; j < layout.parity_bits; ++j) {
      match.push_back((pos >> j) & 1 ? syndrome[j] : not_syndrome[j]);
    }
    const Id here = match.size() == 1
                        ? match[0]
                        : c.add_gate(GateType::And, std::move(match));
    c.mark_output(c.add_gate(GateType::Xor, {word[pos], here}),
                  "d" + std::to_string(k));
  }
  // Any-error flag: OR of the syndrome bits.
  c.mark_output(syndrome.size() == 1
                    ? syndrome[0]
                    : c.add_gate(GateType::Or, std::vector<Id>(syndrome)),
                "err");
  c.validate();
  return c;
}


Circuit barrel_shifter(unsigned width) {
  if (width < 2 || (width & (width - 1)) != 0) {
    throw std::invalid_argument("barrel_shifter: width must be a power of 2");
  }
  unsigned log_w = 0;
  while ((1u << log_w) < width) ++log_w;
  Circuit c("bshift-" + std::to_string(width));
  std::vector<Id> data = add_input_bus(c, "d", width);
  const std::vector<Id> sel = add_input_bus(c, "s", log_w);
  // Logarithmic stages: stage k conditionally rotates left by 2^k.
  for (unsigned k = 0; k < log_w; ++k) {
    const unsigned rot = 1u << k;
    std::vector<Id> next(width);
    for (unsigned i = 0; i < width; ++i) {
      const unsigned src = (i + width - rot) % width;
      next[i] = mux(c, sel[k], data[i], data[src]);
    }
    data = std::move(next);
  }
  for (unsigned i = 0; i < width; ++i) {
    c.mark_output(data[i], "y" + std::to_string(i));
  }
  c.validate();
  return c;
}

Circuit priority_encoder(unsigned n) {
  if (n < 2) throw std::invalid_argument("priority_encoder: n >= 2");
  unsigned idx_bits = 0;
  while ((1u << idx_bits) < n) ++idx_bits;
  Circuit c("prienc-" + std::to_string(n));
  const std::vector<Id> in = add_input_bus(c, "r", n);
  // first_i: input i asserted and no lower-index input asserted.
  std::vector<Id> first;
  Id any_below = in[0];
  first.push_back(in[0]);
  for (unsigned i = 1; i < n; ++i) {
    first.push_back(c.add_gate(GateType::And,
                               {in[i], c.add_gate(GateType::Not,
                                                  {any_below})}));
    any_below = c.add_gate(GateType::Or, {any_below, in[i]});
  }
  for (unsigned b = 0; b < idx_bits; ++b) {
    std::vector<Id> contributors;
    for (unsigned i = 0; i < n; ++i) {
      if (i & (1u << b)) contributors.push_back(first[i]);
    }
    Id bit;
    if (contributors.empty()) {
      bit = c.add_gate(GateType::Const0, {});
    } else if (contributors.size() == 1) {
      bit = c.add_gate(GateType::Buf, {contributors[0]});
    } else {
      bit = c.add_gate(GateType::Or, std::move(contributors));
    }
    c.mark_output(bit, "i" + std::to_string(b));
  }
  c.mark_output(any_below, "valid");
  c.validate();
  return c;
}

Circuit shift_register(unsigned n) {
  if (n < 1) throw std::invalid_argument("shift_register: n >= 1");
  Circuit c("shreg-" + std::to_string(n));
  std::vector<Id> q;
  for (unsigned i = 0; i < n; ++i) {
    q.push_back(c.add_input("q" + std::to_string(i)));
  }
  const Id in = c.add_input("in");
  c.add_latch(q[0], c.add_gate(GateType::Buf, {in}));
  for (unsigned i = 1; i < n; ++i) {
    c.add_latch(q[i], c.add_gate(GateType::Buf, {q[i - 1]}));
  }
  c.mark_output(q[n - 1], "y");
  c.validate();
  return c;
}

Circuit lfsr(unsigned bits, const std::vector<unsigned>& taps) {
  if (bits < 2) throw std::invalid_argument("lfsr: bits >= 2");
  if (taps.empty()) throw std::invalid_argument("lfsr: need taps");
  for (const unsigned t : taps) {
    if (t >= bits) throw std::invalid_argument("lfsr: tap out of range");
  }
  Circuit c("lfsr-" + std::to_string(bits));
  std::vector<Id> q;
  for (unsigned i = 0; i < bits; ++i) {
    q.push_back(c.add_input("q" + std::to_string(i)));
  }
  const Id seed = c.add_input("seed");
  std::vector<Id> tapped;
  for (const unsigned t : taps) tapped.push_back(q[t]);
  const Id feedback = tapped.size() == 1
                          ? tapped[0]
                          : c.add_gate(GateType::Xor, std::move(tapped));
  c.add_latch(q[0], c.add_gate(GateType::Or, {feedback, seed}));
  for (unsigned i = 1; i < bits; ++i) {
    c.add_latch(q[i], c.add_gate(GateType::Buf, {q[i - 1]}));
  }
  c.mark_output(q[bits - 1], "out");
  c.validate();
  return c;
}

Circuit gray_counter(unsigned n) {
  if (n < 2) throw std::invalid_argument("gray_counter: n >= 2");
  Circuit c("gray-" + std::to_string(n));
  std::vector<Id> g;
  for (unsigned i = 0; i < n; ++i) {
    g.push_back(c.add_input("g" + std::to_string(i)));
  }
  const Id enable = c.add_input("en");
  // Gray -> binary (bit n-1 is the MSB): b[i] = XOR(g[i..n-1]).
  std::vector<Id> b(n);
  b[n - 1] = c.add_gate(GateType::Buf, {g[n - 1]});
  for (unsigned i = n - 1; i-- > 0;) {
    b[i] = c.add_gate(GateType::Xor, {g[i], b[i + 1]});
  }
  // binary + enable (ripple increment).
  std::vector<Id> binc(n);
  Id carry = enable;
  for (unsigned i = 0; i < n; ++i) {
    binc[i] = c.add_gate(GateType::Xor, {b[i], carry});
    carry = c.add_gate(GateType::And, {b[i], carry});
  }
  // binary -> Gray: g'[i] = b'[i] XOR b'[i+1].
  for (unsigned i = 0; i < n; ++i) {
    const Id next = i + 1 < n
                        ? c.add_gate(GateType::Xor, {binc[i], binc[i + 1]})
                        : c.add_gate(GateType::Buf, {binc[i]});
    c.add_latch(g[i], next);
    c.mark_output(g[i], "o" + std::to_string(i));
  }
  c.validate();
  return c;
}

Circuit c17() {
  static const char* kC17 = R"(# c17 (ISCAS85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
  return parse_bench_string(kC17, "c17");
}

}  // namespace pbdd::circuit
