#include "circuit/ordering.hpp"

#include <vector>

namespace pbdd::circuit {

std::vector<unsigned> order_dfs(const Circuit& circuit) {
  std::vector<std::uint8_t> visited(circuit.num_gates(), 0);
  // Map gate id -> input position for primary inputs.
  std::vector<unsigned> input_position(circuit.num_gates(), 0);
  for (unsigned i = 0; i < circuit.inputs().size(); ++i) {
    input_position[circuit.inputs()[i]] = i;
  }
  std::vector<unsigned> order(circuit.inputs().size(),
                              static_cast<unsigned>(-1));
  unsigned next_var = 0;

  // Iterative DFS (ISCAS-size circuits are shallow, but generated
  // multipliers at width 14 have ~8000 gate deep recursions worst case).
  std::vector<std::uint32_t> stack;
  for (const std::uint32_t out : circuit.outputs()) {
    if (visited[out]) continue;
    stack.push_back(out);
    while (!stack.empty()) {
      const std::uint32_t id = stack.back();
      stack.pop_back();
      if (visited[id]) continue;
      visited[id] = 1;
      const Gate& g = circuit.gate(id);
      if (g.type == GateType::Input) {
        order[input_position[id]] = next_var++;
        continue;
      }
      // Push fanins in reverse so the first fanin is visited first,
      // matching the recursive definition of order_dfs.
      for (auto it = g.fanins.rbegin(); it != g.fanins.rend(); ++it) {
        if (!visited[*it]) stack.push_back(*it);
      }
    }
  }
  for (unsigned i = 0; i < order.size(); ++i) {
    if (order[i] == static_cast<unsigned>(-1)) order[i] = next_var++;
  }
  return order;
}

std::vector<unsigned> order_natural(const Circuit& circuit) {
  std::vector<unsigned> order(circuit.inputs().size());
  for (unsigned i = 0; i < order.size(); ++i) order[i] = i;
  return order;
}

}  // namespace pbdd::circuit
