// Reader and writer for the ISCAS85 ".bench" netlist format, so the
// benchmark harnesses accept the paper's actual C2670/C3540 netlists when
// the files are available:
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G223)
//   G10 = NAND(G1, G3)
//   G11 = NOT(G10)
//
// Gate definitions may reference signals defined later in the file (common
// in the published ISCAS85 netlists); the parser topologically sorts into
// the Circuit's creation-order invariant. DFF and other sequential elements
// are rejected: this reproduction, like the paper, is combinational.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.hpp"

namespace pbdd::circuit {

/// Parse a .bench netlist. Throws std::runtime_error with a line number on
/// malformed input, unknown gate types, undefined signals, or cycles.
[[nodiscard]] Circuit parse_bench(std::istream& in,
                                  std::string name = "bench");
[[nodiscard]] Circuit parse_bench_string(const std::string& text,
                                         std::string name = "bench");
[[nodiscard]] Circuit parse_bench_file(const std::string& path);

/// Write a circuit in .bench format (round-trips through parse_bench).
void write_bench(std::ostream& out, const Circuit& circuit);
[[nodiscard]] std::string to_bench_string(const Circuit& circuit);

}  // namespace pbdd::circuit
