#include "circuit/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace pbdd::circuit {

const char* gate_type_name(GateType t) noexcept {
  switch (t) {
    case GateType::Input: return "INPUT";
    case GateType::Const0: return "CONST0";
    case GateType::Const1: return "CONST1";
    case GateType::Buf: return "BUF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Or: return "OR";
    case GateType::Nand: return "NAND";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
  }
  return "?";
}

bool eval_gate(GateType type, const std::vector<bool>& inputs) {
  switch (type) {
    case GateType::Input:
      throw std::logic_error("eval_gate on primary input");
    case GateType::Const0: return false;
    case GateType::Const1: return true;
    case GateType::Buf: return inputs.at(0);
    case GateType::Not: return !inputs.at(0);
    case GateType::And:
      return std::all_of(inputs.begin(), inputs.end(),
                         [](bool b) { return b; });
    case GateType::Or:
      return std::any_of(inputs.begin(), inputs.end(),
                         [](bool b) { return b; });
    case GateType::Nand:
      return !std::all_of(inputs.begin(), inputs.end(),
                          [](bool b) { return b; });
    case GateType::Nor:
      return !std::any_of(inputs.begin(), inputs.end(),
                          [](bool b) { return b; });
    case GateType::Xor:
      return (std::count(inputs.begin(), inputs.end(), true) & 1) != 0;
    case GateType::Xnor:
      return (std::count(inputs.begin(), inputs.end(), true) & 1) == 0;
  }
  return false;
}

std::uint32_t Circuit::add_input(std::string name) {
  const auto id = static_cast<std::uint32_t>(gates_.size());
  gates_.push_back(Gate{GateType::Input, {}, name});
  inputs_.push_back(id);
  if (!name.empty()) by_name_.emplace(std::move(name), id);
  return id;
}

std::uint32_t Circuit::add_gate(GateType type,
                                std::vector<std::uint32_t> fanins,
                                std::string name) {
  assert(type != GateType::Input);
  const auto id = static_cast<std::uint32_t>(gates_.size());
  for (const std::uint32_t f : fanins) {
    if (f >= id) throw std::invalid_argument("fanin references later gate");
  }
  gates_.push_back(Gate{type, std::move(fanins), name});
  if (!name.empty()) by_name_.emplace(std::move(name), id);
  return id;
}

void Circuit::mark_output(std::uint32_t gate, std::string name) {
  if (gate >= gates_.size()) throw std::invalid_argument("bad output gate");
  outputs_.push_back(gate);
  output_names_.push_back(name.empty() ? gates_[gate].name
                                       : std::move(name));
}

void Circuit::add_latch(std::uint32_t q, std::uint32_t d) {
  if (q >= gates_.size() || gates_[q].type != GateType::Input) {
    throw std::invalid_argument("add_latch: q must be an input gate");
  }
  if (d >= gates_.size()) throw std::invalid_argument("add_latch: bad d");
  latches_.push_back(Latch{q, d});
}

std::vector<std::size_t> Circuit::free_input_positions() const {
  std::vector<bool> is_latch(gates_.size(), false);
  for (const Latch& latch : latches_) is_latch[latch.q] = true;
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    if (!is_latch[inputs_[i]]) positions.push_back(i);
  }
  return positions;
}

std::pair<std::vector<bool>, std::vector<bool>> Circuit::simulate_step(
    const std::vector<bool>& state,
    const std::vector<bool>& free_inputs) const {
  if (state.size() != latches_.size()) {
    throw std::invalid_argument("simulate_step: wrong state size");
  }
  const std::vector<std::size_t> free_positions = free_input_positions();
  if (free_inputs.size() != free_positions.size()) {
    throw std::invalid_argument("simulate_step: wrong free-input count");
  }
  // Assemble the full input vector: latch q positions carry the state.
  std::vector<bool> inputs(inputs_.size(), false);
  {
    std::unordered_map<std::uint32_t, std::size_t> position_of;
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
      position_of[inputs_[i]] = i;
    }
    for (std::size_t k = 0; k < latches_.size(); ++k) {
      inputs[position_of.at(latches_[k].q)] = state[k];
    }
  }
  for (std::size_t j = 0; j < free_positions.size(); ++j) {
    inputs[free_positions[j]] = free_inputs[j];
  }
  // One combinational evaluation yields outputs and all next-state values.
  std::vector<bool> value(gates_.size(), false);
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    value[inputs_[i]] = inputs[i];
  }
  std::vector<bool> fanin_values;
  for (std::uint32_t id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    if (g.type == GateType::Input) continue;
    fanin_values.clear();
    for (const std::uint32_t f : g.fanins) fanin_values.push_back(value[f]);
    value[id] = eval_gate(g.type, fanin_values);
  }
  std::vector<bool> outputs;
  for (const std::uint32_t o : outputs_) outputs.push_back(value[o]);
  std::vector<bool> next_state;
  for (const Latch& latch : latches_) next_state.push_back(value[latch.d]);
  return {std::move(outputs), std::move(next_state)};
}

std::optional<std::uint32_t> Circuit::find(const std::string& name) const {
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    return it->second;
  }
  return std::nullopt;
}

std::vector<std::uint32_t> Circuit::topological_order() const {
  // Gates are created fanins-first (add_gate enforces it), so identity
  // order is already topological. Kept as a function for parser-produced
  // circuits, which are remapped into creation order by the parser.
  std::vector<std::uint32_t> order(gates_.size());
  for (std::uint32_t i = 0; i < gates_.size(); ++i) order[i] = i;
  return order;
}

std::vector<std::uint32_t> Circuit::levels() const {
  std::vector<std::uint32_t> level(gates_.size(), 0);
  for (std::uint32_t id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    std::uint32_t max_in = 0;
    for (const std::uint32_t f : g.fanins) {
      max_in = std::max(max_in, level[f] + 1);
    }
    level[id] = max_in;
  }
  return level;
}

std::vector<std::uint32_t> Circuit::fanout_counts() const {
  std::vector<std::uint32_t> count(gates_.size(), 0);
  for (const Gate& g : gates_) {
    for (const std::uint32_t f : g.fanins) ++count[f];
  }
  for (const std::uint32_t o : outputs_) ++count[o];
  return count;
}

std::vector<bool> Circuit::simulate(
    const std::vector<bool>& input_values) const {
  if (input_values.size() != inputs_.size()) {
    throw std::invalid_argument("simulate: wrong input vector size");
  }
  std::vector<bool> value(gates_.size(), false);
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    value[inputs_[i]] = input_values[i];
  }
  std::vector<bool> fanin_values;
  for (std::uint32_t id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    if (g.type == GateType::Input) continue;
    fanin_values.clear();
    for (const std::uint32_t f : g.fanins) fanin_values.push_back(value[f]);
    value[id] = eval_gate(g.type, fanin_values);
  }
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (const std::uint32_t o : outputs_) out.push_back(value[o]);
  return out;
}

namespace {

GateType base_fold_type(GateType t) {
  switch (t) {
    case GateType::And:
    case GateType::Nand:
      return GateType::And;
    case GateType::Or:
    case GateType::Nor:
      return GateType::Or;
    case GateType::Xor:
    case GateType::Xnor:
      return GateType::Xor;
    default:
      return t;
  }
}

bool is_negated(GateType t) {
  return t == GateType::Nand || t == GateType::Nor || t == GateType::Xnor;
}

GateType negated_of(GateType base) {
  switch (base) {
    case GateType::And: return GateType::Nand;
    case GateType::Or: return GateType::Nor;
    case GateType::Xor: return GateType::Xnor;
    default: throw std::logic_error("negated_of: not a foldable type");
  }
}

}  // namespace

Circuit Circuit::binarized() const {
  Circuit out(name_ + ".bin");
  std::vector<std::uint32_t> remap(gates_.size(), 0);
  for (std::uint32_t id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    if (g.type == GateType::Input) {
      remap[id] = out.add_input(g.name);
      continue;
    }
    if (g.fanins.size() <= 2) {
      std::vector<std::uint32_t> fanins;
      for (const std::uint32_t f : g.fanins) fanins.push_back(remap[f]);
      remap[id] = out.add_gate(g.type, std::move(fanins), g.name);
      continue;
    }
    // Balanced fold of the base operation; negation (if any) is applied by
    // the final combining gate so no extra inverter is needed.
    const GateType base = base_fold_type(g.type);
    std::vector<std::uint32_t> layer;
    for (const std::uint32_t f : g.fanins) layer.push_back(remap[f]);
    while (layer.size() > 2) {
      std::vector<std::uint32_t> next;
      for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
        next.push_back(out.add_gate(base, {layer[i], layer[i + 1]}));
      }
      if (layer.size() & 1) next.push_back(layer.back());
      layer = std::move(next);
    }
    const GateType final_type = is_negated(g.type) ? negated_of(base) : base;
    remap[id] = out.add_gate(final_type, {layer[0], layer[1]}, g.name);
  }
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    out.mark_output(remap[outputs_[i]], output_names_[i]);
  }
  for (const Latch& latch : latches_) {
    out.add_latch(remap[latch.q], remap[latch.d]);
  }
  return out;
}

Circuit Circuit::compose_series(const Circuit& producer,
                                const Circuit& consumer,
                                const std::vector<std::size_t>& input_wiring) {
  if (producer.is_sequential() || consumer.is_sequential()) {
    throw std::invalid_argument("compose_series: combinational only");
  }
  if (input_wiring.size() != consumer.inputs().size()) {
    throw std::invalid_argument("compose_series: wiring size mismatch");
  }
  for (const std::size_t w : input_wiring) {
    if (w >= producer.outputs().size()) {
      throw std::invalid_argument("compose_series: wiring out of range");
    }
  }
  Circuit out(producer.name() + ">" + consumer.name());
  // Copy the producer verbatim.
  std::vector<std::uint32_t> p_remap(producer.num_gates());
  for (std::uint32_t id = 0; id < producer.num_gates(); ++id) {
    const Gate& g = producer.gates_[id];
    if (g.type == GateType::Input) {
      p_remap[id] = out.add_input(g.name);
    } else {
      std::vector<std::uint32_t> fanins;
      for (const std::uint32_t f : g.fanins) fanins.push_back(p_remap[f]);
      p_remap[id] = out.add_gate(g.type, std::move(fanins));
    }
  }
  // Copy the consumer with its inputs replaced by producer outputs.
  std::vector<std::uint32_t> c_remap(consumer.num_gates());
  {
    std::unordered_map<std::uint32_t, std::size_t> input_position;
    for (std::size_t i = 0; i < consumer.inputs().size(); ++i) {
      input_position.emplace(consumer.inputs()[i], i);
    }
    for (std::uint32_t id = 0; id < consumer.num_gates(); ++id) {
      const Gate& g = consumer.gates_[id];
      if (g.type == GateType::Input) {
        const std::size_t pos = input_position.at(id);
        c_remap[id] = p_remap[producer.outputs()[input_wiring[pos]]];
      } else {
        std::vector<std::uint32_t> fanins;
        for (const std::uint32_t f : g.fanins) fanins.push_back(c_remap[f]);
        c_remap[id] = out.add_gate(g.type, std::move(fanins));
      }
    }
  }
  for (std::size_t i = 0; i < consumer.outputs().size(); ++i) {
    out.mark_output(c_remap[consumer.outputs()[i]],
                    consumer.output_names_[i]);
  }
  out.validate();
  return out;
}

void Circuit::validate() const {
  for (std::uint32_t id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    for (const std::uint32_t f : g.fanins) {
      if (f >= id) throw std::logic_error("fanin ordering violated");
    }
    switch (g.type) {
      case GateType::Input:
      case GateType::Const0:
      case GateType::Const1:
        if (!g.fanins.empty()) throw std::logic_error("leaf with fanins");
        break;
      case GateType::Buf:
      case GateType::Not:
        if (g.fanins.size() != 1) throw std::logic_error("bad unary gate");
        break;
      default:
        if (g.fanins.size() < 2) throw std::logic_error("bad n-ary gate");
        break;
    }
  }
  for (const std::uint32_t o : outputs_) {
    if (o >= gates_.size()) throw std::logic_error("bad output");
  }
}

}  // namespace pbdd::circuit
