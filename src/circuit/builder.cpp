#include "circuit/builder.hpp"

#include <algorithm>

namespace pbdd::circuit {

namespace {

// Shared level-batched construction core. Returns the value of every gate;
// when `release_dead` is set, a gate's handle is dropped as soon as its last
// fanout has been built (outputs carry an extra use from fanout_counts, so
// they survive).
std::vector<core::Bdd> build_levels(core::BddManager& mgr,
                                    const Circuit& circuit,
                                    const std::vector<unsigned>& input_vars,
                                    BuildStats* stats, bool release_dead) {
  using core::Bdd;
  if (input_vars.size() != circuit.inputs().size()) {
    throw std::invalid_argument("build: input_vars size mismatch");
  }
  const std::vector<std::uint32_t> level = circuit.levels();
  const std::uint32_t max_level =
      level.empty() ? 0 : *std::max_element(level.begin(), level.end());

  // Bucket gates by level; all gates of one level are independent and form
  // one top-level operation batch.
  std::vector<std::vector<std::uint32_t>> by_level(max_level + 1);
  for (std::uint32_t id = 0; id < circuit.num_gates(); ++id) {
    by_level[level[id]].push_back(id);
  }

  std::vector<Bdd> value(circuit.num_gates());
  std::vector<std::uint32_t> uses = circuit.fanout_counts();
  BuildStats local;
  const Bdd one = mgr.one();

  auto live_handles = [&] {
    return static_cast<std::size_t>(
        std::count_if(value.begin(), value.end(),
                      [](const Bdd& b) { return b.valid(); }));
  };

  for (std::uint32_t lvl = 0; lvl <= max_level; ++lvl) {
    std::vector<core::BatchOp> batch;
    std::vector<std::uint32_t> batch_gates;
    for (const std::uint32_t id : by_level[lvl]) {
      const Gate& g = circuit.gate(id);
      switch (g.type) {
        case GateType::Input: {
          const auto pos = static_cast<std::size_t>(
              std::find(circuit.inputs().begin(), circuit.inputs().end(),
                        id) -
              circuit.inputs().begin());
          value[id] = mgr.var(input_vars[pos]);
          break;
        }
        case GateType::Const0:
          value[id] = mgr.zero();
          break;
        case GateType::Const1:
          value[id] = mgr.one();
          break;
        case GateType::Buf:
          value[id] = value[g.fanins[0]];
          break;
        case GateType::Not:
          batch.push_back(core::BatchOp{Op::Xor, value[g.fanins[0]], one});
          batch_gates.push_back(id);
          break;
        default:
          if (g.fanins.size() != 2) {
            throw std::invalid_argument("build: circuit not binarized");
          }
          batch.push_back(core::BatchOp{gate_op(g.type), value[g.fanins[0]],
                                        value[g.fanins[1]]});
          batch_gates.push_back(id);
          break;
      }
    }
    if (!batch.empty()) {
      std::vector<Bdd> results = mgr.apply_batch(batch);
      for (std::size_t k = 0; k < batch_gates.size(); ++k) {
        value[batch_gates[k]] = std::move(results[k]);
      }
      ++local.batches;
      local.gate_ops += batch.size();
    }
    if (release_dead) {
      // Release fanins whose last consumer has now been built.
      for (const std::uint32_t id : by_level[lvl]) {
        for (const std::uint32_t f : circuit.gate(id).fanins) {
          if (--uses[f] == 0) value[f] = Bdd{};
        }
      }
    }
    local.peak_live_handles =
        std::max(local.peak_live_handles, live_handles());
  }

  if (stats != nullptr) *stats = local;
  return value;
}

}  // namespace

std::vector<core::Bdd> build_parallel(core::BddManager& mgr,
                                      const Circuit& circuit,
                                      const std::vector<unsigned>& input_vars,
                                      BuildStats* stats) {
  std::vector<core::Bdd> value =
      build_levels(mgr, circuit, input_vars, stats, /*release_dead=*/true);
  std::vector<core::Bdd> outputs;
  outputs.reserve(circuit.outputs().size());
  // Copy, not move: a gate may be marked as more than one output.
  for (const std::uint32_t o : circuit.outputs()) outputs.push_back(value[o]);
  return outputs;
}

std::vector<core::Bdd> build_parallel_all(
    core::BddManager& mgr, const Circuit& circuit,
    const std::vector<unsigned>& input_vars, BuildStats* stats) {
  return build_levels(mgr, circuit, input_vars, stats,
                      /*release_dead=*/false);
}

}  // namespace pbdd::circuit
