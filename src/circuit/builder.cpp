#include "circuit/builder.hpp"

#include <algorithm>

namespace pbdd::circuit {

namespace {

// Shared construction core. Gates are processed in windows of
// `opts.dag_window` consecutive topological levels; each window's operation
// gates go out as ONE dependency-carrying batch, with in-window fanins
// expressed as BatchOp dep back references instead of materialized handles.
// A window of 1 is the classic one-batch-per-level construction with its
// barrier between every level. Returns the value of every gate; when
// `release_dead` is set, a gate's handle is dropped at the first window
// boundary after its last fanout has been built (outputs carry an extra use
// from fanout_counts, so they survive).
std::vector<core::Bdd> build_levels(core::BddManager& mgr,
                                    const Circuit& circuit,
                                    const std::vector<unsigned>& input_vars,
                                    BuildStats* stats, bool release_dead,
                                    const BuildOptions& opts) {
  using core::Bdd;
  if (input_vars.size() != circuit.inputs().size()) {
    throw std::invalid_argument("build: input_vars size mismatch");
  }
  const std::uint32_t window = std::max<std::uint32_t>(1, opts.dag_window);
  const std::vector<std::uint32_t> level = circuit.levels();
  const std::uint32_t max_level =
      level.empty() ? 0 : *std::max_element(level.begin(), level.end());

  // Bucket gates by level; gates of one level are mutually independent.
  std::vector<std::vector<std::uint32_t>> by_level(max_level + 1);
  for (std::uint32_t id = 0; id < circuit.num_gates(); ++id) {
    by_level[level[id]].push_back(id);
  }

  std::vector<Bdd> value(circuit.num_gates());
  std::vector<std::uint32_t> uses = circuit.fanout_counts();
  // Batch item producing each in-window gate (-1 = materialized in value).
  // Buf gates alias their source's item, so chains collapse to one dep.
  std::vector<std::int32_t> item_of(circuit.num_gates(), -1);
  BuildStats local;
  const Bdd one = mgr.one();

  auto live_handles = [&] {
    return static_cast<std::size_t>(
        std::count_if(value.begin(), value.end(),
                      [](const Bdd& b) { return b.valid(); }));
  };

  for (std::uint32_t w0 = 0; w0 <= max_level; w0 += window) {
    const std::uint32_t w1 = std::min<std::uint32_t>(max_level, w0 + window - 1);
    std::vector<core::BatchOp> batch;
    std::vector<std::uint32_t> batch_gates;
    // Operand for a fanin: a dep on the in-window item producing it, or its
    // materialized handle from an earlier window.
    auto fanin_op = [&](std::uint32_t f, Bdd& h) -> std::int32_t {
      if (item_of[f] >= 0) return item_of[f];
      h = value[f];
      return -1;
    };
    for (std::uint32_t lvl = w0; lvl <= w1; ++lvl) {
      for (const std::uint32_t id : by_level[lvl]) {
        const Gate& g = circuit.gate(id);
        switch (g.type) {
          case GateType::Input: {
            const auto pos = static_cast<std::size_t>(
                std::find(circuit.inputs().begin(), circuit.inputs().end(),
                          id) -
                circuit.inputs().begin());
            value[id] = mgr.var(input_vars[pos]);
            break;
          }
          case GateType::Const0:
            value[id] = mgr.zero();
            break;
          case GateType::Const1:
            value[id] = mgr.one();
            break;
          case GateType::Buf:
            if (item_of[g.fanins[0]] >= 0) {
              item_of[id] = item_of[g.fanins[0]];
            } else {
              value[id] = value[g.fanins[0]];
            }
            break;
          case GateType::Not: {
            core::BatchOp op{Op::Xor, Bdd{}, one, -1, -1};
            op.f_dep = fanin_op(g.fanins[0], op.f);
            item_of[id] = static_cast<std::int32_t>(batch.size());
            batch.push_back(std::move(op));
            batch_gates.push_back(id);
            break;
          }
          default: {
            if (g.fanins.size() != 2) {
              throw std::invalid_argument("build: circuit not binarized");
            }
            core::BatchOp op{gate_op(g.type), Bdd{}, Bdd{}, -1, -1};
            op.f_dep = fanin_op(g.fanins[0], op.f);
            op.g_dep = fanin_op(g.fanins[1], op.g);
            item_of[id] = static_cast<std::int32_t>(batch.size());
            batch.push_back(std::move(op));
            batch_gates.push_back(id);
            break;
          }
        }
      }
    }
    if (!batch.empty()) {
      std::vector<Bdd> results = mgr.apply_batch(batch);
      for (std::size_t k = 0; k < batch_gates.size(); ++k) {
        value[batch_gates[k]] = std::move(results[k]);
      }
      ++local.batches;
      local.gate_ops += batch.size();
    }
    // Materialize Buf aliases of in-window items, then clear the item map
    // for the next window (only window gates were touched).
    for (std::uint32_t lvl = w0; lvl <= w1; ++lvl) {
      for (const std::uint32_t id : by_level[lvl]) {
        if (circuit.gate(id).type == GateType::Buf && item_of[id] >= 0) {
          value[id] = value[circuit.gate(id).fanins[0]];
        }
        item_of[id] = -1;
      }
    }
    if (release_dead) {
      // Release fanins whose last consumer has now been built.
      for (std::uint32_t lvl = w0; lvl <= w1; ++lvl) {
        for (const std::uint32_t id : by_level[lvl]) {
          for (const std::uint32_t f : circuit.gate(id).fanins) {
            if (--uses[f] == 0) value[f] = Bdd{};
          }
        }
      }
    }
    local.peak_live_handles =
        std::max(local.peak_live_handles, live_handles());
  }

  if (stats != nullptr) *stats = local;
  return value;
}

}  // namespace

std::vector<core::Bdd> build_parallel(core::BddManager& mgr,
                                      const Circuit& circuit,
                                      const std::vector<unsigned>& input_vars,
                                      BuildStats* stats,
                                      const BuildOptions& opts) {
  std::vector<core::Bdd> value = build_levels(mgr, circuit, input_vars, stats,
                                              /*release_dead=*/true, opts);
  std::vector<core::Bdd> outputs;
  outputs.reserve(circuit.outputs().size());
  // Copy, not move: a gate may be marked as more than one output.
  for (const std::uint32_t o : circuit.outputs()) outputs.push_back(value[o]);
  return outputs;
}

std::vector<core::Bdd> build_parallel_all(
    core::BddManager& mgr, const Circuit& circuit,
    const std::vector<unsigned>& input_vars, BuildStats* stats,
    const BuildOptions& opts) {
  return build_levels(mgr, circuit, input_vars, stats,
                      /*release_dead=*/false, opts);
}

}  // namespace pbdd::circuit
