#include "circuit/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace pbdd::circuit {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::runtime_error(".bench parse error at line " +
                           std::to_string(line) + ": " + message);
}

std::string trim(std::string s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(s.back())) s.pop_back();
  std::size_t start = 0;
  while (start < s.size() && is_space(s[start])) ++start;
  return s.substr(start);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

GateType gate_type_from(const std::string& token, std::size_t line) {
  const std::string t = upper(token);
  if (t == "AND") return GateType::And;
  if (t == "OR") return GateType::Or;
  if (t == "NAND") return GateType::Nand;
  if (t == "NOR") return GateType::Nor;
  if (t == "XOR") return GateType::Xor;
  if (t == "XNOR") return GateType::Xnor;
  if (t == "NOT" || t == "INV") return GateType::Not;
  if (t == "BUF" || t == "BUFF") return GateType::Buf;
  if (t == "DFFSR" || t == "LATCH") {
    fail(line, "sequential element '" + token +
                   "' not supported (DFF-style latches only)");
  }
  fail(line, "unknown gate type '" + token + "'");
}

/// Signal names come from untrusted netlist files; a stray paren in a name
/// means the line's paren structure was misread (e.g. a nested or unclosed
/// call), so reject it here with the offending token instead of failing
/// later with a baffling "undefined signal 'a('".
void check_signal_name(const std::string& name, std::size_t line) {
  if (name.find('(') != std::string::npos ||
      name.find(')') != std::string::npos) {
    fail(line, "signal name '" + name + "' contains a parenthesis");
  }
}

/// Everything after the closing paren must be blank (comments were already
/// stripped): trailing garbage usually means a mangled or truncated edit,
/// and silently ignoring it would accept a different circuit than written.
void check_no_trailing(const std::string& rest, std::size_t line) {
  if (!trim(rest).empty()) {
    fail(line, "trailing characters '" + trim(rest) + "' after ')'");
  }
}

struct PendingGate {
  GateType type;
  std::vector<std::string> fanins;
  std::string name;
  std::size_t line;
};

struct PendingLatch {
  std::string q;
  std::string d;
  std::size_t line;
};

}  // namespace

Circuit parse_bench(std::istream& in, std::string name) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<PendingGate> defs;
  std::vector<PendingLatch> latches;
  std::unordered_map<std::string, std::size_t> def_index;

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    if (const auto hash = raw.find('#'); hash != std::string::npos) {
      raw.resize(hash);
    }
    const std::string line = trim(raw);
    if (line.empty()) continue;

    const auto open = line.find('(');
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(x)
      const auto close = line.find(')');
      if (open == std::string::npos || close == std::string::npos ||
          close < open) {
        fail(line_no, "expected INPUT(...), OUTPUT(...) or assignment");
      }
      const std::string kind = upper(trim(line.substr(0, open)));
      const std::string signal = trim(line.substr(open + 1, close - open - 1));
      if (signal.empty()) fail(line_no, "empty signal name");
      check_signal_name(signal, line_no);
      check_no_trailing(line.substr(close + 1), line_no);
      if (kind == "INPUT") {
        input_names.push_back(signal);
      } else if (kind == "OUTPUT") {
        output_names.push_back(signal);
      } else {
        fail(line_no, "unknown directive '" + kind + "'");
      }
      continue;
    }

    // name = TYPE(a, b, ...)
    const std::string lhs = trim(line.substr(0, eq));
    if (lhs.empty()) fail(line_no, "empty signal name before '='");
    check_signal_name(lhs, line_no);
    const std::string rhs = trim(line.substr(eq + 1));
    const auto ropen = rhs.find('(');
    const auto rclose = rhs.rfind(')');
    if (ropen == std::string::npos || rclose == std::string::npos ||
        rclose < ropen) {
      fail(line_no, "expected TYPE(fanins) after '='");
    }
    check_no_trailing(rhs.substr(rclose + 1), line_no);
    // ISCAS89-style state element: q = DFF(d). q becomes a pseudo-input
    // carrying the current state; d is the next-state signal.
    if (upper(trim(rhs.substr(0, ropen))) == "DFF") {
      const std::string d = trim(rhs.substr(ropen + 1, rclose - ropen - 1));
      if (d.empty() || d.find(',') != std::string::npos) {
        fail(line_no, "DFF takes exactly one fanin");
      }
      check_signal_name(d, line_no);
      latches.push_back(PendingLatch{lhs, d, line_no});
      continue;
    }
    PendingGate def;
    def.type = gate_type_from(trim(rhs.substr(0, ropen)), line_no);
    def.name = lhs;
    def.line = line_no;
    std::stringstream args(rhs.substr(ropen + 1, rclose - ropen - 1));
    std::string arg;
    while (std::getline(args, arg, ',')) {
      arg = trim(arg);
      if (arg.empty()) fail(line_no, "empty fanin name");
      check_signal_name(arg, line_no);
      def.fanins.push_back(arg);
    }
    if (def.fanins.empty()) fail(line_no, "gate with no fanins");
    if ((def.type == GateType::Not || def.type == GateType::Buf) &&
        def.fanins.size() != 1) {
      fail(line_no, "unary gate with multiple fanins");
    }
    if (def.fanins.size() == 1 &&
        (def.type != GateType::Not && def.type != GateType::Buf)) {
      // Some netlists write e.g. AND with one fanin; treat as BUF.
      def.type = GateType::Buf;
    }
    if (def_index.count(def.name) != 0) {
      fail(line_no, "signal '" + def.name + "' defined twice");
    }
    def_index.emplace(def.name, defs.size());
    defs.push_back(std::move(def));
  }

  // Build in topological order (definitions may be in any file order).
  // Latch outputs materialize as inputs first: combinationally they are
  // sources, exactly like primary inputs.
  Circuit circuit(std::move(name));
  std::unordered_map<std::string, std::uint32_t> signal_to_gate;
  for (const PendingLatch& latch : latches) {
    if (def_index.count(latch.q) != 0 || signal_to_gate.count(latch.q) != 0) {
      fail(latch.line, "latch output '" + latch.q + "' defined twice");
    }
    signal_to_gate.emplace(latch.q, circuit.add_input(latch.q));
  }
  for (const std::string& input : input_names) {
    if (signal_to_gate.count(input) != 0) {
      throw std::runtime_error("duplicate input '" + input + "'");
    }
    if (def_index.count(input) != 0) {
      throw std::runtime_error("signal '" + input +
                               "' is both an input and a gate");
    }
    signal_to_gate.emplace(input, circuit.add_input(input));
  }

  // Iterative DFS: state 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<std::uint8_t> state(defs.size(), 0);
  auto emit = [&](auto&& self, std::size_t index) -> std::uint32_t {
    const PendingGate& def = defs[index];
    if (state[index] == 2) return signal_to_gate.at(def.name);
    if (state[index] == 1) {
      fail(def.line, "combinational cycle through '" + def.name + "'");
    }
    state[index] = 1;
    std::vector<std::uint32_t> fanins;
    fanins.reserve(def.fanins.size());
    for (const std::string& fanin : def.fanins) {
      const auto dit = def_index.find(fanin);
      if (dit == def_index.end()) {
        // Not a gate definition: must be a primary input.
        const auto it = signal_to_gate.find(fanin);
        if (it == signal_to_gate.end()) {
          fail(def.line, "undefined signal '" + fanin + "'");
        }
        fanins.push_back(it->second);
      } else {
        fanins.push_back(self(self, dit->second));
      }
    }
    const std::uint32_t id =
        circuit.add_gate(def.type, std::move(fanins), def.name);
    signal_to_gate.emplace(def.name, id);
    state[index] = 2;
    return id;
  };
  for (std::size_t i = 0; i < defs.size(); ++i) emit(emit, i);

  for (const std::string& output : output_names) {
    const auto it = signal_to_gate.find(output);
    if (it == signal_to_gate.end()) {
      throw std::runtime_error("undefined output '" + output + "'");
    }
    circuit.mark_output(it->second, output);
  }
  for (const PendingLatch& latch : latches) {
    const auto d = signal_to_gate.find(latch.d);
    if (d == signal_to_gate.end()) {
      fail(latch.line, "latch next-state signal '" + latch.d +
                           "' is undefined");
    }
    circuit.add_latch(signal_to_gate.at(latch.q), d->second);
  }
  circuit.validate();
  return circuit;
}

Circuit parse_bench_string(const std::string& text, std::string name) {
  std::istringstream in(text);
  return parse_bench(in, std::move(name));
}

Circuit parse_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  auto slash = path.find_last_of('/');
  return parse_bench(in,
                     slash == std::string::npos ? path : path.substr(slash + 1));
}

void write_bench(std::ostream& out, const Circuit& circuit) {
  out << "# " << circuit.name() << " — written by pbdd\n";
  // Signals need names; generate stable ones for anonymous gates.
  std::vector<std::string> names(circuit.num_gates());
  for (std::uint32_t id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    names[id] = g.name.empty() ? ("n" + std::to_string(id)) : g.name;
  }
  {
    std::vector<bool> is_latch(circuit.num_gates(), false);
    for (const Latch& latch : circuit.latches()) is_latch[latch.q] = true;
    for (const std::uint32_t id : circuit.inputs()) {
      if (!is_latch[id]) out << "INPUT(" << names[id] << ")\n";
    }
  }
  for (const std::uint32_t id : circuit.outputs()) {
    out << "OUTPUT(" << names[id] << ")\n";
  }
  for (const Latch& latch : circuit.latches()) {
    out << names[latch.q] << " = DFF(" << names[latch.d] << ")\n";
  }
  for (std::uint32_t id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    switch (g.type) {
      case GateType::Input:
        continue;
      case GateType::Const0:
        // No constant syntax in .bench: encode as XOR(x, x) is wrong for
        // inputs-free circuits; emit an AND of a signal with its inverse is
        // also awkward. Constants are rare; reject for now.
        throw std::runtime_error("write_bench: constants not representable");
      case GateType::Const1:
        throw std::runtime_error("write_bench: constants not representable");
      default:
        break;
    }
    out << names[id] << " = "
        << (g.type == GateType::Buf ? "BUFF" : gate_type_name(g.type)) << "(";
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      if (i) out << ", ";
      out << names[g.fanins[i]];
    }
    out << ")\n";
  }
}

std::string to_bench_string(const Circuit& circuit) {
  std::ostringstream out;
  write_bench(out, circuit);
  return out.str();
}

}  // namespace pbdd::circuit
