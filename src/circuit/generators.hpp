// Synthetic circuit generators.
//
// The paper's four workloads are ISCAS85 C2670 and C3540 (with SIS order_dfs
// variable orderings) and 13/14-bit multipliers generated from C6288. The
// ISCAS85 netlist files cannot be redistributed inside this repository, so:
//   * multiplier(n) regenerates the C6288-style carry-save array multiplier
//     at any width (the paper itself generated mult-13/mult-14 this way);
//   * c2670_like() and c3540_like() are deterministic multi-block
//     arithmetic/control circuits of the same flavour (adder + comparator +
//     parity + small multiplier + mixing logic; ALU array) standing in for
//     the two ISCAS circuits;
//   * every bench harness also accepts real .bench files via bench_io.
// All generators are deterministic: the same call always yields the same
// netlist.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.hpp"

namespace pbdd::circuit {

/// n x n carry-save array multiplier, 2n inputs (a then b), 2n outputs
/// (product, LSB first). The structure mirrors C6288: an AND-plane of
/// partial products reduced column-wise by full/half adders.
[[nodiscard]] Circuit multiplier(unsigned n);

/// n-bit ripple-carry adder: inputs a[0..n), b[0..n), cin; outputs s[0..n),
/// cout.
[[nodiscard]] Circuit ripple_adder(unsigned n);

/// n-bit carry-select adder with the given block size: per block both
/// carry-in possibilities are computed and muxed by the incoming carry.
[[nodiscard]] Circuit carry_select_adder(unsigned n, unsigned block = 4);

/// n-bit magnitude comparator: outputs lt, eq, gt.
[[nodiscard]] Circuit comparator(unsigned n);

/// n-input odd-parity tree.
[[nodiscard]] Circuit parity_tree(unsigned n);

/// n-bit ALU: inputs a[0..n), b[0..n), cin, sel[0..3); eight functions
/// (add, sub, and, or, xor, nor, pass-a, not-a) selected per minterm;
/// outputs r[0..n), carry, zero-flag.
[[nodiscard]] Circuit alu(unsigned n);

/// C2670-class substitute: 24-bit carry-select adder, 20-bit comparator,
/// 40-input parity bank, embedded 8-bit multiplier slice, and a seeded
/// mixing layer. ~120 inputs, ~60 outputs.
[[nodiscard]] Circuit c2670_like();

/// C3540-class substitute: 12-bit ALU plus comparator/parity side logic and
/// a seeded mixing layer.
[[nodiscard]] Circuit c3540_like();

/// Deeper C2670-class circuit for scaling runs: wider adder/comparator and
/// parity banks, a barrel-shifter and priority-encoder control block, a
/// 10-bit multiplier slice, and five mixing rounds — roughly twice the
/// gates and depth of c2670_like(), sized so the parallel apply pipeline
/// has enough work per level to amortize scheduling.
[[nodiscard]] Circuit c2670_big();

/// Seeded random DAG of And/Or/Nand/Nor/Xor/Xnor/Not gates; gates without
/// fanout become primary outputs. Used by property tests.
[[nodiscard]] Circuit random_circuit(unsigned num_inputs, unsigned num_gates,
                                     std::uint64_t seed);

/// Single-error-correcting Hamming encoder: `data_bits` inputs, a full
/// codeword of data_bits + r outputs (r = parity bits, codeword positions
/// 1..n with parity at powers of two). The C499/C1355 ISCAS circuits are
/// exactly this class (32-bit SEC logic).
[[nodiscard]] Circuit hamming_encoder(unsigned data_bits);

/// Matching decoder/corrector: n codeword inputs; outputs the corrected
/// data bits followed by an any-error flag. Corrects any single bit flip.
[[nodiscard]] Circuit hamming_decoder(unsigned data_bits);

/// w-bit logarithmic barrel shifter (left rotate): inputs d[0..w),
/// s[0..log2 w); outputs d rotated left by s. w must be a power of two.
[[nodiscard]] Circuit barrel_shifter(unsigned width);

/// n-input priority encoder: outputs the index (ceil(log2 n) bits) of the
/// highest-priority (lowest-index) asserted input plus a valid flag.
[[nodiscard]] Circuit priority_encoder(unsigned n);

// ---- Sequential circuits (DFF latches; drive mc::CircuitSystem) ----------

/// n-bit shift register: shifts `in` through q0..q_{n-1}; output taps the
/// last stage.
[[nodiscard]] Circuit shift_register(unsigned n);

/// Fibonacci LFSR over the given tap positions (bit indices into the
/// register, which has `bits` stages); a `seed` input OR-ed into stage 0
/// lets reachability leave the all-zero state.
[[nodiscard]] Circuit lfsr(unsigned bits, const std::vector<unsigned>& taps);

/// n-bit Gray-code counter with enable: steps through the reflected Gray
/// sequence; output is the current code.
[[nodiscard]] Circuit gray_counter(unsigned n);

/// The real ISCAS85 c17 netlist (6 NAND gates), embedded as .bench text;
/// exercises the parser and serves as a known-answer test.
[[nodiscard]] Circuit c17();

}  // namespace pbdd::circuit
