// Bounded exponential backoff for the stall-and-steal loops.
//
// Owners that reach a stolen operator node in the reduction phase spin on the
// thief's result (Section 3.3 of the paper). Pure spinning wastes a core that
// could run a thief; pure yielding adds latency. We spin briefly with a
// pause hint, escalate to yields, and finally to short sleeps: on an
// oversubscribed host (more workers than cores) a yield loop still burns a
// scheduler timeslice per pass, and the burned slice belongs to the very
// thread that would have produced the awaited result. The sleep cap stays
// small enough that a worker woken by fresh work is at most ~0.1 ms late.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace pbdd::rt {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // No pause hint available; fall through to a compiler barrier.
  asm volatile("" ::: "memory");
#endif
}

class Backoff {
 public:
  void pause() noexcept {
    if (spins_ < kMaxSpins) {
      for (std::uint32_t i = 0; i < (1u << spins_); ++i) cpu_relax();
      ++spins_;
    } else if (spins_ < kMaxSpins + kMaxYields) {
      ++spins_;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(kSleepUs));
    }
  }

  void reset() noexcept { spins_ = 0; }

 private:
  static constexpr std::uint32_t kMaxSpins = 7;   // up to 128 pause hints
  static constexpr std::uint32_t kMaxYields = 16; // then ~16 reschedules
  static constexpr std::uint32_t kSleepUs = 100;
  std::uint32_t spins_ = 0;
};

}  // namespace pbdd::rt
