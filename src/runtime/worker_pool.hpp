// Persistent worker pool.
//
// The BDD manager keeps one pool for its whole lifetime: spawning threads per
// top-level operation batch would dwarf the per-batch work for small batches,
// and per-worker state (node arenas, compute caches) is indexed by a stable
// worker id. The calling thread participates as worker 0, so a pool of size
// one runs with no cross-thread traffic at all — that is the configuration
// the sequential "Seq" measurements in the paper use.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace_points.hpp"
#include "runtime/inject.hpp"

namespace pbdd::rt {

class WorkerPool {
 public:
  using Job = std::function<void(unsigned worker_id)>;

  explicit WorkerPool(unsigned workers) : workers_(workers ? workers : 1) {
    helpers_.reserve(workers_ - 1);
    for (unsigned id = 1; id < workers_; ++id) {
      helpers_.emplace_back([this, id] { helper_loop(id); });
    }
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
    }
    start_cv_.notify_all();
    for (auto& t : helpers_) t.join();
  }

  [[nodiscard]] unsigned size() const noexcept { return workers_; }

  /// Run `job(worker_id)` on every worker; the caller executes worker 0.
  /// Blocks until all workers have finished. Not reentrant.
  void run(Job job) {
    PBDD_TORTURE_EXPECT(workers_);
    if (workers_ == 1) {
      PBDD_TORTURE_THREAD_BEGIN(0);
      PBDD_TRACE_TRACK_BEGIN(0);
      job(0);
      PBDD_TRACE_TRACK_END();
      PBDD_TORTURE_THREAD_END();
      return;
    }
    {
      std::lock_guard lock(mutex_);
      job_ = std::move(job);
      pending_ = workers_ - 1;
      ++epoch_;
    }
    start_cv_.notify_all();
    // Register only after the helpers have been released: in serialized
    // torture runs worker 0 may park until all expected workers arrive.
    PBDD_TORTURE_THREAD_BEGIN(0);
    PBDD_TRACE_TRACK_BEGIN(0);
    job_(0);
    PBDD_TRACE_TRACK_END();
    PBDD_TORTURE_THREAD_END();
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  void helper_loop(unsigned id) {
    std::uint64_t seen_epoch = 0;
    for (;;) {
      Job job;
      {
        std::unique_lock lock(mutex_);
        start_cv_.wait(lock,
                       [&] { return stop_ || epoch_ != seen_epoch; });
        if (stop_) return;
        seen_epoch = epoch_;
        job = job_;  // copy: all helpers share the one job object
      }
      PBDD_TORTURE_THREAD_BEGIN(id);
      PBDD_TRACE_TRACK_BEGIN(id);
      job(id);
      PBDD_TRACE_TRACK_END();
      PBDD_TORTURE_THREAD_END();
      {
        std::lock_guard lock(mutex_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  const unsigned workers_;
  std::vector<std::thread> helpers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  Job job_;
  std::uint64_t epoch_ = 0;
  unsigned pending_ = 0;
  bool stop_ = false;
};

}  // namespace pbdd::rt
