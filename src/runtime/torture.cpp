#include "runtime/torture.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "runtime/backoff.hpp"
#include "util/hash.hpp"

namespace pbdd::rt {

namespace {

struct PointInfo {
  const char* name;
  bool yieldable;
};

// The yieldable flag is the serialize-mode lock discipline: a point is
// yieldable only if no call site can reach it while holding an engine mutex.
// kTableInsert/kTableGrow/kArenaBlockAlloc/kArenaDirGrow/kReducePublish all
// fire inside the per-variable (or per-segment) unique-table critical
// sections, so parking a thread there could leave the running thread blocked
// on a mutex whose holder is parked — the one deadlock this design must
// exclude.
//
// kTableCasRetry is the exception among table points: it fires only on the
// lock-free insert path, where by construction no mutex is ever held, so it
// is yieldable. It MUST be: a worker spinning on a moved bucket has to be
// able to hand the serialize token to the grower rebuilding that bucket, or
// kSerialize mode would livelock on every lock-free growth.
constexpr PointInfo kPoints[] = {
    {"steal_attempt", true},     {"steal_success", true},
    {"steal_writeback", true},   {"resolve_stall", true},
    {"hungry_poll", true},       {"context_push", true},
    {"group_take", true},        {"batch_loop", true},
    {"batch_barrier", true},     {"gc_barrier_wait", true},
    {"gc_mark", true},           {"gc_rehash", true},
    {"table_acquire", true},     {"table_insert", false},
    {"table_grow", false},       {"arena_block_alloc", false},
    {"arena_dir_grow", false},   {"reduce_publish", false},
    {"table_cas_retry", true},
    // The service points fire on the dispatcher thread outside every engine
    // and service mutex; they are yieldable by the usual rule, though in
    // practice only the unregistered-thread perturbation path reaches them.
    {"service_admit", true},     {"service_cancel", true},
    // Snapshot points fire per level on pool workers (save/restore) and on
    // the dispatcher/caller thread; no engine or service mutex is held at
    // either, so both are yieldable.
    {"snapshot_write", true},    {"snapshot_restore", true},
    {"force_gc", false},         {"force_spill", false},
    {"force_table_grow", false}, {"force_dir_churn", false},
    // Pager points fire outside the pager's per-level mutexes by
    // construction (see LevelPager), so the token holder can park.
    {"ooc_spill", true},         {"ooc_fault", true},
};
static_assert(sizeof(kPoints) / sizeof(kPoints[0]) ==
              static_cast<std::size_t>(InjectPoint::kCount));

enum Action : std::uint8_t {
  kActHit = 0,
  kActDelay,
  kActYield,
  kActBegin,
  kActEnd,
  kActForce,
  kActStall,
};

constexpr const char* kActionNames[] = {"hit",   "delay", "yield", "begin",
                                        "end",   "force", "stall"};

std::uint64_t stream_seed(std::uint64_t seed, std::uint32_t session,
                          unsigned worker) noexcept {
  return util::hash_triple(util::mix64(seed), session + 1, worker + 1);
}

}  // namespace

struct TortureScheduler::ThreadState {
  bool registered = false;
  bool ext_seeded = false;  // unregistered-thread perturbation stream primed
  unsigned depth = 0;
  unsigned worker = 0;
  std::uint32_t session = 0;
  util::Xoshiro256 rng{0};
  std::vector<Event> local;  // kPerturb event buffer, flushed at thread_end
  std::uint64_t local_dropped = 0;
};

TortureScheduler::ThreadState& TortureScheduler::tls() noexcept {
  static thread_local ThreadState state;
  return state;
}

const char* point_name(InjectPoint p) noexcept {
  return kPoints[static_cast<std::size_t>(p)].name;
}

bool point_yieldable(InjectPoint p) noexcept {
  return kPoints[static_cast<std::size_t>(p)].yieldable;
}

TortureScheduler& TortureScheduler::instance() noexcept {
  static TortureScheduler scheduler;
  return scheduler;
}

void TortureScheduler::enable(const TortureConfig& config) {
  std::lock_guard lock(mutex_);
  config_ = config;
  if (config_.max_delay_spins == 0) config_.max_delay_spins = 1;
  session_ = 0;
  expected_ = 0;
  arrived_ = 0;
  active_ = 0;
  current_ = kNoWorker;
  waiting_.clear();
  sched_rng_ = util::Xoshiro256(stream_seed(config.seed, 0, 0xFFFFu));
  ext_rng_ = util::Xoshiro256(stream_seed(config.seed, 0, 0xFFFEu));
  ordered_.clear();
  per_thread_.clear();
  logged_ = 0;
  dropped_ = 0;
  stall_breaks_ = 0;
  enabled_.store(true, std::memory_order_release);
}

void TortureScheduler::disable() noexcept {
  // Log/counter state is retained for post-run dump_log() until the next
  // enable(). Must only be called with no pool job in flight.
  enabled_.store(false, std::memory_order_release);
}

void TortureScheduler::append_ordered_locked(const Event& e) {
  if (!config_.log_events) return;
  if (logged_ >= config_.max_log_events) {
    ++dropped_;
    return;
  }
  ordered_.push_back(e);
  ++logged_;
}

void TortureScheduler::insert_waiting_locked(unsigned worker) {
  auto it = waiting_.begin();
  while (it != waiting_.end() && *it < worker) ++it;
  if (it == waiting_.end() || *it != worker) waiting_.insert(it, worker);
}

void TortureScheduler::pick_next_locked() {
  // Scheduling decisions wait until every expected worker of the session has
  // registered, so the seeded pick sequence sees the same candidate set
  // regardless of thread start-up timing.
  if (current_ != kNoWorker || arrived_ < expected_ || waiting_.empty()) {
    return;
  }
  const std::size_t idx =
      static_cast<std::size_t>(sched_rng_.below(waiting_.size()));
  current_ = waiting_[idx];
  waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(idx));
  cv_.notify_all();
}

void TortureScheduler::yield_token_locked(std::unique_lock<std::mutex>& lk,
                                          unsigned worker) {
  insert_waiting_locked(worker);
  if (current_ == worker) current_ = kNoWorker;
  // Also covers the last-arriver case: no one holds the token yet, and this
  // insert is what completes the candidate set.
  pick_next_locked();
  // Watchdog: only force progress after repeated timeouts with an unchanged
  // (or absent) token holder — a healthy run never triggers this, and tests
  // assert stall_breaks() == 0 to certify determinism.
  unsigned timeouts = 0;
  unsigned last_holder = current_;
  while (current_ != worker) {
    const auto status = cv_.wait_for(
        lk, std::chrono::milliseconds(config_.stall_timeout_ms));
    if (status != std::cv_status::timeout) continue;
    if (current_ != last_holder) {
      last_holder = current_;
      timeouts = 0;
      continue;
    }
    if (++timeouts < 3 && current_ != kNoWorker) continue;
    ++stall_breaks_;
    append_ordered_locked(Event{session_, static_cast<std::uint16_t>(worker),
                                static_cast<std::uint8_t>(InjectPoint::kCount),
                                kActStall, 0});
    for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
      if (*it == worker) {
        waiting_.erase(it);
        break;
      }
    }
    current_ = worker;
    cv_.notify_all();
    break;
  }
}

void TortureScheduler::expect_threads(unsigned count) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  if (active_ > 0) return;  // nested pool run: keep the current session
  ++session_;
  expected_ = count;
  arrived_ = 0;
  current_ = kNoWorker;
  waiting_.clear();
  pending_begins_.clear();
  sched_rng_ = util::Xoshiro256(stream_seed(config_.seed, session_, 0xFFFFu));
}

void TortureScheduler::thread_begin(unsigned worker_id) {
  if (!enabled()) return;
  ThreadState& ts = tls();
  if (ts.registered) {
    ++ts.depth;  // nested pool run on the same thread (sequential-mode GC)
    return;
  }
  std::unique_lock lk(mutex_);
  ts.registered = true;
  ts.ext_seeded = false;  // pool job takes over this thread's rng stream
  ts.depth = 1;
  ts.worker = worker_id;
  ts.session = session_;
  ts.rng = util::Xoshiro256(stream_seed(config_.seed, session_, worker_id));
  ts.local.clear();
  ++active_;
  ++arrived_;
  const Event e{session_, static_cast<std::uint16_t>(worker_id),
                static_cast<std::uint8_t>(InjectPoint::kCount), kActBegin, 0};
  if (config_.mode == TortureMode::kSerialize) {
    // Arrival order is OS-scheduling noise; the log must not depend on it.
    // Buffer the begins and emit them in worker-id order once the
    // registration barrier is full.
    pending_begins_.push_back(worker_id);
    if (arrived_ >= expected_) {
      std::sort(pending_begins_.begin(), pending_begins_.end());
      for (const unsigned w : pending_begins_) {
        append_ordered_locked(Event{session_, static_cast<std::uint16_t>(w),
                                    static_cast<std::uint8_t>(
                                        InjectPoint::kCount),
                                    kActBegin, 0});
      }
      pending_begins_.clear();
    }
    yield_token_locked(lk, worker_id);
  } else {
    if (config_.log_events) ts.local.push_back(e);
  }
}

void TortureScheduler::thread_end() {
  ThreadState& ts = tls();
  if (!ts.registered) return;
  if (ts.depth > 1) {
    --ts.depth;
    return;
  }
  std::lock_guard lock(mutex_);
  const Event e{ts.session, static_cast<std::uint16_t>(ts.worker),
                static_cast<std::uint8_t>(InjectPoint::kCount), kActEnd, 0};
  if (config_.mode == TortureMode::kSerialize) {
    append_ordered_locked(e);
    if (current_ == ts.worker) {
      current_ = kNoWorker;
      pick_next_locked();
    }
  } else {
    if (config_.log_events) ts.local.push_back(e);
    auto& sink = per_thread_[{ts.session, ts.worker}];
    for (const Event& ev : ts.local) {
      if (logged_ >= config_.max_log_events) {
        ++dropped_;
        continue;
      }
      sink.push_back(ev);
      ++logged_;
    }
    dropped_ += ts.local_dropped;
    ts.local.clear();
    ts.local_dropped = 0;
  }
  --active_;
  ts.registered = false;
  ts.depth = 0;
}

void TortureScheduler::hit(InjectPoint point) {
  if (!enabled()) return;
  ThreadState& ts = tls();
  if (!ts.registered) {
    // Service dispatcher / client threads: perturb-mode widening only. They
    // never hold the serialize token (they are outside the pool session's
    // candidate set) and never log (the ordered log must stay a pure
    // function of the registered workers' schedule).
    if (config_.mode != TortureMode::kPerturb) return;
    if (!ts.ext_seeded) {
      static std::atomic<std::uint32_t> ext_thread_counter{0};
      const std::uint32_t id =
          ext_thread_counter.fetch_add(1, std::memory_order_relaxed);
      ts.rng = util::Xoshiro256(stream_seed(config_.seed, id + 1, 0xFFFDu));
      ts.ext_seeded = true;
    }
    const std::uint64_t r = ts.rng.next();
    if (static_cast<std::uint32_t>(r % 1000) < config_.delay_permille) {
      const std::uint32_t spins =
          1 + static_cast<std::uint32_t>((r >> 20) % config_.max_delay_spins);
      for (std::uint32_t i = 0; i < spins * 8; ++i) cpu_relax();
    }
    if (static_cast<std::uint32_t>((r >> 10) % 1000) <
        config_.yield_permille) {
      std::this_thread::yield();
    }
    return;
  }

  if (config_.mode == TortureMode::kPerturb) {
    // Exactly one draw per hit keeps each worker's decision stream aligned
    // with its hit sequence, independent of the other workers.
    const std::uint64_t r = ts.rng.next();
    const std::uint32_t d_delay = static_cast<std::uint32_t>(r % 1000);
    const std::uint32_t d_yield = static_cast<std::uint32_t>((r >> 10) % 1000);
    std::uint32_t spins = 0;
    std::uint8_t action = kActHit;
    if (d_delay < config_.delay_permille) {
      spins = 1 + static_cast<std::uint32_t>((r >> 20) %
                                             config_.max_delay_spins);
      action = kActDelay;
    }
    const bool do_yield =
        point_yieldable(point) && d_yield < config_.yield_permille;
    if (do_yield) action = kActYield;
    if (config_.log_events) {
      if (ts.local.size() < config_.max_log_events) {
        ts.local.push_back(Event{ts.session,
                                 static_cast<std::uint16_t>(ts.worker),
                                 static_cast<std::uint8_t>(point), action,
                                 spins});
      } else {
        ++ts.local_dropped;
      }
    }
    for (std::uint32_t i = 0; i < spins * 8; ++i) cpu_relax();
    if (do_yield) std::this_thread::yield();
    return;
  }

  std::unique_lock lk(mutex_);
  append_ordered_locked(Event{ts.session, static_cast<std::uint16_t>(ts.worker),
                              static_cast<std::uint8_t>(point), kActHit, 0});
  if (!point_yieldable(point)) return;
  yield_token_locked(lk, ts.worker);
}

bool TortureScheduler::query(InjectPoint point) {
  if (!enabled()) return false;
  std::uint32_t permille = 0;
  switch (point) {
    case InjectPoint::kForceGc: permille = config_.force_gc_permille; break;
    case InjectPoint::kForceSpill:
      permille = config_.force_spill_permille;
      break;
    case InjectPoint::kForceTableGrow:
      permille = config_.force_table_grow_permille;
      break;
    case InjectPoint::kForceDirChurn:
      permille = config_.force_dir_churn_permille;
      break;
    default: return false;
  }
  // Disabled decision points draw nothing, so turning one off does not shift
  // the streams feeding the others.
  if (permille == 0) return false;

  ThreadState& ts = tls();
  if (ts.registered) {
    const bool fire = ts.rng.next() % 1000 < permille;
    if (!fire) return false;
    if (config_.mode == TortureMode::kSerialize) {
      std::lock_guard lock(mutex_);
      append_ordered_locked(Event{ts.session,
                                  static_cast<std::uint16_t>(ts.worker),
                                  static_cast<std::uint8_t>(point), kActForce,
                                  0});
    } else if (config_.log_events &&
               ts.local.size() < config_.max_log_events) {
      ts.local.push_back(Event{ts.session,
                               static_cast<std::uint16_t>(ts.worker),
                               static_cast<std::uint8_t>(point), kActForce,
                               0});
    }
    return fire;
  }

  // Unregistered caller: the main thread between pool sessions (e.g. the
  // batch-barrier GC check). Single-threaded by the manager's external-call
  // contract, so the shared external stream stays deterministic.
  std::lock_guard lock(mutex_);
  const bool fire = ext_rng_.next() % 1000 < permille;
  if (fire) {
    append_ordered_locked(Event{session_, kExternalWorker,
                                static_cast<std::uint8_t>(point), kActForce,
                                0});
  }
  return fire;
}

std::string TortureScheduler::dump_log() {
  std::lock_guard lock(mutex_);
  std::string out;
  out.reserve((ordered_.size() + logged_ + 2) * 32);
  char line[96];
  auto emit = [&](const Event& e) {
    const char* point =
        e.point < static_cast<std::uint8_t>(InjectPoint::kCount)
            ? kPoints[e.point].name
            : "-";
    if (e.worker == kExternalWorker) {
      std::snprintf(line, sizeof(line), "s%u ext %s %s %u\n", e.session,
                    point, kActionNames[e.action], e.arg);
    } else {
      std::snprintf(line, sizeof(line), "s%u w%u %s %s %u\n", e.session,
                    e.worker, point, kActionNames[e.action], e.arg);
    }
    out += line;
  };
  for (const Event& e : ordered_) emit(e);
  for (const auto& [key, events] : per_thread_) {
    for (const Event& e : events) emit(e);
  }
  std::snprintf(line, sizeof(line),
                "# events=%llu dropped=%llu stalls=%llu\n",
                static_cast<unsigned long long>(logged_),
                static_cast<unsigned long long>(dropped_),
                static_cast<unsigned long long>(stall_breaks_));
  out += line;
  return out;
}

std::uint64_t TortureScheduler::event_count() {
  std::lock_guard lock(mutex_);
  return logged_;
}

std::uint64_t TortureScheduler::dropped_events() {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::uint64_t TortureScheduler::stall_breaks() {
  std::lock_guard lock(mutex_);
  return stall_breaks_;
}

}  // namespace pbdd::rt
