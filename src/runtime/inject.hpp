// Zero-cost injection points for the torture scheduler.
//
// Engine hot paths mark their synchronization-critical sites with these
// macros. In default builds (PBDD_TORTURE=OFF) every macro expands to a
// no-op / constant-false with no call, no load, and no branch, so the hot
// paths are bit-for-bit what they would be without instrumentation. With
// PBDD_TORTURE=ON the sites report to the process-wide TortureScheduler
// (see torture.hpp), which perturbs or fully serializes the schedule.
//
//   PBDD_INJECT(point)             worker passed a schedule point
//   PBDD_INJECT_QUERY(point)       should this rare transition be forced?
//   PBDD_TORTURE_EXPECT(n)         pool about to dispatch a job to n workers
//   PBDD_TORTURE_THREAD_BEGIN(id)  worker `id` starts the job on this thread
//   PBDD_TORTURE_THREAD_END()      worker finished the job
#pragma once

#ifdef PBDD_TORTURE_ENABLED

#include "runtime/torture.hpp"

#define PBDD_INJECT(point) \
  ::pbdd::rt::TortureScheduler::instance().hit(::pbdd::rt::InjectPoint::point)
#define PBDD_INJECT_QUERY(point)                \
  ::pbdd::rt::TortureScheduler::instance().query( \
      ::pbdd::rt::InjectPoint::point)
#define PBDD_TORTURE_EXPECT(count) \
  ::pbdd::rt::TortureScheduler::instance().expect_threads(count)
#define PBDD_TORTURE_THREAD_BEGIN(worker_id) \
  ::pbdd::rt::TortureScheduler::instance().thread_begin(worker_id)
#define PBDD_TORTURE_THREAD_END() \
  ::pbdd::rt::TortureScheduler::instance().thread_end()

#else  // !PBDD_TORTURE_ENABLED

#define PBDD_INJECT(point) ((void)0)
#define PBDD_INJECT_QUERY(point) false
#define PBDD_TORTURE_EXPECT(count) ((void)0)
#define PBDD_TORTURE_THREAD_BEGIN(worker_id) ((void)0)
#define PBDD_TORTURE_THREAD_END() ((void)0)

#endif  // PBDD_TORTURE_ENABLED
