// Phase-counted sense-reversing barrier.
//
// The parallel garbage collector synchronizes all workers once per variable
// during the mark phase (Section 3.4: "each process will synchronize at each
// variable"), so for a 64-variable multiplier a full collection crosses the
// barrier ~70 times. The barrier is centralized but cheap: arrival is one
// fetch_add, and the phase counter doubles as the reversing sense — a waiter
// only ever compares against the phase it captured on arrival, so the
// counter never needs resetting and ABA cannot occur across back-to-back
// phases. Waiters spin briefly (the common case: all workers reach the
// barrier within a few hundred cycles of each other), then park on the
// phase word with std::atomic::wait. The futex path is what keeps an
// oversubscribed or single-core host honest: a descheduled straggler no
// longer costs every other worker its full timeslice of spinning, and on
// such hosts the spin window is skipped entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "runtime/backoff.hpp"
#include "runtime/inject.hpp"
#ifdef PBDD_TORTURE_ENABLED
#include "runtime/torture.hpp"
#endif

namespace pbdd::rt {

class PhaseBarrier {
 public:
  /// `spin` disables the pre-wait spin window when false — the right setting
  /// whenever more runnable workers exist than hardware threads, where a
  /// spinning waiter burns exactly the timeslice the straggler needs.
  explicit PhaseBarrier(std::uint32_t participants, bool spin = true) noexcept
      : participants_(participants), spin_(spin) {}

  PhaseBarrier(const PhaseBarrier&) = delete;
  PhaseBarrier& operator=(const PhaseBarrier&) = delete;

  /// Block until all participants arrive. Returns true for exactly one
  /// caller per phase (the last arriver), which is convenient for
  /// single-threaded epilogues between parallel phases.
  bool arrive_and_wait() noexcept {
    const std::uint32_t phase = phase_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        participants_) {
      arrived_.store(0, std::memory_order_relaxed);
      phase_.fetch_add(1, std::memory_order_release);
      // libstdc++ tracks waiters per word: when everyone arrived inside the
      // spin window this is a plain load, not a syscall.
      phase_.notify_all();
      return true;
    }
#ifdef PBDD_TORTURE_ENABLED
    if (TortureScheduler::instance().enabled()) {
      // Serialized torture runs hand the schedule token through the inject
      // point; a futex-parked waiter would never reach it again, so the
      // torture path keeps the classic spin-with-handoff loop.
      Backoff backoff;
      while (phase_.load(std::memory_order_acquire) == phase) {
        PBDD_INJECT(kGcBarrierWait);
        backoff.pause();
      }
      return false;
    }
#endif
    if (spin_) {
      for (std::uint32_t i = 0; i < kSpinLimit; ++i) {
        if (phase_.load(std::memory_order_acquire) != phase) return false;
        cpu_relax();
      }
    }
    while (phase_.load(std::memory_order_acquire) == phase) {
      PBDD_INJECT(kGcBarrierWait);
      phase_.wait(phase, std::memory_order_acquire);
    }
    return false;
  }

  [[nodiscard]] std::uint32_t participants() const noexcept {
    return participants_;
  }

 private:
  static constexpr std::uint32_t kSpinLimit = 1024;

  const std::uint32_t participants_;
  const bool spin_;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint32_t> phase_{0};
};

/// Historical name; the GC driver predates the phase-counted rewrite.
using SpinBarrier = PhaseBarrier;

}  // namespace pbdd::rt
