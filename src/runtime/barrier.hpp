// Reusable sense-reversing barrier.
//
// The parallel garbage collector synchronizes all workers once per variable
// during the mark phase (Section 3.4: "each process will synchronize at each
// variable"), so for a 64-variable multiplier a full collection crosses the
// barrier ~70 times. A centralized sense-reversing barrier with a short spin
// then yield keeps that cheap without requiring C++20 std::barrier's
// completion-function machinery.
#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/backoff.hpp"
#include "runtime/inject.hpp"

namespace pbdd::rt {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t participants) noexcept
      : participants_(participants) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Block until all participants arrive. Returns true for exactly one
  /// caller per phase (the last arriver), which is convenient for
  /// single-threaded epilogues between parallel phases.
  bool arrive_and_wait() noexcept {
    const bool sense = !sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        participants_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(sense, std::memory_order_release);
      return true;
    }
    Backoff backoff;
    while (sense_.load(std::memory_order_acquire) != sense) {
      // In serialized torture runs this is the handoff that lets the other
      // workers reach the barrier; without it the waiter would spin forever
      // holding the schedule token.
      PBDD_INJECT(kGcBarrierWait);
      backoff.pause();
    }
    return false;
  }

  [[nodiscard]] std::uint32_t participants() const noexcept {
    return participants_;
  }

 private:
  const std::uint32_t participants_;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace pbdd::rt
