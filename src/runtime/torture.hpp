// Deterministic concurrency torture scheduler.
//
// The engine's riskiest mechanisms — group stealing with result writeback,
// context-switch requests from idle workers, the three-phase mark-compact
// collector, unique-table growth, and the arenas' RCU-style directory
// publication — fail only under specific interleavings that the OS scheduler
// produces by luck. This scheduler turns those interleavings into a seeded,
// replayable input: injection points compiled into the hot paths (see
// inject.hpp) report to it, and it perturbs or fully serializes the schedule.
//
// Two modes:
//
//  * kPerturb — threads run genuinely concurrently; every injection point
//    may insert a seeded busy-delay and/or a forced std::this_thread::yield
//    drawn from a per-(seed, session, worker) PRNG stream. This widens race
//    windows by orders of magnitude and is the mode to combine with
//    ThreadSanitizer. Not deterministic across runs (real concurrency never
//    is), but the per-worker decision streams are.
//
//  * kSerialize — cooperative serialization: exactly one worker executes
//    between yieldable injection points, and at every yieldable point the
//    token is handed to a worker chosen by the seeded scheduler PRNG. All
//    cross-thread communication in the engine happens between yieldable
//    points, so the whole execution — including which worker claims which
//    top-level operation, who steals which group, and every unique-table
//    insertion order — is a pure function of (seed, config). Event logs are
//    byte-identical across runs and a failing (seed, config) pair replays
//    exactly.
//
// Deadlock-freedom in kSerialize rests on one discipline, enforced by the
// per-point classification in point_yieldable(): a point that can fire while
// an engine mutex is held is never yieldable, so a paused worker never holds
// a lock the running worker could block on.
//
// Decision points (query()) deterministically force rare transitions:
// collections at every safe point, context switches as if an idle worker
// were hungry, same-size unique-table rehashes, and same-capacity arena
// directory republication (the recovery/slow paths a failed fast-path
// allocation would take).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/prng.hpp"

namespace pbdd::rt {

enum class InjectPoint : std::uint8_t {
  // Schedule points (hit) — see point_yieldable() for the lock discipline.
  kStealAttempt = 0,  ///< thief about to scan victims
  kStealSuccess,      ///< group popped from a victim's context stack
  kStealWriteback,    ///< stolen result about to be published to the victim
  kResolveStall,      ///< owner waiting on an in-flight stolen result
  kHungryPoll,        ///< expansion polling the hungry-workers flag
  kContextPush,       ///< context about to be pushed with stealable groups
  kGroupTake,         ///< owner taking a group back from its own stack
  kBatchLoop,         ///< batch-completion steal loop iteration
  kBatchBarrier,      ///< batch epilogue, before the GC check
  kGcBarrierWait,     ///< spinning in a GC phase barrier
  kGcMark,            ///< start of one variable's parallel mark step
  kGcRehash,          ///< about to try-lock a variable's table for rehash
  kTableAcquire,      ///< about to block on a unique-table (segment) lock
  kTableInsert,       ///< inside find_or_insert (lock may be held)
  kTableGrow,         ///< unique-table bucket array growth/rehash
  kArenaBlockAlloc,   ///< node arena allocating a fresh block
  kArenaDirGrow,      ///< node arena (re)publishing its block directory
  kReducePublish,     ///< reduction about to release-store an op result
  kTableCasRetry,     ///< lock-free insert retrying (CAS lost / bucket moved)
  kServiceAdmit,      ///< service dispatcher admitted a request for execution
  kServiceCancel,     ///< service request cancelled/expired/shed/deferred
  kSnapshotWrite,     ///< snapshot writer about to serialize one level
  kSnapshotRestore,   ///< snapshot reader about to rebuild one level
  // Decision points (query): deterministically force rare transitions.
  kForceGc,           ///< run a collection at this safe point
  kForceSpill,        ///< act as if an idle worker requested a switch
  kForceTableGrow,    ///< same-size unique-table rehash churn
  kForceDirChurn,     ///< same-capacity arena directory republication
  // Appended (event logs store the point ordinal; never renumber).
  kOocSpill,          ///< pager about to demote one level to disk
  kOocFault,          ///< pager about to fault one level back in
  kCount,
};

[[nodiscard]] const char* point_name(InjectPoint p) noexcept;

/// True if the scheduler may park a thread at this point (kSerialize mode).
/// Points that can fire while an engine mutex is held must return false.
[[nodiscard]] bool point_yieldable(InjectPoint p) noexcept;

enum class TortureMode : std::uint8_t { kPerturb, kSerialize };

struct TortureConfig {
  std::uint64_t seed = 1;
  TortureMode mode = TortureMode::kPerturb;

  // kPerturb knobs (ignored in kSerialize).
  std::uint32_t delay_permille = 150;   ///< chance of a busy-delay per hit
  std::uint32_t yield_permille = 150;   ///< chance of a yield per hit
  std::uint32_t max_delay_spins = 64;   ///< busy-delay length, in pause units

  // Decision-point firing rates (both modes).
  std::uint32_t force_gc_permille = 0;
  std::uint32_t force_spill_permille = 0;
  std::uint32_t force_table_grow_permille = 0;
  std::uint32_t force_dir_churn_permille = 0;

  bool log_events = true;
  std::size_t max_log_events = std::size_t{1} << 20;

  /// kSerialize watchdog: a thread that cannot obtain the token for this
  /// long (× a few retries while the holder is unchanged) forcibly
  /// reschedules itself rather than hanging the suite. A triggered watchdog
  /// is counted in stall_breaks() and voids the determinism guarantee for
  /// that run, so tests assert it stayed zero.
  std::uint32_t stall_timeout_ms = 2000;
};

/// Whether the engine was compiled with injection points (PBDD_TORTURE=ON).
/// The scheduler itself is always available; without points it is simply
/// never driven by the engine.
[[nodiscard]] constexpr bool torture_compiled() noexcept {
#ifdef PBDD_TORTURE_ENABLED
  return true;
#else
  return false;
#endif
}

class TortureScheduler {
 public:
  /// Process-wide instance, mirroring kernel-style fault injection: the hot
  /// paths cannot thread a handle through every call, so the hooks reach the
  /// scheduler globally. Tests enable/disable it around a run; it must not
  /// be reconfigured while a manager is mid-operation.
  static TortureScheduler& instance() noexcept;

  void enable(const TortureConfig& config);
  void disable() noexcept;
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_acquire);
  }

  // ---- Engine-side hooks (reached through the inject.hpp macros) ----------

  /// A worker passed an injection point: maybe delay/yield (kPerturb) or
  /// hand the schedule token to the next seeded choice (kSerialize).
  /// Unregistered threads (service dispatcher and client threads, which
  /// never run pool jobs) get perturb-mode delays/yields from a dedicated
  /// stream but never park and never log: serialize-mode determinism is a
  /// property of the registered pool workers only.
  void hit(InjectPoint point);

  /// A decision point: returns true when the seeded stream says to force the
  /// rare transition. Callable from unregistered threads (e.g. the main
  /// thread between worker-pool sessions), which draw from a dedicated
  /// external stream.
  [[nodiscard]] bool query(InjectPoint point);

  /// WorkerPool::run is about to dispatch a job to `count` workers. Starts a
  /// new session: in kSerialize mode no worker is scheduled until all
  /// `count` have registered, so the schedule is independent of thread
  /// start-up jitter. Nested pool runs (sequential-mode GC) keep the
  /// current session.
  void expect_threads(unsigned count);

  /// Worker `worker_id` starts executing a pool job on this thread.
  void thread_begin(unsigned worker_id);
  void thread_end();

  // ---- Test-side introspection --------------------------------------------

  /// Render the event log. In kSerialize mode the log is globally ordered
  /// and byte-identical across runs of the same (seed, config); in kPerturb
  /// mode events are grouped per (session, worker).
  [[nodiscard]] std::string dump_log();

  [[nodiscard]] std::uint64_t event_count();
  [[nodiscard]] std::uint64_t dropped_events();
  /// Times the kSerialize watchdog forcibly rescheduled a thread. Nonzero
  /// means the run hit a scheduler stall and is not replay-deterministic.
  [[nodiscard]] std::uint64_t stall_breaks();

 private:
  TortureScheduler() = default;

  struct Event {
    std::uint32_t session;
    std::uint16_t worker;
    std::uint8_t point;
    std::uint8_t action;
    std::uint32_t arg;
  };
  struct ThreadState;  // thread_local, defined in torture.cpp
  static ThreadState& tls() noexcept;

  void append_ordered_locked(const Event& e);
  void yield_token_locked(std::unique_lock<std::mutex>& lk, unsigned worker);
  void pick_next_locked();
  void insert_waiting_locked(unsigned worker);

  static constexpr unsigned kNoWorker = 0xFFFFFFFFu;
  static constexpr std::uint16_t kExternalWorker = 0xFFFFu;

  std::atomic<bool> enabled_{false};
  TortureConfig config_{};

  std::mutex mutex_;
  std::condition_variable cv_;

  // Session / serialize state (guarded by mutex_).
  std::uint32_t session_ = 0;
  unsigned expected_ = 0;
  unsigned arrived_ = 0;
  unsigned active_ = 0;
  unsigned current_ = kNoWorker;
  std::vector<unsigned> waiting_;  // sorted worker ids parked at points
  std::vector<unsigned> pending_begins_;  // arrivals awaiting the session log
  util::Xoshiro256 sched_rng_{0};
  util::Xoshiro256 ext_rng_{0};  // decision stream for unregistered threads

  // Event log (guarded by mutex_).
  std::vector<Event> ordered_;  // kSerialize: global deterministic order
  std::map<std::pair<std::uint32_t, std::uint16_t>, std::vector<Event>>
      per_thread_;              // kPerturb: per-(session, worker)
  std::uint64_t logged_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t stall_breaks_ = 0;
};

}  // namespace pbdd::rt
