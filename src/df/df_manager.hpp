// Depth-first BDD package (the paper's Figure 3 baseline).
//
// A classic Brace–Rudell–Bryant style sequential package: one global unique
// table, a lossy direct-mapped computed cache, recursive Shannon expansion,
// and reference-counting garbage collection with a free list. It exists for
// three reasons:
//   1. It is the baseline the paper contrasts the breadth-first family with
//      (Section 2.2/2.3), including its memory-access behaviour.
//   2. It is the oracle for the partial breadth-first engine's tests: both
//      packages must produce isomorphic reduced BDDs for the same inputs.
//   3. Its free-list reference-count collector is the ablation point for the
//      mark-compact collector study (Section 3.4).
//
// It additionally implements Rudell-style dynamic variable reordering by
// sifting ([22] in the paper) through in-place adjacent level swaps — BDD
// size is extremely order-sensitive (Section 2), and sifting is the
// standard remedy when no good static order is known. Variables keep their
// external identity across reorderings; only their level (precedence)
// changes.
//
// Not thread-safe; this package is intentionally sequential.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/op.hpp"

namespace pbdd::df {

/// Internal node reference: an index into the manager's node array.
/// 0 and 1 are the terminal constants.
using Ref = std::uint32_t;

inline constexpr Ref kZero = 0;
inline constexpr Ref kOne = 1;
inline constexpr Ref kInvalidRef = 0xFFFFFFFFu;

class DfManager;

/// RAII external reference to a BDD. Copying bumps the node's reference
/// count; destruction releases it. A default-constructed handle is empty.
class DfBdd {
 public:
  DfBdd() = default;
  DfBdd(DfManager* mgr, Ref ref);  // takes over one reference count
  DfBdd(const DfBdd& other);
  DfBdd(DfBdd&& other) noexcept;
  DfBdd& operator=(const DfBdd& other);
  DfBdd& operator=(DfBdd&& other) noexcept;
  ~DfBdd();

  [[nodiscard]] bool valid() const noexcept { return mgr_ != nullptr; }
  [[nodiscard]] Ref ref() const noexcept { return ref_; }
  [[nodiscard]] DfManager* manager() const noexcept { return mgr_; }

  /// Structural equality — by BDD canonicity this is functional equality
  /// for handles from the same manager.
  friend bool operator==(const DfBdd& a, const DfBdd& b) noexcept {
    return a.mgr_ == b.mgr_ && a.ref_ == b.ref_;
  }

 private:
  void release() noexcept;

  DfManager* mgr_ = nullptr;
  Ref ref_ = kInvalidRef;
};

struct DfConfig {
  /// log2 of the computed-cache entry count.
  unsigned cache_log2 = 16;
  /// Initial unique-table bucket count (power of two).
  unsigned initial_buckets_log2 = 12;
  /// Run garbage collection automatically at a top-level apply when the
  /// number of dead nodes exceeds this fraction of allocated nodes.
  double auto_gc_dead_fraction = 0.5;
  /// Disable automatic GC entirely (tests / ablations).
  bool auto_gc = true;
};

struct SiftOptions {
  /// Abort sifting one variable when the table grows past this factor of
  /// its size at the start of that variable's sift.
  double max_growth = 1.2;
  /// Sift at most this many variables (the largest ones first); 0 = all.
  unsigned max_vars = 0;
  /// Repeat whole sifting passes until a pass stops improving the size
  /// (bounded by this count). 1 = the classic single pass.
  unsigned max_passes = 1;
};

struct DfStats {
  std::uint64_t ops_performed = 0;     ///< non-terminal Shannon expansions
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t nodes_created = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t nodes_reclaimed = 0;
  std::uint64_t reorderings = 0;
};

class DfManager {
 public:
  explicit DfManager(unsigned num_vars, DfConfig config = {});

  DfManager(const DfManager&) = delete;
  DfManager& operator=(const DfManager&) = delete;

  [[nodiscard]] unsigned num_vars() const noexcept { return num_vars_; }

  // ---- Constants and variables -------------------------------------------
  [[nodiscard]] DfBdd zero() { return make_handle(kZero); }
  [[nodiscard]] DfBdd one() { return make_handle(kOne); }
  /// BDD for variable `v` (the identity function of that input).
  [[nodiscard]] DfBdd var(unsigned v);
  /// BDD for NOT variable `v`.
  [[nodiscard]] DfBdd nvar(unsigned v);

  // ---- Boolean operations -------------------------------------------------
  [[nodiscard]] DfBdd apply(Op op, const DfBdd& f, const DfBdd& g);
  [[nodiscard]] DfBdd not_(const DfBdd& f);
  [[nodiscard]] DfBdd ite(const DfBdd& c, const DfBdd& t, const DfBdd& e);

  /// Cofactor: f with variable `v` fixed to `value`.
  [[nodiscard]] DfBdd restrict_(const DfBdd& f, unsigned v, bool value);
  /// Existential quantification over a set of variables.
  [[nodiscard]] DfBdd exists(const DfBdd& f, const std::vector<unsigned>& vars);
  /// Universal quantification over a set of variables.
  [[nodiscard]] DfBdd forall(const DfBdd& f, const std::vector<unsigned>& vars);
  /// Substitute BDD g for variable v in f.
  [[nodiscard]] DfBdd compose(const DfBdd& f, unsigned v, const DfBdd& g);

  // ---- Queries -------------------------------------------------------------
  /// Number of satisfying assignments over all `num_vars()` variables.
  [[nodiscard]] double sat_count(const DfBdd& f);
  /// One satisfying assignment (-1 = don't care per variable), if any.
  [[nodiscard]] std::optional<std::vector<std::int8_t>> sat_one(const DfBdd& f);
  /// Evaluate under a complete assignment.
  [[nodiscard]] bool eval(const DfBdd& f, const std::vector<bool>& assignment);
  /// Variables the function actually depends on.
  [[nodiscard]] std::vector<unsigned> support(const DfBdd& f);
  /// Number of internal nodes in f's reachable subgraph.
  [[nodiscard]] std::size_t node_count(const DfBdd& f);

  // ---- Dynamic variable reordering ------------------------------------------
  /// Swap the variables at adjacent levels `level` and `level+1` in place.
  /// All handles stay valid and keep denoting the same functions. Exposed
  /// for tests; reorder_sift() is the user-facing entry point.
  void swap_levels(unsigned level);

  /// Rudell's sifting: move each variable (largest node population first)
  /// through every level, leave it at the position minimizing total live
  /// nodes. Returns live nodes after reordering.
  std::size_t reorder_sift(SiftOptions options = {});

  /// Current level of a variable / variable at a level.
  [[nodiscard]] unsigned level_of(unsigned var) const noexcept {
    return level_of_var_[var];
  }
  [[nodiscard]] unsigned var_at(unsigned level) const noexcept {
    return var_at_level_[level];
  }
  /// The current order as a variable list, top level first.
  [[nodiscard]] std::vector<unsigned> current_order() const {
    return var_at_level_;
  }

  // ---- Memory management ---------------------------------------------------
  /// Reference-count sweep: unlink dead nodes from the unique table, cascade
  /// child dereferences, thread the free list, flush the computed cache.
  /// Returns the number of reclaimed nodes.
  std::size_t gc();

  /// Nodes currently in the unique table (live plus dead-but-unswept).
  [[nodiscard]] std::size_t live_nodes() const noexcept {
    return allocated_nodes_;
  }
  /// Estimate of in-table nodes whose reference count has dropped to zero.
  [[nodiscard]] std::size_t dead_nodes() const noexcept {
    return dead_estimate_;
  }
  [[nodiscard]] std::size_t allocated_slots() const noexcept {
    return nodes_.size() - 2;
  }
  [[nodiscard]] std::size_t bytes() const noexcept;
  [[nodiscard]] const DfStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  // ---- Internals shared with the handle type ------------------------------
  void ref_node(Ref r) noexcept;
  void deref_node(Ref r) noexcept;

  [[nodiscard]] unsigned var_of(Ref r) const noexcept {
    return nodes_[r].var;
  }
  [[nodiscard]] Ref low_of(Ref r) const noexcept { return nodes_[r].low; }
  [[nodiscard]] Ref high_of(Ref r) const noexcept { return nodes_[r].high; }

 private:
  friend class DfBdd;

  // Variable index used for terminals: below every real variable.
  static constexpr unsigned kTermVar = 0xFFFFFFFFu;
  // Variable index marking a slot on the free list.
  static constexpr unsigned kFreeVar = 0xFFFFFFFEu;

  struct Node {
    unsigned var = kTermVar;
    Ref low = kInvalidRef;
    Ref high = kInvalidRef;
    Ref next = kInvalidRef;  ///< unique-table chain / free-list link
    std::uint32_t refcount = 0;
    /// True while refcount is zero for a node still in the table. Needed to
    /// keep the dead-node estimate exact across resurrections (a cache hit
    /// can hand out a dead node, which a new reference then revives).
    bool dead = false;
  };

  struct CacheEntry {
    Ref f = kInvalidRef;
    Ref g = kInvalidRef;
    Ref result = kInvalidRef;
    Op op = Op::And;
    bool valid = false;
  };

  [[nodiscard]] DfBdd make_handle(Ref r) {
    ref_node(r);
    return DfBdd(this, r);
  }

  [[nodiscard]] Ref cofactor(Ref f, unsigned v, bool value) const noexcept {
    const Node& n = nodes_[f];
    if (n.var != v) return f;  // v above f's top var: f independent of v
    return value ? n.high : n.low;
  }

  /// Level (precedence position) of a node; terminals sit below all
  /// variables. All ordering comparisons go through levels so that dynamic
  /// reordering only has to update the level maps.
  [[nodiscard]] unsigned node_level(Ref r) const noexcept {
    return r <= kOne ? num_vars_ : level_of_var_[nodes_[r].var];
  }

  Ref apply_rec(Op op, Ref f, Ref g);
  void sift_pass(const SiftOptions& options);
  Ref mk_node(unsigned var, Ref low, Ref high);
  Ref alloc_node();
  void maybe_auto_gc();
  void grow_table();

  const unsigned num_vars_;
  const DfConfig config_;

  // Dynamic order: level -> variable and its inverse.
  std::vector<unsigned> var_at_level_;
  std::vector<unsigned> level_of_var_;

  std::vector<Node> nodes_;
  std::vector<Ref> buckets_;
  std::uint32_t bucket_mask_;
  std::size_t table_count_ = 0;  ///< nodes currently chained in the table

  std::vector<CacheEntry> cache_;
  std::uint32_t cache_mask_;

  Ref free_head_ = kInvalidRef;
  std::size_t allocated_nodes_ = 0;  ///< live + dead (excludes free slots)
  std::size_t free_nodes_ = 0;       ///< dead (refcount 0), not yet reclaimed
  std::size_t dead_estimate_ = 0;

  DfStats stats_;
};

}  // namespace pbdd::df
