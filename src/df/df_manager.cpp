#include "df/df_manager.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/hash.hpp"

namespace pbdd::df {

// ---------------------------------------------------------------------------
// DfBdd handle
// ---------------------------------------------------------------------------

DfBdd::DfBdd(DfManager* mgr, Ref ref) : mgr_(mgr), ref_(ref) {}

DfBdd::DfBdd(const DfBdd& other) : mgr_(other.mgr_), ref_(other.ref_) {
  if (mgr_ != nullptr) mgr_->ref_node(ref_);
}

DfBdd::DfBdd(DfBdd&& other) noexcept : mgr_(other.mgr_), ref_(other.ref_) {
  other.mgr_ = nullptr;
  other.ref_ = kInvalidRef;
}

DfBdd& DfBdd::operator=(const DfBdd& other) {
  if (this == &other) return *this;
  if (other.mgr_ != nullptr) other.mgr_->ref_node(other.ref_);
  release();
  mgr_ = other.mgr_;
  ref_ = other.ref_;
  return *this;
}

DfBdd& DfBdd::operator=(DfBdd&& other) noexcept {
  if (this == &other) return *this;
  release();
  mgr_ = other.mgr_;
  ref_ = other.ref_;
  other.mgr_ = nullptr;
  other.ref_ = kInvalidRef;
  return *this;
}

DfBdd::~DfBdd() { release(); }

void DfBdd::release() noexcept {
  if (mgr_ != nullptr) {
    mgr_->deref_node(ref_);
    mgr_ = nullptr;
    ref_ = kInvalidRef;
  }
}

// ---------------------------------------------------------------------------
// Manager construction
// ---------------------------------------------------------------------------

DfManager::DfManager(unsigned num_vars, DfConfig config)
    : num_vars_(num_vars), config_(config) {
  var_at_level_.resize(num_vars_);
  level_of_var_.resize(num_vars_);
  for (unsigned v = 0; v < num_vars_; ++v) {
    var_at_level_[v] = v;
    level_of_var_[v] = v;
  }
  nodes_.resize(2);  // slots 0 and 1 are the terminal constants
  nodes_[kZero].var = kTermVar;
  nodes_[kOne].var = kTermVar;
  const std::size_t buckets = std::size_t{1} << config_.initial_buckets_log2;
  buckets_.assign(buckets, kInvalidRef);
  bucket_mask_ = static_cast<std::uint32_t>(buckets - 1);
  const std::size_t cache_size = std::size_t{1} << config_.cache_log2;
  cache_.resize(cache_size);
  cache_mask_ = static_cast<std::uint32_t>(cache_size - 1);
}

// ---------------------------------------------------------------------------
// Reference counting
// ---------------------------------------------------------------------------

void DfManager::ref_node(Ref r) noexcept {
  Node& n = nodes_[r];
  ++n.refcount;
  if (n.dead) {
    // Resurrection of a dead-but-unswept node (classic lazy-death packages
    // allow this; the node never left the unique table).
    n.dead = false;
    assert(dead_estimate_ > 0);
    --dead_estimate_;
  }
}

void DfManager::deref_node(Ref r) noexcept {
  Node& n = nodes_[r];
  assert(n.refcount > 0);
  if (--n.refcount == 0 && r > kOne) {
    n.dead = true;
    ++dead_estimate_;
  }
}

// ---------------------------------------------------------------------------
// Node creation / unique table
// ---------------------------------------------------------------------------

Ref DfManager::alloc_node() {
  ++allocated_nodes_;
  if (free_head_ != kInvalidRef) {
    const Ref r = free_head_;
    free_head_ = nodes_[r].next;
    --free_nodes_;
    return r;
  }
  nodes_.emplace_back();
  return static_cast<Ref>(nodes_.size() - 1);
}

Ref DfManager::mk_node(unsigned var, Ref low, Ref high) {
  if (low == high) return low;
  const std::uint64_t h = util::hash_triple(var, low, high);
  const std::uint32_t bucket = static_cast<std::uint32_t>(h) & bucket_mask_;
  for (Ref r = buckets_[bucket]; r != kInvalidRef; r = nodes_[r].next) {
    const Node& n = nodes_[r];
    if (n.var == var && n.low == low && n.high == high) return r;
  }
  const Ref r = alloc_node();
  Node& n = nodes_[r];
  n.var = var;
  n.low = low;
  n.high = high;
  n.refcount = 0;
  n.next = buckets_[bucket];
  buckets_[bucket] = r;
  ref_node(low);
  ref_node(high);
  ++table_count_;
  ++stats_.nodes_created;
  if (table_count_ > buckets_.size()) grow_table();
  return r;
}

void DfManager::grow_table() {
  const std::size_t new_size = buckets_.size() * 2;
  std::vector<Ref> fresh(new_size, kInvalidRef);
  const std::uint32_t new_mask = static_cast<std::uint32_t>(new_size - 1);
  for (Ref head : buckets_) {
    while (head != kInvalidRef) {
      Node& n = nodes_[head];
      const Ref next = n.next;
      const std::uint32_t bucket =
          static_cast<std::uint32_t>(util::hash_triple(n.var, n.low, n.high)) &
          new_mask;
      n.next = fresh[bucket];
      fresh[bucket] = head;
      head = next;
    }
  }
  buckets_ = std::move(fresh);
  bucket_mask_ = new_mask;
}

// ---------------------------------------------------------------------------
// Apply (Figure 3 of the paper)
// ---------------------------------------------------------------------------

Ref DfManager::apply_rec(Op op, Ref f, Ref g) {
  // Line 1: terminal case.
  const Ref simplified = terminal_case<Ref>(op, f, g, kZero, kOne, kInvalidRef);
  if (simplified != kInvalidRef) return simplified;

  if (op_commutative(op) && f > g) std::swap(f, g);

  // Lines 2-3: computed cache.
  ++stats_.cache_lookups;
  const std::uint32_t slot =
      static_cast<std::uint32_t>(util::hash_triple(
          static_cast<std::uint64_t>(op), f, g)) &
      cache_mask_;
  CacheEntry& entry = cache_[slot];
  if (entry.valid && entry.op == op && entry.f == f && entry.g == g) {
    ++stats_.cache_hits;
    return entry.result;
  }

  // Line 4: top variable = the one at the higher (smaller-index) level.
  const unsigned var =
      node_level(f) <= node_level(g) ? nodes_[f].var : nodes_[g].var;
  assert(var < num_vars_);

  // Lines 5-6: Shannon expansion of the cofactors.
  ++stats_.ops_performed;
  const Ref res0 =
      apply_rec(op, cofactor(f, var, false), cofactor(g, var, false));
  const Ref res1 =
      apply_rec(op, cofactor(f, var, true), cofactor(g, var, true));

  // Lines 7-12: reduction + unique table.
  const Ref result = (res0 == res1) ? res0 : mk_node(var, res0, res1);

  // Lines 13-14: cache insertion (direct-mapped, lossy).
  entry = CacheEntry{f, g, result, op, true};
  return result;
}

DfBdd DfManager::apply(Op op, const DfBdd& f, const DfBdd& g) {
  assert(f.manager() == this && g.manager() == this);
  maybe_auto_gc();
  return make_handle(apply_rec(op, f.ref(), g.ref()));
}

DfBdd DfManager::var(unsigned v) {
  assert(v < num_vars_);
  return make_handle(mk_node(v, kZero, kOne));
}

DfBdd DfManager::nvar(unsigned v) {
  assert(v < num_vars_);
  return make_handle(mk_node(v, kOne, kZero));
}

DfBdd DfManager::not_(const DfBdd& f) {
  maybe_auto_gc();
  return make_handle(apply_rec(Op::Xor, f.ref(), kOne));
}

DfBdd DfManager::ite(const DfBdd& c, const DfBdd& t, const DfBdd& e) {
  // ITE(c, t, e) = (c AND t) OR (e AND NOT c); both conjuncts are disjoint,
  // so OR is exact. Composing through apply keeps everything in the global
  // computed cache.
  maybe_auto_gc();
  const Ref ct = apply_rec(Op::And, c.ref(), t.ref());
  const Ref ec = apply_rec(Op::Diff, e.ref(), c.ref());
  return make_handle(apply_rec(Op::Or, ct, ec));
}

// ---------------------------------------------------------------------------
// Cofactor / quantification / composition
// ---------------------------------------------------------------------------

DfBdd DfManager::restrict_(const DfBdd& f, unsigned v, bool value) {
  assert(v < num_vars_);
  maybe_auto_gc();
  std::unordered_map<Ref, Ref> memo;
  const unsigned v_level = level_of_var_[v];
  auto rec = [&](auto&& self, Ref r) -> Ref {
    if (r <= kOne || node_level(r) > v_level) return r;
    if (var_of(r) == v) return value ? high_of(r) : low_of(r);
    if (auto it = memo.find(r); it != memo.end()) return it->second;
    const Ref result =
        mk_node(var_of(r), self(self, low_of(r)), self(self, high_of(r)));
    memo.emplace(r, result);
    return result;
  };
  return make_handle(rec(rec, f.ref()));
}

namespace {
bool contains(const std::vector<unsigned>& sorted_vars, unsigned v) {
  return std::binary_search(sorted_vars.begin(), sorted_vars.end(), v);
}
}  // namespace

DfBdd DfManager::exists(const DfBdd& f, const std::vector<unsigned>& vars) {
  maybe_auto_gc();
  std::vector<unsigned> sorted = vars;
  std::sort(sorted.begin(), sorted.end());
  std::unordered_map<Ref, Ref> memo;
  auto rec = [&](auto&& self, Ref r) -> Ref {
    if (r <= kOne) return r;
    if (auto it = memo.find(r); it != memo.end()) return it->second;
    const Ref lo = self(self, low_of(r));
    const Ref hi = self(self, high_of(r));
    const Ref result = contains(sorted, var_of(r))
                           ? apply_rec(Op::Or, lo, hi)
                           : mk_node(var_of(r), lo, hi);
    memo.emplace(r, result);
    return result;
  };
  return make_handle(rec(rec, f.ref()));
}

DfBdd DfManager::forall(const DfBdd& f, const std::vector<unsigned>& vars) {
  maybe_auto_gc();
  std::vector<unsigned> sorted = vars;
  std::sort(sorted.begin(), sorted.end());
  std::unordered_map<Ref, Ref> memo;
  auto rec = [&](auto&& self, Ref r) -> Ref {
    if (r <= kOne) return r;
    if (auto it = memo.find(r); it != memo.end()) return it->second;
    const Ref lo = self(self, low_of(r));
    const Ref hi = self(self, high_of(r));
    const Ref result = contains(sorted, var_of(r))
                           ? apply_rec(Op::And, lo, hi)
                           : mk_node(var_of(r), lo, hi);
    memo.emplace(r, result);
    return result;
  };
  return make_handle(rec(rec, f.ref()));
}

DfBdd DfManager::compose(const DfBdd& f, unsigned v, const DfBdd& g) {
  // f[v := g] = (g AND f|v=1) OR (f|v=0 AND NOT g)
  maybe_auto_gc();
  std::unordered_map<Ref, Ref> memo0;
  std::unordered_map<Ref, Ref> memo1;
  const unsigned v_level = level_of_var_[v];
  auto rec = [&](auto&& self, Ref r, bool value,
                 std::unordered_map<Ref, Ref>& memo) -> Ref {
    if (r <= kOne || node_level(r) > v_level) return r;
    if (var_of(r) == v) return value ? high_of(r) : low_of(r);
    if (auto it = memo.find(r); it != memo.end()) return it->second;
    const Ref result = mk_node(var_of(r), self(self, low_of(r), value, memo),
                               self(self, high_of(r), value, memo));
    memo.emplace(r, result);
    return result;
  };
  const Ref f1 = rec(rec, f.ref(), true, memo1);
  const Ref f0 = rec(rec, f.ref(), false, memo0);
  const Ref a = apply_rec(Op::And, g.ref(), f1);
  const Ref b = apply_rec(Op::Diff, f0, g.ref());
  return make_handle(apply_rec(Op::Or, a, b));
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

double DfManager::sat_count(const DfBdd& f) {
  std::unordered_map<Ref, double> memo;
  // weight(r): satisfying fraction counted over the levels strictly below
  // r's level; terminals sit at level num_vars_.
  auto rec = [&](auto&& self, Ref r) -> double {
    if (r == kZero) return 0.0;
    if (r == kOne) return 1.0;
    if (auto it = memo.find(r); it != memo.end()) return it->second;
    const unsigned my_level = node_level(r);
    const double lo =
        self(self, low_of(r)) *
        std::exp2(static_cast<double>(node_level(low_of(r)) - my_level - 1));
    const double hi =
        self(self, high_of(r)) *
        std::exp2(static_cast<double>(node_level(high_of(r)) - my_level - 1));
    const double result = lo + hi;
    memo.emplace(r, result);
    return result;
  };
  return rec(rec, f.ref()) *
         std::exp2(static_cast<double>(node_level(f.ref())));
}

std::optional<std::vector<std::int8_t>> DfManager::sat_one(const DfBdd& f) {
  if (f.ref() == kZero) return std::nullopt;
  std::vector<std::int8_t> assignment(num_vars_, -1);
  Ref r = f.ref();
  while (r > kOne) {
    // In a reduced BDD every internal node is non-constant, so any non-zero
    // branch leads to the one terminal.
    if (low_of(r) != kZero) {
      assignment[var_of(r)] = 0;
      r = low_of(r);
    } else {
      assignment[var_of(r)] = 1;
      r = high_of(r);
    }
  }
  return assignment;
}

bool DfManager::eval(const DfBdd& f, const std::vector<bool>& assignment) {
  assert(assignment.size() >= num_vars_);
  Ref r = f.ref();
  while (r > kOne) r = assignment[var_of(r)] ? high_of(r) : low_of(r);
  return r == kOne;
}

std::vector<unsigned> DfManager::support(const DfBdd& f) {
  std::unordered_set<Ref> visited;
  std::vector<bool> in_support(num_vars_, false);
  auto rec = [&](auto&& self, Ref r) -> void {
    if (r <= kOne || !visited.insert(r).second) return;
    in_support[var_of(r)] = true;
    self(self, low_of(r));
    self(self, high_of(r));
  };
  rec(rec, f.ref());
  std::vector<unsigned> result;
  for (unsigned v = 0; v < num_vars_; ++v) {
    if (in_support[v]) result.push_back(v);
  }
  return result;
}

std::size_t DfManager::node_count(const DfBdd& f) {
  std::unordered_set<Ref> visited;
  auto rec = [&](auto&& self, Ref r) -> void {
    if (r <= kOne || !visited.insert(r).second) return;
    self(self, low_of(r));
    self(self, high_of(r));
  };
  rec(rec, f.ref());
  return visited.size();
}

// ---------------------------------------------------------------------------
// Garbage collection (reference counting + free list)
// ---------------------------------------------------------------------------

void DfManager::maybe_auto_gc() {
  if (config_.auto_gc && allocated_nodes_ > 4096 &&
      static_cast<double>(dead_estimate_) >
          config_.auto_gc_dead_fraction *
              static_cast<double>(allocated_nodes_)) {
    gc();
  }
}

std::size_t DfManager::gc() {
  ++stats_.gc_runs;
  // The computed cache may reference nodes about to be reclaimed.
  for (CacheEntry& entry : cache_) entry.valid = false;

  std::vector<Ref> dead;
  for (Ref r = 2; r < nodes_.size(); ++r) {
    const Node& n = nodes_[r];
    if (n.var != kFreeVar && n.refcount == 0) dead.push_back(r);
  }

  std::size_t reclaimed = 0;
  while (!dead.empty()) {
    const Ref r = dead.back();
    dead.pop_back();
    Node& n = nodes_[r];
    // Unlink from the unique table.
    const std::uint32_t bucket =
        static_cast<std::uint32_t>(util::hash_triple(n.var, n.low, n.high)) &
        bucket_mask_;
    Ref* link = &buckets_[bucket];
    while (*link != r) link = &nodes_[*link].next;
    *link = n.next;
    --table_count_;
    // Cascade: release this node's references to its children.
    for (const Ref child : {n.low, n.high}) {
      Node& c = nodes_[child];
      assert(c.refcount > 0);
      if (--c.refcount == 0 && child > kOne) dead.push_back(child);
    }
    // Thread onto the free list. This is the locality hazard the paper
    // notes: reused slots are scattered wherever nodes happened to die.
    n.var = kFreeVar;
    n.dead = false;
    n.next = free_head_;
    free_head_ = r;
    ++free_nodes_;
    --allocated_nodes_;
    ++reclaimed;
  }
  dead_estimate_ = 0;
  stats_.nodes_reclaimed += reclaimed;
  return reclaimed;
}


// ---------------------------------------------------------------------------
// Dynamic variable reordering (Rudell sifting, [22] in the paper)
// ---------------------------------------------------------------------------

void DfManager::swap_levels(unsigned level) {
  assert(level + 1 < num_vars_);
  const unsigned x = var_at_level_[level];
  const unsigned y = var_at_level_[level + 1];

  // Nodes needing a rewrite: x-labeled nodes with at least one y-labeled
  // child. All other x-nodes keep their structure (their children are
  // strictly below level+1, so the relabeled order stays valid), and no
  // y-node changes at all.
  std::vector<Ref> affected;
  for (Ref r = 2; r < nodes_.size(); ++r) {
    const Node& n = nodes_[r];
    if (n.var != x) continue;
    if (nodes_[n.low].var == y || nodes_[n.high].var == y) {
      affected.push_back(r);
    }
  }

  for (const Ref f : affected) {
    // Read the old cofactors before any table mutation.
    const Ref f0 = nodes_[f].low;
    const Ref f1 = nodes_[f].high;
    const bool l0 = nodes_[f0].var == y;
    const bool l1 = nodes_[f1].var == y;
    const Ref f00 = l0 ? nodes_[f0].low : f0;
    const Ref f01 = l0 ? nodes_[f0].high : f0;
    const Ref f10 = l1 ? nodes_[f1].low : f1;
    const Ref f11 = l1 ? nodes_[f1].high : f1;

    // f = y ? (x ? f11 : f01) : (x ? f10 : f00) after the swap. The inner
    // x-nodes cannot collide with any pending rewrite (their children are
    // never y-labeled) and cannot be degenerate on both sides at once
    // (at least one of f0/f1 is y-labeled and therefore reduced).
    const Ref new_low = mk_node(x, f00, f10);
    const Ref new_high = mk_node(x, f01, f11);
    assert(new_low != new_high);
    ref_node(new_low);
    ref_node(new_high);

    // Unlink f from its old hash chain (after mk_node, whose growth may
    // have rebuilt the buckets), rewrite it in place, relink. The node id
    // f is untouched, so every handle and every parent reference stays
    // valid and keeps denoting the same function.
    Node& n = nodes_[f];
    {
      const std::uint32_t bucket =
          static_cast<std::uint32_t>(util::hash_triple(x, f0, f1)) &
          bucket_mask_;
      Ref* link = &buckets_[bucket];
      while (*link != f) link = &nodes_[*link].next;
      *link = n.next;
    }
    deref_node(f0);
    deref_node(f1);
    n.var = y;
    n.low = new_low;
    n.high = new_high;
    {
      const std::uint32_t bucket =
          static_cast<std::uint32_t>(
              util::hash_triple(y, new_low, new_high)) &
          bucket_mask_;
      n.next = buckets_[bucket];
      buckets_[bucket] = f;
    }
  }

  std::swap(var_at_level_[level], var_at_level_[level + 1]);
  level_of_var_[x] = level + 1;
  level_of_var_[y] = level;
  // Function identities are unchanged, so the computed cache stays valid.
}

std::size_t DfManager::reorder_sift(SiftOptions options) {
  gc();  // exact live counts and no dead-node noise during sizing
  if (num_vars_ < 2) return live_nodes();
  const auto live = [&] { return table_count_ - dead_estimate_; };

  std::size_t previous = live();
  for (unsigned pass = 0;; ++pass) {
    sift_pass(options);
    // Swapping rewrites dead-but-unswept nodes too (they must stay
    // order-consistent for lazy resurrection); sweep between passes so
    // sizing and the population heuristic see only live nodes.
    gc();
    const std::size_t now = live();
    if (pass + 1 >= std::max(1u, options.max_passes) || now >= previous) {
      break;
    }
    previous = now;
  }
  ++stats_.reorderings;
  gc();
  return live_nodes();
}

void DfManager::sift_pass(const SiftOptions& options) {
  const auto live = [&] { return table_count_ - dead_estimate_; };

  // Largest variables first (Rudell's heuristic).
  std::vector<std::pair<std::size_t, unsigned>> population(num_vars_);
  for (unsigned v = 0; v < num_vars_; ++v) population[v] = {0, v};
  for (Ref r = 2; r < nodes_.size(); ++r) {
    const Node& n = nodes_[r];
    if (n.var < num_vars_) ++population[n.var].first;
  }
  std::sort(population.begin(), population.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  const unsigned limit =
      options.max_vars == 0
          ? num_vars_
          : std::min<unsigned>(options.max_vars, num_vars_);
  for (unsigned i = 0; i < limit; ++i) {
    const unsigned v = population[i].second;
    const std::size_t start_size = live();
    const std::size_t bound = static_cast<std::size_t>(
        options.max_growth * static_cast<double>(start_size));
    std::size_t best_size = start_size;
    unsigned best_level = level_of_var_[v];

    // Down to the bottom...
    while (level_of_var_[v] + 1 < num_vars_) {
      swap_levels(level_of_var_[v]);
      if (live() < best_size) {
        best_size = live();
        best_level = level_of_var_[v];
      }
      if (live() > bound) break;
    }
    // ...then up to the top...
    while (level_of_var_[v] > 0) {
      swap_levels(level_of_var_[v] - 1);
      if (live() < best_size) {
        best_size = live();
        best_level = level_of_var_[v];
      }
      if (live() > bound && level_of_var_[v] < best_level) break;
    }
    // ...and settle at the best position seen.
    while (level_of_var_[v] < best_level) swap_levels(level_of_var_[v]);
    while (level_of_var_[v] > best_level) swap_levels(level_of_var_[v] - 1);
  }
}

std::size_t DfManager::bytes() const noexcept {
  return nodes_.capacity() * sizeof(Node) +
         buckets_.capacity() * sizeof(Ref) +
         cache_.capacity() * sizeof(CacheEntry);
}

}  // namespace pbdd::df
