// Per-request memory-demand prediction for out-of-core admission control
// (docs/OOC.md).
//
// A breadth-first apply's working set at level v is bounded by the number of
// operator pairs the expansion frontier can carry there, which is itself
// bounded by the product of the operands' *cut widths* at v — the max-cut
// argument behind the paper's memory model. One cheap traversal per operand
// yields its cut profile (edges crossing each level, accumulated with a
// difference array); the pairwise product, summed over levels and batch
// items, upper-bounds the nodes the request can allocate.
//
// The estimate is advisory: `exact` is false when a traversal hit the visit
// cap or an operand is an unresolved in-batch dependency, and the caller
// (the service governor) should fall back to observed history instead.
#pragma once

#include <cstdint>
#include <span>

#include "core/bdd_manager.hpp"

namespace pbdd::ooc {

struct DemandEstimate {
  /// Upper bound on nodes the batch may allocate (sum over items of the
  /// per-level cut-product).
  std::uint64_t nodes = 0;
  /// True when every operand was fully profiled; false means `nodes` is a
  /// partial bound and history should take precedence.
  bool exact = true;
};

/// Profile every item of `batch` against `mgr`. Spends at most `visit_cap`
/// node visits in total. Observes the paging fault barrier (touch_level
/// before every dereference), so spilled operand levels fault back in —
/// call only from a context allowed to fault, e.g. the service dispatcher
/// between batches.
[[nodiscard]] DemandEstimate estimate_batch_demand(
    core::BddManager& mgr, std::span<const core::BatchOp> batch,
    std::size_t visit_cap = 1u << 20);

}  // namespace pbdd::ooc
