// Out-of-core paging tier: spill cold BDD levels to disk, fault them back on
// first touch (docs/OOC.md).
//
// The breadth-first discipline makes the variable level the natural paging
// granule: a pass works on exactly one level at a time, deeper operands are
// queued, not dereferenced, and the expansion/reduction sweeps visit levels
// in order. LevelPager exploits this three ways:
//
//  * Residency is tracked per level. The fault barrier (BddManager::
//    touch_level) is one relaxed store plus one acquire load when the level
//    is resident — cheap enough for mk_node.
//  * Demotion happens only at quiet points (batch barriers, explicit calls),
//    when no worker holds references into arena storage. Fault-in may happen
//    mid-batch: a spilled level is by definition one no worker has touched
//    since the last barrier, so rebuilding it under the per-level mutex
//    races nothing.
//  * Sequential prefetch follows the pass direction (expansion ascends,
//    reduction descends): each fault enqueues the next spilled level in the
//    direction of travel to a background reader that stages the file
//    contents so the next fault skips the disk wait.
//
// Spill segments reuse the snapshot level codec (snapshot/level_codec.hpp):
// CRC-guarded, self-contained, with child references stored as raw NodeRefs.
// Cross-level slots only move at a collection — so gc() faults everything in
// first and then invalidates every segment (PagerHook::refs_invalidated).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/bdd_manager.hpp"
#include "core/pager_hook.hpp"

namespace pbdd::ooc {

struct PagerConfig {
  /// Directory for spill segment files (one per level). Must exist.
  std::string spill_dir;
  /// Resident-node target: each batch barrier demotes least-recently-touched
  /// levels until the allocated-slot total is at or below this. 0 = no
  /// automatic demotion (explicit demote_level()/demote_until() only).
  std::size_t node_budget = 0;
  /// Stage the next spilled level in the pass direction off-thread.
  bool prefetch = true;
  /// Keep the hottest levels resident even over budget: never demote a
  /// level touched within this many barriers of now.
  std::uint64_t min_idle_barriers = 1;
};

/// Counter snapshot (monotonic since attach; see also metrics families in
/// service metrics_text()).
struct PagerStats {
  std::uint64_t demotions = 0;
  std::uint64_t faults = 0;
  std::uint64_t prefetch_hits = 0;    ///< faults served from staged buffers
  std::uint64_t prefetch_issued = 0;  ///< requests handed to the reader
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;       ///< fault + prefetch file reads
  std::uint64_t spilled_levels = 0;   ///< currently on disk
  std::uint64_t spilled_nodes = 0;    ///< allocated slots currently on disk
  std::uint64_t resident_nodes = 0;   ///< allocated slots currently in RAM
};

class LevelPager final : public core::PagerHook {
 public:
  /// Attaches itself to `mgr`. Every level must be resident (a fresh
  /// manager, or a quiet point) and no batch may be in flight.
  LevelPager(core::BddManager& mgr, PagerConfig config);
  /// Faults nothing back in (the manager never dereferences node storage on
  /// destruction); detaches, stops the prefetch reader, deletes segments.
  ~LevelPager() override;

  LevelPager(const LevelPager&) = delete;
  LevelPager& operator=(const LevelPager&) = delete;

  // ---- PagerHook ------------------------------------------------------------
  void touch_level(unsigned var) override;
  void ensure_all_resident() override;
  void batch_barrier() override;
  void refs_invalidated() override;

  // ---- Explicit control (tests, service governor) ---------------------------
  /// Demote one resident level now. Quiet point only. Returns false if the
  /// level was already spilled or holds no allocated slots.
  bool demote_level(unsigned var);
  /// Demote least-recently-touched levels until the resident allocated-slot
  /// total is at or below `target_nodes`. Quiet point only. Returns the
  /// number of levels demoted.
  unsigned demote_until(std::size_t target_nodes);

  [[nodiscard]] bool is_spilled(unsigned var) const noexcept {
    return levels_[var].spilled.load(std::memory_order_acquire);
  }
  [[nodiscard]] PagerStats stats() const;
  [[nodiscard]] const PagerConfig& config() const noexcept { return config_; }

 private:
  struct Level {
    std::mutex mu;                   ///< serializes fault-in / staging
    std::atomic<bool> spilled{false};
    std::atomic<std::uint64_t> last_touch{0};
    std::uint64_t seq = 0;           ///< segment generation (guarded by mu)
    std::atomic<std::uint64_t> nodes{0};  ///< slots in the current segment
    std::vector<std::uint8_t> staged;     ///< prefetched bytes (guarded by mu)
    std::uint64_t staged_seq = 0;    ///< generation `staged` was read at
  };

  [[nodiscard]] std::string segment_path(unsigned var) const;
  [[nodiscard]] std::size_t level_slots(unsigned var) const noexcept;
  void fault_in(unsigned var);
  void issue_prefetch(unsigned var);
  void prefetch_loop();
  void stop_prefetch_thread();
  void delete_segments();

  core::BddManager& mgr_;
  PagerConfig config_;
  std::vector<Level> levels_;
  std::atomic<std::uint64_t> clock_{1};  ///< barrier counter (touch recency)

  // Direction of travel: +1 while faults ascend (expansion), -1 while they
  // descend (reduction). Updated under the faulted level's mutex; read
  // racily — a stale direction only mis-aims one prefetch.
  std::atomic<int> direction_{1};
  std::atomic<unsigned> last_fault_var_{0};

  // Stats (relaxed counters).
  std::atomic<std::uint64_t> demotions_{0};
  std::atomic<std::uint64_t> faults_{0};
  std::atomic<std::uint64_t> prefetch_hits_{0};
  std::atomic<std::uint64_t> prefetch_issued_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  /// Resident allocated-slot estimate, adjusted at demote/fault and
  /// recomputed exactly at every batch barrier (a quiet point) — so
  /// stats() never walks arena sizes concurrently with a running batch.
  std::atomic<std::uint64_t> resident_nodes_{0};

  // Prefetch reader.
  std::thread prefetch_thread_;
  std::mutex prefetch_mu_;
  std::condition_variable prefetch_cv_;
  std::deque<unsigned> prefetch_queue_;
  bool prefetch_stop_ = false;
};

}  // namespace pbdd::ooc
