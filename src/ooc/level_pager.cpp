#include "ooc/level_pager.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "obs/trace_points.hpp"
#include "runtime/inject.hpp"
#include "snapshot/level_codec.hpp"

namespace pbdd::ooc {

namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return {};
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
  if (!in.read(reinterpret_cast<char*>(buf.data()), size)) return {};
  return buf;
}

}  // namespace

LevelPager::LevelPager(core::BddManager& mgr, PagerConfig config)
    : mgr_(mgr), config_(std::move(config)), levels_(mgr.num_vars()) {
  if (config_.spill_dir.empty()) {
    throw std::invalid_argument("LevelPager: spill_dir must be set");
  }
  // Fail now, not at the first demotion under memory pressure.
  const std::string probe = config_.spill_dir + "/.pbdd-spill-probe";
  {
    std::ofstream out(probe, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("LevelPager: spill_dir not writable: " +
                               config_.spill_dir);
    }
  }
  std::remove(probe.c_str());
  std::uint64_t resident = 0;
  for (unsigned v = 0; v < levels_.size(); ++v) resident += level_slots(v);
  resident_nodes_.store(resident, std::memory_order_relaxed);
  if (config_.prefetch) {
    prefetch_thread_ = std::thread([this] { prefetch_loop(); });
  }
  mgr_.attach_pager(this);
}

LevelPager::~LevelPager() {
  // The manager never dereferences node storage on teardown, so spilled
  // levels can stay spilled; just make sure nothing faults through us again.
  if (mgr_.pager() == this) mgr_.attach_pager(nullptr);
  stop_prefetch_thread();
  delete_segments();
}

std::string LevelPager::segment_path(unsigned var) const {
  return config_.spill_dir + "/pbdd-level-" + std::to_string(var) + ".spill";
}

std::size_t LevelPager::level_slots(unsigned var) const noexcept {
  std::size_t total = 0;
  for (unsigned w = 0; w < mgr_.workers(); ++w) {
    total += mgr_.worker(w).node_arena(var).size();
  }
  return total;
}

// ---------------------------------------------------------------------------
// PagerHook
// ---------------------------------------------------------------------------

void LevelPager::touch_level(unsigned var) {
  Level& lvl = levels_[var];
  lvl.last_touch.store(clock_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  if (lvl.spilled.load(std::memory_order_acquire)) fault_in(var);
}

void LevelPager::ensure_all_resident() {
  for (unsigned v = 0; v < levels_.size(); ++v) {
    if (levels_[v].spilled.load(std::memory_order_acquire)) fault_in(v);
  }
}

void LevelPager::batch_barrier() {
  clock_.fetch_add(1, std::memory_order_relaxed);
  if (config_.node_budget != 0) demote_until(config_.node_budget);
  // Quiet point: resynchronize the resident estimate with the arenas.
  std::uint64_t resident = 0;
  for (unsigned v = 0; v < levels_.size(); ++v) {
    if (!levels_[v].spilled.load(std::memory_order_relaxed)) {
      resident += level_slots(v);
    }
  }
  resident_nodes_.store(resident, std::memory_order_relaxed);
}

void LevelPager::refs_invalidated() {
  // The collector moved nodes, so every segment's raw child NodeRefs are
  // stale. gc() faulted everything in first (ensure_all_resident), so no
  // level is spilled here — only staged prefetch buffers and queued
  // requests can still reference the dead generation.
  {
    std::lock_guard<std::mutex> lk(prefetch_mu_);
    prefetch_queue_.clear();
  }
  for (Level& lvl : levels_) {
    std::lock_guard<std::mutex> lk(lvl.mu);
    ++lvl.seq;
    lvl.staged.clear();
    lvl.staged.shrink_to_fit();
  }
}

// ---------------------------------------------------------------------------
// Demotion (quiet points only)
// ---------------------------------------------------------------------------

bool LevelPager::demote_level(unsigned var) {
  Level& lvl = levels_[var];
  if (lvl.spilled.load(std::memory_order_acquire)) return false;
  if (level_slots(var) == 0) return false;
  PBDD_INJECT(kOocSpill);

  std::vector<std::uint8_t> bytes;
  const snapshot::SpillStats stats =
      snapshot::encode_spill_level(mgr_, var, bytes);

  std::lock_guard<std::mutex> lk(lvl.mu);
  {
    std::ofstream out(segment_path(var), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      throw std::runtime_error("LevelPager: failed to write spill segment " +
                               segment_path(var));
    }
  }
  ++lvl.seq;
  lvl.nodes.store(stats.nodes, std::memory_order_relaxed);
  lvl.staged.clear();
  lvl.staged.shrink_to_fit();

  // Release the in-memory copy: arenas drop to size 0 (live_nodes() no
  // longer counts this level) and the unique table shrinks to its floor.
  for (unsigned w = 0; w < mgr_.workers(); ++w) {
    mgr_.worker(w).node_arena(var).truncate(0);
  }
  mgr_.unique(var).reset_chains(0);

  lvl.spilled.store(true, std::memory_order_release);
  resident_nodes_.fetch_sub(stats.nodes, std::memory_order_relaxed);
  demotions_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(bytes.size(), std::memory_order_relaxed);
  PBDD_TRACE_INSTANT(kOocDemote, stats.nodes, var);
  return true;
}

unsigned LevelPager::demote_until(std::size_t target_nodes) {
  struct Candidate {
    std::uint64_t last_touch;
    unsigned var;
    std::size_t slots;
  };
  std::vector<Candidate> order;
  std::size_t resident = 0;
  for (unsigned v = 0; v < levels_.size(); ++v) {
    if (levels_[v].spilled.load(std::memory_order_acquire)) continue;
    const std::size_t slots = level_slots(v);
    if (slots == 0) continue;
    resident += slots;
    order.push_back(
        {levels_[v].last_touch.load(std::memory_order_relaxed), v, slots});
  }
  if (resident <= target_nodes) return 0;

  // Coldest first; among equals, deeper levels first — the next pass starts
  // from the top, so shallow levels are the ones about to be touched.
  std::sort(order.begin(), order.end(), [](const Candidate& a,
                                           const Candidate& b) {
    if (a.last_touch != b.last_touch) return a.last_touch < b.last_touch;
    return a.var > b.var;
  });

  const std::uint64_t now = clock_.load(std::memory_order_relaxed);
  unsigned demoted = 0;
  // Two passes: demote idle levels first, then — only if the budget still
  // isn't met — the recently-touched ones (the budget is a hard target).
  for (const bool allow_hot : {false, true}) {
    for (const Candidate& c : order) {
      if (resident <= target_nodes) return demoted;
      const bool hot = now - levels_[c.var].last_touch.load(
                                 std::memory_order_relaxed) <=
                       config_.min_idle_barriers;
      if (hot != allow_hot) continue;
      if (demote_level(c.var)) {
        resident -= c.slots;
        ++demoted;
      }
    }
  }
  return demoted;
}

// ---------------------------------------------------------------------------
// Fault-in
// ---------------------------------------------------------------------------

void LevelPager::fault_in(unsigned var) {
  // Outside the level mutex so a parked serialize-mode token holder never
  // blocks the thread that is actually faulting.
  PBDD_INJECT(kOocFault);
  Level& lvl = levels_[var];
  std::uint64_t restored = 0;
  {
    std::unique_lock<std::mutex> lk(lvl.mu);
    if (!lvl.spilled.load(std::memory_order_relaxed)) return;  // lost race
    std::vector<std::uint8_t> bytes;
    if (!lvl.staged.empty() && lvl.staged_seq == lvl.seq) {
      bytes = std::move(lvl.staged);
      prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      bytes = read_file(segment_path(var));
      bytes_read_.fetch_add(bytes.size(), std::memory_order_relaxed);
    }
    lvl.staged.clear();
    if (bytes.empty()) {
      throw std::runtime_error("LevelPager: missing spill segment " +
                               segment_path(var));
    }
    restored = snapshot::decode_spill_level(mgr_, var, bytes.data(),
                                            bytes.size());
    // Publishes the rebuilt arenas/chains to every worker that acquires
    // residency through touch_level's acquire load.
    lvl.spilled.store(false, std::memory_order_release);
  }
  faults_.fetch_add(1, std::memory_order_relaxed);
  resident_nodes_.fetch_add(lvl.nodes.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
  PBDD_TRACE_INSTANT(kOocFault, restored, var);

  const unsigned prev = last_fault_var_.exchange(var,
                                                 std::memory_order_relaxed);
  direction_.store(var >= prev ? 1 : -1, std::memory_order_relaxed);
  if (config_.prefetch) issue_prefetch(var);
}

// ---------------------------------------------------------------------------
// Prefetch
// ---------------------------------------------------------------------------

void LevelPager::issue_prefetch(unsigned from_var) {
  const int dir = direction_.load(std::memory_order_relaxed);
  int v = static_cast<int>(from_var) + dir;
  for (; v >= 0 && v < static_cast<int>(levels_.size()); v += dir) {
    if (levels_[static_cast<unsigned>(v)].spilled.load(
            std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lk(prefetch_mu_);
      prefetch_queue_.push_back(static_cast<unsigned>(v));
      prefetch_issued_.fetch_add(1, std::memory_order_relaxed);
      prefetch_cv_.notify_one();
      return;
    }
  }
}

void LevelPager::prefetch_loop() {
  for (;;) {
    unsigned var = 0;
    {
      std::unique_lock<std::mutex> lk(prefetch_mu_);
      prefetch_cv_.wait(lk, [this] {
        return prefetch_stop_ || !prefetch_queue_.empty();
      });
      if (prefetch_stop_) return;
      var = prefetch_queue_.front();
      prefetch_queue_.pop_front();
    }
    Level& lvl = levels_[var];
    std::uint64_t seq = 0;
    {
      std::lock_guard<std::mutex> lk(lvl.mu);
      if (!lvl.spilled.load(std::memory_order_relaxed)) continue;
      if (!lvl.staged.empty()) continue;  // already staged
      seq = lvl.seq;
    }
    // Disk I/O and the integrity probe run without any pager lock held;
    // the generation check below discards a read that raced a demotion.
    std::vector<std::uint8_t> bytes = read_file(segment_path(var));
    if (bytes.empty() ||
        !snapshot::spill_payload_ok(bytes.data(), bytes.size())) {
      continue;  // the synchronous fault path will report a real error
    }
    bytes_read_.fetch_add(bytes.size(), std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(lvl.mu);
    if (lvl.spilled.load(std::memory_order_relaxed) && lvl.seq == seq &&
        lvl.staged.empty()) {
      PBDD_TRACE_INSTANT(kOocPrefetch, bytes.size(), var);
      lvl.staged = std::move(bytes);
      lvl.staged_seq = seq;
    }
  }
}

void LevelPager::stop_prefetch_thread() {
  if (!prefetch_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(prefetch_mu_);
    prefetch_stop_ = true;
  }
  prefetch_cv_.notify_one();
  prefetch_thread_.join();
}

void LevelPager::delete_segments() {
  for (unsigned v = 0; v < levels_.size(); ++v) {
    std::remove(segment_path(v).c_str());
  }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

PagerStats LevelPager::stats() const {
  PagerStats s;
  s.demotions = demotions_.load(std::memory_order_relaxed);
  s.faults = faults_.load(std::memory_order_relaxed);
  s.prefetch_hits = prefetch_hits_.load(std::memory_order_relaxed);
  s.prefetch_issued = prefetch_issued_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.resident_nodes = resident_nodes_.load(std::memory_order_relaxed);
  for (unsigned v = 0; v < levels_.size(); ++v) {
    if (levels_[v].spilled.load(std::memory_order_acquire)) {
      ++s.spilled_levels;
      s.spilled_nodes += levels_[v].nodes.load(std::memory_order_relaxed);
    }
  }
  return s;
}

}  // namespace pbdd::ooc
