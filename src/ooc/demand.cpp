#include "ooc/demand.hpp"

#include <algorithm>
#include <unordered_set>
#include <vector>

namespace pbdd::ooc {

using core::NodeRef;

namespace {

/// Cut profile of one operand: profile[v] = edges of the DAG live across
/// level v (an edge u@l -> c is live at v in [l+1, min(level(c), V-1)];
/// the external edge to the root is live at [0, level(root)]). Built with a
/// difference array, then prefix-summed. Returns false once the shared
/// visit budget runs out.
bool cut_profile(core::BddManager& mgr, NodeRef root, unsigned num_vars,
                 std::vector<std::int64_t>& diff, std::size_t& visits_left) {
  diff.assign(num_vars + 1, 0);
  // A terminal operand expands nothing: every pair it forms resolves
  // immediately, so it contributes no cut width at any level.
  if (core::is_terminal(root)) return true;
  // Root edge.
  diff[0] += 1;
  diff[std::min(core::var_of(root), num_vars - 1) + 1] -= 1;

  std::unordered_set<NodeRef> visited;
  std::vector<NodeRef> stack{root};
  visited.insert(root);
  while (!stack.empty()) {
    if (visits_left == 0) return false;
    --visits_left;
    const NodeRef r = stack.back();
    stack.pop_back();
    const unsigned l = core::var_of(r);
    mgr.touch_level(l);
    const core::BddNode& n = mgr.node(r);
    for (const NodeRef c : {n.low, n.high}) {
      // Child edge live below l down to the child's own level (terminals
      // clamp to the deepest variable: the edge crosses every cut).
      const unsigned lc = std::min(core::level_of(c), num_vars - 1);
      if (lc >= l + 1) {
        diff[l + 1] += 1;
        diff[lc + 1] -= 1;
      }
      if (core::is_internal(c) && visited.insert(c).second) {
        stack.push_back(c);
      }
    }
  }
  return true;
}

}  // namespace

DemandEstimate estimate_batch_demand(core::BddManager& mgr,
                                     std::span<const core::BatchOp> batch,
                                     std::size_t visit_cap) {
  DemandEstimate est;
  const unsigned num_vars = mgr.num_vars();
  if (num_vars == 0) return est;
  std::size_t visits_left = visit_cap;
  std::vector<std::int64_t> diff_f, diff_g;
  std::vector<std::uint64_t> cut_f(num_vars), cut_g(num_vars);

  for (const core::BatchOp& item : batch) {
    // In-batch dependencies produce operands that do not exist yet; their
    // width is unknowable here.
    if (item.f_dep >= 0 || item.g_dep >= 0 || !item.f.valid() ||
        !item.g.valid()) {
      est.exact = false;
      continue;
    }
    if (!cut_profile(mgr, item.f.ref(), num_vars, diff_f, visits_left) ||
        !cut_profile(mgr, item.g.ref(), num_vars, diff_g, visits_left)) {
      est.exact = false;
      break;  // budget exhausted; later items would also be partial
    }
    std::int64_t running_f = 0;
    std::int64_t running_g = 0;
    for (unsigned v = 0; v < num_vars; ++v) {
      running_f += diff_f[v];
      running_g += diff_g[v];
      cut_f[v] = static_cast<std::uint64_t>(running_f);
      cut_g[v] = static_cast<std::uint64_t>(running_g);
    }
    for (unsigned v = 0; v < num_vars; ++v) {
      est.nodes += cut_f[v] * cut_g[v];
    }
  }
  return est;
}

}  // namespace pbdd::ooc
