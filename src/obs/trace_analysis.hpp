// Offline trace analysis: parse a Chrome-trace-event JSON file (the
// Tracer's export format) and derive the paper's evaluation views from it —
// per-worker phase breakdowns (Figs. 13/14), lock hold/contention tables
// (Figs. 16/17), GC phase shares (Figs. 18/19), steal-latency histograms,
// and load-imbalance summaries. Shared by tools/pbdd_trace and the obs test
// suite, so the exporter and the parser are validated against each other.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pbdd::obs {

/// One parsed trace event. Timestamps/durations are in microseconds, as in
/// the Chrome trace format ("ts"/"dur").
struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = '?';
  double ts_us = 0.0;
  double dur_us = 0.0;
  int pid = 0;
  int tid = 0;
  std::map<std::string, double> args;
};

struct ParsedTrace {
  std::vector<TraceEvent> events;        ///< metadata events excluded
  std::map<int, std::string> tracks;     ///< tid -> thread_name metadata
  std::uint64_t dropped_records = 0;     ///< from otherData, when present
};

/// Parse + schema-validate a Chrome trace JSON document. Requires a
/// top-level object with a "traceEvents" array whose entries carry string
/// "name"/"ph", numeric "ts", and numeric "pid"/"tid" ("X" events must also
/// carry "dur"). Throws std::runtime_error with a position-annotated message
/// on malformed JSON or schema violations.
[[nodiscard]] ParsedTrace parse_chrome_trace(const std::string& json_text);

/// Per-worker phase totals in seconds, the Fig. 13 view of one trace.
struct PhaseBreakdown {
  struct Row {
    int tid = 0;
    std::string track;
    double expansion_s = 0.0;
    double reduction_s = 0.0;
    double gc_s = 0.0;
    double steal_run_s = 0.0;
    double stall_s = 0.0;
  };
  std::vector<Row> rows;  ///< sorted by tid
};
[[nodiscard]] PhaseBreakdown phase_breakdown(const ParsedTrace& trace);

/// Formatted reports, one table each.
[[nodiscard]] std::string phase_report(const ParsedTrace& trace);
[[nodiscard]] std::string steal_report(const ParsedTrace& trace);
[[nodiscard]] std::string lock_report(const ParsedTrace& trace);
[[nodiscard]] std::string imbalance_report(const ParsedTrace& trace);
[[nodiscard]] std::string gc_report(const ParsedTrace& trace);
[[nodiscard]] std::string summary_report(const ParsedTrace& trace);

}  // namespace pbdd::obs
