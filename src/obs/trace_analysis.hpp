// Offline trace analysis: parse a Chrome-trace-event JSON file (the
// Tracer's export format) and derive the paper's evaluation views from it —
// per-worker phase breakdowns (Figs. 13/14), lock hold/contention tables
// (Figs. 16/17), GC phase shares (Figs. 18/19), steal-latency histograms,
// and load-imbalance summaries. Shared by tools/pbdd_trace and the obs test
// suite, so the exporter and the parser are validated against each other.
//
// The same module also implements the fleet-side half of distributed
// tracing: merge_traces() stitches per-process exports (writer + replicas)
// into one Perfetto timeline — clock-aligned via the replication handshake
// offsets (wall-clock anchors as a fallback), pids reassigned per process,
// flow events synthesized between ship→apply and route→serve pairs that
// share a trace id — plus a cross-process report (per-replica apply lag,
// routed-read fan-out).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pbdd::obs {

/// One parsed trace event. Timestamps/durations are in microseconds, as in
/// the Chrome trace format ("ts"/"dur").
struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = '?';
  double ts_us = 0.0;
  double dur_us = 0.0;
  int pid = 0;
  int tid = 0;
  std::uint64_t trace_id = 0;  ///< decoded from the "trace" hex arg (0=none)
  std::string flow_id;         ///< flow events only (ph s/t/f): the "id"
  std::map<std::string, double> args;
};

struct ParsedTrace {
  std::vector<TraceEvent> events;        ///< metadata events excluded
  std::map<int, std::string> tracks;     ///< tid -> thread_name metadata
  std::map<int, std::string> processes;  ///< pid -> process_name metadata
  std::uint64_t dropped_records = 0;     ///< from otherData, when present
  /// Per-track drop attribution from otherData ("worker 0" -> count).
  std::map<std::string, std::uint64_t> dropped_by_track;
  /// Clock anchors from otherData (0 when absent): the tracer's absolute
  /// steady-clock origin, plus a steady/wall pair sampled at export time.
  std::uint64_t clock_steady_epoch_ns = 0;
  std::uint64_t clock_export_steady_ns = 0;
  std::uint64_t clock_export_wall_us = 0;
  /// Peer steady-clock offsets (peer_ns - local_ns) from the replication
  /// handshake, keyed by the peer's process name.
  std::map<std::string, std::int64_t> clock_offsets;
};

/// Parse + schema-validate a Chrome trace JSON document. Requires a
/// top-level object with a "traceEvents" array whose entries carry string
/// "name"/"ph" and numeric "pid" ("X" events must also carry "dur", flow
/// events ph s/t/f must carry an "id", non-metadata events numeric
/// "ts"/"tid"). Throws std::runtime_error with a position-annotated message
/// on malformed JSON or schema violations.
[[nodiscard]] ParsedTrace parse_chrome_trace(const std::string& json_text);

/// Per-worker phase totals in seconds, the Fig. 13 view of one trace.
struct PhaseBreakdown {
  struct Row {
    int tid = 0;
    std::string track;
    double expansion_s = 0.0;
    double reduction_s = 0.0;
    double gc_s = 0.0;
    double steal_run_s = 0.0;
    double stall_s = 0.0;
  };
  std::vector<Row> rows;  ///< sorted by tid
};
[[nodiscard]] PhaseBreakdown phase_breakdown(const ParsedTrace& trace);

/// Formatted reports, one table each.
[[nodiscard]] std::string phase_report(const ParsedTrace& trace);
[[nodiscard]] std::string steal_report(const ParsedTrace& trace);
[[nodiscard]] std::string lock_report(const ParsedTrace& trace);
[[nodiscard]] std::string imbalance_report(const ParsedTrace& trace);
[[nodiscard]] std::string gc_report(const ParsedTrace& trace);
[[nodiscard]] std::string summary_report(const ParsedTrace& trace);

// ---------------------------------------------------------------------------
// Fleet merge (pbdd_trace --merge)
// ---------------------------------------------------------------------------

struct MergeResult {
  std::string json;  ///< merged Chrome trace (passes parse_chrome_trace)
  std::size_t events = 0;            ///< non-flow events merged
  std::size_t ship_apply_flows = 0;  ///< matched repl_ship -> repl_apply
  std::size_t route_serve_flows = 0; ///< matched route_read -> serve_read
  std::string report;                ///< fleet report (apply lag, fan-out)
};

/// Merge per-process trace documents into one timeline. texts[0] is the
/// reference process (the writer/loadgen); every other input is shifted
/// onto its clock using the reference's handshake clock_offsets when its
/// process name has one, else the wall-clock anchor pair. Throws on parse
/// or schema errors in any input.
[[nodiscard]] MergeResult merge_traces(const std::vector<std::string>& texts);

}  // namespace pbdd::obs
