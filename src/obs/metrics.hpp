// Metrics registry: counters, gauges, and fixed-bucket histograms with
// Prometheus text exposition and a JSON dump.
//
// Write side: Counter and Histogram shard their cells across padded
// cache-line-sized slots so concurrent writers (one per engine worker, or
// arbitrary service threads) never bounce a line; a thread is pinned to a
// shard on first use. Reads fold the shards, so `value()` is exact once the
// writers are quiescent and a conservative running sum while they are not
// (each shard is read atomically; increments are never lost, only possibly
// not-yet-visible).
//
// Read side: Registry::prometheus_text() renders the standard exposition
// format (# HELP / # TYPE / samples with labels); Registry::json() renders
// the same data as one JSON object. Metric families are created on first
// use and live for the registry's lifetime, so the references returned by
// counter()/gauge()/histogram() are stable and lock-free to update.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/aligned.hpp"

namespace pbdd::obs {

/// Label set of one series, e.g. {{"phase", "expansion"}, {"worker", "0"}}.
/// Order-insensitive: series identity uses the sorted form.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Write shards per counter/histogram. Threads hash onto shards round-robin;
/// collisions are correct (the cells are atomic), just slower.
inline constexpr unsigned kMetricShards = 16;

namespace detail {
struct alignas(util::kCacheLineBytes) PaddedAtomic {
  std::atomic<std::uint64_t> value{0};
};
/// Round-robin shard index of the calling thread.
[[nodiscard]] unsigned this_thread_shard() noexcept;
}  // namespace detail

/// Monotonic counter (u64), folded on read.
class Counter {
 public:
  void add(std::uint64_t v) noexcept {
    shards_[detail::this_thread_shard()].value.fetch_add(
        v, std::memory_order_relaxed);
  }
  void add(std::uint64_t v, unsigned shard) noexcept {
    shards_[shard % kMetricShards].value.fetch_add(v,
                                                   std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  detail::PaddedAtomic shards_[kMetricShards];
};

/// Instantaneous value (double); single atomic cell (gauges are set, not
/// incremented, so sharding buys nothing).
class Gauge {
 public:
  void set(double v) noexcept {
    bits_.store(encode(v), std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return decode(bits_.load(std::memory_order_relaxed));
  }

 private:
  static std::uint64_t encode(double v) noexcept {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double decode(std::uint64_t bits) noexcept {
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram over u64 observations (latencies in ns by
/// convention). Bucket upper bounds are inclusive, ascending; an implicit
/// +Inf bucket catches the rest. Counts/sum shard like Counter.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t v) noexcept;

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts folded over shards; size = bounds().size() + 1 (the
  /// last entry is the +Inf bucket).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] std::uint64_t sum() const noexcept;

 private:
  std::vector<std::uint64_t> bounds_;
  std::size_t stride_;
  /// cells_[shard * stride + bucket]; the two tail cells per shard are the
  /// observation count and sum.
  std::vector<detail::PaddedAtomic> cells_;
  [[nodiscard]] std::atomic<std::uint64_t>& cell(unsigned shard,
                                                 std::size_t i) noexcept {
    return cells_[shard * stride_ + i].value;
  }
  [[nodiscard]] const std::atomic<std::uint64_t>& cell(
      unsigned shard, std::size_t i) const noexcept {
    return cells_[shard * stride_ + i].value;
  }
};

/// Default latency bounds: 1µs..1s, roughly ×4 steps, in ns.
[[nodiscard]] std::vector<std::uint64_t> default_latency_bounds_ns();

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create. `help` is recorded on first creation of the family;
  /// the returned reference is stable for the registry's lifetime.
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       const std::vector<std::uint64_t>& bounds,
                       const Labels& labels = {});

  /// Folded value of an existing series; 0 / 0.0 when absent.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name,
                                            const Labels& labels = {}) const;
  [[nodiscard]] double gauge_value(const std::string& name,
                                   const Labels& labels = {}) const;

  /// Prometheus text exposition format (content type
  /// text/plain; version=0.0.4): # HELP, # TYPE, then one sample line per
  /// series (histograms expand to _bucket/_sum/_count).
  [[nodiscard]] std::string prometheus_text() const;
  /// The same data as one JSON object keyed by family name.
  [[nodiscard]] std::string json() const;

 private:
  enum class Type : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Series {
    Labels labels;  // sorted
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Type type;
    std::string help;
    std::vector<std::unique_ptr<Series>> series;
  };

  Series& series(const std::string& name, const std::string& help, Type type,
                 const Labels& labels);
  [[nodiscard]] const Series* find(const std::string& name,
                                   const Labels& labels) const;

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

}  // namespace pbdd::obs
