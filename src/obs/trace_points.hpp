// Trace instrumentation macros — the tracing analogue of
// src/runtime/inject.hpp. Engine and service code calls these; they expand
// to the inline entry points in obs/trace.hpp, whose bodies are empty when
// the build sets PBDD_TRACE=OFF, so every call site compiles to nothing in
// that configuration. With tracing compiled in but idle the cost per site is
// one relaxed load of the global enabled flag.
//
//   PBDD_TRACE_SPAN(name, kKind)       RAII span `name` over the enclosing
//                                      scope
//   PBDD_TRACE_SPAN_ARGS(name, a0, a1) fill the span's args before any exit
//   PBDD_TRACE_INSTANT(kKind, a0, a1)  point event
//   PBDD_TRACE_NOW()                   start a hand-bracketed span (regions
//                                      that cannot be one RAII scope)
//   PBDD_TRACE_EMIT_SPAN(kKind, t0, a0, a1)
//                                      close a hand-bracketed span
//   PBDD_TRACE_CACHE_SAMPLE(lookups, hits)
//                                      sampled compute-cache counter event
//   PBDD_TRACE_TRACK_BEGIN(id) / _END  bind the calling thread to a logical
//                                      timeline track (worker id / special)
#pragma once

#include "obs/trace.hpp"

#define PBDD_TRACE_SPAN(name, kind) \
  ::pbdd::obs::TraceSpan name(::pbdd::obs::EventKind::kind)
#define PBDD_TRACE_SPAN_ARGS(name, a0, a1) \
  (name).args(static_cast<std::uint64_t>(a0), static_cast<std::uint32_t>(a1))
#define PBDD_TRACE_INSTANT(kind, a0, a1)                    \
  ::pbdd::obs::trace_instant(::pbdd::obs::EventKind::kind,  \
                             static_cast<std::uint64_t>(a0), \
                             static_cast<std::uint32_t>(a1))
#define PBDD_TRACE_NOW() ::pbdd::obs::trace_now()
#define PBDD_TRACE_EMIT_SPAN(kind, t0, a0, a1)                    \
  ::pbdd::obs::trace_emit_span(::pbdd::obs::EventKind::kind, (t0), \
                               static_cast<std::uint64_t>(a0),     \
                               static_cast<std::uint32_t>(a1))
#define PBDD_TRACE_CACHE_SAMPLE(lookups, hits) \
  ::pbdd::obs::trace_cache_sample((lookups), (hits))
#define PBDD_TRACE_TRACK_BEGIN(id) \
  ::pbdd::obs::trace_set_thread_track(static_cast<std::uint16_t>(id))
#define PBDD_TRACE_TRACK_END() \
  ::pbdd::obs::trace_set_thread_track(::pbdd::obs::kTrackExternal)
