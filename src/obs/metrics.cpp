#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace pbdd::obs {

namespace detail {

unsigned this_thread_shard() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local unsigned shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)),
      stride_(bounds_.size() + 3),  // buckets + Inf + count + sum
      cells_(kMetricShards * stride_) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::observe(std::uint64_t v) noexcept {
  const unsigned shard = detail::this_thread_shard();
  // Inclusive upper edges: v lands in the first bucket whose bound >= v;
  // past the last bound it falls into the implicit +Inf bucket.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  cell(shard, bucket).fetch_add(1, std::memory_order_relaxed);
  cell(shard, bounds_.size() + 1).fetch_add(1, std::memory_order_relaxed);
  cell(shard, bounds_.size() + 2).fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1, 0);
  for (unsigned s = 0; s < kMetricShards; ++s) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      counts[b] += cell(s, b).load(std::memory_order_relaxed);
    }
  }
  return counts;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (unsigned s = 0; s < kMetricShards; ++s) {
    total += cell(s, bounds_.size() + 1).load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::sum() const noexcept {
  std::uint64_t total = 0;
  for (unsigned s = 0; s < kMetricShards; ++s) {
    total += cell(s, bounds_.size() + 2).load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> default_latency_bounds_ns() {
  return {1'000,       4'000,       16'000,      64'000,
          256'000,     1'000'000,   4'000'000,   16'000'000,
          64'000'000,  256'000'000, 1'000'000'000};
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

// Exposition-format escapes (text format 0.0.4): label values escape
// backslash, double-quote, and line-feed; HELP text escapes backslash and
// line-feed only (quotes are legal there).
void append_label_value(std::string& out, const std::string& v) {
  for (char c : v) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
}

void append_help_text(std::string& out, const std::string& v) {
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

// JSON needs its own escaper: the Prometheus rules above leave control
// characters raw and don't cover tabs/returns, which breaks json() when a
// label value contains them.
void append_json_escaped(std::string& out, const std::string& v) {
  for (char c : v) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string label_block(const Labels& labels, const char* extra_key = nullptr,
                        const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    append_label_value(out, v);
    out += "\"";
  }
  if (extra_key != nullptr) {
    if (!first) out += ",";
    out += extra_key;
    out += "=\"";
    append_label_value(out, extra_value);
    out += "\"";
  }
  out += "}";
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Registry::Series& Registry::series(const std::string& name,
                                   const std::string& help, Type type,
                                   const Labels& labels) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("invalid metric name: " + name);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, created] = families_.try_emplace(name);
  Family& fam = it->second;
  if (created) {
    fam.type = type;
    fam.help = help;
  } else if (fam.type != type) {
    throw std::invalid_argument("metric " + name +
                                " re-registered with a different type");
  }
  const Labels key = sorted(labels);
  for (const auto& s : fam.series) {
    if (s->labels == key) return *s;
  }
  fam.series.push_back(std::make_unique<Series>());
  fam.series.back()->labels = key;
  return *fam.series.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
  Series& s = series(name, help, Type::kCounter, labels);
  if (!s.counter) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels) {
  Series& s = series(name, help, Type::kGauge, labels);
  if (!s.gauge) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help,
                               const std::vector<std::uint64_t>& bounds,
                               const Labels& labels) {
  Series& s = series(name, help, Type::kHistogram, labels);
  if (!s.histogram) s.histogram = std::make_unique<Histogram>(bounds);
  return *s.histogram;
}

const Registry::Series* Registry::find(const std::string& name,
                                       const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = families_.find(name);
  if (it == families_.end()) return nullptr;
  const Labels key = sorted(labels);
  for (const auto& s : it->second.series) {
    if (s->labels == key) return s.get();
  }
  return nullptr;
}

std::uint64_t Registry::counter_value(const std::string& name,
                                      const Labels& labels) const {
  const Series* s = find(name, labels);
  return (s != nullptr && s->counter) ? s->counter->value() : 0;
}

double Registry::gauge_value(const std::string& name,
                             const Labels& labels) const {
  const Series* s = find(name, labels);
  return (s != nullptr && s->gauge) ? s->gauge->value() : 0.0;
}

std::string Registry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, fam] : families_) {
    out += "# HELP " + name + " ";
    append_help_text(out, fam.help);
    out += "\n";
    out += "# TYPE " + name + " ";
    switch (fam.type) {
      case Type::kCounter:
        out += "counter";
        break;
      case Type::kGauge:
        out += "gauge";
        break;
      case Type::kHistogram:
        out += "histogram";
        break;
    }
    out += "\n";
    for (const auto& s : fam.series) {
      switch (fam.type) {
        case Type::kCounter:
          out += name + label_block(s->labels) + " " +
                 std::to_string(s->counter ? s->counter->value() : 0) + "\n";
          break;
        case Type::kGauge:
          out += name + label_block(s->labels) + " " +
                 format_double(s->gauge ? s->gauge->value() : 0.0) + "\n";
          break;
        case Type::kHistogram: {
          if (!s->histogram) break;
          const auto& bounds = s->histogram->bounds();
          const auto counts = s->histogram->bucket_counts();
          std::uint64_t cumulative = 0;
          for (std::size_t b = 0; b < bounds.size(); ++b) {
            cumulative += counts[b];
            out += name + "_bucket" +
                   label_block(s->labels, "le",
                               std::to_string(bounds[b])) +
                   " " + std::to_string(cumulative) + "\n";
          }
          cumulative += counts[bounds.size()];
          out += name + "_bucket" + label_block(s->labels, "le", "+Inf") +
                 " " + std::to_string(cumulative) + "\n";
          out += name + "_sum" + label_block(s->labels) + " " +
                 std::to_string(s->histogram->sum()) + "\n";
          out += name + "_count" + label_block(s->labels) + " " +
                 std::to_string(s->histogram->count()) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string Registry::json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{";
  bool first_fam = true;
  for (const auto& [name, fam] : families_) {
    if (!first_fam) out += ", ";
    first_fam = false;
    out += "\"" + name + "\": {\"type\": \"";
    out += fam.type == Type::kCounter
               ? "counter"
               : (fam.type == Type::kGauge ? "gauge" : "histogram");
    out += "\", \"series\": [";
    bool first_series = true;
    for (const auto& s : fam.series) {
      if (!first_series) out += ", ";
      first_series = false;
      out += "{\"labels\": {";
      bool first_label = true;
      for (const auto& [k, v] : s->labels) {
        if (!first_label) out += ", ";
        first_label = false;
        out += "\"";
        append_json_escaped(out, k);
        out += "\": \"";
        append_json_escaped(out, v);
        out += "\"";
      }
      out += "}, ";
      switch (fam.type) {
        case Type::kCounter:
          out += "\"value\": " +
                 std::to_string(s->counter ? s->counter->value() : 0);
          break;
        case Type::kGauge:
          out += "\"value\": " +
                 format_double(s->gauge ? s->gauge->value() : 0.0);
          break;
        case Type::kHistogram: {
          out += "\"buckets\": [";
          if (s->histogram) {
            const auto counts = s->histogram->bucket_counts();
            for (std::size_t b = 0; b < counts.size(); ++b) {
              if (b != 0) out += ", ";
              out += std::to_string(counts[b]);
            }
          }
          out += "], \"count\": " +
                 std::to_string(s->histogram ? s->histogram->count() : 0) +
                 ", \"sum\": " +
                 std::to_string(s->histogram ? s->histogram->sum() : 0);
          break;
        }
      }
      out += "}";
    }
    out += "]}";
  }
  out += "}";
  return out;
}

}  // namespace pbdd::obs
