// Per-worker event tracer.
//
// One fixed-capacity ring of 40-byte binary records per thread, written with
// zero synchronization on the hot path: each buffer has exactly one writer
// (the owning thread), readers only run while the engine is quiescent, and
// the only shared state a record append touches is the buffer's own size
// field (a release store so a concurrent exporter never reads a half-written
// record). A full buffer drops new records and counts them (per logical
// track, so a merged fleet trace can attribute loss) — tracing never blocks
// the engine and never allocates after a thread's first event.
//
// Instrumentation points compile down to a single relaxed load of the global
// enabled flag when tracing is compiled in but idle, and to nothing at all
// when the build sets PBDD_TRACE=OFF (the trace_points.hpp entry points have
// empty bodies then, mirroring the src/runtime/inject.hpp pattern). The
// Tracer class itself is compiled in both modes so tools and tests can drive
// it directly.
//
// Timeline model: every record carries a logical *track* — the engine worker
// id, set by the worker pool for the duration of a job, or one of the
// special tracks below. The exporter writes Chrome-trace-event JSON (one
// "thread" per track) loadable in ui.perfetto.dev / chrome://tracing.
//
// Distributed tracing: every record also carries a 64-bit *trace id*. The
// service mints one per request at admission (mint_trace_id), binds it as
// the process-wide active id while the request executes, and propagates it
// over the replication wire so ship→apply and route→serve pairs in
// different processes share an id. Exports stamp a process identity and
// clock anchors into otherData so `pbdd_trace --merge` can stitch
// per-process files into one fleet timeline (docs/OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pbdd::obs {

/// True when the instrumentation points in the engine are compiled in
/// (CMake option PBDD_TRACE, on by default). Direct Tracer calls work
/// either way; with OFF builds a trace of an engine run is simply empty.
[[nodiscard]] constexpr bool trace_compiled() noexcept {
#ifdef PBDD_TRACE_ENABLED
  return true;
#else
  return false;
#endif
}

/// Event catalog (docs/OBSERVABILITY.md). Spans carry a duration; instants
/// are points; counter kinds export as Chrome "C" events (sampled series).
enum class EventKind : std::uint8_t {
  // Engine spans.
  kExpansion = 0,   ///< one expansion-phase call; arg0 = ops this round
  kReduction,       ///< one reduction-phase call
  kEvalTop,         ///< one top-level batch item; arg0 = item index
  kStealRun,        ///< stolen group execution; arg0 = tasks, arg1 = victim
  kResolveStall,    ///< owner stalled on a thief's result
  kLockHold,        ///< pass-lock critical section; arg0 = var
  kGc,              ///< whole collection (per worker)
  kGcMark,          ///< GC mark phase
  kGcFix,           ///< GC fix phase (forward + rewrite)
  kGcRehash,        ///< GC move + rehash phase
  kCheckpointSave,  ///< service snapshot save pause; arg0 = bytes
  kCheckpointRestore,  ///< service snapshot restore; arg0 = nodes
  // Engine instants.
  kContextPush,     ///< spill; arg0 = groups made stealable, arg1 = var
  kContextPop,      ///< parent context resumed; arg0 = stack depth
  kGroupTake,       ///< owner took own group back; arg0 = tasks
  kStealWriteback,  ///< stolen task result published to the victim
  kLockWait,        ///< contended table lock; arg0 = wait ns, arg1 = var
  kTableGrow,       ///< unique-table growth; arg0 = new buckets, arg1 = var
  kTableRehash,     ///< GC reinsert of one variable; arg0 = nodes, arg1 = var
  kBatchStart,      ///< top-level batch begins; arg0 = items
  kBatchEnd,        ///< top-level batch ends
  // Service instants.
  kServiceAdmit,    ///< request admitted; arg0 = ops, arg1 = session
  kServiceReject,   ///< governor gave up; arg1 = session
  kServiceShed,     ///< queued requests shed; arg0 = victims
  kServiceDefer,    ///< governor deferral; arg0 = deferral count
  kGovernorGc,      ///< governor-triggered collection; arg0 = allocated nodes
  // Sampled counters.
  kCacheSample,     ///< compute-cache probe sample; arg0 = lookups, arg1 = hits
  // Out-of-core pager instants.
  kOocDemote,       ///< level spilled to disk; arg0 = nodes, arg1 = var
  kOocFault,        ///< level faulted back in; arg0 = nodes, arg1 = var
  kOocPrefetch,     ///< prefetch staged a level; arg0 = bytes, arg1 = var
  // Replication instants (src/replica/, docs/REPLICATION.md).
  kReplShip,        ///< epoch shipped to a replica; arg0 = bytes, arg1 = replica
  kReplApply,       ///< replica applied an epoch; arg0 = nodes, arg1 = levels
  kReplFailover,    ///< read failed over to the writer; arg1 = replica
  kReplRouteRead,   ///< router dispatched a read; arg0 = op, arg1 = replica
  kReplServeRead,   ///< replica served a read; arg0 = op, arg1 = status
  kCount
};

/// Chrome-trace phase class of a kind.
enum class EventType : std::uint8_t { kSpan, kInstant, kCounter };

[[nodiscard]] const char* event_name(EventKind k) noexcept;
[[nodiscard]] const char* event_category(EventKind k) noexcept;
[[nodiscard]] EventType event_type(EventKind k) noexcept;
/// Exported names of arg0/arg1 (nullptr = omit the arg).
[[nodiscard]] const char* event_arg0(EventKind k) noexcept;
[[nodiscard]] const char* event_arg1(EventKind k) noexcept;

/// Logical tracks beyond the engine worker ids.
inline constexpr std::uint16_t kTrackService = 0x8000;   ///< dispatcher
inline constexpr std::uint16_t kTrackExternal = 0x8001;  ///< other threads

/// Fixed-size binary record; timestamps are ns since Tracer::start().
/// trace_id is 0 when the record was emitted outside any request context.
struct TraceRecord {
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;  ///< 0 for instants/counters
  std::uint64_t arg0 = 0;
  std::uint64_t trace_id = 0;  ///< request/flow correlation id (0 = none)
  std::uint32_t arg1 = 0;
  std::uint16_t track = 0;
  std::uint8_t kind = 0;
  std::uint8_t reserved = 0;
};
static_assert(sizeof(TraceRecord) == 40, "records are packed 40-byte slots");

/// Compute-cache probes are sampled: one kCacheSample per
/// (kCacheSamplePeriod) lookups per worker, so the hot path stays one
/// relaxed load + one mask test.
inline constexpr std::uint64_t kCacheSamplePeriod = 8192;

struct TraceConfig {
  /// Records per thread buffer. At 40 bytes/record the default is 2.5 MiB
  /// per participating thread.
  std::size_t buffer_capacity = std::size_t{1} << 16;
};

class Tracer {
 public:
  /// Global singleton: instrumentation points must not capture references
  /// into any particular manager/service instance.
  [[nodiscard]] static Tracer& instance() noexcept;

  /// Arm tracing: resets the epoch, drops buffers of any previous session,
  /// and flips the hot-path flag. Call while the engine is quiescent (the
  /// same external-call contract as BddManager itself).
  void start(const TraceConfig& config = {});
  /// Disarm. Collected data stays readable until the next start().
  void stop();

  /// Hot-path gate: one relaxed load.
  [[nodiscard]] static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since start() on the steady clock.
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

  /// Absolute steady-clock nanoseconds (same clock as now_ns, unshifted by
  /// the session epoch). This is what goes over the wire in the replication
  /// clock-offset handshake — works in every build mode, traced or not.
  [[nodiscard]] static std::uint64_t steady_now_ns() noexcept;

  /// Append one record to the calling thread's buffer (never blocks; drops
  /// and counts when the buffer is full; no-op when disabled).
  void emit(EventKind kind, std::uint64_t start_ns, std::uint64_t dur_ns,
            std::uint64_t arg0, std::uint32_t arg1) noexcept;

  /// The calling thread's logical track for subsequent records.
  static void set_thread_track(std::uint16_t track) noexcept;
  [[nodiscard]] static std::uint16_t thread_track() noexcept;

  // ---- Trace context (distributed tracing) ----------------------------------

  /// Mint a fresh, never-zero 64-bit trace id: a process-salted counter
  /// pushed through a 64-bit mixer, so concurrent processes mint disjoint
  /// ids without coordination. Works in every build mode.
  [[nodiscard]] static std::uint64_t mint_trace_id() noexcept;
  /// Derive a correlated-but-distinct id (e.g. one flow id per ship×peer
  /// from one request id). Never returns 0.
  [[nodiscard]] static std::uint64_t mix_trace_id(std::uint64_t id,
                                                  std::uint64_t salt) noexcept;

  /// Bind a trace id to the calling thread: records it emits carry the id
  /// until cleared (0). Wins over the process-wide active id.
  static void set_thread_trace_id(std::uint64_t id) noexcept;
  [[nodiscard]] static std::uint64_t thread_trace_id() noexcept;

  /// The process-wide "active request" id: the service dispatcher sets it
  /// around each request so engine worker threads — which never see the
  /// Request — still attribute their batch/GC/checkpoint records. A thread
  /// id, when set, wins over this.
  static void set_active_trace_id(std::uint64_t id) noexcept;
  [[nodiscard]] static std::uint64_t active_trace_id() noexcept;

  /// Process identity stamped into exports ("writer", "r0", ...). Defaults
  /// to "pid<os pid>" until set.
  void set_process_name(std::string name);
  [[nodiscard]] std::string process_name() const;

  /// Record a peer's steady-clock offset (peer_ns - local_ns at the same
  /// wall instant, from the replication handshake). Exported in otherData
  /// so the merge tool can align the peer's timeline to this process's.
  void set_clock_offset(const std::string& peer, std::int64_t offset_ns);
  [[nodiscard]] std::map<std::string, std::int64_t> clock_offsets() const;

  struct Snapshot {
    std::vector<TraceRecord> records;  ///< all threads, sorted by start_ns
    std::uint64_t dropped = 0;         ///< records lost to full buffers
    std::size_t threads = 0;           ///< buffers that saw at least a record
    /// Drops attributed to the track that was bound when the drop happened.
    std::map<std::uint16_t, std::uint64_t> dropped_by_track;
  };
  /// Copy out everything recorded so far. Safe while disabled or while the
  /// traced system is quiescent.
  [[nodiscard]] Snapshot collect() const;

  /// Live session status (the /tracez endpoint renders this as JSON).
  struct Status {
    bool compiled = false;       ///< trace_compiled()
    bool enabled = false;        ///< currently recording
    std::uint64_t session = 0;   ///< start() count
    std::size_t buffer_capacity = 0;
    std::size_t threads = 0;     ///< registered thread buffers
    std::uint64_t records = 0;   ///< records currently held
    std::uint64_t dropped = 0;   ///< records lost to full buffers
    std::string process_name;
  };
  [[nodiscard]] Status status() const;
  /// Status rendered as a one-object JSON document — the /tracez endpoint
  /// body, identical across writer, replica, and loadgen processes.
  [[nodiscard]] std::string status_json() const;

  /// Chrome-trace-event JSON ({"traceEvents": [...]}) with one named thread
  /// per track. Returns the number of events written.
  std::size_t write_chrome_trace(std::ostream& os) const;
  /// Convenience: write_chrome_trace to a file; throws std::runtime_error
  /// when the file cannot be written.
  std::size_t write_chrome_trace_file(const std::string& path) const;

 private:
  Tracer() = default;

  /// Per-thread drop accounting: a handful of {track, count} slots is
  /// plenty (a thread binds at most a few distinct tracks per session);
  /// overflow folds into the last slot's track.
  static constexpr std::size_t kDropSlots = 8;

  struct ThreadBuffer {
    explicit ThreadBuffer(std::size_t capacity) : records(capacity) {}
    std::vector<TraceRecord> records;
    /// Single-writer cursor; release-published so collect() sees whole
    /// records only.
    std::atomic<std::uint32_t> size{0};
    std::atomic<std::uint64_t> dropped{0};
    /// track+1 so 0 means "slot free"; owner-thread installed, collector
    /// read.
    std::atomic<std::uint32_t> drop_track[kDropSlots] = {};
    std::atomic<std::uint64_t> drop_count[kDropSlots] = {};
  };

  [[nodiscard]] ThreadBuffer* local_buffer();

  static std::atomic<bool> enabled_;
  static std::atomic<std::uint64_t> active_trace_id_;

  mutable std::mutex mutex_;  ///< buffer registry + start/stop + identity
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::size_t capacity_ = TraceConfig{}.buffer_capacity;
  std::string process_name_;
  std::map<std::string, std::int64_t> clock_offsets_;
  /// Bumped by every start(); stale thread-local buffer pointers from a
  /// previous session re-register on first use.
  std::atomic<std::uint64_t> session_{0};
  std::atomic<std::uint64_t> epoch_ns_{0};  ///< steady-clock origin
};

/// RAII thread-trace-id binding for a request-scoped region.
class TraceIdScope {
 public:
  explicit TraceIdScope(std::uint64_t id) noexcept
      : prev_(Tracer::thread_trace_id()) {
    Tracer::set_thread_trace_id(id);
  }
  TraceIdScope(const TraceIdScope&) = delete;
  TraceIdScope& operator=(const TraceIdScope&) = delete;
  ~TraceIdScope() { Tracer::set_thread_trace_id(prev_); }

 private:
  std::uint64_t prev_;
};

/// RAII span: captures the start time on construction (when enabled) and
/// emits a kSpan record on destruction. args() fills arg0/arg1 before any
/// exit path.
class TraceSpan {
 public:
  explicit TraceSpan(EventKind kind) noexcept : kind_(kind) {
#ifdef PBDD_TRACE_ENABLED
    if (Tracer::enabled()) {
      armed_ = true;
      start_ = Tracer::instance().now_ns();
    }
#endif
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
#ifdef PBDD_TRACE_ENABLED
    if (armed_ && Tracer::enabled()) {
      Tracer& t = Tracer::instance();
      t.emit(kind_, start_, t.now_ns() - start_, arg0_, arg1_);
    }
#endif
  }
  void args(std::uint64_t arg0, std::uint32_t arg1 = 0) noexcept {
    arg0_ = arg0;
    arg1_ = arg1;
  }

 private:
  EventKind kind_;
  [[maybe_unused]] bool armed_ = false;
  [[maybe_unused]] std::uint64_t start_ = 0;
  std::uint64_t arg0_ = 0;
  std::uint32_t arg1_ = 0;
};

// ---------------------------------------------------------------------------
// Instrumentation entry points (called through the PBDD_TRACE_* macros in
// trace_points.hpp). Empty bodies when PBDD_TRACE=OFF: the call sites
// compile to nothing, including the argument evaluation of plain counters.
// ---------------------------------------------------------------------------

inline void trace_instant(EventKind kind, std::uint64_t arg0,
                          std::uint32_t arg1) noexcept {
#ifdef PBDD_TRACE_ENABLED
  if (Tracer::enabled()) {
    Tracer& t = Tracer::instance();
    t.emit(kind, t.now_ns(), 0, arg0, arg1);
  }
#else
  (void)kind;
  (void)arg0;
  (void)arg1;
#endif
}

/// Start time for a hand-bracketed span (regions that cannot be a single
/// RAII scope, e.g. the reduction pass-lock hold). 0 when idle or OFF.
[[nodiscard]] inline std::uint64_t trace_now() noexcept {
#ifdef PBDD_TRACE_ENABLED
  return Tracer::enabled() ? Tracer::instance().now_ns() : 0;
#else
  return 0;
#endif
}

inline void trace_emit_span(EventKind kind, std::uint64_t start_ns,
                            std::uint64_t arg0, std::uint32_t arg1) noexcept {
#ifdef PBDD_TRACE_ENABLED
  if (start_ns != 0 && Tracer::enabled()) {
    Tracer& t = Tracer::instance();
    t.emit(kind, start_ns, t.now_ns() - start_ns, arg0, arg1);
  }
#else
  (void)kind;
  (void)start_ns;
  (void)arg0;
  (void)arg1;
#endif
}

/// Sampled compute-cache counter: emits every kCacheSamplePeriod-th lookup.
/// The mask test comes first: the cache-probe path is the engine's hottest,
/// so the common case must not even load the enabled flag.
inline void trace_cache_sample(std::uint64_t lookups,
                               std::uint64_t hits) noexcept {
#ifdef PBDD_TRACE_ENABLED
  if ((lookups & (kCacheSamplePeriod - 1)) == 0 && Tracer::enabled()) {
    Tracer& t = Tracer::instance();
    t.emit(EventKind::kCacheSample, t.now_ns(), 0, lookups,
           static_cast<std::uint32_t>(hits));
  }
#else
  (void)lookups;
  (void)hits;
#endif
}

inline void trace_set_thread_track(std::uint16_t track) noexcept {
#ifdef PBDD_TRACE_ENABLED
  Tracer::set_thread_track(track);
#else
  (void)track;
#endif
}

}  // namespace pbdd::obs
