#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

namespace pbdd::obs {

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough for the trace exporter's output (and
// strict about it: anything malformed throws with a byte offset). Kept local
// so the observability stack stays dependency-free.
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return boolean();
      case 'n':
        return null();
      default:
        return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key.string), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    expect('"');
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"':
          case '\\':
          case '/':
            v.string += e;
            break;
          case 'n':
            v.string += '\n';
            break;
          case 't':
            v.string += '\t';
            break;
          case 'r':
            v.string += '\r';
            break;
          case 'b':
            v.string += '\b';
            break;
          case 'f':
            v.string += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape digit");
              }
            }
            // The exporter never emits non-ASCII; decode BMP code points to
            // UTF-8 so foreign traces still parse.
            if (code < 0x80) {
              v.string += static_cast<char>(code);
            } else if (code < 0x800) {
              v.string += static_cast<char>(0xC0 | (code >> 6));
              v.string += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              v.string += static_cast<char>(0xE0 | (code >> 12));
              v.string += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              v.string += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape character");
        }
        continue;
      }
      v.string += c;
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue null() {
    JsonValue v;
    if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double require_number(const JsonValue& ev, const char* key,
                      std::size_t index) {
  const JsonValue* v = ev.find(key);
  if (v == nullptr || v->type != JsonValue::Type::kNumber) {
    throw std::runtime_error("trace event " + std::to_string(index) +
                             ": missing or non-numeric \"" + key + "\"");
  }
  return v->number;
}

std::string require_string(const JsonValue& ev, const char* key,
                           std::size_t index) {
  const JsonValue* v = ev.find(key);
  if (v == nullptr || v->type != JsonValue::Type::kString) {
    throw std::runtime_error("trace event " + std::to_string(index) +
                             ": missing or non-string \"" + key + "\"");
  }
  return v->string;
}

std::uint64_t parse_hex_id(const std::string& s, std::size_t index) {
  if (s.size() < 3 || s[0] != '0' || (s[1] != 'x' && s[1] != 'X')) {
    throw std::runtime_error("trace event " + std::to_string(index) +
                             ": \"trace\" is not a 0x-prefixed hex id");
  }
  std::uint64_t id = 0;
  for (std::size_t i = 2; i < s.size(); ++i) {
    const char h = s[i];
    id <<= 4;
    if (h >= '0' && h <= '9') {
      id |= static_cast<std::uint64_t>(h - '0');
    } else if (h >= 'a' && h <= 'f') {
      id |= static_cast<std::uint64_t>(h - 'a' + 10);
    } else if (h >= 'A' && h <= 'F') {
      id |= static_cast<std::uint64_t>(h - 'A' + 10);
    } else {
      throw std::runtime_error("trace event " + std::to_string(index) +
                               ": bad hex digit in \"trace\" id");
    }
  }
  return id;
}

}  // namespace

ParsedTrace parse_chrome_trace(const std::string& json_text) {
  const JsonValue doc = JsonParser(json_text).parse();
  if (doc.type != JsonValue::Type::kObject) {
    throw std::runtime_error("trace document is not a JSON object");
  }
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    throw std::runtime_error("trace document has no \"traceEvents\" array");
  }

  ParsedTrace out;
  out.events.reserve(events->array.size());
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    if (ev.type != JsonValue::Type::kObject) {
      throw std::runtime_error("trace event " + std::to_string(i) +
                               " is not an object");
    }
    const std::string name = require_string(ev, "name", i);
    const std::string ph = require_string(ev, "ph", i);
    if (ph.size() != 1) {
      throw std::runtime_error("trace event " + std::to_string(i) +
                               ": bad \"ph\"");
    }
    if (ph == "M") {
      const JsonValue* args = ev.find("args");
      const JsonValue* mn = args != nullptr ? args->find("name") : nullptr;
      if (name == "process_name") {
        // Process metadata is per-pid and carries no tid.
        const int pid = static_cast<int>(require_number(ev, "pid", i));
        if (mn != nullptr && mn->type == JsonValue::Type::kString) {
          out.processes[pid] = mn->string;
        }
        continue;
      }
      const int tid = static_cast<int>(require_number(ev, "tid", i));
      if (name == "thread_name" && mn != nullptr &&
          mn->type == JsonValue::Type::kString) {
        out.tracks[tid] = mn->string;
      }
      continue;
    }
    TraceEvent parsed;
    parsed.name = name;
    parsed.ph = ph[0];
    parsed.tid = static_cast<int>(require_number(ev, "tid", i));
    parsed.pid = static_cast<int>(require_number(ev, "pid", i));
    parsed.ts_us = require_number(ev, "ts", i);
    if (parsed.ph == 'X') parsed.dur_us = require_number(ev, "dur", i);
    if (parsed.ph == 's' || parsed.ph == 't' || parsed.ph == 'f') {
      const JsonValue* id = ev.find("id");
      if (id == nullptr) {
        throw std::runtime_error("trace event " + std::to_string(i) +
                                 ": flow event without \"id\"");
      }
      parsed.flow_id = id->type == JsonValue::Type::kString
                           ? id->string
                           : std::to_string(
                                 static_cast<std::uint64_t>(id->number));
    }
    if (const JsonValue* cat = ev.find("cat");
        cat != nullptr && cat->type == JsonValue::Type::kString) {
      parsed.cat = cat->string;
    }
    if (const JsonValue* args = ev.find("args");
        args != nullptr && args->type == JsonValue::Type::kObject) {
      for (const auto& [k, v] : args->object) {
        if (v.type == JsonValue::Type::kNumber) {
          parsed.args[k] = v.number;
        } else if (k == "trace" && v.type == JsonValue::Type::kString) {
          parsed.trace_id = parse_hex_id(v.string, i);
        }
      }
    }
    out.events.push_back(std::move(parsed));
  }
  if (const JsonValue* other = doc.find("otherData");
      other != nullptr && other->type == JsonValue::Type::kObject) {
    if (const JsonValue* dropped = other->find("dropped_records");
        dropped != nullptr && dropped->type == JsonValue::Type::kNumber) {
      out.dropped_records = static_cast<std::uint64_t>(dropped->number);
    }
    if (const JsonValue* by_track = other->find("dropped_by_track");
        by_track != nullptr && by_track->type == JsonValue::Type::kObject) {
      for (const auto& [track, count] : by_track->object) {
        if (count.type == JsonValue::Type::kNumber) {
          out.dropped_by_track[track] =
              static_cast<std::uint64_t>(count.number);
        }
      }
    }
    if (const JsonValue* clock = other->find("clock");
        clock != nullptr && clock->type == JsonValue::Type::kObject) {
      const auto u64_field = [&](const char* key) -> std::uint64_t {
        const JsonValue* v = clock->find(key);
        return v != nullptr && v->type == JsonValue::Type::kNumber
                   ? static_cast<std::uint64_t>(v->number)
                   : 0;
      };
      out.clock_steady_epoch_ns = u64_field("steady_epoch_ns");
      out.clock_export_steady_ns = u64_field("export_steady_ns");
      out.clock_export_wall_us = u64_field("export_wall_us");
    }
    if (const JsonValue* offsets = other->find("clock_offsets");
        offsets != nullptr && offsets->type == JsonValue::Type::kObject) {
      for (const auto& [peer, off] : offsets->object) {
        if (off.type == JsonValue::Type::kNumber) {
          out.clock_offsets[peer] = static_cast<std::int64_t>(off.number);
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

namespace {

std::string track_label(const ParsedTrace& trace, int tid) {
  const auto it = trace.tracks.find(tid);
  return it != trace.tracks.end() ? it->second : std::to_string(tid);
}

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

PhaseBreakdown phase_breakdown(const ParsedTrace& trace) {
  std::map<int, PhaseBreakdown::Row> rows;
  for (const TraceEvent& ev : trace.events) {
    if (ev.ph != 'X') continue;
    PhaseBreakdown::Row& row = rows[ev.tid];
    row.tid = ev.tid;
    const double s = ev.dur_us * 1e-6;
    if (ev.name == "expansion") {
      row.expansion_s += s;
    } else if (ev.name == "reduction") {
      row.reduction_s += s;
    } else if (ev.name == "gc") {
      row.gc_s += s;
    } else if (ev.name == "steal_run") {
      row.steal_run_s += s;
    } else if (ev.name == "resolve_stall") {
      row.stall_s += s;
    }
  }
  PhaseBreakdown out;
  for (auto& [tid, row] : rows) {
    row.track = track_label(trace, tid);
    if (row.expansion_s + row.reduction_s + row.gc_s + row.steal_run_s +
            row.stall_s >
        0.0) {
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

std::string phase_report(const ParsedTrace& trace) {
  const PhaseBreakdown bd = phase_breakdown(trace);
  std::string out;
  out += "Phase breakdown (Fig. 13 view; seconds of span time per track)\n";
  appendf(out, "  %-10s %12s %12s %12s %12s %12s\n", "track", "expansion",
          "reduction", "gc", "steal_run", "stall");
  for (const PhaseBreakdown::Row& row : bd.rows) {
    appendf(out, "  %-10s %12.6f %12.6f %12.6f %12.6f %12.6f\n",
            row.track.c_str(), row.expansion_s, row.reduction_s, row.gc_s,
            row.steal_run_s, row.stall_s);
  }
  if (bd.rows.empty()) out += "  (no phase spans in trace)\n";
  return out;
}

std::string steal_report(const ParsedTrace& trace) {
  std::vector<double> durs_us;
  std::uint64_t writebacks = 0;
  std::uint64_t group_takes = 0;
  std::uint64_t context_pushes = 0;
  for (const TraceEvent& ev : trace.events) {
    if (ev.ph == 'X' && ev.name == "steal_run") durs_us.push_back(ev.dur_us);
    if (ev.name == "steal_writeback") ++writebacks;
    if (ev.name == "group_take") ++group_takes;
    if (ev.name == "context_push") ++context_pushes;
  }
  std::string out = "Steal latency (steal_run span durations)\n";
  appendf(out,
          "  steals=%zu writebacks=%llu group_takes=%llu context_pushes=%llu\n",
          durs_us.size(), static_cast<unsigned long long>(writebacks),
          static_cast<unsigned long long>(group_takes),
          static_cast<unsigned long long>(context_pushes));
  if (durs_us.empty()) return out;
  std::sort(durs_us.begin(), durs_us.end());
  const auto pct = [&](double p) {
    const std::size_t idx = std::min(
        durs_us.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(durs_us.size())));
    return durs_us[idx];
  };
  appendf(out, "  p50=%.1fus p90=%.1fus p99=%.1fus max=%.1fus\n", pct(0.50),
          pct(0.90), pct(0.99), durs_us.back());
  // Log-scale histogram: <1us, then decade-ish buckets.
  const double edges_us[] = {1, 10, 100, 1'000, 10'000, 100'000, 1'000'000};
  const std::size_t n_edges = sizeof(edges_us) / sizeof(edges_us[0]);
  std::vector<std::uint64_t> counts(n_edges + 1, 0);
  for (const double d : durs_us) {
    std::size_t b = 0;
    while (b < n_edges && d >= edges_us[b]) ++b;
    ++counts[b];
  }
  std::uint64_t peak = 1;
  for (const std::uint64_t c : counts) peak = std::max(peak, c);
  for (std::size_t b = 0; b < counts.size(); ++b) {
    char label[32];
    if (b == 0) {
      std::snprintf(label, sizeof(label), "<%gus", edges_us[0]);
    } else if (b == n_edges) {
      std::snprintf(label, sizeof(label), ">=%gus", edges_us[n_edges - 1]);
    } else {
      std::snprintf(label, sizeof(label), "%g-%gus", edges_us[b - 1],
                    edges_us[b]);
    }
    appendf(out, "  %-14s %8llu ", label,
            static_cast<unsigned long long>(counts[b]));
    const std::size_t bars =
        static_cast<std::size_t>(40.0 * static_cast<double>(counts[b]) /
                                 static_cast<double>(peak));
    out.append(bars, '#');
    out += '\n';
  }
  return out;
}

std::string lock_report(const ParsedTrace& trace) {
  struct VarLock {
    std::uint64_t waits = 0;
    double wait_us = 0.0;
    std::uint64_t holds = 0;
    double hold_us = 0.0;
  };
  std::map<int, VarLock> vars;
  for (const TraceEvent& ev : trace.events) {
    if (ev.name == "lock_wait") {
      const auto var = ev.args.find("var");
      const auto wait = ev.args.find("wait_ns");
      if (var != ev.args.end()) {
        VarLock& vl = vars[static_cast<int>(var->second)];
        ++vl.waits;
        if (wait != ev.args.end()) vl.wait_us += wait->second * 1e-3;
      }
    } else if (ev.ph == 'X' && ev.name == "lock_hold") {
      const auto var = ev.args.find("var");
      if (var != ev.args.end()) {
        VarLock& vl = vars[static_cast<int>(var->second)];
        ++vl.holds;
        vl.hold_us += ev.dur_us;
      }
    }
  }
  std::string out =
      "Per-variable lock table (Fig. 16 view; contended acquires and "
      "pass-lock holds)\n";
  if (vars.empty()) {
    out += "  (no lock events in trace — uncontended or lock-free "
           "discipline)\n";
    return out;
  }
  std::vector<std::pair<int, VarLock>> sorted(vars.begin(), vars.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.wait_us + a.second.hold_us >
           b.second.wait_us + b.second.hold_us;
  });
  appendf(out, "  %-6s %8s %12s %8s %12s\n", "var", "waits", "wait_us",
          "holds", "hold_us");
  const std::size_t limit = std::min<std::size_t>(sorted.size(), 24);
  for (std::size_t i = 0; i < limit; ++i) {
    appendf(out, "  %-6d %8llu %12.1f %8llu %12.1f\n", sorted[i].first,
            static_cast<unsigned long long>(sorted[i].second.waits),
            sorted[i].second.wait_us,
            static_cast<unsigned long long>(sorted[i].second.holds),
            sorted[i].second.hold_us);
  }
  if (sorted.size() > limit) {
    appendf(out, "  ... %zu more variables\n", sorted.size() - limit);
  }
  return out;
}

std::string imbalance_report(const ParsedTrace& trace) {
  const PhaseBreakdown bd = phase_breakdown(trace);
  std::string out = "Load balance (busy seconds per worker track)\n";
  std::vector<double> busy;
  for (const PhaseBreakdown::Row& row : bd.rows) {
    // Workers only: service/driver tracks measure different things.
    if (row.track.rfind("worker", 0) != 0) continue;
    const double b = row.expansion_s + row.reduction_s + row.gc_s;
    busy.push_back(b);
    appendf(out, "  %-10s busy=%.6fs (stall %.6fs)\n", row.track.c_str(), b,
            row.stall_s);
  }
  if (busy.empty()) {
    out += "  (no worker spans in trace)\n";
    return out;
  }
  const double max = *std::max_element(busy.begin(), busy.end());
  double sum = 0.0;
  for (const double b : busy) sum += b;
  const double mean = sum / static_cast<double>(busy.size());
  appendf(out, "  workers=%zu mean=%.6fs max=%.6fs imbalance=%.3f\n",
          busy.size(), mean, max, mean > 0.0 ? max / mean : 0.0);
  return out;
}

std::string gc_report(const ParsedTrace& trace) {
  double mark_s = 0.0, fix_s = 0.0, rehash_s = 0.0, total_s = 0.0;
  std::uint64_t collections = 0;
  for (const TraceEvent& ev : trace.events) {
    if (ev.ph != 'X') continue;
    const double s = ev.dur_us * 1e-6;
    if (ev.name == "gc") {
      total_s += s;
      ++collections;
    } else if (ev.name == "gc_mark") {
      mark_s += s;
    } else if (ev.name == "gc_fix") {
      fix_s += s;
    } else if (ev.name == "gc_rehash") {
      rehash_s += s;
    }
  }
  std::string out = "GC phases (Fig. 18 view; summed worker-seconds)\n";
  appendf(out,
          "  collections(spans)=%llu mark=%.6fs fix=%.6fs rehash=%.6fs "
          "total=%.6fs\n",
          static_cast<unsigned long long>(collections), mark_s, fix_s,
          rehash_s, total_s);
  return out;
}

std::string summary_report(const ParsedTrace& trace) {
  std::map<std::string, std::uint64_t> by_name;
  double first_us = 0.0, last_us = 0.0;
  bool any = false;
  for (const TraceEvent& ev : trace.events) {
    ++by_name[ev.name];
    const double end = ev.ts_us + ev.dur_us;
    if (!any || ev.ts_us < first_us) first_us = ev.ts_us;
    if (!any || end > last_us) last_us = end;
    any = true;
  }
  std::string out;
  appendf(out,
          "Trace summary: %zu events, %zu tracks, %.3fms span, %llu dropped\n",
          trace.events.size(), trace.tracks.size(),
          any ? (last_us - first_us) * 1e-3 : 0.0,
          static_cast<unsigned long long>(trace.dropped_records));
  for (const auto& [name, count] : by_name) {
    appendf(out, "  %-20s %10llu\n", name.c_str(),
            static_cast<unsigned long long>(count));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fleet merge
// ---------------------------------------------------------------------------

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double v) {
  // Counters round-trip exactly; only genuinely fractional values (none in
  // the exporter today) fall back to %g.
  if (std::floor(v) == v && std::fabs(v) < 9.0e15) {
    appendf(out, "%lld", static_cast<long long>(v));
  } else {
    appendf(out, "%.9g", v);
  }
}

std::string merged_hex_id(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(id));
  return buf;
}

/// The display/process name of one input trace (from its process_name
/// metadata record; positional fallback when absent).
std::string input_process_name(const ParsedTrace& trace, std::size_t index) {
  if (!trace.processes.empty()) return trace.processes.begin()->second;
  return "proc" + std::to_string(index);
}

struct FlowAnchor {
  std::size_t input = 0;  ///< which process the event came from
  int tid = 0;
  double ts_us = 0.0;  ///< already shifted onto the reference clock
};

void append_flow_pair(std::string& out, const char* name, std::uint64_t id,
                      const FlowAnchor& src, const FlowAnchor& dst) {
  appendf(out, "    {\"name\": \"%s\", \"cat\": \"flow\", \"ph\": \"s\", ",
          name);
  appendf(out, "\"id\": \"%s\", \"pid\": %zu, \"tid\": %d, \"ts\": %.3f},\n",
          merged_hex_id(id).c_str(), src.input + 1, src.tid, src.ts_us);
  appendf(out, "    {\"name\": \"%s\", \"cat\": \"flow\", \"ph\": \"f\", ",
          name);
  appendf(out,
          "\"bp\": \"e\", \"id\": \"%s\", \"pid\": %zu, \"tid\": %d, "
          "\"ts\": %.3f},\n",
          merged_hex_id(id).c_str(), dst.input + 1, dst.tid, dst.ts_us);
}

}  // namespace

MergeResult merge_traces(const std::vector<std::string>& texts) {
  if (texts.empty()) {
    throw std::runtime_error("merge: no input traces");
  }
  std::vector<ParsedTrace> inputs;
  inputs.reserve(texts.size());
  for (const std::string& text : texts) {
    inputs.push_back(parse_chrome_trace(text));
  }
  const ParsedTrace& ref = inputs.front();

  // Per-input timestamp shift onto the reference (writer) clock. A replica
  // event at relative time t maps to t + epoch_k - O - epoch_ref, where O is
  // the handshake offset (peer_ns - ref_ns) the writer recorded for that
  // peer's process name. Without a handshake entry, fall back to aligning
  // the wall-clock anchors both exports sampled at shutdown.
  std::vector<std::string> names(inputs.size());
  std::vector<double> shift_us(inputs.size(), 0.0);
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    names[k] = input_process_name(inputs[k], k);
    if (k == 0) continue;
    const ParsedTrace& in = inputs[k];
    double shift_ns = 0.0;
    const auto off = ref.clock_offsets.find(names[k]);
    if (off != ref.clock_offsets.end() && in.clock_steady_epoch_ns != 0 &&
        ref.clock_steady_epoch_ns != 0) {
      shift_ns = static_cast<double>(in.clock_steady_epoch_ns) -
                 static_cast<double>(off->second) -
                 static_cast<double>(ref.clock_steady_epoch_ns);
    } else if (in.clock_export_wall_us != 0 && ref.clock_export_wall_us != 0) {
      const double skew_ns =
          static_cast<double>(ref.clock_export_steady_ns) -
          static_cast<double>(in.clock_export_steady_ns) -
          (static_cast<double>(ref.clock_export_wall_us) -
           static_cast<double>(in.clock_export_wall_us)) *
              1000.0;
      shift_ns = static_cast<double>(in.clock_steady_epoch_ns) + skew_ns -
                 static_cast<double>(ref.clock_steady_epoch_ns);
    }
    shift_us[k] = shift_ns * 1e-3;
  }

  // Normalize so the merged timeline starts at 0 even if a shifted replica
  // event lands before the writer's first record.
  double min_ts = 0.0;
  bool any_event = false;
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    for (const TraceEvent& ev : inputs[k].events) {
      const double ts = ev.ts_us + shift_us[k];
      if (!any_event || ts < min_ts) min_ts = ts;
      any_event = true;
    }
  }
  for (std::size_t k = 0; k < inputs.size(); ++k) shift_us[k] -= min_ts;

  // Flow anchors: trace ids are unique per (request, peer), so each id pairs
  // one source instant with one destination instant.
  std::map<std::uint64_t, FlowAnchor> ships;
  std::map<std::uint64_t, FlowAnchor> routes;
  struct FlowEdge {
    std::uint64_t id = 0;
    FlowAnchor src;
    FlowAnchor dst;
  };
  std::vector<FlowEdge> ship_apply;
  std::vector<FlowEdge> route_serve;
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    for (const TraceEvent& ev : inputs[k].events) {
      if (ev.trace_id == 0) continue;
      const FlowAnchor anchor{k, ev.tid, ev.ts_us + shift_us[k]};
      if (ev.name == "repl_ship") {
        ships.emplace(ev.trace_id, anchor);
      } else if (ev.name == "repl_route_read") {
        routes.emplace(ev.trace_id, anchor);
      }
    }
  }
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    for (const TraceEvent& ev : inputs[k].events) {
      if (ev.trace_id == 0) continue;
      const FlowAnchor anchor{k, ev.tid, ev.ts_us + shift_us[k]};
      if (ev.name == "repl_apply") {
        const auto it = ships.find(ev.trace_id);
        if (it != ships.end()) {
          ship_apply.push_back({ev.trace_id, it->second, anchor});
        }
      } else if (ev.name == "repl_serve_read") {
        const auto it = routes.find(ev.trace_id);
        if (it != routes.end()) {
          route_serve.push_back({ev.trace_id, it->second, anchor});
        }
      }
    }
  }

  MergeResult result;
  std::string& out = result.json;
  out += "{\n  \"traceEvents\": [\n";
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    appendf(out,
            "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %zu, "
            "\"args\": {\"name\": ",
            k + 1);
    append_json_string(out, names[k]);
    out += "}},\n";
    for (const auto& [tid, track] : inputs[k].tracks) {
      appendf(out,
              "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %zu, "
              "\"tid\": %d, \"args\": {\"name\": ",
              k + 1, tid);
      append_json_string(out, track);
      out += "}},\n";
    }
  }
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    for (const TraceEvent& ev : inputs[k].events) {
      out += "    {\"name\": ";
      append_json_string(out, ev.name);
      if (!ev.cat.empty()) {
        out += ", \"cat\": ";
        append_json_string(out, ev.cat);
      }
      appendf(out, ", \"ph\": \"%c\", \"pid\": %zu, \"tid\": %d", ev.ph,
              k + 1, ev.tid);
      appendf(out, ", \"ts\": %.3f", ev.ts_us + shift_us[k]);
      if (ev.ph == 'X') appendf(out, ", \"dur\": %.3f", ev.dur_us);
      if (ev.ph == 'i') out += ", \"s\": \"t\"";
      if (!ev.flow_id.empty()) {
        out += ", \"id\": ";
        append_json_string(out, ev.flow_id);
        if (ev.ph == 'f') out += ", \"bp\": \"e\"";
      }
      if (!ev.args.empty() || ev.trace_id != 0) {
        out += ", \"args\": {";
        bool first = true;
        for (const auto& [key, value] : ev.args) {
          if (!first) out += ", ";
          first = false;
          append_json_string(out, key);
          out += ": ";
          append_json_number(out, value);
        }
        if (ev.trace_id != 0) {
          if (!first) out += ", ";
          out += "\"trace\": ";
          append_json_string(out, merged_hex_id(ev.trace_id));
        }
        out += '}';
      }
      out += "},\n";
      ++result.events;
    }
  }
  for (const FlowEdge& edge : ship_apply) {
    append_flow_pair(out, "ship_apply", edge.id, edge.src, edge.dst);
  }
  for (const FlowEdge& edge : route_serve) {
    append_flow_pair(out, "route_serve", edge.id, edge.src, edge.dst);
  }
  result.ship_apply_flows = ship_apply.size();
  result.route_serve_flows = route_serve.size();
  // Strip the trailing ",\n" so the array stays valid JSON.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "  ],\n  \"otherData\": {\n";
  std::uint64_t dropped = 0;
  for (const ParsedTrace& in : inputs) dropped += in.dropped_records;
  appendf(out, "    \"dropped_records\": %llu,\n",
          static_cast<unsigned long long>(dropped));
  out += "    \"dropped_by_track\": {";
  bool first_drop = true;
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    for (const auto& [track, count] : inputs[k].dropped_by_track) {
      if (!first_drop) out += ", ";
      first_drop = false;
      append_json_string(out, names[k] + "/" + track);
      appendf(out, ": %llu", static_cast<unsigned long long>(count));
    }
  }
  out += "},\n    \"processes\": [";
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    if (k != 0) out += ", ";
    append_json_string(out, names[k]);
  }
  out += "]\n  }\n}\n";

  // Fleet report: per-replica apply lag and routed-read fan-out.
  std::string& report = result.report;
  appendf(report, "Fleet merge: %zu processes, %zu events, %zu ship->apply "
                  "flows, %zu route->serve flows\n",
          inputs.size(), result.events, result.ship_apply_flows,
          result.route_serve_flows);
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    appendf(report, "  pid %zu = %s (%zu events, shift %+.1fus)\n", k + 1,
            names[k].c_str(), inputs[k].events.size(),
            shift_us[k] - shift_us[0]);
  }
  report += "Apply lag per replica (ship instant -> apply instant)\n";
  std::map<std::size_t, std::vector<double>> lag_by_replica;
  for (const FlowEdge& edge : ship_apply) {
    lag_by_replica[edge.dst.input].push_back(edge.dst.ts_us - edge.src.ts_us);
  }
  if (lag_by_replica.empty()) {
    report += "  (no matched ship->apply pairs)\n";
  }
  for (auto& [input, lags] : lag_by_replica) {
    std::sort(lags.begin(), lags.end());
    double sum = 0.0;
    for (const double l : lags) sum += l;
    appendf(report,
            "  %-12s ships=%zu min=%.1fus mean=%.1fus max=%.1fus\n",
            names[input].c_str(), lags.size(), lags.front(),
            sum / static_cast<double>(lags.size()), lags.back());
  }
  report += "Routed-read fan-out\n";
  std::map<std::size_t, std::uint64_t> serves_by_replica;
  for (const FlowEdge& edge : route_serve) ++serves_by_replica[edge.dst.input];
  std::uint64_t routed = 0;
  std::uint64_t served_total = 0;
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    for (const TraceEvent& ev : inputs[k].events) {
      if (ev.name == "repl_route_read") ++routed;
      if (ev.name == "repl_serve_read") ++served_total;
    }
  }
  appendf(report, "  routed=%llu served=%llu matched_flows=%zu\n",
          static_cast<unsigned long long>(routed),
          static_cast<unsigned long long>(served_total), route_serve.size());
  for (const auto& [input, count] : serves_by_replica) {
    appendf(report, "  %-12s served=%llu\n", names[input].c_str(),
            static_cast<unsigned long long>(count));
  }
  return result;
}

}  // namespace pbdd::obs
