#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

namespace pbdd::obs {

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough for the trace exporter's output (and
// strict about it: anything malformed throws with a byte offset). Kept local
// so the observability stack stays dependency-free.
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return boolean();
      case 'n':
        return null();
      default:
        return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key.string), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    expect('"');
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"':
          case '\\':
          case '/':
            v.string += e;
            break;
          case 'n':
            v.string += '\n';
            break;
          case 't':
            v.string += '\t';
            break;
          case 'r':
            v.string += '\r';
            break;
          case 'b':
            v.string += '\b';
            break;
          case 'f':
            v.string += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape digit");
              }
            }
            // The exporter never emits non-ASCII; decode BMP code points to
            // UTF-8 so foreign traces still parse.
            if (code < 0x80) {
              v.string += static_cast<char>(code);
            } else if (code < 0x800) {
              v.string += static_cast<char>(0xC0 | (code >> 6));
              v.string += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              v.string += static_cast<char>(0xE0 | (code >> 12));
              v.string += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              v.string += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape character");
        }
        continue;
      }
      v.string += c;
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue null() {
    JsonValue v;
    if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double require_number(const JsonValue& ev, const char* key,
                      std::size_t index) {
  const JsonValue* v = ev.find(key);
  if (v == nullptr || v->type != JsonValue::Type::kNumber) {
    throw std::runtime_error("trace event " + std::to_string(index) +
                             ": missing or non-numeric \"" + key + "\"");
  }
  return v->number;
}

std::string require_string(const JsonValue& ev, const char* key,
                           std::size_t index) {
  const JsonValue* v = ev.find(key);
  if (v == nullptr || v->type != JsonValue::Type::kString) {
    throw std::runtime_error("trace event " + std::to_string(index) +
                             ": missing or non-string \"" + key + "\"");
  }
  return v->string;
}

}  // namespace

ParsedTrace parse_chrome_trace(const std::string& json_text) {
  const JsonValue doc = JsonParser(json_text).parse();
  if (doc.type != JsonValue::Type::kObject) {
    throw std::runtime_error("trace document is not a JSON object");
  }
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    throw std::runtime_error("trace document has no \"traceEvents\" array");
  }

  ParsedTrace out;
  out.events.reserve(events->array.size());
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    if (ev.type != JsonValue::Type::kObject) {
      throw std::runtime_error("trace event " + std::to_string(i) +
                               " is not an object");
    }
    const std::string name = require_string(ev, "name", i);
    const std::string ph = require_string(ev, "ph", i);
    if (ph.size() != 1) {
      throw std::runtime_error("trace event " + std::to_string(i) +
                               ": bad \"ph\"");
    }
    const int tid = static_cast<int>(require_number(ev, "tid", i));
    if (ph == "M") {
      if (name == "thread_name") {
        const JsonValue* args = ev.find("args");
        const JsonValue* tn =
            args != nullptr ? args->find("name") : nullptr;
        if (tn != nullptr && tn->type == JsonValue::Type::kString) {
          out.tracks[tid] = tn->string;
        }
      }
      continue;
    }
    TraceEvent parsed;
    parsed.name = name;
    parsed.ph = ph[0];
    parsed.tid = tid;
    parsed.pid = static_cast<int>(require_number(ev, "pid", i));
    parsed.ts_us = require_number(ev, "ts", i);
    if (parsed.ph == 'X') parsed.dur_us = require_number(ev, "dur", i);
    if (const JsonValue* cat = ev.find("cat");
        cat != nullptr && cat->type == JsonValue::Type::kString) {
      parsed.cat = cat->string;
    }
    if (const JsonValue* args = ev.find("args");
        args != nullptr && args->type == JsonValue::Type::kObject) {
      for (const auto& [k, v] : args->object) {
        if (v.type == JsonValue::Type::kNumber) parsed.args[k] = v.number;
      }
    }
    out.events.push_back(std::move(parsed));
  }
  if (const JsonValue* other = doc.find("otherData");
      other != nullptr && other->type == JsonValue::Type::kObject) {
    if (const JsonValue* dropped = other->find("dropped_records");
        dropped != nullptr && dropped->type == JsonValue::Type::kNumber) {
      out.dropped_records = static_cast<std::uint64_t>(dropped->number);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

namespace {

std::string track_label(const ParsedTrace& trace, int tid) {
  const auto it = trace.tracks.find(tid);
  return it != trace.tracks.end() ? it->second : std::to_string(tid);
}

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

PhaseBreakdown phase_breakdown(const ParsedTrace& trace) {
  std::map<int, PhaseBreakdown::Row> rows;
  for (const TraceEvent& ev : trace.events) {
    if (ev.ph != 'X') continue;
    PhaseBreakdown::Row& row = rows[ev.tid];
    row.tid = ev.tid;
    const double s = ev.dur_us * 1e-6;
    if (ev.name == "expansion") {
      row.expansion_s += s;
    } else if (ev.name == "reduction") {
      row.reduction_s += s;
    } else if (ev.name == "gc") {
      row.gc_s += s;
    } else if (ev.name == "steal_run") {
      row.steal_run_s += s;
    } else if (ev.name == "resolve_stall") {
      row.stall_s += s;
    }
  }
  PhaseBreakdown out;
  for (auto& [tid, row] : rows) {
    row.track = track_label(trace, tid);
    if (row.expansion_s + row.reduction_s + row.gc_s + row.steal_run_s +
            row.stall_s >
        0.0) {
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

std::string phase_report(const ParsedTrace& trace) {
  const PhaseBreakdown bd = phase_breakdown(trace);
  std::string out;
  out += "Phase breakdown (Fig. 13 view; seconds of span time per track)\n";
  appendf(out, "  %-10s %12s %12s %12s %12s %12s\n", "track", "expansion",
          "reduction", "gc", "steal_run", "stall");
  for (const PhaseBreakdown::Row& row : bd.rows) {
    appendf(out, "  %-10s %12.6f %12.6f %12.6f %12.6f %12.6f\n",
            row.track.c_str(), row.expansion_s, row.reduction_s, row.gc_s,
            row.steal_run_s, row.stall_s);
  }
  if (bd.rows.empty()) out += "  (no phase spans in trace)\n";
  return out;
}

std::string steal_report(const ParsedTrace& trace) {
  std::vector<double> durs_us;
  std::uint64_t writebacks = 0;
  std::uint64_t group_takes = 0;
  std::uint64_t context_pushes = 0;
  for (const TraceEvent& ev : trace.events) {
    if (ev.ph == 'X' && ev.name == "steal_run") durs_us.push_back(ev.dur_us);
    if (ev.name == "steal_writeback") ++writebacks;
    if (ev.name == "group_take") ++group_takes;
    if (ev.name == "context_push") ++context_pushes;
  }
  std::string out = "Steal latency (steal_run span durations)\n";
  appendf(out,
          "  steals=%zu writebacks=%llu group_takes=%llu context_pushes=%llu\n",
          durs_us.size(), static_cast<unsigned long long>(writebacks),
          static_cast<unsigned long long>(group_takes),
          static_cast<unsigned long long>(context_pushes));
  if (durs_us.empty()) return out;
  std::sort(durs_us.begin(), durs_us.end());
  const auto pct = [&](double p) {
    const std::size_t idx = std::min(
        durs_us.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(durs_us.size())));
    return durs_us[idx];
  };
  appendf(out, "  p50=%.1fus p90=%.1fus p99=%.1fus max=%.1fus\n", pct(0.50),
          pct(0.90), pct(0.99), durs_us.back());
  // Log-scale histogram: <1us, then decade-ish buckets.
  const double edges_us[] = {1, 10, 100, 1'000, 10'000, 100'000, 1'000'000};
  const std::size_t n_edges = sizeof(edges_us) / sizeof(edges_us[0]);
  std::vector<std::uint64_t> counts(n_edges + 1, 0);
  for (const double d : durs_us) {
    std::size_t b = 0;
    while (b < n_edges && d >= edges_us[b]) ++b;
    ++counts[b];
  }
  std::uint64_t peak = 1;
  for (const std::uint64_t c : counts) peak = std::max(peak, c);
  for (std::size_t b = 0; b < counts.size(); ++b) {
    char label[32];
    if (b == 0) {
      std::snprintf(label, sizeof(label), "<%gus", edges_us[0]);
    } else if (b == n_edges) {
      std::snprintf(label, sizeof(label), ">=%gus", edges_us[n_edges - 1]);
    } else {
      std::snprintf(label, sizeof(label), "%g-%gus", edges_us[b - 1],
                    edges_us[b]);
    }
    appendf(out, "  %-14s %8llu ", label,
            static_cast<unsigned long long>(counts[b]));
    const std::size_t bars =
        static_cast<std::size_t>(40.0 * static_cast<double>(counts[b]) /
                                 static_cast<double>(peak));
    out.append(bars, '#');
    out += '\n';
  }
  return out;
}

std::string lock_report(const ParsedTrace& trace) {
  struct VarLock {
    std::uint64_t waits = 0;
    double wait_us = 0.0;
    std::uint64_t holds = 0;
    double hold_us = 0.0;
  };
  std::map<int, VarLock> vars;
  for (const TraceEvent& ev : trace.events) {
    if (ev.name == "lock_wait") {
      const auto var = ev.args.find("var");
      const auto wait = ev.args.find("wait_ns");
      if (var != ev.args.end()) {
        VarLock& vl = vars[static_cast<int>(var->second)];
        ++vl.waits;
        if (wait != ev.args.end()) vl.wait_us += wait->second * 1e-3;
      }
    } else if (ev.ph == 'X' && ev.name == "lock_hold") {
      const auto var = ev.args.find("var");
      if (var != ev.args.end()) {
        VarLock& vl = vars[static_cast<int>(var->second)];
        ++vl.holds;
        vl.hold_us += ev.dur_us;
      }
    }
  }
  std::string out =
      "Per-variable lock table (Fig. 16 view; contended acquires and "
      "pass-lock holds)\n";
  if (vars.empty()) {
    out += "  (no lock events in trace — uncontended or lock-free "
           "discipline)\n";
    return out;
  }
  std::vector<std::pair<int, VarLock>> sorted(vars.begin(), vars.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.wait_us + a.second.hold_us >
           b.second.wait_us + b.second.hold_us;
  });
  appendf(out, "  %-6s %8s %12s %8s %12s\n", "var", "waits", "wait_us",
          "holds", "hold_us");
  const std::size_t limit = std::min<std::size_t>(sorted.size(), 24);
  for (std::size_t i = 0; i < limit; ++i) {
    appendf(out, "  %-6d %8llu %12.1f %8llu %12.1f\n", sorted[i].first,
            static_cast<unsigned long long>(sorted[i].second.waits),
            sorted[i].second.wait_us,
            static_cast<unsigned long long>(sorted[i].second.holds),
            sorted[i].second.hold_us);
  }
  if (sorted.size() > limit) {
    appendf(out, "  ... %zu more variables\n", sorted.size() - limit);
  }
  return out;
}

std::string imbalance_report(const ParsedTrace& trace) {
  const PhaseBreakdown bd = phase_breakdown(trace);
  std::string out = "Load balance (busy seconds per worker track)\n";
  std::vector<double> busy;
  for (const PhaseBreakdown::Row& row : bd.rows) {
    // Workers only: service/driver tracks measure different things.
    if (row.track.rfind("worker", 0) != 0) continue;
    const double b = row.expansion_s + row.reduction_s + row.gc_s;
    busy.push_back(b);
    appendf(out, "  %-10s busy=%.6fs (stall %.6fs)\n", row.track.c_str(), b,
            row.stall_s);
  }
  if (busy.empty()) {
    out += "  (no worker spans in trace)\n";
    return out;
  }
  const double max = *std::max_element(busy.begin(), busy.end());
  double sum = 0.0;
  for (const double b : busy) sum += b;
  const double mean = sum / static_cast<double>(busy.size());
  appendf(out, "  workers=%zu mean=%.6fs max=%.6fs imbalance=%.3f\n",
          busy.size(), mean, max, mean > 0.0 ? max / mean : 0.0);
  return out;
}

std::string gc_report(const ParsedTrace& trace) {
  double mark_s = 0.0, fix_s = 0.0, rehash_s = 0.0, total_s = 0.0;
  std::uint64_t collections = 0;
  for (const TraceEvent& ev : trace.events) {
    if (ev.ph != 'X') continue;
    const double s = ev.dur_us * 1e-6;
    if (ev.name == "gc") {
      total_s += s;
      ++collections;
    } else if (ev.name == "gc_mark") {
      mark_s += s;
    } else if (ev.name == "gc_fix") {
      fix_s += s;
    } else if (ev.name == "gc_rehash") {
      rehash_s += s;
    }
  }
  std::string out = "GC phases (Fig. 18 view; summed worker-seconds)\n";
  appendf(out,
          "  collections(spans)=%llu mark=%.6fs fix=%.6fs rehash=%.6fs "
          "total=%.6fs\n",
          static_cast<unsigned long long>(collections), mark_s, fix_s,
          rehash_s, total_s);
  return out;
}

std::string summary_report(const ParsedTrace& trace) {
  std::map<std::string, std::uint64_t> by_name;
  double first_us = 0.0, last_us = 0.0;
  bool any = false;
  for (const TraceEvent& ev : trace.events) {
    ++by_name[ev.name];
    const double end = ev.ts_us + ev.dur_us;
    if (!any || ev.ts_us < first_us) first_us = ev.ts_us;
    if (!any || end > last_us) last_us = end;
    any = true;
  }
  std::string out;
  appendf(out,
          "Trace summary: %zu events, %zu tracks, %.3fms span, %llu dropped\n",
          trace.events.size(), trace.tracks.size(),
          any ? (last_us - first_us) * 1e-3 : 0.0,
          static_cast<unsigned long long>(trace.dropped_records));
  for (const auto& [name, count] : by_name) {
    appendf(out, "  %-20s %10llu\n", name.c_str(),
            static_cast<unsigned long long>(count));
  }
  return out;
}

}  // namespace pbdd::obs
