// Parser for the Prometheus text exposition format (version 0.0.4) — the
// inverse of Registry::prometheus_text(). Exists so the exposition side can
// be round-trip tested (and so tools can assert on scraped /metrics bodies)
// without regex guesswork: it undoes HELP and label-value escapes, groups
// samples into families, and validates the # TYPE discipline.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace pbdd::obs {

struct PromSample {
  std::string name;  ///< full sample name, e.g. pbdd_foo_bucket
  std::vector<std::pair<std::string, std::string>> labels;  ///< in file order
  double value = 0.0;

  /// Value of one label, "" when absent.
  [[nodiscard]] std::string label(const std::string& key) const;
};

struct PromFamily {
  std::string name;
  std::string help;  ///< unescaped
  std::string type;  ///< "counter" | "gauge" | "histogram" | "untyped"
  std::vector<PromSample> samples;
};

struct PromDocument {
  std::map<std::string, PromFamily> families;

  [[nodiscard]] bool has_family(const std::string& name) const {
    return families.count(name) != 0;
  }
  /// Folded value of one sample; 0.0 when absent.
  [[nodiscard]] double value(
      const std::string& sample_name,
      const std::vector<std::pair<std::string, std::string>>& labels = {})
      const;
};

/// Parse an exposition body. Histogram samples (_bucket/_sum/_count) are
/// attached to their base family. Throws std::runtime_error with a line
/// number on malformed input: bad escapes, unterminated label values,
/// non-numeric sample values, or samples typed under a conflicting # TYPE.
[[nodiscard]] PromDocument parse_prometheus_text(const std::string& text);

}  // namespace pbdd::obs
