#include "obs/prom_parse.hpp"

#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace pbdd::obs {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("prometheus parse error at line " +
                           std::to_string(line_no) + ": " + what);
}

bool name_char(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

std::string take_name(const std::string& line, std::size_t& pos,
                      std::size_t line_no) {
  const std::size_t start = pos;
  while (pos < line.size() && name_char(line[pos], pos == start)) ++pos;
  if (pos == start) fail(line_no, "expected a metric name");
  return line.substr(start, pos - start);
}

void skip_spaces(const std::string& line, std::size_t& pos) {
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
}

/// Undo HELP-text escapes: \\ and \n only.
std::string unescape_help(const std::string& s, std::size_t line_no) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (++i >= s.size()) fail(line_no, "dangling backslash in HELP text");
    if (s[i] == '\\') {
      out += '\\';
    } else if (s[i] == 'n') {
      out += '\n';
    } else {
      fail(line_no, "bad escape in HELP text");
    }
  }
  return out;
}

/// Parse a quoted label value, undoing \\, \", and \n.
std::string take_label_value(const std::string& line, std::size_t& pos,
                             std::size_t line_no) {
  if (pos >= line.size() || line[pos] != '"') {
    fail(line_no, "expected '\"' to open a label value");
  }
  ++pos;
  std::string out;
  while (pos < line.size()) {
    const char c = line[pos++];
    if (c == '"') return out;
    if (c == '\\') {
      if (pos >= line.size()) fail(line_no, "dangling backslash in label");
      const char e = line[pos++];
      if (e == '\\') {
        out += '\\';
      } else if (e == '"') {
        out += '"';
      } else if (e == 'n') {
        out += '\n';
      } else {
        fail(line_no, "bad escape in label value");
      }
      continue;
    }
    out += c;
  }
  fail(line_no, "unterminated label value");
}

double parse_value(const std::string& s, std::size_t line_no) {
  if (s == "+Inf" || s == "Inf") return std::numeric_limits<double>::infinity();
  if (s == "-Inf") return -std::numeric_limits<double>::infinity();
  const char* begin = s.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin || end != begin + s.size()) {
    fail(line_no, "non-numeric sample value \"" + s + "\"");
  }
  return v;
}

/// The family a sample belongs to: histogram samples carry a suffix.
std::string base_family(const std::map<std::string, PromFamily>& families,
                        const std::string& sample) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string suf = suffix;
    if (sample.size() > suf.size() &&
        sample.compare(sample.size() - suf.size(), suf.size(), suf) == 0) {
      const std::string base = sample.substr(0, sample.size() - suf.size());
      const auto it = families.find(base);
      if (it != families.end() && it->second.type == "histogram") return base;
    }
  }
  return sample;
}

}  // namespace

std::string PromSample::label(const std::string& key) const {
  for (const auto& [k, v] : labels) {
    if (k == key) return v;
  }
  return {};
}

double PromDocument::value(
    const std::string& sample_name,
    const std::vector<std::pair<std::string, std::string>>& labels) const {
  for (const auto& [fname, fam] : families) {
    for (const PromSample& s : fam.samples) {
      if (s.name != sample_name) continue;
      bool match = true;
      for (const auto& [k, v] : labels) {
        if (s.label(k) != v) {
          match = false;
          break;
        }
      }
      if (match && s.labels.size() == labels.size()) return s.value;
    }
  }
  return 0.0;
}

PromDocument parse_prometheus_text(const std::string& text) {
  PromDocument doc;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    ++line_no;
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    std::size_t cur = 0;
    skip_spaces(line, cur);
    if (cur >= line.size()) continue;
    if (line[cur] == '#') {
      ++cur;
      skip_spaces(line, cur);
      const bool is_help = line.compare(cur, 5, "HELP ") == 0;
      const bool is_type = line.compare(cur, 5, "TYPE ") == 0;
      if (!is_help && !is_type) continue;  // plain comment
      cur += 5;
      skip_spaces(line, cur);
      const std::string name = take_name(line, cur, line_no);
      skip_spaces(line, cur);
      PromFamily& fam = doc.families[name];
      if (fam.name.empty()) {
        fam.name = name;
        fam.type = "untyped";
      }
      if (is_help) {
        fam.help = unescape_help(line.substr(cur), line_no);
      } else {
        const std::string type = line.substr(cur);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          fail(line_no, "unknown metric type \"" + type + "\"");
        }
        if (fam.type != "untyped" && fam.type != type) {
          fail(line_no, "family " + name + " re-typed from " + fam.type +
                            " to " + type);
        }
        fam.type = type;
      }
      continue;
    }
    PromSample sample;
    sample.name = take_name(line, cur, line_no);
    if (cur < line.size() && line[cur] == '{') {
      ++cur;
      skip_spaces(line, cur);
      if (cur < line.size() && line[cur] == '}') {
        ++cur;
      } else {
        for (;;) {
          skip_spaces(line, cur);
          const std::string key = take_name(line, cur, line_no);
          skip_spaces(line, cur);
          if (cur >= line.size() || line[cur] != '=') {
            fail(line_no, "expected '=' after label name");
          }
          ++cur;
          skip_spaces(line, cur);
          sample.labels.emplace_back(key,
                                     take_label_value(line, cur, line_no));
          skip_spaces(line, cur);
          if (cur < line.size() && line[cur] == ',') {
            ++cur;
            continue;
          }
          if (cur < line.size() && line[cur] == '}') {
            ++cur;
            break;
          }
          fail(line_no, "expected ',' or '}' in label block");
        }
      }
    }
    skip_spaces(line, cur);
    std::size_t vend = cur;
    while (vend < line.size() && line[vend] != ' ' && line[vend] != '\t') {
      ++vend;
    }
    if (vend == cur) fail(line_no, "sample line without a value");
    sample.value = parse_value(line.substr(cur, vend - cur), line_no);
    // Optional timestamp after the value is tolerated and ignored.
    const std::string fam_name = base_family(doc.families, sample.name);
    PromFamily& fam = doc.families[fam_name];
    if (fam.name.empty()) {
      fam.name = fam_name;
      fam.type = "untyped";
    }
    fam.samples.push_back(std::move(sample));
  }
  return doc;
}

}  // namespace pbdd::obs
