#include "obs/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>

namespace pbdd::obs {

namespace {

struct EventInfo {
  const char* name;
  const char* category;
  EventType type;
  const char* arg0;  // nullptr = omit
  const char* arg1;
};

// Indexed by EventKind; keep in lockstep with the enum (static_asserted at
// the bottom of the table).
constexpr EventInfo kEvents[] = {
    {"expansion", "phase", EventType::kSpan, "ops", nullptr},
    {"reduction", "phase", EventType::kSpan, nullptr, nullptr},
    {"top_op", "batch", EventType::kSpan, "item", nullptr},
    {"steal_run", "steal", EventType::kSpan, "tasks", "victim"},
    {"resolve_stall", "steal", EventType::kSpan, nullptr, nullptr},
    {"lock_hold", "lock", EventType::kSpan, "var", nullptr},
    {"gc", "gc", EventType::kSpan, nullptr, nullptr},
    {"gc_mark", "gc", EventType::kSpan, nullptr, nullptr},
    {"gc_fix", "gc", EventType::kSpan, nullptr, nullptr},
    {"gc_rehash", "gc", EventType::kSpan, nullptr, nullptr},
    {"checkpoint_save", "service", EventType::kSpan, "bytes", nullptr},
    {"checkpoint_restore", "service", EventType::kSpan, "nodes", nullptr},
    {"context_push", "context", EventType::kInstant, "groups", "var"},
    {"context_pop", "context", EventType::kInstant, "depth", nullptr},
    {"group_take", "context", EventType::kInstant, "tasks", nullptr},
    {"steal_writeback", "steal", EventType::kInstant, nullptr, nullptr},
    {"lock_wait", "lock", EventType::kInstant, "wait_ns", "var"},
    {"table_grow", "table", EventType::kInstant, "buckets", "var"},
    {"table_rehash", "table", EventType::kInstant, "nodes", "var"},
    {"batch_start", "batch", EventType::kInstant, "items", nullptr},
    {"batch_end", "batch", EventType::kInstant, nullptr, nullptr},
    {"service_admit", "service", EventType::kInstant, "ops", "session"},
    {"service_reject", "service", EventType::kInstant, nullptr, "session"},
    {"service_shed", "service", EventType::kInstant, "victims", nullptr},
    {"governor_defer", "service", EventType::kInstant, "deferrals", nullptr},
    {"governor_gc", "service", EventType::kInstant, "allocated", nullptr},
    {"compute_cache", "cache", EventType::kCounter, "lookups", "hits"},
    {"ooc_demote", "ooc", EventType::kInstant, "nodes", "var"},
    {"ooc_fault", "ooc", EventType::kInstant, "nodes", "var"},
    {"ooc_prefetch", "ooc", EventType::kInstant, "bytes", "var"},
    {"repl_ship", "repl", EventType::kInstant, "bytes", "replica"},
    {"repl_apply", "repl", EventType::kInstant, "nodes", "levels"},
    {"repl_failover", "repl", EventType::kInstant, nullptr, "replica"},
    {"repl_route_read", "repl", EventType::kInstant, "op", "replica"},
    {"repl_serve_read", "repl", EventType::kInstant, "op", "status"},
};
static_assert(sizeof(kEvents) / sizeof(kEvents[0]) ==
                  static_cast<std::size_t>(EventKind::kCount),
              "event table out of sync with EventKind");

const EventInfo& info(EventKind k) noexcept {
  return kEvents[static_cast<std::size_t>(k)];
}

thread_local std::uint16_t t_track = kTrackExternal;
thread_local std::uint64_t t_trace_id = 0;

struct TlsBufferRef {
  void* buffer = nullptr;  // Tracer::ThreadBuffer*, type-erased for the TLS
  std::uint64_t session = 0;
};
thread_local TlsBufferRef t_buffer;

/// splitmix64 finalizer: a cheap bijective mixer, so sequential salted
/// counters become well-spread 64-bit ids.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

const char* event_name(EventKind k) noexcept { return info(k).name; }
const char* event_category(EventKind k) noexcept { return info(k).category; }
EventType event_type(EventKind k) noexcept { return info(k).type; }
const char* event_arg0(EventKind k) noexcept { return info(k).arg0; }
const char* event_arg1(EventKind k) noexcept { return info(k).arg1; }

std::atomic<bool> Tracer::enabled_{false};
std::atomic<std::uint64_t> Tracer::active_trace_id_{0};

Tracer& Tracer::instance() noexcept {
  static Tracer tracer;
  return tracer;
}

void Tracer::start(const TraceConfig& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.clear();
  capacity_ = std::max<std::size_t>(config.buffer_capacity, 16);
  epoch_ns_.store(static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count()),
                  std::memory_order_relaxed);
  session_.fetch_add(1, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_release); }

std::uint64_t Tracer::now_ns() const noexcept {
  return steady_now_ns() - epoch_ns_.load(std::memory_order_relaxed);
}

std::uint64_t Tracer::steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Tracer::set_thread_track(std::uint16_t track) noexcept {
  t_track = track;
}

std::uint16_t Tracer::thread_track() noexcept { return t_track; }

std::uint64_t Tracer::mint_trace_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t id =
      mix64((static_cast<std::uint64_t>(::getpid()) << 40) ^ n);
  return id != 0 ? id : 1;
}

std::uint64_t Tracer::mix_trace_id(std::uint64_t id,
                                   std::uint64_t salt) noexcept {
  const std::uint64_t mixed = mix64(id ^ (salt * 0x9e3779b97f4a7c15ULL));
  return mixed != 0 ? mixed : 1;
}

void Tracer::set_thread_trace_id(std::uint64_t id) noexcept {
  t_trace_id = id;
}

std::uint64_t Tracer::thread_trace_id() noexcept { return t_trace_id; }

void Tracer::set_active_trace_id(std::uint64_t id) noexcept {
  active_trace_id_.store(id, std::memory_order_relaxed);
}

std::uint64_t Tracer::active_trace_id() noexcept {
  return active_trace_id_.load(std::memory_order_relaxed);
}

void Tracer::set_process_name(std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  process_name_ = std::move(name);
}

std::string Tracer::process_name() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!process_name_.empty()) return process_name_;
  return "pid" + std::to_string(::getpid());
}

void Tracer::set_clock_offset(const std::string& peer,
                              std::int64_t offset_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_offsets_[peer] = offset_ns;
}

std::map<std::string, std::int64_t> Tracer::clock_offsets() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clock_offsets_;
}

Tracer::ThreadBuffer* Tracer::local_buffer() {
  const std::uint64_t session = session_.load(std::memory_order_relaxed);
  if (t_buffer.buffer != nullptr && t_buffer.session == session) {
    return static_cast<ThreadBuffer*>(t_buffer.buffer);
  }
  // First event of this thread in this session: register a fresh buffer.
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>(capacity_));
  t_buffer.buffer = buffers_.back().get();
  t_buffer.session = session;
  return buffers_.back().get();
}

void Tracer::emit(EventKind kind, std::uint64_t start_ns, std::uint64_t dur_ns,
                  std::uint64_t arg0, std::uint32_t arg1) noexcept {
  if (!enabled()) return;
  ThreadBuffer* buf = local_buffer();
  const std::uint32_t n = buf->size.load(std::memory_order_relaxed);
  if (n >= buf->records.size()) {
    // Full: drop the new record (the retained prefix keeps the run's phase
    // structure intact) and account for it, under the track that was bound
    // when the drop happened. Tracing never blocks. Only the owning thread
    // writes the slots, so find-or-install needs no CAS.
    buf->dropped.fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t key = static_cast<std::uint32_t>(t_track) + 1;
    std::size_t slot = kDropSlots - 1;  // overflow folds into the last slot
    for (std::size_t i = 0; i < kDropSlots; ++i) {
      const std::uint32_t cur =
          buf->drop_track[i].load(std::memory_order_relaxed);
      if (cur == key || cur == 0) {
        slot = i;
        break;
      }
    }
    if (buf->drop_track[slot].load(std::memory_order_relaxed) == 0) {
      buf->drop_track[slot].store(key, std::memory_order_relaxed);
    }
    buf->drop_count[slot].fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceRecord& r = buf->records[n];
  r.start_ns = start_ns;
  r.dur_ns = dur_ns;
  r.arg0 = arg0;
  r.trace_id = t_trace_id != 0
                   ? t_trace_id
                   : active_trace_id_.load(std::memory_order_relaxed);
  r.arg1 = arg1;
  r.track = t_track;
  r.kind = static_cast<std::uint8_t>(kind);
  r.reserved = 0;
  buf->size.store(n + 1, std::memory_order_release);
}

Tracer::Snapshot Tracer::collect() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buf : buffers_) {
    const std::uint32_t n = buf->size.load(std::memory_order_acquire);
    if (n > 0) ++snap.threads;
    snap.dropped += buf->dropped.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kDropSlots; ++i) {
      const std::uint32_t key =
          buf->drop_track[i].load(std::memory_order_relaxed);
      if (key == 0) continue;
      snap.dropped_by_track[static_cast<std::uint16_t>(key - 1)] +=
          buf->drop_count[i].load(std::memory_order_relaxed);
    }
    snap.records.insert(snap.records.end(), buf->records.begin(),
                        buf->records.begin() + n);
  }
  std::stable_sort(snap.records.begin(), snap.records.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.start_ns < b.start_ns;
                   });
  return snap;
}

Tracer::Status Tracer::status() const {
  Status st;
  st.compiled = trace_compiled();
  st.enabled = enabled();
  std::lock_guard<std::mutex> lock(mutex_);
  st.session = session_.load(std::memory_order_relaxed);
  st.buffer_capacity = capacity_;
  st.threads = buffers_.size();
  for (const auto& buf : buffers_) {
    st.records += buf->size.load(std::memory_order_acquire);
    st.dropped += buf->dropped.load(std::memory_order_relaxed);
  }
  st.process_name = process_name_.empty()
                        ? "pid" + std::to_string(::getpid())
                        : process_name_;
  return st;
}

std::string Tracer::status_json() const {
  const Status st = status();
  std::string out = "{";
  out += "\"process\": \"";
  // Process names are identifiers we mint ("writer", "r0", "pid123") — only
  // quote/backslash need escaping to stay valid JSON for arbitrary input.
  for (const char c : st.process_name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\"";
  out += ", \"compiled\": ";
  out += st.compiled ? "true" : "false";
  out += ", \"enabled\": ";
  out += st.enabled ? "true" : "false";
  out += ", \"session\": " + std::to_string(st.session);
  out += ", \"buffer_capacity\": " + std::to_string(st.buffer_capacity);
  out += ", \"threads\": " + std::to_string(st.threads);
  out += ", \"records\": " + std::to_string(st.records);
  out += ", \"dropped\": " + std::to_string(st.dropped);
  out += "}\n";
  return out;
}

namespace {

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
}

std::string track_name(std::uint16_t track) {
  if (track == kTrackService) return "service";
  if (track == kTrackExternal) return "driver";
  return "worker " + std::to_string(track);
}

// Microsecond timestamps with sub-µs precision preserved (Chrome's "ts" is
// conventionally µs; fractional values are accepted).
std::string us_from_ns(std::uint64_t ns) {
  std::string s = std::to_string(ns / 1000) + '.' +
                  std::to_string(ns % 1000 / 100) +
                  std::to_string(ns % 100 / 10) + std::to_string(ns % 10);
  return s;
}

std::string hex_id(std::uint64_t id) {
  static const char* kDigits = "0123456789abcdef";
  std::string s = "0x";
  bool emitting = false;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const unsigned nibble = static_cast<unsigned>((id >> shift) & 0xF);
    if (nibble != 0) emitting = true;
    if (emitting || shift == 0) s += kDigits[nibble];
  }
  return s;
}

}  // namespace

std::size_t Tracer::write_chrome_trace(std::ostream& os) const {
  const Snapshot snap = collect();
  std::string out;
  out.reserve(snap.records.size() * 112 + 2048);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";

  // Metadata: name + sort the tracks so workers come first in Perfetto, and
  // a process_name record so merged multi-process files stay attributable.
  const std::string proc = process_name();
  bool first = true;
  out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"args\": {\"name\": \"";
  append_escaped(out, proc.c_str());
  out += "\"}}";
  first = false;
  std::map<std::uint16_t, bool> tracks;
  for (const TraceRecord& r : snap.records) tracks[r.track] = true;
  for (const auto& [track, unused] : tracks) {
    (void)unused;
    for (const char* meta : {"thread_name", "thread_sort_index"}) {
      if (!first) out += ",\n";
      first = false;
      out += "{\"name\": \"";
      out += meta;
      out += "\", \"ph\": \"M\", \"pid\": 1, \"tid\": ";
      out += std::to_string(track);
      out += ", \"args\": {";
      if (meta[7] == 'n') {  // thread_name
        out += "\"name\": \"";
        append_escaped(out, track_name(track).c_str());
        out += "\"";
      } else {
        out += "\"sort_index\": ";
        out += std::to_string(track);
      }
      out += "}}";
    }
  }

  std::size_t events = 0;
  for (const TraceRecord& r : snap.records) {
    const EventKind kind = static_cast<EventKind>(r.kind);
    const EventInfo& ev = kEvents[r.kind];
    if (!first) out += ",\n";
    first = false;
    ++events;
    out += "{\"name\": \"";
    out += ev.name;
    out += "\", \"cat\": \"";
    out += ev.category;
    out += "\", \"ph\": \"";
    switch (event_type(kind)) {
      case EventType::kSpan:
        out += "X";
        break;
      case EventType::kInstant:
        out += "i";
        break;
      case EventType::kCounter:
        out += "C";
        break;
    }
    out += "\", \"ts\": ";
    out += us_from_ns(r.start_ns);
    if (event_type(kind) == EventType::kSpan) {
      out += ", \"dur\": ";
      out += us_from_ns(r.dur_ns);
    }
    if (event_type(kind) == EventType::kInstant) {
      out += ", \"s\": \"t\"";
    }
    out += ", \"pid\": 1, \"tid\": ";
    out += std::to_string(r.track);
    if (ev.arg0 != nullptr || ev.arg1 != nullptr || r.trace_id != 0) {
      out += ", \"args\": {";
      bool comma = false;
      if (ev.arg0 != nullptr) {
        out += "\"";
        out += ev.arg0;
        out += "\": ";
        out += std::to_string(r.arg0);
        comma = true;
      }
      if (ev.arg1 != nullptr) {
        if (comma) out += ", ";
        out += "\"";
        out += ev.arg1;
        out += "\": ";
        out += std::to_string(r.arg1);
        comma = true;
      }
      if (r.trace_id != 0) {
        // Hex string, not a number: 64-bit ids do not survive a double.
        if (comma) out += ", ";
        out += "\"trace\": \"";
        out += hex_id(r.trace_id);
        out += "\"";
      }
      out += "}";
    }
    out += "}";
  }

  // otherData: drop accounting (global + per-track), the process identity,
  // clock anchors for cross-process alignment, and any peer clock offsets
  // learned over the replication handshake.
  out += "\n], \"otherData\": {\"dropped_records\": ";
  out += std::to_string(snap.dropped);
  out += ", \"dropped_by_track\": {";
  {
    bool comma = false;
    for (const auto& [track, count] : snap.dropped_by_track) {
      if (comma) out += ", ";
      comma = true;
      out += "\"";
      append_escaped(out, track_name(track).c_str());
      out += "\": ";
      out += std::to_string(count);
    }
  }
  out += "}, \"process\": {\"name\": \"";
  append_escaped(out, proc.c_str());
  out += "\", \"pid\": ";
  out += std::to_string(::getpid());
  out += "}, \"clock\": {\"steady_epoch_ns\": ";
  out += std::to_string(epoch_ns_.load(std::memory_order_relaxed));
  const auto steady_now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  const auto wall_now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  out += ", \"export_steady_ns\": ";
  out += std::to_string(steady_now);
  out += ", \"export_wall_us\": ";
  out += std::to_string(wall_now);
  out += "}";
  const std::map<std::string, std::int64_t> offsets = clock_offsets();
  if (!offsets.empty()) {
    out += ", \"clock_offsets\": {";
    bool comma = false;
    for (const auto& [peer, offset] : offsets) {
      if (comma) out += ", ";
      comma = true;
      out += "\"";
      append_escaped(out, peer.c_str());
      out += "\": ";
      out += std::to_string(offset);
    }
    out += "}";
  }
  out += "}}\n";
  os << out;
  return events;
}

std::size_t Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot write trace file " + path);
  const std::size_t events = write_chrome_trace(os);
  os.flush();
  if (!os) throw std::runtime_error("short write to trace file " + path);
  return events;
}

}  // namespace pbdd::obs
