#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>

namespace pbdd::obs {

namespace {

struct EventInfo {
  const char* name;
  const char* category;
  EventType type;
  const char* arg0;  // nullptr = omit
  const char* arg1;
};

// Indexed by EventKind; keep in lockstep with the enum (static_asserted at
// the bottom of the table).
constexpr EventInfo kEvents[] = {
    {"expansion", "phase", EventType::kSpan, "ops", nullptr},
    {"reduction", "phase", EventType::kSpan, nullptr, nullptr},
    {"top_op", "batch", EventType::kSpan, "item", nullptr},
    {"steal_run", "steal", EventType::kSpan, "tasks", "victim"},
    {"resolve_stall", "steal", EventType::kSpan, nullptr, nullptr},
    {"lock_hold", "lock", EventType::kSpan, "var", nullptr},
    {"gc", "gc", EventType::kSpan, nullptr, nullptr},
    {"gc_mark", "gc", EventType::kSpan, nullptr, nullptr},
    {"gc_fix", "gc", EventType::kSpan, nullptr, nullptr},
    {"gc_rehash", "gc", EventType::kSpan, nullptr, nullptr},
    {"checkpoint_save", "service", EventType::kSpan, "bytes", nullptr},
    {"checkpoint_restore", "service", EventType::kSpan, "nodes", nullptr},
    {"context_push", "context", EventType::kInstant, "groups", "var"},
    {"context_pop", "context", EventType::kInstant, "depth", nullptr},
    {"group_take", "context", EventType::kInstant, "tasks", nullptr},
    {"steal_writeback", "steal", EventType::kInstant, nullptr, nullptr},
    {"lock_wait", "lock", EventType::kInstant, "wait_ns", "var"},
    {"table_grow", "table", EventType::kInstant, "buckets", "var"},
    {"table_rehash", "table", EventType::kInstant, "nodes", "var"},
    {"batch_start", "batch", EventType::kInstant, "items", nullptr},
    {"batch_end", "batch", EventType::kInstant, nullptr, nullptr},
    {"service_admit", "service", EventType::kInstant, "ops", "session"},
    {"service_reject", "service", EventType::kInstant, nullptr, "session"},
    {"service_shed", "service", EventType::kInstant, "victims", nullptr},
    {"governor_defer", "service", EventType::kInstant, "deferrals", nullptr},
    {"governor_gc", "service", EventType::kInstant, "allocated", nullptr},
    {"compute_cache", "cache", EventType::kCounter, "lookups", "hits"},
    {"ooc_demote", "ooc", EventType::kInstant, "nodes", "var"},
    {"ooc_fault", "ooc", EventType::kInstant, "nodes", "var"},
    {"ooc_prefetch", "ooc", EventType::kInstant, "bytes", "var"},
    {"repl_ship", "repl", EventType::kInstant, "bytes", "replica"},
    {"repl_apply", "repl", EventType::kInstant, "nodes", "levels"},
    {"repl_failover", "repl", EventType::kInstant, nullptr, "replica"},
};
static_assert(sizeof(kEvents) / sizeof(kEvents[0]) ==
                  static_cast<std::size_t>(EventKind::kCount),
              "event table out of sync with EventKind");

const EventInfo& info(EventKind k) noexcept {
  return kEvents[static_cast<std::size_t>(k)];
}

thread_local std::uint16_t t_track = kTrackExternal;

struct TlsBufferRef {
  void* buffer = nullptr;  // Tracer::ThreadBuffer*, type-erased for the TLS
  std::uint64_t session = 0;
};
thread_local TlsBufferRef t_buffer;

}  // namespace

const char* event_name(EventKind k) noexcept { return info(k).name; }
const char* event_category(EventKind k) noexcept { return info(k).category; }
EventType event_type(EventKind k) noexcept { return info(k).type; }
const char* event_arg0(EventKind k) noexcept { return info(k).arg0; }
const char* event_arg1(EventKind k) noexcept { return info(k).arg1; }

std::atomic<bool> Tracer::enabled_{false};

Tracer& Tracer::instance() noexcept {
  static Tracer tracer;
  return tracer;
}

void Tracer::start(const TraceConfig& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.clear();
  capacity_ = std::max<std::size_t>(config.buffer_capacity, 16);
  epoch_ns_.store(static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count()),
                  std::memory_order_relaxed);
  session_.fetch_add(1, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_release); }

std::uint64_t Tracer::now_ns() const noexcept {
  const std::uint64_t now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - epoch_ns_.load(std::memory_order_relaxed);
}

void Tracer::set_thread_track(std::uint16_t track) noexcept {
  t_track = track;
}

std::uint16_t Tracer::thread_track() noexcept { return t_track; }

Tracer::ThreadBuffer* Tracer::local_buffer() {
  const std::uint64_t session = session_.load(std::memory_order_relaxed);
  if (t_buffer.buffer != nullptr && t_buffer.session == session) {
    return static_cast<ThreadBuffer*>(t_buffer.buffer);
  }
  // First event of this thread in this session: register a fresh buffer.
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>(capacity_));
  t_buffer.buffer = buffers_.back().get();
  t_buffer.session = session;
  return buffers_.back().get();
}

void Tracer::emit(EventKind kind, std::uint64_t start_ns, std::uint64_t dur_ns,
                  std::uint64_t arg0, std::uint32_t arg1) noexcept {
  if (!enabled()) return;
  ThreadBuffer* buf = local_buffer();
  const std::uint32_t n = buf->size.load(std::memory_order_relaxed);
  if (n >= buf->records.size()) {
    // Full: drop the new record (the retained prefix keeps the run's phase
    // structure intact) and account for it. Tracing never blocks.
    buf->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceRecord& r = buf->records[n];
  r.start_ns = start_ns;
  r.dur_ns = dur_ns;
  r.arg0 = arg0;
  r.arg1 = arg1;
  r.track = t_track;
  r.kind = static_cast<std::uint8_t>(kind);
  r.reserved = 0;
  buf->size.store(n + 1, std::memory_order_release);
}

Tracer::Snapshot Tracer::collect() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buf : buffers_) {
    const std::uint32_t n = buf->size.load(std::memory_order_acquire);
    if (n > 0) ++snap.threads;
    snap.dropped += buf->dropped.load(std::memory_order_relaxed);
    snap.records.insert(snap.records.end(), buf->records.begin(),
                        buf->records.begin() + n);
  }
  std::stable_sort(snap.records.begin(), snap.records.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.start_ns < b.start_ns;
                   });
  return snap;
}

namespace {

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
}

std::string track_name(std::uint16_t track) {
  if (track == kTrackService) return "service";
  if (track == kTrackExternal) return "driver";
  return "worker " + std::to_string(track);
}

// Microsecond timestamps with sub-µs precision preserved (Chrome's "ts" is
// conventionally µs; fractional values are accepted).
std::string us_from_ns(std::uint64_t ns) {
  std::string s = std::to_string(ns / 1000) + '.' +
                  std::to_string(ns % 1000 / 100) +
                  std::to_string(ns % 100 / 10) + std::to_string(ns % 10);
  return s;
}

}  // namespace

std::size_t Tracer::write_chrome_trace(std::ostream& os) const {
  const Snapshot snap = collect();
  std::string out;
  out.reserve(snap.records.size() * 96 + 1024);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";

  // Metadata: name + sort the tracks so workers come first in Perfetto.
  std::map<std::uint16_t, bool> tracks;
  for (const TraceRecord& r : snap.records) tracks[r.track] = true;
  bool first = true;
  for (const auto& [track, unused] : tracks) {
    (void)unused;
    for (const char* meta : {"thread_name", "thread_sort_index"}) {
      if (!first) out += ",\n";
      first = false;
      out += "{\"name\": \"";
      out += meta;
      out += "\", \"ph\": \"M\", \"pid\": 1, \"tid\": ";
      out += std::to_string(track);
      out += ", \"args\": {";
      if (meta[7] == 'n') {  // thread_name
        out += "\"name\": \"";
        append_escaped(out, track_name(track).c_str());
        out += "\"";
      } else {
        out += "\"sort_index\": ";
        out += std::to_string(track);
      }
      out += "}}";
    }
  }

  std::size_t events = 0;
  for (const TraceRecord& r : snap.records) {
    const EventKind kind = static_cast<EventKind>(r.kind);
    const EventInfo& ev = kEvents[r.kind];
    if (!first) out += ",\n";
    first = false;
    ++events;
    out += "{\"name\": \"";
    out += ev.name;
    out += "\", \"cat\": \"";
    out += ev.category;
    out += "\", \"ph\": \"";
    switch (event_type(kind)) {
      case EventType::kSpan:
        out += "X";
        break;
      case EventType::kInstant:
        out += "i";
        break;
      case EventType::kCounter:
        out += "C";
        break;
    }
    out += "\", \"ts\": ";
    out += us_from_ns(r.start_ns);
    if (event_type(kind) == EventType::kSpan) {
      out += ", \"dur\": ";
      out += us_from_ns(r.dur_ns);
    }
    if (event_type(kind) == EventType::kInstant) {
      out += ", \"s\": \"t\"";
    }
    out += ", \"pid\": 1, \"tid\": ";
    out += std::to_string(r.track);
    if (ev.arg0 != nullptr || ev.arg1 != nullptr) {
      out += ", \"args\": {";
      if (ev.arg0 != nullptr) {
        out += "\"";
        out += ev.arg0;
        out += "\": ";
        out += std::to_string(r.arg0);
      }
      if (ev.arg1 != nullptr) {
        if (ev.arg0 != nullptr) out += ", ";
        out += "\"";
        out += ev.arg1;
        out += "\": ";
        out += std::to_string(r.arg1);
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n], \"otherData\": {\"dropped_records\": ";
  out += std::to_string(snap.dropped);
  out += "}}\n";
  os << out;
  return events;
}

std::size_t Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot write trace file " + path);
  const std::size_t events = write_chrome_trace(os);
  os.flush();
  if (!os) throw std::runtime_error("short write to trace file " + path);
  return events;
}

}  // namespace pbdd::obs
