// Read replica: applies shipped snapshot epochs, serves reads at the last
// applied epoch (docs/REPLICATION.md).
//
// One acceptor thread plus one thread per connection. The writer's shipping
// link and the router's read links all speak the same framed protocol, so a
// connection's role is whatever frames arrive on it. Applied state — the
// restored BddManager, its root table, the epoch, and the per-level CRC row
// the next delta is computed against — swaps atomically under one mutex;
// reads serialize on the same mutex (the manager's external-call contract:
// one thread at a time).
//
// Every answer carries the epoch it was computed at, so staleness is always
// visible to clients rather than silent.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/bdd_manager.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "replica/wire.hpp"

namespace pbdd::repl {

struct ReplicaOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral; ReplicaServer::port() tells
  std::string dir = ".";   ///< holds applied.snap + incoming.snap
  /// Restore configuration. May differ from the writer's (fewer workers, a
  /// different table discipline); restore falls back to rehashing then.
  core::Config config;
  std::uint32_t max_payload = net::kDefaultMaxPayload;
  /// Numeric id stamped into kReplApply trace events (writer assigns them
  /// by endpoint order; purely observability).
  std::uint32_t replica_id = 0;
};

class ReplicaServer {
 public:
  explicit ReplicaServer(ReplicaOptions opts);
  ~ReplicaServer();
  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  /// Bind + start the acceptor. Throws on bind failure.
  void start();
  /// Shut every connection down and join all threads (idempotent).
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::uint64_t applied_epoch() const;

  struct Counters {
    std::uint64_t ships_applied = 0;
    std::uint64_t ship_naks = 0;
    std::uint64_t levels_received = 0;
    std::uint64_t levels_spliced = 0;
    std::uint64_t bytes_received = 0;  ///< ship payload bytes
    std::uint64_t reads_served = 0;
    std::uint64_t read_errors = 0;  ///< non-kOk responses
  };
  [[nodiscard]] Counters counters() const;

  /// pbdd_repl_* families in Prometheus text exposition format.
  [[nodiscard]] std::string metrics_text() const;

 private:
  struct Conn {
    net::Socket sock;
    std::thread thread;
  };

  void accept_loop();
  void serve(net::Socket& sock);
  [[nodiscard]] ReadResp handle_read(const ReadReq& req);

  const ReplicaOptions opts_;
  const std::string applied_path_;
  const std::string incoming_path_;

  net::Listener listener_;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex conns_mutex_;
  std::list<Conn> conns_;

  /// Applied state (manager + roots + epoch + CRC row), swapped whole on
  /// every successful apply.
  mutable std::mutex state_mutex_;
  std::unique_ptr<core::BddManager> manager_;
  std::map<std::string, core::Bdd> roots_;
  std::uint64_t epoch_ = 0;
  std::uint32_t num_vars_ = 0;
  std::vector<std::uint32_t> crc_row_;

  std::atomic<std::uint64_t> c_ships_applied_{0};
  std::atomic<std::uint64_t> c_ship_naks_{0};
  std::atomic<std::uint64_t> c_levels_received_{0};
  std::atomic<std::uint64_t> c_levels_spliced_{0};
  std::atomic<std::uint64_t> c_bytes_received_{0};
  std::atomic<std::uint64_t> c_reads_served_{0};
  std::atomic<std::uint64_t> c_read_errors_{0};
};

}  // namespace pbdd::repl
