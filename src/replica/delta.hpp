// Level-delta computation and snapshot reassembly (docs/REPLICATION.md).
//
// Writer side: plan_delta compares the new export snapshot's per-level CRC
// column against the replica's acked row and returns the set of levels that
// must travel. Replica side: Assembler rebuilds a complete, byte-identical
// snapshot file from the shipped meta prefix + root table + dirty sections,
// splicing every clean section out of the previously applied file. Any
// validation failure throws std::runtime_error whose message becomes the
// ShipNak reason (and the writer falls back to a full ship).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "replica/wire.hpp"
#include "snapshot/snapshot.hpp"

namespace pbdd::repl {

/// Levels whose section changed relative to the acked CRC row, or
/// std::nullopt when the row is unusable (no epoch applied, variable count
/// mismatch) and the writer must ship full. A CRC match with a diverged
/// section is caught replica-side (size/count/CRC re-check before splicing).
[[nodiscard]] std::optional<std::vector<std::uint32_t>> plan_delta(
    const snapshot::LevelDirectory& next, std::uint64_t acked_epoch,
    std::uint32_t acked_num_vars,
    const std::vector<std::uint32_t>& acked_crc_row);

/// CRC row of a level directory, the shape HelloAck and plan_delta consume.
[[nodiscard]] std::vector<std::uint32_t> crc_row_of(
    const snapshot::LevelDirectory& dir);

/// Rebuilds one epoch's snapshot file. Frames stream in ship order:
///   Assembler asm(begin, tmp_path, applied_path);
///   for each ShipLevel: asm.add_level(lvl);
///   asm.finish(end.levels_shipped);   // splices, writes roots, renames
/// After finish() the file at `applied_path` is complete and CRC-clean;
/// restore it with the replica's own core::Config.
class Assembler {
 public:
  /// Parses + validates the meta blob and opens `tmp_path` for writing.
  /// `applied_path` is the currently applied snapshot to splice clean
  /// sections from (only consulted in delta mode).
  Assembler(const ShipBegin& begin, std::string tmp_path,
            std::string applied_path);
  ~Assembler();
  Assembler(const Assembler&) = delete;
  Assembler& operator=(const Assembler&) = delete;

  void add_level(const ShipLevel& lvl);

  /// Completes the file and renames tmp over `applied_path`.
  void finish(std::uint32_t levels_shipped);

  [[nodiscard]] const snapshot::LevelDirectory& dir() const noexcept {
    return dir_;
  }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::uint32_t levels_received() const noexcept {
    return received_count_;
  }
  [[nodiscard]] std::uint32_t levels_spliced() const noexcept {
    return spliced_;
  }

 private:
  std::uint64_t epoch_;
  ShipMode mode_;
  std::string tmp_path_;
  std::string applied_path_;
  snapshot::LevelDirectory dir_;
  std::vector<std::uint8_t> roots_;
  std::vector<bool> received_;
  std::uint32_t received_count_ = 0;
  std::uint32_t spliced_ = 0;
  int fd_ = -1;
  bool finished_ = false;
};

}  // namespace pbdd::repl
