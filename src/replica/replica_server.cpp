#include "replica/replica_server.hpp"

#include <exception>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_points.hpp"
#include "replica/delta.hpp"
#include "snapshot/snapshot.hpp"

namespace pbdd::repl {

ReplicaServer::ReplicaServer(ReplicaOptions opts)
    : opts_(std::move(opts)),
      applied_path_(opts_.dir + "/applied.snap"),
      incoming_path_(opts_.dir + "/incoming.snap") {}

ReplicaServer::~ReplicaServer() { stop(); }

void ReplicaServer::start() {
  listener_ = net::Listener(opts_.port);
  port_ = listener_.port();
  stopping_.store(false, std::memory_order_relaxed);
  started_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void ReplicaServer::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lk(conns_mutex_);
    for (Conn& c : conns_) c.sock.shutdown();
  }
  // Connection threads only exit; they never erase their own list entry, so
  // joining without the lock is safe.
  for (Conn& c : conns_) {
    if (c.thread.joinable()) c.thread.join();
  }
  {
    std::lock_guard<std::mutex> lk(conns_mutex_);
    conns_.clear();
  }
  started_ = false;
}

std::uint64_t ReplicaServer::applied_epoch() const {
  std::lock_guard<std::mutex> lk(state_mutex_);
  return epoch_;
}

ReplicaServer::Counters ReplicaServer::counters() const {
  Counters c;
  c.ships_applied = c_ships_applied_.load(std::memory_order_relaxed);
  c.ship_naks = c_ship_naks_.load(std::memory_order_relaxed);
  c.levels_received = c_levels_received_.load(std::memory_order_relaxed);
  c.levels_spliced = c_levels_spliced_.load(std::memory_order_relaxed);
  c.bytes_received = c_bytes_received_.load(std::memory_order_relaxed);
  c.reads_served = c_reads_served_.load(std::memory_order_relaxed);
  c.read_errors = c_read_errors_.load(std::memory_order_relaxed);
  return c;
}

std::string ReplicaServer::metrics_text() const {
  const Counters c = counters();
  obs::Registry reg;
  reg.gauge("pbdd_replica_up", "1 while the replica server is accepting")
      .set(1.0);
  reg.gauge("pbdd_repl_applied_epoch",
            "Last snapshot epoch applied (0 = none yet)")
      .set(static_cast<double>(applied_epoch()));
  reg.counter("pbdd_repl_ships_applied_total",
              "Snapshot epochs applied successfully")
      .add(c.ships_applied);
  reg.counter("pbdd_repl_ship_naks_total",
              "Ships rejected (divergence or validation failure)")
      .add(c.ship_naks);
  reg.counter("pbdd_repl_levels_received_total",
              "Level sections received over the wire")
      .add(c.levels_received);
  reg.counter("pbdd_repl_levels_spliced_total",
              "Level sections spliced from the previously applied snapshot")
      .add(c.levels_spliced);
  reg.counter("pbdd_repl_bytes_received_total",
              "Ship payload bytes received")
      .add(c.bytes_received);
  reg.counter("pbdd_repl_reads_total", "Read requests served").add(
      c.reads_served);
  reg.counter("pbdd_repl_read_errors_total",
              "Read requests answered with a non-OK status")
      .add(c.read_errors);
  return reg.prometheus_text();
}

void ReplicaServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    net::Socket sock = listener_.accept_client();
    if (!sock.valid()) break;  // listener closed
    sock.set_nodelay();
    std::lock_guard<std::mutex> lk(conns_mutex_);
    conns_.emplace_back();
    Conn& conn = conns_.back();
    conn.sock = std::move(sock);
    conn.thread = std::thread([this, &conn] {
      try {
        serve(conn.sock);
      } catch (const std::exception&) {
        // Torn frame, protocol violation, or peer reset: drop the
        // connection; the writer/router reconnects.
      }
      conn.sock.close();
    });
  }
}

void ReplicaServer::serve(net::Socket& sock) {
  // In-progress ship on this connection. A failure mid-ship records the
  // reason and keeps consuming that epoch's frames so the Nak lands after
  // ShipEnd, when the writer is reading again.
  std::unique_ptr<Assembler> assembler;
  std::string ship_error;
  std::uint64_t ship_epoch = 0;
  std::uint64_t ship_trace_id = 0;  ///< flow id from ShipBegin

  for (;;) {
    std::optional<net::Frame> f = net::recv_frame(sock, opts_.max_payload);
    if (!f) return;  // clean close
    switch (f->type) {
      case kHello: {
        (void)decode_hello(f->payload);
        HelloAck ack;
        {
          std::lock_guard<std::mutex> lk(state_mutex_);
          ack.applied_epoch = epoch_;
          ack.num_vars = num_vars_;
          ack.crc_row = crc_row_;
        }
        // Identity + clock sample for the writer's offset handshake.
        ack.process_name = obs::Tracer::instance().process_name();
        ack.t_steady_ns = obs::Tracer::steady_now_ns();
        net::send_frame(sock, kHelloAck, encode(ack));
        break;
      }
      case kShipBegin: {
        const ShipBegin begin = decode_ship_begin(f->payload);
        c_bytes_received_.fetch_add(f->payload.size(),
                                    std::memory_order_relaxed);
        ship_epoch = begin.epoch;
        ship_trace_id = begin.trace_id;
        ship_error.clear();
        assembler.reset();
        try {
          assembler = std::make_unique<Assembler>(begin, incoming_path_,
                                                  applied_path_);
        } catch (const std::exception& e) {
          ship_error = e.what();
        }
        break;
      }
      case kShipLevel: {
        const ShipLevel lvl = decode_ship_level(f->payload);
        c_bytes_received_.fetch_add(f->payload.size(),
                                    std::memory_order_relaxed);
        if (assembler != nullptr && ship_error.empty()) {
          try {
            assembler->add_level(lvl);
            c_levels_received_.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::exception& e) {
            ship_error = e.what();
          }
        }
        break;
      }
      case kShipEnd: {
        const ShipEnd end = decode_ship_end(f->payload);
        if (assembler == nullptr && ship_error.empty()) {
          ship_error = "ShipEnd without ShipBegin";
        }
        if (ship_error.empty()) {
          try {
            assembler->finish(end.levels_shipped);
            c_levels_spliced_.fetch_add(assembler->levels_spliced(),
                                        std::memory_order_relaxed);
            // The file at applied_path_ is complete; build the new store
            // outside state_mutex_ (nothing shared), swap under it.
            snapshot::RestoreResult rr =
                snapshot::restore(applied_path_, opts_.config);
            const std::vector<std::uint32_t> row = crc_row_of(assembler->dir());
            {
              std::lock_guard<std::mutex> lk(state_mutex_);
              roots_.clear();  // handles must die before their manager
              for (snapshot::NamedRoot& nr : rr.roots) {
                roots_.emplace(std::move(nr.name), std::move(nr.bdd));
              }
              manager_ = std::move(rr.manager);
              epoch_ = ship_epoch;
              num_vars_ = manager_->num_vars();
              crc_row_ = row;
            }
            c_ships_applied_.fetch_add(1, std::memory_order_relaxed);
            {
              // Carry the writer's flow id so the merged timeline connects
              // this apply to its originating ship.
              const obs::TraceIdScope flow(ship_trace_id);
              PBDD_TRACE_INSTANT(kReplApply, rr.stats.nodes,
                                 assembler->levels_received());
            }
            ShipAck ack;
            ack.epoch = ship_epoch;
            ack.nodes = rr.stats.nodes;
            net::send_frame(sock, kShipAck, encode(ack));
          } catch (const std::exception& e) {
            ship_error = e.what();
          }
        }
        if (!ship_error.empty()) {
          c_ship_naks_.fetch_add(1, std::memory_order_relaxed);
          ShipNak nak;
          nak.epoch = ship_epoch;
          nak.reason = ship_error;
          net::send_frame(sock, kShipNak, encode(nak));
        }
        assembler.reset();
        ship_error.clear();
        break;
      }
      case kReadReq: {
        const ReadReq req = decode_read_req(f->payload);
        const obs::TraceIdScope flow(req.trace_id);
        const ReadResp resp = handle_read(req);
        c_reads_served_.fetch_add(1, std::memory_order_relaxed);
        if (resp.status != ReadStatus::kOk) {
          c_read_errors_.fetch_add(1, std::memory_order_relaxed);
        }
        PBDD_TRACE_INSTANT(kReplServeRead,
                           static_cast<std::uint64_t>(req.op),
                           static_cast<std::uint32_t>(resp.status));
        net::send_frame(sock, kReadResp, encode(resp));
        break;
      }
      case kPing: {
        const Ping ping = decode_ping(f->payload);
        Pong pong;
        pong.nonce = ping.nonce;
        pong.epoch = applied_epoch();
        pong.t_steady_ns = obs::Tracer::steady_now_ns();
        net::send_frame(sock, kPong, encode(pong));
        break;
      }
      default:
        throw std::runtime_error("repl: unexpected frame type " +
                                 std::to_string(f->type));
    }
  }
}

ReadResp ReplicaServer::handle_read(const ReadReq& req) {
  ReadResp resp;
  resp.req_id = req.req_id;
  std::lock_guard<std::mutex> lk(state_mutex_);
  resp.epoch = epoch_;
  if (manager_ == nullptr) {
    resp.status = ReadStatus::kNotReady;
    resp.error = "no snapshot applied yet";
    return resp;
  }
  const auto it = roots_.find(req.root);
  if (it == roots_.end()) {
    resp.status = ReadStatus::kUnknownRoot;
    resp.error = "unknown root " + req.root;
    return resp;
  }
  try {
    switch (req.op) {
      case ReadOp::kEval: {
        if (req.assignment.size() != manager_->num_vars()) {
          resp.status = ReadStatus::kError;
          resp.error = "assignment size mismatch";
          return resp;
        }
        resp.value = manager_->eval(it->second, req.assignment) ? 1 : 0;
        break;
      }
      case ReadOp::kSatCount:
        resp.sat = manager_->sat_count(it->second);
        break;
      case ReadOp::kRootInfo:
        resp.value = manager_->node_count(it->second);
        break;
    }
    resp.status = ReadStatus::kOk;
  } catch (const std::exception& e) {
    resp.status = ReadStatus::kError;
    resp.error = e.what();
  }
  return resp;
}

}  // namespace pbdd::repl
