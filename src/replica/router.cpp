#include "replica/router.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "obs/trace.hpp"
#include "obs/trace_points.hpp"
#include "util/hash.hpp"

namespace pbdd::repl {

namespace {

/// FNV-1a over the endpoint string, mixed per vnode with hash_pair — the
/// ring layout must be identical across processes, so no std::hash.
std::uint64_t hash_endpoint(const std::string& addr, unsigned vnode) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : addr) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return util::hash_pair(h, vnode);
}

std::uint64_t hash_key(std::uint64_t key) {
  return util::hash_pair(key, 0x5e551057u);
}

}  // namespace

SessionRouter::SessionRouter(RouterOptions opts, LocalRead local)
    : opts_(std::move(opts)), local_(std::move(local)) {
  endpoints_.reserve(opts_.endpoints.size());
  for (std::size_t i = 0; i < opts_.endpoints.size(); ++i) {
    auto ep = std::make_unique<Endpoint>();
    ep->addr = opts_.endpoints[i];
    endpoints_.push_back(std::move(ep));
    for (unsigned v = 0; v < opts_.vnodes; ++v) {
      ring_.emplace_back(hash_endpoint(opts_.endpoints[i], v),
                         static_cast<std::uint32_t>(i));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t SessionRouter::endpoint_of(std::uint64_t key) const {
  if (ring_.empty()) return SIZE_MAX;
  const std::uint64_t h = hash_key(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, std::uint32_t>& e, std::uint64_t v) {
        return e.first < v;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

ReadResp SessionRouter::read_endpoint(Endpoint& ep, const ReadReq& req) {
  std::lock_guard<std::mutex> lk(ep.mutex);
  if (!ep.sock.valid()) {
    const auto [host, port] = net::parse_endpoint(ep.addr);
    ep.sock = net::connect_to(host, port);
    ep.sock.set_nodelay();
    ep.sock.set_recv_timeout(opts_.io_timeout);
  }
  net::send_frame(ep.sock, kReadReq, encode(req));
  std::optional<net::Frame> f = net::recv_frame(ep.sock, opts_.max_payload);
  if (!f || f->type != kReadResp) {
    throw std::runtime_error("repl: read connection broken");
  }
  ReadResp resp = decode_read_resp(f->payload);
  if (resp.req_id != req.req_id) {
    throw std::runtime_error("repl: response id mismatch");
  }
  return resp;
}

ReadResp SessionRouter::read(std::uint64_t key, const ReadReq& req) {
  c_reads_.fetch_add(1, std::memory_order_relaxed);
  // Trace context: reuse the caller's id when it stamped one, else inherit
  // the thread's, else mint — so every routed read carries a flow id the
  // serving replica echoes into its own trace.
  ReadReq routed = req;
  if (routed.trace_id == 0) {
    routed.trace_id = obs::Tracer::thread_trace_id();
    if (routed.trace_id == 0) routed.trace_id = obs::Tracer::mint_trace_id();
  }
  const std::size_t idx = endpoint_of(key);
  if (idx != SIZE_MAX) {
    Endpoint& ep = *endpoints_[idx];
    bool attempt = true;
    if (ep.down.load(std::memory_order_relaxed)) {
      // Lazy recovery: retry a down endpoint once in a while instead of on
      // every request (dial timeouts are the expensive part).
      attempt =
          ep.skipped.fetch_add(1, std::memory_order_relaxed) % kRetryEvery ==
          kRetryEvery - 1;
    }
    if (attempt) {
      {
        const obs::TraceIdScope flow(routed.trace_id);
        PBDD_TRACE_INSTANT(kReplRouteRead,
                           static_cast<std::uint64_t>(routed.op), idx);
      }
      try {
        ReadResp resp = read_endpoint(ep, routed);
        ep.down.store(false, std::memory_order_relaxed);
        if (resp.status == ReadStatus::kNotReady) {
          // Replica is alive but has no applied epoch; answer locally so
          // warmup is invisible to clients.
          c_stale_.fetch_add(1, std::memory_order_relaxed);
        } else {
          c_replica_reads_.fetch_add(1, std::memory_order_relaxed);
          return resp;
        }
      } catch (const std::exception&) {
        {
          std::lock_guard<std::mutex> lk(ep.mutex);
          ep.sock.close();
        }
        ep.down.store(true, std::memory_order_relaxed);
        PBDD_TRACE_INSTANT(kReplFailover, 0, idx);
      }
    }
  }
  c_failovers_.fetch_add(1, std::memory_order_relaxed);
  return local_(routed);
}

SessionRouter::Counters SessionRouter::counters() const {
  Counters c;
  c.reads_total = c_reads_.load(std::memory_order_relaxed);
  c.replica_reads = c_replica_reads_.load(std::memory_order_relaxed);
  c.failovers = c_failovers_.load(std::memory_order_relaxed);
  c.stale_fallbacks = c_stale_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace pbdd::repl
