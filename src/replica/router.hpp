// Consistent-hash session router for read-class requests
// (docs/REPLICATION.md).
//
// Each replica endpoint owns `vnodes` points on a 64-bit hash ring; a read
// keyed by session id (or any stable u64) goes to the first endpoint
// clockwise of the key's hash. Consistent hashing keeps the key->replica
// mapping stable when the fleet changes — only keys on the failed node's
// arcs move — which keeps each replica's warm answer locality intact.
//
// Failover: any transport error (or a replica that has not applied an epoch
// yet) answers the request from the `local` fallback — the writer's own
// read path — so a killed replica degrades to writer reads, never to a
// request error. Failed endpoints are marked down and re-dialed lazily
// every kRetryEvery-th read routed at them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "replica/wire.hpp"

namespace pbdd::repl {

struct RouterOptions {
  std::vector<std::string> endpoints;  ///< "host:port" per replica
  unsigned vnodes = 64;                ///< ring points per endpoint
  std::chrono::milliseconds io_timeout{2000};
  std::uint32_t max_payload = net::kDefaultMaxPayload;
};

class SessionRouter {
 public:
  /// The writer-local read path (e.g. BddService::read_root wrapped into
  /// the wire shapes). Must not throw.
  using LocalRead = std::function<ReadResp(const ReadReq&)>;

  SessionRouter(RouterOptions opts, LocalRead local);

  /// Route + execute one read. Never throws; worst case is the local
  /// fallback's answer.
  [[nodiscard]] ReadResp read(std::uint64_t key, const ReadReq& req);

  /// Ring lookup only (which endpoint index a key maps to); for tests and
  /// the loadgen report. Returns SIZE_MAX with no endpoints.
  [[nodiscard]] std::size_t endpoint_of(std::uint64_t key) const;

  [[nodiscard]] std::size_t endpoint_count() const noexcept {
    return endpoints_.size();
  }

  struct Counters {
    std::uint64_t reads_total = 0;
    std::uint64_t replica_reads = 0;  ///< answered by a replica
    std::uint64_t failovers = 0;      ///< fell back to the local path
    std::uint64_t stale_fallbacks = 0;  ///< replica had no epoch yet
  };
  [[nodiscard]] Counters counters() const;

 private:
  /// A down endpoint is re-dialed on every kRetryEvery-th read routed at
  /// it, so recovery needs no background thread.
  static constexpr std::uint32_t kRetryEvery = 32;

  struct Endpoint {
    std::string addr;
    std::mutex mutex;  ///< guards sock (one in-flight read per endpoint)
    net::Socket sock;
    std::atomic<bool> down{false};
    std::atomic<std::uint32_t> skipped{0};
  };

  /// Send req on the endpoint's connection (dialing if needed); throws on
  /// transport failure.
  [[nodiscard]] ReadResp read_endpoint(Endpoint& ep, const ReadReq& req);

  const RouterOptions opts_;
  LocalRead local_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  /// Sorted (hash, endpoint index) ring.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;

  std::atomic<std::uint64_t> c_reads_{0};
  std::atomic<std::uint64_t> c_replica_reads_{0};
  std::atomic<std::uint64_t> c_failovers_{0};
  std::atomic<std::uint64_t> c_stale_{0};
};

}  // namespace pbdd::repl
