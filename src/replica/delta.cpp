#include "replica/delta.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "util/crc32.hpp"

namespace pbdd::repl {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("repl: " + what);
}

[[noreturn]] void fail_errno(const std::string& what) {
  fail(what + ": " + std::strerror(errno));
}

void pwrite_all(int fd, const void* data, std::size_t size,
                std::uint64_t offset) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::pwrite(fd, p, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("write");
    }
    p += n;
    size -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

void pread_all(int fd, void* data, std::size_t size, std::uint64_t offset) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::pread(fd, p, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("read");
    }
    if (n == 0) fail("unexpected end of applied snapshot");
    p += n;
    size -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

}  // namespace

std::optional<std::vector<std::uint32_t>> plan_delta(
    const snapshot::LevelDirectory& next, std::uint64_t acked_epoch,
    std::uint32_t acked_num_vars,
    const std::vector<std::uint32_t>& acked_crc_row) {
  if (acked_epoch == 0) return std::nullopt;
  if (acked_num_vars != next.info.num_vars) return std::nullopt;
  if (acked_crc_row.size() != next.levels.size()) return std::nullopt;
  std::vector<std::uint32_t> dirty;
  for (std::size_t v = 0; v < next.levels.size(); ++v) {
    if (next.levels[v].crc != acked_crc_row[v]) {
      dirty.push_back(static_cast<std::uint32_t>(v));
    }
  }
  return dirty;
}

std::vector<std::uint32_t> crc_row_of(const snapshot::LevelDirectory& dir) {
  std::vector<std::uint32_t> row;
  row.reserve(dir.levels.size());
  for (const snapshot::LevelDirEntry& e : dir.levels) row.push_back(e.crc);
  return row;
}

Assembler::Assembler(const ShipBegin& begin, std::string tmp_path,
                     std::string applied_path)
    : epoch_(begin.epoch),
      mode_(begin.mode),
      tmp_path_(std::move(tmp_path)),
      applied_path_(std::move(applied_path)),
      dir_(snapshot::parse_meta_blob(begin.meta.data(), begin.meta.size(),
                                     begin.file_bytes)),
      roots_(begin.roots) {
  if (begin.meta.size() != dir_.meta_bytes()) {
    fail("meta blob size mismatch");
  }
  if (roots_.size() != dir_.root_table_bytes) {
    fail("root blob size mismatch");
  }
  received_.assign(dir_.levels.size(), false);
  fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
               0644);
  if (fd_ < 0) fail_errno("open " + tmp_path_);
  if (::ftruncate(fd_, static_cast<off_t>(dir_.info.file_bytes)) != 0) {
    fail_errno("truncate " + tmp_path_);
  }
  pwrite_all(fd_, begin.meta.data(), begin.meta.size(), 0);
}

Assembler::~Assembler() {
  if (fd_ >= 0) ::close(fd_);
  if (!finished_) std::remove(tmp_path_.c_str());
}

void Assembler::add_level(const ShipLevel& lvl) {
  if (finished_) fail("ship already finished");
  if (lvl.epoch != epoch_) fail("ship level from wrong epoch");
  if (lvl.var >= dir_.levels.size()) fail("ship level out of range");
  if (received_[lvl.var]) fail("duplicate ship level");
  const snapshot::LevelDirEntry& e = dir_.levels[lvl.var];
  if (lvl.section.size() != e.byte_size) {
    fail("level " + std::to_string(lvl.var) + " section size mismatch");
  }
  if (util::crc32(lvl.section.data(), lvl.section.size()) != e.crc) {
    fail("level " + std::to_string(lvl.var) + " section checksum mismatch");
  }
  if (e.byte_size > 0) {
    pwrite_all(fd_, lvl.section.data(), lvl.section.size(), e.offset);
  }
  received_[lvl.var] = true;
  ++received_count_;
}

void Assembler::finish(std::uint32_t levels_shipped) {
  if (finished_) fail("ship already finished");
  if (levels_shipped != received_count_) {
    fail("ship truncated: expected " + std::to_string(levels_shipped) +
         " levels, received " + std::to_string(received_count_));
  }

  // Splice every section the writer did not ship from the applied file.
  if (received_count_ < dir_.levels.size()) {
    if (mode_ != ShipMode::kDelta) fail("full ship missing levels");
    snapshot::LevelDirectory old = snapshot::inspect_levels(applied_path_);
    if (old.info.num_vars != dir_.info.num_vars) {
      fail("applied snapshot variable count diverged");
    }
    const int old_fd =
        ::open(applied_path_.c_str(), O_RDONLY | O_CLOEXEC);
    if (old_fd < 0) fail_errno("open " + applied_path_);
    std::vector<std::uint8_t> buf;
    try {
      for (std::size_t v = 0; v < dir_.levels.size(); ++v) {
        if (received_[v]) continue;
        const snapshot::LevelDirEntry& ne = dir_.levels[v];
        const snapshot::LevelDirEntry& oe = old.levels[v];
        // The clean-splice precondition: the replica's section must be the
        // byte-identical one the writer diffed against. Any mismatch means
        // the acked row diverged from the file on disk — Nak, never guess.
        if (oe.crc != ne.crc || oe.byte_size != ne.byte_size ||
            oe.node_count != ne.node_count) {
          fail("level " + std::to_string(v) + " diverged from applied epoch");
        }
        if (ne.byte_size == 0) continue;
        buf.resize(ne.byte_size);
        pread_all(old_fd, buf.data(), buf.size(), oe.offset);
        if (util::crc32(buf.data(), buf.size()) != ne.crc) {
          fail("level " + std::to_string(v) + " applied section corrupt");
        }
        pwrite_all(fd_, buf.data(), buf.size(), ne.offset);
        ++spliced_;
      }
    } catch (...) {
      ::close(old_fd);
      throw;
    }
    ::close(old_fd);
  }

  if (!roots_.empty()) {
    pwrite_all(fd_, roots_.data(), roots_.size(), dir_.root_table_offset);
  }
  if (::fsync(fd_) != 0) fail_errno("fsync " + tmp_path_);
  ::close(fd_);
  fd_ = -1;
  if (std::rename(tmp_path_.c_str(), applied_path_.c_str()) != 0) {
    fail_errno("rename " + tmp_path_);
  }
  finished_ = true;
}

}  // namespace pbdd::repl
