// Writer-side shipping: pushes export-snapshot epochs to the replica fleet
// (docs/REPLICATION.md).
//
// The writer owns one shipping connection per replica. Each ship compares
// the new snapshot's per-level CRC column against the replica's acked row
// (HelloAck on connect, updated on every ShipAck) and sends only the levels
// that changed; a replica that Naks a delta — divergence, validation
// failure — is retried once with a full ship before being marked down. Down
// replicas are reconnected at the next ship, recovering delta capability
// from the fresh HelloAck.
//
// All shipping and heartbeating serializes on one mutex: the protocol is
// strictly request/response per peer and the fleet is small, so sequential
// peer-at-a-time shipping keeps the failure handling trivial.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "replica/wire.hpp"
#include "snapshot/snapshot.hpp"

namespace pbdd::repl {

struct WriterOptions {
  std::vector<std::string> endpoints;  ///< "host:port" per replica
  std::uint32_t max_payload = net::kDefaultMaxPayload;
  /// Receive timeout on shipping links: a replica that stops draining or
  /// acking is marked down instead of wedging the writer.
  std::chrono::milliseconds io_timeout{5000};
  /// Background heartbeat period for start_heartbeats() (0 = manual only).
  std::chrono::milliseconds heartbeat_interval{1000};
};

/// Outcome of shipping one epoch to one replica.
struct ReplicaShip {
  std::string endpoint;
  bool ok = false;
  ShipMode mode = ShipMode::kFull;
  std::uint32_t levels_shipped = 0;
  std::uint64_t bytes_sent = 0;  ///< frame payload bytes for this ship
  std::uint64_t acked_nodes = 0;
  bool retried_full = false;  ///< delta Nak'd, succeeded as full
  std::string error;
};

struct ShipReport {
  std::uint64_t epoch = 0;
  std::uint64_t file_bytes = 0;
  std::vector<ReplicaShip> replicas;
  [[nodiscard]] std::size_t ok_count() const noexcept {
    std::size_t n = 0;
    for (const ReplicaShip& r : replicas) n += r.ok ? 1 : 0;
    return n;
  }
};

class ReplicationWriter {
 public:
  explicit ReplicationWriter(WriterOptions opts);
  ~ReplicationWriter();
  ReplicationWriter(const ReplicationWriter&) = delete;
  ReplicationWriter& operator=(const ReplicationWriter&) = delete;

  /// Dial every endpoint (Hello/HelloAck). Unreachable replicas are marked
  /// down and re-dialed on the next ship. Returns how many are up.
  std::size_t connect();

  /// Ship the export snapshot at `path` as the next epoch. Reads the file
  /// once per dirty level (pread; nothing buffered whole).
  [[nodiscard]] ShipReport ship_file(const std::string& path);

  /// Ping every up replica; element i is its applied epoch, or nullopt when
  /// the replica is down / just failed (which also marks it down).
  [[nodiscard]] std::vector<std::optional<std::uint64_t>> heartbeat();

  /// Start the background heartbeat thread (no-op when
  /// heartbeat_interval == 0 or already running). Stopped by the dtor.
  void start_heartbeats();

  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] std::size_t replica_count() const noexcept {
    return opts_.endpoints.size();
  }
  [[nodiscard]] std::size_t up_count() const;

  struct Counters {
    std::uint64_t ships_total = 0;       ///< per-replica ship attempts
    std::uint64_t ship_failures = 0;
    std::uint64_t delta_ships = 0;
    std::uint64_t full_ships = 0;
    std::uint64_t naks = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t reconnects = 0;
  };
  [[nodiscard]] Counters counters() const;
  /// pbdd_repl_writer_* families in Prometheus text format.
  [[nodiscard]] std::string metrics_text() const;

 private:
  struct Peer {
    std::string endpoint;
    net::Socket sock;
    bool up = false;
    std::uint64_t acked_epoch = 0;
    std::uint32_t acked_num_vars = 0;
    std::vector<std::uint32_t> acked_crc_row;
    std::string process_name;  ///< replica's trace identity (HelloAck)
  };

  /// Dial + handshake one peer (mutex held). Returns success. The
  /// Hello/HelloAck exchange doubles as the clock-offset handshake: the
  /// replica's steady-clock sample, centered between our send/receive
  /// times, is pushed into the Tracer's clock-offset table.
  bool connect_peer(Peer& peer);
  /// One ship attempt in `mode`; throws on transport error, returns the
  /// Nak reason on rejection, nullopt on Ack (mutex held). `trace_id` is
  /// the flow id stamped on ShipBegin (and on our own ship record).
  std::optional<std::string> ship_attempt(
      Peer& peer, int fd, const snapshot::LevelDirectory& dir,
      const std::vector<std::uint8_t>& meta,
      const std::vector<std::uint8_t>& roots,
      const std::vector<std::uint32_t>& dirty, ShipMode mode,
      std::uint64_t epoch, std::uint64_t trace_id, ReplicaShip& out);

  const WriterOptions opts_;

  mutable std::mutex mutex_;  ///< peers + epoch
  std::vector<Peer> peers_;
  std::uint64_t epoch_ = 0;

  std::thread heartbeat_thread_;
  std::mutex hb_mutex_;
  std::condition_variable hb_cv_;
  bool hb_stop_ = false;
  bool hb_running_ = false;

  std::atomic<std::uint64_t> c_ships_total_{0};
  std::atomic<std::uint64_t> c_ship_failures_{0};
  std::atomic<std::uint64_t> c_delta_ships_{0};
  std::atomic<std::uint64_t> c_full_ships_{0};
  std::atomic<std::uint64_t> c_naks_{0};
  std::atomic<std::uint64_t> c_bytes_sent_{0};
  std::atomic<std::uint64_t> c_reconnects_{0};
};

}  // namespace pbdd::repl
