// Replication message catalog + payload codecs (docs/FORMAT.md,
// "Replication wire format"; topology in docs/REPLICATION.md).
//
// Every message is one net:: frame whose payload is serialized with the
// snapshot ByteWriter/ByteReader (field-by-field little-endian — the same
// discipline as the on-disk format, so a shipped level section is the
// file's bytes verbatim).
//
// Conversation shapes:
//   writer -> replica:  Hello, ShipBegin, ShipLevel*, ShipEnd, Ping
//   replica -> writer:  HelloAck (acked epoch + per-level CRC row),
//                       ShipAck | ShipNak, Pong
//   router -> replica:  ReadReq;  replica -> router: ReadResp
//
// A replica accepts any mix on one connection and dispatches per frame, so
// the shipping link and read links need no out-of-band role negotiation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "snapshot/format.hpp"

namespace pbdd::repl {

/// v2 added distributed-tracing context: trace ids on ShipBegin/ReadReq,
/// process names + steady-clock samples on Hello/HelloAck/Ping/Pong (the
/// clock-offset handshake in docs/OBSERVABILITY.md).
inline constexpr std::uint32_t kProtocolVersion = 2;

enum MsgType : std::uint16_t {
  kHello = 1,
  kHelloAck = 2,
  kShipBegin = 3,
  kShipLevel = 4,
  kShipEnd = 5,
  kShipAck = 6,
  kShipNak = 7,
  kReadReq = 8,
  kReadResp = 9,
  kPing = 10,
  kPong = 11,
};

enum class ShipMode : std::uint8_t { kFull = 0, kDelta = 1 };

enum class ReadOp : std::uint8_t { kEval = 0, kSatCount = 1, kRootInfo = 2 };

enum class ReadStatus : std::uint8_t {
  kOk = 0,
  kUnknownRoot = 1,
  kNotReady = 2,  ///< no epoch applied yet
  kError = 3,
};

struct Hello {
  std::uint32_t version = kProtocolVersion;
  std::string process_name;      ///< writer's trace-export identity
  std::uint64_t t_steady_ns = 0; ///< writer steady clock at send (handshake)
};

/// Replica's acked state: the writer computes deltas against crc_row. An
/// empty row (epoch 0) means "no snapshot applied, ship full".
struct HelloAck {
  std::uint32_t version = kProtocolVersion;
  std::uint64_t applied_epoch = 0;
  std::uint32_t num_vars = 0;
  std::vector<std::uint32_t> crc_row;  ///< per-level section CRCs
  std::string process_name;      ///< replica's trace-export identity
  std::uint64_t t_steady_ns = 0; ///< replica steady clock at reply
};

/// Opens one epoch ship. `meta` is the new snapshot's header + level
/// directory, byte-verbatim; `roots` is the root table, byte-verbatim.
/// In delta mode only `dirty` levels follow as ShipLevel frames; the
/// replica splices every other section out of its applied file.
struct ShipBegin {
  std::uint64_t epoch = 0;
  ShipMode mode = ShipMode::kFull;
  std::uint64_t file_bytes = 0;  ///< size of the complete new file
  std::vector<std::uint8_t> meta;
  std::vector<std::uint8_t> roots;
  std::vector<std::uint32_t> dirty;  ///< vars shipped (all vars in full mode)
  std::uint64_t trace_id = 0;  ///< flow id stamped on the replica's apply
};

struct ShipLevel {
  std::uint64_t epoch = 0;
  std::uint32_t var = 0;
  std::vector<std::uint8_t> section;
};

struct ShipEnd {
  std::uint64_t epoch = 0;
  std::uint32_t levels_shipped = 0;
};

struct ShipAck {
  std::uint64_t epoch = 0;
  std::uint64_t nodes = 0;  ///< live nodes after restore
};

/// Divergence or validation failure; the writer retries this replica with a
/// full ship.
struct ShipNak {
  std::uint64_t epoch = 0;
  std::string reason;
};

struct ReadReq {
  std::uint64_t req_id = 0;
  ReadOp op = ReadOp::kEval;
  std::string root;                   ///< root-table name, e.g. "s3/r0"
  std::vector<bool> assignment;       ///< eval only
  std::uint64_t trace_id = 0;  ///< flow id stamped on the replica's serve
};

struct ReadResp {
  std::uint64_t req_id = 0;
  ReadStatus status = ReadStatus::kError;
  std::uint64_t epoch = 0;  ///< snapshot epoch the answer is valid at
  std::uint64_t value = 0;  ///< eval: 0/1; root_info: node count
  double sat = 0.0;         ///< sat_count
  std::string error;
};

struct Ping {
  std::uint64_t nonce = 0;
  std::uint64_t t_send_ns = 0;  ///< sender steady clock (offset refresh)
};

struct Pong {
  std::uint64_t nonce = 0;
  std::uint64_t epoch = 0;  ///< replica's applied epoch (staleness probe)
  std::uint64_t t_steady_ns = 0;  ///< replica steady clock at pong
};

// ---- Codecs -----------------------------------------------------------------
// encode_* produce a frame payload; decode_* parse one and throw
// std::runtime_error("repl: ...") on malformed input.

[[nodiscard]] std::vector<std::uint8_t> encode(const Hello& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const HelloAck& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const ShipBegin& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const ShipLevel& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const ShipEnd& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const ShipAck& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const ShipNak& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const ReadReq& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const ReadResp& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const Ping& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const Pong& m);

[[nodiscard]] Hello decode_hello(const std::vector<std::uint8_t>& p);
[[nodiscard]] HelloAck decode_hello_ack(const std::vector<std::uint8_t>& p);
[[nodiscard]] ShipBegin decode_ship_begin(const std::vector<std::uint8_t>& p);
[[nodiscard]] ShipLevel decode_ship_level(const std::vector<std::uint8_t>& p);
[[nodiscard]] ShipEnd decode_ship_end(const std::vector<std::uint8_t>& p);
[[nodiscard]] ShipAck decode_ship_ack(const std::vector<std::uint8_t>& p);
[[nodiscard]] ShipNak decode_ship_nak(const std::vector<std::uint8_t>& p);
[[nodiscard]] ReadReq decode_read_req(const std::vector<std::uint8_t>& p);
[[nodiscard]] ReadResp decode_read_resp(const std::vector<std::uint8_t>& p);
[[nodiscard]] Ping decode_ping(const std::vector<std::uint8_t>& p);
[[nodiscard]] Pong decode_pong(const std::vector<std::uint8_t>& p);

}  // namespace pbdd::repl
