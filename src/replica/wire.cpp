#include "replica/wire.hpp"

#include <cstring>
#include <stdexcept>

namespace pbdd::repl {

namespace {

using snapshot::ByteReader;
using snapshot::ByteWriter;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("repl: " + what);
}

ByteReader reader(const std::vector<std::uint8_t>& p) {
  return ByteReader(p.data(), p.size());
}

void put_u8(ByteWriter& wr, std::uint8_t v) { wr.bytes(&v, 1); }

std::uint8_t get_u8(ByteReader& rd) {
  std::uint8_t v = 0;
  rd.bytes(&v, 1);
  return v;
}

void done(ByteReader& rd, const char* msg) {
  if (rd.remaining() != 0) fail(std::string("trailing bytes in ") + msg);
}

void put_blob(ByteWriter& wr, const std::vector<std::uint8_t>& b) {
  wr.u32(static_cast<std::uint32_t>(b.size()));
  wr.bytes(b.data(), b.size());
}

std::vector<std::uint8_t> get_blob(ByteReader& rd) {
  const std::uint32_t len = rd.u32();
  if (len > rd.remaining()) fail("blob length out of bounds");
  std::vector<std::uint8_t> out(len);
  rd.bytes(out.data(), len);
  return out;
}

void put_string(ByteWriter& wr, const std::string& s) {
  if (s.size() > 0xFFFF) fail("string too long");
  wr.u16(static_cast<std::uint16_t>(s.size()));
  wr.bytes(s.data(), s.size());
}

std::string get_string(ByteReader& rd) {
  const std::uint16_t len = rd.u16();
  if (len > rd.remaining()) fail("string length out of bounds");
  std::string out(len, '\0');
  rd.bytes(out.data(), len);
  return out;
}

void put_u32s(ByteWriter& wr, const std::vector<std::uint32_t>& v) {
  wr.u32(static_cast<std::uint32_t>(v.size()));
  for (std::uint32_t x : v) wr.u32(x);
}

std::vector<std::uint32_t> get_u32s(ByteReader& rd) {
  const std::uint32_t n = rd.u32();
  if (std::uint64_t{n} * 4 > rd.remaining()) fail("array length out of bounds");
  std::vector<std::uint32_t> out(n);
  for (std::uint32_t& x : out) x = rd.u32();
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode(const Hello& m) {
  ByteWriter wr(14 + m.process_name.size());
  wr.u32(m.version);
  put_string(wr, m.process_name);
  wr.u64(m.t_steady_ns);
  return wr.data();
}

Hello decode_hello(const std::vector<std::uint8_t>& p) {
  ByteReader rd = reader(p);
  Hello m;
  m.version = rd.u32();
  m.process_name = get_string(rd);
  m.t_steady_ns = rd.u64();
  done(rd, "Hello");
  return m;
}

std::vector<std::uint8_t> encode(const HelloAck& m) {
  ByteWriter wr(30 + m.crc_row.size() * 4 + m.process_name.size());
  wr.u32(m.version);
  wr.u64(m.applied_epoch);
  wr.u32(m.num_vars);
  put_u32s(wr, m.crc_row);
  put_string(wr, m.process_name);
  wr.u64(m.t_steady_ns);
  return wr.data();
}

HelloAck decode_hello_ack(const std::vector<std::uint8_t>& p) {
  ByteReader rd = reader(p);
  HelloAck m;
  m.version = rd.u32();
  m.applied_epoch = rd.u64();
  m.num_vars = rd.u32();
  m.crc_row = get_u32s(rd);
  m.process_name = get_string(rd);
  m.t_steady_ns = rd.u64();
  done(rd, "HelloAck");
  return m;
}

std::vector<std::uint8_t> encode(const ShipBegin& m) {
  ByteWriter wr(32 + m.meta.size() + m.roots.size() + m.dirty.size() * 4);
  wr.u64(m.epoch);
  put_u8(wr, static_cast<std::uint8_t>(m.mode));
  wr.u64(m.file_bytes);
  put_blob(wr, m.meta);
  put_blob(wr, m.roots);
  put_u32s(wr, m.dirty);
  wr.u64(m.trace_id);
  return wr.data();
}

ShipBegin decode_ship_begin(const std::vector<std::uint8_t>& p) {
  ByteReader rd = reader(p);
  ShipBegin m;
  m.epoch = rd.u64();
  const std::uint8_t mode = get_u8(rd);
  if (mode > 1) fail("unknown ship mode");
  m.mode = static_cast<ShipMode>(mode);
  m.file_bytes = rd.u64();
  m.meta = get_blob(rd);
  m.roots = get_blob(rd);
  m.dirty = get_u32s(rd);
  m.trace_id = rd.u64();
  done(rd, "ShipBegin");
  return m;
}

std::vector<std::uint8_t> encode(const ShipLevel& m) {
  ByteWriter wr(16 + m.section.size());
  wr.u64(m.epoch);
  wr.u32(m.var);
  put_blob(wr, m.section);
  return wr.data();
}

ShipLevel decode_ship_level(const std::vector<std::uint8_t>& p) {
  ByteReader rd = reader(p);
  ShipLevel m;
  m.epoch = rd.u64();
  m.var = rd.u32();
  m.section = get_blob(rd);
  done(rd, "ShipLevel");
  return m;
}

std::vector<std::uint8_t> encode(const ShipEnd& m) {
  ByteWriter wr(12);
  wr.u64(m.epoch);
  wr.u32(m.levels_shipped);
  return wr.data();
}

ShipEnd decode_ship_end(const std::vector<std::uint8_t>& p) {
  ByteReader rd = reader(p);
  ShipEnd m;
  m.epoch = rd.u64();
  m.levels_shipped = rd.u32();
  done(rd, "ShipEnd");
  return m;
}

std::vector<std::uint8_t> encode(const ShipAck& m) {
  ByteWriter wr(16);
  wr.u64(m.epoch);
  wr.u64(m.nodes);
  return wr.data();
}

ShipAck decode_ship_ack(const std::vector<std::uint8_t>& p) {
  ByteReader rd = reader(p);
  ShipAck m;
  m.epoch = rd.u64();
  m.nodes = rd.u64();
  done(rd, "ShipAck");
  return m;
}

std::vector<std::uint8_t> encode(const ShipNak& m) {
  ByteWriter wr(10 + m.reason.size());
  wr.u64(m.epoch);
  put_string(wr, m.reason);
  return wr.data();
}

ShipNak decode_ship_nak(const std::vector<std::uint8_t>& p) {
  ByteReader rd = reader(p);
  ShipNak m;
  m.epoch = rd.u64();
  m.reason = get_string(rd);
  done(rd, "ShipNak");
  return m;
}

std::vector<std::uint8_t> encode(const ReadReq& m) {
  ByteWriter wr(16 + m.root.size() + m.assignment.size() / 8 + 8);
  wr.u64(m.req_id);
  put_u8(wr, static_cast<std::uint8_t>(m.op));
  put_string(wr, m.root);
  wr.u32(static_cast<std::uint32_t>(m.assignment.size()));
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < m.assignment.size(); ++i) {
    if (m.assignment[i]) acc |= static_cast<std::uint8_t>(1u << (i % 8));
    if (i % 8 == 7 || i + 1 == m.assignment.size()) {
      put_u8(wr, acc);
      acc = 0;
    }
  }
  wr.u64(m.trace_id);
  return wr.data();
}

ReadReq decode_read_req(const std::vector<std::uint8_t>& p) {
  ByteReader rd = reader(p);
  ReadReq m;
  m.req_id = rd.u64();
  const std::uint8_t op = get_u8(rd);
  if (op > 2) fail("unknown read op");
  m.op = static_cast<ReadOp>(op);
  m.root = get_string(rd);
  const std::uint32_t nbits = rd.u32();
  if ((std::uint64_t{nbits} + 7) / 8 > rd.remaining()) {
    fail("assignment length out of bounds");
  }
  m.assignment.resize(nbits);
  std::uint8_t acc = 0;
  for (std::uint32_t i = 0; i < nbits; ++i) {
    if (i % 8 == 0) acc = get_u8(rd);
    m.assignment[i] = (acc >> (i % 8)) & 1u;
  }
  m.trace_id = rd.u64();
  done(rd, "ReadReq");
  return m;
}

std::vector<std::uint8_t> encode(const ReadResp& m) {
  ByteWriter wr(36 + m.error.size());
  wr.u64(m.req_id);
  put_u8(wr, static_cast<std::uint8_t>(m.status));
  wr.u64(m.epoch);
  wr.u64(m.value);
  std::uint64_t sat_bits = 0;
  static_assert(sizeof(sat_bits) == sizeof(m.sat), "double width");
  std::memcpy(&sat_bits, &m.sat, sizeof(sat_bits));
  wr.u64(sat_bits);
  put_string(wr, m.error);
  return wr.data();
}

ReadResp decode_read_resp(const std::vector<std::uint8_t>& p) {
  ByteReader rd = reader(p);
  ReadResp m;
  m.req_id = rd.u64();
  const std::uint8_t status = get_u8(rd);
  if (status > 3) fail("unknown read status");
  m.status = static_cast<ReadStatus>(status);
  m.epoch = rd.u64();
  m.value = rd.u64();
  const std::uint64_t sat_bits = rd.u64();
  std::memcpy(&m.sat, &sat_bits, sizeof(m.sat));
  m.error = get_string(rd);
  done(rd, "ReadResp");
  return m;
}

std::vector<std::uint8_t> encode(const Ping& m) {
  ByteWriter wr(16);
  wr.u64(m.nonce);
  wr.u64(m.t_send_ns);
  return wr.data();
}

Ping decode_ping(const std::vector<std::uint8_t>& p) {
  ByteReader rd = reader(p);
  Ping m;
  m.nonce = rd.u64();
  m.t_send_ns = rd.u64();
  done(rd, "Ping");
  return m;
}

std::vector<std::uint8_t> encode(const Pong& m) {
  ByteWriter wr(24);
  wr.u64(m.nonce);
  wr.u64(m.epoch);
  wr.u64(m.t_steady_ns);
  return wr.data();
}

Pong decode_pong(const std::vector<std::uint8_t>& p) {
  ByteReader rd = reader(p);
  Pong m;
  m.nonce = rd.u64();
  m.epoch = rd.u64();
  m.t_steady_ns = rd.u64();
  done(rd, "Pong");
  return m;
}

}  // namespace pbdd::repl
