#include "replica/writer.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_points.hpp"
#include "replica/delta.hpp"

namespace pbdd::repl {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error("repl: " + what + ": " + std::strerror(errno));
}

void pread_all(int fd, void* data, std::size_t size, std::uint64_t offset) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::pread(fd, p, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("read snapshot");
    }
    if (n == 0) throw std::runtime_error("repl: snapshot truncated");
    p += n;
    size -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

/// RAII fd for the snapshot being shipped.
struct Fd {
  explicit Fd(const std::string& path)
      : fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC)) {
    if (fd < 0) fail_errno("open " + path);
  }
  ~Fd() { ::close(fd); }
  int fd;
};

}  // namespace

ReplicationWriter::ReplicationWriter(WriterOptions opts)
    : opts_(std::move(opts)) {
  peers_.reserve(opts_.endpoints.size());
  for (const std::string& ep : opts_.endpoints) {
    peers_.emplace_back();
    peers_.back().endpoint = ep;
  }
}

ReplicationWriter::~ReplicationWriter() {
  {
    std::lock_guard<std::mutex> lk(hb_mutex_);
    hb_stop_ = true;
  }
  hb_cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
}

bool ReplicationWriter::connect_peer(Peer& peer) {
  try {
    const auto [host, port] = net::parse_endpoint(peer.endpoint);
    peer.sock = net::connect_to(host, port);
    peer.sock.set_nodelay();
    peer.sock.set_recv_timeout(opts_.io_timeout);
    Hello hello;
    hello.process_name = obs::Tracer::instance().process_name();
    const std::uint64_t t_send = obs::Tracer::steady_now_ns();
    hello.t_steady_ns = t_send;
    net::send_frame(peer.sock, kHello, encode(hello));
    std::optional<net::Frame> f = net::recv_frame(peer.sock,
                                                  opts_.max_payload);
    const std::uint64_t t_recv = obs::Tracer::steady_now_ns();
    if (!f || f->type != kHelloAck) {
      throw std::runtime_error("repl: handshake failed");
    }
    const HelloAck ack = decode_hello_ack(f->payload);
    if (ack.version != kProtocolVersion) {
      throw std::runtime_error("repl: protocol version mismatch");
    }
    peer.acked_epoch = ack.applied_epoch;
    peer.acked_num_vars = ack.num_vars;
    peer.acked_crc_row = ack.crc_row;
    peer.process_name = ack.process_name;
    if (!ack.process_name.empty() && ack.t_steady_ns != 0) {
      // NTP-style midpoint estimate: the replica sampled its clock between
      // our send and receive, so its offset is its sample minus our middle.
      obs::Tracer::instance().set_clock_offset(
          ack.process_name,
          static_cast<std::int64_t>(ack.t_steady_ns) -
              static_cast<std::int64_t>(t_send / 2 + t_recv / 2));
    }
    peer.up = true;
    c_reconnects_.fetch_add(1, std::memory_order_relaxed);
    return true;
  } catch (const std::exception&) {
    peer.sock.close();
    peer.up = false;
    return false;
  }
}

std::size_t ReplicationWriter::connect() {
  std::lock_guard<std::mutex> lk(mutex_);
  std::size_t up = 0;
  for (Peer& peer : peers_) {
    if (peer.up || connect_peer(peer)) ++up;
  }
  return up;
}

std::optional<std::string> ReplicationWriter::ship_attempt(
    Peer& peer, int fd, const snapshot::LevelDirectory& dir,
    const std::vector<std::uint8_t>& meta,
    const std::vector<std::uint8_t>& roots,
    const std::vector<std::uint32_t>& dirty, ShipMode mode,
    std::uint64_t epoch, std::uint64_t trace_id, ReplicaShip& out) {
  ShipBegin begin;
  begin.epoch = epoch;
  begin.mode = mode;
  begin.file_bytes = dir.info.file_bytes;
  begin.meta = meta;
  begin.roots = roots;
  begin.dirty = dirty;
  begin.trace_id = trace_id;
  {
    const std::vector<std::uint8_t> p = encode(begin);
    net::send_frame(peer.sock, kShipBegin, p);
    out.bytes_sent += p.size();
  }
  std::vector<std::uint8_t> section;
  for (const std::uint32_t var : dirty) {
    const snapshot::LevelDirEntry& e = dir.levels[var];
    ShipLevel lvl;
    lvl.epoch = epoch;
    lvl.var = var;
    if (e.byte_size > 0) {
      section.resize(e.byte_size);
      pread_all(fd, section.data(), section.size(), e.offset);
      lvl.section = section;
    }
    const std::vector<std::uint8_t> p = encode(lvl);
    net::send_frame(peer.sock, kShipLevel, p);
    out.bytes_sent += p.size();
  }
  ShipEnd end;
  end.epoch = epoch;
  end.levels_shipped = static_cast<std::uint32_t>(dirty.size());
  {
    const std::vector<std::uint8_t> p = encode(end);
    net::send_frame(peer.sock, kShipEnd, p);
    out.bytes_sent += p.size();
  }
  out.mode = mode;
  out.levels_shipped = end.levels_shipped;

  std::optional<net::Frame> f = net::recv_frame(peer.sock, opts_.max_payload);
  if (!f) throw std::runtime_error("repl: replica closed during ship");
  if (f->type == kShipAck) {
    const ShipAck ack = decode_ship_ack(f->payload);
    if (ack.epoch != epoch) throw std::runtime_error("repl: ack wrong epoch");
    out.acked_nodes = ack.nodes;
    peer.acked_epoch = epoch;
    peer.acked_num_vars = dir.info.num_vars;
    peer.acked_crc_row = crc_row_of(dir);
    return std::nullopt;
  }
  if (f->type == kShipNak) {
    return decode_ship_nak(f->payload).reason;
  }
  throw std::runtime_error("repl: unexpected frame during ship");
}

ShipReport ReplicationWriter::ship_file(const std::string& path) {
  const snapshot::LevelDirectory dir = snapshot::inspect_levels(path);
  Fd fd(path);
  std::vector<std::uint8_t> meta(dir.meta_bytes());
  pread_all(fd.fd, meta.data(), meta.size(), 0);
  std::vector<std::uint8_t> roots(dir.root_table_bytes);
  pread_all(fd.fd, roots.data(), roots.size(), dir.root_table_offset);

  std::vector<std::uint32_t> all_levels(dir.levels.size());
  for (std::size_t v = 0; v < all_levels.size(); ++v) {
    all_levels[v] = static_cast<std::uint32_t>(v);
  }

  std::lock_guard<std::mutex> lk(mutex_);
  ShipReport report;
  report.epoch = ++epoch_;
  report.file_bytes = dir.info.file_bytes;
  // Trace context: inherit the requesting thread's id (the service save
  // that produced this snapshot), else mint one per ship. Each peer gets a
  // derived flow id so its apply pairs with exactly one ship record.
  std::uint64_t base_id = obs::Tracer::thread_trace_id();
  if (base_id == 0) base_id = obs::Tracer::active_trace_id();
  if (base_id == 0) base_id = obs::Tracer::mint_trace_id();
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    Peer& peer = peers_[i];
    ReplicaShip ship;
    ship.endpoint = peer.endpoint;
    const std::uint64_t wire_id = obs::Tracer::mix_trace_id(base_id, i + 1);
    c_ships_total_.fetch_add(1, std::memory_order_relaxed);
    if (!peer.up && !connect_peer(peer)) {
      ship.error = "replica down";
      c_ship_failures_.fetch_add(1, std::memory_order_relaxed);
      report.replicas.push_back(std::move(ship));
      continue;
    }
    const std::optional<std::vector<std::uint32_t>> plan = plan_delta(
        dir, peer.acked_epoch, peer.acked_num_vars, peer.acked_crc_row);
    const ShipMode mode = plan ? ShipMode::kDelta : ShipMode::kFull;
    const std::vector<std::uint32_t>& dirty = plan ? *plan : all_levels;
    try {
      std::optional<std::string> nak =
          ship_attempt(peer, fd.fd, dir, meta, roots, dirty, mode,
                       report.epoch, wire_id, ship);
      if (nak && mode == ShipMode::kDelta) {
        // Divergence: the replica's applied file does not match its acked
        // row. One full resend re-bases it.
        c_naks_.fetch_add(1, std::memory_order_relaxed);
        ship.retried_full = true;
        nak = ship_attempt(peer, fd.fd, dir, meta, roots, all_levels,
                           ShipMode::kFull, report.epoch, wire_id, ship);
      }
      if (nak) {
        c_naks_.fetch_add(1, std::memory_order_relaxed);
        ship.error = "nak: " + *nak;
      } else {
        ship.ok = true;
      }
    } catch (const std::exception& e) {
      ship.error = e.what();
      peer.sock.close();
      peer.up = false;
    }
    if (ship.ok) {
      (mode == ShipMode::kDelta && !ship.retried_full ? c_delta_ships_
                                                      : c_full_ships_)
          .fetch_add(1, std::memory_order_relaxed);
      c_bytes_sent_.fetch_add(ship.bytes_sent, std::memory_order_relaxed);
      const obs::TraceIdScope flow(wire_id);
      PBDD_TRACE_INSTANT(kReplShip, ship.bytes_sent, i);
    } else {
      c_ship_failures_.fetch_add(1, std::memory_order_relaxed);
    }
    report.replicas.push_back(std::move(ship));
  }
  return report;
}

std::vector<std::optional<std::uint64_t>> ReplicationWriter::heartbeat() {
  std::lock_guard<std::mutex> lk(mutex_);
  std::vector<std::optional<std::uint64_t>> epochs;
  epochs.reserve(peers_.size());
  std::uint64_t nonce = 0;
  for (Peer& peer : peers_) {
    ++nonce;
    if (!peer.up) {
      epochs.push_back(std::nullopt);
      continue;
    }
    try {
      Ping ping;
      ping.nonce = nonce;
      const std::uint64_t t_send = obs::Tracer::steady_now_ns();
      ping.t_send_ns = t_send;
      net::send_frame(peer.sock, kPing, encode(ping));
      std::optional<net::Frame> f = net::recv_frame(peer.sock,
                                                    opts_.max_payload);
      const std::uint64_t t_recv = obs::Tracer::steady_now_ns();
      if (!f || f->type != kPong) {
        throw std::runtime_error("repl: bad pong");
      }
      const Pong pong = decode_pong(f->payload);
      if (pong.nonce != nonce) throw std::runtime_error("repl: pong nonce");
      if (!peer.process_name.empty() && pong.t_steady_ns != 0) {
        // Every heartbeat refreshes the offset estimate; the latest one
        // wins, which also tracks slow clock drift over long runs.
        obs::Tracer::instance().set_clock_offset(
            peer.process_name,
            static_cast<std::int64_t>(pong.t_steady_ns) -
                static_cast<std::int64_t>(t_send / 2 + t_recv / 2));
      }
      epochs.push_back(pong.epoch);
    } catch (const std::exception&) {
      peer.sock.close();
      peer.up = false;
      epochs.push_back(std::nullopt);
    }
  }
  return epochs;
}

void ReplicationWriter::start_heartbeats() {
  if (opts_.heartbeat_interval.count() == 0) return;
  std::lock_guard<std::mutex> lk(hb_mutex_);
  if (hb_running_) return;
  hb_running_ = true;
  heartbeat_thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lk(hb_mutex_);
    while (!hb_stop_) {
      lk.unlock();
      (void)heartbeat();
      lk.lock();
      hb_cv_.wait_for(lk, opts_.heartbeat_interval, [this] { return hb_stop_; });
    }
  });
}

std::uint64_t ReplicationWriter::epoch() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return epoch_;
}

std::size_t ReplicationWriter::up_count() const {
  std::lock_guard<std::mutex> lk(mutex_);
  std::size_t up = 0;
  for (const Peer& peer : peers_) up += peer.up ? 1 : 0;
  return up;
}

ReplicationWriter::Counters ReplicationWriter::counters() const {
  Counters c;
  c.ships_total = c_ships_total_.load(std::memory_order_relaxed);
  c.ship_failures = c_ship_failures_.load(std::memory_order_relaxed);
  c.delta_ships = c_delta_ships_.load(std::memory_order_relaxed);
  c.full_ships = c_full_ships_.load(std::memory_order_relaxed);
  c.naks = c_naks_.load(std::memory_order_relaxed);
  c.bytes_sent = c_bytes_sent_.load(std::memory_order_relaxed);
  c.reconnects = c_reconnects_.load(std::memory_order_relaxed);
  return c;
}

std::string ReplicationWriter::metrics_text() const {
  const Counters c = counters();
  obs::Registry reg;
  reg.gauge("pbdd_repl_writer_epoch", "Last epoch shipped (0 = none yet)")
      .set(static_cast<double>(epoch()));
  reg.gauge("pbdd_repl_writer_replicas_up",
            "Replicas currently connected and acking")
      .set(static_cast<double>(up_count()));
  reg.counter("pbdd_repl_writer_ships_total",
              "Per-replica ship attempts")
      .add(c.ships_total);
  reg.counter("pbdd_repl_writer_ship_failures_total",
              "Ship attempts that failed (down replica, transport error, "
              "unrecovered nak)")
      .add(c.ship_failures);
  reg.counter("pbdd_repl_writer_delta_ships_total",
              "Ships that went out as level deltas")
      .add(c.delta_ships);
  reg.counter("pbdd_repl_writer_full_ships_total",
              "Ships that went out as full snapshots")
      .add(c.full_ships);
  reg.counter("pbdd_repl_writer_naks_total",
              "ShipNak responses received")
      .add(c.naks);
  reg.counter("pbdd_repl_writer_bytes_sent_total",
              "Ship payload bytes sent (acked ships only)")
      .add(c.bytes_sent);
  reg.counter("pbdd_repl_writer_reconnects_total",
              "Successful replica handshakes")
      .add(c.reconnects);
  return reg.prometheus_text();
}

}  // namespace pbdd::repl
