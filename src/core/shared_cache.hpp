// Shared completed-results compute cache.
//
// The paper's data layout gives every worker a private compute cache so the
// expansion phase runs without synchronization — at the cost of duplicated
// work between workers (Figs. 11/12 quantify it; on fault-simulation
// campaigns we measured ~7% redundant expansions at 4 workers, because each
// worker re-derives subfunctions another worker already finished). Modern
// multi-core packages (HermesBDD, Sylvan) instead share one computed table.
//
// This cache is the compromise: private caches keep the paper's
// synchronization-free fast path and remain the only place that may hold
// *uncomputed* in-flight operator references, while this structure shares
// only *completed* results (BDD references) between workers. A worker
// probes it after a private-cache miss and publishes into it when a
// reduction writes an operation's final result back.
//
// Concurrency protocol (per 32-byte entry: one atomic meta word + three
// atomic payload words, two entries per cache line):
//
//   writer:  CAS meta -> {writing, seq+1} (exclusive claim; the CAS loses
//            against any concurrent claim, including one racing for the
//            same previous value — losers skip, the cache is lossy),
//            store f/g/result relaxed,
//            store meta = {valid, op, seq+1} release.
//   reader:  m1 = meta acquire; payload loads relaxed;
//            acquire fence; m2 = meta relaxed.
//            Hit iff m1 == m2, m1 valid with the probed op, and f/g match.
//
// The per-entry sequence number makes the read a seqlock validation: any
// concurrent overwrite bumps seq (or parks meta in the writing state), so a
// torn read can never satisfy m1 == m2, and the claim CAS compares the full
// meta word — two writers racing from the same observed value cannot both
// win, so payload writers are mutually exclusive. Canonicity provides the
// semantic safety net — two publishers of the same (op, f, g) key
// necessarily publish the same canonical reference. The release/acquire
// pair on meta orders the publisher's node construction before any reader
// dereferences the result.
//
// Garbage collection moves nodes, so gc_driver flushes this cache (each
// worker clears a partition) inside the stop-the-world window, exactly as
// workers flush their private caches.
#pragma once

#include <atomic>
#include <cstdint>
#include <new>

#include "common/op.hpp"
#include "core/ref.hpp"
#include "util/aligned.hpp"
#include "util/hash.hpp"

namespace pbdd::core {

class SharedComputeCache {
 public:
  struct Entry {
    /// bit 63 = valid, bits 32..47 = op, bits 0..31 = publish sequence.
    std::atomic<std::uint64_t> meta{0};
    std::atomic<std::uint64_t> f{0};
    std::atomic<std::uint64_t> g{0};
    std::atomic<std::uint64_t> result{0};
  };
  static_assert(sizeof(Entry) == 32,
                "two entries per cache line; a probe stays single-line");
  static_assert(std::atomic<std::uint64_t>::is_always_lock_free);

  static constexpr std::uint64_t kValidBit = std::uint64_t{1} << 63;
  /// Entry is mid-publish: payload words are being written. Mutually
  /// exclusive with kValidBit; readers treat it as a miss.
  static constexpr std::uint64_t kWritingBit = std::uint64_t{1} << 62;

  [[nodiscard]] static constexpr std::uint64_t pack(
      Op op, std::uint32_t seq) noexcept {
    return kValidBit |
           (static_cast<std::uint64_t>(static_cast<std::uint16_t>(op))
            << 32) |
           seq;
  }

  SharedComputeCache() = default;
  SharedComputeCache(const SharedComputeCache&) = delete;
  SharedComputeCache& operator=(const SharedComputeCache&) = delete;
  ~SharedComputeCache() { release(); }

  void init(unsigned log2_entries) {
    release();
    count_ = std::size_t{1} << log2_entries;
    mask_ = count_ - 1;
    entries_ = static_cast<Entry*>(::operator new(
        count_ * sizeof(Entry), std::align_val_t{util::kCacheLineBytes}));
    for (std::size_t i = 0; i < count_; ++i) new (entries_ + i) Entry{};
  }

  [[nodiscard]] bool enabled() const noexcept { return entries_ != nullptr; }
  [[nodiscard]] std::size_t entry_count() const noexcept { return count_; }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return count_ * sizeof(Entry);
  }

  /// Probe for a completed result. Returns kInvalid on miss. Never blocks.
  [[nodiscard]] NodeRef lookup(Op op, NodeRef f, NodeRef g) const noexcept {
    const Entry& e = entries_[slot_for(op, f, g)];
    const std::uint64_t m1 = e.meta.load(std::memory_order_acquire);
    if ((m1 & kValidBit) == 0 ||
        static_cast<std::uint16_t>(m1 >> 32) !=
            static_cast<std::uint16_t>(op)) {
      return kInvalid;
    }
    const std::uint64_t ff = e.f.load(std::memory_order_relaxed);
    const std::uint64_t gg = e.g.load(std::memory_order_relaxed);
    const std::uint64_t rr = e.result.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (e.meta.load(std::memory_order_relaxed) != m1 || ff != f || gg != g) {
      return kInvalid;
    }
    return static_cast<NodeRef>(rr);
  }

  /// Publish a completed result. `result` must be a BDD reference (operator
  /// references are never shared — they are private to their owner's
  /// context stack). Lossy: losing a claim race simply skips the publish.
  void insert(Op op, NodeRef f, NodeRef g, NodeRef result) noexcept {
    Entry& e = entries_[slot_for(op, f, g)];
    std::uint64_t m = e.meta.load(std::memory_order_relaxed);
    if ((m & kWritingBit) != 0) return;  // another publish is in flight
    const std::uint32_t seq = static_cast<std::uint32_t>(m) + 1;
    // Exclusive claim: the full-word compare means two writers racing from
    // the same observed meta cannot both win, and a mid-write entry (its
    // seq already bumped) loses every claim race against it.
    if (!e.meta.compare_exchange_strong(m, kWritingBit | seq,
                                        std::memory_order_relaxed)) {
      return;
    }
    e.f.store(f, std::memory_order_relaxed);
    e.g.store(g, std::memory_order_relaxed);
    e.result.store(result, std::memory_order_relaxed);
    e.meta.store(pack(op, seq), std::memory_order_release);
  }

  /// Invalidate a partition of the cache — collection moves nodes, so every
  /// stored reference would dangle. Workers split [0, partitions) between
  /// themselves inside the stop-the-world GC window.
  void flush_partition(unsigned index, unsigned partitions) noexcept {
    if (entries_ == nullptr) return;
    const std::size_t begin = count_ * index / partitions;
    const std::size_t end = count_ * (index + 1) / partitions;
    for (std::size_t i = begin; i < end; ++i) {
      entries_[i].meta.store(0, std::memory_order_relaxed);
    }
  }

 private:
  [[nodiscard]] std::uint32_t slot_for(Op op, NodeRef f,
                                       NodeRef g) const noexcept {
    return static_cast<std::uint32_t>(
        util::hash_triple(static_cast<std::uint64_t>(op), f, g) & mask_);
  }

  void release() noexcept {
    if (entries_ != nullptr) {
      ::operator delete(entries_, std::align_val_t{util::kCacheLineBytes});
      entries_ = nullptr;
    }
    count_ = 0;
    mask_ = 0;
  }

  Entry* entries_ = nullptr;
  std::size_t count_ = 0;
  std::uint64_t mask_ = 0;
};

}  // namespace pbdd::core
