#include "core/stats_metrics.hpp"

#include <string>
#include <tuple>

namespace pbdd::core {

namespace {

void publish_phases(const WorkerStats& w, obs::Registry& reg,
                    const obs::Labels& base) {
  const std::pair<const char*, std::uint64_t> phases[] = {
      {"expansion", w.expansion_ns}, {"reduction", w.reduction_ns},
      {"gc", w.gc_ns},               {"gc_mark", w.gc_mark_ns},
      {"gc_fix", w.gc_fix_ns},       {"gc_rehash", w.gc_rehash_ns},
  };
  for (const auto& [phase, ns] : phases) {
    obs::Labels labels = base;
    labels.emplace_back("phase", phase);
    reg.counter("pbdd_engine_phase_ns_total",
                "Wall-clock ns spent per engine phase", labels)
        .add(ns);
  }
}

}  // namespace

void publish_stats(const ManagerStats& stats, obs::Registry& reg,
                   const PublishOptions& options) {
  const WorkerStats& t = stats.total;
  // name, help, value. Help strings are per family (docs/OBSERVABILITY.md
  // carries the longer discussion; the exposition should stand on its own).
  const std::tuple<const char*, const char*, std::uint64_t> counters[] = {
      {"pbdd_engine_ops_total", "BDD operations executed (expansion tasks)",
       t.ops_performed},
      {"pbdd_engine_cache_lookups_total", "Compute-cache probes",
       t.cache_lookups},
      {"pbdd_engine_cache_hits_total", "Compute-cache hits (any kind)",
       t.cache_hits},
      {"pbdd_engine_cache_op_hits_total",
       "Compute-cache hits on completed results", t.cache_op_hits},
      {"pbdd_engine_cache_cross_ctx_misses_total",
       "Compute-cache entries skipped because they belong to a spilled "
       "context",
       t.cache_cross_ctx_misses},
      {"pbdd_engine_cache_shared_hits_total",
       "Hits in the shared (cross-worker) compute-cache tier",
       t.cache_shared_hits},
      {"pbdd_engine_nodes_created_total", "Unique-table node insertions",
       t.nodes_created},
      {"pbdd_engine_contexts_pushed_total",
       "Breadth-first contexts spilled for work stealing", t.contexts_pushed},
      {"pbdd_engine_groups_created_total",
       "Task groups published as stealable", t.groups_created},
      {"pbdd_engine_groups_taken_total",
       "Task groups reclaimed by their owning worker", t.groups_taken},
      {"pbdd_engine_groups_stolen_total", "Task groups executed by a thief",
       t.groups_stolen},
      {"pbdd_engine_tasks_stolen_total", "Individual tasks run by a thief",
       t.tasks_stolen},
      {"pbdd_engine_reduction_stalls_total",
       "Reduction waits on a thief's in-flight result", t.reduction_stalls},
      {"pbdd_engine_batch_dep_stalls_total",
       "Batch items that stalled on an unfinished dependency",
       t.batch_dep_stalls},
      {"pbdd_engine_top_ops_total", "Top-level batch items executed",
       t.top_ops},
      {"pbdd_engine_lock_wait_ns_total",
       "Nanoseconds spent waiting on unique-table locks", t.lock_wait_ns},
      {"pbdd_engine_cas_retries_total",
       "Lock-free insertion CAS retries", t.cas_retries},
      {"pbdd_engine_gc_runs_total", "Mark-compact collections", stats.gc_runs},
  };
  for (const auto& [name, help, value] : counters) {
    reg.counter(name, help).add(value);
  }

  reg.gauge("pbdd_engine_live_nodes", "Live nodes after the last collection")
      .set(static_cast<double>(stats.live_nodes));
  reg.gauge("pbdd_engine_allocated_nodes", "Allocated node slots")
      .set(static_cast<double>(stats.allocated_nodes));
  reg.gauge("pbdd_engine_bytes", "Store footprint in bytes")
      .set(static_cast<double>(stats.bytes));

  if (options.per_worker) {
    for (std::size_t w = 0; w < stats.per_worker.size(); ++w) {
      publish_phases(stats.per_worker[w], reg,
                     {{"worker", std::to_string(w)}});
    }
  } else {
    publish_phases(t, reg, {});
  }

  if (options.per_var) {
    for (std::size_t v = 0; v < stats.lock_wait_per_var_ns.size(); ++v) {
      reg.counter("pbdd_engine_var_lock_wait_ns_total",
                  "Unique-table lock wait ns per variable",
                  {{"var", std::to_string(v)}})
          .add(stats.lock_wait_per_var_ns[v]);
    }
    for (std::size_t v = 0; v < stats.max_nodes_per_var.size(); ++v) {
      reg.gauge("pbdd_engine_var_max_nodes",
                "Unique-table high-water mark per variable",
                {{"var", std::to_string(v)}})
          .set(static_cast<double>(stats.max_nodes_per_var[v]));
    }
  }
}

}  // namespace pbdd::core
