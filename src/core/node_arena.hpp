// Concurrently-readable BDD node arena.
//
// One instance per (worker, variable) pair. Only the owning worker
// allocates, but *every* worker resolves references into it: expansion reads
// cofactor children created by other workers, and the reduction phase walks
// unique-table chains that cross worker arenas. Allocation is lock-free for
// readers: blocks never move, and the block directory grows RCU-style — a
// new, larger pointer array is populated and published with a release store
// while retired arrays are kept until the arena is destroyed or compacted at
// a stop-the-world point.
//
// Readers may only dereference slots they learned about through a proper
// publication channel (unique-table mutex or an acquire load of an operator
// node's result), which guarantees the owning worker's directory store is
// visible.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/node.hpp"
#include "runtime/inject.hpp"

namespace pbdd::core {

class NodeArena {
 public:
  static constexpr unsigned kLog2BlockSlots = 12;
  static constexpr std::uint32_t kBlockSlots = 1u << kLog2BlockSlots;
  static constexpr std::uint32_t kSlotMask = kBlockSlots - 1;

  NodeArena() = default;
  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  ~NodeArena() {
    for (Block* b : blocks_) delete b;
    for (Block** d : retired_dirs_) delete[] d;
    delete[] dir_.load(std::memory_order_relaxed);
  }

  /// Owner-only: allocate one slot. Recycled slots (free_slot) are reused
  /// before the bump pointer advances.
  std::uint32_t alloc() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    const std::uint32_t slot = size_;
    if ((slot >> kLog2BlockSlots) == blocks_.size()) add_block();
    ++size_;
    return slot;
  }

  /// Owner-only: return a slot that was allocated speculatively but never
  /// published (a losing racer in the lock-free unique table). The slot is
  /// tombstoned — low == high == kInvalid, aux clear — so store audits and
  /// the collector's mark scan both see it as dead; the next collection
  /// compacts it away (truncate() then drops the stale free list).
  void free_slot(std::uint32_t slot) {
    BddNode& n = at_own(slot);
    n.low = kInvalid;
    n.high = kInvalid;
    n.next.store(kZero, std::memory_order_relaxed);
    n.aux.store(0, std::memory_order_relaxed);
    free_slots_.push_back(slot);
  }

  /// Safe from any thread for published slots.
  [[nodiscard]] BddNode& at(std::uint32_t slot) const noexcept {
    Block* const* dir = dir_.load(std::memory_order_acquire);
    return dir[slot >> kLog2BlockSlots]->slots[slot & kSlotMask];
  }

  /// Owner-only fast path (no acquire fence needed).
  [[nodiscard]] BddNode& at_own(std::uint32_t slot) noexcept {
    assert(slot < size_);
    return blocks_[slot >> kLog2BlockSlots]->slots[slot & kSlotMask];
  }

  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }

  [[nodiscard]] std::size_t bytes() const noexcept {
    return blocks_.size() * sizeof(Block) +
           dir_capacity_ * sizeof(Block*);
  }

  /// Stop-the-world spill support: the recycled-slot list, verbatim. Its
  /// LIFO order decides which slot alloc() hands out next, so a spill
  /// segment must persist it exactly — a faulted-in level that re-allocates
  /// in a different order would break byte-identical determinism.
  [[nodiscard]] const std::vector<std::uint32_t>& free_slots() const noexcept {
    return free_slots_;
  }

  /// Stop-the-world only: reinstate a recycled-slot list captured by
  /// free_slots() before this arena was released to disk (truncate(0)
  /// clears it). All slots must already be re-allocated.
  void restore_free_slots(std::vector<std::uint32_t> slots) {
    assert(free_slots_.empty());
    free_slots_ = std::move(slots);
  }

  /// Stop-the-world only: shrink the live prefix after sliding compaction
  /// and release now-empty trailing blocks plus retired directories.
  /// truncate(0) is the spill path: the whole level's storage is released
  /// and the arena is refilled from disk by in-order alloc() on fault.
  void truncate(std::uint32_t new_size) {
    assert(new_size <= size_);
    // Sliding compaction renumbered every live slot, so recycled-slot
    // indices recorded before the collection are meaningless now.
    free_slots_.clear();
    size_ = new_size;
    const std::size_t blocks_needed =
        (static_cast<std::size_t>(size_) + kBlockSlots - 1) / kBlockSlots;
    Block** dir = dir_.load(std::memory_order_relaxed);
    for (std::size_t i = blocks_needed; i < blocks_.size(); ++i) {
      delete blocks_[i];
      dir[i] = nullptr;
    }
    blocks_.resize(blocks_needed);
    for (Block** d : retired_dirs_) delete[] d;
    retired_dirs_.clear();
  }

 private:
  /// Line-aligned so the 32-byte nodes pack two per 64-byte line with no
  /// node straddling a boundary (see BddNode's layout comment).
  struct alignas(64) Block {
    BddNode slots[kBlockSlots];
  };
  static_assert(sizeof(Block) % 64 == 0);

  void add_block() {
    PBDD_INJECT(kArenaBlockAlloc);
    Block* block = new Block();
    if (blocks_.size() == dir_capacity_) {
      grow_dir(dir_capacity_ ? dir_capacity_ * 2 : 16);
    } else if (PBDD_INJECT_QUERY(kForceDirChurn)) {
      // Same-capacity republication: drives the RCU retire/acquire dance
      // concurrent readers depend on, without unbounded directory growth.
      grow_dir(dir_capacity_);
    }
    Block** dir = dir_.load(std::memory_order_relaxed);
    dir[blocks_.size()] = block;
    blocks_.push_back(block);
    // The new directory entry must be visible before any reference to a
    // slot in this block is published; the release pairs with readers'
    // acquire in at(). (Publication itself additionally goes through the
    // unique-table mutex or a result release-store.)
    dir_.store(dir, std::memory_order_release);
  }

  void grow_dir(std::size_t new_cap) {
    PBDD_INJECT(kArenaDirGrow);
    Block** fresh = new Block*[new_cap]();
    Block** old = dir_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < blocks_.size(); ++i) fresh[i] = old[i];
    dir_.store(fresh, std::memory_order_release);
    if (old != nullptr) retired_dirs_.push_back(old);
    dir_capacity_ = new_cap;
  }

  std::vector<Block*> blocks_;          // owner-side authoritative list
  std::atomic<Block**> dir_{nullptr};   // reader-side directory
  std::size_t dir_capacity_ = 0;
  std::vector<Block**> retired_dirs_;   // old directories pending reclaim
  std::vector<std::uint32_t> free_slots_;  // owner-only recycled slots
  std::uint32_t size_ = 0;
};

}  // namespace pbdd::core
