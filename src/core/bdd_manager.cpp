#include "core/bdd_manager.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "obs/trace_points.hpp"
#include "runtime/backoff.hpp"
#include "runtime/inject.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace pbdd::core {

namespace {
/// Enforce the configuration invariants up front (also in release builds):
/// sequential mode means exactly one worker, and at least one worker runs.
Config normalized(Config config) {
  if (config.workers == 0) config.workers = 1;
  if (config.sequential_mode) {
    config.workers = 1;
    // Lock elision needs the pass-level discipline: the engine simply never
    // takes the (uncontended) lock, and the atomics of the lock-free path
    // would be pure overhead with one thread.
    config.table_discipline = TableDiscipline::kPassLock;
    config.table_shards = 1;
  }
  if (config.group_size == 0) config.group_size = 1;
  if (config.table_shards == 0) config.table_shards = 1;
  // Round shards down to a power of two.
  while (config.table_shards & (config.table_shards - 1)) {
    config.table_shards &= config.table_shards - 1;
  }
  // Reconcile discipline and shard count: the lock-free table has a single
  // bucket array (no segments), a shard count above one implies kSharded,
  // and kSharded with one shard falls back to its default striping.
  switch (config.table_discipline) {
    case TableDiscipline::kLockFree:
      config.table_shards = 1;
      break;
    case TableDiscipline::kSharded:
      if (config.table_shards == 1) config.table_shards = 4;
      break;
    case TableDiscipline::kPassLock:
      if (config.table_shards > 1) {
        config.table_discipline = TableDiscipline::kSharded;
      }
      break;
  }
  return config;
}
}  // namespace

BddManager::BddManager(unsigned num_vars, Config config)
    : num_vars_(num_vars),
      config_(normalized(config)),
      locking_(!config_.sequential_mode),
      unique_(num_vars),
      pool_(config_.workers),
      gc_barrier_(pool_.size(),
                  /*spin=*/pool_.size() <=
                      std::max(1u, std::thread::hardware_concurrency())) {
  assert(num_vars_ >= 1 && num_vars_ < kTermLevel);
  const unsigned workers = pool_.size();
  oversubscribed_ =
      workers > std::max(1u, std::thread::hardware_concurrency());
  active_workers_ = config_.max_active_workers == 0
                        ? workers
                        : std::max(1u, std::min(workers,
                                                config_.max_active_workers));
  // Initialized before the workers: each Worker caches the pointer. A
  // single active worker never duplicates its own work, so it keeps the
  // strictly cheaper private-cache-only path.
  if (active_workers_ > 1 && config_.shared_cache_log2 > 0) {
    shared_cache_.init(config_.shared_cache_log2);
  }
  workers_.reserve(workers);
  for (unsigned id = 0; id < workers; ++id) {
    workers_.push_back(std::make_unique<Worker>(this, id, num_vars_, config_));
  }
  for (unsigned v = 0; v < num_vars_; ++v) {
    std::vector<NodeArena*> arenas;
    arenas.reserve(workers);
    for (unsigned id = 0; id < workers; ++id) {
      arenas.push_back(&workers_[id]->node_arena(v));
    }
    unique_[v].init(v, std::move(arenas),
                    std::size_t{1} << config_.initial_buckets_log2,
                    config_.table_shards, config_.table_discipline);
  }
}

BddManager::~BddManager() {
#ifndef NDEBUG
  std::size_t live_handles = 0;
  for (const RootEntry& entry : roots_) {
    if (entry.ref != kInvalid) ++live_handles;
  }
  assert(live_handles == 0 &&
         "Bdd handles must be destroyed before their BddManager");
#endif
}

// ---------------------------------------------------------------------------
// Root registry
// ---------------------------------------------------------------------------

Bdd BddManager::make_root(NodeRef ref) {
  assert(is_bdd(ref) && ref != kInvalid);
  std::lock_guard lock(roots_mutex_);
  std::uint32_t index;
  if (roots_free_head_ != kNilSlot) {
    index = roots_free_head_;
    roots_free_head_ = roots_[index].next_free;
  } else {
    index = static_cast<std::uint32_t>(roots_.size());
    roots_.emplace_back();
  }
  RootEntry& entry = roots_[index];
  entry.ref = ref;
  entry.rc.store(1, std::memory_order_relaxed);
  return Bdd(this, index);
}

// Every registry access (including plain indexing) takes the mutex: the
// deque's element references are stable, but its internal block map is
// reallocated by emplace_back, so lock-free indexing would race with
// concurrent make_root calls from other workers.

void BddManager::root_incref(std::uint32_t root) noexcept {
  std::lock_guard lock(roots_mutex_);
  roots_[root].rc.fetch_add(1, std::memory_order_relaxed);
}

void BddManager::root_decref(std::uint32_t root) noexcept {
  std::lock_guard lock(roots_mutex_);
  RootEntry& entry = roots_[root];
  if (entry.rc.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    entry.ref = kInvalid;
    entry.next_free = roots_free_head_;
    roots_free_head_ = root;
  }
}

NodeRef BddManager::root_ref(std::uint32_t root) const noexcept {
  std::lock_guard lock(roots_mutex_);
  return roots_[root].ref;
}

// ---------------------------------------------------------------------------
// Sequential node construction (variables, restrict, quantifiers)
// ---------------------------------------------------------------------------

NodeRef BddManager::mk_node(unsigned var, NodeRef low, NodeRef high) {
  if (low == high) return low;
  touch_level(var);  // find_or_insert walks this level's chains
  VarUniqueTable& table = unique_[var];
  const bool pass_lock = locking_ && table.pass_locked();
  if (pass_lock) table.acquire(0);
  bool created = false;
  const NodeRef r = table.find_or_insert(0, low, high, created);
  if (created) ++workers_[0]->stats().nodes_created;
  if (pass_lock) table.release();
  return r;
}

Bdd BddManager::var(unsigned v) {
  assert(v < num_vars_);
  return make_root(mk_node(v, kZero, kOne));
}

Bdd BddManager::nvar(unsigned v) {
  assert(v < num_vars_);
  return make_root(mk_node(v, kOne, kZero));
}

// ---------------------------------------------------------------------------
// Top-level operation batches
// ---------------------------------------------------------------------------

void BddManager::register_batch_result(std::size_t index, NodeRef ref) {
  // Root the result immediately so a sequential-mode collection between
  // top-level operations keeps it alive (and gets its reference fixed).
  batch_state_.result_handles[index] = make_root(ref);
  // Publish after the handle is in place: dependent items acquire-load the
  // state word, then read the handle (never the raw ref — a sequential-mode
  // collection between items may have moved the node).
  batch_state_.item_state[index].store(BatchState::kItemDone,
                                       std::memory_order_release);
}

void BddManager::execute_batch(std::vector<BatchState::Item> items,
                               std::vector<Bdd>& out, BatchControl* control) {
  const std::size_t n = items.size();
  out.clear();
  if (n == 0) return;
  for (std::size_t i = 0; i < n; ++i) {
    const BatchState::Item& item = items[i];
    // Each operand is either a materialized handle of this manager or a
    // backward reference to an earlier item of the same batch; anything
    // else (empty handle, foreign manager, forward or self dependency)
    // would corrupt the engine or deadlock the DAG.
    const auto operand_ok = [&](const Bdd& h, std::int32_t dep) {
      if (dep >= 0) return static_cast<std::size_t>(dep) < i;
      return h.valid() && h.manager() == this;
    };
    if (!operand_ok(item.f, item.f_dep) || !operand_ok(item.g, item.g_dep)) {
      throw std::invalid_argument(
          "apply_batch: operand is empty, from another manager, or a "
          "non-backward dependency");
    }
  }
  batch_state_.items = std::move(items);
  batch_state_.result_handles.assign(n, Bdd{});
  if (batch_state_.item_state_capacity < n) {
    batch_state_.item_state = std::make_unique<std::atomic<std::uint8_t>[]>(n);
    batch_state_.item_state_capacity = n;
  }
  for (std::size_t i = 0; i < n; ++i) {
    batch_state_.item_state[i].store(BatchState::kItemPending,
                                     std::memory_order_relaxed);
  }
  batch_state_.control = control;
  batch_state_.next.store(0, std::memory_order_relaxed);
  batch_state_.completed.store(0, std::memory_order_relaxed);

  PBDD_TRACE_INSTANT(kBatchStart, n, 0);
  pool_.run([this](unsigned id) { workers_[id]->run_batch(); });
  PBDD_TRACE_INSTANT(kBatchEnd, 0, 0);

  out = std::move(batch_state_.result_handles);
  batch_state_.result_handles.clear();
  batch_state_.items.clear();
  batch_state_.control = nullptr;

  // Batch barrier epilogue: recycle operator nodes and retire their cache
  // generation, then apply the paper's batch-boundary GC check.
  peak_bytes_ = std::max(peak_bytes_, bytes());
  ++op_generation_;
  for (auto& w : workers_) w->end_of_batch_reset();
  // Quiet point: no operation in flight, so the pager may demote cold
  // levels before the GC check (which would fault everything back in).
  if (pager_ != nullptr) pager_->batch_barrier();
  PBDD_INJECT(kBatchBarrier);
  maybe_gc();
}

Bdd BddManager::apply(Op op, const Bdd& f, const Bdd& g) {
  // Operand validation happens in execute_batch (throws, not asserts).
  std::vector<BatchState::Item> items;
  items.push_back({op, f, g});
  std::vector<Bdd> out;
  execute_batch(std::move(items), out);
  return std::move(out[0]);
}

std::vector<Bdd> BddManager::apply_batch(std::span<const BatchOp> batch) {
  return apply_batch(batch, nullptr);
}

std::vector<Bdd> BddManager::apply_batch(std::span<const BatchOp> batch,
                                         BatchControl* control) {
  std::vector<BatchState::Item> items;
  items.reserve(batch.size());
  for (const BatchOp& req : batch) {
    items.push_back({req.op, req.f, req.g, req.f_dep, req.g_dep});
  }
  std::vector<Bdd> out;
  execute_batch(std::move(items), out, control);
  return out;
}

Bdd BddManager::not_(const Bdd& f) {
  return apply(Op::Xor, f, one());
}

Bdd BddManager::ite(const Bdd& c, const Bdd& t, const Bdd& e) {
  // ITE(c, t, e) = (c AND t) OR (e AND NOT c); the two conjuncts are
  // independent top-level operations and the combining OR names them as
  // in-batch dependencies, so the whole ITE goes out as one batch with no
  // barrier between the rounds.
  std::vector<BatchState::Item> items;
  items.push_back({Op::And, c, t});
  items.push_back({Op::Diff, e, c});
  items.push_back({Op::Or, Bdd{}, Bdd{}, 0, 1});
  std::vector<Bdd> parts;
  execute_batch(std::move(items), parts);
  return std::move(parts[2]);
}

// ---------------------------------------------------------------------------
// Cofactor / quantification / composition (sequential utility operations)
// ---------------------------------------------------------------------------

namespace {
NodeRef restrict_rec(BddManager& mgr, NodeRef r, unsigned v, bool value,
                     std::unordered_map<NodeRef, NodeRef>& memo) {
  if (is_terminal(r) || var_of(r) > v) return r;
  mgr.touch_level(var_of(r));
  const BddNode& n = mgr.node(r);
  if (var_of(r) == v) return value ? n.high : n.low;
  if (auto it = memo.find(r); it != memo.end()) return it->second;
  const NodeRef low = restrict_rec(mgr, n.low, v, value, memo);
  const NodeRef high = restrict_rec(mgr, n.high, v, value, memo);
  const NodeRef result = mgr.mk_node(var_of(r), low, high);
  memo.emplace(r, result);
  return result;
}
}  // namespace

Bdd BddManager::restrict_(const Bdd& f, unsigned v, bool value) {
  assert(v < num_vars_);
  std::unordered_map<NodeRef, NodeRef> memo;
  return make_root(restrict_rec(*this, f.ref(), v, value, memo));
}

Bdd BddManager::exists(const Bdd& f, const std::vector<unsigned>& vars) {
  Bdd result = f;
  for (const unsigned v : vars) {
    result = apply(Op::Or, restrict_(result, v, false),
                   restrict_(result, v, true));
  }
  return result;
}

Bdd BddManager::forall(const Bdd& f, const std::vector<unsigned>& vars) {
  Bdd result = f;
  for (const unsigned v : vars) {
    result = apply(Op::And, restrict_(result, v, false),
                   restrict_(result, v, true));
  }
  return result;
}

Bdd BddManager::compose(const Bdd& f, unsigned v, const Bdd& g) {
  // f[v := g] = ITE(g, f|v=1, f|v=0)
  return ite(g, restrict_(f, v, true), restrict_(f, v, false));
}

namespace {
/// Memo key for binary recursions over commutatively-normalized operand
/// pairs (and_exists, its OR combiner).
struct RefPairHash {
  std::size_t operator()(const std::pair<NodeRef, NodeRef>& p) const noexcept {
    return static_cast<std::size_t>(util::hash_pair(p.first, p.second));
  }
};
}  // namespace

Bdd BddManager::and_exists(const Bdd& f, const Bdd& g,
                           const std::vector<unsigned>& vars) {
  if (!f.valid() || f.manager() != this || !g.valid() ||
      g.manager() != this) {
    throw std::invalid_argument(
        "and_exists: operand is empty or from another manager");
  }
  std::vector<bool> quantified(num_vars_, false);
  unsigned last_q = 0;
  bool any_q = false;
  for (const unsigned v : vars) {
    assert(v < num_vars_);
    quantified[v] = true;
    last_q = std::max(last_q, v);
    any_q = true;
  }

  using Key = std::pair<NodeRef, NodeRef>;
  std::unordered_map<Key, NodeRef, RefPairHash> and_memo;
  std::unordered_map<Key, NodeRef, RefPairHash> or_memo;
  std::unordered_map<NodeRef, NodeRef> ex_memo;

  // Sequential OR used to combine the two quantified cofactors. Separate
  // from the batch machinery on purpose: the recursion interleaves with the
  // AND-EXISTS walk and must not hit a batch barrier (GC would invalidate
  // the unrooted intermediates in the memo tables).
  auto or_rec = [&](auto&& self, NodeRef a, NodeRef b) -> NodeRef {
    if (a == kOne || b == kOne) return kOne;
    if (a == kZero) return b;
    if (b == kZero || a == b) return a;
    if (a > b) std::swap(a, b);
    if (const auto it = or_memo.find(Key{a, b}); it != or_memo.end()) {
      return it->second;
    }
    const unsigned v = std::min(level_of(a), level_of(b));
    touch_level(v);
    const NodeRef r0 = self(self, cofactor(a, v, false),
                            cofactor(b, v, false));
    const NodeRef r1 = self(self, cofactor(a, v, true),
                            cofactor(b, v, true));
    const NodeRef res = mk_node(v, r0, r1);
    or_memo.emplace(Key{a, b}, res);
    return res;
  };

  // Single-operand tail: exists(vars, r) once the other conjunct collapsed
  // to 1. Levels below the deepest quantified variable pass through.
  auto ex_rec = [&](auto&& self, NodeRef r) -> NodeRef {
    if (is_terminal(r) || !any_q || var_of(r) > last_q) return r;
    if (const auto it = ex_memo.find(r); it != ex_memo.end()) {
      return it->second;
    }
    const unsigned v = var_of(r);
    touch_level(v);
    const BddNode& n = node(r);
    const NodeRef low = n.low;
    const NodeRef high = n.high;
    NodeRef res;
    if (quantified[v]) {
      const NodeRef r0 = self(self, low);
      res = r0 == kOne ? kOne : or_rec(or_rec, r0, self(self, high));
    } else {
      res = mk_node(v, self(self, low), self(self, high));
    }
    ex_memo.emplace(r, res);
    return res;
  };

  auto rec = [&](auto&& self, NodeRef a, NodeRef b) -> NodeRef {
    if (a == kZero || b == kZero) return kZero;
    if (a == kOne) return ex_rec(ex_rec, b);
    if (b == kOne || a == b) return ex_rec(ex_rec, a);
    if (a > b) std::swap(a, b);  // AND is commutative
    if (const auto it = and_memo.find(Key{a, b}); it != and_memo.end()) {
      return it->second;
    }
    const unsigned v = std::min(level_of(a), level_of(b));
    touch_level(v);
    const NodeRef f0 = cofactor(a, v, false);
    const NodeRef g0 = cofactor(b, v, false);
    const NodeRef f1 = cofactor(a, v, true);
    const NodeRef g1 = cofactor(b, v, true);
    NodeRef res;
    if (quantified[v]) {
      const NodeRef r0 = self(self, f0, g0);
      // Early exit: 1 OR anything is 1, so the high cofactor pair — often
      // the bulk of the work — is never expanded.
      res = r0 == kOne ? kOne : or_rec(or_rec, r0, self(self, f1, g1));
    } else {
      res = mk_node(v, self(self, f0, g0), self(self, f1, g1));
    }
    and_memo.emplace(Key{a, b}, res);
    return res;
  };

  return make_root(rec(rec, f.ref(), g.ref()));
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

double BddManager::sat_count(const Bdd& f) {
  ensure_all_resident();
  std::unordered_map<NodeRef, double> memo;
  auto level = [&](NodeRef r) -> unsigned {
    return is_terminal(r) ? num_vars_ : var_of(r);
  };
  auto rec = [&](auto&& self, NodeRef r) -> double {
    if (r == kZero) return 0.0;
    if (r == kOne) return 1.0;
    if (auto it = memo.find(r); it != memo.end()) return it->second;
    const BddNode& n = node(r);
    const double lo =
        self(self, n.low) *
        std::exp2(static_cast<double>(level(n.low) - var_of(r) - 1));
    const double hi =
        self(self, n.high) *
        std::exp2(static_cast<double>(level(n.high) - var_of(r) - 1));
    const double result = lo + hi;
    memo.emplace(r, result);
    return result;
  };
  return rec(rec, f.ref()) * std::exp2(static_cast<double>(level(f.ref())));
}

std::optional<std::vector<std::int8_t>> BddManager::sat_one(const Bdd& f) {
  ensure_all_resident();
  if (f.ref() == kZero) return std::nullopt;
  std::vector<std::int8_t> assignment(num_vars_, -1);
  NodeRef r = f.ref();
  while (!is_terminal(r)) {
    const BddNode& n = node(r);
    if (n.low != kZero) {
      assignment[var_of(r)] = 0;
      r = n.low;
    } else {
      assignment[var_of(r)] = 1;
      r = n.high;
    }
  }
  return assignment;
}

bool BddManager::eval(const Bdd& f, const std::vector<bool>& assignment) {
  assert(assignment.size() >= num_vars_);
  ensure_all_resident();
  NodeRef r = f.ref();
  while (!is_terminal(r)) {
    const BddNode& n = node(r);
    r = assignment[var_of(r)] ? n.high : n.low;
  }
  return r == kOne;
}

std::vector<unsigned> BddManager::support(const Bdd& f) {
  ensure_all_resident();
  std::unordered_set<NodeRef> visited;
  std::vector<bool> in_support(num_vars_, false);
  auto rec = [&](auto&& self, NodeRef r) -> void {
    if (is_terminal(r) || !visited.insert(r).second) return;
    in_support[var_of(r)] = true;
    const BddNode& n = node(r);
    self(self, n.low);
    self(self, n.high);
  };
  rec(rec, f.ref());
  std::vector<unsigned> result;
  for (unsigned v = 0; v < num_vars_; ++v) {
    if (in_support[v]) result.push_back(v);
  }
  return result;
}

std::size_t BddManager::node_count(const Bdd& f) {
  ensure_all_resident();
  std::unordered_set<NodeRef> visited;
  auto rec = [&](auto&& self, NodeRef r) -> void {
    if (is_terminal(r) || !visited.insert(r).second) return;
    const BddNode& n = node(r);
    self(self, n.low);
    self(self, n.high);
  };
  rec(rec, f.ref());
  return visited.size();
}

// ---------------------------------------------------------------------------
// Garbage collection driver (Section 3.4)
// ---------------------------------------------------------------------------

void BddManager::gc_driver(unsigned id) {
  Worker& w = *workers_[id];
  util::WallTimer total;
  util::WallTimer phase;
  PBDD_TRACE_SPAN(gc_span, kGc);
  std::uint64_t trace_t0 = PBDD_TRACE_NOW();

  // --- Mark phase: roots, then top-down one variable at a time, with a
  // barrier per variable (a node's parents can belong to any worker).
  if (id == 0) {
    std::lock_guard lock(roots_mutex_);
    for (const RootEntry& entry : roots_) {
      if (entry.ref != kInvalid && is_internal(entry.ref)) {
        node(entry.ref).aux.fetch_or(BddNode::kMarkBit,
                                     std::memory_order_relaxed);
      }
    }
  }
  gc_barrier_.arrive_and_wait();
  for (unsigned v = 0; v < num_vars_; ++v) {
    w.gc_mark_var(v);
    gc_barrier_.arrive_and_wait();
  }
  w.stats().gc_mark_ns += phase.elapsed_ns();
  PBDD_TRACE_EMIT_SPAN(kGcMark, trace_t0, 0, 0);
  trace_t0 = PBDD_TRACE_NOW();
  phase.reset();

  // --- Fix phase: compute forwarding slots, then rewrite child references
  // (and the root registry) while every node still sits at its old slot.
  w.gc_forward();
  gc_barrier_.arrive_and_wait();
  w.gc_fix();
  if (id == 0) {
    std::lock_guard lock(roots_mutex_);
    for (RootEntry& entry : roots_) {
      if (entry.ref != kInvalid && is_internal(entry.ref)) {
        const std::uint64_t aux =
            node(entry.ref).aux.load(std::memory_order_relaxed);
        entry.ref = with_slot(entry.ref, static_cast<std::uint32_t>(aux));
      }
    }
  }
  gc_barrier_.arrive_and_wait();
  w.stats().gc_fix_ns += phase.elapsed_ns();
  PBDD_TRACE_EMIT_SPAN(kGcFix, trace_t0, 0, 0);
  trace_t0 = PBDD_TRACE_NOW();
  phase.reset();

  // --- Rehash phase: slide nodes into place, reset each variable's bucket
  // array once, then every worker re-inserts the nodes it owns, trying
  // other variables first whenever a table lock is held (Section 3.4).
  w.gc_move();
  // Every reference in the shared cache dangles once nodes have moved;
  // each worker clears its partition inside the stop-the-world window,
  // alongside the private-cache flush gc_move just performed.
  shared_cache_.flush_partition(id, pool_.size());
  gc_barrier_.arrive_and_wait();
  const unsigned workers = pool_.size();
  for (unsigned v = id; v < num_vars_; v += workers) {
    std::size_t live = 0;
    for (const auto& other : workers_) live += other->live_after_move(v);
    unique_[v].reset_chains(live);
  }
  gc_barrier_.arrive_and_wait();
  {
    std::vector<std::uint8_t> done(num_vars_, 0);
    unsigned remaining = num_vars_;
    rt::Backoff backoff;
    while (remaining > 0) {
      bool progressed = false;
      for (unsigned i = 0; i < num_vars_; ++i) {
        const unsigned v = (i + id) % num_vars_;
        if (done[v]) continue;
        if (w.node_arena(v).size() == 0) {
          done[v] = 1;
          --remaining;
          progressed = true;
          continue;
        }
        if (w.gc_try_rehash_var(v)) {
          done[v] = 1;
          --remaining;
          progressed = true;
        }
      }
      if (!progressed) backoff.pause();
    }
  }
  gc_barrier_.arrive_and_wait();
  w.stats().gc_rehash_ns += phase.elapsed_ns();
  PBDD_TRACE_EMIT_SPAN(kGcRehash, trace_t0, 0, 0);
  w.stats().gc_ns += total.elapsed_ns();
}

// ---------------------------------------------------------------------------
// Snapshot support: the mark phase of gc_driver run standalone, plus a raw
// pool entry so the snapshot writer/reader can parallelize per variable.
// ---------------------------------------------------------------------------

void BddManager::run_on_workers(const std::function<void(unsigned)>& fn) {
  pool_.run([&fn](unsigned id) { fn(id); });
}

void BddManager::snapshot_mark(std::span<const NodeRef> roots) {
  ensure_all_resident();
  pool_.run([this, roots](unsigned id) {
    Worker& w = *workers_[id];
    if (id == 0) {
      for (const NodeRef r : roots) {
        if (is_internal(r)) {
          node(r).aux.fetch_or(BddNode::kMarkBit, std::memory_order_relaxed);
        }
      }
    }
    gc_barrier_.arrive_and_wait();
    for (unsigned v = 0; v < num_vars_; ++v) {
      w.gc_mark_var(v);
      gc_barrier_.arrive_and_wait();
    }
  });
}

void BddManager::snapshot_clear_marks() {
  pool_.run([this](unsigned id) {
    Worker& w = *workers_[id];
    for (unsigned v = 0; v < num_vars_; ++v) {
      NodeArena& arena = w.node_arena(v);
      const std::size_t n = arena.size();
      for (std::size_t s = 0; s < n; ++s) {
        arena.at_own(static_cast<std::uint32_t>(s))
            .aux.store(0, std::memory_order_relaxed);
      }
    }
  });
}

void BddManager::gc() {
  // Compaction rewrites every NodeRef: nothing may stay on disk across it,
  // and every by-ref spill segment is garbage afterwards.
  ensure_all_resident();
  ++gc_runs_;
  pool_.run([this](unsigned id) { gc_driver(id); });
  live_after_gc_ = live_nodes();
  // Operator nodes from the current generation hold stale references.
  ++op_generation_;
  if (pager_ != nullptr) pager_->refs_invalidated();
}

bool BddManager::maybe_gc() {
  // Forced collections fire even with auto_gc off: every maybe_gc call site
  // is a GC-safe point, and that is exactly what the torture runs probe.
  if (PBDD_INJECT_QUERY(kForceGc)) {
    gc();
    return true;
  }
  if (!config_.auto_gc) return false;
  std::size_t allocated = 0;
  for (const auto& w : workers_) {
    for (unsigned v = 0; v < num_vars_; ++v) {
      allocated += w->node_arena(v).size();
    }
  }
  if (allocated < config_.gc_min_nodes) return false;
  if (static_cast<double>(allocated) <=
      config_.gc_growth_factor *
          static_cast<double>(std::max<std::size_t>(live_after_gc_, 1))) {
    return false;
  }
  gc();
  return true;
}

std::size_t BddManager::live_nodes() const noexcept {
  std::size_t total = 0;
  for (const auto& w : workers_) {
    for (unsigned v = 0; v < num_vars_; ++v) {
      total += w->node_arena(v).size();
    }
  }
  return total;
}

std::size_t BddManager::bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& w : workers_) total += w->bytes();
  for (const VarUniqueTable& t : unique_) total += t.bytes();
  total += shared_cache_.bytes();
  total += roots_.size() * sizeof(RootEntry);
  return total;
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

ManagerStats BddManager::stats() const {
  ManagerStats s;
  s.per_worker.reserve(workers_.size());
  for (unsigned id = 0; id < workers_.size(); ++id) {
    WorkerStats w = workers_[id]->stats();
    // Lock waits and CAS retries are recorded in the unique tables (per
    // variable, per worker); fold this worker's share into its stats.
    w.lock_wait_ns = 0;
    w.cas_retries = 0;
    for (const VarUniqueTable& table : unique_) {
      w.lock_wait_ns += table.lock_wait_ns(id);
      w.cas_retries += table.cas_retries(id);
    }
    s.per_worker.push_back(w);
    s.total += w;
  }
  s.gc_runs = gc_runs_;
  s.live_nodes = live_after_gc_;
  s.allocated_nodes = live_nodes();
  s.bytes = bytes();
  s.max_nodes_per_var = max_nodes_per_var();
  s.lock_wait_per_var_ns = lock_wait_per_var_ns();
  return s;
}

void BddManager::reset_stats() {
  for (auto& w : workers_) w->stats() = WorkerStats{};
  for (VarUniqueTable& t : unique_) t.reset_lock_waits();
}

std::vector<std::size_t> BddManager::max_nodes_per_var() const {
  std::vector<std::size_t> result(num_vars_);
  for (unsigned v = 0; v < num_vars_; ++v) {
    result[v] = unique_[v].max_count();
  }
  return result;
}

std::vector<std::uint64_t> BddManager::lock_wait_per_var_ns() const {
  std::vector<std::uint64_t> result(num_vars_);
  for (unsigned v = 0; v < num_vars_; ++v) {
    result[v] = unique_[v].lock_wait_ns_total();
  }
  return result;
}

}  // namespace pbdd::core
