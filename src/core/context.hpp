// Evaluation contexts, operator queues, and stealable operation groups
// (paper Sections 3.1 and 3.3).
//
// An evaluation context is one "window" of breadth-first expansion: its
// per-variable operator queues hold operations awaiting Shannon expansion
// and its per-variable reduction queues hold expanded operations awaiting
// the bottom-up reduction sweep. When a context exceeds the evaluation
// threshold it is pushed onto the worker's context stack with its remaining
// unexpanded operations partitioned into small groups; the stack doubles as
// the distributed work queue from which idle workers steal whole groups.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/node.hpp"

namespace pbdd::core {

/// Intrusive singly-linked queue of operator nodes within one
/// (worker, variable) operator arena. The paper walks operator nodes
/// block-contiguously inside the per-variable managers; an intrusive list
/// over bump-allocated slots preserves that access pattern while letting
/// several contexts share one arena.
struct OpQueue {
  std::uint32_t head = kNilSlot;
  std::uint32_t tail = kNilSlot;

  [[nodiscard]] bool empty() const noexcept { return head == kNilSlot; }

  void clear() noexcept { head = tail = kNilSlot; }
};

/// One unexpanded operation as seen by a thief: a stable pointer (operator
/// arena blocks never move) plus its queue coordinates for the owner.
struct GroupTask {
  OpNode* node = nullptr;
  std::uint32_t slot = kNilSlot;
  std::uint16_t var = 0;
};

/// A stealable batch of unexpanded operations. Owned by the context that
/// spilled them; protected by the owning worker's steal mutex while the
/// context sits on the stack.
struct Group {
  std::vector<GroupTask> tasks;
};

class EvalContext {
 public:
  EvalContext(unsigned num_vars, std::uint32_t serial)
      : serial_(serial), op_q_(num_vars), red_q_(num_vars) {}

  [[nodiscard]] std::uint32_t serial() const noexcept { return serial_; }

  [[nodiscard]] OpQueue& op_q(unsigned var) noexcept { return op_q_[var]; }
  [[nodiscard]] OpQueue& red_q(unsigned var) noexcept { return red_q_[var]; }
  [[nodiscard]] unsigned num_vars() const noexcept {
    return static_cast<unsigned>(op_q_.size());
  }

  /// Unexpanded-operation groups awaiting this (pushed) context's turn.
  /// Accessed under the owning worker's steal mutex.
  std::deque<Group> groups;

  /// Cumulative Shannon expansions charged to this context (diagnostics).
  /// The evaluation threshold itself is checked against a per-round counter
  /// (Fig. 5 resets nOpsProcessed at each expansion call), so each
  /// expansion-reduction round's working set is bounded.
  std::uint64_t ops_processed = 0;

  /// Lowest variable that may still have queued operations; expansion
  /// resumes its top-down sweep here instead of rescanning from variable 0.
  unsigned sweep_var = 0;

  /// Operations currently sitting in this context's operator queues
  /// (cheap "is there anything left to spill into groups?" check).
  std::uint32_t queued = 0;

  /// Recycle this context object for a fresh use.
  void reset(std::uint32_t serial) noexcept {
    serial_ = serial;
    for (auto& q : op_q_) q.clear();
    for (auto& q : red_q_) q.clear();
    groups.clear();
    ops_processed = 0;
    sweep_var = 0;
    queued = 0;
  }

 private:
  std::uint32_t serial_;
  std::vector<OpQueue> op_q_;
  std::vector<OpQueue> red_q_;
};

}  // namespace pbdd::core
