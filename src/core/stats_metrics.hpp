// Publish ManagerStats into an obs::Registry: the bridge between the
// engine's hot-path counters (WorkerStats, written lock-free by each worker)
// and the unified metrics namespace the benches and the service expose.
//
// The engine keeps writing its existing per-worker structs — they are
// already padded and single-writer — and a publish is a read-side fold into
// labeled metric families. Publish into a *fresh* registry (counters are
// cumulative; publishing the same stats twice would double them).
#pragma once

#include "core/config.hpp"
#include "obs/metrics.hpp"

namespace pbdd::core {

struct PublishOptions {
  bool per_worker = true;  ///< pbdd_engine_phase_ns_total{phase,worker} series
  bool per_var = true;     ///< pbdd_engine_var_* per-variable families
};

/// Metric families written (all prefixed pbdd_engine_):
///   ops_total, cache_lookups_total, cache_hits_total, cache_op_hits_total,
///   cache_cross_ctx_misses_total, nodes_created_total,
///   contexts_pushed_total, groups_created_total, groups_taken_total,
///   groups_stolen_total, tasks_stolen_total, reduction_stalls_total,
///   top_ops_total, lock_wait_ns_total, cas_retries_total, gc_runs_total
///   phase_ns_total{phase=expansion|reduction|gc|gc_mark|gc_fix|gc_rehash
///                  [,worker=N]}
///   live_nodes, allocated_nodes, bytes                      (gauges)
///   var_lock_wait_ns_total{var=N}, var_max_nodes{var=N}     (per_var)
void publish_stats(const ManagerStats& stats, obs::Registry& registry,
                   const PublishOptions& options = {});

}  // namespace pbdd::core
