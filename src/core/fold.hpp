// Balanced parallel folds over many operands.
//
// Combining n functions under an associative operator is the most common
// macro-operation in circuit verification (conjoining constraints, building
// miters). A left fold issues n-1 dependent operations — zero batch
// parallelism and worst-case intermediate growth. These helpers fold as a
// balanced tree instead: each level is one batch of independent top-level
// operations, which is exactly the workload shape the paper's parallel
// engine is built for (and intermediate BDDs stay small for typical
// constraint sets).
#pragma once

#include <span>
#include <vector>

#include "core/bdd_manager.hpp"

namespace pbdd::core {

/// Fold `operands` under a commutative, associative operator as a balanced
/// tree of batches. Empty input returns the operator's identity (And -> 1,
/// Or/Xor -> 0); a single operand is returned unchanged.
[[nodiscard]] inline Bdd fold_balanced(BddManager& mgr, Op op,
                                       std::span<const Bdd> operands) {
  switch (op) {
    case Op::And:
    case Op::Or:
    case Op::Xor:
      break;
    default:
      throw std::invalid_argument("fold_balanced: operator not associative");
  }
  if (operands.empty()) return op == Op::And ? mgr.one() : mgr.zero();
  std::vector<Bdd> layer(operands.begin(), operands.end());
  while (layer.size() > 1) {
    std::vector<BatchOp> batch;
    batch.reserve(layer.size() / 2);
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      batch.push_back(BatchOp{op, layer[i], layer[i + 1]});
    }
    std::vector<Bdd> next = mgr.apply_batch(batch);
    if (layer.size() & 1) next.push_back(std::move(layer.back()));
    layer = std::move(next);
  }
  return std::move(layer.front());
}

[[nodiscard]] inline Bdd and_all(BddManager& mgr,
                                 std::span<const Bdd> operands) {
  return fold_balanced(mgr, Op::And, operands);
}

[[nodiscard]] inline Bdd or_all(BddManager& mgr,
                                std::span<const Bdd> operands) {
  return fold_balanced(mgr, Op::Or, operands);
}

[[nodiscard]] inline Bdd xor_all(BddManager& mgr,
                                 std::span<const Bdd> operands) {
  return fold_balanced(mgr, Op::Xor, operands);
}

}  // namespace pbdd::core
