// Node layouts for the partial breadth-first engine.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/op.hpp"
#include "core/ref.hpp"

namespace pbdd::core {

/// Internal BDD node. The variable index is implicit: the node lives in its
/// variable's arena (paper Section 3.1, per-variable node managers).
///
/// Layout is cache-conscious: 32 bytes, so exactly two nodes share one
/// 64-byte line, and arena blocks are line-aligned (NodeArena) so a node
/// never straddles two lines. A unique-table chain compare (`low`, `high`,
/// `next`) therefore touches exactly one line per probed node.
///
/// `aux` is only written during stop-the-world garbage collection, where the
/// mark bit must tolerate concurrent marking from several workers whose
/// nodes share a child; everywhere else it is zero.
struct BddNode {
  NodeRef low = kInvalid;
  NodeRef high = kInvalid;
  /// Unique-table chain: full reference of the next node in this bucket
  /// (chains cross worker arenas within one variable). kZero (0) terminates
  /// the chain — terminals are never chained.
  ///
  /// Atomic because the lock-free table discipline publishes and rewrites
  /// chain links while other workers walk them (acquire/release there). The
  /// mutex disciplines use relaxed accesses — ordering comes from the lock.
  std::atomic<NodeRef> next{kZero};
  /// GC scratch: bit 63 = mark, bits 0..31 = forwarding slot.
  std::atomic<std::uint64_t> aux{0};

  static constexpr std::uint64_t kMarkBit = std::uint64_t{1} << 63;
};

static_assert(sizeof(BddNode) == 32,
              "two nodes per cache line; chain probes stay single-line");

/// Operator node (Figs. 4-6): one pending Shannon expansion f op g.
///
/// Created by its owning worker; after creation `f`, `g`, `op` are immutable,
/// which is what makes whole groups of unexpanded operator nodes stealable
/// as self-contained (op, f, g) tasks (Section 3.3). `result` is the only
/// cross-thread field: a thief publishes the finished BDD with a release
/// store and the owner's reduction acquires it.
struct OpNode {
  NodeRef f = kInvalid;
  NodeRef g = kInvalid;
  /// Cofactor results from the expansion phase; BDD node or operator node.
  Ref branch0 = kInvalid;
  Ref branch1 = kInvalid;
  /// kInvalid until the reduction phase (or a thief) computes the result.
  std::atomic<Ref> result{kInvalid};
  /// Intrusive link for the operator / reduction queues, which the paper
  /// folds into the per-variable operator-node managers. Slot within the
  /// same (worker, variable) operator arena; kNilSlot terminates.
  std::uint32_t next = 0xFFFFFFFFu;
  /// Slot this operation occupies in the owner's compute cache, so the
  /// reduction phase can overwrite the uncomputed entry with the computed
  /// result (the hybrid compute cache of Section 2.3). kNoCacheSlot = none.
  std::uint32_t cache_slot = 0xFFFFFFFFu;
  /// Serial of the evaluation context that owns this operation. An
  /// uncomputed cache hit is only honoured within the same context (see
  /// ComputeCache).
  std::uint32_t ctx_serial = 0;
  std::uint16_t op = 0;
  std::uint16_t flags = 0;

  static constexpr std::uint16_t kStolen = 1;  // diagnostics only

  [[nodiscard]] Op operation() const noexcept { return static_cast<Op>(op); }
};

inline constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;
inline constexpr std::uint32_t kNoCacheSlot = 0xFFFFFFFFu;

}  // namespace pbdd::core
