// Configuration and statistics for the partial breadth-first engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pbdd::core {

/// Locking discipline of the per-variable unique tables (see
/// core/unique_table.hpp for the protocols).
enum class TableDiscipline : std::uint8_t {
  /// The paper's layout: one mutex per variable, acquired once per
  /// (worker, variable) reduction pass.
  kPassLock,
  /// Mutex-striped hash segments (Section 6's "distributed hashing");
  /// the segment count is Config::table_shards.
  kSharded,
  /// Lock-free: atomic bucket heads, CAS publication with speculative
  /// allocation, epoch-claimed growth. No mutex anywhere on the insert
  /// path.
  kLockFree,
};

/// What to do when an evaluation context exceeds the threshold.
enum class OverflowPolicy : std::uint8_t {
  /// The paper's partial breadth-first algorithm: push the context, spill
  /// the remaining operations into stealable groups, continue in a child
  /// context (Section 3.1).
  kContextStack,
  /// The hybrid predecessor [Chen-Yang-Bryant 97]: switch to depth-first
  /// recursion for the remaining operations. Bounds memory like the
  /// context stack but loses the structured per-variable access pattern —
  /// the drawback Section 3.1 calls out ("when a BDD operation is much
  /// larger than the threshold, this hybrid approach will be dominated by
  /// the depth-first portion"). Kept as an ablation.
  kDepthFirst,
};

struct Config {
  /// Number of workers (threads). The calling thread is worker 0.
  unsigned workers = 1;

  /// Cap on how many of those workers actively claim top-level operations
  /// and steal groups (0 = all of them). Workers past the cap keep their
  /// arenas and participate in GC, but return from each batch immediately,
  /// parking on the pool's condition variable. The benchmark harness sets
  /// this to the hardware thread count: running more ready threads than the
  /// machine has cores turns every unique-table pass lock into a scheduler
  /// convoy (the holder is descheduled while waiters burn their slices) and
  /// measures the OS, not the algorithm. Tests deliberately leave it at 0 —
  /// oversubscribed runs are exactly where cross-worker interleavings live.
  unsigned max_active_workers = 0;

  /// Paper's "Seq" configuration: single worker, unique-table locking
  /// elided, GC condition checked aggressively after every top-level
  /// operation rather than only at batch barriers (Section 4.1 explains the
  /// sequential build checks the collection condition more eagerly).
  /// Requires workers == 1.
  bool sequential_mode = false;

  /// Evaluation threshold: operator expansions per evaluation context
  /// before the context is pushed and a child context starts (Fig. 5,
  /// line 10). Set to a small fraction of memory in the paper; here an
  /// explicit knob. kUnbounded degenerates to pure breadth-first.
  std::uint64_t eval_threshold = std::uint64_t{1} << 15;
  static constexpr std::uint64_t kUnbounded = ~std::uint64_t{0};

  /// Threshold-overflow strategy (see OverflowPolicy). Hungry-worker
  /// context switches always use the context stack regardless.
  OverflowPolicy overflow = OverflowPolicy::kContextStack;

  /// Operations per stealable group when a context is pushed ("partition
  /// the remaining operators into small groups").
  std::uint32_t group_size = 512;

  /// Scale the steal granularity with the spill size: when a context is
  /// pushed with far more queued operations than the workers could drain at
  /// `group_size` apiece, partition into proportionally larger groups
  /// (capped at kMaxAdaptiveGroup) so one steal amortizes its lock and
  /// cache-migration cost over more work. `group_size` stays the floor; off
  /// reproduces the paper's fixed partitioning exactly.
  bool adaptive_group_size = true;
  static constexpr std::uint32_t kMaxAdaptiveGroup = 1u << 15;

  /// log2 of per-worker compute-cache entries.
  unsigned cache_log2 = 17;

  /// log2 of entries in the shared completed-results cache
  /// (core/shared_cache.hpp), which recovers the work one worker re-derives
  /// because another already finished it. 0 disables it; it is also
  /// disabled automatically for single-worker managers, where the private
  /// cache alone is strictly cheaper.
  unsigned shared_cache_log2 = 18;

  /// Only operations rooted in the top this-many variable levels go through
  /// the shared cache (0 = every level). A duplicate caught high in the
  /// order saves its whole subtree of expansions, while the vastly more
  /// numerous near-terminal operations are cheaper to recompute than to
  /// probe for — sharing them is all coherence traffic and no saved work.
  /// On the c2670s fault campaign the cross-worker duplicate mass sits
  /// above level ~96: gating there keeps ~98% of the shared hits of an
  /// ungated cache at a fraction of its probe/publish traffic.
  unsigned shared_cache_levels = 96;

  /// Initial buckets per variable's unique table (power of two).
  unsigned initial_buckets_log2 = 8;

  /// Unique-table locking discipline. kPassLock with table_shards > 1 is
  /// normalized to kSharded; kSharded with table_shards == 1 gets a default
  /// shard count; kLockFree ignores table_shards (one atomic bucket array).
  /// Sequential mode forces kPassLock, whose lock is then elided entirely.
  TableDiscipline table_discipline = TableDiscipline::kPassLock;

  /// Lock-striped segments per variable's unique table (power of two).
  /// 1 = the paper's one-lock-per-variable discipline (reduction acquires
  /// once per pass). >1 implements the finer-grained distributed hashing
  /// the paper's Section 6 calls for: inserts lock only their hash-selected
  /// segment. Forced to 1 in sequential mode and in kLockFree.
  unsigned table_shards = 1;

  /// Automatic GC at a batch barrier when allocated node slots exceed this
  /// multiple of the live count after the previous collection.
  double gc_growth_factor = 2.0;
  /// Never auto-collect below this many allocated nodes.
  std::size_t gc_min_nodes = 1u << 20;
  bool auto_gc = true;

  /// Expansion polls the "hungry thief" flag every this many operations to
  /// decide whether to context-switch and expose sharable groups.
  std::uint32_t share_poll_interval = 256;
};

/// Per-worker counters. Plain (non-atomic): each worker writes only its own
/// copy; aggregation happens after barriers.
///
/// False-sharing audit: each WorkerStats lives inside its own heap-allocated
/// Worker (never in a shared array), so adjacent counters are only ever
/// touched by one thread and need no per-field padding. The structure is
/// still line-aligned so the hot counters of a worker cannot straddle into
/// a neighbouring allocation's line. Shared per-worker arrays (the unique
/// tables' wait/retry meters) use util::PaddedCounter instead.
struct alignas(64) WorkerStats {
  std::uint64_t ops_performed = 0;      ///< Shannon expansions (Fig. 11)
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_op_hits = 0;      ///< hits returning in-flight op nodes
  std::uint64_t cache_cross_ctx_misses = 0;  ///< uncomputed hit, wrong context
  std::uint64_t cache_shared_hits = 0;  ///< shared-cache hits after private miss
  std::uint64_t nodes_created = 0;
  std::uint64_t contexts_pushed = 0;
  std::uint64_t groups_created = 0;
  std::uint64_t groups_taken = 0;       ///< taken back by the owner
  std::uint64_t groups_stolen = 0;      ///< stolen by this worker
  std::uint64_t tasks_stolen = 0;
  std::uint64_t reduction_stalls = 0;   ///< waits on thief results
  std::uint64_t batch_dep_stalls = 0;   ///< waits on in-batch dependencies
  std::uint64_t top_ops = 0;

  // Phase wall-clock accounting (Figs. 13/14, 18/19).
  std::uint64_t expansion_ns = 0;
  std::uint64_t reduction_ns = 0;
  std::uint64_t lock_wait_ns = 0;       ///< total unique-table lock waits
  std::uint64_t cas_retries = 0;        ///< lock-free table CAS retries/waits
  std::uint64_t gc_ns = 0;
  std::uint64_t gc_mark_ns = 0;
  std::uint64_t gc_fix_ns = 0;
  std::uint64_t gc_rehash_ns = 0;

  WorkerStats& operator+=(const WorkerStats& o) noexcept {
    ops_performed += o.ops_performed;
    cache_lookups += o.cache_lookups;
    cache_hits += o.cache_hits;
    cache_op_hits += o.cache_op_hits;
    cache_cross_ctx_misses += o.cache_cross_ctx_misses;
    cache_shared_hits += o.cache_shared_hits;
    nodes_created += o.nodes_created;
    contexts_pushed += o.contexts_pushed;
    groups_created += o.groups_created;
    groups_taken += o.groups_taken;
    groups_stolen += o.groups_stolen;
    tasks_stolen += o.tasks_stolen;
    reduction_stalls += o.reduction_stalls;
    batch_dep_stalls += o.batch_dep_stalls;
    top_ops += o.top_ops;
    expansion_ns += o.expansion_ns;
    reduction_ns += o.reduction_ns;
    lock_wait_ns += o.lock_wait_ns;
    cas_retries += o.cas_retries;
    gc_ns += o.gc_ns;
    gc_mark_ns += o.gc_mark_ns;
    gc_fix_ns += o.gc_fix_ns;
    gc_rehash_ns += o.gc_rehash_ns;
    return *this;
  }

  /// JSON object with every counter (stats_json.cpp). One serialization
  /// shared by the benchmark harness dumps, the BENCH_* CI artifacts, and
  /// the service metrics endpoint — keep it in sync with the fields above.
  [[nodiscard]] std::string to_json() const;
};

struct ManagerStats {
  WorkerStats total;                       ///< sum over workers
  std::vector<WorkerStats> per_worker;
  std::uint64_t gc_runs = 0;
  std::size_t live_nodes = 0;              ///< after the last collection
  std::size_t allocated_nodes = 0;
  std::size_t bytes = 0;
  /// Per-variable unique-table high-water marks (Fig. 15).
  std::vector<std::size_t> max_nodes_per_var;
  /// Per-variable lock wait, summed over workers, in ns (Fig. 16).
  std::vector<std::uint64_t> lock_wait_per_var_ns;

  /// JSON object: totals, per-worker counters, store/GC gauges, and the
  /// per-variable arrays. The shared machine-readable form of this struct.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace pbdd::core
