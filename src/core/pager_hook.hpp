// Residency hook between the node store and an out-of-core paging tier.
//
// The engine only ever needs four notifications to page safely, all rooted
// in the breadth-first invariant that a pass touches one variable level at a
// time (Section 2.2): a *fault barrier* before any node of a level is read
// or created, a *quiet point* after each batch where levels may be demoted,
// and bracketing around the collector, whose sliding compaction rewrites
// every NodeRef and therefore invalidates any by-ref spill segment.
//
// src/core depends only on this interface; the implementation (LevelPager)
// lives in src/ooc and is attached with BddManager::attach_pager. With no
// pager attached every call site is a single branch on a null pointer.
#pragma once

namespace pbdd::core {

class PagerHook {
 public:
  virtual ~PagerHook() = default;

  /// Fault barrier: called before any node at `var` may be dereferenced or
  /// inserted. Must be cheap when the level is resident (one acquire load);
  /// may block the calling thread while a spilled level is read back.
  /// Called concurrently from every worker.
  virtual void touch_level(unsigned var) = 0;

  /// Fault every spilled level back in. Used by whole-store walks that do
  /// not proceed level by level: queries, GC, snapshot save, DOT export.
  virtual void ensure_all_resident() = 0;

  /// Batch-barrier quiet point: no operation is in flight, so the pager may
  /// demote cold levels here. Called from execute_batch's epilogue on the
  /// external caller thread.
  virtual void batch_barrier() = 0;

  /// The collector just rewrote every NodeRef (ensure_all_resident was
  /// called before it ran, so nothing is spilled). Any staged or on-disk
  /// segment now holds dangling references and must be discarded.
  virtual void refs_invalidated() = 0;
};

}  // namespace pbdd::core
