// Per-variable unique table (paper Section 3.2), with three locking
// disciplines (the third is the "better distributed hashing" the paper's
// Section 6 calls for, pushed to its logical end point).
//
// One instance per variable, shared by all workers. Chains run through the
// nodes' `next` fields and may cross worker arenas.
//
//  * kPassLock (shards == 1) — the paper's layout: one lock per variable,
//    acquired once per (worker, variable) reduction pass; all of that
//    worker's nodes for the variable are produced under a single
//    acquisition. Simple and cheap per node, but Figs. 16/17 show it
//    serializing the reduction on the node-heavy variables.
//
//  * kSharded (shards > 1) — the bucket array is split into hash-selected
//    segments, each with its own lock, and find_or_insert locks only its
//    segment. Workers producing nodes for the same variable now contend
//    only on hash collisions between segments.
//
//  * kLockFree — no mutex anywhere on the insert path. Bucket heads are
//    std::atomic<NodeRef>; find_or_insert walks the chain, speculatively
//    allocates a node in the worker's own arena on a miss, and publishes it
//    with a release-CAS on the bucket head. A losing racer re-walks the
//    chain from the new head (its key may have just been inserted by the
//    winner); if it finds the key it returns the canonical node and hands
//    its speculative slot back to the arena's free-slot stack (tombstoned,
//    compacted away by the next collection), otherwise it retries the CAS.
//
//    Growth installs a fresh bucket array behind a seqlock-style epoch:
//    the grower claims the table by CASing the epoch from even to odd (an
//    odd epoch means "growth in flight" and makes competing growers back
//    off), then empties each old bucket with exchange(kMovedHead). The
//    sentinel makes every in-flight insert CAS on that bucket fail — and
//    it is permanent, so a CAS against a retired array can never succeed.
//    Old chains are relinked into the fresh array with release stores (a
//    walker still on an old chain follows the redirected link mid-walk;
//    that is safe — every reachable node is a published, immutable node of
//    this table, and a walk that wrongly concludes "miss" is corrected by
//    its failing CAS). Finally the fresh array is release-published and
//    the epoch returns to even. Retired arrays are kept until the next
//    stop-the-world point, so delayed readers never touch freed memory.
//
// Lock-acquire wait time is metered per worker in the mutex disciplines
// (Figs. 16/17); the lock-free discipline meters CAS retries instead. Both
// meters live in cache-line-padded per-worker slots — the counters are the
// hottest per-worker writes into shared arrays, and unpadded they false-
// share one line between neighbouring workers.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/config.hpp"
#include "core/node_arena.hpp"
#include "core/ref.hpp"
#include "obs/trace_points.hpp"
#include "runtime/backoff.hpp"
#include "runtime/inject.hpp"
#include "util/aligned.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace pbdd::core {

class VarUniqueTable {
 public:
  void init(unsigned var, std::vector<NodeArena*> arenas,
            std::size_t initial_buckets, unsigned shards = 1,
            TableDiscipline discipline = TableDiscipline::kPassLock) {
    var_ = var;
    arenas_ = std::move(arenas);
    lockfree_ = discipline == TableDiscipline::kLockFree;
    wait_ns_.assign(arenas_.size(), util::PaddedCounter{});
    cas_retries_.assign(arenas_.size(), util::PaddedCounter{});
    if (lockfree_) {
      const std::size_t size = std::max<std::size_t>(initial_buckets, 16);
      assert((size & (size - 1)) == 0);
      lf_owner_ = std::make_unique<LfBuckets>(size);
      lf_buckets_.store(lf_owner_.get(), std::memory_order_release);
      segments_.clear();
      shard_shift_ = 0;
      return;
    }
    assert(shards >= 1 && (shards & (shards - 1)) == 0);
    segments_ = std::vector<Segment>(shards);
    const std::size_t per_segment =
        std::max<std::size_t>(initial_buckets / shards, 16);
    for (Segment& segment : segments_) {
      segment.buckets.assign(per_segment, kZero);
      segment.mask = per_segment - 1;
    }
    shard_shift_ = 0;
    while ((1u << shard_shift_) < shards) ++shard_shift_;
  }

  [[nodiscard]] bool lockfree() const noexcept { return lockfree_; }
  [[nodiscard]] bool sharded() const noexcept {
    return segments_.size() > 1;
  }
  /// True for the paper's discipline: callers bracket a reduction pass with
  /// acquire()/release(). False for kSharded and kLockFree, whose
  /// find_or_insert synchronizes internally.
  [[nodiscard]] bool pass_locked() const noexcept {
    return !lockfree_ && segments_.size() == 1;
  }
  [[nodiscard]] TableDiscipline discipline() const noexcept {
    if (lockfree_) return TableDiscipline::kLockFree;
    return sharded() ? TableDiscipline::kSharded
                     : TableDiscipline::kPassLock;
  }
  [[nodiscard]] unsigned shards() const noexcept {
    return static_cast<unsigned>(segments_.size());
  }

  // ---- Pass-level locking (kPassLock, the paper's discipline) --------------

  /// Acquire the per-variable lock, charging the wait to `worker`.
  void acquire(unsigned worker) {
    assert(pass_locked());
    lock_timed(segments_[0], worker);
  }

  /// Non-blocking acquire, used by the GC rehash phase: a worker finding a
  /// variable's table locked rehashes other variables first (Section 3.4).
  [[nodiscard]] bool try_acquire() {
    assert(pass_locked());
    return segments_[0].mutex.try_lock();
  }

  void release() {
    assert(pass_locked());
    segments_[0].mutex.unlock();
  }

  /// Find-or-create the node (var_, low, high), allocating in `worker`'s
  /// arena on a miss. Pass-level mode: caller holds the variable lock.
  /// Sharded mode: locks the owning segment internally. Lock-free mode:
  /// CAS publication, never blocks.
  NodeRef find_or_insert(unsigned worker, NodeRef low, NodeRef high,
                         bool& created) {
    const std::uint64_t h = util::hash_pair(low, high);
    if (lockfree_) return lf_find_or_insert(worker, h, low, high, created);
    Segment& segment = segment_for(h);
    if (sharded()) {
      lock_timed(segment, worker);
      const NodeRef r = find_or_insert_in(segment, h, worker, low, high,
                                          created);
      segment.mutex.unlock();
      return r;
    }
    return find_or_insert_in(segment, h, worker, low, high, created);
  }

  // ---- GC rehash support ----------------------------------------------------

  /// Drop all chains (nodes are re-inserted afterwards). Stop-the-world:
  /// exactly one thread touches one table, no operation is in flight. This
  /// is also where the lock-free discipline folds the monotone node count
  /// into its high-water mark and reclaims retired bucket arrays — the GC
  /// barriers guarantee no delayed walker still holds one.
  void reset_chains(std::size_t live_hint) {
    if (lockfree_) {
      lf_max_count_ = std::max(
          lf_max_count_, lf_count_.load(std::memory_order_relaxed));
      lf_count_.store(0, std::memory_order_relaxed);
      std::size_t size = lf_owner_->mask + 1;
      const std::size_t hint = std::max<std::size_t>(live_hint, 1);
      while (size > 256 && size > hint * 4) size /= 2;
      while (size < hint) size *= 2;
      lf_retired_.clear();
      lf_owner_ = std::make_unique<LfBuckets>(size);
      lf_buckets_.store(lf_owner_.get(), std::memory_order_release);
      return;
    }
    const std::size_t hint_per_segment =
        std::max<std::size_t>(live_hint / segments_.size(), 1);
    for (Segment& segment : segments_) {
      std::size_t size = segment.buckets.size();
      while (size > 256 && size > hint_per_segment * 4) size /= 2;
      while (size < hint_per_segment) size *= 2;
      segment.buckets.assign(size, kZero);
      segment.mask = size - 1;
      segment.count = 0;
    }
  }

  /// Insert a node whose fields are already final. Pass-level mode: caller
  /// holds the lock. Sharded mode: locks the segment internally. Lock-free
  /// mode: CAS-push (several workers reinsert into one table concurrently
  /// during the GC rehash phase).
  void reinsert(unsigned worker, NodeRef r, NodeRef low, NodeRef high) {
    const std::uint64_t h = util::hash_pair(low, high);
    if (lockfree_) {
      lf_reinsert(worker, h, r);
      return;
    }
    Segment& segment = segment_for(h);
    if (sharded()) lock_timed(segment, worker);
    const std::size_t bucket = (h >> shard_shift_) & segment.mask;
    node(r).next.store(segment.buckets[bucket], std::memory_order_relaxed);
    segment.buckets[bucket] = r;
    ++segment.count;
    if (sharded()) segment.mutex.unlock();
  }

  // ---- Snapshot support -----------------------------------------------------
  // Stop-the-world only (same contract as reset_chains): the snapshot
  // writer serializes the bucket structure so a shape-compatible restore
  // can adopt the stored chains without hashing a single node.

  /// Bucket-array sizes per segment (a single entry for kPassLock and
  /// kLockFree, whose one array plays the role of segment 0).
  [[nodiscard]] std::vector<std::size_t> segment_bucket_counts() const {
    if (lockfree_) {
      return {lf_owner_ ? lf_owner_->mask + 1 : std::size_t{0}};
    }
    std::vector<std::size_t> out;
    out.reserve(segments_.size());
    for (const Segment& s : segments_) out.push_back(s.buckets.size());
    return out;
  }

  /// Chained-node counts per segment (kLockFree reports its global count).
  [[nodiscard]] std::vector<std::size_t> segment_node_counts() const {
    if (lockfree_) return {lf_count_.load(std::memory_order_relaxed)};
    std::vector<std::size_t> out;
    out.reserve(segments_.size());
    for (const Segment& s : segments_) out.push_back(s.count);
    return out;
  }

  /// All bucket heads in segment-major order (kZero = empty). The lock-free
  /// kMovedHead sentinel only ever lives in retired arrays, so it cannot
  /// appear here.
  [[nodiscard]] std::vector<NodeRef> bucket_heads() const {
    std::vector<NodeRef> out;
    if (lockfree_) {
      const std::size_t n = lf_owner_ ? lf_owner_->mask + 1 : 0;
      out.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        out.push_back(lf_owner_->slots[i].load(std::memory_order_relaxed));
      }
      return out;
    }
    for (const Segment& s : segments_) {
      out.insert(out.end(), s.buckets.begin(), s.buckets.end());
    }
    return out;
  }

  /// Adopt pre-linked chains from a snapshot: the caller has already stored
  /// every node's `next` field and translated `heads` (segment-major, same
  /// layout as bucket_heads()) into live references. Valid only when the
  /// stored shape hashes identically to this table — same discipline and
  /// same segment count — since bucket selection depends on both. Returns
  /// false with the table untouched when the shapes are incompatible; the
  /// caller then falls back to reinsert().
  bool adopt_chains(TableDiscipline saved,
                    const std::vector<std::size_t>& seg_buckets,
                    const std::vector<std::size_t>& seg_counts,
                    const std::vector<NodeRef>& heads) {
    if (saved != discipline()) return false;
    std::size_t total_buckets = 0;
    for (std::size_t sz : seg_buckets) {
      if (sz < 16 || (sz & (sz - 1)) != 0) return false;
      total_buckets += sz;
    }
    if (heads.size() != total_buckets ||
        seg_counts.size() != seg_buckets.size()) {
      return false;
    }
    if (lockfree_) {
      if (seg_buckets.size() != 1) return false;
      const std::size_t size = seg_buckets[0];
      lf_retired_.clear();
      lf_owner_ = std::make_unique<LfBuckets>(size);
      for (std::size_t i = 0; i < size; ++i) {
        lf_owner_->slots[i].store(heads[i], std::memory_order_relaxed);
      }
      lf_buckets_.store(lf_owner_.get(), std::memory_order_release);
      lf_max_count_ = std::max(
          lf_max_count_, lf_count_.load(std::memory_order_relaxed));
      lf_count_.store(seg_counts[0], std::memory_order_relaxed);
      return true;
    }
    if (seg_buckets.size() != segments_.size()) return false;
    std::size_t off = 0;
    for (std::size_t si = 0; si < segments_.size(); ++si) {
      Segment& s = segments_[si];
      s.buckets.assign(heads.begin() + static_cast<std::ptrdiff_t>(off),
                       heads.begin() +
                           static_cast<std::ptrdiff_t>(off + seg_buckets[si]));
      s.mask = seg_buckets[si] - 1;
      s.count = seg_counts[si];
      s.max_count = std::max(s.max_count, s.count);
      off += seg_buckets[si];
    }
    return true;
  }

  // ---- Introspection ---------------------------------------------------------

  [[nodiscard]] std::size_t count() const noexcept {
    if (lockfree_) return lf_count_.load(std::memory_order_relaxed);
    std::size_t total = 0;
    for (const Segment& segment : segments_) total += segment.count;
    return total;
  }
  /// High-water mark of count() (Fig. 15). Exact in the single-lock modes:
  /// kPassLock tracks it per insert under the lock, and kLockFree exploits
  /// monotonicity — the count only ever grows between collections (losing
  /// racers never increment), so sampling it at each reset_chains() plus
  /// the current count is the true maximum, with no extra atomic on the
  /// insert path. With mutex sharding this is the sum of per-segment
  /// high-water marks (a slight overestimate when segments peak at
  /// different times).
  [[nodiscard]] std::size_t max_count() const noexcept {
    if (lockfree_) {
      return std::max(lf_max_count_,
                      lf_count_.load(std::memory_order_relaxed));
    }
    std::size_t total = 0;
    for (const Segment& segment : segments_) total += segment.max_count;
    return total;
  }
  [[nodiscard]] std::size_t buckets() const noexcept {
    if (lockfree_) return lf_owner_ ? lf_owner_->mask + 1 : 0;
    std::size_t total = 0;
    for (const Segment& segment : segments_) total += segment.buckets.size();
    return total;
  }
  [[nodiscard]] std::size_t bytes() const noexcept {
    std::size_t total =
        (wait_ns_.capacity() + cas_retries_.capacity()) *
        sizeof(util::PaddedCounter);
    if (lockfree_) {
      if (lf_owner_) total += (lf_owner_->mask + 1) * sizeof(NodeRef);
      for (const auto& old : lf_retired_) {
        total += (old->mask + 1) * sizeof(NodeRef);
      }
      return total;
    }
    for (const Segment& segment : segments_) {
      total += segment.buckets.capacity() * sizeof(NodeRef);
    }
    return total;
  }
  [[nodiscard]] std::uint64_t lock_wait_ns(unsigned worker) const noexcept {
    return wait_ns_[worker].value;
  }
  [[nodiscard]] std::uint64_t lock_wait_ns_total() const noexcept {
    std::uint64_t total = 0;
    for (const auto& w : wait_ns_) total += w.value;
    return total;
  }
  /// Lock-free contention meter: CAS retries + moved-bucket waits charged
  /// to `worker`. Always zero in the mutex disciplines.
  [[nodiscard]] std::uint64_t cas_retries(unsigned worker) const noexcept {
    return cas_retries_[worker].value;
  }
  [[nodiscard]] std::uint64_t cas_retries_total() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : cas_retries_) total += c.value;
    return total;
  }
  void reset_lock_waits() noexcept {
    for (auto& w : wait_ns_) w.value = 0;
    for (auto& c : cas_retries_) c.value = 0;
  }

 private:
  struct Segment {
    std::mutex mutex;
    std::vector<NodeRef> buckets;
    std::size_t mask = 0;
    std::size_t count = 0;
    std::size_t max_count = 0;
  };

  /// One lock-free bucket array generation. Heads hold kZero (empty), a
  /// node reference, or kMovedHead (bucket emptied by a grow; permanent).
  struct LfBuckets {
    explicit LfBuckets(std::size_t n)
        : mask(n - 1), slots(new std::atomic<NodeRef>[n]) {
      for (std::size_t i = 0; i < n; ++i) {
        slots[i].store(kZero, std::memory_order_relaxed);
      }
    }
    std::size_t mask;
    std::unique_ptr<std::atomic<NodeRef>[]> slots;
  };

  /// Grow sentinel. kInvalid carries the operator tag, so it can never
  /// equal a published node reference or kZero.
  static constexpr NodeRef kMovedHead = kInvalid;

  [[nodiscard]] Segment& segment_for(std::uint64_t hash) noexcept {
    // Low bits select the segment; the remaining bits index its buckets.
    return segments_[hash & (segments_.size() - 1)];
  }

  void lock_timed(Segment& segment, unsigned worker) {
    PBDD_INJECT(kTableAcquire);
    if (segment.mutex.try_lock()) return;
    util::WallTimer timer;
    segment.mutex.lock();
    const std::uint64_t waited = timer.elapsed_ns();
    wait_ns_[worker].value += waited;
    PBDD_TRACE_INSTANT(kLockWait, waited, var_);
  }

  NodeRef find_or_insert_in(Segment& segment, std::uint64_t h,
                            unsigned worker, NodeRef low, NodeRef high,
                            bool& created) {
    assert(low != high);
    PBDD_INJECT(kTableInsert);
    const std::size_t bucket = (h >> shard_shift_) & segment.mask;
    for (NodeRef r = segment.buckets[bucket]; r != kZero;) {
      const BddNode& n = node(r);
      const NodeRef nx = n.next.load(std::memory_order_relaxed);
      // Overlap the next probe's likely cache miss with this compare.
      if (nx != kZero) util::prefetch_read(&node(nx));
      if (n.low == low && n.high == high) {
        created = false;
        return r;
      }
      r = nx;
    }
    const std::uint32_t slot = arenas_[worker]->alloc();
    BddNode& n = arenas_[worker]->at_own(slot);
    const NodeRef r = make_node_ref(worker, var_, slot);
    n.low = low;
    n.high = high;
    n.next.store(segment.buckets[bucket], std::memory_order_relaxed);
    n.aux.store(0, std::memory_order_relaxed);
    segment.buckets[bucket] = r;
    ++segment.count;
    if (segment.count > segment.max_count) segment.max_count = segment.count;
    if (segment.count > segment.buckets.size() * 2) {
      grow(segment, segment.buckets.size() * 2);
    } else if (PBDD_INJECT_QUERY(kForceTableGrow)) {
      // Same-size rehash: exercises the full chain-rebuild path (the thing
      // concurrent readers would trip over) without compounding growth.
      grow(segment, segment.buckets.size());
    }
    created = true;
    return r;
  }

  void grow(Segment& segment, std::size_t new_size) {
    PBDD_INJECT(kTableGrow);
    std::vector<NodeRef> fresh(new_size, kZero);
    const std::size_t new_mask = new_size - 1;
    for (NodeRef head : segment.buckets) {
      while (head != kZero) {
        BddNode& n = node(head);
        const NodeRef next = n.next.load(std::memory_order_relaxed);
        const std::size_t bucket =
            (util::hash_pair(n.low, n.high) >> shard_shift_) & new_mask;
        n.next.store(fresh[bucket], std::memory_order_relaxed);
        fresh[bucket] = head;
        head = next;
      }
    }
    segment.buckets = std::move(fresh);
    segment.mask = new_mask;
    PBDD_TRACE_INSTANT(kTableGrow, new_size, var_);
  }

  // ---- Lock-free discipline -------------------------------------------------

  NodeRef lf_find_or_insert(unsigned worker, std::uint64_t h, NodeRef low,
                            NodeRef high, bool& created) {
    assert(low != high);
    PBDD_INJECT(kTableInsert);
    std::uint32_t spec_slot = kNilSlot;  // speculative node, kept across retries
    rt::Backoff backoff;
    for (;;) {
      LfBuckets* b = lf_buckets_.load(std::memory_order_acquire);
      std::atomic<NodeRef>& head_ref = b->slots[h & b->mask];
      const NodeRef head = head_ref.load(std::memory_order_acquire);
      if (head == kMovedHead) {
        // A grower emptied this bucket; wait for the fresh array. Yieldable
        // injection point: no mutex is held on this path, and in serialize
        // torture mode the spinner must be able to hand the schedule token
        // to the grower.
        cas_retries_[worker].value += 1;
        PBDD_INJECT(kTableCasRetry);
        backoff.pause();
        continue;
      }
      // Walk the chain. Every node reached through an acquire-loaded link
      // is a published, immutable node of this variable; a grow may splice
      // our walk into a fresh-array chain mid-flight, which can only cause
      // a spurious miss — and a spurious miss is caught by the CAS below.
      for (NodeRef r = head; r != kZero;) {
        const BddNode& n = node(r);
        const NodeRef nx = n.next.load(std::memory_order_acquire);
        if (nx != kZero && nx != kMovedHead) {
          util::prefetch_read(&node(nx));
        }
        if (n.low == low && n.high == high) {
          // Canonical node exists (possibly created a microsecond ago by a
          // racing worker). Recycle the speculative slot: it was never
          // published, so tombstoning it keeps the store audit-clean.
          if (spec_slot != kNilSlot) arenas_[worker]->free_slot(spec_slot);
          created = false;
          return r;
        }
        r = nx;
      }
      // Miss: publish a speculative node by CASing the bucket head. The
      // release pairs with walkers' acquire loads, so low/high/next are
      // visible before the reference is.
      if (spec_slot == kNilSlot) spec_slot = arenas_[worker]->alloc();
      BddNode& n = arenas_[worker]->at_own(spec_slot);
      n.low = low;
      n.high = high;
      n.next.store(head, std::memory_order_relaxed);
      n.aux.store(0, std::memory_order_relaxed);
      const NodeRef r = make_node_ref(worker, var_, spec_slot);
      NodeRef expected = head;
      if (head_ref.compare_exchange_strong(expected, r,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
        created = true;
        const std::size_t count =
            lf_count_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (count > (b->mask + 1) * 2) {
          lf_grow(/*churn=*/false);
        } else if (PBDD_INJECT_QUERY(kForceTableGrow)) {
          lf_grow(/*churn=*/true);
        }
        return r;
      }
      // CAS lost: a racer prepended a node (maybe our key) or a grower took
      // the bucket. Keep the speculative slot and re-walk from the new head.
      cas_retries_[worker].value += 1;
      PBDD_INJECT(kTableCasRetry);
    }
  }

  /// Epoch-claimed growth. `churn` rebuilds at the current size (the
  /// torture scheduler's kForceTableGrow). Losing claimants return
  /// immediately: the insert that tripped the threshold already succeeded,
  /// and the claim holder handles capacity.
  void lf_grow(bool churn) {
    std::uint64_t e = lf_epoch_.load(std::memory_order_relaxed);
    if ((e & 1) != 0 ||
        !lf_epoch_.compare_exchange_strong(e, e + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
      return;  // another worker is mid-growth
    }
    LfBuckets* old = lf_buckets_.load(std::memory_order_acquire);
    const std::size_t old_size = old->mask + 1;
    if (!churn &&
        lf_count_.load(std::memory_order_relaxed) <= old_size * 2) {
      // Raced: the table grew between our trigger and our claim.
      lf_epoch_.store(e + 2, std::memory_order_release);
      return;
    }
    PBDD_INJECT(kTableGrow);
    const std::size_t new_size = churn ? old_size : old_size * 2;
    auto fresh = std::make_unique<LfBuckets>(new_size);
    for (std::size_t i = 0; i <= old->mask; ++i) {
      // Empty the bucket with the permanent sentinel: every in-flight CAS
      // against this bucket now fails, in this array forever.
      NodeRef head =
          old->slots[i].exchange(kMovedHead, std::memory_order_acq_rel);
      while (head != kZero) {
        BddNode& n = node(head);
        const NodeRef nx = n.next.load(std::memory_order_relaxed);
        if (nx != kZero) util::prefetch_read(&node(nx));
        const std::size_t bucket =
            util::hash_pair(n.low, n.high) & fresh->mask;
        // Release: a walker still on the old chain follows this redirected
        // link into nodes that were published on other buckets; pairing
        // with its acquire next-load extends the publication chain to them.
        n.next.store(fresh->slots[bucket].load(std::memory_order_relaxed),
                     std::memory_order_release);
        fresh->slots[bucket].store(head, std::memory_order_relaxed);
        head = nx;
      }
    }
    lf_buckets_.store(fresh.get(), std::memory_order_release);
    PBDD_TRACE_INSTANT(kTableGrow, new_size, var_);
    // Only the claim holder and stop-the-world code touch the retired list.
    lf_retired_.push_back(std::move(lf_owner_));
    lf_owner_ = std::move(fresh);
    lf_epoch_.store(e + 2, std::memory_order_release);
  }

  /// GC-rehash push: fields of `r` are final, several workers push into the
  /// same table concurrently. No growth here — reset_chains() already sized
  /// the array from the live count.
  void lf_reinsert(unsigned worker, std::uint64_t h, NodeRef r) {
    rt::Backoff backoff;
    for (;;) {
      LfBuckets* b = lf_buckets_.load(std::memory_order_acquire);
      std::atomic<NodeRef>& head_ref = b->slots[h & b->mask];
      NodeRef head = head_ref.load(std::memory_order_acquire);
      if (head == kMovedHead) {
        cas_retries_[worker].value += 1;
        PBDD_INJECT(kTableCasRetry);
        backoff.pause();
        continue;
      }
      node(r).next.store(head, std::memory_order_relaxed);
      if (head_ref.compare_exchange_strong(head, r,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
        lf_count_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      cas_retries_[worker].value += 1;
      PBDD_INJECT(kTableCasRetry);
    }
  }

  [[nodiscard]] BddNode& node(NodeRef r) const noexcept {
    return arenas_[worker_of(r)]->at(slot_of(r));
  }

  unsigned var_ = 0;
  unsigned shard_shift_ = 0;
  bool lockfree_ = false;
  std::vector<NodeArena*> arenas_;  ///< this variable's arena, per worker
  std::vector<Segment> segments_;

  // Lock-free state. lf_owner_/lf_retired_ are written only by the epoch
  // claim holder and at stop-the-world points; readers go through the
  // atomic lf_buckets_ pointer.
  std::atomic<LfBuckets*> lf_buckets_{nullptr};
  std::unique_ptr<LfBuckets> lf_owner_;
  std::vector<std::unique_ptr<LfBuckets>> lf_retired_;
  std::atomic<std::uint64_t> lf_epoch_{0};  ///< odd = growth in flight
  std::atomic<std::size_t> lf_count_{0};
  std::size_t lf_max_count_ = 0;  ///< folded in at stop-the-world resets

  /// Per-worker contention meters, one cache line each (Fig. 16 lock waits;
  /// CAS retries for the lock-free discipline).
  std::vector<util::PaddedCounter> wait_ns_;
  std::vector<util::PaddedCounter> cas_retries_;
};

}  // namespace pbdd::core
